// Ablation of the §3.4 edge-selection heuristics: full criteria versus
// dropping the delay tiers (C_d, Gl, LD) or the density tiers, measured on
// the constrained flow. Justifies the design choice of combining both.
#include <iostream>

#include "bench_util.hpp"
#include "bgr/metrics/experiment.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Ablation: edge-selection criteria (constrained mode)");
  bench::print_substitution_note();

  struct Variant {
    const char* name;
    bool delay;
    bool density;
  };
  const Variant variants[] = {
      {"full criteria", true, true},
      {"no delay tiers", false, true},
      {"no density tiers", true, false},
      {"length only", false, false},
  };

  for (const std::string& name : {std::string("C1P1"), std::string("C2P1")}) {
    const Dataset ds = make_dataset(name);
    std::cout << "\ndataset " << name << ":\n";
    TextTable table({"variant", "delay (ps)", "area (mm2)", "length (mm)",
                     "violations", "cpu (s)"});
    for (const Variant& v : variants) {
      RouterOptions options;
      options.use_delay_criteria = v.delay;
      options.use_density_criteria = v.density;
      const RunResult r = run_flow(ds, /*constrained=*/true, options);
      table.add_row({v.name, TextTable::fmt(r.delay_ps, 1),
                     TextTable::fmt(r.area_mm2, 3),
                     TextTable::fmt(r.length_mm, 1),
                     TextTable::fmt(static_cast<std::int64_t>(
                         r.violated_constraints)),
                     TextTable::fmt(r.cpu_s, 2)});
    }
    table.print(std::cout);
  }
  return 0;
}

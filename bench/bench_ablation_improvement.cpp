// Ablation of the §3.5 improvement loops: the initial routing alone versus
// adding violation recovery, delay improvement and area improvement.
#include <iostream>

#include "bench_util.hpp"
#include "bgr/metrics/experiment.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Ablation: improvement phases (constrained mode)");
  bench::print_substitution_note();

  struct Variant {
    const char* name;
    bool recover;
    bool delay;
    bool area;
  };
  const Variant variants[] = {
      {"initial only", false, false, false},
      {"+ recover_violate", true, false, false},
      {"+ improve_delay", true, true, false},
      {"+ improve_area (full)", true, true, true},
  };

  for (const std::string& name : {std::string("C1P1"), std::string("C2P1")}) {
    const Dataset ds = make_dataset(name);
    std::cout << "\ndataset " << name << ":\n";
    TextTable table({"variant", "delay (ps)", "area (mm2)", "violations",
                     "worst margin (ps)", "cpu (s)"});
    for (const Variant& v : variants) {
      RouterOptions options;
      options.enable_violation_recovery = v.recover;
      options.enable_delay_improvement = v.delay;
      options.enable_area_improvement = v.area;
      const RunResult r = run_flow(ds, /*constrained=*/true, options);
      table.add_row({v.name, TextTable::fmt(r.delay_ps, 1),
                     TextTable::fmt(r.area_mm2, 3),
                     TextTable::fmt(static_cast<std::int64_t>(
                         r.violated_constraints)),
                     TextTable::fmt(r.worst_margin_ps, 1),
                     TextTable::fmt(r.cpu_s, 2)});
    }
    table.print(std::cout);
  }
  return 0;
}

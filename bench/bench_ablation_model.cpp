// Delay-model ablation (§2.1): the paper adopts the pure-capacitance model
// because wide bipolar wires have low resistance, and claims the RC
// extension would not change the algorithm's behaviour. This bench routes
// under both models and quantifies the difference.
#include <iostream>

#include "bench_util.hpp"
#include "bgr/metrics/experiment.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Ablation: capacitance vs Elmore RC delay model");
  bench::print_substitution_note();

  TextTable table({"Data Name", "model", "delay (ps)", "area (mm2)",
                   "length (mm)", "violations"});
  for (const std::string& name : {std::string("C1P1"), std::string("C2P1")}) {
    const Dataset ds = make_dataset(name);
    for (const auto model : {DelayModel::kLumpedC, DelayModel::kElmoreRC}) {
      RouterOptions options;
      options.delay_model = model;
      const RunResult r = run_flow(ds, /*constrained=*/true, options);
      table.add_row({name,
                     model == DelayModel::kLumpedC ? "capacitance" : "Elmore RC",
                     TextTable::fmt(r.delay_ps, 1),
                     TextTable::fmt(r.area_mm2, 3),
                     TextTable::fmt(r.length_mm, 1),
                     TextTable::fmt(static_cast<std::int64_t>(
                         r.violated_constraints))});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe RC correction stays small on wide bipolar wires — the "
               "paper's justification for the capacitance model — and the "
               "routing decisions barely move.\n";
  return 0;
}

// Baseline comparison against the closest prior work the paper contrasts
// (J. Huang et al., "An Efficient Timing-Driven Global Routing Algorithm",
// DAC'93): area minimization under fixed per-net delay budgets. The
// paper's point is that real requirements are *critical path* constraints;
// fixed budgets over-constrain some nets and waste slack on others. Both
// modes here share every other mechanism.
#include <iostream>

#include "bench_util.hpp"
#include "bgr/metrics/experiment.hpp"

int main() {
  using namespace bgr;
  bench::print_banner(
      "Baseline: path constraints (paper) vs per-net delay budgets (DAC'93)");
  bench::print_substitution_note();

  TextTable table({"Data Name", "timing mode", "delay (ps)", "area (mm2)",
                   "length (mm)", "path violations", "cpu (s)"});
  for (const std::string& name :
       {std::string("C1P1"), std::string("C2P1"), std::string("C3P1")}) {
    const Dataset ds = make_dataset(name);
    struct Mode {
      const char* label;
      bool constrained;
      bool budgets;
    };
    for (const Mode mode : {Mode{"path constraints", true, false},
                            Mode{"net budgets", true, true},
                            Mode{"none", false, false}}) {
      RouterOptions options;
      options.use_net_budgets = mode.budgets;
      const RunResult r = run_flow(ds, mode.constrained, options);
      table.add_row({name, mode.label, TextTable::fmt(r.delay_ps, 1),
                     TextTable::fmt(r.area_mm2, 3),
                     TextTable::fmt(r.length_mm, 1),
                     mode.constrained
                         ? TextTable::fmt(static_cast<std::int64_t>(
                               r.violated_constraints))
                         : std::string("n/a"),
                     TextTable::fmt(r.cpu_s, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(path violations of the budget mode are measured against "
               "the true path constraints, which is what the design must "
               "meet)\n";
  return 0;
}

// Baseline comparison: the paper's *concurrent* edge-deletion initial
// routing (§3.1 — all nets compete in one candidate pool, so the net
// ordering problem disappears) versus the conventional sequential
// net-at-a-time routing of the prior work it cites ([6][7][9]). Both use
// identical selection criteria and improvement phases; only the initial
// routing discipline differs.
#include <iostream>

#include "bench_util.hpp"
#include "bgr/metrics/experiment.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Baseline: concurrent vs sequential initial routing");
  bench::print_substitution_note();

  TextTable table({"Data Name", "initial routing", "delay (ps)", "area (mm2)",
                   "length (mm)", "violations", "cpu (s)"});
  for (const std::string& name :
       {std::string("C1P1"), std::string("C2P1"), std::string("C3P1")}) {
    const Dataset ds = make_dataset(name);
    for (const bool concurrent : {true, false}) {
      RouterOptions options;
      options.concurrent_initial = concurrent;
      const RunResult r = run_flow(ds, /*constrained=*/true, options);
      table.add_row({name, concurrent ? "concurrent (paper)" : "sequential",
                     TextTable::fmt(r.delay_ps, 1),
                     TextTable::fmt(r.area_mm2, 3),
                     TextTable::fmt(r.length_mm, 1),
                     TextTable::fmt(static_cast<std::int64_t>(
                         r.violated_constraints)),
                     TextTable::fmt(r.cpu_s, 2)});
    }
  }
  table.print(std::cout);
  return 0;
}

// Minimum-capacity binary search (DESIGN.md §15): the smallest per-channel
// track capacity W for which a preset design still routes and verifies
// clean, found by bisecting [1, unconstrained densest channel] with fully
// deterministic feasibility probes. The bench runs the search twice and
// fails unless the transcripts are bit-identical (same probes, same
// verdicts, same minimum) — determinism is the property that makes the
// search a regression gate, not just a curiosity. Results land in
// BENCH_capacity.json (kind bench.capacity, the same document
// bgr_route --min-capacity-search emits) for trend tracking.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bgr/common/stopwatch.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/verify/capacity_search.hpp"

namespace {

using namespace bgr;

CapacitySearchResult search_once(const CircuitSpec& spec) {
  Dataset design = generate_circuit(spec);
  MetricsRegistry::global().reset();
  RouterOptions options;
  options.path_search = PathSearchBackend::kAstar;
  options.lookahead = LookaheadMode::kMap;
  return min_capacity_search(design.netlist, design.placement, design.tech,
                             design.constraints, options);
}

bool transcripts_identical(const CapacitySearchResult& a,
                           const CapacitySearchResult& b) {
  if (a.min_tracks != b.min_tracks) return false;
  if (a.unconstrained_tracks != b.unconstrained_tracks) return false;
  if (a.probes.size() != b.probes.size()) return false;
  for (std::size_t i = 0; i < a.probes.size(); ++i) {
    const CapacityProbe& pa = a.probes[i];
    const CapacityProbe& pb = b.probes[i];
    if (pa.tracks != pb.tracks || pa.feasible != pb.feasible ||
        pa.max_tracks != pb.max_tracks ||
        pa.reroute_passes != pb.reroute_passes ||
        pa.verify_errors != pb.verify_errors) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::print_banner("minimum channel capacity: deterministic binary search");
  bench::print_substitution_note();
  const CircuitSpec spec = c2_spec();  // mid-size: ~10 probes, seconds not minutes
  {
    const Dataset d = generate_circuit(spec);
    std::printf("design %s: %d cells, %d nets, %zu constraints\n",
                d.name.c_str(), d.netlist.cell_count(), d.netlist.net_count(),
                d.constraints.size());
  }

  Stopwatch sw;
  const CapacitySearchResult result = search_once(spec);
  const double wall_s = sw.seconds();
  const CapacitySearchResult repeat = search_once(spec);

  std::printf("unconstrained densest channel: %d tracks\n",
              result.unconstrained_tracks);
  std::printf("minimum feasible capacity:     %d tracks (%.3fs, %zu probes)\n",
              result.min_tracks, wall_s, result.probes.size());
  for (const CapacityProbe& probe : result.probes) {
    std::printf("  probe W=%-4d %s  densest %-4d passes %d  verify errors %d\n",
                probe.tracks, probe.feasible ? "feasible  " : "infeasible",
                probe.max_tracks, probe.reroute_passes, probe.verify_errors);
  }

  const bool identical = transcripts_identical(result, repeat);
  std::printf(identical
                  ? "repeat search: bit-identical transcript\n"
                  : "repeat search: TRANSCRIPT MISMATCH\n");

  RunReport report =
      make_capacity_report(spec.name, /*constrained=*/true, result, wall_s);
  bench::save_report(report, "BENCH_capacity.json");

  if (!identical) {
    std::printf("FAIL: capacity search is not deterministic across repeats\n");
    return 1;
  }
  if (result.min_tracks < 1 ||
      result.min_tracks > result.unconstrained_tracks) {
    std::printf("FAIL: minimum outside [1, unconstrained]\n");
    return 1;
  }
  return 0;
}

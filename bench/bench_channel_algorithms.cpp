// Channel-stage ablation: plain left-edge track assignment (free doglegs,
// density-optimal) versus the vertical-constraint-aware variant (tracks
// may exceed density; remaining cycles are counted as required doglegs).
// Quantifies how much the final area and delay depend on the detailed
// router's freedom.
#include <iostream>

#include "bench_util.hpp"
#include "bgr/channel/channel_router.hpp"
#include "bgr/metrics/experiment.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Channel stage: left-edge vs VCG-constrained left-edge");
  bench::print_substitution_note();

  TextTable table({"Data Name", "algorithm", "delay (ps)", "area (mm2)",
                   "sum tracks", "sum density", "doglegs"});
  for (const std::string& name : {std::string("C1P1"), std::string("C2P1")}) {
    Dataset ds = make_dataset(name);
    GlobalRouter router(ds.netlist, std::move(ds.placement), ds.tech,
                        ds.constraints, RouterOptions{});
    (void)router.run();
    for (const auto algo :
         {TrackAlgorithm::kLeftEdge, TrackAlgorithm::kConstrainedLeftEdge,
          TrackAlgorithm::kDoglegLeftEdge}) {
      ChannelOptions options;
      options.algorithm = algo;
      ChannelStage stage(router, options);
      stage.run();
      std::int64_t tracks = 0;
      std::int64_t density = 0;
      std::int64_t doglegs = 0;
      for (std::int32_t c = 0; c < stage.channel_count(); ++c) {
        tracks += stage.plan(c).tracks;
        density += stage.plan(c).density;
        doglegs += stage.plan(c).vcg_violations;
      }
      const double delay = stage.apply_and_critical_delay_ps(
          router.delay_graph());
      table.add_row({name,
                     algo == TrackAlgorithm::kLeftEdge ? "left-edge"
                     : algo == TrackAlgorithm::kConstrainedLeftEdge
                         ? "VCG-constrained"
                         : "dogleg",
                     TextTable::fmt(delay, 1),
                     TextTable::fmt(stage.chip_area_mm2(), 3),
                     TextTable::fmt(tracks), TextTable::fmt(density),
                     TextTable::fmt(doglegs)});
    }
  }
  table.print(std::cout);
  return 0;
}

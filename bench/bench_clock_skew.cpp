// Extension experiment for §4.2: multi-pitch wires exist "to reduce wire
// resistance and skews for very large fan-out nets like a clock". Routes
// the datasets and compares each clock net's Elmore skew at its actual
// width against the same tree wired at 1 pitch.
#include <iostream>

#include "bench_util.hpp"
#include "bgr/metrics/skew.hpp"
#include "bgr/metrics/experiment.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Clock skew: multi-pitch vs single-pitch wiring");
  bench::print_substitution_note();

  TextTable table({"Data Name", "clock net", "pitch", "fanout",
                   "skew (ps)", "skew at 1 pitch (ps)", "reduction (%)"});
  for (const std::string& name :
       {std::string("C1P1"), std::string("C2P1"), std::string("C3P1")}) {
    Dataset ds = make_dataset(name);
    GlobalRouter router(ds.netlist, std::move(ds.placement), ds.tech,
                        ds.constraints, RouterOptions{});
    (void)router.run();
    for (const ClockNetSkew& entry : clock_skew_report(router)) {
      const double reduction =
          entry.skew_1pitch_ps > 0.0
              ? (1.0 - entry.skew_ps() / entry.skew_1pitch_ps) * 100.0
              : 0.0;
      table.add_row({name, entry.name,
                     TextTable::fmt(static_cast<std::int64_t>(entry.pitch_width)),
                     TextTable::fmt(static_cast<std::int64_t>(entry.fanout)),
                     TextTable::fmt(entry.skew_ps(), 2),
                     TextTable::fmt(entry.skew_1pitch_ps, 2),
                     TextTable::fmt(reduction, 1)});
    }
  }
  table.print(std::cout);
  return 0;
}

// Reproduces the P1-vs-P2 experiment of §5 (the even-spacing effect of
// feed-cell insertion, §4.3): the same circuits routed from the designers'
// even placement (P1) and from placements with the feed cells swept aside
// (P2), reporting feed-cell insertion work and final quality.
#include <iostream>

#include "bench_util.hpp"
#include "bgr/metrics/experiment.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Feed-cell insertion: P1 (even) vs P2 (swept aside)");
  bench::print_substitution_note();

  TextTable table({"Data Name", "inserted feeds", "chip widened (pitches)",
                   "delay (ps)", "area (mm2)", "length (mm)"});
  for (const std::string& name :
       {std::string("C1P1"), std::string("C1P2"), std::string("C2P1"),
        std::string("C2P2")}) {
    const Dataset ds = make_dataset(name);
    const RunResult r = run_flow(ds, /*constrained=*/true);
    table.add_row({name,
                   TextTable::fmt(static_cast<std::int64_t>(r.feed_cells_added)),
                   TextTable::fmt(static_cast<std::int64_t>(r.widen_pitches)),
                   TextTable::fmt(r.delay_ps, 1),
                   TextTable::fmt(r.area_mm2, 3),
                   TextTable::fmt(r.length_mm, 1)});
  }
  table.print(std::cout);
  std::cout << "\nFeed-cell insertion is capacity-driven, so P1 and P2 insert "
               "the same number of cells; the even-spacing effect shows up as "
               "longer detours to reach the displaced feedthroughs — compare "
               "the P2 wire lengths, areas and delays against P1 (the paper's "
               "motivation for automatic even insertion).\n";
  return 0;
}

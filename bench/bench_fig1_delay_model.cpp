// Reproduces Fig. 1 of the paper: the capacitance delay model, Eq. (1)
//   Tpd = T0(ti,to) + (Σ Fin(t)) · Tf(to) + CL(n) · Td(to),
// traced on a small hand-built circuit, printing every term.
#include <cstdio>

#include "bench_util.hpp"
#include "bgr/timing/delay_graph.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Fig. 1: delay model trace");

  Netlist nl{Library::make_ecl_default()};
  const Library& lib = nl.library();
  const CellId g0 = nl.add_cell("g0", lib.find("NOR2"));
  const CellId g1 = nl.add_cell("g1", lib.find("NOR2"));
  const CellId g2 = nl.add_cell("g2", lib.find("BUF1"));
  const NetId a = nl.add_net("a");
  const NetId n0 = nl.add_net("n0");  // fans out to two cells
  const NetId n1 = nl.add_net("n1");
  const NetId n2 = nl.add_net("n2");
  (void)nl.add_pad_input("A", a, 100.0, 220.0);
  auto pin = [&](CellId c, const char* p) { return nl.cell_type(c).find_pin(p); };
  (void)nl.connect(a, g0, pin(g0, "I0"));
  (void)nl.connect(n0, g0, pin(g0, "O"));
  (void)nl.connect(n0, g1, pin(g1, "I0"));
  (void)nl.connect(n0, g2, pin(g2, "I0"));
  (void)nl.connect(n1, g1, pin(g1, "O"));
  (void)nl.connect(n2, g2, pin(g2, "O"));
  (void)nl.add_pad_output("Y1", n1, 0.05);
  (void)nl.add_pad_output("Y2", n2, 0.05);
  nl.validate();

  DelayGraph dg(nl);
  // Give net n0 some wiring capacitance: 600 um of 1-pitch wire.
  TechParams tech;
  const double cl = tech.wire_cap_pf(600.0);
  dg.set_net_cap(n0, cl);

  const CellType& nor2 = nl.cell_type(g0);
  const PinSpec& out = nor2.pin(nor2.find_pin("O"));
  const double fin_sum = nl.net_fanin_cap_pf(n0);
  std::printf("net n0 (driver g0.O, fanout g1.I0 + g2.I0):\n");
  std::printf("  T0(g0.I0 -> g0.O)        = %.2f ps\n",
              nor2.arcs().front().t0_ps);
  std::printf("  sum Fin  = %.4f pF, Tf(g0.O) = %.1f ps/pF -> %.2f ps\n",
              fin_sum, out.tf_ps_per_pf, fin_sum * out.tf_ps_per_pf);
  std::printf("  CL(n0)   = %.4f pF, Td(g0.O) = %.1f ps/pF -> %.2f ps\n", cl,
              out.td_ps_per_pf, cl * out.td_ps_per_pf);
  std::printf("  wiring-arc delay d(n0)   = %.2f ps (same for both sinks)\n",
              dg.net_arc_delay(n0));
  const double expected = fin_sum * out.tf_ps_per_pf + cl * out.td_ps_per_pf;
  std::printf("  check: Eq.(1) wiring part = %.2f ps -> %s\n", expected,
              std::abs(expected - dg.net_arc_delay(n0)) < 1e-9 ? "OK" : "FAIL");
  std::printf("chip critical delay (A -> Y1/Y2) = %.2f ps\n",
              dg.critical_delay_ps());
  return 0;
}

// Reproduces Fig. 2 of the paper: the global routing pipeline — initial
// concurrent edge-deletion routing followed by the three rip-up/re-route
// improvement loops — reporting what each phase did on dataset C1P1.
#include <cstdio>

#include "bench_util.hpp"
#include "bgr/metrics/experiment.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Fig. 2: algorithm phases on C1P1");
  bench::print_substitution_note();

  const Dataset ds = make_dataset("C1P1");
  const RunResult r = run_flow(ds, /*constrained=*/true);
  std::printf("xpin & feedthrough assignment: %d feed cells inserted, chip "
              "widened by %d pitches\n",
              r.feed_cells_added, r.widen_pitches);
  TextTable table({"phase", "edge deletions", "net re-routes",
                   "critical delay (ps)", "worst margin (ps)",
                   "sum C_M", "seconds"});
  for (const PhaseStats& ph : r.phases) {
    table.add_row({ph.name,
                   TextTable::fmt(static_cast<std::int64_t>(ph.deletions)),
                   TextTable::fmt(static_cast<std::int64_t>(ph.reroutes)),
                   TextTable::fmt(ph.critical_delay_ps, 1),
                   TextTable::fmt(ph.worst_margin_ps, 1),
                   TextTable::fmt(ph.sum_max_density),
                   TextTable::fmt(ph.seconds, 3)});
  }
  table.print(std::cout);
  std::printf("final (after channel routing): delay %.1f ps, area %.3f mm2, "
              "violations %d\n",
              r.delay_ps, r.area_mm2, r.violated_constraints);
  return 0;
}

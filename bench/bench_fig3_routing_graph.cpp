// Reproduces Fig. 3 of the paper: the routing graph G_r(n) — terminal
// vertices with their candidate positions (zero-weight correspondence
// edges), trunk and branch (feedthrough) edges, and the bridge/non-bridge
// classification that drives the edge-deletion scheme.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "bgr/route/routing_graph.hpp"
#include "bgr/timing/analyzer.hpp"
#include "bgr/timing/delay_graph.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Fig. 3: routing graph G_r(n) for a sample net");

  Dataset ds = make_dataset("C1P1");
  Netlist& nl = ds.netlist;
  Placement pl = ds.placement;
  DelayGraph dg(nl);
  TimingAnalyzer an(dg, ds.constraints);
  const auto pipeline = run_assignment_pipeline(nl, pl, an.net_slacks());

  // Pick a net with several terminals spanning at least two rows.
  NetId sample = NetId::invalid();
  for (const NetId n : nl.nets()) {
    const NetSpan span = net_span(nl, pl, n);
    if (nl.net(n).terminal_count() >= 3 && !nl.net(n).is_differential() &&
        span.row_hi() > span.row_lo() && nl.net(n).pitch_width == 1) {
      sample = n;
      break;
    }
  }
  BGR_CHECK(sample.valid());

  const RoutingGraph g(nl, pl, ds.tech, pipeline.assignment, sample);
  std::printf("net %s: %zu terminals, %d vertices, %d edges\n",
              nl.net(sample).name.c_str(), nl.net(sample).terminal_count(),
              g.graph().alive_vertex_count(), g.graph().alive_edge_count());

  std::printf("\nvertices:\n");
  for (std::int32_t v = 0; v < g.graph().vertex_count(); ++v) {
    if (!g.graph().vertex_alive(v)) continue;
    const RouteVertexInfo& info = g.vertex_info(v);
    if (info.kind == RouteVertexKind::kTerminal) {
      std::printf("  v%-3d terminal  %s%s\n", v,
                  nl.terminal_name(info.terminal).c_str(),
                  v == g.driver_vertex() ? " (driver)" : "");
    } else {
      std::printf("  v%-3d point     channel %d, column %d\n", v, info.channel,
                  info.x);
    }
  }

  std::printf("\nedges:\n");
  int bridges = 0;
  for (std::int32_t e = 0; e < g.graph().edge_count(); ++e) {
    if (!g.graph().edge_alive(e)) continue;
    const RouteEdgeInfo& info = g.edge_info(e);
    const char* kind = info.kind == RouteEdgeKind::kTrunk      ? "trunk "
                       : info.kind == RouteEdgeKind::kTermLink ? "term  "
                                                               : "feed  ";
    if (g.is_bridge(e)) ++bridges;
    std::printf("  e%-3d %s v%-3d -- v%-3d  chan %d span [%d,%d] len %6.1f um  %s\n",
                e, kind, g.graph().edge(e).u, g.graph().edge(e).v, info.channel,
                info.span.lo, info.span.hi, info.length_um,
                g.is_bridge(e) ? "bridge" : "non-bridge (deletable)");
  }
  std::printf("\n%d bridges, %zu deletable edges; tentative tree %.1f um, "
              "estimate %.1f um\n",
              bridges, g.non_bridge_edges().size(), g.tentative_length_um(),
              g.estimated_length_um());
  return 0;
}

// Reproduces Fig. 4 of the paper: the channel density parameters. Builds
// the full set of initial routing graphs for C1P1 (all candidate edges
// alive, so d_M and d_m genuinely differ), then charts d_M(c,x) and
// d_m(c,x) for the most congested channel and prints the channel and
// per-edge parameters C_M, NC_M, C_m, NC_m, D_M, ND_M, D_m, ND_m.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "bgr/route/density.hpp"
#include "bgr/route/routing_graph.hpp"
#include "bgr/timing/analyzer.hpp"
#include "bgr/timing/delay_graph.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Fig. 4: density parameters");

  Dataset ds = make_dataset("C1P1");
  Netlist& nl = ds.netlist;
  Placement pl = ds.placement;
  DelayGraph dg(nl);
  TimingAnalyzer an(dg, ds.constraints);
  const auto pipeline = run_assignment_pipeline(nl, pl, an.net_slacks());

  DensityMap density(pl.channel_count(), pl.width());
  std::vector<std::unique_ptr<RoutingGraph>> graphs;
  for (const NetId n : nl.nets()) {
    const Net& net = nl.net(n);
    auto g = net.is_differential() && !net.diff_primary
                 ? std::make_unique<RoutingGraph>(nl, pl, ds.tech,
                                                  pipeline.assignment, n,
                                                  net.diff_partner, 1)
                 : std::make_unique<RoutingGraph>(nl, pl, ds.tech,
                                                  pipeline.assignment, n);
    for (const auto e : g->alive_edges()) {
      const RouteEdgeInfo& info = g->edge_info(e);
      if (!info.is_trunk()) continue;
      density.add_total(info.channel, info.span, net.pitch_width);
      if (g->is_bridge(e)) {
        density.add_bridge(info.channel, info.span, net.pitch_width);
      }
    }
    graphs.push_back(std::move(g));
  }

  // Most congested channel.
  std::int32_t channel = 0;
  for (std::int32_t c = 1; c < density.channel_count(); ++c) {
    if (density.channel_params(c).c_max >
        density.channel_params(channel).c_max) {
      channel = c;
    }
  }
  const ChannelDensityParams& cp = density.channel_params(channel);
  std::printf("channel %d: C_M = %d (NC_M = %d), C_m = %d (NC_m = %d)\n",
              channel, cp.c_max, cp.nc_max, cp.c_min, cp.nc_min);

  // ASCII chart (d_M as '#', d_m as '+', both scaled to 20 rows); columns
  // bucketed to fit 100 characters.
  const std::int32_t buckets = std::min<std::int32_t>(100, pl.width());
  std::vector<std::int32_t> bm(static_cast<std::size_t>(buckets), 0);
  std::vector<std::int32_t> bb(static_cast<std::size_t>(buckets), 0);
  for (std::int32_t x = 0; x < pl.width(); ++x) {
    const auto b = static_cast<std::size_t>(
        static_cast<std::int64_t>(x) * buckets / pl.width());
    bm[b] = std::max(bm[b], density.total_at(channel, x));
    bb[b] = std::max(bb[b], density.bridge_at(channel, x));
  }
  const std::int32_t chart_rows = 18;
  std::printf("\nd_M ('#') and d_m ('+') across channel %d (x bucketed):\n",
              channel);
  for (std::int32_t row = chart_rows; row >= 1; --row) {
    const double level = static_cast<double>(cp.c_max) * row / chart_rows;
    std::printf("%5.0f |", level);
    for (std::int32_t b = 0; b < buckets; ++b) {
      const bool total = bm[static_cast<std::size_t>(b)] >= level;
      const bool bridge = bb[static_cast<std::size_t>(b)] >= level;
      std::putchar(bridge ? '+' : (total ? '#' : ' '));
    }
    std::putchar('\n');
  }
  std::printf("      +%s\n", std::string(static_cast<std::size_t>(buckets), '-').c_str());

  // Per-edge parameters for a few sample trunk edges in this channel.
  std::printf("\nsample edge parameters in channel %d:\n", channel);
  TextTable table({"net", "span", "D_M", "ND_M", "D_m", "ND_m",
                   "F_m=C_m-D_m", "F_M=C_M-D_M"});
  int printed = 0;
  for (const auto& g : graphs) {
    if (printed >= 8) break;
    for (const auto e : g->alive_edges()) {
      const RouteEdgeInfo& info = g->edge_info(e);
      if (!info.is_trunk() || info.channel != channel) continue;
      if (info.span.length() < 8) continue;  // pick informative edges
      const EdgeDensityParams ep = density.edge_params(channel, info.span);
      table.add_row({nl.net(g->net()).name,
                     "[" + std::to_string(info.span.lo) + "," +
                         std::to_string(info.span.hi) + "]",
                     TextTable::fmt(static_cast<std::int64_t>(ep.d_max)),
                     TextTable::fmt(static_cast<std::int64_t>(ep.nd_max)),
                     TextTable::fmt(static_cast<std::int64_t>(ep.d_min)),
                     TextTable::fmt(static_cast<std::int64_t>(ep.nd_min)),
                     TextTable::fmt(static_cast<std::int64_t>(cp.c_min - ep.d_min)),
                     TextTable::fmt(static_cast<std::int64_t>(cp.c_max - ep.d_max))});
      ++printed;
      break;
    }
  }
  table.print(std::cout);
  return 0;
}

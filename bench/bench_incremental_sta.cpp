// Incremental vs full STA inside the edge-deletion loop: routes the
// largest generated design twice — once with per-constraint full re-sweeps
// (the original behavior) and once with dirty-cone propagation — and
// reports wall time, relaxation counts and their ratio. The two runs must
// produce a bit-identical RouteOutcome; the incremental engine must relax
// at least 3x fewer vertices per deletion step, or the bench fails.
// Results land in BENCH_incremental_sta.json for trend tracking.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bgr/common/stopwatch.hpp"
#include "bgr/route/router.hpp"

namespace {

using namespace bgr;

struct StaRun {
  bool incremental = false;
  double route_s = 0.0;
  std::int64_t deletions = 0;
  std::int64_t relaxations = 0;
  std::int64_t dirty_vertices = 0;
  std::int64_t updates = 0;
  RouteOutcome outcome;
};

StaRun route_once(const CircuitSpec& spec, bool incremental) {
  Dataset design = generate_circuit(spec);  // fresh: routing mutates it
  RouterOptions options;
  options.incremental_sta = incremental;
  GlobalRouter router(design.netlist, std::move(design.placement), design.tech,
                      design.constraints, options);
  StaRun run;
  run.incremental = incremental;
  Stopwatch sw;
  run.outcome = router.run();
  run.route_s = sw.seconds();
  for (const PhaseStats& ph : run.outcome.phases) {
    run.deletions += ph.deletions;
    run.relaxations += ph.sta_relaxations;
    run.dirty_vertices += ph.sta_dirty_vertices;
    run.updates += ph.sta_updates;
  }
  return run;
}

void print_run(const StaRun& r) {
  std::printf("%-12s route %7.3fs  deletions %6lld  relaxations %10lld "
              " (%8.1f per deletion)\n",
              r.incremental ? "incremental" : "full-sweep", r.route_s,
              static_cast<long long>(r.deletions),
              static_cast<long long>(r.relaxations),
              r.deletions > 0
                  ? static_cast<double>(r.relaxations) /
                        static_cast<double>(r.deletions)
                  : 0.0);
}

void emit_json(const CircuitSpec& spec, const StaRun& full,
               const StaRun& inc, double ratio, bool identical) {
  RunReport report("bench.incremental_sta");
  report.section("design").set("name", spec.name);
  JsonValue& modes = report.section("modes");
  for (const StaRun* r : {&full, &inc}) {
    JsonValue entry;
    entry.set("mode", r->incremental ? "incremental" : "full");
    entry.set("route_seconds", r->route_s);
    entry.set("deletions", r->deletions);
    entry.set("relaxations", r->relaxations);
    entry.set("dirty_vertices", r->dirty_vertices);
    entry.set("sta_updates", r->updates);
    entry.set("critical_delay_ps", r->outcome.critical_delay_ps);
    entry.set("total_length_um", r->outcome.total_length_um);
    modes.push_back(std::move(entry));
  }
  JsonValue& result = report.section("result");
  result.set("relaxations_per_deletion_ratio", ratio);
  result.set("wall_speedup",
             inc.route_s > 0.0 ? full.route_s / inc.route_s : 0.0);
  result.set("outcomes_identical", identical);
  bench::save_report(report, "BENCH_incremental_sta.json");
}

}  // namespace

int main() {
  bench::print_banner("incremental STA: dirty-cone vs full re-sweeps");
  bench::print_substitution_note();
  CircuitSpec spec = c3_spec();  // the largest generated preset
  {
    const Dataset d = generate_circuit(spec);
    std::printf("design %s: %d cells, %d nets, %zu constraints\n",
                d.name.c_str(), d.netlist.cell_count(), d.netlist.net_count(),
                d.constraints.size());
  }

  const StaRun full = route_once(spec, /*incremental=*/false);
  const StaRun inc = route_once(spec, /*incremental=*/true);
  print_run(full);
  print_run(inc);

  const bool identical = bench::outcomes_identical(full.outcome, inc.outcome);
  const double per_del_full =
      full.deletions > 0 ? static_cast<double>(full.relaxations) /
                               static_cast<double>(full.deletions)
                         : 0.0;
  const double per_del_inc =
      inc.deletions > 0 ? static_cast<double>(inc.relaxations) /
                              static_cast<double>(inc.deletions)
                        : 0.0;
  const double ratio = per_del_inc > 0.0 ? per_del_full / per_del_inc : 0.0;
  std::printf("\nrelaxations per deletion: full %.1f vs incremental %.1f "
              "(%.1fx fewer)\n",
              per_del_full, per_del_inc, ratio);
  std::printf("wall speedup: %.2fx\n",
              inc.route_s > 0.0 ? full.route_s / inc.route_s : 0.0);
  std::printf(identical ? "outcome: bit-identical across both modes\n"
                        : "outcome: MISMATCH between modes\n");
  emit_json(spec, full, inc, ratio, identical);

  if (!identical) {
    std::printf("FAIL: incremental and full-sweep outcomes differ\n");
    return 1;
  }
  if (ratio < 3.0) {
    std::printf("FAIL: expected >=3x fewer relaxations per deletion\n");
    return 1;
  }
  return 0;
}

// Microbenchmarks (google-benchmark) of the router's hot kernels:
// Dijkstra / bridge-finding on routing-graph-sized graphs, density chart
// updates, tentative-tree evaluation, and the end-to-end flow on a small
// generated circuit.
#include <benchmark/benchmark.h>

#include "bgr/common/rng.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/graph/small_graph.hpp"
#include "bgr/metrics/experiment.hpp"
#include "bgr/route/density.hpp"
#include "bgr/route/routing_graph.hpp"
#include "bgr/timing/analyzer.hpp"

namespace {

using namespace bgr;

SmallGraph make_random_graph(std::int64_t vertices) {
  Rng rng(42);
  SmallGraph g;
  for (std::int64_t i = 0; i < vertices; ++i) (void)g.add_vertex();
  const auto n = static_cast<std::int32_t>(vertices);
  for (std::int32_t i = 1; i < n; ++i) {
    (void)g.add_edge(i, rng.uniform_i32(0, i - 1), rng.uniform_real(1, 10));
  }
  for (std::int32_t i = 0; i < n; ++i) {
    const auto u = rng.uniform_i32(0, n - 1);
    const auto v = rng.uniform_i32(0, n - 1);
    if (u != v) (void)g.add_edge(u, v, rng.uniform_real(1, 10));
  }
  return g;
}

void BM_Dijkstra(benchmark::State& state) {
  const SmallGraph g = make_random_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.dijkstra(0));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(16)->Arg(64)->Arg(256);

void BM_Bridges(benchmark::State& state) {
  const SmallGraph g = make_random_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.bridges());
  }
}
BENCHMARK(BM_Bridges)->Arg(16)->Arg(64)->Arg(256);

void BM_DensityUpdate(benchmark::State& state) {
  DensityMap map(4, 512);
  Rng rng(7);
  for (auto _ : state) {
    const auto lo = rng.uniform_i32(0, 400);
    const IntInterval span{lo, lo + rng.uniform_i32(0, 100)};
    map.add_total(1, span, 1);
    benchmark::DoNotOptimize(map.channel_params(1));
    map.remove_total(1, span, 1);
  }
}
BENCHMARK(BM_DensityUpdate);

void BM_EdgeParams(benchmark::State& state) {
  DensityMap map(1, 512);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto lo = rng.uniform_i32(0, 400);
    map.add_total(0, {lo, lo + rng.uniform_i32(0, 100)}, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.edge_params(0, {100, 350}));
  }
}
BENCHMARK(BM_EdgeParams);

CircuitSpec micro_spec() {
  CircuitSpec spec;
  spec.name = "bench";
  spec.seed = 4242;
  spec.rows = 5;
  spec.target_cells = 150;
  spec.levels = 7;
  spec.primary_inputs = 8;
  spec.primary_outputs = 8;
  spec.diff_pairs = 2;
  spec.clock_buffers = 1;
  spec.path_constraints = 8;
  return spec;
}

struct FlowFixture {
  Dataset dataset = generate_circuit(micro_spec());
};

void BM_TentativeTree(benchmark::State& state) {
  static const FlowFixture fixture;
  Netlist nl = fixture.dataset.netlist;
  Placement pl = fixture.dataset.placement;
  DelayGraph dg(nl);
  TimingAnalyzer an(dg, fixture.dataset.constraints);
  const auto pipeline = run_assignment_pipeline(nl, pl, an.net_slacks());
  // Largest net graph.
  NetId biggest = NetId{0};
  for (const NetId n : nl.nets()) {
    if (nl.net(n).terminal_count() > nl.net(biggest).terminal_count() &&
        !nl.net(n).is_differential()) {
      biggest = n;
    }
  }
  const RoutingGraph g(nl, pl, fixture.dataset.tech, pipeline.assignment,
                       biggest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.estimated_length_um());
  }
}
BENCHMARK(BM_TentativeTree);

void BM_FullFlowConstrained(benchmark::State& state) {
  static const FlowFixture fixture;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_flow(fixture.dataset, true));
  }
}
BENCHMARK(BM_FullFlowConstrained)->Unit(benchmark::kMillisecond);

void BM_FullFlowUnconstrained(benchmark::State& state) {
  static const FlowFixture fixture;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_flow(fixture.dataset, false));
  }
}
BENCHMARK(BM_FullFlowUnconstrained)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

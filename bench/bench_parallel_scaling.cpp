// Thread-scaling study of the exec/ subsystem: routes the largest
// generated design at 1/2/4/8 threads, reports per-phase wall time and the
// speedup of the initial-routing phase, and cross-checks that every thread
// count produced a bit-identical RouteOutcome (the determinism contract).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bgr/route/router.hpp"

namespace {

using namespace bgr;

struct ScalingRun {
  std::int32_t threads = 0;
  double initial_s = 0.0;
  double phases_total_s = 0.0;
  RouteOutcome outcome;
};

/// A design larger than the C3 preset so the parallel regions have
/// something to chew on; still deterministic in the seed.
CircuitSpec big_spec() {
  CircuitSpec spec = c3_spec();
  spec.name = "SCALE";
  spec.target_cells = spec.target_cells * 2;
  spec.rows = spec.rows + 4;
  spec.path_constraints = spec.path_constraints * 2;
  return spec;
}

ScalingRun route_once(const CircuitSpec& spec, std::int32_t threads) {
  Dataset design = generate_circuit(spec);  // fresh: routing mutates it
  RouterOptions options;
  options.threads = threads;
  GlobalRouter router(design.netlist, std::move(design.placement), design.tech,
                      design.constraints, options);
  ScalingRun run;
  run.threads = threads;
  run.outcome = router.run();
  for (const PhaseStats& ph : run.outcome.phases) {
    run.phases_total_s += ph.seconds;
    if (ph.name == "initial") run.initial_s = ph.seconds;
  }
  return run;
}

/// BENCH_parallel_scaling.json: per-thread wall times and speedups, so the
/// scaling trajectory is machine-readable across commits.
void emit_json(const CircuitSpec& spec, const std::vector<ScalingRun>& runs,
               bool deterministic) {
  const ScalingRun& base = runs.front();
  RunReport report("bench.parallel_scaling");
  report.section("design").set("name", spec.name);
  JsonValue& out = report.section("runs");
  for (const ScalingRun& r : runs) {
    JsonValue entry;
    entry.set("threads", static_cast<std::int64_t>(r.threads));
    entry.set("initial_seconds", r.initial_s);
    entry.set("phases_total_seconds", r.phases_total_s);
    entry.set("initial_speedup",
              r.initial_s > 0.0 ? base.initial_s / r.initial_s : 0.0);
    entry.set("total_speedup", r.phases_total_s > 0.0
                                   ? base.phases_total_s / r.phases_total_s
                                   : 0.0);
    out.push_back(std::move(entry));
  }
  report.section("result").set("deterministic", deterministic);
  bench::save_report(report, "BENCH_parallel_scaling.json");
}

}  // namespace

int main() {
  bench::print_banner("parallel scaling: exec/ threads vs routing wall time");
  bench::print_substitution_note();
  const CircuitSpec spec = big_spec();
  {
    const Dataset d = generate_circuit(spec);
    std::printf("design %s: %d cells, %d nets, %zu constraints "
                "(hardware threads: %d)\n",
                d.name.c_str(), d.netlist.cell_count(), d.netlist.net_count(),
                d.constraints.size(),
                ExecContext::hardware_threads());
  }

  std::vector<ScalingRun> runs;
  for (const std::int32_t threads : {1, 2, 4, 8}) {
    runs.push_back(route_once(spec, threads));
    const ScalingRun& r = runs.back();
    std::printf("threads %2d: initial %7.3fs, all phases %7.3fs, "
                "crit %8.1f ps, length %9.1f um\n",
                r.threads, r.initial_s, r.phases_total_s,
                r.outcome.critical_delay_ps, r.outcome.total_length_um);
  }

  const ScalingRun& base = runs.front();
  std::printf("\nspeedup vs 1 thread (initial routing / all phases):\n");
  for (const ScalingRun& r : runs) {
    std::printf("  threads %2d: %5.2fx / %5.2fx\n", r.threads,
                r.initial_s > 0.0 ? base.initial_s / r.initial_s : 0.0,
                r.phases_total_s > 0.0 ? base.phases_total_s / r.phases_total_s
                                       : 0.0);
  }

  bool deterministic = true;
  for (const ScalingRun& r : runs) {
    if (!bench::outcomes_identical(base.outcome, r.outcome)) {
      std::printf("DETERMINISM VIOLATION at %d threads\n", r.threads);
      deterministic = false;
    }
  }
  std::printf(deterministic
                  ? "determinism: RouteOutcome bit-identical across 1/2/4/8 "
                    "threads\n"
                  : "determinism: FAILED\n");
  emit_json(spec, runs, deterministic);
  return deterministic ? 0 : 1;
}

// Goal-oriented A* vs reference Dijkstra inside the tentative-tree loop:
// routes the largest generated design once per backend and reports wall
// time, node pops and edge relaxations per search. The two runs must
// produce a bit-identical RouteOutcome (DESIGN.md §11's whole claim), and
// A* must pop at least 2x fewer nodes than Dijkstra, or the bench fails.
// Results land in BENCH_path_search.json for trend tracking.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bgr/common/stopwatch.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/route/router.hpp"

namespace {

using namespace bgr;

struct SearchRun {
  PathSearchBackend backend = PathSearchBackend::kDijkstra;
  double route_s = 0.0;
  std::int64_t searches = 0;
  std::int64_t pops = 0;
  std::int64_t relaxations = 0;
  RouteOutcome outcome;
};

const char* backend_name(PathSearchBackend b) {
  return b == PathSearchBackend::kAstar ? "astar" : "dijkstra";
}

SearchRun route_once(const CircuitSpec& spec, PathSearchBackend backend) {
  Dataset design = generate_circuit(spec);  // fresh: routing mutates it
  // Reset the global registry so the metrics section emitted below
  // describes exactly one routed run, mirroring bgr_route --repeat.
  MetricsRegistry::global().reset();
  RouterOptions options;
  options.path_search = backend;
  GlobalRouter router(design.netlist, std::move(design.placement), design.tech,
                      design.constraints, options);
  SearchRun run;
  run.backend = backend;
  Stopwatch sw;
  run.outcome = router.run();
  run.route_s = sw.seconds();
  for (const PhaseStats& ph : run.outcome.phases) {
    run.searches += ph.path_searches;
    run.pops += ph.path_pops;
    run.relaxations += ph.path_relaxations;
  }
  return run;
}

void print_run(const SearchRun& r) {
  std::printf("%-9s route %7.3fs  searches %8lld  pops %11lld "
              " relax %11lld  (%7.1f pops per search)\n",
              backend_name(r.backend), r.route_s,
              static_cast<long long>(r.searches),
              static_cast<long long>(r.pops),
              static_cast<long long>(r.relaxations),
              r.searches > 0 ? static_cast<double>(r.pops) /
                                   static_cast<double>(r.searches)
                             : 0.0);
}

void emit_json(const CircuitSpec& spec, const SearchRun& dijkstra,
               const SearchRun& astar, double pop_ratio, bool identical) {
  RunReport report("bench.path_search");
  report.section("design").set("name", spec.name);
  JsonValue& modes = report.section("modes");
  for (const SearchRun* r : {&dijkstra, &astar}) {
    JsonValue entry;
    entry.set("backend", backend_name(r->backend));
    entry.set("route_seconds", r->route_s);
    entry.set("searches", r->searches);
    entry.set("pops", r->pops);
    entry.set("relaxations", r->relaxations);
    entry.set("critical_delay_ps", r->outcome.critical_delay_ps);
    entry.set("total_length_um", r->outcome.total_length_um);
    modes.push_back(std::move(entry));
  }
  JsonValue& result = report.section("result");
  result.set("pop_ratio", pop_ratio);
  result.set("relaxation_ratio",
             astar.relaxations > 0
                 ? static_cast<double>(dijkstra.relaxations) /
                       static_cast<double>(astar.relaxations)
                 : 0.0);
  result.set("wall_speedup",
             astar.route_s > 0.0 ? dijkstra.route_s / astar.route_s : 0.0);
  result.set("outcomes_identical", identical);
  // The registry still holds the A* run (route_once resets per run), so
  // the bucket-occupancy histogram and path.* counters describe it alone.
  report.add_metrics(MetricsRegistry::global());
  bench::save_report(report, "BENCH_path_search.json");
}

}  // namespace

int main() {
  bench::print_banner("path search: goal-oriented A* vs reference Dijkstra");
  bench::print_substitution_note();
  CircuitSpec spec = c3_spec();  // the largest generated preset
  {
    const Dataset d = generate_circuit(spec);
    std::printf("design %s: %d cells, %d nets, %zu constraints\n",
                d.name.c_str(), d.netlist.cell_count(), d.netlist.net_count(),
                d.constraints.size());
  }

  const SearchRun dijkstra = route_once(spec, PathSearchBackend::kDijkstra);
  const SearchRun astar = route_once(spec, PathSearchBackend::kAstar);
  print_run(dijkstra);
  print_run(astar);

  const bool identical =
      bench::outcomes_identical(dijkstra.outcome, astar.outcome);
  const double pop_ratio =
      astar.pops > 0 ? static_cast<double>(dijkstra.pops) /
                           static_cast<double>(astar.pops)
                     : 0.0;
  std::printf("\nnode pops: dijkstra %lld vs astar %lld (%.2fx fewer)\n",
              static_cast<long long>(dijkstra.pops),
              static_cast<long long>(astar.pops), pop_ratio);
  std::printf("wall speedup: %.2fx\n",
              astar.route_s > 0.0 ? dijkstra.route_s / astar.route_s : 0.0);
  std::printf(identical ? "outcome: bit-identical across both backends\n"
                        : "outcome: MISMATCH between backends\n");
  emit_json(spec, dijkstra, astar, pop_ratio, identical);

  if (!identical) {
    std::printf("FAIL: astar and dijkstra outcomes differ\n");
    return 1;
  }
  if (pop_ratio < 2.0) {
    std::printf("FAIL: expected >=2x fewer node pops with astar\n");
    return 1;
  }
  return 0;
}

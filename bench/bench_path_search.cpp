// Goal-oriented A* vs reference Dijkstra inside the tentative-tree loop:
// routes the largest generated design once per configuration and reports
// wall time, node pops and edge relaxations per search. All runs must
// produce a bit-identical RouteOutcome (DESIGN.md §11 and §15's whole
// claim), A* must pop at least 2x fewer nodes than Dijkstra, and the
// map-lookahead run must amortize: zero per-graph exact heuristic builds,
// exactly one chip-level table build, one derivation per heuristic that
// the exact run had to Dijkstra for. Results land in
// BENCH_path_search.json for trend tracking.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bgr/common/stopwatch.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/route/lookahead.hpp"
#include "bgr/route/router.hpp"

namespace {

using namespace bgr;

struct SearchRun {
  PathSearchBackend backend = PathSearchBackend::kDijkstra;
  LookaheadMode lookahead = LookaheadMode::kExact;
  double route_s = 0.0;
  std::int64_t searches = 0;
  std::int64_t pops = 0;
  std::int64_t relaxations = 0;
  std::int64_t heuristic_builds = 0;
  std::int64_t table_builds = 0;
  std::int64_t derivations = 0;
  RouteOutcome outcome;
};

const char* run_name(const SearchRun& r) {
  if (r.backend != PathSearchBackend::kAstar) return "dijkstra";
  return r.lookahead == LookaheadMode::kMap ? "astar-map" : "astar";
}

std::int64_t counter_value(const char* name) {
  return MetricsRegistry::global()
      .counter(name, MetricScope::kSemantic)
      .value();
}

SearchRun route_once(const CircuitSpec& spec, PathSearchBackend backend,
                     LookaheadMode lookahead) {
  Dataset design = generate_circuit(spec);  // fresh: routing mutates it
  // Reset the global registry so the metrics section emitted below
  // describes exactly one routed run, mirroring bgr_route --repeat.
  MetricsRegistry::global().reset();
  RouterOptions options;
  options.path_search = backend;
  options.lookahead = lookahead;
  GlobalRouter router(design.netlist, std::move(design.placement), design.tech,
                      design.constraints, options);
  SearchRun run;
  run.backend = backend;
  run.lookahead = lookahead;
  Stopwatch sw;
  run.outcome = router.run();
  run.route_s = sw.seconds();
  for (const PhaseStats& ph : run.outcome.phases) {
    run.searches += ph.path_searches;
    run.pops += ph.path_pops;
    run.relaxations += ph.path_relaxations;
  }
  run.heuristic_builds = counter_value("path.heuristic_builds");
  run.table_builds = counter_value("lookahead.builds");
  run.derivations = counter_value("lookahead.derivations");
  return run;
}

void print_run(const SearchRun& r) {
  std::printf("%-9s route %7.3fs  searches %8lld  pops %11lld "
              " relax %11lld  (%7.1f pops per search)\n",
              run_name(r), r.route_s, static_cast<long long>(r.searches),
              static_cast<long long>(r.pops),
              static_cast<long long>(r.relaxations),
              r.searches > 0 ? static_cast<double>(r.pops) /
                                   static_cast<double>(r.searches)
                             : 0.0);
}

void emit_json(const CircuitSpec& spec, const std::vector<SearchRun>& runs,
               double pop_ratio, bool identical, bool amortized) {
  RunReport report("bench.path_search");
  report.section("design").set("name", spec.name);
  JsonValue& modes = report.section("modes");
  for (const SearchRun& r : runs) {
    JsonValue entry;
    entry.set("backend", run_name(r));
    entry.set("route_seconds", r.route_s);
    entry.set("searches", r.searches);
    entry.set("pops", r.pops);
    entry.set("relaxations", r.relaxations);
    entry.set("heuristic_builds", r.heuristic_builds);
    entry.set("lookahead_builds", r.table_builds);
    entry.set("lookahead_derivations", r.derivations);
    entry.set("critical_delay_ps", r.outcome.critical_delay_ps);
    entry.set("total_length_um", r.outcome.total_length_um);
    modes.push_back(std::move(entry));
  }
  const SearchRun& dijkstra = runs[0];
  const SearchRun& astar = runs[1];
  JsonValue& result = report.section("result");
  result.set("pop_ratio", pop_ratio);
  result.set("relaxation_ratio",
             astar.relaxations > 0
                 ? static_cast<double>(dijkstra.relaxations) /
                       static_cast<double>(astar.relaxations)
                 : 0.0);
  result.set("wall_speedup",
             astar.route_s > 0.0 ? dijkstra.route_s / astar.route_s : 0.0);
  result.set("outcomes_identical", identical);
  result.set("map_heuristic_amortized", amortized);
  // The registry still holds the last (astar-map) run, so the
  // bucket-occupancy histogram and path.*/lookahead.* counters describe
  // it alone.
  report.add_metrics(MetricsRegistry::global());
  bench::save_report(report, "BENCH_path_search.json");
}

}  // namespace

int main() {
  bench::print_banner("path search: goal-oriented A* vs reference Dijkstra");
  bench::print_substitution_note();
  CircuitSpec spec = c3_spec();  // the largest generated preset
  {
    const Dataset d = generate_circuit(spec);
    std::printf("design %s: %d cells, %d nets, %zu constraints\n",
                d.name.c_str(), d.netlist.cell_count(), d.netlist.net_count(),
                d.constraints.size());
  }

  std::vector<SearchRun> runs;
  runs.push_back(
      route_once(spec, PathSearchBackend::kDijkstra, LookaheadMode::kExact));
  runs.push_back(
      route_once(spec, PathSearchBackend::kAstar, LookaheadMode::kExact));
  runs.push_back(
      route_once(spec, PathSearchBackend::kAstar, LookaheadMode::kMap));
  const SearchRun& dijkstra = runs[0];
  const SearchRun& astar = runs[1];
  const SearchRun& map = runs[2];
  for (const SearchRun& r : runs) print_run(r);

  bool identical = true;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    identical =
        identical && bench::outcomes_identical(runs[0].outcome, runs[i].outcome);
  }
  const double pop_ratio =
      astar.pops > 0 ? static_cast<double>(dijkstra.pops) /
                           static_cast<double>(astar.pops)
                     : 0.0;
  // Amortization: map mode never runs the per-graph exact Dijkstra, builds
  // the chip table exactly once, and derives once per heuristic the exact
  // run had to build.
  const bool amortized = map.heuristic_builds == 0 && map.table_builds == 1 &&
                         map.derivations == astar.heuristic_builds;
  std::printf("\nnode pops: dijkstra %lld vs astar %lld (%.2fx fewer)\n",
              static_cast<long long>(dijkstra.pops),
              static_cast<long long>(astar.pops), pop_ratio);
  std::printf("wall speedup: %.2fx\n",
              astar.route_s > 0.0 ? dijkstra.route_s / astar.route_s : 0.0);
  std::printf("map lookahead: %lld exact heuristic builds (want 0), "
              "%lld table builds (want 1), %lld derivations "
              "(exact run built %lld)\n",
              static_cast<long long>(map.heuristic_builds),
              static_cast<long long>(map.table_builds),
              static_cast<long long>(map.derivations),
              static_cast<long long>(astar.heuristic_builds));
  std::printf(identical ? "outcome: bit-identical across all configurations\n"
                        : "outcome: MISMATCH between configurations\n");
  emit_json(spec, runs, pop_ratio, identical, amortized);

  if (!identical) {
    std::printf("FAIL: outcomes differ across configurations\n");
    return 1;
  }
  if (pop_ratio < 2.0) {
    std::printf("FAIL: expected >=2x fewer node pops with astar\n");
    return 1;
  }
  if (!amortized) {
    std::printf("FAIL: map lookahead did not amortize the heuristic builds\n");
    return 1;
  }
  return 0;
}

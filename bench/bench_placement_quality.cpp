// Substrate sensitivity: how the routed results depend on placement
// quality. The paper's P1/P2 experiment varies feed-cell spacing; this
// ablation varies the placer effort itself (0 iterations = hints only,
// i.e. a poor designer; 24 = the default).
#include <iostream>

#include "bench_util.hpp"
#include "bgr/metrics/experiment.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Substrate ablation: placement quality vs routed results");
  bench::print_substitution_note();

  TextTable table({"placer passes", "delay (ps)", "area (mm2)", "length (mm)",
                   "gap to LB (%)", "feed cells"});
  for (const std::int32_t passes : {0, 4, 12, 24}) {
    CircuitSpec spec = c1_spec();
    spec.placer_passes = passes;
    const Dataset ds = generate_circuit(spec);
    const RunResult r = run_flow(ds, /*constrained=*/true);
    table.add_row({TextTable::fmt(static_cast<std::int64_t>(passes)),
                   TextTable::fmt(r.delay_ps, 1),
                   TextTable::fmt(r.area_mm2, 3),
                   TextTable::fmt(r.length_mm, 1),
                   TextTable::fmt(r.gap_to_lower_bound_percent(), 1),
                   TextTable::fmt(static_cast<std::int64_t>(
                       r.feed_cells_added))});
  }
  table.print(std::cout);
  std::cout << "\nBetter placements shorten nets, shrink the feedthrough "
               "demand and leave the router less to fix — the environment "
               "the paper's designers provided.\n";
  return 0;
}

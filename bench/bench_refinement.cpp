// Extension experiment: back-annotation refinement. The global router
// estimates in-channel verticals with a fixed per-tap allowance; the
// channel stage then measures the real jogs. Feeding the measured per-net
// lengths back and re-running the improvement loops closes the gap between
// estimated and final timing.
#include <iostream>

#include "bench_util.hpp"
#include "bgr/metrics/experiment.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Extension: back-annotation refinement rounds");
  bench::print_substitution_note();

  TextTable table({"Data Name", "rounds", "delay (ps)", "area (mm2)",
                   "path violations", "worst margin (ps)", "cpu (s)"});
  for (const std::string& name : {std::string("C1P1"), std::string("C2P1")}) {
    const Dataset ds = make_dataset(name);
    for (const std::int32_t rounds : {0, 1, 2}) {
      const RunResult r = run_flow(ds, /*constrained=*/true, RouterOptions{},
                                   rounds);
      table.add_row({name, TextTable::fmt(static_cast<std::int64_t>(rounds)),
                     TextTable::fmt(r.delay_ps, 1),
                     TextTable::fmt(r.area_mm2, 3),
                     TextTable::fmt(static_cast<std::int64_t>(
                         r.violated_constraints)),
                     TextTable::fmt(r.worst_margin_ps, 1),
                     TextTable::fmt(r.cpu_s, 2)});
    }
  }
  table.print(std::cout);
  return 0;
}

// Scale bench over the block-structured presets (DESIGN.md §13): routes a
// 10k/100k/1M-cell preset through the sharded deletion pipeline and gates
// two floors:
//   - throughput: routed nets per second of routing wall time;
//   - parallelism: the deletion loop's work-based speedup at 8 workers,
//     computed from the deterministic per-shard scan counters via an LPT
//     schedule (total scan work / makespan). Wall time on a loaded CI box
//     is noise; the scan counters are bit-identical on every run, so the
//     ratio gate never flakes.
// Results land in BENCH_scale.json (schema: tools/check_run_report.py).
//
//   bench_scale [preset] [nets-per-second-floor]
//
// defaults: preset 10k, floor 200 nets/s (conservative: a release build
// routes the 10k preset at a few thousand nets/s).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <queue>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bgr/common/stopwatch.hpp"
#include "bgr/route/router.hpp"
#include "bgr/route/shard.hpp"

namespace {

using namespace bgr;

/// Makespan of the shards' scan work on `workers` identical workers under
/// longest-processing-time list scheduling — the deterministic stand-in
/// for "what an N-thread run of the shard loop costs".
std::int64_t lpt_makespan(std::vector<std::int64_t> work,
                          std::int32_t workers) {
  std::sort(work.begin(), work.end(), std::greater<>());
  std::priority_queue<std::int64_t, std::vector<std::int64_t>,
                      std::greater<>> loads;
  for (std::int32_t w = 0; w < workers; ++w) loads.push(0);
  for (const std::int64_t item : work) {
    std::int64_t least = loads.top();
    loads.pop();
    loads.push(least + item);
  }
  std::int64_t makespan = 0;
  while (!loads.empty()) {
    makespan = loads.top();
    loads.pop();
  }
  return makespan;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string preset = argc > 1 ? argv[1] : "10k";
  const double floor_nets_per_s = argc > 2 ? std::atof(argv[2]) : 200.0;
  bench::print_banner("scale: sharded deletion on the " + preset +
                      " preset");
  bench::print_substitution_note();

  Dataset design = make_dataset(preset);
  const std::int32_t nets = design.netlist.net_count();
  std::printf("design %s: %d cells, %d nets, %zu constraints\n",
              design.name.c_str(), design.netlist.cell_count(), nets,
              design.constraints.size());

  RouterOptions options;
  options.threads = 2;
  GlobalRouter router(design.netlist, std::move(design.placement),
                      design.tech, design.constraints, options);
  Stopwatch sw;
  const RouteOutcome outcome = router.run();
  const double route_s = sw.seconds();
  const double nets_per_s =
      route_s > 0.0 ? static_cast<double>(nets) / route_s : 0.0;
  std::printf("routed in %.3fs (%.0f nets/s): delay %.1f ps, "
              "length %.2f mm, violations %d\n",
              route_s, nets_per_s, outcome.critical_delay_ps,
              outcome.total_length_um / 1000.0, outcome.violated_constraints);

  const ShardDecomposition& dec = router.shard_decomposition();
  std::int64_t scan_work = 0;
  std::int64_t commits = 0;
  for (std::int32_t s = 0; s < dec.shard_count(); ++s) {
    scan_work += dec.scans[static_cast<std::size_t>(s)];
    commits += dec.commits[static_cast<std::size_t>(s)];
  }
  std::printf("deletion loop: %d shards, %lld scans, %lld commits\n",
              dec.shard_count(), static_cast<long long>(scan_work),
              static_cast<long long>(commits));

  RunReport report("bench.scale");
  JsonValue& design_out = report.section("design");
  design_out.set("name", preset);
  design_out.set("cells", static_cast<std::int64_t>(
                              design.netlist.cell_count()));
  design_out.set("nets", static_cast<std::int64_t>(nets));
  design_out.set("constraints",
                 static_cast<std::int64_t>(design.constraints.size()));
  JsonValue& route_out = report.section("route");
  route_out.set("critical_delay_ps", outcome.critical_delay_ps);
  route_out.set("total_length_um", outcome.total_length_um);
  route_out.set("violated_constraints",
                static_cast<std::int64_t>(outcome.violated_constraints));
  JsonValue& shards_out = report.section("shards");
  shards_out.set("count", static_cast<std::int64_t>(dec.shard_count()));
  shards_out.set("scan_work", scan_work);
  shards_out.set("commits", commits);

  double ratio8 = 0.0;
  JsonValue lpt = JsonValue::array();
  for (const std::int32_t workers : {1, 2, 8}) {
    const std::int64_t makespan = lpt_makespan(dec.scans, workers);
    const double ratio =
        makespan > 0 ? static_cast<double>(scan_work) /
                           static_cast<double>(makespan)
                     : 0.0;
    if (workers == 8) ratio8 = ratio;
    std::printf("  %d workers: LPT makespan %lld scans (work ratio %.2fx)\n",
                workers, static_cast<long long>(makespan), ratio);
    JsonValue entry;
    entry.set("workers", static_cast<std::int64_t>(workers));
    entry.set("makespan", makespan);
    entry.set("work_ratio", ratio);
    lpt.push_back(std::move(entry));
  }
  shards_out.set("lpt", std::move(lpt));

  const bool sharded = dec.shard_count() > 1;
  const bool fast_enough = nets_per_s >= floor_nets_per_s;
  const bool parallel_enough = ratio8 >= 2.0;
  JsonValue& result = report.section("result");
  result.set("nets_per_second_floor", floor_nets_per_s);
  result.set("parallel_ratio_8", ratio8);
  result.set("sharded", sharded);
  result.set("pass", sharded && fast_enough && parallel_enough);
  // Wall-clock data lives under "run" so --compare-semantic strips it.
  JsonValue& run_out = report.section("run");
  run_out.set("seconds", route_s);
  run_out.set("nets_per_second", nets_per_s);
  run_out.set("threads", static_cast<std::int64_t>(options.threads));
  report.add_metrics(MetricsRegistry::global());
  bench::save_report(report, "BENCH_scale.json");

  if (!sharded) {
    std::printf("FAIL: the %s preset did not decompose into shards\n",
                preset.c_str());
    return 1;
  }
  if (!fast_enough) {
    std::printf("FAIL: %.0f nets/s under the %.0f nets/s floor\n", nets_per_s,
                floor_nets_per_s);
    return 1;
  }
  if (!parallel_enough) {
    std::printf("FAIL: 8-worker work ratio %.2fx under the 2x floor\n",
                ratio8);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

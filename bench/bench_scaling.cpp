// Runtime scaling of the full flow versus circuit size, in both modes.
// The paper reports SPARCstation-2 CPU seconds per circuit (Table 2); this
// sweep shows how the implementation scales on the host.
#include <benchmark/benchmark.h>

#include "bgr/metrics/experiment.hpp"

namespace {

using namespace bgr;

Dataset scaled_dataset(std::int64_t cells) {
  CircuitSpec spec;
  spec.name = "scale" + std::to_string(cells);
  spec.seed = 1234 + static_cast<std::uint64_t>(cells);
  spec.target_cells = static_cast<std::int32_t>(cells);
  spec.rows = std::max<std::int32_t>(4, static_cast<std::int32_t>(cells) / 90);
  spec.levels = 8;
  spec.primary_inputs = 10;
  spec.primary_outputs = 10;
  spec.diff_pairs = 3;
  spec.clock_buffers = 2;
  spec.path_constraints = 16;
  return generate_circuit(spec);
}

void BM_FlowScaling(benchmark::State& state) {
  const Dataset ds = scaled_dataset(state.range(0));
  const bool constrained = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_flow(ds, constrained));
  }
  state.counters["cells"] = static_cast<double>(ds.netlist.cell_count());
  state.counters["nets"] = static_cast<double>(ds.netlist.net_count());
}
BENCHMARK(BM_FlowScaling)
    ->Args({150, 1})
    ->Args({300, 1})
    ->Args({600, 1})
    ->Args({150, 0})
    ->Args({300, 0})
    ->Args({600, 0})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

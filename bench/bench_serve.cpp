// Serving throughput and co-tenancy determinism (DESIGN.md §12).
//
// Runs every job solo first (serial, private) to fix its reference
// outcome digest, then pushes the same jobs through an in-process
// JobScheduler — two runner slots over one shared worker pool, two
// clients, duplicate submissions included — and measures jobs/second.
//
// This bench is a gate, not just a meter: any co-tenant digest that
// differs from its solo reference makes the binary exit non-zero, and
// the emitted BENCH_serve.json (kind "bench.serve") must satisfy
// tools/check_run_report.py's serve schema (serve/totals/run sections
// plus the serve.* semantic counters).
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bgr/fuzz/spec_sampler.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/io/design_io.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/serve/design_cache.hpp"
#include "bgr/serve/scheduler.hpp"
#include "bgr/serve/session.hpp"

namespace bgr {
namespace {

using serve::DesignCache;
using serve::JobRequest;
using serve::JobScheduler;
using serve::RoutingSession;
using serve::SchedulerConfig;
using serve::SessionResult;
using serve::SessionStatus;

std::string bench_design_text(std::uint64_t seed) {
  CircuitSpec spec = sample_spec(0);
  spec.seed = seed;
  spec.name = "serve_b" + std::to_string(seed);
  spec.rows = 5;
  spec.target_cells = 90;
  spec.levels = 5;
  spec.path_constraints = 8;
  const Dataset ds = generate_circuit(spec);
  std::ostringstream os;
  write_design(os, ds);
  return os.str();
}

struct DoneEvent {
  std::string client;
  std::string id;
  std::string digest;
  std::string cache;
};

}  // namespace
}  // namespace bgr

int main() {
  using namespace bgr;
  bench::print_banner("serving: co-tenant throughput vs solo bit-identity");
  bench::print_substitution_note();

  // Twelve jobs over two clients: two distinct designs alternating, so
  // the duplicates exercise the design/result caches while the scheduler
  // interleaves genuinely different work.
  constexpr int kJobs = 12;
  std::vector<std::string> designs = {bench_design_text(21),
                                      bench_design_text(22)};
  struct PlannedJob {
    std::string client;
    JobRequest request;
  };
  std::vector<PlannedJob> jobs;
  for (int i = 0; i < kJobs; ++i) {
    PlannedJob job;
    job.client = (i % 2 == 0) ? "alpha" : "beta";
    job.request.id = "j" + std::to_string(i);
    job.request.design_text = designs[static_cast<std::size_t>(i % 2)];
    jobs.push_back(std::move(job));
  }

  // Solo references: each request serial on a private context. The first
  // occurrence of each design fixes the digest every repeat must match.
  std::map<std::string, std::string> solo_digest;  // id -> digest
  const auto solo_start = std::chrono::steady_clock::now();
  for (const PlannedJob& job : jobs) {
    RoutingSession session(job.request, nullptr, nullptr);
    const SessionResult result = session.run();
    if (result.status != SessionStatus::kDone) {
      std::printf("solo job %s failed: %s\n", job.request.id.c_str(),
                  result.error.c_str());
      return 1;
    }
    solo_digest[job.request.id] = result.digest;
  }
  const double solo_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    solo_start)
          .count();
  std::printf("solo     : %d jobs in %6.3fs (%5.2f jobs/s)\n", kJobs, solo_s,
              solo_s > 0.0 ? kJobs / solo_s : 0.0);

  // Co-tenant run: two runner slots, one shared pool, warm caches.
  SchedulerConfig config;
  config.pool_workers = 3;
  config.max_jobs = 2;
  config.queue_capacity = 64;
  DesignCache cache;
  std::mutex done_mutex;
  std::vector<DoneEvent> done;
  const auto cotenant_start = std::chrono::steady_clock::now();
  JobScheduler::Totals totals;
  {
    JobScheduler scheduler(
        config, &cache,
        [&](const std::string& client, const JsonValue& event) {
          if (event.at("event").as_string() != "done") return;
          const JsonValue& result = event.at("result");
          std::lock_guard<std::mutex> lock(done_mutex);
          done.push_back({client, event.at("id").as_string(),
                          result.at("digest").as_string(),
                          result.at("cache").as_string()});
        });
    for (const PlannedJob& job : jobs) {
      const serve::Admission admission =
          scheduler.submit(job.client, job.request);
      if (!admission.accepted) {
        std::printf("job %s rejected: %s\n", job.request.id.c_str(),
                    admission.reason.c_str());
        return 1;
      }
    }
    scheduler.drain_and_stop();
    totals = scheduler.totals();
  }
  const double cotenant_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    cotenant_start)
          .count();
  const DesignCache::Stats cache_stats = cache.stats();
  std::printf("co-tenant: %d jobs in %6.3fs (%5.2f jobs/s), "
              "cache %lld hits / %lld misses\n",
              kJobs, cotenant_s, cotenant_s > 0.0 ? kJobs / cotenant_s : 0.0,
              static_cast<long long>(cache_stats.dataset_hits +
                                     cache_stats.result_hits),
              static_cast<long long>(cache_stats.dataset_misses));

  // The gate: every co-tenant digest must equal its solo reference.
  bool identical = done.size() == static_cast<std::size_t>(kJobs) &&
                   totals.completed == kJobs;
  if (!identical) {
    std::printf("EXPECTED %d done events, saw %zu (completed %lld)\n", kJobs,
                done.size(), static_cast<long long>(totals.completed));
  }
  for (const DoneEvent& event : done) {
    const std::string& expected = solo_digest[event.id];
    if (event.digest != expected) {
      std::printf("DIGEST MISMATCH job %s (%s): co-tenant %s vs solo %s\n",
                  event.id.c_str(), event.cache.c_str(), event.digest.c_str(),
                  expected.c_str());
      identical = false;
    }
  }
  std::printf(identical
                  ? "determinism: all %d co-tenant outcomes bit-identical "
                    "to solo runs\n"
                  : "determinism: FAILED\n",
              kJobs);

  RunReport report("bench.serve");
  JsonValue& serve_section = report.section("serve");
  serve_section.set("pool_workers",
                    static_cast<std::int64_t>(config.pool_workers));
  serve_section.set("max_jobs", static_cast<std::int64_t>(config.max_jobs));
  serve_section.set("queue_capacity",
                    static_cast<std::int64_t>(config.queue_capacity));
  serve_section.set("clients", static_cast<std::int64_t>(2));
  JsonValue& totals_section = report.section("totals");
  totals_section.set("jobs_accepted", totals.accepted);
  totals_section.set("jobs_rejected", totals.rejected);
  totals_section.set("jobs_completed", totals.completed);
  totals_section.set("jobs_failed", totals.failed);
  totals_section.set("jobs_cancelled", totals.cancelled);
  // Hit/miss sums are schedule-independent (a repeat hits exactly one of
  // the two cache levels); the per-level split below lives under "run".
  totals_section.set("cache_hits",
                     cache_stats.dataset_hits + cache_stats.result_hits);
  totals_section.set("cache_misses", cache_stats.dataset_misses);
  JsonValue& run_section = report.section("run");
  run_section.set("solo_seconds", solo_s);
  run_section.set("cotenant_seconds", cotenant_s);
  run_section.set("solo_jobs_per_second",
                  solo_s > 0.0 ? kJobs / solo_s : 0.0);
  run_section.set("cotenant_jobs_per_second",
                  cotenant_s > 0.0 ? kJobs / cotenant_s : 0.0);
  run_section.set("dataset_hits", cache_stats.dataset_hits);
  run_section.set("result_hits", cache_stats.result_hits);
  report.section("result").set("deterministic", identical);
  report.add_metrics(MetricsRegistry::global());
  bench::save_report(report, "BENCH_serve.json");
  return identical ? 0 : 1;
}

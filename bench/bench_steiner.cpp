// Cost-distance steiner trees vs the reference engines (DESIGN.md §16):
// routes C1/C2/C3 and the block-structured 10k preset once per backend
// and reports the delay/area front — total wirelength, worst margin,
// violation count, wall time and the steiner.* construction counters.
// Hard gates inside the binary:
//   - astar must stay bit-identical to the reference Dijkstra on every
//     design (the §11 contract does not bend while a third engine exists);
//   - the steiner run must margin-dominate the Dijkstra baseline per
//     constraint within the shared fuzz tolerance
//     (steiner_dominance_tol_ps), and must never route more wire than
//     5% over the baseline;
//   - the steiner.* semantic counters must be live on a steiner run.
// Results land in BENCH_steiner.json for the CI baseline diff.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bgr/common/stopwatch.hpp"
#include "bgr/fuzz/oracles.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/route/path_search.hpp"
#include "bgr/route/router.hpp"

namespace {

using namespace bgr;

struct BackendRun {
  PathSearchBackend backend = PathSearchBackend::kDijkstra;
  double route_s = 0.0;
  RouteOutcome outcome;
  std::vector<double> margins;
  std::int64_t trees = 0;
  std::int64_t sink_paths = 0;
  std::int64_t cache_hits = 0;
};

std::int64_t counter_value(const char* name) {
  return MetricsRegistry::global()
      .counter(name, MetricScope::kSemantic)
      .value();
}

BackendRun route_once(const std::string& dataset, PathSearchBackend backend) {
  Dataset design = make_dataset(dataset);  // fresh: routing mutates it
  MetricsRegistry::global().reset();
  RouterOptions options;
  options.path_search = backend;
  GlobalRouter router(design.netlist, std::move(design.placement), design.tech,
                      design.constraints, options);
  BackendRun run;
  run.backend = backend;
  Stopwatch sw;
  run.outcome = router.run();
  run.route_s = sw.seconds();
  for (const ConstraintId p : router.analyzer().constraints()) {
    run.margins.push_back(router.analyzer().margin_ps(p));
  }
  run.trees = counter_value("steiner.trees");
  run.sink_paths = counter_value("steiner.sink_paths");
  run.cache_hits = counter_value("steiner.cache_hits");
  return run;
}

void print_run(const std::string& dataset, const BackendRun& r) {
  std::printf("%-5s %-9s route %7.3fs  length %9.2f mm  worst margin "
              "%9.1f ps  violations %3d\n",
              dataset.c_str(), path_search_backend_name(r.backend), r.route_s,
              r.outcome.total_length_um / 1000.0, r.outcome.worst_margin_ps,
              r.outcome.violated_constraints);
}

}  // namespace

int main() {
  bench::print_banner(
      "steiner: cost-distance trees vs the reference engines");
  bench::print_substitution_note();

  const std::vector<std::string> datasets = {"C1P1", "C2P1", "C3P1", "10k"};
  const PathSearchBackend backends[] = {PathSearchBackend::kDijkstra,
                                        PathSearchBackend::kAstar,
                                        PathSearchBackend::kSteiner};
  const FuzzOptions tol_options;

  RunReport report("bench.steiner");
  JsonValue& rows = report.section("designs");
  bool identical_ok = true;
  bool dominance_ok = true;
  bool counters_ok = true;
  double total_s = 0.0;
  for (const std::string& dataset : datasets) {
    std::vector<BackendRun> runs;
    for (const PathSearchBackend backend : backends) {
      runs.push_back(route_once(dataset, backend));
      total_s += runs.back().route_s;
      print_run(dataset, runs.back());
    }
    const BackendRun& dijkstra = runs[0];
    const BackendRun& astar = runs[1];
    const BackendRun& steiner = runs[2];

    if (!bench::outcomes_identical(dijkstra.outcome, astar.outcome)) {
      std::printf("%s: astar diverged from the reference dijkstra\n",
                  dataset.c_str());
      identical_ok = false;
    }
    const double tol = steiner_dominance_tol_ps(
        dijkstra.outcome.critical_delay_ps, tol_options);
    for (std::size_t i = 0; i < steiner.margins.size(); ++i) {
      if (steiner.margins[i] < dijkstra.margins[i] - tol) {
        std::printf("%s: constraint %zu margin %.3f ps < dijkstra %.3f - "
                    "tol %.3f\n",
                    dataset.c_str(), i, steiner.margins[i],
                    dijkstra.margins[i], tol);
        dominance_ok = false;
      }
    }
    if (steiner.outcome.total_length_um >
        1.05 * dijkstra.outcome.total_length_um) {
      std::printf("%s: steiner wirelength blew up (%.0f vs %.0f um)\n",
                  dataset.c_str(), steiner.outcome.total_length_um,
                  dijkstra.outcome.total_length_um);
      dominance_ok = false;
    }
    if (steiner.trees <= 0 || steiner.sink_paths < steiner.trees ||
        dijkstra.trees != 0) {
      std::printf("%s: steiner.* counters look dead or misattributed "
                  "(trees %lld, sink_paths %lld, dijkstra trees %lld)\n",
                  dataset.c_str(), static_cast<long long>(steiner.trees),
                  static_cast<long long>(steiner.sink_paths),
                  static_cast<long long>(dijkstra.trees));
      counters_ok = false;
    }

    JsonValue row;
    row.set("name", dataset);
    JsonValue modes;
    for (const BackendRun& r : runs) {
      JsonValue entry;
      entry.set("backend", path_search_backend_name(r.backend));
      entry.set("route_seconds", r.route_s);
      entry.set("critical_delay_ps", r.outcome.critical_delay_ps);
      entry.set("total_length_um", r.outcome.total_length_um);
      entry.set("worst_margin_ps", r.outcome.worst_margin_ps);
      entry.set("violated_constraints", r.outcome.violated_constraints);
      entry.set("steiner_trees", r.trees);
      entry.set("steiner_sink_paths", r.sink_paths);
      entry.set("steiner_cache_hits", r.cache_hits);
      modes.push_back(std::move(entry));
    }
    row.set("modes", std::move(modes));
    rows.push_back(std::move(row));
  }

  JsonValue& result = report.section("result");
  result.set("identical_ok", identical_ok);
  result.set("dominance_ok", dominance_ok);
  result.set("counters_ok", counters_ok);
  // Wall-clock data lives under "run" so --compare-semantic strips it.
  report.section("run").set("seconds", total_s);
  // The registry still holds the last (steiner on 10k) run, so the
  // steiner.* and path.* counters below describe it alone.
  report.add_metrics(MetricsRegistry::global());
  bench::save_report(report, "BENCH_steiner.json");

  if (!identical_ok) {
    std::printf("FAIL: astar is no longer bit-identical to dijkstra\n");
    return 1;
  }
  if (!dominance_ok) {
    std::printf("FAIL: steiner broke margin dominance vs dijkstra\n");
    return 1;
  }
  if (!counters_ok) {
    std::printf("FAIL: steiner.* semantic counters are not live\n");
    return 1;
  }
  std::printf("steiner front clean: margins dominate, astar identical\n");
  return 0;
}

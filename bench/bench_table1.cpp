// Reproduces Table 1 of the paper: the test bipolar circuits. Prints the
// dataset statistics (circuit, placement, cells, nets, constraints) plus
// the bipolar-specific counts our generator controls.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Table 1: test bipolar circuits");
  bench::print_substitution_note();

  TextTable table({"Data Name", "Circuit", "Placement", "cells", "nets",
                   "consts.", "rows", "diff pairs", "w-pitch nets", "pads"});
  for (const std::string& name : dataset_names()) {
    const Dataset ds = make_dataset(name);
    std::int32_t diff_pairs = 0;
    std::int32_t multi = 0;
    for (const NetId n : ds.netlist.nets()) {
      const Net& net = ds.netlist.net(n);
      if (net.is_differential() && net.diff_primary) ++diff_pairs;
      if (net.pitch_width > 1) ++multi;
    }
    std::int32_t pads = 0;
    std::int32_t logic_cells = 0;
    for (const TerminalId t : ds.netlist.terminals()) {
      if (ds.netlist.terminal(t).kind != TerminalKind::kCellPin) ++pads;
    }
    for (const CellId c : ds.netlist.cells()) {
      if (!ds.netlist.cell_type(c).is_feed()) ++logic_cells;
    }
    table.add_row({name, name.substr(0, 2), name.substr(2, 2),
                   TextTable::fmt(static_cast<std::int64_t>(logic_cells)),
                   TextTable::fmt(static_cast<std::int64_t>(ds.netlist.net_count())),
                   TextTable::fmt(static_cast<std::int64_t>(ds.constraints.size())),
                   TextTable::fmt(static_cast<std::int64_t>(ds.placement.row_count())),
                   TextTable::fmt(static_cast<std::int64_t>(diff_pairs)),
                   TextTable::fmt(static_cast<std::int64_t>(multi)),
                   TextTable::fmt(static_cast<std::int64_t>(pads))});
  }
  table.print(std::cout);
  return 0;
}

// Reproduces Table 2 of the paper: routing results with and without
// constraints — critical-path delay (ps, measured after channel routing),
// chip area (mm²), total wire length (mm) and CPU time (s).
#include <iostream>

#include "bench_util.hpp"
#include "bgr/metrics/experiment.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Table 2: experimental results");
  bench::print_substitution_note();

  std::vector<RunResult> con_rows;
  std::vector<RunResult> unc_rows;
  for (const std::string& name : dataset_names()) {
    const Dataset ds = make_dataset(name);
    con_rows.push_back(run_flow(ds, /*constrained=*/true));
    unc_rows.push_back(run_flow(ds, /*constrained=*/false));
  }

  auto print_block = [&](const char* title, const std::vector<RunResult>& rows) {
    std::cout << "\nRouting Results " << title << "\n";
    TextTable table({"Data Name", "Delay (ps)", "Area (mm2)", "Length (mm)",
                     "CPU (sec)"});
    for (const RunResult& r : rows) {
      table.add_row({r.dataset, TextTable::fmt(r.delay_ps, 1),
                     TextTable::fmt(r.area_mm2, 3),
                     TextTable::fmt(r.length_mm, 1),
                     TextTable::fmt(r.cpu_s, 2)});
    }
    table.print(std::cout);
  };
  print_block("With Constraints", con_rows);
  print_block("Without Constraints", unc_rows);

  std::cout << "\nDelay improvement of the constrained mode:\n";
  TextTable imp({"Data Name", "improvement (%)", "area change (%)"});
  double worst = 1e9;
  double best = -1e9;
  for (std::size_t i = 0; i < con_rows.size(); ++i) {
    const double gain = (unc_rows[i].delay_ps - con_rows[i].delay_ps) /
                        unc_rows[i].delay_ps * 100.0;
    const double area = (con_rows[i].area_mm2 - unc_rows[i].area_mm2) /
                        unc_rows[i].area_mm2 * 100.0;
    worst = std::min(worst, gain);
    best = std::max(best, gain);
    imp.add_row({con_rows[i].dataset, TextTable::fmt(gain, 2),
                 TextTable::fmt(area, 2)});
  }
  imp.print(std::cout);
  std::cout << "(paper: improvements 0.56%..23.5%, area almost unchanged; "
               "this run: "
            << TextTable::fmt(worst, 2) << "%.." << TextTable::fmt(best, 2)
            << "%)\n";
  return 0;
}

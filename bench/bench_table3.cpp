// Reproduces Table 3 of the paper: difference of the routed critical-path
// delay from the half-perimeter lower bound, constrained vs unconstrained,
// plus the average delay reduction relative to the lower bound (paper:
// 17.6%).
#include <iostream>

#include "bench_util.hpp"
#include "bgr/metrics/experiment.hpp"

int main() {
  using namespace bgr;
  bench::print_banner("Table 3: difference from the lower bound");
  bench::print_substitution_note();

  TextTable table({"Data Name", "lower bound (ps)", "Constrained (%)",
                   "Unconstrained (%)"});
  double total_reduction = 0.0;
  std::size_t rows = 0;
  for (const std::string& name : dataset_names()) {
    const Dataset ds = make_dataset(name);
    const RunResult con = run_flow(ds, true);
    const RunResult unc = run_flow(ds, false);
    table.add_row({name, TextTable::fmt(con.lower_bound_ps, 1),
                   TextTable::fmt(con.gap_to_lower_bound_percent(), 1),
                   TextTable::fmt(unc.gap_to_lower_bound_percent(), 1)});
    total_reduction +=
        (unc.delay_ps - con.delay_ps) / con.lower_bound_ps * 100.0;
    ++rows;
  }
  table.print(std::cout);
  std::cout << "\nAverage critical-path-delay reduction: "
            << TextTable::fmt(total_reduction / static_cast<double>(rows), 1)
            << "% of the lower bound (paper: 17.6%)\n";
  return 0;
}

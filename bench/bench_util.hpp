#pragma once

// Shared helpers for the benchmark/reproduction binaries.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bgr/gen/generator.hpp"
#include "bgr/io/table.hpp"
#include "bgr/route/router.hpp"

namespace bgr::bench {

inline void print_banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Reminder printed by every experiment binary: the circuits are synthetic
/// stand-ins (see DESIGN.md §2), so shapes — not absolute numbers — are
/// the comparison target.
inline void print_substitution_note() {
  std::cout << "(synthetic stand-in circuits; compare shapes with the paper, "
               "not absolute values)\n";
}

/// Tiny JSON emitter for the BENCH_*.json perf-trajectory files. Handles
/// the flat-ish objects the benches need (nested objects/arrays, string and
/// numeric fields) without pulling in a JSON dependency. Values are written
/// with enough precision to round-trip a double.
class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array(const std::string& key) { item_key(key); open('['); }
  void end_array() { close(']'); }
  void begin_object(const std::string& key) { item_key(key); open('{'); }
  /// Begins an unkeyed object (an array element).
  void begin_element() { comma(); open_raw('{'); }

  void field(const std::string& key, const std::string& value) {
    item_key(key);
    out_ << '"' << escaped(value) << '"';
  }
  void field(const std::string& key, const char* value) {
    field(key, std::string(value));
  }
  void field(const std::string& key, double value) {
    item_key(key);
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out_ << buf;
  }
  void field(const std::string& key, std::int64_t value) {
    item_key(key);
    out_ << value;
  }
  void field(const std::string& key, std::int32_t value) {
    field(key, static_cast<std::int64_t>(value));
  }
  void field(const std::string& key, bool value) {
    item_key(key);
    out_ << (value ? "true" : "false");
  }

  /// Writes the finished document (plus trailing newline) to `path`.
  void save(const std::string& path) const {
    std::ofstream os(path);
    os << out_.str() << "\n";
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }
  void comma() {
    if (!first_.empty() && !first_.back()) out_ << ", ";
    if (!first_.empty()) first_.back() = false;
  }
  void item_key(const std::string& key) {
    comma();
    out_ << '"' << escaped(key) << "\": ";
  }
  void open(char c) { open_raw(c); }
  void open_raw(char c) {
    out_ << c;
    first_.push_back(true);
  }
  void close(char c) {
    first_.pop_back();
    out_ << c;
  }

  std::ostringstream out_;
  std::vector<bool> first_;
};

/// Field-by-field equality of two routed results, phase stats included —
/// the cross-check the determinism and incremental-STA benches both rely
/// on (any drift is a bug, not noise).
inline bool outcomes_identical(const RouteOutcome& a, const RouteOutcome& b) {
  if (a.critical_delay_ps != b.critical_delay_ps) return false;
  if (a.total_length_um != b.total_length_um) return false;
  if (a.violated_constraints != b.violated_constraints) return false;
  if (a.worst_margin_ps != b.worst_margin_ps) return false;
  if (a.feed_cells_added != b.feed_cells_added) return false;
  if (a.phases.size() != b.phases.size()) return false;
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    if (a.phases[i].deletions != b.phases[i].deletions) return false;
    if (a.phases[i].reroutes != b.phases[i].reroutes) return false;
    if (a.phases[i].sum_max_density != b.phases[i].sum_max_density)
      return false;
  }
  return true;
}

}  // namespace bgr::bench

#pragma once

// Shared helpers for the benchmark/reproduction binaries.
#include <cstdio>
#include <iostream>
#include <string>

#include "bgr/gen/generator.hpp"
#include "bgr/io/table.hpp"

namespace bgr::bench {

inline void print_banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Reminder printed by every experiment binary: the circuits are synthetic
/// stand-ins (see DESIGN.md §2), so shapes — not absolute numbers — are
/// the comparison target.
inline void print_substitution_note() {
  std::cout << "(synthetic stand-in circuits; compare shapes with the paper, "
               "not absolute values)\n";
}

}  // namespace bgr::bench

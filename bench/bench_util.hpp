#pragma once

// Shared helpers for the benchmark/reproduction binaries.
#include <cstdio>
#include <iostream>
#include <string>

#include "bgr/gen/generator.hpp"
#include "bgr/io/table.hpp"
#include "bgr/obs/run_report.hpp"
#include "bgr/route/router.hpp"

namespace bgr::bench {

inline void print_banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Reminder printed by every experiment binary: the circuits are synthetic
/// stand-ins (see DESIGN.md §2), so shapes — not absolute numbers — are
/// the comparison target.
inline void print_substitution_note() {
  std::cout << "(synthetic stand-in circuits; compare shapes with the paper, "
               "not absolute values)\n";
}

/// Writes a bench RunReport (plus trailing newline) to `path` and prints
/// the customary "wrote" line. Benches build their BENCH_*.json documents
/// through obs/RunReport so the perf trajectory shares the bgr_route
/// schema (schema_version, kind, named sections).
inline void save_report(const RunReport& report, const std::string& path) {
  report.save(path);
  std::printf("wrote %s\n", path.c_str());
}

/// Field-by-field equality of two routed results, phase stats included —
/// the cross-check the determinism and incremental-STA benches both rely
/// on (any drift is a bug, not noise).
inline bool outcomes_identical(const RouteOutcome& a, const RouteOutcome& b) {
  if (a.critical_delay_ps != b.critical_delay_ps) return false;
  if (a.total_length_um != b.total_length_um) return false;
  if (a.violated_constraints != b.violated_constraints) return false;
  if (a.worst_margin_ps != b.worst_margin_ps) return false;
  if (a.feed_cells_added != b.feed_cells_added) return false;
  if (a.phases.size() != b.phases.size()) return false;
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    if (a.phases[i].deletions != b.phases[i].deletions) return false;
    if (a.phases[i].reroutes != b.phases[i].reroutes) return false;
    if (a.phases[i].sum_max_density != b.phases[i].sum_max_density)
      return false;
  }
  return true;
}

}  // namespace bgr::bench

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_criteria.dir/bench_ablation_criteria.cpp.o"
  "CMakeFiles/bench_ablation_criteria.dir/bench_ablation_criteria.cpp.o.d"
  "bench_ablation_criteria"
  "bench_ablation_criteria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_criteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_improvement.dir/bench_ablation_improvement.cpp.o"
  "CMakeFiles/bench_ablation_improvement.dir/bench_ablation_improvement.cpp.o.d"
  "bench_ablation_improvement"
  "bench_ablation_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_improvement.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_netbudget.dir/bench_baseline_netbudget.cpp.o"
  "CMakeFiles/bench_baseline_netbudget.dir/bench_baseline_netbudget.cpp.o.d"
  "bench_baseline_netbudget"
  "bench_baseline_netbudget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_netbudget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_baseline_netbudget.
# This may be replaced when dependencies are built.

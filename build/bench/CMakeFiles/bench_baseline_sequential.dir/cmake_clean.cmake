file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_sequential.dir/bench_baseline_sequential.cpp.o"
  "CMakeFiles/bench_baseline_sequential.dir/bench_baseline_sequential.cpp.o.d"
  "bench_baseline_sequential"
  "bench_baseline_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_baseline_sequential.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_channel_algorithms.dir/bench_channel_algorithms.cpp.o"
  "CMakeFiles/bench_channel_algorithms.dir/bench_channel_algorithms.cpp.o.d"
  "bench_channel_algorithms"
  "bench_channel_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_channel_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_channel_algorithms.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_clock_skew.dir/bench_clock_skew.cpp.o"
  "CMakeFiles/bench_clock_skew.dir/bench_clock_skew.cpp.o.d"
  "bench_clock_skew"
  "bench_clock_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clock_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_clock_skew.
# This may be replaced when dependencies are built.

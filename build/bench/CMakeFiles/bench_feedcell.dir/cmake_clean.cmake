file(REMOVE_RECURSE
  "CMakeFiles/bench_feedcell.dir/bench_feedcell.cpp.o"
  "CMakeFiles/bench_feedcell.dir/bench_feedcell.cpp.o.d"
  "bench_feedcell"
  "bench_feedcell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feedcell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

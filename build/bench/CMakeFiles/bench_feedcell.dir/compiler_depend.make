# Empty compiler generated dependencies file for bench_feedcell.
# This may be replaced when dependencies are built.

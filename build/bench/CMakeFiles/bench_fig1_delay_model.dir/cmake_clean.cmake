file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_delay_model.dir/bench_fig1_delay_model.cpp.o"
  "CMakeFiles/bench_fig1_delay_model.dir/bench_fig1_delay_model.cpp.o.d"
  "bench_fig1_delay_model"
  "bench_fig1_delay_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_delay_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig1_delay_model.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_phases.cpp" "bench/CMakeFiles/bench_fig2_phases.dir/bench_fig2_phases.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2_phases.dir/bench_fig2_phases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgr/metrics/CMakeFiles/bgr_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/io/CMakeFiles/bgr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/gen/CMakeFiles/bgr_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/place/CMakeFiles/bgr_place.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/channel/CMakeFiles/bgr_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/route/CMakeFiles/bgr_route.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/timing/CMakeFiles/bgr_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/layout/CMakeFiles/bgr_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/netlist/CMakeFiles/bgr_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/graph/CMakeFiles/bgr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/common/CMakeFiles/bgr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_phases.dir/bench_fig2_phases.cpp.o"
  "CMakeFiles/bench_fig2_phases.dir/bench_fig2_phases.cpp.o.d"
  "bench_fig2_phases"
  "bench_fig2_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_routing_graph.dir/bench_fig3_routing_graph.cpp.o"
  "CMakeFiles/bench_fig3_routing_graph.dir/bench_fig3_routing_graph.cpp.o.d"
  "bench_fig3_routing_graph"
  "bench_fig3_routing_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_routing_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

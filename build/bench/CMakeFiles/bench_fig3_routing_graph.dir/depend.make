# Empty dependencies file for bench_fig3_routing_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_density.dir/bench_fig4_density.cpp.o"
  "CMakeFiles/bench_fig4_density.dir/bench_fig4_density.cpp.o.d"
  "bench_fig4_density"
  "bench_fig4_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig4_density.
# This may be replaced when dependencies are built.

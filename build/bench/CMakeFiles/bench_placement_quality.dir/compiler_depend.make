# Empty compiler generated dependencies file for bench_placement_quality.
# This may be replaced when dependencies are built.

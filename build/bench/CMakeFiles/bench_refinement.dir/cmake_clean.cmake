file(REMOVE_RECURSE
  "CMakeFiles/bench_refinement.dir/bench_refinement.cpp.o"
  "CMakeFiles/bench_refinement.dir/bench_refinement.cpp.o.d"
  "bench_refinement"
  "bench_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_refinement.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bipolar_features.dir/bipolar_features.cpp.o"
  "CMakeFiles/bipolar_features.dir/bipolar_features.cpp.o.d"
  "bipolar_features"
  "bipolar_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bipolar_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

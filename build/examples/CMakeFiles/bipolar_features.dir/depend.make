# Empty dependencies file for bipolar_features.
# This may be replaced when dependencies are built.

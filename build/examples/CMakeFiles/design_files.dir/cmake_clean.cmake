file(REMOVE_RECURSE
  "CMakeFiles/design_files.dir/design_files.cpp.o"
  "CMakeFiles/design_files.dir/design_files.cpp.o.d"
  "design_files"
  "design_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

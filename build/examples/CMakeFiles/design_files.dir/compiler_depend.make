# Empty compiler generated dependencies file for design_files.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/full_report.dir/full_report.cpp.o"
  "CMakeFiles/full_report.dir/full_report.cpp.o.d"
  "full_report"
  "full_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/timing_closure.dir/timing_closure.cpp.o"
  "CMakeFiles/timing_closure.dir/timing_closure.cpp.o.d"
  "timing_closure"
  "timing_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("bgr/common")
subdirs("bgr/graph")
subdirs("bgr/netlist")
subdirs("bgr/layout")
subdirs("bgr/place")
subdirs("bgr/timing")
subdirs("bgr/route")
subdirs("bgr/channel")
subdirs("bgr/verify")
subdirs("bgr/gen")
subdirs("bgr/io")
subdirs("bgr/metrics")

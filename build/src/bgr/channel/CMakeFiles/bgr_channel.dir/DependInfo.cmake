
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgr/channel/channel_router.cpp" "src/bgr/channel/CMakeFiles/bgr_channel.dir/channel_router.cpp.o" "gcc" "src/bgr/channel/CMakeFiles/bgr_channel.dir/channel_router.cpp.o.d"
  "/root/repo/src/bgr/channel/geometry.cpp" "src/bgr/channel/CMakeFiles/bgr_channel.dir/geometry.cpp.o" "gcc" "src/bgr/channel/CMakeFiles/bgr_channel.dir/geometry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgr/common/CMakeFiles/bgr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/route/CMakeFiles/bgr_route.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/timing/CMakeFiles/bgr_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/graph/CMakeFiles/bgr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/layout/CMakeFiles/bgr_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/netlist/CMakeFiles/bgr_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bgr_channel.dir/channel_router.cpp.o"
  "CMakeFiles/bgr_channel.dir/channel_router.cpp.o.d"
  "CMakeFiles/bgr_channel.dir/geometry.cpp.o"
  "CMakeFiles/bgr_channel.dir/geometry.cpp.o.d"
  "libbgr_channel.a"
  "libbgr_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgr_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbgr_channel.a"
)

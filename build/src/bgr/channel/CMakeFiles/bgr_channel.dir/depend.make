# Empty dependencies file for bgr_channel.
# This may be replaced when dependencies are built.

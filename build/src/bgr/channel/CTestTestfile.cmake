# CMake generated Testfile for 
# Source directory: /root/repo/src/bgr/channel
# Build directory: /root/repo/build/src/bgr/channel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

file(REMOVE_RECURSE
  "CMakeFiles/bgr_common.dir/check.cpp.o"
  "CMakeFiles/bgr_common.dir/check.cpp.o.d"
  "CMakeFiles/bgr_common.dir/log.cpp.o"
  "CMakeFiles/bgr_common.dir/log.cpp.o.d"
  "libbgr_common.a"
  "libbgr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

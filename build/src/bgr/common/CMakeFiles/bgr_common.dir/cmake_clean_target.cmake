file(REMOVE_RECURSE
  "libbgr_common.a"
)

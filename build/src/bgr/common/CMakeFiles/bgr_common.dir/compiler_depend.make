# Empty compiler generated dependencies file for bgr_common.
# This may be replaced when dependencies are built.

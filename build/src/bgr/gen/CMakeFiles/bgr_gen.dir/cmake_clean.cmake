file(REMOVE_RECURSE
  "CMakeFiles/bgr_gen.dir/generator.cpp.o"
  "CMakeFiles/bgr_gen.dir/generator.cpp.o.d"
  "libbgr_gen.a"
  "libbgr_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgr_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbgr_gen.a"
)

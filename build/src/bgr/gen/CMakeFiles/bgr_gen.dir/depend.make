# Empty dependencies file for bgr_gen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bgr_graph.dir/dag.cpp.o"
  "CMakeFiles/bgr_graph.dir/dag.cpp.o.d"
  "CMakeFiles/bgr_graph.dir/small_graph.cpp.o"
  "CMakeFiles/bgr_graph.dir/small_graph.cpp.o.d"
  "libbgr_graph.a"
  "libbgr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbgr_graph.a"
)

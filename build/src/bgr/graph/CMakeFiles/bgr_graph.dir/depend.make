# Empty dependencies file for bgr_graph.
# This may be replaced when dependencies are built.

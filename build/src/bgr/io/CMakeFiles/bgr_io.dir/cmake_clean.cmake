file(REMOVE_RECURSE
  "CMakeFiles/bgr_io.dir/ascii_art.cpp.o"
  "CMakeFiles/bgr_io.dir/ascii_art.cpp.o.d"
  "CMakeFiles/bgr_io.dir/design_io.cpp.o"
  "CMakeFiles/bgr_io.dir/design_io.cpp.o.d"
  "CMakeFiles/bgr_io.dir/route_io.cpp.o"
  "CMakeFiles/bgr_io.dir/route_io.cpp.o.d"
  "libbgr_io.a"
  "libbgr_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgr_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbgr_io.a"
)

# Empty compiler generated dependencies file for bgr_io.
# This may be replaced when dependencies are built.

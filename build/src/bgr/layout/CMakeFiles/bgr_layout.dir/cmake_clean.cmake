file(REMOVE_RECURSE
  "CMakeFiles/bgr_layout.dir/feed_insertion.cpp.o"
  "CMakeFiles/bgr_layout.dir/feed_insertion.cpp.o.d"
  "CMakeFiles/bgr_layout.dir/placement.cpp.o"
  "CMakeFiles/bgr_layout.dir/placement.cpp.o.d"
  "libbgr_layout.a"
  "libbgr_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgr_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

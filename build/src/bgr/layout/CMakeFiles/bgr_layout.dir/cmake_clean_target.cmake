file(REMOVE_RECURSE
  "libbgr_layout.a"
)

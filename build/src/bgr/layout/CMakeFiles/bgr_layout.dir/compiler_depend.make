# Empty compiler generated dependencies file for bgr_layout.
# This may be replaced when dependencies are built.

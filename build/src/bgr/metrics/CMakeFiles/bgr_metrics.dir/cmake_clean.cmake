file(REMOVE_RECURSE
  "CMakeFiles/bgr_metrics.dir/experiment.cpp.o"
  "CMakeFiles/bgr_metrics.dir/experiment.cpp.o.d"
  "CMakeFiles/bgr_metrics.dir/report.cpp.o"
  "CMakeFiles/bgr_metrics.dir/report.cpp.o.d"
  "CMakeFiles/bgr_metrics.dir/skew.cpp.o"
  "CMakeFiles/bgr_metrics.dir/skew.cpp.o.d"
  "libbgr_metrics.a"
  "libbgr_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgr_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

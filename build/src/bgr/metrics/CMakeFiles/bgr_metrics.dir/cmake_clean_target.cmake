file(REMOVE_RECURSE
  "libbgr_metrics.a"
)

# Empty dependencies file for bgr_metrics.
# This may be replaced when dependencies are built.

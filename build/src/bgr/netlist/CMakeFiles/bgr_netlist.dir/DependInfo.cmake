
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgr/netlist/library.cpp" "src/bgr/netlist/CMakeFiles/bgr_netlist.dir/library.cpp.o" "gcc" "src/bgr/netlist/CMakeFiles/bgr_netlist.dir/library.cpp.o.d"
  "/root/repo/src/bgr/netlist/netlist.cpp" "src/bgr/netlist/CMakeFiles/bgr_netlist.dir/netlist.cpp.o" "gcc" "src/bgr/netlist/CMakeFiles/bgr_netlist.dir/netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgr/common/CMakeFiles/bgr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bgr_netlist.dir/library.cpp.o"
  "CMakeFiles/bgr_netlist.dir/library.cpp.o.d"
  "CMakeFiles/bgr_netlist.dir/netlist.cpp.o"
  "CMakeFiles/bgr_netlist.dir/netlist.cpp.o.d"
  "libbgr_netlist.a"
  "libbgr_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgr_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbgr_netlist.a"
)

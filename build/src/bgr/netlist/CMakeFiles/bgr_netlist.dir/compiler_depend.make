# Empty compiler generated dependencies file for bgr_netlist.
# This may be replaced when dependencies are built.

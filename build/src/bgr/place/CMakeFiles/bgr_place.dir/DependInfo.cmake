
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgr/place/force_placer.cpp" "src/bgr/place/CMakeFiles/bgr_place.dir/force_placer.cpp.o" "gcc" "src/bgr/place/CMakeFiles/bgr_place.dir/force_placer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgr/common/CMakeFiles/bgr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/netlist/CMakeFiles/bgr_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bgr_place.dir/force_placer.cpp.o"
  "CMakeFiles/bgr_place.dir/force_placer.cpp.o.d"
  "libbgr_place.a"
  "libbgr_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgr_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

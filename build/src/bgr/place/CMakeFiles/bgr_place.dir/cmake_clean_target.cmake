file(REMOVE_RECURSE
  "libbgr_place.a"
)

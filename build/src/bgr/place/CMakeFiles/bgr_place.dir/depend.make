# Empty dependencies file for bgr_place.
# This may be replaced when dependencies are built.

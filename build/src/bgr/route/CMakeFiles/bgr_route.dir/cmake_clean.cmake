file(REMOVE_RECURSE
  "CMakeFiles/bgr_route.dir/assign.cpp.o"
  "CMakeFiles/bgr_route.dir/assign.cpp.o.d"
  "CMakeFiles/bgr_route.dir/density.cpp.o"
  "CMakeFiles/bgr_route.dir/density.cpp.o.d"
  "CMakeFiles/bgr_route.dir/net_span.cpp.o"
  "CMakeFiles/bgr_route.dir/net_span.cpp.o.d"
  "CMakeFiles/bgr_route.dir/router.cpp.o"
  "CMakeFiles/bgr_route.dir/router.cpp.o.d"
  "CMakeFiles/bgr_route.dir/routing_graph.cpp.o"
  "CMakeFiles/bgr_route.dir/routing_graph.cpp.o.d"
  "libbgr_route.a"
  "libbgr_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgr_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbgr_route.a"
)

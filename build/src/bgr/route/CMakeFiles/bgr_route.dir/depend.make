# Empty dependencies file for bgr_route.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src/bgr/route
# Build directory: /root/repo/build/src/bgr/route
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

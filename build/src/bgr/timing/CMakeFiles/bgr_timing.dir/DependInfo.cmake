
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgr/timing/analyzer.cpp" "src/bgr/timing/CMakeFiles/bgr_timing.dir/analyzer.cpp.o" "gcc" "src/bgr/timing/CMakeFiles/bgr_timing.dir/analyzer.cpp.o.d"
  "/root/repo/src/bgr/timing/delay_graph.cpp" "src/bgr/timing/CMakeFiles/bgr_timing.dir/delay_graph.cpp.o" "gcc" "src/bgr/timing/CMakeFiles/bgr_timing.dir/delay_graph.cpp.o.d"
  "/root/repo/src/bgr/timing/lower_bound.cpp" "src/bgr/timing/CMakeFiles/bgr_timing.dir/lower_bound.cpp.o" "gcc" "src/bgr/timing/CMakeFiles/bgr_timing.dir/lower_bound.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgr/common/CMakeFiles/bgr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/graph/CMakeFiles/bgr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/netlist/CMakeFiles/bgr_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/bgr/layout/CMakeFiles/bgr_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

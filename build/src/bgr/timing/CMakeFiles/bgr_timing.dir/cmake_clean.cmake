file(REMOVE_RECURSE
  "CMakeFiles/bgr_timing.dir/analyzer.cpp.o"
  "CMakeFiles/bgr_timing.dir/analyzer.cpp.o.d"
  "CMakeFiles/bgr_timing.dir/delay_graph.cpp.o"
  "CMakeFiles/bgr_timing.dir/delay_graph.cpp.o.d"
  "CMakeFiles/bgr_timing.dir/lower_bound.cpp.o"
  "CMakeFiles/bgr_timing.dir/lower_bound.cpp.o.d"
  "libbgr_timing.a"
  "libbgr_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgr_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

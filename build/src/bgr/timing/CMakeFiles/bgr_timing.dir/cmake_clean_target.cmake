file(REMOVE_RECURSE
  "libbgr_timing.a"
)

# Empty dependencies file for bgr_timing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bgr_verify.dir/verifier.cpp.o"
  "CMakeFiles/bgr_verify.dir/verifier.cpp.o.d"
  "libbgr_verify.a"
  "libbgr_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgr_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbgr_verify.a"
)

# Empty compiler generated dependencies file for bgr_verify.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_analyzer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_ascii_art.dir/test_ascii_art.cpp.o"
  "CMakeFiles/test_ascii_art.dir/test_ascii_art.cpp.o.d"
  "test_ascii_art"
  "test_ascii_art.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ascii_art.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

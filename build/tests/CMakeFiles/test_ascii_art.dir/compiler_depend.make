# Empty compiler generated dependencies file for test_ascii_art.
# This may be replaced when dependencies are built.

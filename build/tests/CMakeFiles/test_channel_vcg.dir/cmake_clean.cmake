file(REMOVE_RECURSE
  "CMakeFiles/test_channel_vcg.dir/test_channel_vcg.cpp.o"
  "CMakeFiles/test_channel_vcg.dir/test_channel_vcg.cpp.o.d"
  "test_channel_vcg"
  "test_channel_vcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel_vcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_channel_vcg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_common_misc.dir/test_common_misc.cpp.o"
  "CMakeFiles/test_common_misc.dir/test_common_misc.cpp.o.d"
  "test_common_misc"
  "test_common_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_criteria.dir/test_criteria.cpp.o"
  "CMakeFiles/test_criteria.dir/test_criteria.cpp.o.d"
  "test_criteria"
  "test_criteria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_criteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

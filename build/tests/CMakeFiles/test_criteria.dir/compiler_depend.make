# Empty compiler generated dependencies file for test_criteria.
# This may be replaced when dependencies are built.

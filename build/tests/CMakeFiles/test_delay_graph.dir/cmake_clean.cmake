file(REMOVE_RECURSE
  "CMakeFiles/test_delay_graph.dir/test_delay_graph.cpp.o"
  "CMakeFiles/test_delay_graph.dir/test_delay_graph.cpp.o.d"
  "test_delay_graph"
  "test_delay_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delay_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

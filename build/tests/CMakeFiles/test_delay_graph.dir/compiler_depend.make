# Empty compiler generated dependencies file for test_delay_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_elmore.dir/test_elmore.cpp.o"
  "CMakeFiles/test_elmore.dir/test_elmore.cpp.o.d"
  "test_elmore"
  "test_elmore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elmore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_elmore.
# This may be replaced when dependencies are built.

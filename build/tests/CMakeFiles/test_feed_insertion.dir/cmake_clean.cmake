file(REMOVE_RECURSE
  "CMakeFiles/test_feed_insertion.dir/test_feed_insertion.cpp.o"
  "CMakeFiles/test_feed_insertion.dir/test_feed_insertion.cpp.o.d"
  "test_feed_insertion"
  "test_feed_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feed_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

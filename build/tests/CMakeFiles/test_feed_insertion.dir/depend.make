# Empty dependencies file for test_feed_insertion.
# This may be replaced when dependencies are built.

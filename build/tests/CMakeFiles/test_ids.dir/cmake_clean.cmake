file(REMOVE_RECURSE
  "CMakeFiles/test_ids.dir/test_ids.cpp.o"
  "CMakeFiles/test_ids.dir/test_ids.cpp.o.d"
  "test_ids"
  "test_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

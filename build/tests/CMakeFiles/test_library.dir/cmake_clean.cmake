file(REMOVE_RECURSE
  "CMakeFiles/test_library.dir/test_library.cpp.o"
  "CMakeFiles/test_library.dir/test_library.cpp.o.d"
  "test_library"
  "test_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

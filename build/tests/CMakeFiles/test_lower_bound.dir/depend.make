# Empty dependencies file for test_lower_bound.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_net_budgets.dir/test_net_budgets.cpp.o"
  "CMakeFiles/test_net_budgets.dir/test_net_budgets.cpp.o.d"
  "test_net_budgets"
  "test_net_budgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_budgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_net_budgets.
# This may be replaced when dependencies are built.

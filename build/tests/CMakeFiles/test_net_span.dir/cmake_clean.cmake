file(REMOVE_RECURSE
  "CMakeFiles/test_net_span.dir/test_net_span.cpp.o"
  "CMakeFiles/test_net_span.dir/test_net_span.cpp.o.d"
  "test_net_span"
  "test_net_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

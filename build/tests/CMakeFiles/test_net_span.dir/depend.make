# Empty dependencies file for test_net_span.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_netlist.dir/test_netlist.cpp.o"
  "CMakeFiles/test_netlist.dir/test_netlist.cpp.o.d"
  "test_netlist"
  "test_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

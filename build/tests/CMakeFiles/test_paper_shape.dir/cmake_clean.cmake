file(REMOVE_RECURSE
  "CMakeFiles/test_paper_shape.dir/test_paper_shape.cpp.o"
  "CMakeFiles/test_paper_shape.dir/test_paper_shape.cpp.o.d"
  "test_paper_shape"
  "test_paper_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_paper_shape.
# This may be replaced when dependencies are built.

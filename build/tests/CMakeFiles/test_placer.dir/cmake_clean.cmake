file(REMOVE_RECURSE
  "CMakeFiles/test_placer.dir/test_placer.cpp.o"
  "CMakeFiles/test_placer.dir/test_placer.cpp.o.d"
  "test_placer"
  "test_placer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_placer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

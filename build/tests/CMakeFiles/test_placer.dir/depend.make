# Empty dependencies file for test_placer.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_router.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_router_edge_cases.dir/test_router_edge_cases.cpp.o"
  "CMakeFiles/test_router_edge_cases.dir/test_router_edge_cases.cpp.o.d"
  "test_router_edge_cases"
  "test_router_edge_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_router_edge_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_router_edge_cases.
# This may be replaced when dependencies are built.

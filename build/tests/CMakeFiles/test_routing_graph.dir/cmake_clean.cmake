file(REMOVE_RECURSE
  "CMakeFiles/test_routing_graph.dir/test_routing_graph.cpp.o"
  "CMakeFiles/test_routing_graph.dir/test_routing_graph.cpp.o.d"
  "test_routing_graph"
  "test_routing_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

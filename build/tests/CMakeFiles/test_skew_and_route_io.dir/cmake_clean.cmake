file(REMOVE_RECURSE
  "CMakeFiles/test_skew_and_route_io.dir/test_skew_and_route_io.cpp.o"
  "CMakeFiles/test_skew_and_route_io.dir/test_skew_and_route_io.cpp.o.d"
  "test_skew_and_route_io"
  "test_skew_and_route_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skew_and_route_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_skew_and_route_io.
# This may be replaced when dependencies are built.

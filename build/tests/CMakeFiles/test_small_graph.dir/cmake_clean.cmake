file(REMOVE_RECURSE
  "CMakeFiles/test_small_graph.dir/test_small_graph.cpp.o"
  "CMakeFiles/test_small_graph.dir/test_small_graph.cpp.o.d"
  "test_small_graph"
  "test_small_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_small_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

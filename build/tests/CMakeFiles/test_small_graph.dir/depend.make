# Empty dependencies file for test_small_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bgr_route_cli.dir/bgr_route.cpp.o"
  "CMakeFiles/bgr_route_cli.dir/bgr_route.cpp.o.d"
  "bgr_route"
  "bgr_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgr_route_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bgr_route_cli.
# This may be replaced when dependencies are built.

// Demonstrates the three bipolar-specific features of the router (§4 of
// the paper) on a small hand-built design:
//   * differential-drive pairs routed as mirrored trees (§4.1),
//   * a multi-pitch clock net with width-scaled density (§4.2),
//   * feed-cell insertion when feedthrough positions run out (§4.3).
#include <cstdio>

#include "bgr/channel/channel_router.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/route/router.hpp"

int main() {
  using namespace bgr;
  Netlist nl{Library::make_ecl_default()};
  const Library& lib = nl.library();
  auto pin = [&](CellId c, const char* p) { return nl.cell_type(c).find_pin(p); };

  // A differential link: DDRV on row 0 drives two DRCV receivers on row 3.
  const CellId drv = nl.add_cell("drv", lib.find("DDRV"));
  const CellId rcv0 = nl.add_cell("rcv0", lib.find("DRCV"));
  const CellId rcv1 = nl.add_cell("rcv1", lib.find("DRCV"));
  const NetId in = nl.add_net("in");
  const NetId nt = nl.add_net("link_t");
  const NetId nc = nl.add_net("link_c");
  (void)nl.add_pad_input("IN", in, 100.0, 220.0);
  (void)nl.connect(in, drv, pin(drv, "I"));
  (void)nl.connect(nt, drv, pin(drv, "OT"));
  (void)nl.connect(nc, drv, pin(drv, "OC"));
  for (const CellId rcv : {rcv0, rcv1}) {
    (void)nl.connect(nt, rcv, pin(rcv, "IT"));
    (void)nl.connect(nc, rcv, pin(rcv, "IC"));
  }
  nl.make_differential(nt, nc);

  // A 3-pitch clock from a CKBUF to three registers spread over the rows.
  const CellId ckbuf = nl.add_cell("ckbuf", lib.find("CKBUF"));
  const NetId ck_in = nl.add_net("ck_in");
  const NetId ck = nl.add_net("ck", /*pitch_width=*/3);
  (void)nl.add_pad_input("CK", ck_in, 60.0, 140.0);
  (void)nl.connect(ck_in, ckbuf, pin(ckbuf, "I"));
  (void)nl.connect(ck, ckbuf, pin(ckbuf, "O"));
  std::vector<CellId> regs;
  for (int i = 0; i < 3; ++i) {
    const CellId ff = nl.add_cell("ff" + std::to_string(i), lib.find("DFF"));
    regs.push_back(ff);
    (void)nl.connect(ck, ff, pin(ff, "CK"));
  }
  // Give the registers data so the netlist validates.
  const NetId d0 = nl.add_net("d0");
  (void)nl.connect(d0, rcv0, pin(rcv0, "O"));
  (void)nl.connect(d0, regs[0], pin(regs[0], "D"));
  const NetId d1 = nl.add_net("d1");
  (void)nl.connect(d1, rcv1, pin(rcv1, "O"));
  (void)nl.connect(d1, regs[1], pin(regs[1], "D"));
  const NetId q0 = nl.add_net("q0");
  (void)nl.connect(q0, regs[0], pin(regs[0], "Q"));
  (void)nl.connect(q0, regs[2], pin(regs[2], "D"));
  const NetId q1 = nl.add_net("q1");
  (void)nl.connect(q1, regs[1], pin(regs[1], "Q"));
  (void)nl.add_pad_output("Q1", q1, 0.05);
  const NetId q2 = nl.add_net("q2");
  (void)nl.connect(q2, regs[2], pin(regs[2], "Q"));
  (void)nl.add_pad_output("Q2", q2, 0.05);
  nl.validate();

  // Deliberately tight placement: rows 1 and 2 almost fully blocked, so
  // the feedthrough assignment must insert feed cells.
  Placement pl(4, 26);
  pl.place(nl, drv, RowId{0}, 2);
  pl.place(nl, ckbuf, RowId{0}, 12);
  pl.place(nl, regs[0], RowId{1}, 0);
  pl.place(nl, regs[1], RowId{1}, 6);
  pl.place(nl, nl.add_cell("blk0", lib.find("MUX2")), RowId{1}, 12);
  pl.place(nl, nl.add_cell("blk1", lib.find("MUX2")), RowId{1}, 16);
  pl.place(nl, nl.add_cell("blk2", lib.find("MUX2")), RowId{1}, 20);
  pl.place(nl, regs[2], RowId{2}, 0);
  pl.place(nl, nl.add_cell("blk3", lib.find("MUX2")), RowId{2}, 6);
  pl.place(nl, nl.add_cell("blk4", lib.find("MUX2")), RowId{2}, 10);
  pl.place(nl, nl.add_cell("blk5", lib.find("MUX2")), RowId{2}, 14);
  pl.place(nl, nl.add_cell("blk6", lib.find("MUX2")), RowId{2}, 18);
  pl.place(nl, rcv0, RowId{3}, 2);
  pl.place(nl, rcv1, RowId{3}, 12);
  for (const TerminalId t : nl.terminals()) {
    const Terminal& term = nl.terminal(t);
    if (term.kind == TerminalKind::kCellPin) continue;
    pl.place_pad(t, term.kind == TerminalKind::kPadIn, IntInterval{0, 25});
  }

  GlobalRouter router(nl, std::move(pl), TechParams{}, {}, RouterOptions{});
  const RouteOutcome outcome = router.run();
  std::printf("feed-cell insertion: %d feed cells added, chip widened by %d "
              "pitches (now %d columns)\n",
              outcome.feed_cells_added, outcome.widen_pitches,
              router.placement().width());

  // Differential mirroring: the shadow tree is the primary shifted by +1.
  const RoutingGraph& gt = router.net_graph(nt);
  const RoutingGraph& gc = router.net_graph(nc);
  std::printf("\ndifferential pair link_t / link_c (mirrored trees):\n");
  for (const auto e : gt.alive_edges()) {
    const RouteEdgeInfo& a = gt.edge_info(e);
    const RouteEdgeInfo& b = gc.edge_info(e);
    const char* kind = a.kind == RouteEdgeKind::kTrunk      ? "trunk"
                       : a.kind == RouteEdgeKind::kTermLink ? "term "
                                                            : "feed ";
    std::printf("  %s  t: chan %d [%3d,%3d]   c: chan %d [%3d,%3d]\n", kind,
                a.channel, a.span.lo, a.span.hi, b.channel, b.span.lo,
                b.span.hi);
  }

  // Multi-pitch density: the clock's trunks count 3 per column.
  std::printf("\n3-pitch clock net ck: routed length %.1f um\n",
              router.net_length_um(ck));
  for (const auto e : router.net_graph(ck).alive_edges()) {
    const RouteEdgeInfo& info = router.net_graph(ck).edge_info(e);
    if (!info.is_trunk()) continue;
    std::printf("  trunk chan %d [%3d,%3d]: d_M contribution 3, chart says "
                "%d at column %d\n",
                info.channel, info.span.lo, info.span.hi,
                router.density().total_at(info.channel, info.span.lo),
                info.span.lo);
  }

  ChannelStage channel(router);
  channel.run();
  std::printf("\nfinal: delay %.1f ps, area %.4f mm2, length %.2f mm\n",
              channel.apply_and_critical_delay_ps(router.delay_graph()),
              channel.chip_area_mm2(),
              channel.total_detailed_length_um() / 1000.0);
  return 0;
}

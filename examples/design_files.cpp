// Working with design files: generate a circuit, save it in the
// `bgr-design 1` text format, reload it, and route the reloaded copy —
// the workflow for bringing external netlists into the router.
#include <cstdio>

#include "bgr/io/design_io.hpp"
#include "bgr/metrics/experiment.hpp"

int main(int argc, char** argv) {
  using namespace bgr;
  const std::string path = argc > 1 ? argv[1] : "/tmp/bgr_example_design.txt";

  CircuitSpec spec;
  spec.name = "filedemo";
  spec.seed = 2024;
  spec.rows = 6;
  spec.target_cells = 200;
  spec.levels = 7;
  spec.primary_inputs = 8;
  spec.primary_outputs = 8;
  spec.diff_pairs = 2;
  spec.clock_buffers = 1;
  spec.path_constraints = 10;
  const Dataset original = generate_circuit(spec);

  save_design(path, original);
  std::printf("saved design '%s' to %s\n", original.name.c_str(), path.c_str());

  const Dataset loaded = load_design(path);
  std::printf("reloaded: %d cells, %d nets, %d terminals, %zu constraints\n",
              loaded.netlist.cell_count(), loaded.netlist.net_count(),
              loaded.netlist.terminal_count(), loaded.constraints.size());

  const RunResult from_original = run_flow(original, /*constrained=*/true);
  const RunResult from_loaded = run_flow(loaded, /*constrained=*/true);
  std::printf("routed original: delay %.1f ps, area %.3f mm2\n",
              from_original.delay_ps, from_original.area_mm2);
  std::printf("routed reloaded: delay %.1f ps, area %.3f mm2\n",
              from_loaded.delay_ps, from_loaded.area_mm2);
  std::printf("round-trip %s\n",
              from_original.delay_ps == from_loaded.delay_ps
                  ? "is bit-exact"
                  : "differs (unexpected!)");
  return 0;
}

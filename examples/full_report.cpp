// The complete tour: route a built-in dataset and produce every artifact
// the library can emit — phase log, design statistics, clock-skew report,
// signoff verification, ASCII chip map, SVG drawing, and the bgr-route
// result dump.
#include <cstdio>
#include <iostream>

#include "bgr/channel/geometry.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/io/ascii_art.hpp"
#include "bgr/io/route_io.hpp"
#include "bgr/metrics/report.hpp"
#include "bgr/metrics/skew.hpp"
#include "bgr/verify/verifier.hpp"

int main(int argc, char** argv) {
  using namespace bgr;
  const std::string name = argc > 1 ? argv[1] : "C1P1";
  const std::string out_dir = argc > 2 ? argv[2] : "/tmp";

  Dataset design = make_dataset(name);
  std::printf("routing %s (%d cells, %d nets, %zu constraints)...\n",
              name.c_str(), design.netlist.cell_count(),
              design.netlist.net_count(), design.constraints.size());

  GlobalRouter router(design.netlist, std::move(design.placement), design.tech,
                      design.constraints, RouterOptions{});
  const RouteOutcome outcome = router.run();
  ChannelStage channel(router);
  channel.run();
  const double delay =
      channel.apply_and_critical_delay_ps(router.delay_graph());

  std::printf("\nphases:\n");
  for (const PhaseStats& ph : outcome.phases) {
    std::printf("  %-16s deletions %5lld reroutes %4lld crit %8.1f ps\n",
                ph.name.c_str(), static_cast<long long>(ph.deletions),
                static_cast<long long>(ph.reroutes), ph.critical_delay_ps);
  }
  std::printf("\nresult: delay %.1f ps, area %.3f mm2, length %.2f mm\n\n",
              delay, channel.chip_area_mm2(),
              channel.total_detailed_length_um() / 1000.0);

  print_stats(std::cout, collect_stats(router, channel));

  std::printf("\nclock skew:\n");
  for (const ClockNetSkew& entry : clock_skew_report(router)) {
    std::printf("  %-8s pitch %d fanout %3d skew %6.1f ps (1-pitch: %6.1f)\n",
                entry.name.c_str(), entry.pitch_width, entry.fanout,
                entry.skew_ps(), entry.skew_1pitch_ps);
  }

  const RouteVerifier verifier(router, &channel);
  const auto issues = verifier.run();
  std::printf("\nverification: %s (%zu findings)\n",
              RouteVerifier::has_errors(issues) ? "FAILED" : "clean",
              issues.size());

  std::printf("\nchip map:\n");
  render_placement(std::cout, design.netlist, router.placement(), 100);

  const std::string svg = out_dir + "/" + name + ".svg";
  const std::string dump = out_dir + "/" + name + ".route";
  write_svg(svg, router, channel);
  save_route(dump, router, channel);
  std::printf("\nwrote %s and %s\n", svg.c_str(), dump.c_str());
  return RouteVerifier::has_errors(issues) ? 1 : 0;
}

// Quickstart: build a small bipolar standard-cell design by hand, route it
// with and without a timing constraint, and print the resulting delays,
// densities and wire lengths.
#include <cstdio>

#include "bgr/channel/channel_router.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/metrics/experiment.hpp"
#include "bgr/route/router.hpp"

namespace {

bgr::Dataset build_tiny_design() {
  using namespace bgr;
  Library lib = Library::make_ecl_default();
  Netlist nl(std::move(lib));
  const Library& l = nl.library();

  const CellTypeId nor2 = l.find("NOR2");
  const CellTypeId buf = l.find("BUF1");
  const CellTypeId dff = l.find("DFF");

  // Three rows; a NOR chain crossing rows plus a register.
  const CellId g0 = nl.add_cell("g0", nor2);
  const CellId g1 = nl.add_cell("g1", nor2);
  const CellId g2 = nl.add_cell("g2", buf);
  const CellId ff = nl.add_cell("ff0", dff);
  const CellId fd0 = nl.add_cell("fd0", l.find("FEED"));
  const CellId fd1 = nl.add_cell("fd1", l.find("FEED"));
  const CellId fd2 = nl.add_cell("fd2", l.find("FEED"));

  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId ck = nl.add_net("ck");
  const NetId n0 = nl.add_net("n0");
  const NetId n1 = nl.add_net("n1");
  const NetId n2 = nl.add_net("n2");
  const NetId q = nl.add_net("q");

  (void)nl.add_pad_input("A", a, 100.0, 220.0);
  (void)nl.add_pad_input("B", b, 100.0, 220.0);
  (void)nl.add_pad_input("CK", ck, 60.0, 140.0);

  auto pin = [&](CellId c, const char* name) {
    return nl.cell_type(c).find_pin(name);
  };
  (void)nl.connect(a, g0, pin(g0, "I0"));
  (void)nl.connect(b, g0, pin(g0, "I1"));
  (void)nl.connect(n0, g0, pin(g0, "O"));
  (void)nl.connect(n0, g1, pin(g1, "I0"));
  (void)nl.connect(b, g1, pin(g1, "I1"));
  (void)nl.connect(n1, g1, pin(g1, "O"));
  (void)nl.connect(n1, g2, pin(g2, "I0"));
  (void)nl.connect(n2, g2, pin(g2, "O"));
  (void)nl.connect(n2, ff, pin(ff, "D"));
  (void)nl.connect(ck, ff, pin(ff, "CK"));
  (void)nl.connect(q, ff, pin(ff, "Q"));
  (void)nl.add_pad_output("Q", q, 0.05);
  nl.validate();

  Placement pl(3, 24);
  pl.place(nl, g0, RowId{0}, 2);
  pl.place(nl, fd0, RowId{0}, 10);
  pl.place(nl, g1, RowId{1}, 12);
  pl.place(nl, fd1, RowId{1}, 4);
  pl.place(nl, g2, RowId{2}, 4);
  pl.place(nl, ff, RowId{2}, 12);
  pl.place(nl, fd2, RowId{2}, 10);
  for (const TerminalId t : nl.terminals()) {
    const Terminal& term = nl.terminal(t);
    if (term.kind == TerminalKind::kCellPin) continue;
    pl.place_pad(t, term.kind == TerminalKind::kPadIn, IntInterval{0, 23});
  }

  // One path constraint A → ff0.D.
  PathConstraint pc;
  pc.name = "P0";
  pc.sources.push_back(TerminalId{0});  // pad A (first terminal added)
  for (const TerminalId t : nl.terminals()) {
    const Terminal& term = nl.terminal(t);
    if (term.kind == TerminalKind::kPadIn && term.pad_name == "A") {
      pc.sources = {t};
    }
    if (term.kind == TerminalKind::kCellPin && term.cell == ff &&
        nl.cell_type(ff).pin(term.pin).name == "D") {
      pc.sinks = {t};
    }
  }
  pc.limit_ps = 700.0;

  return Dataset{"tiny", CircuitSpec{}, std::move(nl), std::move(pl), {pc},
                 TechParams{}};
}

}  // namespace

int main() {
  const bgr::Dataset design = build_tiny_design();

  for (const bool constrained : {true, false}) {
    const bgr::RunResult r = bgr::run_flow(design, constrained);
    std::printf("%s mode: delay %.1f ps, area %.4f mm2, length %.3f mm, "
                "lower bound %.1f ps, violations %d\n",
                constrained ? "constrained " : "unconstrained",
                r.delay_ps, r.area_mm2, r.length_mm, r.lower_bound_ps,
                r.violated_constraints);
    for (const bgr::PhaseStats& ph : r.phases) {
      std::printf("  phase %-16s deletions %4lld reroutes %3lld "
                  "crit %.1f ps  sumCM %lld\n",
                  ph.name.c_str(), static_cast<long long>(ph.deletions),
                  static_cast<long long>(ph.reroutes), ph.critical_delay_ps,
                  static_cast<long long>(ph.sum_max_density));
    }
  }
  return 0;
}

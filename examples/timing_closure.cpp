// Timing-closure study: the same circuit routed under progressively
// tighter path constraints. Shows the paper's core trade-off — the router
// spends wiring freedom (and a little area) to pull the critical paths in,
// until the constraints become physically unachievable.
#include <cstdio>

#include "bgr/metrics/experiment.hpp"

int main() {
  using namespace bgr;
  CircuitSpec spec;
  spec.name = "closure";
  spec.seed = 777;
  spec.rows = 8;
  spec.target_cells = 400;
  spec.levels = 9;
  spec.primary_inputs = 12;
  spec.primary_outputs = 12;
  spec.diff_pairs = 4;
  spec.clock_buffers = 2;
  spec.path_constraints = 24;
  const Dataset base = generate_circuit(spec);

  // Unconstrained baseline.
  const RunResult baseline = run_flow(base, /*constrained=*/false);
  std::printf("unconstrained baseline: delay %.1f ps, area %.3f mm2\n\n",
              baseline.delay_ps, baseline.area_mm2);

  std::printf("%-10s %12s %12s %12s %12s\n", "tightness", "delay (ps)",
              "area (mm2)", "violations", "worst margin");
  for (const double scale : {1.50, 1.30, 1.15, 1.05, 1.00, 0.92}) {
    Dataset ds = base;  // constraints re-scaled per run
    for (PathConstraint& pc : ds.constraints) {
      pc.limit_ps = pc.limit_ps * scale;
    }
    const RunResult r = run_flow(ds, /*constrained=*/true);
    std::printf("%-10.2f %12.1f %12.3f %12d %12.1f\n", scale, r.delay_ps,
                r.area_mm2, r.violated_constraints, r.worst_margin_ps);
  }
  std::printf("\nLoose constraints reproduce the unconstrained result; "
              "tightening them drives the delay down at nearly unchanged "
              "area until the limits drop below what the placement allows.\n");
  return 0;
}

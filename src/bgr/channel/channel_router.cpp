#include "bgr/channel/channel_router.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "bgr/obs/metrics.hpp"
#include "bgr/obs/trace.hpp"
#include "bgr/route/net_span.hpp"

namespace bgr {

namespace {

/// Channel-stage totals: all recorded from the serial per-channel loop in
/// ChannelStage::run(), so they are semantic. `track_overflow` sums
/// max(0, tracks - density) over channels — tracks spent above the density
/// lower bound.
struct ChannelMetrics {
  Counter& segments = MetricsRegistry::global().counter(
      "channel.segments", MetricScope::kSemantic);
  Counter& track_overflow = MetricsRegistry::global().counter(
      "channel.track_overflow", MetricScope::kSemantic);
  Counter& vcg_violations = MetricsRegistry::global().counter(
      "channel.vcg_violations", MetricScope::kSemantic);
  Histogram& tracks = MetricsRegistry::global().histogram(
      "channel.tracks", MetricScope::kSemantic);
};

ChannelMetrics& channel_metrics() {
  static ChannelMetrics* const m = new ChannelMetrics();
  return *m;
}

}  // namespace

std::int32_t left_edge_assign(std::vector<ChannelSegment>& segments) {
  std::stable_sort(segments.begin(), segments.end(),
                   [](const ChannelSegment& a, const ChannelSegment& b) {
                     if (a.span.lo != b.span.lo) return a.span.lo < b.span.lo;
                     return a.span.hi > b.span.hi;  // long first at equal left
                   });
  // last_hi[t]: rightmost occupied column of track t (0-based internally).
  std::vector<std::int32_t> last_hi;
  std::int32_t used = 0;
  for (ChannelSegment& seg : segments) {
    BGR_CHECK(seg.width >= 1 && !seg.span.empty());
    std::int32_t placed = -1;
    for (std::int32_t t = 0; placed < 0; ++t) {
      while (static_cast<std::size_t>(t + seg.width) > last_hi.size()) {
        last_hi.push_back(std::numeric_limits<std::int32_t>::min());
      }
      bool fits = true;
      for (std::int32_t k = 0; k < seg.width && fits; ++k) {
        fits = last_hi[static_cast<std::size_t>(t + k)] < seg.span.lo;
      }
      if (fits) placed = t;
    }
    for (std::int32_t k = 0; k < seg.width; ++k) {
      last_hi[static_cast<std::size_t>(placed + k)] = seg.span.hi;
    }
    seg.track = placed + 1;  // 1-based
    used = std::max(used, placed + seg.width);
  }
  return used;
}

std::int32_t improve_track_assignment(std::vector<ChannelSegment>& segments,
                                      std::int32_t tracks) {
  if (tracks <= 1 || segments.empty()) return 0;
  // occupancy[t]: intervals currently on track t (0-based).
  std::vector<std::vector<std::pair<IntInterval, std::size_t>>> occupancy(
      static_cast<std::size_t>(tracks));
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const ChannelSegment& seg = segments[i];
    BGR_CHECK(seg.track >= 1 && seg.track + seg.width - 1 <= tracks);
    for (std::int32_t k = 0; k < seg.width; ++k) {
      occupancy[static_cast<std::size_t>(seg.track - 1 + k)].emplace_back(
          seg.span, i);
    }
  }
  auto run_free = [&](std::int32_t track0, std::int32_t w, IntInterval span,
                      std::size_t self) {
    for (std::int32_t k = 0; k < w; ++k) {
      for (const auto& [iv, owner] : occupancy[static_cast<std::size_t>(
               track0 + k)]) {
        if (owner != self && iv.overlaps(span)) return false;
      }
    }
    return true;
  };
  // Cost of placing the segment's bottom track at t (1-based): every
  // bottom tap runs t track pitches, every top tap (tracks + 1 − t).
  auto cost = [&](const ChannelSegment& seg, std::int32_t t) {
    std::int64_t total = 0;
    for (const ChannelTap& tap : seg.taps) {
      total += tap.from_top ? (tracks + 1 - t) : t;
    }
    return total;
  };

  std::int32_t moves = 0;
  for (std::int32_t round = 0; round < 2; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      ChannelSegment& seg = segments[i];
      if (seg.taps.empty()) continue;
      std::int32_t best_t = seg.track;
      std::int64_t best_cost = cost(seg, seg.track);
      for (std::int32_t t = 1; t + seg.width - 1 <= tracks; ++t) {
        if (t == seg.track) continue;
        if (cost(seg, t) >= best_cost) continue;
        if (!run_free(t - 1, seg.width, seg.span, i)) continue;
        best_t = t;
        best_cost = cost(seg, t);
      }
      if (best_t != seg.track) {
        // Erase every old entry before adding the new ones: when the old
        // and new track ranges overlap, interleaving would drop a
        // freshly-added entry.
        for (std::int32_t k = 0; k < seg.width; ++k) {
          auto& from = occupancy[static_cast<std::size_t>(seg.track - 1 + k)];
          from.erase(std::remove_if(from.begin(), from.end(),
                                    [&](const auto& e) { return e.second == i; }),
                     from.end());
        }
        for (std::int32_t k = 0; k < seg.width; ++k) {
          occupancy[static_cast<std::size_t>(best_t - 1 + k)].emplace_back(
              seg.span, i);
        }
        seg.track = best_t;
        ++moves;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return moves;
}

std::int32_t constrained_left_edge_assign(std::vector<ChannelSegment>& segments,
                                          std::int32_t* vcg_violations) {
  *vcg_violations = 0;
  if (segments.empty()) return 0;
  const auto n = segments.size();

  // Vertical constraint graph: above[i] ∋ j means segment i must sit above
  // segment j (i has a top tap in a column where j has a bottom tap).
  std::map<std::int32_t, std::vector<std::size_t>> top_at;
  std::map<std::int32_t, std::vector<std::size_t>> bottom_at;
  for (std::size_t i = 0; i < n; ++i) {
    for (const ChannelTap& tap : segments[i].taps) {
      (tap.from_top ? top_at : bottom_at)[tap.column].push_back(i);
    }
  }
  std::vector<std::set<std::size_t>> below(n);  // successors (must be below)
  std::vector<std::int32_t> pending_above(n, 0);  // unplaced predecessors
  for (const auto& [column, tops] : top_at) {
    const auto it = bottom_at.find(column);
    if (it == bottom_at.end()) continue;
    for (const std::size_t t : tops) {
      for (const std::size_t b : it->second) {
        if (t == b || segments[t].net == segments[b].net) continue;
        if (below[t].insert(b).second) ++pending_above[b];
      }
    }
  }

  // Pack levels from the top edge downwards. A wide segment placed at
  // level l also blocks the next width-1 levels over its span.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return segments[a].span.lo < segments[b].span.lo;
  });

  std::vector<bool> placed(n, false);
  std::vector<std::int32_t> level_of(n, -1);
  std::vector<std::vector<IntInterval>> carry;  // blocked spans per future level
  std::size_t remaining = n;
  std::int32_t level = 0;
  while (remaining > 0) {
    std::vector<IntInterval> used =
        carry.empty() ? std::vector<IntInterval>{} : std::move(carry.front());
    if (!carry.empty()) carry.erase(carry.begin());
    auto fits = [&](IntInterval span) {
      for (const IntInterval iv : used) {
        if (iv.overlaps(span)) return false;
      }
      return true;
    };
    bool any = false;
    std::vector<std::size_t> placed_now;
    for (const std::size_t i : order) {
      if (placed[i] || pending_above[i] > 0) continue;
      if (!fits(segments[i].span)) continue;
      placed[i] = true;
      level_of[i] = level;
      --remaining;
      any = true;
      used.push_back(segments[i].span);
      // Wide segments block the same span on the next width-1 levels.
      for (std::int32_t k = 1; k < segments[i].width; ++k) {
        if (static_cast<std::size_t>(k - 1) >= carry.size()) carry.emplace_back();
        carry[static_cast<std::size_t>(k - 1)].push_back(segments[i].span);
      }
      placed_now.push_back(i);
    }
    // Successors only become eligible on the *next* level: releasing them
    // within this level would place them side by side with their
    // predecessor instead of below it.
    for (const std::size_t i : placed_now) {
      for (const std::size_t j : below[i]) --pending_above[j];
    }
    if (!any) {
      // Vertical-constraint cycle: force the blocked segment with the
      // fewest pending predecessors (a real channel router would dogleg).
      std::size_t pick = n;
      for (const std::size_t i : order) {
        if (placed[i] || !fits(segments[i].span)) continue;
        if (pick == n || pending_above[i] < pending_above[pick]) pick = i;
      }
      if (pick == n) {
        ++level;  // everything unplaced overlaps this level's carry
        continue;
      }
      *vcg_violations += pending_above[pick];
      pending_above[pick] = 0;
      placed[pick] = true;
      level_of[pick] = level;
      --remaining;
      for (std::int32_t k = 1; k < segments[pick].width; ++k) {
        if (static_cast<std::size_t>(k - 1) >= carry.size()) carry.emplace_back();
        carry[static_cast<std::size_t>(k - 1)].push_back(segments[pick].span);
      }
      for (const std::size_t j : below[pick]) --pending_above[j];
    }
    ++level;
  }
  const std::int32_t total_levels =
      level + static_cast<std::int32_t>(carry.size());
  // Convert top-based levels to bottom-based tracks: a segment at level l
  // with width w occupies levels l..l+w-1, i.e. bottom track
  // total - (l + w - 1).
  for (std::size_t i = 0; i < n; ++i) {
    segments[i].track = total_levels - (level_of[i] + segments[i].width - 1);
    BGR_CHECK(segments[i].track >= 1);
  }
  return total_levels;
}

void split_segments_at_taps(std::vector<ChannelSegment>& segments,
                            std::vector<std::vector<std::size_t>>& chains) {
  std::vector<ChannelSegment> out;
  for (const ChannelSegment& seg : segments) {
    // Interior tap columns, sorted and deduplicated.
    std::vector<std::int32_t> cuts;
    for (const ChannelTap& tap : seg.taps) {
      if (tap.column > seg.span.lo && tap.column < seg.span.hi) {
        cuts.push_back(tap.column);
      }
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    if (cuts.empty()) {
      out.push_back(seg);
      continue;
    }
    std::vector<std::size_t> chain;
    std::int32_t lo = seg.span.lo;
    for (std::size_t i = 0; i <= cuts.size(); ++i) {
      const std::int32_t hi = i < cuts.size() ? cuts[i] : seg.span.hi;
      ChannelSegment piece;
      piece.net = seg.net;
      piece.width = seg.width;
      piece.span = IntInterval{lo, hi};
      // A tap at a cut column stays with the piece to its left: piece 0
      // takes [lo, hi], later pieces take (lo, hi].
      for (const ChannelTap& tap : seg.taps) {
        const bool mine =
            tap.column <= hi && (i == 0 ? tap.column >= lo : tap.column > lo);
        if (mine) piece.taps.push_back(tap);
      }
      chain.push_back(out.size());
      out.push_back(std::move(piece));
      lo = hi;
    }
    chains.push_back(std::move(chain));
  }
  segments = std::move(out);
}

ChannelStage::ChannelStage(const GlobalRouter& router, ChannelOptions options)
    : netlist_(router.analyzer().delay_graph().netlist()),
      router_(router),
      options_(options) {
  plans_.resize(static_cast<std::size_t>(router.placement().channel_count()));
  vertical_um_.assign(static_cast<std::size_t>(netlist_.net_count()), 0.0);
  base_um_.assign(static_cast<std::size_t>(netlist_.net_count()), 0.0);
}

void ChannelStage::extract(const GlobalRouter& router) {
  const Placement& placement = router.placement();
  for (const NetId n : netlist_.nets()) {
    const RoutingGraph& g = router.net_graph(n);
    BGR_CHECK_MSG(g.is_tree(), "channel stage requires routed trees");
    base_um_[n] = g.alive_length_um();

    // Group the net's trunk edges per channel and merge touching runs.
    std::map<std::int32_t, std::vector<IntInterval>> runs;
    struct Tap {
      std::int32_t channel;
      ChannelTap tap;
    };
    std::vector<Tap> taps;
    for (const auto e : g.alive_edges()) {
      const RouteEdgeInfo& info = g.edge_info(e);
      switch (info.kind) {
        case RouteEdgeKind::kTrunk:
          runs[info.channel].push_back(info.span);
          break;
        case RouteEdgeKind::kFeed:
          // Crossing row r == info.channel: taps channel r from its top
          // edge and channel r+1 from its bottom edge.
          taps.push_back({info.channel, ChannelTap{info.span.lo, true}});
          taps.push_back({info.channel + 1, ChannelTap{info.span.lo, false}});
          break;
        case RouteEdgeKind::kTermLink: {
          // The terminal end of the edge identifies the pin's row/side.
          const auto& edge = g.graph().edge(e);
          const auto term_v =
              g.vertex_info(edge.u).kind == RouteVertexKind::kTerminal ? edge.u
                                                                       : edge.v;
          const TerminalId term = g.vertex_info(term_v).terminal;
          const Terminal& t = netlist_.terminal(term);
          bool from_top;
          if (t.kind == TerminalKind::kCellPin) {
            // Pin on row r: channel r is below the row (tap from top edge),
            // channel r+1 above it (tap from bottom edge).
            from_top = info.channel == placement.placed(t.cell).row.value();
          } else {
            from_top = placement.pad_site(term).top;
          }
          taps.push_back({info.channel, ChannelTap{info.span.lo, from_top}});
          break;
        }
      }
    }

    const std::int32_t w = netlist_.net(n).pitch_width;
    for (auto& [channel, intervals] : runs) {
      std::sort(intervals.begin(), intervals.end(),
                [](IntInterval a, IntInterval b) { return a.lo < b.lo; });
      std::vector<ChannelSegment> merged;
      for (const IntInterval iv : intervals) {
        if (!merged.empty() && merged.back().span.hi >= iv.lo) {
          merged.back().span = merged.back().span.merge(iv);
        } else {
          ChannelSegment seg;
          seg.net = n;
          seg.width = w;
          seg.span = iv;
          merged.push_back(seg);
        }
      }
      for (const Tap& tap : taps) {
        if (tap.channel != channel) continue;
        for (ChannelSegment& seg : merged) {
          if (seg.span.contains(tap.tap.column)) {
            seg.taps.push_back(tap.tap);
            break;
          }
        }
      }
      auto& plan = plans_[static_cast<std::size_t>(channel)];
      plan.segments.insert(plan.segments.end(), merged.begin(), merged.end());
    }

    // Taps whose channel has no trunk run of this net (a pure crossing or a
    // pin directly under a feedthrough) form zero-length segments so their
    // verticals still get a track position.
    for (const Tap& tap : taps) {
      const auto it = runs.find(tap.channel);
      bool covered = false;
      if (it != runs.end()) {
        for (const IntInterval iv : it->second) {
          covered = covered || iv.contains(tap.tap.column);
        }
      }
      if (!covered) {
        ChannelSegment seg;
        seg.net = n;
        seg.width = w;
        seg.span = IntInterval::point(tap.tap.column);
        seg.taps.push_back(tap.tap);
        plans_[static_cast<std::size_t>(tap.channel)].segments.push_back(seg);
      }
    }
  }
}

void ChannelStage::assign_tracks(ChannelPlan& plan) const {
  // Density lower bound.
  std::map<std::int32_t, std::int32_t> delta;
  for (const ChannelSegment& seg : plan.segments) {
    delta[seg.span.lo] += seg.width;
    delta[seg.span.hi + 1] -= seg.width;
  }
  std::int32_t run = 0;
  plan.density = 0;
  for (const auto& [x, d] : delta) {
    run += d;
    plan.density = std::max(plan.density, run);
  }
  switch (options_.algorithm) {
    case TrackAlgorithm::kConstrainedLeftEdge:
      plan.tracks =
          constrained_left_edge_assign(plan.segments, &plan.vcg_violations);
      break;
    case TrackAlgorithm::kDoglegLeftEdge:
      split_segments_at_taps(plan.segments, plan.chains);
      plan.tracks =
          constrained_left_edge_assign(plan.segments, &plan.vcg_violations);
      break;
    case TrackAlgorithm::kLeftEdge:
      plan.tracks = left_edge_assign(plan.segments);
      if (options_.improve_taps) {
        (void)improve_track_assignment(plan.segments, plan.tracks);
      }
      break;
  }
}

void ChannelStage::run() {
  BGR_CHECK(!ran_);
  ran_ = true;
  ScopedSpan span("channel_route", "channel");
  extract(router_);
  const TechParams& tech = router_.tech();
  for (auto& plan : plans_) {
    assign_tracks(plan);
    channel_metrics().segments.add(
        static_cast<std::int64_t>(plan.segments.size()));
    channel_metrics().tracks.record(plan.tracks);
    channel_metrics().track_overflow.add(
        std::max<std::int32_t>(0, plan.tracks - plan.density));
    channel_metrics().vcg_violations.add(plan.vcg_violations);
    // Vertical jog lengths: distance from the segment's track to the edge
    // each tap enters from. Track t (1-based) sits t * pitch above the
    // channel's bottom edge.
    for (const ChannelSegment& seg : plan.segments) {
      for (const ChannelTap& tap : seg.taps) {
        (void)tap;
        const double up = static_cast<double>(seg.track) * tech.track_pitch_um;
        const double down =
            static_cast<double>(plan.tracks + 1 - seg.track) *
            tech.track_pitch_um;
        vertical_um_[seg.net] += tap.from_top ? down : up;
      }
    }
    // Dogleg jogs between consecutive chain pieces at their shared column.
    for (const auto& chain : plan.chains) {
      for (std::size_t i = 1; i < chain.size(); ++i) {
        const ChannelSegment& a = plan.segments[chain[i - 1]];
        const ChannelSegment& b = plan.segments[chain[i]];
        vertical_um_[a.net] +=
            std::abs(a.track - b.track) * tech.track_pitch_um;
      }
    }
  }
}

std::vector<std::int32_t> ChannelStage::track_counts() const {
  std::vector<std::int32_t> out;
  out.reserve(plans_.size());
  for (const auto& plan : plans_) out.push_back(plan.tracks);
  return out;
}

double ChannelStage::net_detailed_length_um(NetId net) const {
  BGR_CHECK(ran_);
  return base_um_.at(net) + vertical_um_.at(net);
}

double ChannelStage::total_detailed_length_um() const {
  double total = 0.0;
  for (const NetId n : netlist_.nets()) total += net_detailed_length_um(n);
  return total;
}

double ChannelStage::chip_height_um() const {
  BGR_CHECK(ran_);
  return router_.placement().chip_height_um(router_.tech(), track_counts());
}

double ChannelStage::chip_area_mm2() const {
  const double w_um = router_.placement().chip_width_um(router_.tech());
  return w_um * chip_height_um() * 1e-6;
}

double ChannelStage::apply_and_critical_delay_ps(DelayGraph& delay_graph,
                                                 DelayModel model) const {
  BGR_CHECK(ran_);
  const TechParams& tech = router_.tech();
  for (const NetId n : netlist_.nets()) {
    const double cap = tech.wire_cap_pf(net_detailed_length_um(n),
                                        netlist_.net(n).pitch_width);
    if (model == DelayModel::kElmoreRC) {
      const RoutingGraph& g = router_.net_graph(n);
      auto rc = g.elmore(tech, netlist_.net(n).pitch_width, [&](TerminalId t) {
        return netlist_.terminal_fanin_cap_pf(t);
      });
      // The Elmore term grows roughly quadratically with length; scale by
      // the squared detailed/estimated ratio to account for the exact jogs.
      const double est = g.estimated_length_um();
      const double ratio = est > 0.0 ? net_detailed_length_um(n) / est : 1.0;
      for (auto& [term, ps] : rc.sink_wire_ps) {
        (void)term;
        ps *= ratio * ratio;
      }
      delay_graph.set_net_rc(n, cap, rc.sink_wire_ps);
    } else {
      delay_graph.set_net_cap(n, cap);
    }
  }
  return delay_graph.critical_delay_ps();
}

}  // namespace bgr

#pragma once

#include <vector>

#include "bgr/common/ids.hpp"
#include "bgr/common/interval.hpp"
#include "bgr/common/tech.hpp"
#include "bgr/route/router.hpp"

namespace bgr {

/// Vertical tap entering a channel segment: a pin connection or a
/// feedthrough continuation at one column, from the channel's top edge
/// (the row above) or bottom edge (the row below).
struct ChannelTap {
  std::int32_t column = 0;
  bool from_top = false;
};

/// One maximal run of a net's trunk edges inside a channel; it is assigned
/// `width` adjacent tracks by the track assigner.
struct ChannelSegment {
  NetId net;
  std::int32_t width = 1;
  IntInterval span;
  std::vector<ChannelTap> taps;
  std::int32_t track = -1;  // bottom-most of its tracks, 1-based after run()
};

struct ChannelPlan {
  std::vector<ChannelSegment> segments;
  std::int32_t tracks = 0;       // track count after assignment
  std::int32_t density = 0;      // max column density (lower bound)
  /// Constrained modes only: vertical-constraint cycles that had to be
  /// broken (a detailed router would resolve each with a dogleg).
  std::int32_t vcg_violations = 0;
  /// Dogleg mode only: chains of split subsegments (indices into
  /// `segments`, left to right); consecutive members join with a vertical
  /// jog at their shared column.
  std::vector<std::vector<std::size_t>> chains;
};

/// Track assignment algorithm of the channel stage.
enum class TrackAlgorithm {
  /// Width-aware left edge, ignoring vertical constraints (a detailed
  /// router with free doglegs), followed by the tap-driven improvement.
  kLeftEdge,
  /// Constrained left edge: a segment whose column is shared between its
  /// top tap and another segment's bottom tap must lie above that segment.
  /// Cycles are broken greedily and counted as needed doglegs.
  kConstrainedLeftEdge,
  /// Dogleg routing (Deutsch-style): segments are split at their interior
  /// tap columns before the constrained assignment, which dissolves most
  /// vertical-constraint cycles; the connecting jogs are charged to the
  /// nets' vertical wire length.
  kDoglegLeftEdge,
};

struct ChannelOptions {
  TrackAlgorithm algorithm = TrackAlgorithm::kLeftEdge;
  bool improve_taps = true;  // kLeftEdge only (the pass is not VCG-aware)
};

/// Post-global-routing channel stage: extracts every net's trunk segments
/// and taps from the final routing trees, assigns tracks per channel with
/// the width-aware left-edge algorithm, and produces the detailed
/// geometry the paper measures — channel heights (area) and per-net
/// routed lengths including in-channel vertical jogs (delay).
class ChannelStage {
 public:
  explicit ChannelStage(const GlobalRouter& router,
                        ChannelOptions options = {});

  /// Runs track assignment over all channels.
  void run();

  [[nodiscard]] const ChannelPlan& plan(std::int32_t channel) const {
    return plans_.at(static_cast<std::size_t>(channel));
  }
  [[nodiscard]] std::int32_t channel_count() const {
    return static_cast<std::int32_t>(plans_.size());
  }
  [[nodiscard]] std::vector<std::int32_t> track_counts() const;

  /// Detailed routed length of a net (um): trunks + row crossings +
  /// in-channel verticals.
  [[nodiscard]] double net_detailed_length_um(NetId net) const;
  [[nodiscard]] double total_detailed_length_um() const;

  /// Chip area (mm²) with the assigned channel heights.
  [[nodiscard]] double chip_area_mm2() const;
  [[nodiscard]] double chip_height_um() const;

  /// Loads the detailed lengths into the delay graph and returns the
  /// resulting chip critical delay — the paper's Table 2 delay figure
  /// ("obtained from routing lengths after channel routing"). Under the
  /// RC extension the per-sink Elmore wire terms of the final trees are
  /// applied on top, scaled to the detailed length of each net.
  [[nodiscard]] double apply_and_critical_delay_ps(
      DelayGraph& delay_graph,
      DelayModel model = DelayModel::kLumpedC) const;

 private:
  void extract(const GlobalRouter& router);
  void assign_tracks(ChannelPlan& plan) const;

  const Netlist& netlist_;
  const GlobalRouter& router_;
  ChannelOptions options_;
  std::vector<ChannelPlan> plans_;
  IdVector<NetId, double> vertical_um_;   // in-channel vertical per net
  IdVector<NetId, double> base_um_;       // trunks + row crossings per net
  bool ran_ = false;
};

/// Width-aware left-edge track assignment: segments sorted by left edge,
/// each placed on the lowest run of `width` adjacent tracks free beyond
/// its left edge. Exposed for direct testing.
[[nodiscard]] std::int32_t left_edge_assign(std::vector<ChannelSegment>& segments);

/// Post-pass over a feasible assignment: each segment is moved (track
/// count held fixed) toward the channel edge most of its taps enter from,
/// shortening the vertical jogs. Returns the number of moves applied.
std::int32_t improve_track_assignment(std::vector<ChannelSegment>& segments,
                                      std::int32_t tracks);

/// Constrained left-edge track assignment: respects the vertical
/// constraint graph induced by shared tap columns (top-tap segment above
/// bottom-tap segment), packing tracks from the top edge downwards.
/// Cycles are broken greedily; each break increments *vcg_violations.
/// Returns the track count.
[[nodiscard]] std::int32_t constrained_left_edge_assign(
    std::vector<ChannelSegment>& segments, std::int32_t* vcg_violations);

/// Splits every segment at its interior tap columns (the classic dogleg
/// preparation). Taps at a split column stay with the left piece; the
/// resulting left-to-right chains are appended to `chains`.
void split_segments_at_taps(std::vector<ChannelSegment>& segments,
                            std::vector<std::vector<std::size_t>>& chains);

}  // namespace bgr

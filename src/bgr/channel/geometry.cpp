#include "bgr/channel/geometry.hpp"

#include <fstream>

#include "bgr/common/check.hpp"

namespace bgr {

ChipGeometry::ChipGeometry(const Placement& placement, const TechParams& tech,
                           const std::vector<std::int32_t>& channel_tracks)
    : grid_pitch_um_(tech.grid_pitch_um), track_pitch_um_(tech.track_pitch_um) {
  BGR_CHECK(channel_tracks.size() ==
            static_cast<std::size_t>(placement.channel_count()));
  width_um_ = placement.chip_width_um(tech);
  double y = 0.0;
  for (std::int32_t c = 0; c < placement.channel_count(); ++c) {
    channel_bottom_.push_back(y);
    y += (channel_tracks[static_cast<std::size_t>(c)] + 1) *
         tech.track_pitch_um;
    if (c < placement.row_count()) {
      row_bottom_.push_back(y);
      y += tech.row_height_um;
    }
  }
  height_um_ = y;
}

double ChipGeometry::track_y_um(std::int32_t channel, std::int32_t track) const {
  return channel_bottom_um(channel) + static_cast<double>(track) * track_pitch_um_;
}

double ChipGeometry::column_x_um(std::int32_t column) const {
  return (static_cast<double>(column) + 0.5) * grid_pitch_um_;
}

std::vector<WireSegment> extract_wires(const GlobalRouter& router,
                                       const ChannelStage& channel,
                                       const ChipGeometry& geometry) {
  const Netlist& nl = router.analyzer().delay_graph().netlist();
  std::vector<WireSegment> wires;

  // Horizontal pieces and their tap verticals, channel by channel.
  for (std::int32_t c = 0; c < channel.channel_count(); ++c) {
    const ChannelPlan& plan = channel.plan(c);
    for (const ChannelSegment& seg : plan.segments) {
      const double y = geometry.track_y_um(c, seg.track);
      WireSegment horizontal;
      horizontal.net = seg.net;
      horizontal.width_pitches = seg.width;
      horizontal.x1 = geometry.column_x_um(seg.span.lo);
      horizontal.x2 = geometry.column_x_um(seg.span.hi);
      horizontal.y1 = horizontal.y2 = y;
      if (horizontal.x2 > horizontal.x1) wires.push_back(horizontal);
      for (const ChannelTap& tap : seg.taps) {
        WireSegment vertical;
        vertical.net = seg.net;
        vertical.width_pitches = seg.width;
        vertical.x1 = vertical.x2 = geometry.column_x_um(tap.column);
        // The channel's top edge sits tracks+1 pitches above its bottom.
        const double edge = tap.from_top
                                ? geometry.track_y_um(c, plan.tracks + 1)
                                : geometry.channel_bottom_um(c);
        vertical.y1 = std::min(y, edge);
        vertical.y2 = std::max(y, edge);
        if (vertical.y2 > vertical.y1) wires.push_back(vertical);
      }
    }
  }

  // Row crossings: vertical pieces through the cell rows.
  for (const NetId n : nl.nets()) {
    const RoutingGraph& g = router.net_graph(n);
    for (const auto e : g.alive_edges()) {
      const RouteEdgeInfo& info = g.edge_info(e);
      if (info.kind != RouteEdgeKind::kFeed) continue;
      WireSegment vertical;
      vertical.net = n;
      vertical.width_pitches = nl.net(n).pitch_width;
      vertical.x1 = vertical.x2 = geometry.column_x_um(info.span.lo);
      vertical.y1 = geometry.row_bottom_um(info.channel);
      vertical.y2 = vertical.y1 + (geometry.channel_bottom_um(info.channel + 1) -
                                   geometry.row_bottom_um(info.channel));
      wires.push_back(vertical);
    }
  }
  return wires;
}

void write_svg(const std::string& path, const GlobalRouter& router,
               const ChannelStage& channel) {
  const Netlist& nl = router.analyzer().delay_graph().netlist();
  const Placement& pl = router.placement();
  const TechParams& tech = router.tech();
  const ChipGeometry geometry(pl, tech, channel.track_counts());

  std::ofstream os(path);
  BGR_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  const double w = geometry.chip_width_um();
  const double h = geometry.chip_height_um();
  os << "<svg xmlns='http://www.w3.org/2000/svg' viewBox='0 0 " << w << " "
     << h << "' width='" << w << "' height='" << h << "'>\n";
  os << "<rect x='0' y='0' width='" << w << "' height='" << h
     << "' fill='#fafafa' stroke='#444'/>\n";

  // Cells (SVG y grows downward: flip).
  auto flip = [&](double y) { return h - y; };
  for (const CellId c : nl.cells()) {
    const PlacedCell& pc = pl.placed(c);
    const double x = static_cast<double>(pc.x) * tech.grid_pitch_um;
    const double cw = static_cast<double>(pc.width) * tech.grid_pitch_um;
    const double y0 = geometry.row_bottom_um(pc.row.value());
    const bool feed = nl.cell_type(c).is_feed();
    os << "<rect x='" << x << "' y='" << flip(y0 + tech.row_height_um)
       << "' width='" << cw << "' height='" << tech.row_height_um
       << "' fill='" << (feed ? "#d8e8d8" : "#c9d4e8")
       << "' stroke='#667' stroke-width='0.4'/>\n";
  }

  // Wires: one colour family per hash of the net id.
  const std::vector<WireSegment> wires = extract_wires(router, channel, geometry);
  for (const WireSegment& seg : wires) {
    const int hue = (seg.net.value() * 47) % 360;
    os << "<line x1='" << seg.x1 << "' y1='" << flip(seg.y1) << "' x2='"
       << seg.x2 << "' y2='" << flip(seg.y2) << "' stroke='hsl(" << hue
       << ",70%,40%)' stroke-width='"
       << 0.8 * static_cast<double>(seg.width_pitches) << "'/>\n";
  }

  // Pads.
  for (const auto& [pad, site] : pl.pad_sites()) {
    (void)pad;
    if (!site.assigned()) continue;
    const double x = geometry.column_x_um(site.assigned_x);
    const double y = site.top ? 0.0 : h;
    os << "<circle cx='" << x << "' cy='" << y << "' r='" << 2.0 * tech.grid_pitch_um
       << "' fill='#b5651d'/>\n";
  }
  os << "</svg>\n";
}

}  // namespace bgr

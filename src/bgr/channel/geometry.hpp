#pragma once

#include <string>
#include <vector>

#include "bgr/channel/channel_router.hpp"

namespace bgr {

/// Vertical floorplan of the routed chip: absolute um coordinates of every
/// row and channel, derived from the per-channel track counts. Channel c
/// sits below row c; channel heights are (tracks + 1) · track pitch.
class ChipGeometry {
 public:
  ChipGeometry(const Placement& placement, const TechParams& tech,
               const std::vector<std::int32_t>& channel_tracks);

  [[nodiscard]] double chip_width_um() const { return width_um_; }
  [[nodiscard]] double chip_height_um() const { return height_um_; }
  /// Bottom edge of a channel / row, um from the chip bottom.
  [[nodiscard]] double channel_bottom_um(std::int32_t channel) const {
    return channel_bottom_.at(static_cast<std::size_t>(channel));
  }
  [[nodiscard]] double row_bottom_um(std::int32_t row) const {
    return row_bottom_.at(static_cast<std::size_t>(row));
  }
  /// Absolute y of a track (1-based, counted from the channel bottom).
  [[nodiscard]] double track_y_um(std::int32_t channel, std::int32_t track) const;
  [[nodiscard]] double column_x_um(std::int32_t column) const;

 private:
  double width_um_ = 0;
  double height_um_ = 0;
  double grid_pitch_um_;
  double track_pitch_um_;
  std::vector<double> channel_bottom_;
  std::vector<double> row_bottom_;
};

/// One physical wire piece of a routed net, in absolute um coordinates.
/// Horizontal segments have y1 == y2; vertical segments x1 == x2.
struct WireSegment {
  NetId net;
  double x1 = 0, y1 = 0, x2 = 0, y2 = 0;
  std::int32_t width_pitches = 1;

  [[nodiscard]] double length_um() const {
    return (x2 - x1) + (y2 - y1);  // segments are axis-aligned, positive
  }
};

/// Expands the routed trees and track assignment into physical wire
/// segments: one horizontal piece per channel segment, one vertical piece
/// per tap (channel edge → track) and per row crossing.
[[nodiscard]] std::vector<WireSegment> extract_wires(
    const GlobalRouter& router, const ChannelStage& channel,
    const ChipGeometry& geometry);

/// Writes the chip (cells, feed cells, pads, wires) as an SVG drawing.
void write_svg(const std::string& path, const GlobalRouter& router,
               const ChannelStage& channel);

}  // namespace bgr

#include "bgr/common/check.hpp"

#include <sstream>

namespace bgr {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream oss;
  oss << "BGR_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw CheckError(oss.str());
}

}  // namespace bgr

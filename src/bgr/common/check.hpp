#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bgr {

/// Thrown when a BGR_CHECK fails: an internal invariant or an API
/// precondition was violated. The message carries file/line context.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

/// Thrown by cooperative cancellation points (GlobalRouter phase
/// boundaries, RoutingSession stage transitions) when the owner asked the
/// work to stop. Deliberately not a CheckError: cancellation is a normal,
/// expected control path — catch sites must be able to tell it apart from
/// a broken invariant.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace bgr

/// Precondition / invariant check, active in all build types. EDA runs are
/// long; silently corrupt state costs far more than the branch.
#define BGR_CHECK(expr)                                          \
  do {                                                           \
    if (!(expr)) {                                               \
      ::bgr::check_failed(#expr, __FILE__, __LINE__, {});        \
    }                                                            \
  } while (false)

#define BGR_CHECK_MSG(expr, msg)                                 \
  do {                                                           \
    if (!(expr)) {                                               \
      std::ostringstream oss_;                                   \
      oss_ << msg; /* NOLINT */                                  \
      ::bgr::check_failed(#expr, __FILE__, __LINE__, oss_.str()); \
    }                                                            \
  } while (false)

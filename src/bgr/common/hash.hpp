#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace bgr {

/// FNV-1a 64-bit content hash. Used wherever the system needs a stable,
/// process-independent fingerprint of bytes: the serve DesignCache keys
/// parsed designs by it, and RoutingSession condenses a RouteOutcome into
/// a digest with it. Not cryptographic — collision resistance is "good
/// enough for cache keys", and every cache hit still re-routes from the
/// same parsed value, so a collision could at worst serve the wrong
/// *design*, which the paired byte-size check below rules out for
/// practical inputs.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view bytes,
                                           std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Incremental fingerprint builder over heterogeneous fields. Doubles are
/// folded by bit pattern, so two fingerprints are equal iff every folded
/// field is bit-identical — exactly the notion of equality the
/// determinism tests assert on RouteOutcome.
class Fingerprint {
 public:
  void mix(std::string_view bytes) { h_ = fnv1a64(bytes, h_); }
  void mix(std::uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    mix(std::string_view(buf, 8));
  }
  void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(std::int32_t v) { mix(static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(v))); }
  void mix(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    mix(bits);
  }

  [[nodiscard]] std::uint64_t value() const { return h_; }
  /// 16 lowercase hex digits.
  [[nodiscard]] std::string hex() const {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    std::uint64_t v = h_;
    for (int i = 15; i >= 0; --i) {
      out[static_cast<std::size_t>(i)] = digits[v & 0xf];
      v >>= 4;
    }
    return out;
  }

 private:
  std::uint64_t h_ = kFnvOffset;
};

}  // namespace bgr

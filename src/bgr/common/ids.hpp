#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace bgr {

/// Strongly typed integer identifier. Each entity family instantiates its
/// own tag so that, e.g., a NetId can never be passed where a CellId is
/// expected. An id is either valid (>= 0 index) or the sentinel invalid().
template <typename Tag>
class StrongId {
 public:
  using value_type = std::int32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}

  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{}; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }
  [[nodiscard]] constexpr value_type value() const { return value_; }
  /// Index for container access; caller must ensure validity.
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(value_);
  }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

 private:
  value_type value_ = -1;
};

struct CellTag {};
struct CellTypeTag {};
struct PinTag {};       // pin within a cell type
struct TerminalTag {};  // pin instance on a placed cell (or external pad)
struct NetTag {};
struct RowTag {};
struct ChannelTag {};
struct SlotTag {};        // feedthrough slot within a row
struct ConstraintTag {};  // critical path constraint
struct TimingVertexTag {};
struct RouteVertexTag {};
struct RouteEdgeTag {};

using CellId = StrongId<CellTag>;
using CellTypeId = StrongId<CellTypeTag>;
using PinId = StrongId<PinTag>;
using TerminalId = StrongId<TerminalTag>;
using NetId = StrongId<NetTag>;
using RowId = StrongId<RowTag>;
using ChannelId = StrongId<ChannelTag>;
using SlotId = StrongId<SlotTag>;
using ConstraintId = StrongId<ConstraintTag>;
using TimingVertexId = StrongId<TimingVertexTag>;
using RouteVertexId = StrongId<RouteVertexTag>;
using RouteEdgeId = StrongId<RouteEdgeTag>;

/// Vector indexed by a StrongId; bounds are the caller's responsibility
/// (checked in debug via at()).
template <typename Id, typename T>
class IdVector {
 public:
  IdVector() = default;
  explicit IdVector(std::size_t n) : data_(n) {}
  IdVector(std::size_t n, const T& init) : data_(n, init) {}

  [[nodiscard]] T& operator[](Id id) { return data_[id.index()]; }
  [[nodiscard]] const T& operator[](Id id) const { return data_[id.index()]; }
  [[nodiscard]] T& at(Id id) { return data_.at(id.index()); }
  [[nodiscard]] const T& at(Id id) const { return data_.at(id.index()); }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  void resize(std::size_t n) { data_.resize(n); }
  void resize(std::size_t n, const T& init) { data_.resize(n, init); }
  void assign(std::size_t n, const T& init) { data_.assign(n, init); }
  void clear() { data_.clear(); }

  Id push_back(T value) {
    data_.push_back(std::move(value));
    return Id{static_cast<typename Id::value_type>(data_.size() - 1)};
  }

  [[nodiscard]] auto begin() { return data_.begin(); }
  [[nodiscard]] auto end() { return data_.end(); }
  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }

  [[nodiscard]] std::vector<T>& raw() { return data_; }
  [[nodiscard]] const std::vector<T>& raw() const { return data_; }

 private:
  std::vector<T> data_;
};

/// Iterate over all ids [0, n).
template <typename Id>
class IdRange {
 public:
  explicit IdRange(std::size_t n) : n_(static_cast<typename Id::value_type>(n)) {}

  class iterator {
   public:
    explicit iterator(typename Id::value_type v) : v_(v) {}
    Id operator*() const { return Id{v_}; }
    iterator& operator++() {
      ++v_;
      return *this;
    }
    friend bool operator==(iterator a, iterator b) = default;

   private:
    typename Id::value_type v_;
  };

  [[nodiscard]] iterator begin() const { return iterator{0}; }
  [[nodiscard]] iterator end() const { return iterator{n_}; }

 private:
  typename Id::value_type n_;
};

}  // namespace bgr

template <typename Tag>
struct std::hash<bgr::StrongId<Tag>> {
  std::size_t operator()(bgr::StrongId<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};

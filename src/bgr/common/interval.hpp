#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>

#include "bgr/common/check.hpp"

namespace bgr {

/// Closed integer interval [lo, hi] over grid columns. Used for trunk-edge
/// extents and channel density ranges. A single grid column is [x, x].
struct IntInterval {
  std::int32_t lo = 0;
  std::int32_t hi = -1;  // default-constructed interval is empty

  constexpr IntInterval() = default;
  constexpr IntInterval(std::int32_t lo_, std::int32_t hi_) : lo(lo_), hi(hi_) {}

  [[nodiscard]] static constexpr IntInterval point(std::int32_t x) {
    return {x, x};
  }
  [[nodiscard]] static constexpr IntInterval spanning(std::int32_t a,
                                                      std::int32_t b) {
    return {std::min(a, b), std::max(a, b)};
  }

  [[nodiscard]] constexpr bool empty() const { return hi < lo; }
  /// Number of grid columns covered (0 when empty).
  [[nodiscard]] constexpr std::int64_t length() const {
    return empty() ? 0 : static_cast<std::int64_t>(hi) - lo + 1;
  }
  [[nodiscard]] constexpr bool contains(std::int32_t x) const {
    return lo <= x && x <= hi;
  }
  [[nodiscard]] constexpr bool contains(IntInterval other) const {
    return other.empty() || (lo <= other.lo && other.hi <= hi);
  }
  [[nodiscard]] constexpr bool overlaps(IntInterval other) const {
    return !empty() && !other.empty() && lo <= other.hi && other.lo <= hi;
  }
  [[nodiscard]] constexpr IntInterval intersect(IntInterval other) const {
    if (empty() || other.empty()) return {};
    IntInterval r{std::max(lo, other.lo), std::min(hi, other.hi)};
    return r.empty() ? IntInterval{} : r;
  }
  /// Smallest interval containing both (hull, not union).
  [[nodiscard]] constexpr IntInterval merge(IntInterval other) const {
    if (empty()) return other;
    if (other.empty()) return *this;
    return {std::min(lo, other.lo), std::max(hi, other.hi)};
  }
  /// Expand by d columns on both sides, clamped to [min_x, max_x].
  [[nodiscard]] constexpr IntInterval expanded(std::int32_t d, std::int32_t min_x,
                                               std::int32_t max_x) const {
    if (empty()) return {};
    return {std::max(min_x, lo - d), std::min(max_x, hi + d)};
  }

  friend constexpr bool operator==(IntInterval a, IntInterval b) = default;
};

inline std::ostream& operator<<(std::ostream& os, IntInterval iv) {
  return os << '[' << iv.lo << ',' << iv.hi << ']';
}

}  // namespace bgr

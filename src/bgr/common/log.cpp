#include "bgr/common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "bgr/obs/json.hpp"

namespace bgr {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogFormat> g_format{LogFormat::kText};
// Serializes the stream write: without it, messages emitted by
// thread-pool workers (e.g. a BGR_CHECK context dump racing a warning)
// could interleave mid-line.
std::mutex g_mutex;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[debug] ";
    case LogLevel::kInfo:
      return "[info ] ";
    case LogLevel::kWarn:
      return "[warn ] ";
    case LogLevel::kError:
      return "[error] ";
    case LogLevel::kOff:
      break;
  }
  return "";
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      break;
  }
  return "off";
}

std::int64_t wall_ts_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_format(LogFormat format) { g_format.store(format); }

LogFormat log_format() { return g_format.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  if (g_format.load() == LogFormat::kJson) {
    const std::string line = "{\"ts_us\": " + std::to_string(wall_ts_us()) +
                             ", \"level\": \"" + level_name(level) +
                             "\", \"msg\": \"" + json_escaped(message) + "\"}";
    std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "%s\n", line.c_str());
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s%s\n", prefix(level), message.c_str());
}

}  // namespace bgr

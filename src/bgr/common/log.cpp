#include "bgr/common/log.hpp"

#include <atomic>
#include <cstdio>

namespace bgr {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[debug] ";
    case LogLevel::kInfo:
      return "[info ] ";
    case LogLevel::kWarn:
      return "[warn ] ";
    case LogLevel::kError:
      return "[error] ";
    case LogLevel::kOff:
      break;
  }
  return "";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "%s%s\n", prefix(level), message.c_str());
}

}  // namespace bgr

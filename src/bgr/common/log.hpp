#pragma once

#include <string>

namespace bgr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

void log_message(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log_message(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log_message(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log_message(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log_message(LogLevel::kError, m); }

}  // namespace bgr

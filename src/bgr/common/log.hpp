#pragma once

#include <string>

namespace bgr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Output shape of the log sink: classic "[level] message" lines, or one
/// JSON object per line ({"ts_us":..., "level":..., "msg":...}) for
/// machine consumption (`bgr_route --log-format json`).
enum class LogFormat { kText, kJson };

/// Process-wide log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

void set_log_format(LogFormat format);
[[nodiscard]] LogFormat log_format();

/// Thread-safe: the emitting write is serialized, so messages from
/// thread-pool workers can never interleave mid-line.
void log_message(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log_message(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log_message(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log_message(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log_message(LogLevel::kError, m); }

}  // namespace bgr

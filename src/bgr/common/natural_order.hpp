#pragma once

#include <cctype>
#include <cstddef>
#include <string_view>

namespace bgr {

/// Natural ("version-style") string ordering: runs of digits compare by
/// numeric value, everything else byte-wise, so "n2" < "n10" < "n100".
///
/// The router uses net *names* — not raw ids — wherever a processing order
/// needs a deterministic tie-break: names survive a relabeling of the
/// netlist, which makes the routed result invariant under net/cell-id
/// permutation (a property the metamorphic tests pin down). Natural order
/// is chosen over plain lexicographic order so that generated designs,
/// whose names carry creation indices ("n0", "n1", …, "n12"), keep their
/// familiar creation-order processing sequence.
[[nodiscard]] inline bool natural_less(std::string_view a, std::string_view b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const unsigned char ca = static_cast<unsigned char>(a[i]);
    const unsigned char cb = static_cast<unsigned char>(b[j]);
    if (std::isdigit(ca) && std::isdigit(cb)) {
      // Skip leading zeros, then compare the digit runs numerically:
      // shorter run is smaller; equal lengths compare digit-wise.
      std::size_t za = i;
      std::size_t zb = j;
      while (za < a.size() && a[za] == '0') ++za;
      while (zb < b.size() && b[zb] == '0') ++zb;
      std::size_t ea = za;
      std::size_t eb = zb;
      while (ea < a.size() && std::isdigit(static_cast<unsigned char>(a[ea])))
        ++ea;
      while (eb < b.size() && std::isdigit(static_cast<unsigned char>(b[eb])))
        ++eb;
      if (ea - za != eb - zb) return ea - za < eb - zb;
      for (std::size_t k = 0; k < ea - za; ++k) {
        if (a[za + k] != b[zb + k]) return a[za + k] < b[zb + k];
      }
      // Numerically equal: fewer leading zeros first, then continue.
      if (za - i != zb - j) return za - i < zb - j;
      i = ea;
      j = eb;
      continue;
    }
    if (ca != cb) return ca < cb;
    ++i;
    ++j;
  }
  return a.size() - i < b.size() - j;
}

/// Leading non-digit run of a name — its family prefix ("q17" → "q",
/// "ck_root" → "ck_root").
[[nodiscard]] inline std::string_view name_family(std::string_view s) {
  std::size_t n = 0;
  while (n < s.size() && !std::isdigit(static_cast<unsigned char>(s[n]))) ++n;
  return s.substr(0, n);
}

/// The router's canonical net processing order: name families in
/// *descending* lexicographic order, then natural order inside a family.
/// For the generated designs this walks register outputs ("q*"), primary
/// inputs ("pi*"), internal logic ("n*") and finally differential/clock
/// nets, each family in creation order — the rough topological sweep the
/// routing heuristics are tuned for — while depending only on names, so
/// routed results survive a relabeling of the netlist (metamorphic tests).
[[nodiscard]] inline bool processing_order_less(std::string_view a,
                                                std::string_view b) {
  const std::string_view fa = name_family(a);
  const std::string_view fb = name_family(b);
  if (fa != fb) return fa > fb;
  return natural_less(a, b);
}

}  // namespace bgr

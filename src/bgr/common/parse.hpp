#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <string_view>

namespace bgr {

/// Checked, locale-independent numeric parsing over std::from_chars.
/// Every helper consumes the *whole* token (trailing garbage rejects) and
/// returns nullopt on malformed or out-of-range input — never 0, never a
/// partial value, never an exception.

[[nodiscard]] inline std::optional<std::int64_t> parse_i64(
    std::string_view token) {
  std::int64_t value = 0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

[[nodiscard]] inline std::optional<std::uint64_t> parse_u64(
    std::string_view token) {
  std::uint64_t value = 0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

[[nodiscard]] inline std::optional<std::int32_t> parse_i32(
    std::string_view token) {
  const auto wide = parse_i64(token);
  if (!wide || *wide < INT32_MIN || *wide > INT32_MAX) return std::nullopt;
  return static_cast<std::int32_t>(*wide);
}

/// Finite doubles only: "inf"/"nan" spellings and overflowing literals are
/// rejected alongside malformed text (file formats never contain them, and
/// letting them through poisons every downstream comparison).
[[nodiscard]] inline std::optional<double> parse_double(
    std::string_view token) {
  double value = 0.0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  if (value != value || value > 1.7976931348623157e308 ||
      value < -1.7976931348623157e308) {
    return std::nullopt;
  }
  return value;
}

}  // namespace bgr

#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "bgr/common/check.hpp"

namespace bgr {

/// Deterministic random source for workload generation and tests.
/// Thin wrapper over a fixed engine so that every dataset is reproducible
/// from its seed alone, independent of the standard library's distribution
/// implementations for integers (we implement our own mapping).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    BGR_CHECK(lo <= hi);
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % range);
  }

  [[nodiscard]] std::int32_t uniform_i32(std::int32_t lo, std::int32_t hi) {
    return static_cast<std::int32_t>(uniform(lo, hi));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  [[nodiscard]] double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  [[nodiscard]] bool bernoulli(double p) { return uniform01() < p; }

  /// Geometric-ish fan-out: 1 + floor(log(u)/log(1-p)) capped.
  [[nodiscard]] std::int32_t geometric(double p, std::int32_t cap) {
    std::int32_t v = 1;
    while (v < cap && !bernoulli(p)) ++v;
    return v;
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  [[nodiscard]] std::uint64_t next() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bgr

#pragma once

#include <chrono>

namespace bgr {

/// Wall-clock stopwatch for CPU-time columns in the result tables.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace bgr

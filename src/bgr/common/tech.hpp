#pragma once

#include <cstdint>

namespace bgr {

/// Technology parameters for an early-1990s bipolar (ECL) standard-cell
/// process. All delays are picoseconds, capacitances picofarads, geometry
/// micrometres. Values are representative, not foundry data; the benchmark
/// harness reports them alongside every table.
struct TechParams {
  /// Horizontal routing grid pitch (one feedthrough/track column), um.
  double grid_pitch_um = 3.0;
  /// Vertical track pitch inside a channel, um.
  double track_pitch_um = 3.0;
  /// Standard cell row height, um.
  double row_height_um = 60.0;
  /// Wire capacitance per micrometre of a 1-pitch wire, pF/um. A w-pitch
  /// wire has w times this capacitance.
  double wire_cap_pf_per_um = 0.00018;
  /// Expected vertical run inside a channel from its edge to an assigned
  /// track, um. Used by the global router's length estimates for pin taps
  /// (one per terminal) and feedthrough crossings (one per adjacent
  /// channel); the channel stage later replaces it with exact jogs.
  double channel_depth_est_um = 45.0;
  /// Wire sheet resistance per micrometre of a 1-pitch wire, Ω/um. Bipolar
  /// wires are wide, so this is small — which is exactly the paper's
  /// argument for the capacitance model; the Elmore extension quantifies
  /// it. A w-pitch wire has 1/w of this resistance.
  double wire_res_ohm_per_um = 0.04;

  /// Resistance (Ω) of `um` micrometres of w-pitch wire.
  [[nodiscard]] double wire_res_ohm(double um, int pitch_width = 1) const {
    return wire_res_ohm_per_um * um / static_cast<double>(pitch_width);
  }

  /// Length (um) of one horizontal grid step.
  [[nodiscard]] double horiz_step_um() const { return grid_pitch_um; }
  /// Length (um) of a feedthrough crossing one cell row.
  [[nodiscard]] double row_cross_um() const { return row_height_um; }

  /// Capacitance (pF) of `um` micrometres of w-pitch wire.
  [[nodiscard]] double wire_cap_pf(double um, int pitch_width = 1) const {
    return wire_cap_pf_per_um * um * static_cast<double>(pitch_width);
  }
};

}  // namespace bgr

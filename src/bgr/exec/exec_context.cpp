#include "bgr/exec/exec_context.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "bgr/common/check.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/obs/trace.hpp"

namespace bgr {

namespace {

/// Region/chunk totals depend on whether the serial fast paths fire
/// (thread count 1 skips the score warm-up entirely), so they live in the
/// nondeterministic namespace alongside the wall-time metrics.
struct ExecMetrics {
  Counter& regions = MetricsRegistry::global().counter(
      "exec.regions", MetricScope::kNonDeterministic);
  Counter& chunks = MetricsRegistry::global().counter(
      "exec.chunks", MetricScope::kNonDeterministic);
  Counter& items = MetricsRegistry::global().counter(
      "exec.items", MetricScope::kNonDeterministic);
};

ExecMetrics& exec_metrics() {
  static ExecMetrics* const m = new ExecMetrics();
  return *m;
}

}  // namespace

ExecContext::ExecContext(std::int32_t threads)
    : threads_(std::max<std::int32_t>(threads, 1)) {}

ExecContext::ExecContext(ThreadPool* shared_pool)
    : threads_(shared_pool != nullptr ? shared_pool->worker_count() + 1 : 1),
      borrowed_(shared_pool) {
  // A borrowed pool with zero workers degenerates to the serial path
  // (threads_ == 1), exactly like ExecContext(1).
  if (threads_ <= 1) borrowed_ = nullptr;
}

ExecContext::~ExecContext() = default;

std::int32_t ExecContext::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<std::int32_t>(static_cast<std::int32_t>(hw), 1);
}

void ExecContext::ensure_pool() {
  if (borrowed_ != nullptr) return;
  if (!pool_) pool_ = std::make_unique<ThreadPool>(threads_ - 1);
}

std::int32_t ExecContext::current_slot() const {
  return ThreadPool::slot_in(active_pool());
}

void ExecContext::note_items(std::int64_t n) {
  stats_.items += n;
  exec_metrics().items.add(n);
}

namespace {

/// Shared state of one parallel region. Held by shared_ptr so a pool
/// worker that loses the race for the last chunk can still touch the
/// counters after the caller has returned.
struct Region {
  explicit Region(std::int64_t n,
                  const std::function<void(std::int64_t)>& body)
      : total(n), fn(&body) {}

  std::atomic<std::int64_t> next{0};
  std::int64_t total;
  const std::function<void(std::int64_t)>* fn;  // outlives the region wait
  bool traced = false;  // snapshot of Trace enablement at region entry

  std::mutex mutex;
  std::condition_variable done_cv;
  std::int64_t done = 0;
  std::exception_ptr error;

  void work() {
    while (true) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= total) break;
      std::exception_ptr caught;
      try {
        if (traced) {
          ScopedSpan span("chunk", "exec");
          (*fn)(c);
        } else {
          (*fn)(c);
        }
      } catch (...) {
        caught = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex);
      if (caught && !error) error = caught;
      if (++done == total) done_cv.notify_all();
    }
  }
};

}  // namespace

void ExecContext::run_chunks(std::int64_t chunk_count,
                             const std::function<void(std::int64_t)>& chunk_fn) {
  if (chunk_count <= 0) return;
  ++stats_.regions;
  stats_.chunks += chunk_count;
  exec_metrics().regions.add(1);
  exec_metrics().chunks.add(chunk_count);
  if (serial() || chunk_count == 1) {
    ++stats_.serial_regions;
    for (std::int64_t c = 0; c < chunk_count; ++c) chunk_fn(c);
    return;
  }

  ensure_pool();
  ThreadPool* pool = active_pool();
  ScopedSpan region_span("parallel_region", "exec");
  auto region = std::make_shared<Region>(chunk_count, chunk_fn);
  region->traced = Trace::global().enabled();
  const std::int64_t helpers =
      std::min<std::int64_t>(threads_ - 1, chunk_count - 1);
  for (std::int64_t i = 0; i < helpers; ++i) {
    pool->submit([region] { region->work(); });
  }
  region->work();  // the calling thread always participates

  std::unique_lock<std::mutex> lock(region->mutex);
  region->done_cv.wait(lock, [&] { return region->done == region->total; });
  if (region->error) std::rethrow_exception(region->error);
}

}  // namespace bgr

#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "bgr/exec/thread_pool.hpp"

namespace bgr {

/// Counters accumulated by ExecContext across parallel regions. They are
/// bookkeeping only (never consulted by any algorithm), so they cannot
/// perturb results; the router snapshots them per phase for the CPU-time
/// report.
struct ExecStats {
  std::int64_t regions = 0;         // parallel regions entered
  std::int64_t serial_regions = 0;  // regions that ran inline (fallback)
  std::int64_t chunks = 0;          // chunks dispatched across all regions
  std::int64_t items = 0;           // loop iterations covered
};

/// Execution context for the deterministic parallel primitives: a thread
/// count, a lazily created pool of `threads - 1` workers (the calling
/// thread always participates), and per-region stats. `threads <= 1` is
/// the strict serial fallback — no pool is ever created and every region
/// runs inline, in chunk order.
///
/// Determinism contract: chunk *partitioning* is a function of the problem
/// size only (never of the thread count), and every reduction folds
/// per-chunk partials in chunk order on the calling thread. Any algorithm
/// built on these primitives therefore produces bit-identical results for
/// 1 and N threads.
class ExecContext {
 public:
  explicit ExecContext(std::int32_t threads = 1);

  /// Borrowing context over a pool owned by someone else (the serve
  /// scheduler shares one pool across all concurrent jobs). Parallel
  /// regions dispatch to `shared_pool`'s workers plus the calling thread,
  /// so thread_count() is worker_count() + 1; the context never owns or
  /// destroys the pool. Determinism is unaffected by sharing: chunk
  /// partitioning stays size-driven and every reduction folds in chunk
  /// order on the calling thread, so which pool the chunks land on — and
  /// which other contexts' chunks interleave with them — cannot change
  /// any result (see DESIGN.md §12).
  explicit ExecContext(ThreadPool* shared_pool);

  ~ExecContext();

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  [[nodiscard]] std::int32_t thread_count() const { return threads_; }
  [[nodiscard]] bool serial() const { return threads_ <= 1; }
  [[nodiscard]] const ExecStats& stats() const { return stats_; }

  /// Clamped std::thread::hardware_concurrency() (>= 1).
  [[nodiscard]] static std::int32_t hardware_threads();

  /// Stable scratch slot of the calling thread inside this context's
  /// parallel regions: 0 on the thread that runs the region (and anywhere
  /// outside a region), 1..thread_count()-1 on this context's own pool
  /// workers. Two threads participating in one region never share a slot,
  /// so per-thread arenas sized to thread_count() and indexed with this
  /// are race-free — see PathSearchEngine's search scratch.
  [[nodiscard]] std::int32_t current_slot() const;

  /// Runs chunk_fn(c) for every c in [0, chunk_count), on the pool plus
  /// the calling thread. Blocks until every chunk finished; the first
  /// exception thrown by any chunk is rethrown here (remaining chunks
  /// still run — a deleted chunk could otherwise change sibling results).
  /// Serial contexts run the chunks inline, in order.
  void run_chunks(std::int64_t chunk_count,
                  const std::function<void(std::int64_t)>& chunk_fn);

  /// Stats bookkeeping used by parallel_for/parallel_reduce; also feeds
  /// the process-wide `exec.items` metric.
  void note_items(std::int64_t n);

 private:
  void ensure_pool();
  [[nodiscard]] ThreadPool* active_pool() const {
    return borrowed_ != nullptr ? borrowed_ : pool_.get();
  }

  std::int32_t threads_;
  std::unique_ptr<ThreadPool> pool_;  // owned pool (lazily created)
  ThreadPool* borrowed_ = nullptr;    // shared pool (never owned)
  ExecStats stats_;
};

}  // namespace bgr

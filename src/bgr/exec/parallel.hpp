#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "bgr/exec/exec_context.hpp"

namespace bgr {

/// Default iterations per chunk. Chunk partitioning must depend only on
/// the problem size (never on the thread count) so results are identical
/// for 1 and N threads; the grain trades scheduling overhead against load
/// balance.
inline constexpr std::int64_t kDefaultGrain = 64;

[[nodiscard]] inline std::int64_t chunk_count_for(std::int64_t n,
                                                  std::int64_t grain) {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  return (n + grain - 1) / grain;
}

/// Chunked parallel loop: fn(i) for every i in [0, n), each index exactly
/// once. Chunks may run concurrently; indices within a chunk run in order.
/// fn must not touch state shared with other iterations unless each
/// iteration writes a distinct slot.
template <typename Fn>
void parallel_for(ExecContext& exec, std::int64_t n, Fn&& fn,
                  std::int64_t grain = kDefaultGrain) {
  const std::int64_t chunks = chunk_count_for(n, grain);
  if (chunks == 0) return;
  exec.note_items(n);
  exec.run_chunks(chunks, [&](std::int64_t c) {
    const std::int64_t lo = c * grain;
    const std::int64_t hi = std::min<std::int64_t>(n, lo + grain);
    for (std::int64_t i = lo; i < hi; ++i) fn(i);
  });
}

/// Deterministic ordered reduction: acc = combine(acc, map(i)) folded over
/// i in [0, n) — per-chunk partials first, then the partials left-to-right
/// in chunk order on the calling thread. Because the fold tree is a
/// function of (n, grain) alone, the result is bit-identical for any
/// thread count even when combine is not associative (floating-point sum,
/// first-wins argmin, ...).
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(ExecContext& exec, std::int64_t n, T init,
                                Map&& map, Combine&& combine,
                                std::int64_t grain = kDefaultGrain) {
  const std::int64_t chunks = chunk_count_for(n, grain);
  if (chunks == 0) return init;
  exec.note_items(n);
  std::vector<T> partials(static_cast<std::size_t>(chunks), init);
  exec.run_chunks(chunks, [&](std::int64_t c) {
    T acc = init;
    const std::int64_t lo = c * grain;
    const std::int64_t hi = std::min<std::int64_t>(n, lo + grain);
    for (std::int64_t i = lo; i < hi; ++i) {
      acc = combine(std::move(acc), map(i));
    }
    partials[static_cast<std::size_t>(c)] = std::move(acc);
  });
  T result = init;
  for (T& p : partials) result = combine(std::move(result), std::move(p));
  return result;
}

}  // namespace bgr

#include "bgr/exec/thread_pool.hpp"

#include "bgr/common/check.hpp"
#include "bgr/obs/metrics.hpp"

namespace bgr {

namespace {

/// Queue-depth-at-submit distribution: how backed up the pool was every
/// time a region handed it work. Scheduling-dependent by nature.
Histogram& queue_depth_histogram() {
  static Histogram& h = MetricsRegistry::global().histogram(
      "exec.queue_depth", MetricScope::kNonDeterministic);
  return h;
}

Counter& submitted_counter() {
  static Counter& c = MetricsRegistry::global().counter(
      "exec.pool_tasks", MetricScope::kNonDeterministic);
  return c;
}

/// Identity of the pool worker running on this thread (nullptr/0 on any
/// thread that is not a pool worker). The pool pointer disambiguates
/// nested contexts: slot_in() only honours the slot against its own pool.
thread_local const ThreadPool* t_worker_pool = nullptr;
thread_local std::int32_t t_worker_slot = 0;

}  // namespace

ThreadPool::ThreadPool(std::int32_t workers) {
  BGR_CHECK(workers >= 0);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (std::int32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] {
      t_worker_pool = this;
      t_worker_slot = i + 1;
      worker_loop();
    });
  }
}

std::int32_t ThreadPool::slot_in(const ThreadPool* pool) {
  return pool != nullptr && t_worker_pool == pool ? t_worker_slot : 0;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  BGR_CHECK(task != nullptr);
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    BGR_CHECK_MSG(!stop_, "submit() on a stopped ThreadPool");
    tasks_.push(std::move(task));
    depth = tasks_.size();
  }
  cv_.notify_one();
  submitted_counter().add(1);
  queue_depth_histogram().record(static_cast<std::int64_t>(depth));
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    task();  // exceptions are the region's job (see ExecContext::run_chunks)
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace bgr

#include "bgr/exec/thread_pool.hpp"

#include "bgr/common/check.hpp"

namespace bgr {

ThreadPool::ThreadPool(std::int32_t workers) {
  BGR_CHECK(workers >= 0);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (std::int32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  BGR_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    BGR_CHECK_MSG(!stop_, "submit() on a stopped ThreadPool");
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // exceptions are the region's job (see ExecContext::run_chunks)
  }
}

}  // namespace bgr

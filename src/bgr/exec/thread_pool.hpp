#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bgr {

/// Fixed-size worker pool behind the exec/ parallel primitives. submit()
/// enqueues a callable and never blocks; workers drain the queue until the
/// pool is destroyed. Destruction finishes every task already submitted
/// before joining (a parallel region enqueues its chunk loops and then
/// waits on its own completion latch, so nothing may be dropped).
class ThreadPool {
 public:
  explicit ThreadPool(std::int32_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);

  [[nodiscard]] std::int32_t worker_count() const {
    return static_cast<std::int32_t>(workers_.size());
  }

  /// Workers executing a task right now (0..worker_count()). A sampled
  /// gauge for telemetry — instantaneous and schedule-dependent.
  [[nodiscard]] std::int32_t active_workers() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Slot of the calling thread *within* `pool`: 1..worker_count() on that
  /// pool's own workers, 0 everywhere else — including the thread that
  /// entered the parallel region and the workers of any *other* pool (a
  /// nested context's caller may itself be a foreign pool worker; it must
  /// land on slot 0 of the inner pool, never collide with an inner
  /// worker). Subsystems use this to index per-thread scratch arenas.
  [[nodiscard]] static std::int32_t slot_in(const ThreadPool* pool);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::atomic<std::int32_t> active_{0};  // workers inside task() right now
  bool stop_ = false;
};

}  // namespace bgr

#include "bgr/fuzz/fuzzer.hpp"

#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "bgr/channel/channel_router.hpp"
#include "bgr/fuzz/mutator.hpp"
#include "bgr/fuzz/shrinker.hpp"
#include "bgr/fuzz/spec_sampler.hpp"
#include "bgr/io/design_io.hpp"
#include "bgr/io/io_error.hpp"
#include "bgr/io/route_io.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/route/router.hpp"

namespace bgr {

namespace {

/// Base artifacts the text modes corrupt: one small fixed design, its
/// routed result, and a representative JSON document. Built once — the
/// corruption seed, not the base, carries the per-case entropy.
struct BaseTexts {
  std::string design;
  std::string route;
  std::string json;
  std::string serve;
};

const BaseTexts& base_texts() {
  static const BaseTexts texts = [] {
    BaseTexts out;
    CircuitSpec spec = sample_spec(0);
    spec.rows = 3;
    spec.target_cells = 30;
    spec.levels = 3;
    spec.path_constraints = 4;
    Dataset ds = generate_circuit(spec);
    {
      std::ostringstream os;
      write_design(os, ds);
      out.design = os.str();
    }
    RouterOptions options;
    GlobalRouter router(ds.netlist, std::move(ds.placement), ds.tech,
                        ds.constraints, options);
    (void)router.run();
    ChannelStage channel(router);
    channel.run();
    {
      std::ostringstream os;
      write_route(os, router, channel);
      out.route = os.str();
    }
    out.json =
        "{\"version\": 1, \"design\": \"fz0\", \"phases\": "
        "[{\"name\": \"initial\", \"deletions\": 120, \"crit\": 835.25}, "
        "{\"name\": \"delay\", \"deletions\": 4, \"crit\": -1.5e2}], "
        "\"clean\": true, \"notes\": null, "
        "\"nested\": {\"a\": [1, 2.5, \"s\\n\", false], \"b\": {}}}";
    // One of each request shape the serve protocol accepts, so the
    // mutator corrupts ids, option keys, escapes and frame boundaries.
    out.serve =
        "{\"id\": \"j1\", \"dataset\": \"C1P1\", \"options\": "
        "{\"rc\": true, \"improvement_passes\": 3, "
        "\"path_search\": \"astar\"}, \"report\": true}\n"
        "{\"id\": \"j2\", \"design\": \"bgr-design 1\\nname fz0\\n\", "
        "\"verify\": true, \"route_text\": false}\n"
        "{\"id\": \"j3\", \"design_file\": \"/tmp/design.txt\", "
        "\"options\": {\"unconstrained\": true}}\n"
        "{\"cancel\": \"j1\"}\n"
        "{\"ping\": true}\n"
        "{\"shutdown\": true}\n";
    return out;
  }();
  return texts;
}

}  // namespace

const char* fuzz_mode_name(FuzzMode mode) {
  switch (mode) {
    case FuzzMode::kSpec: return "spec";
    case FuzzMode::kDesignText: return "design";
    case FuzzMode::kRouteText: return "route";
    case FuzzMode::kJsonText: return "json";
    case FuzzMode::kServeText: return "serve";
    case FuzzMode::kSteinerDominance: return "steiner-dominance";
  }
  return "?";
}

FuzzCase fuzz_one(std::uint64_t seed, FuzzMode mode,
                  const FuzzOptions& options, bool shrink) {
  FuzzCase result;
  result.seed = seed;
  result.mode = mode;

  if (mode == FuzzMode::kSpec || mode == FuzzMode::kSteinerDominance) {
    const auto check = mode == FuzzMode::kSpec ? &check_spec
                                               : &check_steiner_spec;
    const CircuitSpec spec = sample_spec(seed);
    result.failure = (*check)(spec, options);
    if (result.failure) {
      CircuitSpec minimal = spec;
      if (shrink) {
        const std::string oracle = result.failure->oracle;
        minimal = shrink_spec(spec, [&](const CircuitSpec& candidate) {
          const auto failure = (*check)(candidate, options);
          return failure && failure->oracle == oracle;
        });
        result.failure = (*check)(minimal, options);  // refresh detail
      }
      result.repro = spec_to_text(minimal);
    }
    return result;
  }

  const BaseTexts& base = base_texts();
  const std::string* base_text = &base.design;
  std::optional<FuzzFailure> (*oracle)(const std::string&) =
      &check_design_text;
  if (mode == FuzzMode::kRouteText) {
    base_text = &base.route;
    oracle = &check_route_text;
  } else if (mode == FuzzMode::kJsonText) {
    base_text = &base.json;
    oracle = &check_json_text;
  } else if (mode == FuzzMode::kServeText) {
    base_text = &base.serve;
    oracle = &check_serve_text;
  }

  const std::string mutated = mutate_text(*base_text, seed);
  result.failure = (*oracle)(mutated);
  if (result.failure) {
    std::string minimal = mutated;
    if (shrink) {
      const std::string kind = result.failure->oracle;
      minimal = shrink_text(mutated, [&](const std::string& candidate) {
        const auto failure = (*oracle)(candidate);
        return failure && failure->oracle == kind;
      });
      result.failure = (*oracle)(minimal);  // refresh detail
    }
    result.repro = minimal;
  }
  return result;
}

int run_campaign(const FuzzCampaign& campaign, std::ostream& log) {
  static const FuzzMode kRotation[] = {
      FuzzMode::kSpec, FuzzMode::kDesignText, FuzzMode::kRouteText,
      FuzzMode::kJsonText, FuzzMode::kServeText};
  int failures = 0;
  std::map<std::string, int> per_mode;
  for (std::uint64_t seed = campaign.seed_lo; seed <= campaign.seed_hi;
       ++seed) {
    const FuzzMode mode =
        campaign.only_mode
            ? *campaign.only_mode
            : kRotation[seed % (sizeof(kRotation) / sizeof(kRotation[0]))];
    const FuzzCase result =
        fuzz_one(seed, mode, campaign.oracle, campaign.shrink);
    ++per_mode[fuzz_mode_name(mode)];
    if (campaign.verbose) {
      log << "seed " << seed << " [" << fuzz_mode_name(mode) << "] "
          << (result.failure ? "FAIL" : "ok") << "\n";
    }
    if (!result.failure) continue;
    ++failures;
    log << "FAILURE seed " << seed << " [" << fuzz_mode_name(mode)
        << "] oracle=" << result.failure->oracle << "\n  "
        << result.failure->detail << "\n";
    if (!campaign.corpus_out.empty()) {
      std::error_code ec;  // best-effort; the ofstream below reports loss
      std::filesystem::create_directories(campaign.corpus_out, ec);
      const std::string stem = campaign.corpus_out + "/repro_" +
                               fuzz_mode_name(mode) + "_seed" +
                               std::to_string(seed);
      std::ofstream repro(stem + ".txt");
      repro << result.repro;
      std::ofstream expect(stem + ".expect");
      expect << "oracle " << result.failure->oracle << "\n"
             << "detail " << result.failure->detail << "\n";
      if (repro && expect) {
        log << "  repro written to " << stem << ".txt\n";
      } else {
        log << "  could not write repro to " << stem << ".txt\n";
      }
    }
  }
  log << "fuzz: " << (campaign.seed_hi - campaign.seed_lo + 1) << " cases (";
  bool first = true;
  for (const auto& [name, count] : per_mode) {
    if (!first) log << ", ";
    log << count << " " << name;
    first = false;
  }
  log << "), " << failures << " failure" << (failures == 1 ? "" : "s")
      << "\n";
  return failures;
}

}  // namespace bgr

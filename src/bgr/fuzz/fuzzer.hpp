#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "bgr/fuzz/oracles.hpp"

namespace bgr {

/// What one fuzz case exercises. kSpec drives the full routing pipeline
/// on a sampled extreme-corner circuit; the text modes drive the parsers
/// with structured corruptions of valid artifacts (kServeText: the
/// bgr_serve daemon's NDJSON request frames). kSteinerDominance drives the
/// cost-distance steiner backend through check_steiner_spec on the same
/// sampled circuits; it is opt-in via --mode (not part of the default
/// rotation, which keeps the historical seed→mode mapping stable).
enum class FuzzMode {
  kSpec,
  kDesignText,
  kRouteText,
  kJsonText,
  kServeText,
  kSteinerDominance,
};

[[nodiscard]] const char* fuzz_mode_name(FuzzMode mode);

struct FuzzCase {
  std::uint64_t seed = 0;
  FuzzMode mode = FuzzMode::kSpec;
  std::optional<FuzzFailure> failure;
  /// On failure: the minimized reproducer — a `bgr-fuzzspec 1` document
  /// for kSpec, the offending input text otherwise.
  std::string repro;
};

/// Runs one deterministic fuzz case; shrinks on failure when requested.
[[nodiscard]] FuzzCase fuzz_one(std::uint64_t seed, FuzzMode mode,
                                const FuzzOptions& options, bool shrink);

struct FuzzCampaign {
  std::uint64_t seed_lo = 1;
  std::uint64_t seed_hi = 100;
  std::optional<FuzzMode> only_mode;  // default: rotate through all modes
  FuzzOptions oracle;
  bool shrink = true;
  /// Directory for failing reproducers + .expect sidecars ("" = skip).
  std::string corpus_out;
  bool verbose = false;
};

/// Runs seeds [seed_lo, seed_hi]; logs progress and failures to `log`.
/// Returns the number of failing cases (0 = clean campaign).
int run_campaign(const FuzzCampaign& campaign, std::ostream& log);

}  // namespace bgr

#include "bgr/fuzz/mutator.hpp"

#include <sstream>
#include <vector>

#include "bgr/common/rng.hpp"

namespace bgr {

namespace {

/// Hostile replacement tokens: numeric extremes, overflow bait, locale
/// bait, non-numbers, format keywords that may land in the wrong field.
const char* const kHostileTokens[] = {
    "0",       "-1",          "1",        "2147483647", "-2147483648",
    "4294967296", "99999999999999999999", "1e999",      "-1e999",
    "nan",     "inf",         "0.5",      "-0.0",       "1,5",
    "x",       "end",         "chip",     "sink",       "src",
    "top",     "bot",         "trunk",    "#",          "\"",
};

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::istringstream ls(line);
  std::vector<std::string> fields;
  std::string token;
  while (ls >> token) fields.push_back(token);
  return fields;
}

std::string join_fields(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += fields[i];
  }
  return out;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out.push_back('\n');
  }
  return out;
}

std::size_t pick_index(Rng& rng, std::size_t size) {
  return static_cast<std::size_t>(
      rng.uniform(0, static_cast<std::int64_t>(size) - 1));
}

/// One edit; returns false when the chosen edit does not apply (e.g. a
/// field swap on a 1-field line) so the caller can re-roll.
bool apply_one(std::vector<std::string>& lines, std::string& raw_tail,
               Rng& rng) {
  if (lines.empty()) return false;
  switch (rng.uniform_i32(0, 9)) {
    case 0: {  // delete a line
      lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(
                                      pick_index(rng, lines.size())));
      return true;
    }
    case 1: {  // duplicate a line
      const std::size_t i = pick_index(rng, lines.size());
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i), lines[i]);
      return true;
    }
    case 2: {  // swap two fields within a line
      const std::size_t i = pick_index(rng, lines.size());
      auto fields = split_fields(lines[i]);
      if (fields.size() < 2) return false;
      const std::size_t a = pick_index(rng, fields.size());
      const std::size_t b = pick_index(rng, fields.size());
      if (a == b) return false;
      std::swap(fields[a], fields[b]);
      lines[i] = join_fields(fields);
      return true;
    }
    case 3: {  // replace a field with a hostile token
      const std::size_t i = pick_index(rng, lines.size());
      auto fields = split_fields(lines[i]);
      if (fields.empty()) return false;
      const std::size_t k = pick_index(rng, fields.size());
      fields[k] = kHostileTokens[pick_index(
          rng, sizeof kHostileTokens / sizeof kHostileTokens[0])];
      lines[i] = join_fields(fields);
      return true;
    }
    case 4: {  // truncate the whole text at a byte position
      std::string text = join_lines(lines) + raw_tail;
      if (text.empty()) return false;
      text.resize(pick_index(rng, text.size()));
      lines = split_lines(text);
      raw_tail.clear();
      return true;
    }
    case 5: {  // corrupt one byte
      const std::size_t i = pick_index(rng, lines.size());
      if (lines[i].empty()) return false;
      const std::size_t k = pick_index(rng, lines[i].size());
      lines[i][k] = static_cast<char>(rng.uniform(1, 255));
      return true;
    }
    case 6: {  // swap two whole lines
      if (lines.size() < 2) return false;
      const std::size_t a = pick_index(rng, lines.size());
      const std::size_t b = pick_index(rng, lines.size());
      if (a == b) return false;
      std::swap(lines[a], lines[b]);
      return true;
    }
    case 7: {  // drop a field (shortens the record)
      const std::size_t i = pick_index(rng, lines.size());
      auto fields = split_fields(lines[i]);
      if (fields.empty()) return false;
      fields.erase(fields.begin() + static_cast<std::ptrdiff_t>(
                                        pick_index(rng, fields.size())));
      lines[i] = join_fields(fields);
      return true;
    }
    case 8: {  // insert a garbage record
      const std::size_t i = pick_index(rng, lines.size() + 1);
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i),
                   "frob -3 q 99");
      return true;
    }
    default: {  // splice a field from one line over a field of another
      const std::size_t i = pick_index(rng, lines.size());
      const std::size_t j = pick_index(rng, lines.size());
      auto from = split_fields(lines[i]);
      auto to = split_fields(lines[j]);
      if (from.empty() || to.empty()) return false;
      to[pick_index(rng, to.size())] = from[pick_index(rng, from.size())];
      lines[j] = join_fields(to);
      return true;
    }
  }
}

}  // namespace

std::string mutate_text(const std::string& base, std::uint64_t seed,
                        int max_mutations) {
  Rng rng(seed * 0xD1B54A32D192ED03ull + 7);
  std::vector<std::string> lines = split_lines(base);
  std::string raw_tail;  // bytes after the last newline, kept verbatim
  const std::size_t complete =
      base.empty() || base.back() == '\n' ? lines.size()
                                          : lines.size() - 1;
  if (complete < lines.size()) {
    raw_tail = lines.back();
    lines.pop_back();
  }
  const int wanted = rng.uniform_i32(1, std::max(1, max_mutations));
  int applied = 0;
  for (int attempt = 0; attempt < wanted * 8 && applied < wanted; ++attempt) {
    if (apply_one(lines, raw_tail, rng)) ++applied;
    if (lines.empty() && raw_tail.empty()) break;
  }
  return join_lines(lines) + raw_tail;
}

}  // namespace bgr

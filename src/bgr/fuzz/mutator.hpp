#pragma once

#include <cstdint>
#include <string>

namespace bgr {

/// Structured corruption of a line-based ASCII format (`bgr-design 1`,
/// `bgr-route 1`, JSON run reports): deterministic in `seed`, applies
/// 1..`max_mutations` grammar-aware edits — field swaps and replacements
/// with hostile numerals, line deletion/duplication/reordering,
/// truncations, raw byte corruption, garbage records. The output is what a
/// parser must survive with a clean diagnostic: never a crash, never a
/// partially-built object.
[[nodiscard]] std::string mutate_text(const std::string& base,
                                      std::uint64_t seed,
                                      int max_mutations = 3);

}  // namespace bgr

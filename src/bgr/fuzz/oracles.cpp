#include "bgr/fuzz/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <typeinfo>
#include <vector>

#include "bgr/channel/channel_router.hpp"
#include "bgr/common/check.hpp"
#include "bgr/io/design_io.hpp"
#include "bgr/io/io_error.hpp"
#include "bgr/io/route_io.hpp"
#include "bgr/obs/json.hpp"
#include "bgr/route/router.hpp"
#include "bgr/serve/protocol.hpp"
#include "bgr/timing/analyzer.hpp"
#include "bgr/verify/verifier.hpp"

namespace bgr {

namespace {

/// Everything one pipeline run produces that must be reproducible: the
/// outcome, the final margins, and the serialised artifacts.
struct PipelineResult {
  RouteOutcome outcome;
  double detailed_delay_ps = 0.0;
  std::vector<double> margins;
  std::string route_text;
  std::string design_text;
};

std::string describe_exception() {
  try {
    throw;
  } catch (const CheckError& e) {
    return std::string("CheckError: ") + e.what();
  } catch (const IoError& e) {
    return std::string("IoError: ") + e.what();
  } catch (const std::exception& e) {
    return std::string(typeid(e).name()) + ": " + e.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// Runs generate → route → channel → verify → STA recompute at one thread
/// count. Returns a failure, or fills `out`.
std::optional<FuzzFailure> run_pipeline(const CircuitSpec& spec,
                                        std::int32_t threads,
                                        PathSearchBackend backend,
                                        PipelineResult* out,
                                        bool shard_deletion = true) {
  try {
    Dataset ds = generate_circuit(spec);
    RouterOptions options;
    options.threads = threads;
    options.path_search = backend;
    options.shard_deletion = shard_deletion;
    GlobalRouter router(ds.netlist, std::move(ds.placement), ds.tech,
                        ds.constraints, options);
    out->outcome = router.run();

    // Oracle: live margins must equal a from-scratch serial STA over the
    // same post-global-route capacitances, bit for bit. This must run
    // before the channel stage, which rewrites the delay graph with
    // detailed capacitances and legitimately stales the live analyzer.
    const TimingAnalyzer& live = router.analyzer();
    std::vector<PathConstraint> constraints;
    for (const ConstraintId p : live.constraints()) {
      constraints.push_back(live.constraint(p));
    }
    TimingAnalyzer fresh(router.delay_graph(), constraints);
    fresh.update_all();
    for (const ConstraintId p : live.constraints()) {
      const double live_m = live.margin_ps(p);
      const double fresh_m = fresh.margin_ps(p);
      out->margins.push_back(fresh_m);
      if (live_m != fresh_m) {
        return FuzzFailure{
            "sta-recompute",
            "constraint " + live.constraint(p).name + ": live margin " +
                std::to_string(live_m) + " != recomputed " +
                std::to_string(fresh_m)};
      }
    }

    ChannelStage channel(router);
    channel.run();
    out->detailed_delay_ps = channel.apply_and_critical_delay_ps(
        router.delay_graph(), DelayModel::kLumpedC);

    // Oracle: the independent signoff checks must be clean.
    const RouteVerifier verifier(router, &channel);
    for (const VerifyIssue& issue : verifier.run()) {
      if (issue.severity != VerifyIssue::Severity::kError) continue;
      return FuzzFailure{"verify",
                         "[" + issue.check + "] " + issue.message};
    }

    // Serialised artifacts (also inputs to the round-trip oracles).
    std::ostringstream route_os;
    write_route(route_os, router, channel);
    out->route_text = route_os.str();

    Dataset routed{ds.name, ds.spec, ds.netlist, router.placement(),
                   ds.constraints, ds.tech};
    std::ostringstream design_os;
    write_design(design_os, routed);
    out->design_text = design_os.str();
    return std::nullopt;
  } catch (...) {
    return FuzzFailure{"crash", "threads=" + std::to_string(threads) + ": " +
                                    describe_exception()};
  }
}

/// Write→read→write fixpoint for a serialised artifact the writer just
/// produced: it must re-parse, and its canonical re-serialisation must be
/// byte-identical.
std::optional<FuzzFailure> check_roundtrip(const std::string& what,
                                           const std::string& text,
                                           bool is_route) {
  try {
    std::ostringstream again;
    if (is_route) {
      std::istringstream is(text);
      write_route_doc(again, read_route(is, what));
    } else {
      std::istringstream is(text);
      const Dataset loaded = read_design(is, what);
      write_design(again, loaded);
    }
    if (again.str() != text) {
      return FuzzFailure{"roundtrip",
                         what + ": write->read->write is not a fixpoint"};
    }
    return std::nullopt;
  } catch (...) {
    return FuzzFailure{"roundtrip", what + " failed to re-parse: " +
                                        describe_exception()};
  }
}

std::string first_divergence(const PipelineResult& a,
                             const PipelineResult& b,
                             bool compare_path_effort) {
  auto num = [](double x) { return std::to_string(x); };
  if (a.outcome.critical_delay_ps != b.outcome.critical_delay_ps) {
    return "critical_delay_ps " + num(a.outcome.critical_delay_ps) + " vs " +
           num(b.outcome.critical_delay_ps);
  }
  if (a.outcome.total_length_um != b.outcome.total_length_um) {
    return "total_length_um " + num(a.outcome.total_length_um) + " vs " +
           num(b.outcome.total_length_um);
  }
  if (a.outcome.violated_constraints != b.outcome.violated_constraints) {
    return "violated_constraints";
  }
  if (a.outcome.worst_margin_ps != b.outcome.worst_margin_ps) {
    return "worst_margin_ps";
  }
  if (a.outcome.feed_cells_added != b.outcome.feed_cells_added) {
    return "feed_cells_added";
  }
  if (a.outcome.widen_pitches != b.outcome.widen_pitches) {
    return "widen_pitches";
  }
  if (a.detailed_delay_ps != b.detailed_delay_ps) return "detailed_delay_ps";
  if (a.margins != b.margins) return "constraint margins";
  if (a.outcome.phases.size() != b.outcome.phases.size()) {
    return "phase count";
  }
  for (std::size_t i = 0; i < a.outcome.phases.size(); ++i) {
    const PhaseStats& pa = a.outcome.phases[i];
    const PhaseStats& pb = b.outcome.phases[i];
    // seconds / exec_regions / exec_chunks legitimately vary with the
    // thread count; everything else is semantic.
    if (pa.deletions != pb.deletions || pa.reroutes != pb.reroutes ||
        pa.worst_margin_ps != pb.worst_margin_ps ||
        pa.critical_delay_ps != pb.critical_delay_ps ||
        pa.sum_max_density != pb.sum_max_density ||
        pa.sta_updates != pb.sta_updates ||
        pa.sta_dirty_vertices != pb.sta_dirty_vertices ||
        pa.sta_relaxations != pb.sta_relaxations) {
      return "phase '" + pa.name + "' statistics";
    }
    // Pops and relaxations differ by construction between backends (that
    // is A*'s whole point); compare them only when both runs used one.
    if (compare_path_effort &&
        (pa.path_searches != pb.path_searches ||
         pa.path_pops != pb.path_pops ||
         pa.path_relaxations != pb.path_relaxations)) {
      return "phase '" + pa.name + "' path-search statistics";
    }
  }
  if (a.route_text != b.route_text) return "route text";
  if (a.design_text != b.design_text) return "design text";
  return "";
}

}  // namespace

double steiner_dominance_tol_ps(double baseline_critical_ps,
                                const FuzzOptions& options) {
  return std::max(options.dominance_tol_ps,
                  options.dominance_rel_tol * std::abs(baseline_critical_ps));
}

std::optional<FuzzFailure> check_spec(const CircuitSpec& spec,
                                      const FuzzOptions& options) {
  PipelineResult serial;
  if (auto failure =
          run_pipeline(spec, 1, PathSearchBackend::kAstar, &serial)) {
    return failure;
  }

  if (auto failure = check_roundtrip("route", serial.route_text, true)) {
    return failure;
  }
  if (auto failure =
          check_roundtrip("design", serial.design_text, false)) {
    return failure;
  }

  // Oracle: the goal-oriented A* backend must reproduce the reference
  // Dijkstra pipeline bit for bit — outcome, margins, artifacts — with
  // only the search-effort counters allowed to differ.
  PipelineResult reference;
  if (auto failure =
          run_pipeline(spec, 1, PathSearchBackend::kDijkstra, &reference)) {
    return failure;
  }
  const std::string backend_diverged =
      first_divergence(serial, reference, /*compare_path_effort=*/false);
  if (!backend_diverged.empty()) {
    return FuzzFailure{"backend-divergence",
                       "astar vs dijkstra differ in " + backend_diverged};
  }

  // Oracle: the sharded deletion loop (DESIGN.md §13) must be bit-identical
  // to the unsharded serial greedy — outcome, margins, artifacts, and every
  // semantic phase statistic.
  PipelineResult unsharded;
  if (auto failure = run_pipeline(spec, 1, PathSearchBackend::kAstar,
                                  &unsharded, /*shard_deletion=*/false)) {
    return failure;
  }
  const std::string shard_diverged =
      first_divergence(serial, unsharded, /*compare_path_effort=*/true);
  if (!shard_diverged.empty()) {
    return FuzzFailure{"shard-divergence",
                       "sharded vs unsharded deletion differ in " +
                           shard_diverged};
  }

  if (options.alt_threads > 1) {
    PipelineResult threaded;
    if (auto failure = run_pipeline(spec, options.alt_threads,
                                    PathSearchBackend::kAstar, &threaded)) {
      return failure;
    }
    const std::string diverged =
        first_divergence(serial, threaded, /*compare_path_effort=*/true);
    if (!diverged.empty()) {
      return FuzzFailure{"thread-divergence",
                         "threads 1 vs " +
                             std::to_string(options.alt_threads) +
                             " differ in " + diverged};
    }
  }
  return std::nullopt;
}

std::optional<FuzzFailure> check_steiner_spec(const CircuitSpec& spec,
                                              const FuzzOptions& options) {
  PipelineResult serial;
  if (auto failure =
          run_pipeline(spec, 1, PathSearchBackend::kSteiner, &serial)) {
    return failure;
  }

  if (auto failure = check_roundtrip("route", serial.route_text, true)) {
    return failure;
  }

  // Oracle: the steiner engine is allowed to differ from the reference,
  // but must be deterministic with respect to the execution schedule —
  // bit-identical across thread counts, including its own effort counters.
  if (options.alt_threads > 1) {
    PipelineResult threaded;
    if (auto failure = run_pipeline(spec, options.alt_threads,
                                    PathSearchBackend::kSteiner, &threaded)) {
      return failure;
    }
    const std::string diverged =
        first_divergence(serial, threaded, /*compare_path_effort=*/true);
    if (!diverged.empty()) {
      return FuzzFailure{"thread-divergence",
                         "steiner threads 1 vs " +
                             std::to_string(options.alt_threads) +
                             " differ in " + diverged};
    }
  }

  // Oracle: margin dominance against the reference union-of-shortest-paths
  // pipeline. The steiner trees trade per-sink path length for total net
  // capacitance, which under the lumped-C global model can only help — so
  // no constraint may end up worse than the serial Dijkstra baseline
  // beyond the tolerance, and the wirelengths are reported either way.
  PipelineResult baseline;
  if (auto failure =
          run_pipeline(spec, 1, PathSearchBackend::kDijkstra, &baseline)) {
    return failure;
  }
  const std::string lengths =
      "; wirelength steiner " + std::to_string(serial.outcome.total_length_um) +
      " um vs dijkstra " + std::to_string(baseline.outcome.total_length_um) +
      " um";
  if (serial.margins.size() != baseline.margins.size()) {
    return FuzzFailure{"steiner-dominance",
                       "constraint count diverged: steiner " +
                           std::to_string(serial.margins.size()) +
                           " vs dijkstra " +
                           std::to_string(baseline.margins.size()) + lengths};
  }
  const double tol = steiner_dominance_tol_ps(
      baseline.outcome.critical_delay_ps, options);
  for (std::size_t i = 0; i < serial.margins.size(); ++i) {
    if (serial.margins[i] < baseline.margins[i] - tol) {
      return FuzzFailure{
          "steiner-dominance",
          "constraint " + std::to_string(i) + ": steiner margin " +
              std::to_string(serial.margins[i]) + " ps < dijkstra " +
              std::to_string(baseline.margins[i]) + " ps - tol " +
              std::to_string(tol) + lengths};
    }
  }
  return std::nullopt;
}

std::optional<FuzzFailure> check_design_text(const std::string& text) {
  std::optional<Dataset> parsed;
  try {
    std::istringstream is(text);
    parsed.emplace(read_design(is, "fuzz"));
  } catch (const IoError&) {
    return std::nullopt;  // clean rejection is the expected outcome
  } catch (...) {
    return FuzzFailure{"io-crash", describe_exception()};
  }
  // The mutation survived parsing: the accepted design must round-trip.
  // A writer crash here means the reader admitted a design that violates
  // the writer's invariants — a finding, never a terminate.
  try {
    std::ostringstream os;
    write_design(os, *parsed);
    return check_roundtrip("design", os.str(), false);
  } catch (...) {
    return FuzzFailure{"roundtrip",
                       "accepted design fails to serialise: " +
                           describe_exception()};
  }
}

std::optional<FuzzFailure> check_route_text(const std::string& text) {
  try {
    std::istringstream is(text);
    const RouteDoc doc = read_route(is, "fuzz");
    std::ostringstream os;
    write_route_doc(os, doc);
    return check_roundtrip("route", os.str(), true);
  } catch (const IoError&) {
    return std::nullopt;
  } catch (...) {
    return FuzzFailure{"io-crash", describe_exception()};
  }
}

std::optional<FuzzFailure> check_json_text(const std::string& text) {
  JsonValue parsed;
  try {
    parsed = json_parse(text);
  } catch (const std::runtime_error& e) {
    if (std::string(e.what()).rfind("JSON parse error", 0) == 0) {
      return std::nullopt;  // clean rejection
    }
    return FuzzFailure{"io-crash", std::string("runtime_error: ") + e.what()};
  } catch (...) {
    return FuzzFailure{"io-crash", describe_exception()};
  }
  try {
    const std::string once = parsed.dump();
    const std::string twice = json_parse(once).dump();
    if (once != twice) {
      return FuzzFailure{"roundtrip", "JSON dump->parse->dump diverges"};
    }
  } catch (...) {
    return FuzzFailure{"roundtrip",
                       "JSON re-parse of own dump failed: " +
                           describe_exception()};
  }
  return std::nullopt;
}

std::optional<FuzzFailure> check_serve_text(const std::string& text) {
  // The daemon reads line-at-a-time; feed the mutated text to the parser
  // the same way (the mutator freely inserts and removes newlines).
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    serve::ParsedRequest parsed;
    try {
      parsed = serve::parse_request_line(line);
    } catch (...) {
      return FuzzFailure{"serve-crash",
                         "parse_request_line threw: " + describe_exception()};
    }
    if (parsed.kind == serve::ParsedRequest::Kind::kError) {
      if (parsed.error.empty()) {
        return FuzzFailure{"serve-diagnostic",
                           "rejected request with an empty diagnostic"};
      }
      // The diagnostic goes back over the wire in a "rejected" event; a
      // multi-line or non-re-parseable response would corrupt the frame
      // stream for every later response.
      try {
        JsonValue event = serve::make_event("rejected", parsed.job.id);
        event.set("reason", parsed.error);
        const std::string response = serve::response_line(event);
        if (response.find('\n') != std::string::npos) {
          return FuzzFailure{"serve-frame",
                             "rejection response contains a newline"};
        }
        (void)json_parse(response);
      } catch (...) {
        return FuzzFailure{"serve-frame",
                           "rejection response failed to serialize: " +
                               describe_exception()};
      }
    }
  }
  return std::nullopt;
}

}  // namespace bgr

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "bgr/gen/generator.hpp"

namespace bgr {

/// One oracle violation. `oracle` names the invariant that broke;
/// `detail` is the evidence (exception text, first diverging field, the
/// verifier finding). A nullopt from a check means every oracle held.
struct FuzzFailure {
  std::string oracle;
  std::string detail;
};

struct FuzzOptions {
  /// Second thread count for the determinism oracle (the first is 1).
  std::int32_t alt_threads = 4;
  /// Tolerance of the steiner-dominance oracle, as
  ///   max(dominance_tol_ps, dominance_rel_tol · baseline critical delay).
  /// The improvement phases are greedy and react to the different start
  /// topology, so individual margins wobble a few percent of the critical
  /// delay in both directions; the oracle bounds that wobble instead of
  /// asserting strict per-constraint improvement. Measured worst case over
  /// the sampled spec corpus (seeds 1..200): 46.7 ps / 5.3% relative — the
  /// defaults leave ~1.5x headroom while still catching a backend that
  /// genuinely trades a constraint away.
  double dominance_tol_ps = 2.0;
  double dominance_rel_tol = 0.08;
};

/// The per-constraint slack the steiner-dominance oracle grants for a
/// baseline run whose critical delay is `baseline_critical_ps` (exposed so
/// test batteries can assert with the exact same bound).
[[nodiscard]] double steiner_dominance_tol_ps(double baseline_critical_ps,
                                              const FuzzOptions& options);

/// Full-pipeline oracles over a generated circuit. The spec must be valid
/// (as sample_spec produces); every failure is a bug:
///   crash              any exception out of generate/route/channel
///   verify             RouteVerifier::run() reports an error finding
///   sta-recompute      live margins differ from a from-scratch serial
///                      STA over the final capacitances (bitwise)
///   shard-divergence   RouteOutcome / margins / route text differ
///                      between the sharded deletion loop and the
///                      unsharded serial greedy (DESIGN.md §13)
///   thread-divergence  RouteOutcome / margins / route text differ
///                      between --threads 1 and --threads alt_threads
///   roundtrip          saved design or route text fails to re-parse, or
///                      the write→read→write fixpoint breaks
[[nodiscard]] std::optional<FuzzFailure> check_spec(
    const CircuitSpec& spec, const FuzzOptions& options = {});

/// Oracles for the cost-distance steiner backend (DESIGN.md §16), which is
/// *allowed* to produce different trees than the reference engines — so
/// instead of bit-identity to Dijkstra it must satisfy, on every spec:
///   crash / verify / sta-recompute   as in check_spec, on the steiner run
///   thread-divergence  steiner itself is bit-identical (including the
///                      path-effort counters) across 1 and alt_threads
///   steiner-dominance  per constraint, the steiner margin is no worse
///                      than the serial Dijkstra baseline beyond a small
///                      tolerance; the failure detail reports both margins
///                      and both total wirelengths
[[nodiscard]] std::optional<FuzzFailure> check_steiner_spec(
    const CircuitSpec& spec, const FuzzOptions& options = {});

/// Parser robustness oracles over (possibly corrupted) text: the parser
/// must either succeed — and then survive a write→read→write fixpoint —
/// or throw a clean IoError diagnostic. Any other exception, including
/// internal-invariant CheckError, is a finding.
[[nodiscard]] std::optional<FuzzFailure> check_design_text(
    const std::string& text);
[[nodiscard]] std::optional<FuzzFailure> check_route_text(
    const std::string& text);
/// JSON parser oracle: clean "JSON parse error ..." or a dump→parse→dump
/// fixpoint on success.
[[nodiscard]] std::optional<FuzzFailure> check_json_text(
    const std::string& text);
/// Serve request-frame oracle (the bgr_serve daemon's parsing entry
/// point): serve::parse_request_line must never throw — malformed or
/// truncated request lines come back as kError with a non-empty
/// diagnostic whose "rejected" response serializes to a single line of
/// re-parseable JSON (the newline is the frame delimiter, so a response
/// containing one would corrupt the stream).
[[nodiscard]] std::optional<FuzzFailure> check_serve_text(
    const std::string& text);

}  // namespace bgr

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "bgr/gen/generator.hpp"

namespace bgr {

/// One oracle violation. `oracle` names the invariant that broke;
/// `detail` is the evidence (exception text, first diverging field, the
/// verifier finding). A nullopt from a check means every oracle held.
struct FuzzFailure {
  std::string oracle;
  std::string detail;
};

struct FuzzOptions {
  /// Second thread count for the determinism oracle (the first is 1).
  std::int32_t alt_threads = 4;
};

/// Full-pipeline oracles over a generated circuit. The spec must be valid
/// (as sample_spec produces); every failure is a bug:
///   crash              any exception out of generate/route/channel
///   verify             RouteVerifier::run() reports an error finding
///   sta-recompute      live margins differ from a from-scratch serial
///                      STA over the final capacitances (bitwise)
///   shard-divergence   RouteOutcome / margins / route text differ
///                      between the sharded deletion loop and the
///                      unsharded serial greedy (DESIGN.md §13)
///   thread-divergence  RouteOutcome / margins / route text differ
///                      between --threads 1 and --threads alt_threads
///   roundtrip          saved design or route text fails to re-parse, or
///                      the write→read→write fixpoint breaks
[[nodiscard]] std::optional<FuzzFailure> check_spec(
    const CircuitSpec& spec, const FuzzOptions& options = {});

/// Parser robustness oracles over (possibly corrupted) text: the parser
/// must either succeed — and then survive a write→read→write fixpoint —
/// or throw a clean IoError diagnostic. Any other exception, including
/// internal-invariant CheckError, is a finding.
[[nodiscard]] std::optional<FuzzFailure> check_design_text(
    const std::string& text);
[[nodiscard]] std::optional<FuzzFailure> check_route_text(
    const std::string& text);
/// JSON parser oracle: clean "JSON parse error ..." or a dump→parse→dump
/// fixpoint on success.
[[nodiscard]] std::optional<FuzzFailure> check_json_text(
    const std::string& text);
/// Serve request-frame oracle (the bgr_serve daemon's parsing entry
/// point): serve::parse_request_line must never throw — malformed or
/// truncated request lines come back as kError with a non-empty
/// diagnostic whose "rejected" response serializes to a single line of
/// re-parseable JSON (the newline is the frame delimiter, so a response
/// containing one would corrupt the stream).
[[nodiscard]] std::optional<FuzzFailure> check_serve_text(
    const std::string& text);

}  // namespace bgr

#include "bgr/fuzz/shrinker.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace bgr {

namespace {

struct IntKnob {
  std::int32_t CircuitSpec::*field;
  std::int32_t domain_min;
};

/// Integer knobs with the smallest value the generator contract allows.
const IntKnob kIntKnobs[] = {
    {&CircuitSpec::target_cells, 8},
    {&CircuitSpec::path_constraints, 0},
    {&CircuitSpec::diff_pairs, 0},
    {&CircuitSpec::primary_inputs, 0},
    {&CircuitSpec::primary_outputs, 0},
    {&CircuitSpec::clock_buffers, 0},
    {&CircuitSpec::clock_pitch, 1},
    {&CircuitSpec::rows, 1},
    {&CircuitSpec::blocks, 1},
    {&CircuitSpec::levels, 2},
    {&CircuitSpec::register_percent, 0},
    {&CircuitSpec::feed_every, 1},
    {&CircuitSpec::placer_passes, 0},
};

struct RealKnob {
  double CircuitSpec::*field;
  double neutral;
};

const RealKnob kRealKnobs[] = {
    {&CircuitSpec::tightness_lo, 1.00},
    {&CircuitSpec::tightness_hi, 1.10},
    {&CircuitSpec::gap_fraction, 0.06},
    {&CircuitSpec::channel_depth_est_um, 50.0},
};

}  // namespace

CircuitSpec shrink_spec(const CircuitSpec& failing,
                        const SpecPredicate& still_fails, int max_evals) {
  CircuitSpec best = failing;
  int evals = 0;
  auto try_candidate = [&](const CircuitSpec& candidate) {
    if (evals >= max_evals) return false;
    ++evals;
    if (!still_fails(candidate)) return false;
    best = candidate;
    return true;
  };

  bool improved = true;
  while (improved && evals < max_evals) {
    improved = false;
    for (const IntKnob& knob : kIntKnobs) {
      // Binary descent: repeatedly try the domain minimum, then halve the
      // distance to it while the failure persists.
      while (best.*(knob.field) > knob.domain_min && evals < max_evals) {
        CircuitSpec candidate = best;
        candidate.*(knob.field) = knob.domain_min;
        if (try_candidate(candidate)) {
          improved = true;
          break;  // already minimal for this knob
        }
        const std::int32_t mid =
            knob.domain_min + (best.*(knob.field) - knob.domain_min) / 2;
        if (mid == best.*(knob.field)) break;
        candidate = best;
        candidate.*(knob.field) = mid;
        if (!try_candidate(candidate)) break;
        improved = true;
      }
    }
    for (const RealKnob& knob : kRealKnobs) {
      if (best.*(knob.field) == knob.neutral || evals >= max_evals) continue;
      CircuitSpec candidate = best;
      candidate.*(knob.field) = knob.neutral;
      if (candidate.tightness_lo <= candidate.tightness_hi &&
          try_candidate(candidate)) {
        improved = true;
      }
    }
  }
  return best;
}

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out.push_back('\n');
  }
  return out;
}

}  // namespace

std::string shrink_text(const std::string& failing,
                        const TextPredicate& still_fails, int max_evals) {
  std::string best = failing;
  int evals = 0;
  auto accept = [&](const std::string& candidate) {
    if (evals >= max_evals || candidate.size() >= best.size()) return false;
    ++evals;
    if (!still_fails(candidate)) return false;
    best = candidate;
    return true;
  };

  // Phase 1: delta-debug whole lines, chunk size halving to 1.
  bool shrunk = true;
  while (shrunk && evals < max_evals) {
    shrunk = false;
    std::vector<std::string> lines = split_lines(best);
    for (std::size_t chunk = std::max<std::size_t>(lines.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
      bool removed_any = true;
      while (removed_any && evals < max_evals) {
        removed_any = false;
        lines = split_lines(best);
        if (lines.empty()) break;
        for (std::size_t start = 0; start < lines.size();
             start += chunk) {
          std::vector<std::string> candidate = lines;
          const std::size_t end = std::min(start + chunk, candidate.size());
          candidate.erase(candidate.begin() +
                              static_cast<std::ptrdiff_t>(start),
                          candidate.begin() + static_cast<std::ptrdiff_t>(end));
          if (accept(join_lines(candidate))) {
            removed_any = true;
            shrunk = true;
            break;  // indices shifted; rescan from the smaller text
          }
        }
      }
      if (chunk == 1) break;
    }
  }

  // Phase 2: trim trailing fields off each line.
  bool trimmed = true;
  while (trimmed && evals < max_evals) {
    trimmed = false;
    const std::vector<std::string> lines = split_lines(best);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const auto cut = lines[i].find_last_of(' ');
      if (cut == std::string::npos) continue;
      std::vector<std::string> candidate = lines;
      candidate[i] = lines[i].substr(0, cut);
      if (accept(join_lines(candidate))) {
        trimmed = true;
        break;
      }
    }
  }

  // Phase 3: byte truncation from the end (binary descent).
  std::size_t step = best.size() / 2;
  while (step >= 1 && evals < max_evals) {
    if (best.size() > step) {
      std::string candidate = best.substr(0, best.size() - step);
      if (accept(candidate)) continue;
    }
    step /= 2;
  }
  return best;
}

}  // namespace bgr

#pragma once

#include <functional>
#include <string>

#include "bgr/gen/generator.hpp"

namespace bgr {

/// Predicates return true while the candidate still reproduces the
/// original failure (same oracle). The shrinkers are greedy: they only
/// keep a reduction the predicate confirms, so the result always fails
/// the same way the input did.
using SpecPredicate = std::function<bool(const CircuitSpec&)>;
using TextPredicate = std::function<bool(const std::string&)>;

/// Minimises a failing CircuitSpec: every integer knob is pushed toward
/// its domain minimum (binary descent), real knobs toward their neutral
/// defaults, until a fixpoint. `max_evals` bounds predicate evaluations
/// (each one is a full pipeline run).
[[nodiscard]] CircuitSpec shrink_spec(const CircuitSpec& failing,
                                      const SpecPredicate& still_fails,
                                      int max_evals = 400);

/// Minimises a failing text input: delta-debugging over lines (chunk
/// removal with halving chunk sizes), then per-line tail-field trimming,
/// then end-of-text truncation.
[[nodiscard]] std::string shrink_text(const std::string& failing,
                                      const TextPredicate& still_fails,
                                      int max_evals = 2000);

}  // namespace bgr

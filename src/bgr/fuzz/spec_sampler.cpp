#include "bgr/fuzz/spec_sampler.hpp"

#include <sstream>

#include "bgr/common/rng.hpp"
#include "bgr/io/field_reader.hpp"
#include "bgr/io/io_error.hpp"

namespace bgr {

namespace {

/// Shared generic ranges; regimes below override individual fields.
CircuitSpec sample_generic(Rng& rng) {
  CircuitSpec spec;
  spec.rows = rng.uniform_i32(2, 12);
  spec.target_cells = rng.uniform_i32(20, 220);
  spec.levels = rng.uniform_i32(3, 10);
  spec.register_percent = rng.uniform_i32(5, 30);
  spec.primary_inputs = rng.uniform_i32(1, 12);
  spec.primary_outputs = rng.uniform_i32(1, 12);
  spec.diff_pairs = rng.uniform_i32(0, 4);
  spec.clock_buffers = rng.uniform_i32(1, 3);
  spec.clock_pitch = rng.uniform_i32(1, 3);
  spec.path_constraints = rng.uniform_i32(0, 24);
  spec.tightness_lo = rng.uniform_real(0.98, 1.05);
  spec.tightness_hi = spec.tightness_lo + rng.uniform_real(0.0, 0.15);
  spec.gap_fraction = rng.uniform_real(0.0, 0.15);
  spec.feed_every = rng.uniform_i32(2, 20);
  spec.channel_depth_est_um = rng.uniform_real(10.0, 140.0);
  spec.placer_passes = rng.uniform_i32(0, 30);
  return spec;
}

}  // namespace

CircuitSpec sample_spec(std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  CircuitSpec spec = sample_generic(rng);
  switch (rng.uniform_i32(0, 7)) {
    case 0:  // tiny degenerate: minimal logic depth, near-minimal cells
      spec.rows = rng.uniform_i32(1, 3);
      spec.target_cells = rng.uniform_i32(8, 24);
      spec.levels = 2;
      spec.primary_inputs = rng.uniform_i32(0, 2);
      spec.primary_outputs = rng.uniform_i32(0, 2);
      spec.diff_pairs = rng.uniform_i32(0, 1);
      spec.path_constraints = rng.uniform_i32(0, 4);
      break;
    case 1:  // 1-row chip: every net routes in the two outer channels
      spec.rows = 1;
      spec.target_cells = rng.uniform_i32(10, 60);
      spec.levels = rng.uniform_i32(2, 5);
      break;
    case 2:  // saturated feed columns + zero-gap packing
      spec.feed_every = rng.uniform_i32(1, 2);
      spec.gap_fraction = 0.0;
      spec.rows = rng.uniform_i32(2, 6);
      spec.target_cells = rng.uniform_i32(30, 120);
      break;
    case 3:  // clock nets wider than a row: pitch-w reservation stress
      spec.clock_pitch = rng.uniform_i32(3, 6);
      spec.clock_buffers = rng.uniform_i32(1, 4);
      spec.rows = rng.uniform_i32(2, 5);
      spec.target_cells = rng.uniform_i32(24, 90);
      break;
    case 4:  // over-tight constraints: guaranteed violations, tightness < 1
      spec.tightness_lo = rng.uniform_real(0.55, 0.85);
      spec.tightness_hi = spec.tightness_lo + rng.uniform_real(0.0, 0.1);
      spec.path_constraints = rng.uniform_i32(8, 40);
      break;
    case 5:  // heavy differential + starved placement gaps
      spec.diff_pairs = rng.uniform_i32(4, 10);
      spec.gap_fraction = 0.0;
      spec.feed_every = rng.uniform_i32(12, 30);
      spec.target_cells = rng.uniform_i32(60, 160);
      break;
    case 6:  // closed blocks: the sharded deletion loop decomposes
      spec.blocks = rng.uniform_i32(2, 6);
      spec.rows = rng.uniform_i32(1, 4);
      spec.target_cells = spec.blocks * rng.uniform_i32(30, 110);
      spec.levels = rng.uniform_i32(3, 6);
      spec.diff_pairs = rng.uniform_i32(0, spec.blocks);
      spec.clock_buffers = rng.uniform_i32(0, 2);
      break;
    default:  // generic medium design, fields as sampled
      break;
  }
  spec.seed = rng.next();
  std::ostringstream name;
  name << "fz" << seed;
  spec.name = name.str();
  return spec;
}

std::string spec_to_text(const CircuitSpec& spec) {
  std::ostringstream os;
  os.precision(17);
  os << "bgr-fuzzspec 1\n";
  os << "name " << spec.name << "\n";
  os << "seed " << spec.seed << "\n";
  os << "rows " << spec.rows << "\n";
  os << "blocks " << spec.blocks << "\n";
  os << "target_cells " << spec.target_cells << "\n";
  os << "levels " << spec.levels << "\n";
  os << "register_percent " << spec.register_percent << "\n";
  os << "primary_inputs " << spec.primary_inputs << "\n";
  os << "primary_outputs " << spec.primary_outputs << "\n";
  os << "diff_pairs " << spec.diff_pairs << "\n";
  os << "clock_buffers " << spec.clock_buffers << "\n";
  os << "clock_pitch " << spec.clock_pitch << "\n";
  os << "path_constraints " << spec.path_constraints << "\n";
  os << "tightness_lo " << spec.tightness_lo << "\n";
  os << "tightness_hi " << spec.tightness_hi << "\n";
  os << "gap_fraction " << spec.gap_fraction << "\n";
  os << "feed_every " << spec.feed_every << "\n";
  os << "channel_depth_est_um " << spec.channel_depth_est_um << "\n";
  os << "placer_passes " << spec.placer_passes << "\n";
  os << "end\n";
  return os.str();
}

CircuitSpec spec_from_text(const std::string& text,
                           const std::string& source) {
  std::istringstream is(text);
  std::string header;
  std::getline(is, header);
  if (header.rfind("bgr-fuzzspec 1", 0) != 0) {
    io_fail(source, 1, "not a bgr-fuzzspec 1 file");
  }
  CircuitSpec spec;
  std::string line;
  int lineno = 1;
  bool saw_end = false;
  while (std::getline(is, line)) {
    ++lineno;
    FieldReader fr(line, source, lineno);
    std::string key;
    if (!fr.try_word(&key) || key[0] == '#') continue;
    if (key == "end") {
      saw_end = true;
      break;
    }
    if (key == "name") {
      spec.name = fr.word("name");
    } else if (key == "seed") {
      const std::string token = fr.word("seed");
      const auto value = parse_u64(token);
      if (!value) fr.fail("seed '" + token + "' is invalid");
      spec.seed = *value;
    } else if (key == "rows") {
      spec.rows = fr.i32_in("rows", 1, 65536);
    } else if (key == "blocks") {
      spec.blocks = fr.i32_in("blocks", 1, 10000);
    } else if (key == "target_cells") {
      spec.target_cells = fr.i32_in("target_cells", 1, 1'000'000);
    } else if (key == "levels") {
      spec.levels = fr.i32_in("levels", 2, 64);
    } else if (key == "register_percent") {
      spec.register_percent = fr.i32_in("register_percent", 0, 100);
    } else if (key == "primary_inputs") {
      spec.primary_inputs = fr.i32_in("primary_inputs", 0, 10000);
    } else if (key == "primary_outputs") {
      spec.primary_outputs = fr.i32_in("primary_outputs", 0, 10000);
    } else if (key == "diff_pairs") {
      spec.diff_pairs = fr.i32_in("diff_pairs", 0, 10000);
    } else if (key == "clock_buffers") {
      spec.clock_buffers = fr.i32_in("clock_buffers", 0, 10000);
    } else if (key == "clock_pitch") {
      spec.clock_pitch = fr.i32_in("clock_pitch", 1, 64);
    } else if (key == "path_constraints") {
      spec.path_constraints = fr.i32_in("path_constraints", 0, 100000);
    } else if (key == "tightness_lo") {
      spec.tightness_lo = fr.real("tightness_lo");
    } else if (key == "tightness_hi") {
      spec.tightness_hi = fr.real("tightness_hi");
    } else if (key == "gap_fraction") {
      spec.gap_fraction = fr.real("gap_fraction");
    } else if (key == "feed_every") {
      spec.feed_every = fr.i32_in("feed_every", 1, 100000);
    } else if (key == "channel_depth_est_um") {
      spec.channel_depth_est_um = fr.real("channel_depth_est_um");
    } else if (key == "placer_passes") {
      spec.placer_passes = fr.i32_in("placer_passes", 0, 10000);
    } else {
      fr.fail("unknown field '" + key + "'");
    }
    fr.done();
  }
  if (!saw_end) io_fail(source, lineno, "truncated file (missing 'end')");
  if (spec.tightness_lo > spec.tightness_hi) {
    io_fail(source, lineno, "tightness_lo exceeds tightness_hi");
  }
  if (!(spec.tightness_lo > 0.0) || !(spec.gap_fraction >= 0.0) ||
      spec.gap_fraction >= 1.0 || !(spec.channel_depth_est_um > 0.0)) {
    io_fail(source, lineno, "real-valued field outside its domain");
  }
  return spec;
}

}  // namespace bgr

#pragma once

#include <cstdint>
#include <string>

#include "bgr/gen/generator.hpp"

namespace bgr {

/// Deterministic sampler over the valid CircuitSpec domain, biased toward
/// the extreme corners a hand-written test suite never reaches: 1-row
/// chips, zero-gap placements, degenerate 2-level logic, saturated feed
/// columns, clock nets wider than a row is tall, and constraint sets with
/// tightness < 1 (guaranteed violations the router must survive). The
/// same seed always yields the same spec.
[[nodiscard]] CircuitSpec sample_spec(std::uint64_t seed);

/// Corpus serialisation of a spec (`bgr-fuzzspec 1`, one `key value` line
/// per field). spec_from_text throws IoError on malformed input.
[[nodiscard]] std::string spec_to_text(const CircuitSpec& spec);
[[nodiscard]] CircuitSpec spec_from_text(const std::string& text,
                                         const std::string& source = "spec");

}  // namespace bgr

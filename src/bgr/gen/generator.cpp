#include "bgr/gen/generator.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "bgr/common/rng.hpp"
#include "bgr/layout/feed_insertion.hpp"
#include "bgr/place/force_placer.hpp"
#include "bgr/timing/delay_graph.hpp"
#include "bgr/timing/lower_bound.hpp"

namespace bgr {
namespace {

struct TypeIds {
  CellTypeId buf, inv, nor2, nor3, xor2, mux2, dff, ckbuf, ddrv, drcv, feed;
};

TypeIds lookup_types(const Library& lib) {
  TypeIds t;
  t.buf = lib.find("BUF1");
  t.inv = lib.find("INV1");
  t.nor2 = lib.find("NOR2");
  t.nor3 = lib.find("NOR3");
  t.xor2 = lib.find("XOR2");
  t.mux2 = lib.find("MUX2");
  t.dff = lib.find("DFF");
  t.ckbuf = lib.find("CKBUF");
  t.ddrv = lib.find("DDRV");
  t.drcv = lib.find("DRCV");
  t.feed = lib.find("FEED");
  BGR_CHECK(t.feed.valid());
  return t;
}

/// Unwired input slot of a cell, grouped by logic level.
struct Slot {
  CellId cell;
  PinId pin;
};

/// Netlist construction state: producer nets and consumer slots per level.
/// `prefix` namespaces every cell/net/pad name, so several builders can
/// fill one netlist with independent blocks (blocked scale presets).
struct Builder {
  const CircuitSpec& spec;
  Netlist& nl;
  Rng& rng;
  TypeIds types;
  std::string prefix;

  /// Closed-block mode: a cone with no open slot above parks on a fresh
  /// (unclocked) register instead of minting a pad output. A pad reaches
  /// the chip edge, so a minted output anywhere but the edge-owning block
  /// would span every band in between and glue their shards together.
  bool orphans_to_registers = false;
  std::int32_t sink_count = 0;

  std::vector<std::vector<Slot>> slots_by_level;
  std::vector<std::vector<NetId>> nets_by_level;
  std::vector<NetId> high_nets;  // late-level nets eligible for POs
  std::int32_t po_count = 0;
  std::vector<double> cell_level;  // indexed by CellId, placer seed
  std::vector<double> cell_col;    // column affinity in [0,1), locality seed
  std::vector<double> net_col;     // driver's affinity, indexed by NetId

  void note_level(CellId cell, double level) {
    if (cell.index() >= cell_level.size()) cell_level.resize(cell.index() + 1, 0.0);
    cell_level[cell.index()] = level;
  }
  void note_col(CellId cell, double col) {
    if (cell.index() >= cell_col.size()) cell_col.resize(cell.index() + 1, 0.5);
    cell_col[cell.index()] = col;
  }
  void note_net_col(NetId net, double col) {
    if (net.index() >= net_col.size()) net_col.resize(net.index() + 1, 0.5);
    net_col[net.index()] = col;
  }
  [[nodiscard]] double col_of_cell(CellId cell) const {
    return cell.index() < cell_col.size() ? cell_col[cell.index()] : 0.5;
  }
  [[nodiscard]] double col_of_net(NetId net) const {
    return net.index() < net_col.size() ? net_col[net.index()] : 0.5;
  }

  void add_slot(std::int32_t level, CellId cell, PinId pin) {
    slots_by_level.at(static_cast<std::size_t>(level)).push_back(Slot{cell, pin});
  }

  /// Removes and returns a slot at a level above `net_level`, preferring
  /// nearby levels and nearby columns; invalid cell when none remain.
  Slot take_slot_above(std::int32_t net_level, double col) {
    const auto top = static_cast<std::int32_t>(slots_by_level.size()) - 1;
    for (std::int32_t l = net_level + 1; l <= top; ++l) {
      auto& pool = slots_by_level[static_cast<std::size_t>(l)];
      if (pool.empty()) continue;
      // Mostly take the nearest level; sometimes skip upward for variety.
      if (l < top && rng.bernoulli(0.25)) continue;
      // Sample a few slots, keep the nearest column.
      std::size_t best_k = 0;
      double best_d = 3.0;
      for (std::int32_t attempt = 0; attempt < 4; ++attempt) {
        const auto k = static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1));
        const double d = std::abs(col_of_cell(pool[k].cell) - col);
        if (d < best_d) {
          best_d = d;
          best_k = k;
        }
      }
      const Slot slot = pool[best_k];
      pool[best_k] = pool.back();
      pool.pop_back();
      return slot;
    }
    // Second sweep without skipping.
    for (std::int32_t l = net_level + 1; l <= top; ++l) {
      auto& pool = slots_by_level[static_cast<std::size_t>(l)];
      if (pool.empty()) continue;
      const Slot slot = pool.back();
      pool.pop_back();
      return slot;
    }
    return Slot{CellId::invalid(), PinId::invalid()};
  }

  /// Locality-biased driver pick for a consumer at (level, col): sample a
  /// handful of candidates from nearby levels and keep the one whose
  /// producer sits in the nearest column neighbourhood.
  [[nodiscard]] NetId random_net_below(std::int32_t level, double col) {
    NetId best = NetId::invalid();
    double best_d = 2.0;
    for (std::int32_t attempt = 0; attempt < 6; ++attempt) {
      std::int32_t l = level - rng.geometric(0.5, 4);
      l = std::clamp(l, 0, level - 1);
      const auto& pool = nets_by_level[static_cast<std::size_t>(l)];
      if (pool.empty()) continue;
      const NetId cand = pool[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1))];
      const double d = std::abs(col_of_net(cand) - col);
      if (d < best_d) {
        best_d = d;
        best = cand;
      }
    }
    if (best.valid()) return best;
    for (std::int32_t l = level - 1; l >= 0; --l) {
      const auto& pool = nets_by_level[static_cast<std::size_t>(l)];
      if (!pool.empty()) {
        return pool[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1))];
      }
    }
    BGR_CHECK_MSG(false, "no producer net below level");
    return NetId::invalid();
  }
};

void build_logic(Builder& b) {
  const CircuitSpec& spec = b.spec;
  Netlist& nl = b.nl;
  const Library& lib = nl.library();
  b.slots_by_level.resize(static_cast<std::size_t>(spec.levels) + 1);
  b.nets_by_level.resize(static_cast<std::size_t>(spec.levels) + 1);

  const std::int32_t n_ff =
      std::max<std::int32_t>(4, spec.target_cells * spec.register_percent / 100);
  const std::int32_t diff_cells = spec.diff_pairs * 3;
  const std::int32_t n_comb = std::max<std::int32_t>(
      spec.levels * 2,
      spec.target_cells - n_ff - diff_cells - spec.clock_buffers);

  // Registers: Q nets are level-0 producers, D pins are top-level slots.
  std::vector<CellId> regs;
  for (std::int32_t i = 0; i < n_ff; ++i) {
    const CellId cell = nl.add_cell(b.prefix + "ff" + std::to_string(i), b.types.dff);
    // Registers wrap the pipeline: spread them across the level range.
    b.note_level(cell, static_cast<double>(i % spec.levels));
    b.note_col(cell, b.rng.uniform01());
    regs.push_back(cell);
    const CellType& type = lib.type(b.types.dff);
    const NetId q = nl.add_net(b.prefix + "q" + std::to_string(i));
    (void)nl.connect(q, cell, type.find_pin("Q"));
    b.note_net_col(q, b.col_of_cell(cell));
    b.nets_by_level[0].push_back(q);
    b.add_slot(spec.levels, cell, type.find_pin("D"));
  }

  // Primary inputs.
  for (std::int32_t i = 0; i < spec.primary_inputs; ++i) {
    const NetId net = nl.add_net(b.prefix + "pi" + std::to_string(i));
    (void)nl.add_pad_input(b.prefix + "PI" + std::to_string(i), net, 100.0, 220.0);
    b.note_net_col(net, (static_cast<double>(i) + 0.5) /
                            static_cast<double>(spec.primary_inputs));
    b.nets_by_level[0].push_back(net);
  }

  // Combinational cells at levels 1..levels-1, biased toward lower levels
  // so the top of the cone stays thin.
  const CellTypeId comb_types[6] = {b.types.buf,  b.types.inv,  b.types.nor2,
                                    b.types.nor3, b.types.xor2, b.types.mux2};
  const std::int32_t weights[6] = {10, 15, 30, 20, 12, 13};
  for (std::int32_t i = 0; i < n_comb; ++i) {
    const std::int32_t pick = b.rng.uniform_i32(0, 99);
    std::size_t ti = 0;
    for (std::int32_t acc = weights[0]; ti < 5 && pick >= acc;
         acc += weights[++ti]) {
    }
    const CellTypeId type_id = comb_types[ti];
    const std::int32_t level =
        1 + std::min(b.rng.uniform_i32(0, spec.levels - 2),
                     b.rng.uniform_i32(0, spec.levels - 2));
    const CellId cell = nl.add_cell(b.prefix + "g" + std::to_string(i), type_id);
    b.note_level(cell, static_cast<double>(level));
    b.note_col(cell, b.rng.uniform01());
    const CellType& type = lib.type(type_id);
    const NetId out = nl.add_net(b.prefix + "n" + std::to_string(i));
    b.note_net_col(out, b.col_of_cell(cell));
    for (PinId p{0}; p.value() < type.pin_count(); p = PinId{p.value() + 1}) {
      if (type.pin(p).dir == PinDir::kOutput) {
        (void)nl.connect(out, cell, p);
      } else {
        b.add_slot(level, cell, p);
      }
    }
    b.nets_by_level[static_cast<std::size_t>(level)].push_back(out);
    if (level >= spec.levels - 3) b.high_nets.push_back(out);
  }

  // Differential pairs: DDRV at a mid level feeding 1-2 DRCV receivers one
  // level up; the true/complement nets form the pair (§4.1). Differential
  // nets keep exactly their receiver sinks (homogeneity).
  for (std::int32_t i = 0; i < spec.diff_pairs; ++i) {
    const std::int32_t level = b.rng.uniform_i32(1, std::max(1, spec.levels - 3));
    const CellId drv = nl.add_cell(b.prefix + "ddrv" + std::to_string(i), b.types.ddrv);
    b.note_level(drv, static_cast<double>(level));
    b.note_col(drv, b.rng.uniform01());
    const CellType& drv_type = lib.type(b.types.ddrv);
    const NetId nt = nl.add_net(b.prefix + "dt" + std::to_string(i));
    const NetId nc = nl.add_net(b.prefix + "dc" + std::to_string(i));
    (void)nl.connect(nt, drv, drv_type.find_pin("OT"));
    (void)nl.connect(nc, drv, drv_type.find_pin("OC"));
    b.add_slot(level, drv, drv_type.find_pin("I"));
    const std::int32_t receivers = b.rng.uniform_i32(1, 2);
    const CellType& rcv_type = lib.type(b.types.drcv);
    for (std::int32_t r = 0; r < receivers; ++r) {
      const CellId rcv = nl.add_cell(
          b.prefix + "drcv" + std::to_string(i) + "_" + std::to_string(r), b.types.drcv);
      b.note_level(rcv, static_cast<double>(level + 1));
      b.note_col(rcv, std::clamp(b.col_of_cell(drv) + b.rng.uniform_real(-0.08, 0.08), 0.0, 1.0));
      (void)nl.connect(nt, rcv, rcv_type.find_pin("IT"));
      (void)nl.connect(nc, rcv, rcv_type.find_pin("IC"));
      const NetId out =
          nl.add_net(b.prefix + "dr" + std::to_string(i) + "_" + std::to_string(r));
      (void)nl.connect(out, rcv, rcv_type.find_pin("O"));
      const std::int32_t out_level = std::min(level + 1, spec.levels - 1);
      b.nets_by_level[static_cast<std::size_t>(out_level)].push_back(out);
    }
    nl.make_differential(nt, nc);
  }

  // Clock distribution: one pad, clock_buffers CKBUF cells, one w-pitch net
  // per buffer driving its register partition (§4.2). With zero buffers the
  // design is unclocked — building ck_root anyway would leave it sinkless.
  const NetId ck_root =
      spec.clock_buffers > 0 ? nl.add_net(b.prefix + "ck_root") : NetId::invalid();
  if (spec.clock_buffers > 0) {
    (void)nl.add_pad_input(b.prefix + "CK", ck_root, 60.0, 140.0);
  }
  const CellType& ckbuf_type = lib.type(b.types.ckbuf);
  const CellType& ff_type = lib.type(b.types.dff);
  for (std::int32_t i = 0; i < spec.clock_buffers; ++i) {
    const CellId buf = nl.add_cell(b.prefix + "ckbuf" + std::to_string(i), b.types.ckbuf);
    b.note_level(buf, static_cast<double>(spec.levels) / 2.0);
    (void)nl.connect(ck_root, buf, ckbuf_type.find_pin("I"));
    const NetId ck = nl.add_net(b.prefix + "ck" + std::to_string(i), spec.clock_pitch);
    (void)nl.connect(ck, buf, ckbuf_type.find_pin("O"));
    for (std::size_t r = static_cast<std::size_t>(i); r < regs.size();
         r += static_cast<std::size_t>(spec.clock_buffers)) {
      (void)nl.connect(ck, regs[r], ff_type.find_pin("CK"));
    }
  }

  // Coverage pass: every pooled producer net gets at least one sink; nets
  // above every remaining slot become primary outputs.
  for (std::int32_t l = 0; l <= spec.levels; ++l) {
    for (const NetId net : b.nets_by_level[static_cast<std::size_t>(l)]) {
      if (!nl.net(net).sinks.empty()) continue;
      const Slot slot = b.take_slot_above(l, b.col_of_net(net));
      if (slot.cell.valid()) {
        (void)nl.connect(net, slot.cell, slot.pin);
      } else if (b.orphans_to_registers) {
        const CellId cell = nl.add_cell(
            b.prefix + "sink" + std::to_string(b.sink_count), b.types.dff);
        b.note_level(cell, static_cast<double>(spec.levels));
        b.note_col(cell, b.col_of_net(net));
        const CellType& type = lib.type(b.types.dff);
        (void)nl.connect(net, cell, type.find_pin("D"));
        const NetId q =
            nl.add_net(b.prefix + "sq" + std::to_string(b.sink_count));
        ++b.sink_count;
        b.note_net_col(q, b.col_of_net(net));
        (void)nl.connect(q, cell, type.find_pin("Q"));
        // The register's Q restarts at level 0, so any remaining slot can
        // absorb it; with the whole block exhausted, fall back to a pad.
        const Slot qs = b.take_slot_above(0, b.col_of_net(net));
        if (qs.cell.valid()) {
          (void)nl.connect(q, qs.cell, qs.pin);
        } else {
          (void)nl.add_pad_output(
              b.prefix + "PO" + std::to_string(b.po_count), q, 0.05);
          ++b.po_count;
        }
      } else {
        (void)nl.add_pad_output(b.prefix + "PO" + std::to_string(b.po_count), net, 0.05);
        ++b.po_count;
      }
    }
  }
  // Ensure the requested number of primary outputs.
  while (b.po_count < spec.primary_outputs && !b.high_nets.empty()) {
    const NetId net = b.high_nets[static_cast<std::size_t>(b.rng.uniform(
        0, static_cast<std::int64_t>(b.high_nets.size()) - 1))];
    (void)nl.add_pad_output(b.prefix + "PO" + std::to_string(b.po_count), net, 0.05);
    ++b.po_count;
  }

  // Fill pass: wire every remaining input slot to a lower-level net.
  for (std::int32_t l = 1; l <= spec.levels; ++l) {
    for (const Slot& slot : b.slots_by_level[static_cast<std::size_t>(l)]) {
      (void)nl.connect(b.random_net_below(l, b.col_of_cell(slot.cell)),
                       slot.cell, slot.pin);
    }
    b.slots_by_level[static_cast<std::size_t>(l)].clear();
  }
}

/// Pad windows: PIs (and the clock pad) on top, POs on bottom, spread
/// across the edge with generous overlap.
void spread_pads(const Netlist& nl, Placement& placement, std::int32_t width) {
  std::vector<TerminalId> top_pads;
  std::vector<TerminalId> bottom_pads;
  for (const TerminalId t : nl.terminals()) {
    const Terminal& term = nl.terminal(t);
    if (term.kind == TerminalKind::kPadIn) top_pads.push_back(t);
    if (term.kind == TerminalKind::kPadOut) bottom_pads.push_back(t);
  }
  auto spread = [&](const std::vector<TerminalId>& pads, bool top) {
    const auto n = static_cast<std::int32_t>(pads.size());
    for (std::int32_t i = 0; i < n; ++i) {
      const std::int32_t center =
          static_cast<std::int32_t>((static_cast<std::int64_t>(i) * 2 + 1) *
                                    width / (2 * std::max(n, 1)));
      const std::int32_t half = std::max(width / 6, 8);
      placement.place_pad(pads[static_cast<std::size_t>(i)], top,
                          IntInterval{std::max(0, center - half),
                                      std::min(width - 1, center + half)});
    }
  };
  spread(top_pads, /*top=*/true);
  spread(bottom_pads, /*top=*/false);
}

/// Packs each row left to right, sprinkling FEED cells and gaps (the
/// designers' automatic feed-cell insertion that defines P1).
Placement build_placement(Netlist& nl, const CircuitSpec& spec,
                          const PlacerRows& placer, Rng& rng,
                          TypeIds types) {
  double total = 0;
  for (const CellId c : nl.cells()) total += nl.cell_type(c).width();
  const double feeds = total / std::max(1, spec.feed_every);
  const double gaps = total * spec.gap_fraction;
  // Each pad needs its own edge column, so the chip can never be narrower
  // than its busiest pad edge; flat shallow netlists (few rows, few
  // levels) can otherwise mint more pad outputs than row width.
  std::int32_t top_pad_count = 0;
  std::int32_t bottom_pad_count = 0;
  for (const TerminalId t : nl.terminals()) {
    const Terminal& term = nl.terminal(t);
    if (term.kind == TerminalKind::kPadIn) ++top_pad_count;
    if (term.kind == TerminalKind::kPadOut) ++bottom_pad_count;
  }
  const std::int32_t width = std::max(
      static_cast<std::int32_t>((total + feeds + gaps) / spec.rows + 12.0),
      std::max(top_pad_count, bottom_pad_count));

  Placement placement(spec.rows, width);
  std::int32_t feed_seq = 0;
  for (std::int32_t row = 0; row < spec.rows; ++row) {
    std::int32_t x = 0;
    std::int32_t feed_counter = 0;
    for (const CellId c : placer.row_order[static_cast<std::size_t>(row)]) {
      const std::int32_t w = nl.cell_type(c).width();
      if (feed_counter >= spec.feed_every && x + 1 + w <= width) {
        const CellId feed =
            nl.add_cell("pfeed" + std::to_string(feed_seq++), types.feed);
        placement.place(nl, feed, RowId{row}, x);
        ++x;
        feed_counter = 0;
      }
      if (rng.bernoulli(spec.gap_fraction) && x + 1 + w <= width) ++x;
      BGR_CHECK_MSG(x + w <= width, "placement overflow: widen rows");
      placement.place(nl, c, RowId{row}, x);
      x += w;
      feed_counter += w;
    }
  }

  spread_pads(nl, placement, width);
  return placement;
}

/// Rank-partitions one block's cells into `rows` equal-width rows straight
/// from the level/column hints — the placer's partitioning scheme applied
/// per block. The global force placer would migrate cells across block
/// boundaries, gluing the blocks' channel footprints together, which is
/// exactly what the blocked presets exist to avoid.
std::vector<std::vector<CellId>> block_rank_rows(
    const Netlist& nl, const std::vector<CellId>& cells, std::int32_t rows,
    const std::vector<double>& cell_level,
    const std::vector<double>& cell_col) {
  struct Ranked {
    CellId cell;
    double level;
    double col;
  };
  auto level_of = [&](CellId c) {
    return c.index() < cell_level.size() ? cell_level[c.index()] : 0.0;
  };
  auto col_of = [&](CellId c) {
    return c.index() < cell_col.size() ? cell_col[c.index()] : 0.5;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(cells.size());
  double total = 0.0;
  for (const CellId c : cells) {
    ranked.push_back(Ranked{c, level_of(c), col_of(c)});
    total += nl.cell_type(c).width();
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) {
              if (a.level != b.level) return a.level < b.level;
              if (a.col != b.col) return a.col < b.col;
              return a.cell.index() < b.cell.index();
            });
  std::vector<std::vector<CellId>> out(static_cast<std::size_t>(rows));
  double acc = 0.0;
  std::size_t row = 0;
  for (const Ranked& r : ranked) {
    while (row + 1 < out.size() &&
           acc >= total * static_cast<double>(row + 1) /
                      static_cast<double>(rows)) {
      ++row;
    }
    out[row].push_back(r.cell);
    acc += nl.cell_type(r.cell).width();
  }
  for (auto& r : out) {
    std::sort(r.begin(), r.end(), [&](CellId a, CellId b) {
      if (col_of(a) != col_of(b)) return col_of(a) < col_of(b);
      return a.index() < b.index();
    });
  }
  return out;
}

/// Packs B blocks into vertical bands of `spec.rows` rows each, separated
/// by one empty row, so consecutive blocks share no channel. The chip
/// width is the pad-aware floor re-derived for the scale presets: each
/// band must fit its own block (per-band packing need — dividing the
/// *global* cell area by the *per-band* row count, as the single-block
/// formula effectively did, would overflow every band), and every pad
/// still needs its own edge column, where at 100k/1M scale the coverage
/// pass can mint more pad outputs than any one band is wide — hence the
/// floor takes the global pad counts, not the band need.
Placement build_blocked_placement(
    Netlist& nl, const CircuitSpec& spec,
    const std::vector<std::vector<CellId>>& block_cells,
    const std::vector<double>& cell_level, const std::vector<double>& cell_col,
    Rng& rng, TypeIds types) {
  const auto blocks = static_cast<std::int32_t>(block_cells.size());
  const std::int32_t total_rows = blocks * spec.rows + (blocks - 1);
  std::int32_t top_pad_count = 0;
  std::int32_t bottom_pad_count = 0;
  for (const TerminalId t : nl.terminals()) {
    const Terminal& term = nl.terminal(t);
    if (term.kind == TerminalKind::kPadIn) ++top_pad_count;
    if (term.kind == TerminalKind::kPadOut) ++bottom_pad_count;
  }
  std::int32_t width = std::max(top_pad_count, bottom_pad_count);
  for (const auto& cells : block_cells) {
    double total = 0.0;
    for (const CellId c : cells) total += nl.cell_type(c).width();
    const double feeds = total / std::max(1, spec.feed_every);
    const double gaps = total * spec.gap_fraction;
    width = std::max(width, static_cast<std::int32_t>(
                                (total + feeds + gaps) / spec.rows + 12.0));
  }

  Placement placement(total_rows, width);
  std::int32_t feed_seq = 0;
  for (std::int32_t blk = 0; blk < blocks; ++blk) {
    const auto rows = block_rank_rows(nl, block_cells[static_cast<std::size_t>(blk)],
                                      spec.rows, cell_level, cell_col);
    const std::int32_t base = blk * (spec.rows + 1);
    for (std::int32_t row = 0; row < spec.rows; ++row) {
      std::int32_t x = 0;
      std::int32_t feed_counter = 0;
      for (const CellId c : rows[static_cast<std::size_t>(row)]) {
        const std::int32_t w = nl.cell_type(c).width();
        if (feed_counter >= spec.feed_every && x + 1 + w <= width) {
          const CellId feed =
              nl.add_cell("pfeed" + std::to_string(feed_seq++), types.feed);
          placement.place(nl, feed, RowId{base + row}, x);
          ++x;
          feed_counter = 0;
        }
        if (rng.bernoulli(spec.gap_fraction) && x + 1 + w <= width) ++x;
        BGR_CHECK_MSG(x + w <= width, "placement overflow: widen rows");
        placement.place(nl, c, RowId{base + row}, x);
        x += w;
        feed_counter += w;
      }
    }
  }
  spread_pads(nl, placement, width);
  return placement;
}

/// Derives path constraints the way the paper's designers did — tight but
/// achievable limits on the most critical endpoints. Achievability is
/// judged against a routable estimate: half-perimeter wire plus the
/// expected in-channel verticals (taps and crossings), which is what a
/// good route of the net can actually realise.
std::vector<PathConstraint> derive_constraints(const Netlist& nl,
                                               const Placement& placement,
                                               const TechParams& tech,
                                               const CircuitSpec& spec,
                                               Rng& rng) {
  DelayGraph dg(nl);
  for (const NetId n : nl.nets()) {
    const double hpwl = net_half_perimeter_um(nl, placement, tech, n);
    // Vertical extent in rows ≈ vertical HPWL share / row height; approximate
    // with total HPWL / (2 · row height), which over-counts mildly for flat
    // nets — the tightness factor absorbs it.
    const double crossings = hpwl / (2.0 * tech.row_height_um);
    const double est_um =
        hpwl + tech.channel_depth_est_um *
                   (static_cast<double>(nl.net(n).terminal_count()) +
                    2.0 * crossings);
    dg.set_net_cap(n, tech.wire_cap_pf(est_um, nl.net(n).pitch_width));
  }
  const Dag& dag = dg.dag();
  const auto lp = dag.longest_from(dg.sources());
  std::set<std::int32_t> source_set(dg.sources().begin(), dg.sources().end());

  std::vector<std::int32_t> endpoints = dg.sinks();
  std::sort(endpoints.begin(), endpoints.end(),
            [&](std::int32_t a, std::int32_t b) {
              return lp[static_cast<std::size_t>(a)] >
                     lp[static_cast<std::size_t>(b)];
            });

  std::vector<PathConstraint> constraints;
  std::set<std::pair<std::int32_t, std::int32_t>> used;
  const double max_delay =
      endpoints.empty() ? 0.0 : lp[static_cast<std::size_t>(endpoints.front())];
  for (const auto sink : endpoints) {
    if (static_cast<std::int32_t>(constraints.size()) >= spec.path_constraints)
      break;
    const double delay = lp[static_cast<std::size_t>(sink)];
    if (delay == Dag::kMinusInf || delay <= 0.0) continue;
    // Constrain the whole near-critical envelope, not just the top path.
    if (delay < 0.70 * max_delay) break;
    // Backtrack the realizing path to its source.
    std::int32_t v = sink;
    while (source_set.find(v) == source_set.end()) {
      std::int32_t best_from = -1;
      for (const auto e : dag.in_edges(v)) {
        const Dag::Edge& ed = dag.edge(e);
        const double lpf = lp[static_cast<std::size_t>(ed.from)];
        if (lpf == Dag::kMinusInf) continue;
        if (std::abs(lpf + ed.weight - lp[static_cast<std::size_t>(v)]) < 1e-6) {
          best_from = ed.from;
          break;
        }
      }
      BGR_CHECK(best_from >= 0);
      v = best_from;
    }
    if (!used.emplace(v, sink).second) continue;
    PathConstraint pc;
    pc.name = "P" + std::to_string(constraints.size());
    pc.sources.push_back(dg.terminal_of(v));
    pc.sinks.push_back(dg.terminal_of(sink));
    pc.limit_ps =
        delay * rng.uniform_real(spec.tightness_lo, spec.tightness_hi);
    constraints.push_back(std::move(pc));
  }
  return constraints;
}

/// Blocked build: B independent logic cones filled into one netlist with
/// name prefixes b0_, b1_, ..., then band-packed by
/// build_blocked_placement. One shared Rng keeps the whole dataset a
/// deterministic function of spec.seed.
Dataset generate_blocked_circuit(const CircuitSpec& spec) {
  Library lib = Library::make_ecl_default();
  const TypeIds types = lookup_types(lib);
  Rng rng(spec.seed);
  Netlist nl(std::move(lib));

  const std::int32_t blocks = spec.blocks;
  std::vector<std::vector<CellId>> block_cells(
      static_cast<std::size_t>(blocks));
  std::vector<double> cell_level;
  std::vector<double> cell_col;
  for (std::int32_t blk = 0; blk < blocks; ++blk) {
    CircuitSpec bs = spec;
    bs.blocks = 1;
    bs.target_cells = std::max(spec.target_cells / blocks, 24);
    bs.diff_pairs =
        spec.diff_pairs / blocks + (blk < spec.diff_pairs % blocks ? 1 : 0);
    // Chip edges belong to the end blocks: input pads (and the clock pad)
    // sit on the top edge — channel row_count, adjacent to the *last*
    // band — and output pads on the bottom edge next to block 0. Middle
    // blocks get neither, which is what keeps their channel sets closed.
    bs.primary_inputs = blk == blocks - 1 ? spec.primary_inputs : 0;
    bs.primary_outputs = blk == 0 ? spec.primary_outputs : 0;
    bs.clock_buffers = blk == blocks - 1 ? spec.clock_buffers : 0;

    const auto first_cell = static_cast<std::size_t>(nl.cell_count());
    Builder builder{bs, nl, rng, types};
    builder.prefix = "b" + std::to_string(blk) + "_";
    builder.orphans_to_registers = blk != 0;
    build_logic(builder);

    const auto cell_count = static_cast<std::size_t>(nl.cell_count());
    cell_level.resize(cell_count, 0.0);
    cell_col.resize(cell_count, 0.5);
    for (std::size_t c = first_cell; c < cell_count; ++c) {
      if (c < builder.cell_level.size()) cell_level[c] = builder.cell_level[c];
      if (c < builder.cell_col.size()) cell_col[c] = builder.cell_col[c];
      block_cells[static_cast<std::size_t>(blk)].push_back(
          CellId{static_cast<std::int32_t>(c)});
    }
  }
  nl.validate();

  Placement placement = build_blocked_placement(nl, spec, block_cells,
                                                cell_level, cell_col, rng,
                                                types);
  placement.validate(nl);

  TechParams tech;
  tech.channel_depth_est_um = spec.channel_depth_est_um;
  auto constraints = derive_constraints(nl, placement, tech, spec, rng);

  return Dataset{spec.name, spec, std::move(nl), std::move(placement),
                 std::move(constraints), tech};
}

}  // namespace

Dataset generate_circuit(const CircuitSpec& spec) {
  if (spec.blocks > 1) return generate_blocked_circuit(spec);
  Library lib = Library::make_ecl_default();
  const TypeIds types = lookup_types(lib);
  Rng rng(spec.seed);
  Netlist nl(std::move(lib));

  Builder builder{spec, nl, rng, types};
  build_logic(builder);
  nl.validate();

  PlacerOptions placer_options;
  placer_options.passes = spec.placer_passes;
  const PlacerRows placer = force_directed_rows(
      nl, spec.rows, static_cast<double>(spec.levels) - 1.0,
      builder.cell_level, builder.cell_col, rng, placer_options);
  Placement placement = build_placement(nl, spec, placer, rng, types);
  placement.validate(nl);

  TechParams tech;
  tech.channel_depth_est_um = spec.channel_depth_est_um;
  auto constraints = derive_constraints(nl, placement, tech, spec, rng);

  return Dataset{spec.name, spec, std::move(nl), std::move(placement),
                 std::move(constraints), tech};
}

CircuitSpec c1_spec() {
  CircuitSpec spec;
  spec.name = "C1";
  spec.seed = 9401;
  spec.rows = 10;
  spec.target_cells = 650;
  spec.levels = 10;
  spec.primary_inputs = 20;
  spec.primary_outputs = 20;
  spec.diff_pairs = 8;
  spec.clock_buffers = 2;
  spec.path_constraints = 40;
  return spec;
}

CircuitSpec c2_spec() {
  CircuitSpec spec;
  spec.name = "C2";
  spec.seed = 9402;
  spec.rows = 13;
  spec.target_cells = 1100;
  spec.levels = 12;
  spec.primary_inputs = 28;
  spec.primary_outputs = 28;
  spec.diff_pairs = 12;
  spec.clock_buffers = 3;
  spec.path_constraints = 60;
  spec.channel_depth_est_um = 85.0;
  return spec;
}

CircuitSpec c3_spec() {
  CircuitSpec spec;
  spec.name = "C3";
  spec.seed = 9403;
  spec.rows = 16;
  spec.target_cells = 1700;
  spec.levels = 13;
  spec.primary_inputs = 32;
  spec.primary_outputs = 32;
  spec.diff_pairs = 16;
  spec.clock_buffers = 4;
  spec.path_constraints = 30;
  spec.tightness_lo = 1.02;
  spec.tightness_hi = 1.12;
  spec.channel_depth_est_um = 90.0;
  return spec;
}

CircuitSpec scale_10k_spec() {
  CircuitSpec spec;
  spec.name = "10k";
  spec.seed = 9410;
  spec.blocks = 32;
  spec.rows = 4;
  spec.target_cells = 10000;
  spec.levels = 6;
  spec.primary_inputs = 24;
  spec.primary_outputs = 24;
  spec.diff_pairs = 32;
  spec.clock_buffers = 2;
  spec.path_constraints = 40;
  return spec;
}

CircuitSpec scale_100k_spec() {
  CircuitSpec spec;
  spec.name = "100k";
  spec.seed = 9420;
  spec.blocks = 320;
  spec.rows = 4;
  spec.target_cells = 100000;
  spec.levels = 6;
  spec.primary_inputs = 32;
  spec.primary_outputs = 32;
  spec.diff_pairs = 160;
  spec.clock_buffers = 2;
  spec.path_constraints = 60;
  return spec;
}

CircuitSpec scale_1m_spec() {
  CircuitSpec spec;
  spec.name = "1M";
  spec.seed = 9430;
  spec.blocks = 2500;
  spec.rows = 4;
  spec.target_cells = 1000000;
  spec.levels = 6;
  spec.primary_inputs = 32;
  spec.primary_outputs = 32;
  spec.diff_pairs = 500;
  spec.clock_buffers = 2;
  spec.path_constraints = 60;
  return spec;
}

Dataset make_dataset(const std::string& name) {
  if (name == "10k") return generate_circuit(scale_10k_spec());
  if (name == "100k") return generate_circuit(scale_100k_spec());
  if (name == "1M") return generate_circuit(scale_1m_spec());
  BGR_CHECK_MSG(name.size() == 4 && name[0] == 'C' && name[2] == 'P',
                "dataset name must look like C1P1");
  CircuitSpec spec;
  switch (name[1]) {
    case '1':
      spec = c1_spec();
      break;
    case '2':
      spec = c2_spec();
      break;
    case '3':
      spec = c3_spec();
      break;
    default:
      BGR_CHECK_MSG(false, "unknown circuit in dataset name " << name);
  }
  Dataset ds = generate_circuit(spec);
  ds.name = name;
  if (name[3] == '2') {
    ds.placement = sweep_feed_cells_aside(ds.netlist, ds.placement);
  } else {
    BGR_CHECK_MSG(name[3] == '1', "unknown placement in dataset name " << name);
  }
  return ds;
}

std::vector<std::string> dataset_names() {
  return {"C1P1", "C1P2", "C2P1", "C2P2", "C3P1"};
}

std::vector<std::string> scale_dataset_names() { return {"10k", "100k", "1M"}; }

}  // namespace bgr

#pragma once

#include <string>
#include <vector>

#include "bgr/common/tech.hpp"
#include "bgr/layout/placement.hpp"
#include "bgr/netlist/netlist.hpp"
#include "bgr/timing/analyzer.hpp"

namespace bgr {

/// Parameters of one synthetic bipolar standard-cell circuit. The presets
/// C1–C3 stand in for the NTT 10-Gbit/s transmission-system circuits of the
/// paper (Table 1), whose netlists are proprietary; see DESIGN.md §2.
struct CircuitSpec {
  std::string name;
  std::uint64_t seed = 1;
  std::int32_t rows = 10;
  std::int32_t target_cells = 600;  // logic cells (registers included)
  std::int32_t levels = 10;         // combinational depth
  std::int32_t register_percent = 12;
  std::int32_t primary_inputs = 16;
  std::int32_t primary_outputs = 16;
  std::int32_t diff_pairs = 6;      // differential DDRV→DRCV pairs (§4.1)
  std::int32_t clock_buffers = 2;   // multi-pitch clock domains (§4.2)
  std::int32_t clock_pitch = 2;     // w of the clock nets
  std::int32_t path_constraints = 20;
  /// δ_P = tightness · routable-estimate path delay (HPWL + expected
  /// verticals), drawn uniformly per constraint.
  double tightness_lo = 1.00;
  double tightness_hi = 1.10;
  double gap_fraction = 0.06;  // spare columns sprinkled between cells
  std::int32_t feed_every = 7;  // a FEED cell about every N columns (P1)
  /// Expected half-channel depth (um) used by the router's estimates; a
  /// process/size calibration knob (fat channels need a larger value).
  double channel_depth_est_um = 50.0;
  /// Force-directed placer iterations for the P1 placement (0 = the
  /// level/column hints alone — a deliberately poor placement for the
  /// placement-quality ablation).
  std::int32_t placer_passes = 24;
};

/// A complete experiment input: circuit, placement, constraints, process.
struct Dataset {
  std::string name;
  CircuitSpec spec;
  Netlist netlist;
  Placement placement;
  std::vector<PathConstraint> constraints;
  TechParams tech;
};

/// Generates the circuit, the P1-style placement (feed cells evenly
/// inserted) and the constraint set derived from the half-perimeter lower
/// bound timing. Deterministic in spec.seed.
[[nodiscard]] Dataset generate_circuit(const CircuitSpec& spec);

/// Preset specs for the three test circuits.
[[nodiscard]] CircuitSpec c1_spec();
[[nodiscard]] CircuitSpec c2_spec();
[[nodiscard]] CircuitSpec c3_spec();

/// Builds a named dataset: "C1P1", "C1P2", "C2P1", "C2P2" or "C3P1". The
/// P2 variants sweep the feed cells to the row ends (§5).
[[nodiscard]] Dataset make_dataset(const std::string& name);

/// All five dataset names of Table 1/2, in paper order.
[[nodiscard]] std::vector<std::string> dataset_names();

}  // namespace bgr

#pragma once

#include <string>
#include <vector>

#include "bgr/common/tech.hpp"
#include "bgr/layout/placement.hpp"
#include "bgr/netlist/netlist.hpp"
#include "bgr/timing/analyzer.hpp"

namespace bgr {

/// Parameters of one synthetic bipolar standard-cell circuit. The presets
/// C1–C3 stand in for the NTT 10-Gbit/s transmission-system circuits of the
/// paper (Table 1), whose netlists are proprietary; see DESIGN.md §2.
struct CircuitSpec {
  std::string name;
  std::uint64_t seed = 1;
  std::int32_t rows = 10;
  std::int32_t target_cells = 600;  // logic cells (registers included)
  /// Closed sub-circuits stacked vertically (scale presets). With B > 1
  /// blocks the circuit is built as B independent logic cones, each `rows`
  /// rows tall, separated by one empty row; `target_cells` and
  /// `diff_pairs` are totals shared across the blocks. Pads reach the
  /// chip edges (inputs the top channel, outputs channel 0), so only the
  /// last block — adjacent to the top edge — receives the primary inputs
  /// and the clock tree, and only block 0 the primary outputs; every
  /// other cone that runs out of sinks parks on a fresh register instead
  /// of minting an edge-spanning pad. Middle blocks therefore touch no
  /// chip edge and the blocks' channel footprints stay disjoint — the
  /// structure the sharded deletion loop exploits.
  std::int32_t blocks = 1;
  std::int32_t levels = 10;         // combinational depth
  std::int32_t register_percent = 12;
  std::int32_t primary_inputs = 16;
  std::int32_t primary_outputs = 16;
  std::int32_t diff_pairs = 6;      // differential DDRV→DRCV pairs (§4.1)
  std::int32_t clock_buffers = 2;   // multi-pitch clock domains (§4.2)
  std::int32_t clock_pitch = 2;     // w of the clock nets
  std::int32_t path_constraints = 20;
  /// δ_P = tightness · routable-estimate path delay (HPWL + expected
  /// verticals), drawn uniformly per constraint.
  double tightness_lo = 1.00;
  double tightness_hi = 1.10;
  double gap_fraction = 0.06;  // spare columns sprinkled between cells
  std::int32_t feed_every = 7;  // a FEED cell about every N columns (P1)
  /// Expected half-channel depth (um) used by the router's estimates; a
  /// process/size calibration knob (fat channels need a larger value).
  double channel_depth_est_um = 50.0;
  /// Force-directed placer iterations for the P1 placement (0 = the
  /// level/column hints alone — a deliberately poor placement for the
  /// placement-quality ablation).
  std::int32_t placer_passes = 24;
};

/// A complete experiment input: circuit, placement, constraints, process.
struct Dataset {
  std::string name;
  CircuitSpec spec;
  Netlist netlist;
  Placement placement;
  std::vector<PathConstraint> constraints;
  TechParams tech;
};

/// Generates the circuit, the P1-style placement (feed cells evenly
/// inserted) and the constraint set derived from the half-perimeter lower
/// bound timing. Deterministic in spec.seed.
[[nodiscard]] Dataset generate_circuit(const CircuitSpec& spec);

/// Preset specs for the three test circuits.
[[nodiscard]] CircuitSpec c1_spec();
[[nodiscard]] CircuitSpec c2_spec();
[[nodiscard]] CircuitSpec c3_spec();

/// Block-structured scale presets (DESIGN.md §13): ~10k / ~100k / ~1M
/// logic cells split into closed blocks, for the sharded-deletion bench
/// and the scale property tests.
[[nodiscard]] CircuitSpec scale_10k_spec();
[[nodiscard]] CircuitSpec scale_100k_spec();
[[nodiscard]] CircuitSpec scale_1m_spec();

/// Builds a named dataset: "C1P1", "C1P2", "C2P1", "C2P2" or "C3P1" (the
/// P2 variants sweep the feed cells to the row ends, §5), or a scale
/// preset "10k", "100k" or "1M".
[[nodiscard]] Dataset make_dataset(const std::string& name);

/// All five dataset names of Table 1/2, in paper order.
[[nodiscard]] std::vector<std::string> dataset_names();

/// The scale preset names, smallest first.
[[nodiscard]] std::vector<std::string> scale_dataset_names();

}  // namespace bgr

#include "bgr/graph/dag.hpp"

#include <algorithm>

namespace bgr {

std::int32_t Dag::add_vertex() {
  BGR_CHECK(!frozen_);
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<std::int32_t>(out_.size()) - 1;
}

std::int32_t Dag::add_edge(std::int32_t from, std::int32_t to, double weight,
                           std::int32_t label) {
  BGR_CHECK(!frozen_);
  BGR_CHECK(from >= 0 && from < vertex_count());
  BGR_CHECK(to >= 0 && to < vertex_count());
  BGR_CHECK(from != to);
  const auto id = static_cast<std::int32_t>(edges_.size());
  edges_.push_back(Edge{from, to, weight, label});
  out_[static_cast<std::size_t>(from)].push_back(id);
  in_[static_cast<std::size_t>(to)].push_back(id);
  return id;
}

void Dag::freeze() {
  BGR_CHECK(!frozen_);
  const auto n = static_cast<std::size_t>(vertex_count());
  std::vector<std::int32_t> indegree(n, 0);
  for (const Edge& e : edges_) ++indegree[static_cast<std::size_t>(e.to)];
  std::vector<std::int32_t> queue;
  queue.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) queue.push_back(static_cast<std::int32_t>(v));
  }
  topo_.clear();
  topo_.reserve(n);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto v = queue[head];
    topo_.push_back(v);
    for (auto e : out_[static_cast<std::size_t>(v)]) {
      const auto w = edges_[static_cast<std::size_t>(e)].to;
      if (--indegree[static_cast<std::size_t>(w)] == 0) queue.push_back(w);
    }
  }
  BGR_CHECK_MSG(topo_.size() == n, "timing graph contains a cycle");
  frozen_ = true;
}

std::vector<double> Dag::longest_from(const std::vector<std::int32_t>& sources,
                                      const std::vector<bool>& subset) const {
  BGR_CHECK(frozen_);
  const auto n = static_cast<std::size_t>(vertex_count());
  auto in_subset = [&](std::int32_t v) {
    return subset.empty() || subset[static_cast<std::size_t>(v)];
  };
  std::vector<double> lp(n, kMinusInf);
  for (auto s : sources) {
    if (in_subset(s)) lp[static_cast<std::size_t>(s)] = 0.0;
  }
  for (auto v : topo_) {
    if (lp[static_cast<std::size_t>(v)] == kMinusInf || !in_subset(v)) continue;
    for (auto e : out_[static_cast<std::size_t>(v)]) {
      const Edge& ed = edges_[static_cast<std::size_t>(e)];
      if (!in_subset(ed.to)) continue;
      lp[static_cast<std::size_t>(ed.to)] =
          std::max(lp[static_cast<std::size_t>(ed.to)],
                   lp[static_cast<std::size_t>(v)] + ed.weight);
    }
  }
  return lp;
}

std::vector<double> Dag::longest_to(const std::vector<std::int32_t>& sinks,
                                    const std::vector<bool>& subset) const {
  BGR_CHECK(frozen_);
  const auto n = static_cast<std::size_t>(vertex_count());
  auto in_subset = [&](std::int32_t v) {
    return subset.empty() || subset[static_cast<std::size_t>(v)];
  };
  std::vector<double> ls(n, kMinusInf);
  for (auto s : sinks) {
    if (in_subset(s)) ls[static_cast<std::size_t>(s)] = 0.0;
  }
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const auto v = *it;
    if (ls[static_cast<std::size_t>(v)] == kMinusInf || !in_subset(v)) continue;
    for (auto e : in_[static_cast<std::size_t>(v)]) {
      const Edge& ed = edges_[static_cast<std::size_t>(e)];
      if (!in_subset(ed.from)) continue;
      ls[static_cast<std::size_t>(ed.from)] =
          std::max(ls[static_cast<std::size_t>(ed.from)],
                   ls[static_cast<std::size_t>(v)] + ed.weight);
    }
  }
  return ls;
}

std::vector<bool> Dag::reachable_from(const std::vector<std::int32_t>& sources,
                                      bool forward) const {
  const auto n = static_cast<std::size_t>(vertex_count());
  std::vector<bool> seen(n, false);
  std::vector<std::int32_t> stack;
  for (auto s : sources) {
    if (!seen[static_cast<std::size_t>(s)]) {
      seen[static_cast<std::size_t>(s)] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const auto v = stack.back();
    stack.pop_back();
    const auto& edges = forward ? out_[static_cast<std::size_t>(v)]
                                : in_[static_cast<std::size_t>(v)];
    for (auto e : edges) {
      const Edge& ed = edges_[static_cast<std::size_t>(e)];
      const auto w = forward ? ed.to : ed.from;
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

std::vector<bool> Dag::between(const std::vector<std::int32_t>& sources,
                               const std::vector<std::int32_t>& sinks) const {
  auto fwd = reachable_from(sources, /*forward=*/true);
  const auto bwd = reachable_from(sinks, /*forward=*/false);
  for (std::size_t v = 0; v < fwd.size(); ++v) {
    fwd[v] = fwd[v] && bwd[v];
  }
  return fwd;
}

}  // namespace bgr

#include "bgr/graph/dag.hpp"

#include <algorithm>

#include "bgr/exec/parallel.hpp"

namespace bgr {

namespace {

/// Vertices per level below which the levelized sweeps stay inline: tiny
/// levels cost more to dispatch than to compute. Values are identical
/// either way, so the threshold cannot affect results.
constexpr std::int64_t kParallelLevelMin = 256;

void group_by_level(const std::vector<std::int32_t>& level_of,
                    std::vector<std::int32_t>& offsets,
                    std::vector<std::int32_t>& vertices) {
  std::int32_t levels = 0;
  for (const std::int32_t l : level_of) levels = std::max(levels, l + 1);
  std::vector<std::int32_t> count(static_cast<std::size_t>(levels) + 1, 0);
  for (const std::int32_t l : level_of) ++count[static_cast<std::size_t>(l)];
  offsets.assign(static_cast<std::size_t>(levels) + 1, 0);
  for (std::int32_t l = 0; l < levels; ++l) {
    offsets[static_cast<std::size_t>(l) + 1] =
        offsets[static_cast<std::size_t>(l)] +
        count[static_cast<std::size_t>(l)];
  }
  vertices.resize(level_of.size());
  std::vector<std::int32_t> cursor(offsets.begin(), offsets.end() - 1);
  // Ascending vertex id within each level (level_of is indexed by id).
  for (std::size_t v = 0; v < level_of.size(); ++v) {
    const auto l = static_cast<std::size_t>(level_of[v]);
    vertices[static_cast<std::size_t>(cursor[l]++)] =
        static_cast<std::int32_t>(v);
  }
}

}  // namespace

std::int32_t Dag::add_vertex() {
  BGR_CHECK(!frozen_);
  return vertex_count_++;
}

std::int32_t Dag::add_edge(std::int32_t from, std::int32_t to, double weight,
                           std::int32_t label) {
  BGR_CHECK(!frozen_);
  BGR_CHECK(from >= 0 && from < vertex_count());
  BGR_CHECK(to >= 0 && to < vertex_count());
  BGR_CHECK(from != to);
  const auto id = static_cast<std::int32_t>(edges_.size());
  edges_.push_back(Edge{from, to, weight, label});
  return id;
}

template <typename KeyFn>
void Dag::build_csr(std::vector<std::int32_t>& offsets,
                    std::vector<std::int32_t>& list, KeyFn&& key) const {
  const auto n = static_cast<std::size_t>(vertex_count_);
  offsets.assign(n + 1, 0);
  for (const Edge& e : edges_) ++offsets[static_cast<std::size_t>(key(e)) + 1];
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  list.resize(edges_.size());
  std::vector<std::int32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const auto v = static_cast<std::size_t>(key(edges_[e]));
    list[static_cast<std::size_t>(cursor[v]++)] = static_cast<std::int32_t>(e);
  }
}

void Dag::freeze() {
  BGR_CHECK(!frozen_);
  const auto n = static_cast<std::size_t>(vertex_count_);
  build_csr(out_offsets_, out_list_, [](const Edge& e) { return e.from; });
  build_csr(in_offsets_, in_list_, [](const Edge& e) { return e.to; });

  std::vector<std::int32_t> indegree(n, 0);
  for (const Edge& e : edges_) ++indegree[static_cast<std::size_t>(e.to)];
  std::vector<std::int32_t> queue;
  queue.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) queue.push_back(static_cast<std::int32_t>(v));
  }
  topo_.clear();
  topo_.reserve(n);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto v = queue[head];
    topo_.push_back(v);
    const auto lo = out_offsets_[static_cast<std::size_t>(v)];
    const auto hi = out_offsets_[static_cast<std::size_t>(v) + 1];
    for (std::int32_t k = lo; k < hi; ++k) {
      const auto e = out_list_[static_cast<std::size_t>(k)];
      const auto w = edges_[static_cast<std::size_t>(e)].to;
      if (--indegree[static_cast<std::size_t>(w)] == 0) queue.push_back(w);
    }
  }
  BGR_CHECK_MSG(topo_.size() == n, "timing graph contains a cycle");
  frozen_ = true;  // adjacency views below are now valid

  // Forward and reverse topological levels for the levelized (parallel)
  // sweeps: every edge goes from a strictly lower to a higher forward
  // level, and from a higher to a strictly lower reverse level.
  level_of_.assign(n, 0);
  for (const auto v : topo_) {
    for (const auto e : in_edges(v)) {
      const auto u = edges_[static_cast<std::size_t>(e)].from;
      level_of_[static_cast<std::size_t>(v)] =
          std::max(level_of_[static_cast<std::size_t>(v)],
                   level_of_[static_cast<std::size_t>(u)] + 1);
    }
  }
  rlevel_of_.assign(n, 0);
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const auto v = *it;
    for (const auto e : out_edges(v)) {
      const auto w = edges_[static_cast<std::size_t>(e)].to;
      rlevel_of_[static_cast<std::size_t>(v)] =
          std::max(rlevel_of_[static_cast<std::size_t>(v)],
                   rlevel_of_[static_cast<std::size_t>(w)] + 1);
    }
  }
  if (n > 0) {
    group_by_level(level_of_, level_offsets_, level_vertices_);
    group_by_level(rlevel_of_, rlevel_offsets_, rlevel_vertices_);
  } else {
    level_offsets_.assign(1, 0);
    rlevel_offsets_.assign(1, 0);
  }
}

std::vector<double> Dag::longest_from(const std::vector<std::int32_t>& sources,
                                      const std::vector<bool>& subset,
                                      ExecContext* exec) const {
  BGR_CHECK(frozen_);
  const auto n = static_cast<std::size_t>(vertex_count());
  auto in_subset = [&](std::int32_t v) {
    return subset.empty() || subset[static_cast<std::size_t>(v)];
  };
  std::vector<double> lp(n, kMinusInf);
  if (exec != nullptr && !exec->serial()) {
    // Levelized pull sweep: each vertex reads only strictly lower levels,
    // so vertices within one level are independent. A source keeps at
    // least 0; kMinusInf + w stays kMinusInf, so dead in-edges are inert.
    std::vector<char> is_source(n, 0);
    for (const auto s : sources) {
      if (in_subset(s)) is_source[static_cast<std::size_t>(s)] = 1;
    }
    auto relax = [&](std::int64_t i) {
      const auto v = level_vertices_[static_cast<std::size_t>(i)];
      if (!in_subset(v)) return;
      double best = is_source[static_cast<std::size_t>(v)] ? 0.0 : kMinusInf;
      for (const auto e : in_edges(v)) {
        const Edge& ed = edges_[static_cast<std::size_t>(e)];
        if (!in_subset(ed.from)) continue;
        best = std::max(best, lp[static_cast<std::size_t>(ed.from)] + ed.weight);
      }
      lp[static_cast<std::size_t>(v)] = best;
    };
    for (std::int32_t l = 0; l < level_count(); ++l) {
      const auto lo = level_offsets_[static_cast<std::size_t>(l)];
      const auto hi = level_offsets_[static_cast<std::size_t>(l) + 1];
      if (hi - lo >= kParallelLevelMin) {
        parallel_for(*exec, hi - lo, [&](std::int64_t k) { relax(lo + k); });
      } else {
        for (std::int32_t k = lo; k < hi; ++k) relax(k);
      }
    }
    return lp;
  }
  for (auto s : sources) {
    if (in_subset(s)) lp[static_cast<std::size_t>(s)] = 0.0;
  }
  for (auto v : topo_) {
    if (lp[static_cast<std::size_t>(v)] == kMinusInf || !in_subset(v)) continue;
    for (auto e : out_edges(v)) {
      const Edge& ed = edges_[static_cast<std::size_t>(e)];
      if (!in_subset(ed.to)) continue;
      lp[static_cast<std::size_t>(ed.to)] =
          std::max(lp[static_cast<std::size_t>(ed.to)],
                   lp[static_cast<std::size_t>(v)] + ed.weight);
    }
  }
  return lp;
}

std::vector<double> Dag::longest_to(const std::vector<std::int32_t>& sinks,
                                    const std::vector<bool>& subset,
                                    ExecContext* exec) const {
  BGR_CHECK(frozen_);
  const auto n = static_cast<std::size_t>(vertex_count());
  auto in_subset = [&](std::int32_t v) {
    return subset.empty() || subset[static_cast<std::size_t>(v)];
  };
  std::vector<double> ls(n, kMinusInf);
  if (exec != nullptr && !exec->serial()) {
    std::vector<char> is_sink(n, 0);
    for (const auto s : sinks) {
      if (in_subset(s)) is_sink[static_cast<std::size_t>(s)] = 1;
    }
    auto relax = [&](std::int64_t i) {
      const auto v = rlevel_vertices_[static_cast<std::size_t>(i)];
      if (!in_subset(v)) return;
      double best = is_sink[static_cast<std::size_t>(v)] ? 0.0 : kMinusInf;
      for (const auto e : out_edges(v)) {
        const Edge& ed = edges_[static_cast<std::size_t>(e)];
        if (!in_subset(ed.to)) continue;
        best = std::max(best, ls[static_cast<std::size_t>(ed.to)] + ed.weight);
      }
      ls[static_cast<std::size_t>(v)] = best;
    };
    const auto rlevels =
        static_cast<std::int32_t>(rlevel_offsets_.size()) - 1;
    for (std::int32_t l = 0; l < rlevels; ++l) {
      const auto lo = rlevel_offsets_[static_cast<std::size_t>(l)];
      const auto hi = rlevel_offsets_[static_cast<std::size_t>(l) + 1];
      if (hi - lo >= kParallelLevelMin) {
        parallel_for(*exec, hi - lo, [&](std::int64_t k) { relax(lo + k); });
      } else {
        for (std::int32_t k = lo; k < hi; ++k) relax(k);
      }
    }
    return ls;
  }
  for (auto s : sinks) {
    if (in_subset(s)) ls[static_cast<std::size_t>(s)] = 0.0;
  }
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const auto v = *it;
    if (ls[static_cast<std::size_t>(v)] == kMinusInf || !in_subset(v)) continue;
    for (auto e : in_edges(v)) {
      const Edge& ed = edges_[static_cast<std::size_t>(e)];
      if (!in_subset(ed.from)) continue;
      ls[static_cast<std::size_t>(ed.from)] =
          std::max(ls[static_cast<std::size_t>(ed.from)],
                   ls[static_cast<std::size_t>(v)] + ed.weight);
    }
  }
  return ls;
}

std::vector<bool> Dag::reachable_from(const std::vector<std::int32_t>& sources,
                                      bool forward) const {
  BGR_CHECK(frozen_);
  const auto n = static_cast<std::size_t>(vertex_count());
  std::vector<bool> seen(n, false);
  std::vector<std::int32_t> stack;
  for (auto s : sources) {
    if (!seen[static_cast<std::size_t>(s)]) {
      seen[static_cast<std::size_t>(s)] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const auto v = stack.back();
    stack.pop_back();
    for (auto e : forward ? out_edges(v) : in_edges(v)) {
      const Edge& ed = edges_[static_cast<std::size_t>(e)];
      const auto w = forward ? ed.to : ed.from;
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

std::vector<bool> Dag::between(const std::vector<std::int32_t>& sources,
                               const std::vector<std::int32_t>& sinks) const {
  auto fwd = reachable_from(sources, /*forward=*/true);
  const auto bwd = reachable_from(sinks, /*forward=*/false);
  for (std::size_t v = 0; v < fwd.size(); ++v) {
    fwd[v] = fwd[v] && bwd[v];
  }
  return fwd;
}

}  // namespace bgr

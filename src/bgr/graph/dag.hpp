#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "bgr/common/check.hpp"
#include "bgr/exec/exec_context.hpp"

namespace bgr {

/// Directed acyclic graph with mutable edge weights, used for the global
/// delay graph G_D and the per-constraint subgraphs G_d(P). Structure is
/// fixed after freeze(); weights change every time a net's estimated wire
/// capacitance changes.
class Dag {
 public:
  static constexpr double kMinusInf = -std::numeric_limits<double>::infinity();
  static constexpr std::int32_t kNoLabel = -1;

  struct Edge {
    std::int32_t from = 0;
    std::int32_t to = 0;
    double weight = 0.0;
    std::int32_t label = kNoLabel;  // caller-defined tag (e.g. net id)
  };

  [[nodiscard]] std::int32_t add_vertex();
  [[nodiscard]] std::int32_t add_edge(std::int32_t from, std::int32_t to,
                                      double weight,
                                      std::int32_t label = kNoLabel);

  /// Validates acyclicity and computes the topological order. Must be
  /// called once after construction, before any longest-path query.
  void freeze();
  [[nodiscard]] bool frozen() const { return frozen_; }

  [[nodiscard]] std::int32_t vertex_count() const {
    return static_cast<std::int32_t>(out_.size());
  }
  [[nodiscard]] std::int32_t edge_count() const {
    return static_cast<std::int32_t>(edges_.size());
  }
  [[nodiscard]] const Edge& edge(std::int32_t e) const {
    return edges_[static_cast<std::size_t>(e)];
  }
  void set_edge_weight(std::int32_t e, double w) {
    edges_[static_cast<std::size_t>(e)].weight = w;
  }
  [[nodiscard]] const std::vector<std::int32_t>& out_edges(std::int32_t v) const {
    return out_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const std::vector<std::int32_t>& in_edges(std::int32_t v) const {
    return in_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const std::vector<std::int32_t>& topo_order() const {
    BGR_CHECK(frozen_);
    return topo_;
  }

  /// Number of forward topological levels (level(v) = longest edge count
  /// from any zero-indegree vertex). Available after freeze().
  [[nodiscard]] std::int32_t level_count() const {
    BGR_CHECK(frozen_);
    return static_cast<std::int32_t>(level_offsets_.size()) - 1;
  }
  [[nodiscard]] std::int32_t level_of(std::int32_t v) const {
    BGR_CHECK(frozen_);
    return level_of_[static_cast<std::size_t>(v)];
  }

  /// Longest-path distance from any vertex of `sources` to every vertex
  /// (kMinusInf when unreachable). If `subset` is non-empty it masks the
  /// graph: only vertices with subset[v] participate. With a non-serial
  /// `exec`, the sweep runs levelized: vertices of one topological level
  /// pull from their in-edges concurrently. Every in-edge contributes
  /// through max() only, so the parallel sweep is bit-identical to the
  /// serial one.
  [[nodiscard]] std::vector<double> longest_from(
      const std::vector<std::int32_t>& sources,
      const std::vector<bool>& subset = {},
      ExecContext* exec = nullptr) const;

  /// Longest-path distance from every vertex to any vertex of `sinks`.
  [[nodiscard]] std::vector<double> longest_to(
      const std::vector<std::int32_t>& sinks,
      const std::vector<bool>& subset = {},
      ExecContext* exec = nullptr) const;

  /// Vertices lying on some path from `sources` to `sinks` (the support of
  /// the constraint graph G_d(P)).
  [[nodiscard]] std::vector<bool> between(
      const std::vector<std::int32_t>& sources,
      const std::vector<std::int32_t>& sinks) const;

 private:
  [[nodiscard]] std::vector<bool> reachable_from(
      const std::vector<std::int32_t>& sources, bool forward) const;

  std::vector<std::vector<std::int32_t>> out_;
  std::vector<std::vector<std::int32_t>> in_;
  std::vector<Edge> edges_;
  std::vector<std::int32_t> topo_;
  /// Forward levels: level_vertices_[level_offsets_[l] .. level_offsets_[l+1])
  /// lists the vertices of level l in ascending id order; mirrored for the
  /// reverse (sink-side) levelization used by longest_to.
  std::vector<std::int32_t> level_of_;
  std::vector<std::int32_t> level_offsets_;
  std::vector<std::int32_t> level_vertices_;
  std::vector<std::int32_t> rlevel_of_;
  std::vector<std::int32_t> rlevel_offsets_;
  std::vector<std::int32_t> rlevel_vertices_;
  bool frozen_ = false;
};

}  // namespace bgr

#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "bgr/common/check.hpp"
#include "bgr/exec/exec_context.hpp"

namespace bgr {

/// Directed acyclic graph with mutable edge weights, used for the global
/// delay graph G_D and the per-constraint subgraphs G_d(P). Structure is
/// fixed after freeze(); weights change every time a net's estimated wire
/// capacitance changes.
///
/// Adjacency is stored in CSR (offset + flat index array) form, built once
/// in freeze(): the longest-path sweeps and dirty-cone propagations walk
/// in/out edges for every relaxed vertex, and at the 100k/1M-cell presets
/// the vector-of-vectors layout's pointer chase dominated the sweep.
class Dag {
 public:
  static constexpr double kMinusInf = -std::numeric_limits<double>::infinity();
  static constexpr std::int32_t kNoLabel = -1;

  struct Edge {
    std::int32_t from = 0;
    std::int32_t to = 0;
    double weight = 0.0;
    std::int32_t label = kNoLabel;  // caller-defined tag (e.g. net id)
  };

  [[nodiscard]] std::int32_t add_vertex();
  [[nodiscard]] std::int32_t add_edge(std::int32_t from, std::int32_t to,
                                      double weight,
                                      std::int32_t label = kNoLabel);

  /// Validates acyclicity, builds the CSR adjacency and computes the
  /// topological order. Must be called once after construction, before any
  /// adjacency or longest-path query.
  void freeze();
  [[nodiscard]] bool frozen() const { return frozen_; }

  [[nodiscard]] std::int32_t vertex_count() const { return vertex_count_; }
  [[nodiscard]] std::int32_t edge_count() const {
    return static_cast<std::int32_t>(edges_.size());
  }
  [[nodiscard]] const Edge& edge(std::int32_t e) const {
    return edges_[static_cast<std::size_t>(e)];
  }
  void set_edge_weight(std::int32_t e, double w) {
    edges_[static_cast<std::size_t>(e)].weight = w;
  }
  /// Edge ids leaving/entering v in insertion order. CSR views, valid
  /// after freeze().
  [[nodiscard]] std::span<const std::int32_t> out_edges(std::int32_t v) const {
    return adjacency(out_offsets_, out_list_, v);
  }
  [[nodiscard]] std::span<const std::int32_t> in_edges(std::int32_t v) const {
    return adjacency(in_offsets_, in_list_, v);
  }
  [[nodiscard]] const std::vector<std::int32_t>& topo_order() const {
    BGR_CHECK(frozen_);
    return topo_;
  }

  /// Number of forward topological levels (level(v) = longest edge count
  /// from any zero-indegree vertex). Available after freeze().
  [[nodiscard]] std::int32_t level_count() const {
    BGR_CHECK(frozen_);
    return static_cast<std::int32_t>(level_offsets_.size()) - 1;
  }
  [[nodiscard]] std::int32_t level_of(std::int32_t v) const {
    BGR_CHECK(frozen_);
    return level_of_[static_cast<std::size_t>(v)];
  }

  /// Longest-path distance from any vertex of `sources` to every vertex
  /// (kMinusInf when unreachable). If `subset` is non-empty it masks the
  /// graph: only vertices with subset[v] participate. With a non-serial
  /// `exec`, the sweep runs levelized: vertices of one topological level
  /// pull from their in-edges concurrently. Every in-edge contributes
  /// through max() only, so the parallel sweep is bit-identical to the
  /// serial one.
  [[nodiscard]] std::vector<double> longest_from(
      const std::vector<std::int32_t>& sources,
      const std::vector<bool>& subset = {},
      ExecContext* exec = nullptr) const;

  /// Longest-path distance from every vertex to any vertex of `sinks`.
  [[nodiscard]] std::vector<double> longest_to(
      const std::vector<std::int32_t>& sinks,
      const std::vector<bool>& subset = {},
      ExecContext* exec = nullptr) const;

  /// Vertices lying on some path from `sources` to `sinks` (the support of
  /// the constraint graph G_d(P)).
  [[nodiscard]] std::vector<bool> between(
      const std::vector<std::int32_t>& sources,
      const std::vector<std::int32_t>& sinks) const;

 private:
  [[nodiscard]] std::span<const std::int32_t> adjacency(
      const std::vector<std::int32_t>& offsets,
      const std::vector<std::int32_t>& list, std::int32_t v) const {
    BGR_CHECK(frozen_);
    const auto lo = offsets[static_cast<std::size_t>(v)];
    const auto hi = offsets[static_cast<std::size_t>(v) + 1];
    return {list.data() + lo, static_cast<std::size_t>(hi - lo)};
  }

  /// Counting sort of edge ids by key(edge), insertion order preserved
  /// within a vertex (same order the old per-vertex push_back produced).
  template <typename KeyFn>
  void build_csr(std::vector<std::int32_t>& offsets,
                 std::vector<std::int32_t>& list, KeyFn&& key) const;

  [[nodiscard]] std::vector<bool> reachable_from(
      const std::vector<std::int32_t>& sources, bool forward) const;

  std::int32_t vertex_count_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::int32_t> out_offsets_;
  std::vector<std::int32_t> out_list_;
  std::vector<std::int32_t> in_offsets_;
  std::vector<std::int32_t> in_list_;
  std::vector<std::int32_t> topo_;
  /// Forward levels: level_vertices_[level_offsets_[l] .. level_offsets_[l+1])
  /// lists the vertices of level l in ascending id order; mirrored for the
  /// reverse (sink-side) levelization used by longest_to.
  std::vector<std::int32_t> level_of_;
  std::vector<std::int32_t> level_offsets_;
  std::vector<std::int32_t> level_vertices_;
  std::vector<std::int32_t> rlevel_of_;
  std::vector<std::int32_t> rlevel_offsets_;
  std::vector<std::int32_t> rlevel_vertices_;
  bool frozen_ = false;
};

}  // namespace bgr

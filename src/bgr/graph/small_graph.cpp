#include "bgr/graph/small_graph.hpp"

#include <algorithm>
#include <queue>

#include "bgr/obs/metrics.hpp"

namespace bgr {

std::int32_t SmallGraph::add_vertex() {
  vertex_alive_.push_back(true);
  adjacency_.emplace_back();
  ++alive_vertices_;
  return static_cast<std::int32_t>(vertex_alive_.size()) - 1;
}

std::int32_t SmallGraph::add_edge(std::int32_t u, std::int32_t v, double weight) {
  BGR_CHECK(vertex_alive(u) && vertex_alive(v));
  BGR_CHECK(u != v);
  const auto id = static_cast<std::int32_t>(edges_.size());
  edges_.push_back(Edge{u, v, weight, true});
  adjacency_[static_cast<std::size_t>(u)].push_back(id);
  adjacency_[static_cast<std::size_t>(v)].push_back(id);
  ++alive_edges_;
  return id;
}

void SmallGraph::remove_edge(std::int32_t e) {
  Edge& ed = edges_[static_cast<std::size_t>(e)];
  BGR_CHECK(ed.alive);
  ed.alive = false;
  --alive_edges_;
  auto erase_from = [e](std::vector<std::int32_t>& adj) {
    adj.erase(std::remove(adj.begin(), adj.end(), e), adj.end());
  };
  erase_from(adjacency_[static_cast<std::size_t>(ed.u)]);
  erase_from(adjacency_[static_cast<std::size_t>(ed.v)]);
}

void SmallGraph::remove_vertex(std::int32_t v) {
  BGR_CHECK(vertex_alive(v));
  BGR_CHECK_MSG(adjacency_[static_cast<std::size_t>(v)].empty(),
                "vertex still has incident edges");
  vertex_alive_[static_cast<std::size_t>(v)] = false;
  --alive_vertices_;
}

bool SmallGraph::connects(const std::vector<std::int32_t>& required) const {
  if (required.empty()) return true;
  const auto comp = component_of(required.front());
  std::vector<bool> in_comp(vertex_alive_.size(), false);
  for (auto v : comp) in_comp[static_cast<std::size_t>(v)] = true;
  return std::all_of(required.begin(), required.end(), [&](std::int32_t v) {
    return vertex_alive(v) && in_comp[static_cast<std::size_t>(v)];
  });
}

std::vector<std::int32_t> SmallGraph::component_of(std::int32_t start) const {
  BGR_CHECK(vertex_alive(start));
  std::vector<bool> seen(vertex_alive_.size(), false);
  std::vector<std::int32_t> stack{start};
  std::vector<std::int32_t> out;
  seen[static_cast<std::size_t>(start)] = true;
  while (!stack.empty()) {
    const auto v = stack.back();
    stack.pop_back();
    out.push_back(v);
    for (auto e : adjacency_[static_cast<std::size_t>(v)]) {
      const auto w = other_end(e, v);
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return out;
}

std::vector<bool> SmallGraph::bridges() const {
  const auto n = static_cast<std::size_t>(vertex_count());
  std::vector<bool> is_bridge(edges_.size(), false);
  std::vector<std::int32_t> disc(n, -1);
  std::vector<std::int32_t> low(n, 0);
  std::int32_t timer = 0;

  // Iterative DFS; entry_edge distinguishes parallel edges (re-traversing a
  // different parallel edge to the parent is a back edge, so neither is a
  // bridge).
  struct Frame {
    std::int32_t v;
    std::int32_t entry_edge;
    std::size_t next_index;
  };
  std::vector<Frame> stack;
  for (std::int32_t root = 0; root < vertex_count(); ++root) {
    if (!vertex_alive(root) || disc[static_cast<std::size_t>(root)] != -1) continue;
    disc[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] = timer++;
    stack.push_back(Frame{root, kNone, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& adj = adjacency_[static_cast<std::size_t>(f.v)];
      if (f.next_index < adj.size()) {
        const auto e = adj[f.next_index++];
        if (e == f.entry_edge) continue;
        const auto w = other_end(e, f.v);
        if (disc[static_cast<std::size_t>(w)] == -1) {
          disc[static_cast<std::size_t>(w)] = low[static_cast<std::size_t>(w)] =
              timer++;
          stack.push_back(Frame{w, e, 0});
        } else {
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)],
                       disc[static_cast<std::size_t>(w)]);
        }
      } else {
        const auto child = f.v;
        const auto entry = f.entry_edge;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent = stack.back();
          low[static_cast<std::size_t>(parent.v)] =
              std::min(low[static_cast<std::size_t>(parent.v)],
                       low[static_cast<std::size_t>(child)]);
          if (low[static_cast<std::size_t>(child)] >
              disc[static_cast<std::size_t>(parent.v)]) {
            is_bridge[static_cast<std::size_t>(entry)] = true;
          }
        }
      }
    }
  }
  return is_bridge;
}

SmallGraph::ShortestPaths SmallGraph::dijkstra(std::int32_t source,
                                               std::int32_t skip_edge) const {
  BGR_CHECK(vertex_alive(source));
  // Relaxation work is a pure function of the graph and its weights, so
  // the totals are semantic even though scoring fans dijkstra calls out
  // across threads; the inner loop accumulates locally and the counters
  // take one atomic add per call.
  static Counter& calls = MetricsRegistry::global().counter(
      "graph.dijkstra_calls", MetricScope::kSemantic);
  static Counter& relaxations = MetricsRegistry::global().counter(
      "graph.dijkstra_relaxations", MetricScope::kSemantic);
  std::int64_t relaxed = 0;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ShortestPaths sp;
  sp.dist.assign(static_cast<std::size_t>(vertex_count()), kInf);
  sp.parent_edge.assign(static_cast<std::size_t>(vertex_count()), kNone);
  using Item = std::pair<double, std::int32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  sp.dist[static_cast<std::size_t>(source)] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > sp.dist[static_cast<std::size_t>(v)]) continue;
    for (auto e : adjacency_[static_cast<std::size_t>(v)]) {
      if (e == skip_edge) continue;
      const Edge& ed = edges_[static_cast<std::size_t>(e)];
      const auto w = other_end(e, v);
      const double nd = d + ed.weight;
      if (nd < sp.dist[static_cast<std::size_t>(w)]) {
        sp.dist[static_cast<std::size_t>(w)] = nd;
        sp.parent_edge[static_cast<std::size_t>(w)] = e;
        heap.emplace(nd, w);
        ++relaxed;
      }
    }
  }
  calls.add(1);
  relaxations.add(relaxed);
  return sp;
}

}  // namespace bgr

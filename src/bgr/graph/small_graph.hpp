#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "bgr/common/check.hpp"

namespace bgr {

/// Undirected multigraph sized for per-net routing graphs (tens to a few
/// hundred vertices). Vertices and edges carry alive flags so that edge
/// deletion — the core operation of the routing scheme — is O(degree), and
/// ids stay stable for external annotation arrays.
///
/// All algorithms (bridges, Dijkstra, connectivity) operate on the alive
/// subgraph only.
class SmallGraph {
 public:
  static constexpr std::int32_t kNone = -1;

  struct Edge {
    std::int32_t u = kNone;
    std::int32_t v = kNone;
    double weight = 0.0;
    bool alive = false;
  };

  [[nodiscard]] std::int32_t add_vertex();
  /// Adds an alive edge between two alive vertices; returns its id.
  [[nodiscard]] std::int32_t add_edge(std::int32_t u, std::int32_t v,
                                      double weight);

  void remove_edge(std::int32_t e);
  /// Removes a vertex; all incident edges must already be removed.
  void remove_vertex(std::int32_t v);

  [[nodiscard]] std::int32_t vertex_count() const {
    return static_cast<std::int32_t>(vertex_alive_.size());
  }
  [[nodiscard]] std::int32_t edge_count() const {
    return static_cast<std::int32_t>(edges_.size());
  }
  [[nodiscard]] std::int32_t alive_vertex_count() const { return alive_vertices_; }
  [[nodiscard]] std::int32_t alive_edge_count() const { return alive_edges_; }

  [[nodiscard]] bool vertex_alive(std::int32_t v) const {
    return vertex_alive_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] bool edge_alive(std::int32_t e) const {
    return edges_[static_cast<std::size_t>(e)].alive;
  }
  [[nodiscard]] const Edge& edge(std::int32_t e) const {
    return edges_[static_cast<std::size_t>(e)];
  }
  void set_edge_weight(std::int32_t e, double w) {
    edges_[static_cast<std::size_t>(e)].weight = w;
  }
  [[nodiscard]] std::int32_t other_end(std::int32_t e, std::int32_t v) const {
    const Edge& ed = edge(e);
    return ed.u == v ? ed.v : ed.u;
  }

  [[nodiscard]] std::int32_t degree(std::int32_t v) const {
    return static_cast<std::int32_t>(adjacency_[static_cast<std::size_t>(v)].size());
  }
  /// Alive incident edge ids of an alive vertex.
  [[nodiscard]] const std::vector<std::int32_t>& incident_edges(
      std::int32_t v) const {
    return adjacency_[static_cast<std::size_t>(v)];
  }

  /// True if every vertex in `required` (alive) lies in one connected
  /// component of the alive subgraph.
  [[nodiscard]] bool connects(const std::vector<std::int32_t>& required) const;

  /// Bridge (cut-edge) flags for all alive edges of the alive subgraph,
  /// indexed by edge id. Parallel edges are correctly non-bridges. Dead
  /// edges report false.
  [[nodiscard]] std::vector<bool> bridges() const;

  struct ShortestPaths {
    std::vector<double> dist;          // +inf if unreachable / dead vertex
    std::vector<std::int32_t> parent_edge;  // kNone at source / unreachable
  };

  /// Dijkstra over the alive subgraph from `source`. `skip_edge` (if >= 0)
  /// is treated as deleted — used for "tentative tree assuming deletion of
  /// e" evaluations without mutating the graph.
  [[nodiscard]] ShortestPaths dijkstra(std::int32_t source,
                                       std::int32_t skip_edge = kNone) const;

  /// Vertex ids of the alive component containing `start`.
  [[nodiscard]] std::vector<std::int32_t> component_of(std::int32_t start) const;

 private:
  std::vector<bool> vertex_alive_;
  std::vector<std::vector<std::int32_t>> adjacency_;
  std::vector<Edge> edges_;
  std::int32_t alive_vertices_ = 0;
  std::int32_t alive_edges_ = 0;
};

/// Disjoint-set union with path compression and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<std::int32_t>(i);
  }

  [[nodiscard]] std::int32_t find(std::int32_t x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  /// Returns true if the two elements were in different sets.
  bool unite(std::int32_t a, std::int32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)])
      std::swap(a, b);
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
    return true;
  }

  [[nodiscard]] bool same(std::int32_t a, std::int32_t b) {
    return find(a) == find(b);
  }

 private:
  std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> size_;
};

}  // namespace bgr

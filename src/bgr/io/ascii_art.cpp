#include "bgr/io/ascii_art.hpp"

#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

namespace bgr {
namespace {

std::size_t bucket_of(std::int32_t x, std::int32_t width, std::int32_t buckets) {
  return static_cast<std::size_t>(static_cast<std::int64_t>(x) * buckets /
                                  width);
}

}  // namespace

void render_placement(std::ostream& os, const Netlist& netlist,
                      const Placement& placement, std::int32_t max_cols) {
  const std::int32_t buckets = std::min(max_cols, placement.width());

  // Boundary pad lines.
  auto pad_line = [&](bool top) {
    std::string line(static_cast<std::size_t>(buckets), ' ');
    for (const auto& [pad, site] : placement.pad_sites()) {
      (void)pad;
      if (site.top != top || !site.assigned()) continue;
      line[bucket_of(site.assigned_x, placement.width(), buckets)] = 'O';
    }
    return line;
  };

  os << "pads  " << pad_line(/*top=*/true) << "\n";
  for (std::int32_t r = placement.row_count() - 1; r >= 0; --r) {
    // Rows are printed top-down; each bucket shows the densest occupant.
    std::string line(static_cast<std::size_t>(buckets), ' ');
    for (const CellId c : placement.row_cells(RowId{r})) {
      const PlacedCell& pc = placement.placed(c);
      const char mark = netlist.cell_type(c).is_feed() ? '.' : '#';
      for (std::int32_t x = pc.x; x < pc.x + pc.width; ++x) {
        auto& slot = line[bucket_of(x, placement.width(), buckets)];
        if (slot != '#') slot = mark;  // logic wins over feed in a bucket
      }
    }
    os << "row" << (r < 10 ? "  " : " ") << r << " " << line << "\n";
  }
  os << "pads  " << pad_line(/*top=*/false) << "\n";
}

void render_congestion(std::ostream& os, const GlobalRouter& router,
                       std::int32_t max_cols) {
  static constexpr char kRamp[] = " .:-=+*#%@";
  const DensityMap& density = router.density();
  const std::int32_t width = density.width();
  const std::int32_t buckets = std::min(max_cols, width);
  for (std::int32_t c = density.channel_count() - 1; c >= 0; --c) {
    const std::int32_t peak = density.channel_params(c).c_max;
    std::vector<std::int32_t> bucket_max(static_cast<std::size_t>(buckets), 0);
    for (std::int32_t x = 0; x < width; ++x) {
      auto& slot = bucket_max[bucket_of(x, width, buckets)];
      slot = std::max(slot, density.total_at(c, x));
    }
    std::string line(static_cast<std::size_t>(buckets), ' ');
    for (std::int32_t b = 0; b < buckets; ++b) {
      const double util =
          peak > 0 ? static_cast<double>(bucket_max[static_cast<std::size_t>(b)]) /
                         static_cast<double>(peak)
                   : 0.0;
      const auto idx = static_cast<std::size_t>(util * 9.0 + 0.5);
      line[static_cast<std::size_t>(b)] = kRamp[std::min<std::size_t>(idx, 9)];
    }
    os << "chan" << (c < 10 ? "  " : " ") << c << " |" << line << "| C_M="
       << peak << "\n";
  }
}

}  // namespace bgr

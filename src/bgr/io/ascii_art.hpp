#pragma once

#include <iosfwd>

#include "bgr/channel/channel_router.hpp"
#include "bgr/layout/placement.hpp"
#include "bgr/netlist/netlist.hpp"
#include "bgr/route/router.hpp"

namespace bgr {

/// Renders the placement as a row-per-line chip map: logic cells '#',
/// feed cells '.', free columns ' ', with pads marked on the boundary
/// lines. Wide chips are bucketed to `max_cols` characters.
void render_placement(std::ostream& os, const Netlist& netlist,
                      const Placement& placement, std::int32_t max_cols = 120);

/// Renders per-channel congestion as one line per channel: utilisation of
/// each column bucket relative to the channel's track count, using the
/// ' .:-=+*#%@' ramp.
void render_congestion(std::ostream& os, const GlobalRouter& router,
                       std::int32_t max_cols = 120);

}  // namespace bgr

#include "bgr/io/design_io.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "bgr/common/check.hpp"

namespace bgr {

std::string terminal_ref(const Netlist& netlist, TerminalId term) {
  const Terminal& t = netlist.terminal(term);
  if (t.kind == TerminalKind::kCellPin) {
    return netlist.cell(t.cell).name + "." +
           netlist.cell_type(t.cell).pin(t.pin).name;
  }
  return "pad:" + t.pad_name;
}

TerminalId find_terminal(const Netlist& netlist, const std::string& ref) {
  if (ref.rfind("pad:", 0) == 0) {
    const std::string name = ref.substr(4);
    for (const TerminalId t : netlist.terminals()) {
      const Terminal& term = netlist.terminal(t);
      if (term.kind != TerminalKind::kCellPin && term.pad_name == name) {
        return t;
      }
    }
    return TerminalId::invalid();
  }
  const auto dot = ref.rfind('.');
  BGR_CHECK_MSG(dot != std::string::npos, "bad terminal ref " << ref);
  const std::string cell_name = ref.substr(0, dot);
  const std::string pin_name = ref.substr(dot + 1);
  for (const TerminalId t : netlist.terminals()) {
    const Terminal& term = netlist.terminal(t);
    if (term.kind != TerminalKind::kCellPin) continue;
    if (netlist.cell(term.cell).name != cell_name) continue;
    if (netlist.cell_type(term.cell).pin(term.pin).name == pin_name) return t;
  }
  return TerminalId::invalid();
}

void write_design(std::ostream& os, const Dataset& dataset) {
  const Netlist& nl = dataset.netlist;
  const Placement& pl = dataset.placement;
  os.precision(17);  // round-trip doubles exactly
  os << "bgr-design 1\n";
  os << "name " << dataset.name << "\n";
  os << "chip rows " << pl.row_count() << " width " << pl.width() << "\n";
  for (const CellId c : nl.cells()) {
    os << "cell " << nl.cell(c).name << " " << nl.cell_type(c).name() << "\n";
  }
  for (const NetId n : nl.nets()) {
    os << "net " << nl.net(n).name << " " << nl.net(n).pitch_width << "\n";
  }
  for (const TerminalId t : nl.terminals()) {
    const Terminal& term = nl.terminal(t);
    const std::string& net_name = nl.net(term.net).name;
    switch (term.kind) {
      case TerminalKind::kCellPin:
        os << "conn " << net_name << " " << nl.cell(term.cell).name << " "
           << nl.cell_type(term.cell).pin(term.pin).name << "\n";
        break;
      case TerminalKind::kPadIn:
        os << "padin " << term.pad_name << " " << net_name << " "
           << term.pad_tf_ps_per_pf << " " << term.pad_td_ps_per_pf << "\n";
        break;
      case TerminalKind::kPadOut:
        os << "padout " << term.pad_name << " " << net_name << " "
           << term.pad_cap_pf << "\n";
        break;
    }
  }
  for (const NetId n : nl.nets()) {
    const Net& net = nl.net(n);
    if (net.is_differential() && net.diff_primary) {
      os << "diff " << net.name << " " << nl.net(net.diff_partner).name << "\n";
    }
  }
  for (const CellId c : nl.cells()) {
    const PlacedCell& pc = pl.placed(c);
    os << "place " << nl.cell(c).name << " " << pc.row.value() << " " << pc.x
       << "\n";
  }
  for (const TerminalId t : nl.terminals()) {
    const Terminal& term = nl.terminal(t);
    if (term.kind == TerminalKind::kCellPin) continue;
    const PadSite& site = pl.pad_site(t);
    os << "pad " << term.pad_name << " " << (site.top ? "top" : "bot") << " "
       << site.window.lo << " " << site.window.hi << "\n";
  }
  for (const PathConstraint& pc : dataset.constraints) {
    os << "const " << pc.name << " " << pc.limit_ps << " src";
    for (const TerminalId t : pc.sources) os << " " << terminal_ref(nl, t);
    os << " sink";
    for (const TerminalId t : pc.sinks) os << " " << terminal_ref(nl, t);
    os << "\n";
  }
  os << "end\n";
}

Dataset read_design(std::istream& is) {
  Library lib = Library::make_ecl_default();
  Netlist nl(std::move(lib));
  std::map<std::string, CellId> cells;
  std::map<std::string, NetId> nets;

  std::string header;
  std::getline(is, header);
  BGR_CHECK_MSG(header.rfind("bgr-design 1", 0) == 0,
                "not a bgr-design file");

  std::string name = "design";
  std::int32_t rows = 0;
  std::int32_t width = 0;
  struct PlaceRec {
    std::string cell;
    std::int32_t row, x;
  };
  struct PadRec {
    std::string pad;
    bool top;
    std::int32_t lo, hi;
  };
  std::vector<PlaceRec> places;
  std::vector<PadRec> pads;
  std::vector<std::string> const_lines;

  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind.empty() || kind[0] == '#') continue;
    if (kind == "end") break;
    if (kind == "name") {
      ls >> name;
    } else if (kind == "chip") {
      std::string k1, k2;
      ls >> k1 >> rows >> k2 >> width;
    } else if (kind == "cell") {
      std::string cname, tname;
      ls >> cname >> tname;
      const CellTypeId type = nl.library().find(tname);
      BGR_CHECK_MSG(type.valid(), "unknown cell type " << tname);
      cells[cname] = nl.add_cell(cname, type);
    } else if (kind == "net") {
      std::string nname;
      std::int32_t pitch = 1;
      ls >> nname >> pitch;
      nets[nname] = nl.add_net(nname, pitch);
    } else if (kind == "conn") {
      std::string nname, cname, pname;
      ls >> nname >> cname >> pname;
      const CellId cell = cells.at(cname);
      const PinId pin = nl.cell_type(cell).find_pin(pname);
      BGR_CHECK_MSG(pin.valid(), "unknown pin " << pname);
      (void)nl.connect(nets.at(nname), cell, pin);
    } else if (kind == "padin") {
      std::string pname, nname;
      double tf = 0, td = 0;
      ls >> pname >> nname >> tf >> td;
      (void)nl.add_pad_input(pname, nets.at(nname), tf, td);
    } else if (kind == "padout") {
      std::string pname, nname;
      double cap = 0;
      ls >> pname >> nname >> cap;
      (void)nl.add_pad_output(pname, nets.at(nname), cap);
    } else if (kind == "diff") {
      std::string a, b;
      ls >> a >> b;
      nl.make_differential(nets.at(a), nets.at(b));
    } else if (kind == "place") {
      PlaceRec rec;
      ls >> rec.cell >> rec.row >> rec.x;
      places.push_back(rec);
    } else if (kind == "pad") {
      PadRec rec;
      std::string side;
      ls >> rec.pad >> side >> rec.lo >> rec.hi;
      rec.top = side == "top";
      pads.push_back(rec);
    } else if (kind == "const") {
      const_lines.push_back(line);
    } else {
      BGR_CHECK_MSG(false, "unknown record " << kind);
    }
  }

  BGR_CHECK_MSG(rows > 0 && width > 0, "missing chip record");
  Placement placement(rows, width);
  for (const PlaceRec& rec : places) {
    placement.place(nl, cells.at(rec.cell), RowId{rec.row}, rec.x);
  }
  for (const PadRec& rec : pads) {
    const TerminalId pad = find_terminal(nl, "pad:" + rec.pad);
    BGR_CHECK_MSG(pad.valid(), "pad record for unknown pad " << rec.pad);
    placement.place_pad(pad, rec.top, IntInterval{rec.lo, rec.hi});
  }

  std::vector<PathConstraint> constraints;
  for (const std::string& cl : const_lines) {
    std::istringstream ls(cl);
    std::string kind;
    PathConstraint pc;
    ls >> kind >> pc.name >> pc.limit_ps;
    std::string tok;
    ls >> tok;
    BGR_CHECK(tok == "src");
    bool in_sink = false;
    while (ls >> tok) {
      if (tok == "sink") {
        in_sink = true;
        continue;
      }
      const TerminalId term = find_terminal(nl, tok);
      BGR_CHECK_MSG(term.valid(), "unknown terminal " << tok);
      (in_sink ? pc.sinks : pc.sources).push_back(term);
    }
    constraints.push_back(std::move(pc));
  }

  nl.validate();
  placement.validate(nl);
  Dataset ds{name, CircuitSpec{}, std::move(nl), std::move(placement),
             std::move(constraints), TechParams{}};
  ds.spec.name = name;
  return ds;
}

void save_design(const std::string& path, const Dataset& dataset) {
  std::ofstream os(path);
  BGR_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_design(os, dataset);
}

Dataset load_design(const std::string& path) {
  std::ifstream is(path);
  BGR_CHECK_MSG(is.good(), "cannot open " << path);
  return read_design(is);
}

}  // namespace bgr

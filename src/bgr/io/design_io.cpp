#include "bgr/io/design_io.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "bgr/common/check.hpp"
#include "bgr/io/field_reader.hpp"
#include "bgr/io/io_error.hpp"

namespace bgr {

std::string terminal_ref(const Netlist& netlist, TerminalId term) {
  const Terminal& t = netlist.terminal(term);
  if (t.kind == TerminalKind::kCellPin) {
    return netlist.cell(t.cell).name + "." +
           netlist.cell_type(t.cell).pin(t.pin).name;
  }
  return "pad:" + t.pad_name;
}

TerminalId find_terminal(const Netlist& netlist, const std::string& ref) {
  if (ref.rfind("pad:", 0) == 0) {
    const std::string name = ref.substr(4);
    for (const TerminalId t : netlist.terminals()) {
      const Terminal& term = netlist.terminal(t);
      if (term.kind != TerminalKind::kCellPin && term.pad_name == name) {
        return t;
      }
    }
    return TerminalId::invalid();
  }
  const auto dot = ref.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == ref.size()) {
    return TerminalId::invalid();  // not of the cell.pin / pad:NAME shape
  }
  const std::string cell_name = ref.substr(0, dot);
  const std::string pin_name = ref.substr(dot + 1);
  for (const TerminalId t : netlist.terminals()) {
    const Terminal& term = netlist.terminal(t);
    if (term.kind != TerminalKind::kCellPin) continue;
    if (netlist.cell(term.cell).name != cell_name) continue;
    if (netlist.cell_type(term.cell).pin(term.pin).name == pin_name) return t;
  }
  return TerminalId::invalid();
}

void write_design(std::ostream& os, const Dataset& dataset) {
  const Netlist& nl = dataset.netlist;
  const Placement& pl = dataset.placement;
  os.precision(17);  // round-trip doubles exactly
  os << "bgr-design 1\n";
  os << "name " << dataset.name << "\n";
  os << "chip rows " << pl.row_count() << " width " << pl.width() << "\n";
  for (const CellId c : nl.cells()) {
    os << "cell " << nl.cell(c).name << " " << nl.cell_type(c).name() << "\n";
  }
  for (const NetId n : nl.nets()) {
    os << "net " << nl.net(n).name << " " << nl.net(n).pitch_width << "\n";
  }
  for (const TerminalId t : nl.terminals()) {
    const Terminal& term = nl.terminal(t);
    const std::string& net_name = nl.net(term.net).name;
    switch (term.kind) {
      case TerminalKind::kCellPin:
        os << "conn " << net_name << " " << nl.cell(term.cell).name << " "
           << nl.cell_type(term.cell).pin(term.pin).name << "\n";
        break;
      case TerminalKind::kPadIn:
        os << "padin " << term.pad_name << " " << net_name << " "
           << term.pad_tf_ps_per_pf << " " << term.pad_td_ps_per_pf << "\n";
        break;
      case TerminalKind::kPadOut:
        os << "padout " << term.pad_name << " " << net_name << " "
           << term.pad_cap_pf << "\n";
        break;
    }
  }
  for (const NetId n : nl.nets()) {
    const Net& net = nl.net(n);
    if (net.is_differential() && net.diff_primary) {
      os << "diff " << net.name << " " << nl.net(net.diff_partner).name << "\n";
    }
  }
  for (const CellId c : nl.cells()) {
    const PlacedCell& pc = pl.placed(c);
    os << "place " << nl.cell(c).name << " " << pc.row.value() << " " << pc.x
       << "\n";
  }
  for (const TerminalId t : nl.terminals()) {
    const Terminal& term = nl.terminal(t);
    if (term.kind == TerminalKind::kCellPin) continue;
    const PadSite& site = pl.pad_site(t);
    os << "pad " << term.pad_name << " " << (site.top ? "top" : "bot") << " "
       << site.window.lo << " " << site.window.hi << "\n";
  }
  for (const PathConstraint& pc : dataset.constraints) {
    os << "const " << pc.name << " " << pc.limit_ps << " src";
    for (const TerminalId t : pc.sources) os << " " << terminal_ref(nl, t);
    os << " sink";
    for (const TerminalId t : pc.sinks) os << " " << terminal_ref(nl, t);
    os << "\n";
  }
  os << "end\n";
}

namespace {

/// Chip-dimension sanity caps: generous for any standard-cell design this
/// model describes, small enough that a corrupted `chip` record cannot
/// drive the occupancy grids into a multi-gigabyte allocation.
constexpr std::int32_t kMaxRows = 65536;
constexpr std::int32_t kMaxWidth = 16'777'216;
constexpr std::int64_t kMaxChipSites = 33'554'432;
constexpr std::int32_t kMaxPitch = 1024;

/// Runs an apply-phase netlist/placement mutation, converting any
/// CheckError (overlap, double drive, pad window checks...) into a
/// line-addressed IoError: malformed *input* must never surface as an
/// internal-invariant failure.
template <typename Fn>
void apply_record(const std::string& source, int line, Fn&& fn) {
  try {
    fn();
  } catch (const CheckError& e) {
    io_fail(source, line, e.what());
  }
}

}  // namespace

Dataset read_design(std::istream& is, const std::string& source) {
  Library lib = Library::make_ecl_default();
  Netlist nl(std::move(lib));
  std::map<std::string, CellId> cells;
  std::map<std::string, NetId> nets;
  std::set<std::string> pad_names;

  std::string header;
  std::getline(is, header);
  if (header.rfind("bgr-design 1", 0) != 0) {
    io_fail(source, 1, "not a bgr-design 1 file");
  }

  std::string name = "design";
  std::int32_t rows = 0;
  std::int32_t width = 0;
  struct PlaceRec {
    std::string cell;
    std::int32_t row, x;
    int line;
  };
  struct PadRec {
    std::string pad;
    bool top;
    std::int32_t lo, hi;
    int line;
  };
  struct ConstRec {
    std::string text;
    int line;
  };
  std::vector<PlaceRec> places;
  std::vector<PadRec> pads;
  std::vector<ConstRec> const_lines;

  std::string line;
  int lineno = 1;
  bool saw_end = false;
  while (std::getline(is, line)) {
    ++lineno;
    FieldReader fr(line, source, lineno);
    std::string kind;
    if (!fr.try_word(&kind) || kind[0] == '#') continue;
    if (kind == "end") {
      saw_end = true;
      break;
    }
    if (kind == "name") {
      name = fr.word("design name");
      fr.done();
    } else if (kind == "chip") {
      if (rows > 0) fr.fail("duplicate chip record");
      fr.keyword("rows");
      rows = fr.i32_in("row count", 1, kMaxRows);
      fr.keyword("width");
      width = fr.i32_in("chip width", 1, kMaxWidth);
      if (static_cast<std::int64_t>(rows) * width > kMaxChipSites) {
        fr.fail("chip of " + std::to_string(rows) + "x" +
                std::to_string(width) + " sites is implausibly large");
      }
      fr.done();
    } else if (kind == "cell") {
      const std::string cname = fr.word("cell name");
      const std::string tname = fr.word("cell type");
      fr.done();
      if (cells.count(cname) != 0) fr.fail("duplicate cell '" + cname + "'");
      const CellTypeId type = nl.library().find(tname);
      if (!type.valid()) fr.fail("unknown cell type '" + tname + "'");
      cells[cname] = nl.add_cell(cname, type);
    } else if (kind == "net") {
      const std::string nname = fr.word("net name");
      std::int32_t pitch = 1;
      std::string ptok;
      if (fr.try_word(&ptok)) {
        const auto parsed = parse_i32(ptok);
        if (!parsed || *parsed < 1 || *parsed > kMaxPitch) {
          fr.fail("net pitch '" + ptok + "' is not an integer in [1, " +
                  std::to_string(kMaxPitch) + "]");
        }
        pitch = *parsed;
        fr.done();
      }
      if (nets.count(nname) != 0) fr.fail("duplicate net '" + nname + "'");
      nets[nname] = nl.add_net(nname, pitch);
    } else if (kind == "conn") {
      const std::string nname = fr.word("net name");
      const std::string cname = fr.word("cell name");
      const std::string pname = fr.word("pin name");
      fr.done();
      const auto net = nets.find(nname);
      if (net == nets.end()) fr.fail("unknown net '" + nname + "'");
      const auto cell = cells.find(cname);
      if (cell == cells.end()) fr.fail("unknown cell '" + cname + "'");
      const PinId pin = nl.cell_type(cell->second).find_pin(pname);
      if (!pin.valid()) {
        fr.fail("cell '" + cname + "' has no pin '" + pname + "'");
      }
      apply_record(source, lineno,
                   [&] { (void)nl.connect(net->second, cell->second, pin); });
    } else if (kind == "padin" || kind == "padout") {
      const std::string pname = fr.word("pad name");
      const std::string nname = fr.word("net name");
      const double a = fr.real(kind == "padin" ? "pad tf" : "pad cap");
      const double b = kind == "padin" ? fr.real("pad td") : 0.0;
      fr.done();
      const auto net = nets.find(nname);
      if (net == nets.end()) fr.fail("unknown net '" + nname + "'");
      if (!pad_names.insert(pname).second) {
        fr.fail("duplicate pad '" + pname + "'");
      }
      apply_record(source, lineno, [&] {
        if (kind == "padin") {
          (void)nl.add_pad_input(pname, net->second, a, b);
        } else {
          (void)nl.add_pad_output(pname, net->second, a);
        }
      });
    } else if (kind == "diff") {
      const std::string a = fr.word("primary net");
      const std::string b = fr.word("shadow net");
      fr.done();
      const auto na = nets.find(a);
      if (na == nets.end()) fr.fail("unknown net '" + a + "'");
      const auto nb = nets.find(b);
      if (nb == nets.end()) fr.fail("unknown net '" + b + "'");
      if (na->second == nb->second) {
        fr.fail("net '" + a + "' cannot pair with itself");
      }
      apply_record(source, lineno,
                   [&] { nl.make_differential(na->second, nb->second); });
    } else if (kind == "place") {
      PlaceRec rec;
      rec.cell = fr.word("cell name");
      rec.row = fr.i32("row");
      rec.x = fr.i32("column");
      rec.line = lineno;
      fr.done();
      places.push_back(rec);
    } else if (kind == "pad") {
      PadRec rec;
      rec.pad = fr.word("pad name");
      const std::string side = fr.word("pad side");
      if (side != "top" && side != "bot") {
        fr.fail("pad side must be 'top' or 'bot', got '" + side + "'");
      }
      rec.top = side == "top";
      rec.lo = fr.i32("window lo");
      rec.hi = fr.i32("window hi");
      rec.line = lineno;
      fr.done();
      pads.push_back(rec);
    } else if (kind == "const") {
      const_lines.push_back(ConstRec{line, lineno});
    } else {
      fr.fail("unknown record '" + kind + "'");
    }
  }
  if (!saw_end) {
    io_fail(source, lineno, "truncated file (missing 'end' record)");
  }

  if (rows <= 0 || width <= 0) {
    io_fail(source, lineno, "missing chip record");
  }
  Placement placement(rows, width);
  for (const PlaceRec& rec : places) {
    const auto cell = cells.find(rec.cell);
    if (cell == cells.end()) {
      io_fail(source, rec.line, "place record for unknown cell '" + rec.cell +
                                    "'");
    }
    if (rec.row < 0 || rec.row >= rows || rec.x < 0 || rec.x >= width) {
      io_fail(source, rec.line,
              "placement at row " + std::to_string(rec.row) + " column " +
                  std::to_string(rec.x) + " outside the chip");
    }
    apply_record(source, rec.line, [&] {
      placement.place(nl, cell->second, RowId{rec.row}, rec.x);
    });
  }
  for (const PadRec& rec : pads) {
    const TerminalId pad = find_terminal(nl, "pad:" + rec.pad);
    if (!pad.valid()) {
      io_fail(source, rec.line,
              "pad record for unknown pad '" + rec.pad + "'");
    }
    if (rec.lo > rec.hi || rec.lo < 0 || rec.hi >= width) {
      io_fail(source, rec.line,
              "pad window [" + std::to_string(rec.lo) + ", " +
                  std::to_string(rec.hi) + "] outside the chip edge");
    }
    apply_record(source, rec.line, [&] {
      placement.place_pad(pad, rec.top, IntInterval{rec.lo, rec.hi});
    });
  }

  std::vector<PathConstraint> constraints;
  for (const ConstRec& cl : const_lines) {
    FieldReader fr(cl.text, source, cl.line);
    (void)fr.word("record kind");  // "const", already dispatched
    PathConstraint pc;
    pc.name = fr.word("constraint name");
    pc.limit_ps = fr.real("constraint limit");
    if (!(pc.limit_ps > 0.0)) {
      fr.fail("constraint limit must be positive");
    }
    fr.keyword("src");
    std::string tok;
    bool in_sink = false;
    while (fr.try_word(&tok)) {
      if (tok == "sink") {
        if (in_sink) fr.fail("duplicate 'sink' keyword");
        in_sink = true;
        continue;
      }
      const TerminalId term = find_terminal(nl, tok);
      if (!term.valid()) fr.fail("unknown terminal '" + tok + "'");
      (in_sink ? pc.sinks : pc.sources).push_back(term);
    }
    if (pc.sources.empty()) fr.fail("constraint has no source terminals");
    if (!in_sink || pc.sinks.empty()) {
      fr.fail("constraint has no sink terminals");
    }
    constraints.push_back(std::move(pc));
  }

  try {
    nl.validate();
    placement.validate(nl);
  } catch (const CheckError& e) {
    throw IoError(source + ": invalid design: " + std::string(e.what()));
  }
  Dataset ds{name, CircuitSpec{}, std::move(nl), std::move(placement),
             std::move(constraints), TechParams{}};
  ds.spec.name = name;
  return ds;
}

void save_design(const std::string& path, const Dataset& dataset) {
  std::ofstream os(path);
  if (!os.good()) throw IoError("cannot open " + path + " for writing");
  write_design(os, dataset);
}

Dataset load_design(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) throw IoError("cannot open " + path);
  return read_design(is, path);
}

}  // namespace bgr

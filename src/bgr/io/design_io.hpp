#pragma once

#include <iosfwd>
#include <string>

#include "bgr/gen/generator.hpp"

namespace bgr {

/// Stable textual reference to a terminal: "cellname.pinname" for cell
/// pins, "pad:NAME" for external terminals.
[[nodiscard]] std::string terminal_ref(const Netlist& netlist, TerminalId term);
[[nodiscard]] TerminalId find_terminal(const Netlist& netlist,
                                       const std::string& ref);

/// Writes a complete design (netlist, placement, constraints) in the
/// line-based `bgr-design 1` text format.
void write_design(std::ostream& os, const Dataset& dataset);

/// Parses a `bgr-design 1` stream. The cell library is the built-in ECL
/// library; cell types are matched by name. Malformed, truncated or
/// inconsistent input throws IoError with a "<source>:<line>:" diagnostic;
/// no partially-built Dataset ever escapes. `source` names the stream in
/// diagnostics (the file path, or a label for in-memory streams).
[[nodiscard]] Dataset read_design(std::istream& is,
                                  const std::string& source = "design");

/// Convenience file wrappers. Throw IoError on unreadable/unwritable
/// paths and on malformed content.
void save_design(const std::string& path, const Dataset& dataset);
[[nodiscard]] Dataset load_design(const std::string& path);

}  // namespace bgr

#pragma once

#include <cmath>
#include <sstream>
#include <string>

#include "bgr/common/parse.hpp"
#include "bgr/io/io_error.hpp"

namespace bgr {

/// Whitespace-token reader over one record line of a text format, with
/// checked numeric conversion. Every failure throws IoError carrying the
/// source name, the line number and the offending token — no silent
/// zero-initialised fields (the old `stream >> int` behaviour).
class FieldReader {
 public:
  FieldReader(const std::string& line, const std::string& source, int lineno)
      : ls_(line), source_(source), line_(lineno) {}

  [[noreturn]] void fail(const std::string& message) const {
    io_fail(source_, line_, message);
  }

  /// Next token; fails when the line ends early.
  std::string word(const char* what) {
    std::string token;
    if (!(ls_ >> token)) {
      fail(std::string("missing ") + what);
    }
    return token;
  }

  /// Optional trailing token (for fields with defaults).
  bool try_word(std::string* out) {
    out->clear();
    return static_cast<bool>(ls_ >> *out);
  }

  std::int32_t i32(const char* what) {
    const std::string token = word(what);
    const auto value = parse_i32(token);
    if (!value) fail(std::string(what) + " '" + token + "' is not an integer");
    return *value;
  }

  std::int32_t i32_in(const char* what, std::int32_t lo, std::int32_t hi) {
    const std::int32_t value = i32(what);
    if (value < lo || value > hi) {
      fail(std::string(what) + " " + std::to_string(value) +
           " out of range [" + std::to_string(lo) + ", " + std::to_string(hi) +
           "]");
    }
    return value;
  }

  double real(const char* what) {
    const std::string token = word(what);
    const auto value = parse_double(token);
    if (!value) fail(std::string(what) + " '" + token + "' is not a number");
    return *value;
  }

  /// Requires the exact literal keyword next (format fixed words).
  void keyword(const char* expected) {
    const std::string token = word(expected);
    if (token != expected) {
      fail(std::string("expected '") + expected + "', got '" + token + "'");
    }
  }

  /// Rejects trailing fields, so swapped or duplicated fields cannot be
  /// silently ignored.
  void done() {
    std::string extra;
    if (ls_ >> extra) fail("unexpected trailing field '" + extra + "'");
  }

 private:
  std::istringstream ls_;
  const std::string& source_;
  int line_;
};

}  // namespace bgr

#pragma once

#include <stdexcept>
#include <string>

namespace bgr {

/// Malformed, truncated or inconsistent *input* (a design/route file, a
/// CLI value). Unlike CheckError — which flags a broken internal
/// invariant — an IoError is an expected runtime condition: the message
/// carries a "source:line:" prefix so the user can fix the file, and
/// callers get a clean failure with no partially-constructed objects.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void io_fail(const std::string& source, int line,
                                 const std::string& message) {
  throw IoError(source + ":" + std::to_string(line) + ": " + message);
}

}  // namespace bgr

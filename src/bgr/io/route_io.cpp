#include "bgr/io/route_io.hpp"

#include <fstream>
#include <ostream>

#include "bgr/common/check.hpp"

namespace bgr {

void write_route(std::ostream& os, const GlobalRouter& router,
                 const ChannelStage& channel) {
  const Netlist& nl = router.analyzer().delay_graph().netlist();
  os << "bgr-route 1\n";
  os << "chip rows " << router.placement().row_count() << " width "
     << router.placement().width() << "\n";
  for (const NetId n : nl.nets()) {
    const RoutingGraph& g = router.net_graph(n);
    for (const auto e : g.alive_edges()) {
      const RouteEdgeInfo& info = g.edge_info(e);
      const char* kind = info.kind == RouteEdgeKind::kTrunk      ? "trunk"
                         : info.kind == RouteEdgeKind::kTermLink ? "term"
                                                                 : "feed";
      os << "tree " << nl.net(n).name << " " << kind << " " << info.channel
         << " " << info.span.lo << " " << info.span.hi << "\n";
    }
  }
  for (std::int32_t c = 0; c < channel.channel_count(); ++c) {
    const ChannelPlan& plan = channel.plan(c);
    os << "channel " << c << " tracks " << plan.tracks << " density "
       << plan.density << "\n";
    for (const ChannelSegment& seg : plan.segments) {
      os << "track " << c << " " << nl.net(seg.net).name << " " << seg.span.lo
         << " " << seg.span.hi << " " << seg.track << " " << seg.width << "\n";
    }
  }
  os << "end\n";
}

void save_route(const std::string& path, const GlobalRouter& router,
                const ChannelStage& channel) {
  std::ofstream os(path);
  BGR_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_route(os, router, channel);
}

}  // namespace bgr

#include "bgr/io/route_io.hpp"

#include <fstream>
#include <map>
#include <ostream>

#include "bgr/common/check.hpp"
#include "bgr/io/field_reader.hpp"
#include "bgr/io/io_error.hpp"

namespace bgr {

void write_route(std::ostream& os, const GlobalRouter& router,
                 const ChannelStage& channel) {
  const Netlist& nl = router.analyzer().delay_graph().netlist();
  os << "bgr-route 1\n";
  os << "chip rows " << router.placement().row_count() << " width "
     << router.placement().width() << "\n";
  for (const NetId n : nl.nets()) {
    const RoutingGraph& g = router.net_graph(n);
    for (const auto e : g.alive_edges()) {
      const RouteEdgeInfo& info = g.edge_info(e);
      const char* kind = info.kind == RouteEdgeKind::kTrunk      ? "trunk"
                         : info.kind == RouteEdgeKind::kTermLink ? "term"
                                                                 : "feed";
      os << "tree " << nl.net(n).name << " " << kind << " " << info.channel
         << " " << info.span.lo << " " << info.span.hi << "\n";
    }
  }
  for (std::int32_t c = 0; c < channel.channel_count(); ++c) {
    const ChannelPlan& plan = channel.plan(c);
    os << "channel " << c << " tracks " << plan.tracks << " density "
       << plan.density << "\n";
    for (const ChannelSegment& seg : plan.segments) {
      os << "track " << c << " " << nl.net(seg.net).name << " " << seg.span.lo
         << " " << seg.span.hi << " " << seg.track << " " << seg.width << "\n";
    }
  }
  os << "end\n";
}

void save_route(const std::string& path, const GlobalRouter& router,
                const ChannelStage& channel) {
  std::ofstream os(path);
  if (!os.good()) throw IoError("cannot open " + path + " for writing");
  write_route(os, router, channel);
}

namespace {

constexpr std::int32_t kMaxRouteRows = 65536;
constexpr std::int32_t kMaxRouteWidth = 16'777'216;

}  // namespace

RouteDoc read_route(std::istream& is, const std::string& source) {
  std::string header;
  std::getline(is, header);
  if (header.rfind("bgr-route 1", 0) != 0) {
    io_fail(source, 1, "not a bgr-route 1 file");
  }

  RouteDoc doc;
  // Channel index -> (tracks, header line), for track-record validation.
  std::map<std::int32_t, std::pair<std::int32_t, int>> channel_tracks;
  struct PendingTrack {
    RouteTrackRec rec;
    int line;
  };
  std::vector<PendingTrack> pending_tracks;

  std::string line;
  int lineno = 1;
  bool saw_end = false;
  while (std::getline(is, line)) {
    ++lineno;
    FieldReader fr(line, source, lineno);
    std::string kind;
    if (!fr.try_word(&kind) || kind[0] == '#') continue;
    if (kind == "end") {
      saw_end = true;
      break;
    }
    if (kind == "chip") {
      if (doc.rows > 0) fr.fail("duplicate chip record");
      fr.keyword("rows");
      doc.rows = fr.i32_in("row count", 1, kMaxRouteRows);
      fr.keyword("width");
      doc.width = fr.i32_in("chip width", 1, kMaxRouteWidth);
      fr.done();
    } else if (kind == "tree") {
      if (doc.rows <= 0) fr.fail("tree record before the chip record");
      RouteTreeRec rec;
      rec.net = fr.word("net name");
      rec.kind = fr.word("edge kind");
      if (rec.kind != "trunk" && rec.kind != "term" && rec.kind != "feed") {
        fr.fail("edge kind must be trunk, term or feed, got '" + rec.kind +
                "'");
      }
      rec.channel = fr.i32_in("channel", 0, doc.rows);
      rec.lo = fr.i32_in("span lo", 0, doc.width - 1);
      rec.hi = fr.i32_in("span hi", 0, doc.width - 1);
      fr.done();
      if (rec.lo > rec.hi) fr.fail("span lo exceeds span hi");
      doc.trees.push_back(std::move(rec));
    } else if (kind == "channel") {
      if (doc.rows <= 0) fr.fail("channel record before the chip record");
      RouteChannelRec rec;
      rec.channel = fr.i32_in("channel", 0, doc.rows);
      fr.keyword("tracks");
      rec.tracks = fr.i32_in("track count", 0, kMaxRouteWidth);
      fr.keyword("density");
      rec.density = fr.i32_in("density", 0, kMaxRouteWidth);
      fr.done();
      if (channel_tracks.count(rec.channel) != 0) {
        fr.fail("duplicate channel record for channel " +
                std::to_string(rec.channel));
      }
      channel_tracks[rec.channel] = {rec.tracks, lineno};
      doc.channels.push_back(rec);
    } else if (kind == "track") {
      if (doc.rows <= 0) fr.fail("track record before the chip record");
      RouteTrackRec rec;
      rec.channel = fr.i32_in("channel", 0, doc.rows);
      rec.net = fr.word("net name");
      rec.lo = fr.i32_in("span lo", 0, doc.width - 1);
      rec.hi = fr.i32_in("span hi", 0, doc.width - 1);
      rec.track = fr.i32("track");
      rec.width = fr.i32_in("segment width", 1, kMaxRouteWidth);
      fr.done();
      if (rec.lo > rec.hi) fr.fail("span lo exceeds span hi");
      pending_tracks.push_back(PendingTrack{std::move(rec), lineno});
    } else {
      fr.fail("unknown record '" + kind + "'");
    }
  }
  if (!saw_end) {
    io_fail(source, lineno, "truncated file (missing 'end' record)");
  }
  if (doc.rows <= 0) io_fail(source, lineno, "missing chip record");

  // Every channel of the chip must be summarised exactly once.
  for (std::int32_t c = 0; c <= doc.rows; ++c) {
    if (channel_tracks.count(c) == 0) {
      io_fail(source, lineno,
              "missing channel record for channel " + std::to_string(c));
    }
  }
  // Track records must land on declared tracks of their channel. Track
  // numbers are 1-based; a segment of width w occupies [track, track+w-1].
  for (PendingTrack& pt : pending_tracks) {
    const auto& [tracks, header_line] = channel_tracks.at(pt.rec.channel);
    (void)header_line;
    if (pt.rec.track < 1 || pt.rec.track + pt.rec.width - 1 > tracks) {
      io_fail(source, pt.line,
              "track " + std::to_string(pt.rec.track) + " (width " +
                  std::to_string(pt.rec.width) + ") outside channel " +
                  std::to_string(pt.rec.channel) + "'s " +
                  std::to_string(tracks) + " tracks");
    }
    doc.tracks.push_back(std::move(pt.rec));
  }
  return doc;
}

RouteDoc load_route(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) throw IoError("cannot open " + path);
  return read_route(is, path);
}

void write_route_doc(std::ostream& os, const RouteDoc& doc) {
  os << "bgr-route 1\n";
  os << "chip rows " << doc.rows << " width " << doc.width << "\n";
  for (const RouteTreeRec& rec : doc.trees) {
    os << "tree " << rec.net << " " << rec.kind << " " << rec.channel << " "
       << rec.lo << " " << rec.hi << "\n";
  }
  for (const RouteChannelRec& ch : doc.channels) {
    os << "channel " << ch.channel << " tracks " << ch.tracks << " density "
       << ch.density << "\n";
    for (const RouteTrackRec& rec : doc.tracks) {
      if (rec.channel != ch.channel) continue;
      os << "track " << rec.channel << " " << rec.net << " " << rec.lo << " "
         << rec.hi << " " << rec.track << " " << rec.width << "\n";
    }
  }
  os << "end\n";
}

}  // namespace bgr

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bgr/channel/channel_router.hpp"
#include "bgr/route/router.hpp"

namespace bgr {

/// Writes the routed result in the line-based `bgr-route 1` text format:
/// one `tree` record per net edge (kind, channel, column span, length) and
/// one `track` record per channel segment (net, span, assigned track),
/// followed by per-channel summaries. This is the hand-off a detailed
/// router or layout viewer would consume.
void write_route(std::ostream& os, const GlobalRouter& router,
                 const ChannelStage& channel);

void save_route(const std::string& path, const GlobalRouter& router,
                const ChannelStage& channel);

/// Parsed document model of a `bgr-route 1` file — plain records, no
/// router state. Produced by read_route with full structural validation;
/// the consumer (a viewer, a detailed router, the fuzz round-trip oracle)
/// can trust spans, channel indices and track numbers to be in range.
struct RouteTreeRec {
  std::string net;
  std::string kind;  // "trunk" | "term" | "feed"
  std::int32_t channel = 0;
  std::int32_t lo = 0, hi = 0;
};
struct RouteChannelRec {
  std::int32_t channel = 0;
  std::int32_t tracks = 0;
  std::int32_t density = 0;
};
struct RouteTrackRec {
  std::int32_t channel = 0;
  std::string net;
  std::int32_t lo = 0, hi = 0;
  std::int32_t track = 0;
  std::int32_t width = 0;
};
struct RouteDoc {
  std::int32_t rows = 0;
  std::int32_t width = 0;
  std::vector<RouteTreeRec> trees;
  std::vector<RouteChannelRec> channels;
  std::vector<RouteTrackRec> tracks;
};

/// Parses and validates a `bgr-route 1` stream. Throws IoError with a
/// "<source>:<line>:" diagnostic on malformed, truncated or inconsistent
/// input (spans outside the chip, unknown channels, tracks beyond the
/// channel's track count, ...).
[[nodiscard]] RouteDoc read_route(std::istream& is,
                                  const std::string& source = "route");
[[nodiscard]] RouteDoc load_route(const std::string& path);

/// Re-serialises a RouteDoc in the canonical record order. For documents
/// produced by read_route over writer output this is a byte-identical
/// round trip (write_route → read_route → write_route_doc fixpoint).
void write_route_doc(std::ostream& os, const RouteDoc& doc);

}  // namespace bgr

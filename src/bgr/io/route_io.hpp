#pragma once

#include <iosfwd>

#include "bgr/channel/channel_router.hpp"
#include "bgr/route/router.hpp"

namespace bgr {

/// Writes the routed result in the line-based `bgr-route 1` text format:
/// one `tree` record per net edge (kind, channel, column span, length) and
/// one `track` record per channel segment (net, span, assigned track),
/// followed by per-channel summaries. This is the hand-off a detailed
/// router or layout viewer would consume.
void write_route(std::ostream& os, const GlobalRouter& router,
                 const ChannelStage& channel);

void save_route(const std::string& path, const GlobalRouter& router,
                const ChannelStage& channel);

}  // namespace bgr

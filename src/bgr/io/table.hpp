#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "bgr/common/check.hpp"

namespace bgr {

/// Minimal fixed-width table printer for the benchmark harness: columns
/// are right-aligned except the first, widths fit the content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) {
    BGR_CHECK(row.size() == header_.size());
    rows_.push_back(std::move(row));
  }

  static std::string fmt(double v, int precision) {
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
  }
  static std::string fmt(std::int64_t v) { return std::to_string(v); }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c == 0) {
          os << std::left << std::setw(static_cast<int>(width[c])) << cells[c];
        } else {
          os << "  " << std::right << std::setw(static_cast<int>(width[c]))
             << cells[c];
        }
      }
      os << '\n';
    };
    line(header_);
    std::size_t total = 0;
    for (const auto w : width) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto& row : rows_) line(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bgr

#include "bgr/layout/feed_insertion.hpp"

#include <algorithm>
#include <numeric>

namespace bgr {

std::int32_t FeedDemand::row_pitches(RowId r) const {
  std::int32_t total = 0;
  for (const auto& [w, count] : row(r)) total += w * count;
  return total;
}

std::int32_t FeedDemand::widen_pitches() const {
  std::int32_t f = 0;
  for (std::int32_t r = 0; r < rows(); ++r) {
    f = std::max(f, row_pitches(RowId{r}));
  }
  return f;
}

namespace {

/// One group of feed cells to insert: `width` adjacent cells, reserved for
/// `flag`-pitch nets.
struct InsertUnit {
  std::int32_t width = 1;
  std::int32_t flag = 1;
};

}  // namespace

FeedInsertionResult insert_feed_cells(Netlist& netlist, const Placement& old,
                                      const FeedDemand& demand) {
  const std::int32_t widen = demand.widen_pitches();
  const CellTypeId feed_type = netlist.library().find("FEED");
  BGR_CHECK_MSG(feed_type.valid(), "library lacks FEED cell");

  FeedInsertionResult result{
      Placement(old.row_count(), old.width() + widen), widen, 0};
  Placement& next = result.placement;

  for (std::int32_t r = 0; r < old.row_count(); ++r) {
    const RowId row{r};
    // Build the list of insertion units for this row.
    std::vector<InsertUnit> units;
    std::int32_t singles = widen - demand.row_pitches(row);
    for (const auto& [w, count] : demand.row(row)) {
      if (w == 1) {
        singles += count;  // singles of F(1,r) join the even-spacing pool
        continue;
      }
      for (std::int32_t i = 0; i < count; ++i) {
        units.push_back(InsertUnit{w, w});
      }
    }
    for (std::int32_t i = 0; i < singles; ++i) {
      units.push_back(InsertUnit{1, 1});
    }

    const auto& cells = old.row_cells(row);
    const auto n_cells = static_cast<std::int32_t>(cells.size());
    const auto n_units = static_cast<std::int32_t>(units.size());

    // Unit j goes after existing cell index gap(j) − 1 (gap 0 = row start):
    // gaps are spread almost evenly across the n_cells + 1 gap positions.
    auto gap_of_unit = [&](std::int32_t j) {
      if (n_units == 0) return 0;
      return static_cast<std::int32_t>(
          (static_cast<std::int64_t>(j + 1) * (n_cells + 1)) / (n_units + 1));
    };

    // Old-coordinate x at which each gap starts (end of previous cell).
    auto gap_old_x = [&](std::int32_t gap) {
      if (gap == 0) return 0;
      const PlacedCell& pc = old.placed(cells[static_cast<std::size_t>(gap - 1)]);
      return pc.x + pc.width;
    };

    // Replay the row: interleave units and cells, tracking the shift each
    // old coordinate receives so free-column flags can be carried over.
    struct ShiftPoint {
      std::int32_t old_x;
      std::int32_t width;
    };
    std::vector<ShiftPoint> shifts;
    std::int32_t shift = 0;
    std::int32_t unit_idx = 0;
    auto insert_units_at_gap = [&](std::int32_t gap) {
      while (unit_idx < n_units && gap_of_unit(unit_idx) == gap) {
        const InsertUnit& unit = units[static_cast<std::size_t>(unit_idx)];
        const std::int32_t at = gap_old_x(gap);
        for (std::int32_t k = 0; k < unit.width; ++k) {
          // Name on the global cell count, not this call's counter: feed
          // insertion can run several rounds on one netlist, and a
          // per-call counter would mint the same name twice.
          const CellId feed = netlist.add_cell(
              "feed_r" + std::to_string(r) + "_" +
                  std::to_string(netlist.cell_count()),
              feed_type);
          next.place(netlist, feed, row, at + shift + k);
          next.set_column_flag(row, at + shift + k, unit.flag);
          ++result.feed_cells_added;
        }
        shifts.push_back(ShiftPoint{at, unit.width});
        shift += unit.width;
        ++unit_idx;
      }
    };

    insert_units_at_gap(0);
    for (std::int32_t i = 0; i < n_cells; ++i) {
      const CellId cell = cells[static_cast<std::size_t>(i)];
      const PlacedCell& pc = old.placed(cell);
      next.place(netlist, cell, row, pc.x + shift);
      insert_units_at_gap(i + 1);
    }
    BGR_CHECK(unit_idx == n_units);

    // Carry over flags of free columns, shifted past the insertions.
    auto shift_at = [&](std::int32_t x) {
      std::int32_t s = 0;
      for (const ShiftPoint& sp : shifts) {
        if (sp.old_x <= x) s += sp.width;
      }
      return s;
    };
    for (std::int32_t x = 0; x < old.width(); ++x) {
      const std::int32_t flag = old.column_flag(row, x);
      if (flag != 0 && !old.column_blocked(row, x)) {
        next.set_column_flag(row, x + shift_at(x), flag);
      }
    }
  }

  // Pad windows are unchanged; the chip only grew to the right.
  for (const auto& [pad, site] : old.pad_sites()) {
    next.place_pad(pad, site.top, site.window);
    next.pad_site(pad).assigned_x = site.assigned_x;
  }
  return result;
}

Placement sweep_feed_cells_aside(const Netlist& netlist, const Placement& old) {
  Placement next(old.row_count(), old.width());
  for (std::int32_t r = 0; r < old.row_count(); ++r) {
    const RowId row{r};
    std::int32_t x = 0;
    std::vector<CellId> feeds;
    for (const CellId cell : old.row_cells(row)) {
      if (netlist.cell_type(cell).is_feed()) {
        feeds.push_back(cell);
      } else {
        next.place(netlist, cell, row, x);
        x += netlist.cell_type(cell).width();
      }
    }
    for (const CellId feed : feeds) {
      next.place(netlist, feed, row, x);
      x += netlist.cell_type(feed).width();
    }
  }
  for (const auto& [pad, site] : old.pad_sites()) {
    next.place_pad(pad, site.top, site.window);
    next.pad_site(pad).assigned_x = site.assigned_x;
  }
  return next;
}

}  // namespace bgr

#pragma once

#include <map>
#include <vector>

#include "bgr/layout/placement.hpp"
#include "bgr/netlist/netlist.hpp"

namespace bgr {

/// Feedthrough shortfall from a failed assignment round: F(w, r) = number
/// of w-pitch nets that could not obtain a feedthrough group in row r
/// (paper §4.3).
class FeedDemand {
 public:
  explicit FeedDemand(std::int32_t rows) : per_row_(static_cast<std::size_t>(rows)) {}

  void add_failure(RowId row, std::int32_t pitch_width) {
    ++per_row_.at(static_cast<std::size_t>(row.value()))[pitch_width];
  }

  [[nodiscard]] std::int32_t rows() const {
    return static_cast<std::int32_t>(per_row_.size());
  }
  [[nodiscard]] const std::map<std::int32_t, std::int32_t>& row(RowId r) const {
    return per_row_.at(static_cast<std::size_t>(r.value()));
  }

  /// F(r) = Σ_w w · F(w, r).
  [[nodiscard]] std::int32_t row_pitches(RowId r) const;
  /// F = max_r F(r): the number of pitches every row is widened by.
  [[nodiscard]] std::int32_t widen_pitches() const;
  [[nodiscard]] bool any() const { return widen_pitches() > 0; }

 private:
  std::vector<std::map<std::int32_t, std::int32_t>> per_row_;
};

struct FeedInsertionResult {
  Placement placement;
  std::int32_t widen_pitches = 0;
  std::int32_t feed_cells_added = 0;
};

/// Implements the paper's feed-cell insertion: for each row, F(w,r) groups
/// of w feed cells (flagged w) plus F(1,r) + F − F(r) single feed cells
/// (flagged 1) are inserted almost evenly spaced between existing cells;
/// every row widens by exactly F pitches. Width flags already present on
/// free columns of `old` (set by the caller on positions where w-pitch nets
/// were assigned in the first round) are carried over, shifted by the
/// insertions. New FEED cells are appended to `netlist`.
[[nodiscard]] FeedInsertionResult insert_feed_cells(Netlist& netlist,
                                                    const Placement& old,
                                                    const FeedDemand& demand);

/// Builds the P2 variant of a placement: all feed cells of each row are
/// swept to the right end of the row (destroying the even spacing), used to
/// evaluate the even-spacing effect of feed-cell insertion (paper §5).
[[nodiscard]] Placement sweep_feed_cells_aside(const Netlist& netlist,
                                               const Placement& old);

}  // namespace bgr

#include "bgr/layout/placement.hpp"

#include <algorithm>
#include <numeric>

namespace bgr {

Placement::Placement(std::int32_t rows, std::int32_t width)
    : rows_(rows), width_(width) {
  BGR_CHECK(rows >= 1 && width >= 1);
  row_cells_.resize(static_cast<std::size_t>(rows));
  const auto cells = static_cast<std::size_t>(rows) * static_cast<std::size_t>(width);
  occupancy_.assign(cells, CellId::invalid());
  blocked_.assign(cells, false);
  flags_.assign(cells, 0);
}

void Placement::place(const Netlist& netlist, CellId cell, RowId row,
                      std::int32_t x) {
  const CellType& type = netlist.cell_type(cell);
  BGR_CHECK(row.valid() && row.value() < rows_);
  BGR_CHECK_MSG(x >= 0 && x + type.width() <= width_,
                "cell " << netlist.cell(cell).name << " outside chip");
  if (cell.index() >= cell_known_.size()) {
    cell_known_.resize(cell.index() + 1, false);
    cell_place_.resize(cell.index() + 1);
  }
  BGR_CHECK_MSG(!cell_known_[cell.index()], "cell placed twice");
  for (std::int32_t c = x; c < x + type.width(); ++c) {
    BGR_CHECK_MSG(!occupancy_[rx(row, c)].valid(),
                  "overlap at row " << row.value() << " column " << c);
    occupancy_[rx(row, c)] = cell;
    blocked_[rx(row, c)] = !type.is_feed();
  }
  cell_place_[cell] = PlacedCell{row, x, type.width()};
  cell_known_[cell.index()] = true;
  auto& cells = row_cells_[static_cast<std::size_t>(row.value())];
  const auto pos = std::lower_bound(
      cells.begin(), cells.end(), x,
      [this](CellId a, std::int32_t xb) { return cell_place_[a].x < xb; });
  cells.insert(pos, cell);
}

void Placement::place_pad(TerminalId pad, bool top, IntInterval window) {
  BGR_CHECK(!window.empty());
  BGR_CHECK(window.lo >= 0 && window.hi < width_);
  PadSite site;
  site.top = top;
  site.window = window;
  pads_[pad] = site;
}

bool Placement::is_placed(CellId cell) const {
  return cell.index() < cell_known_.size() && cell_known_[cell.index()];
}

const PlacedCell& Placement::placed(CellId cell) const {
  BGR_CHECK(is_placed(cell));
  return cell_place_[cell];
}

const std::vector<CellId>& Placement::row_cells(RowId row) const {
  return row_cells_.at(static_cast<std::size_t>(row.value()));
}

std::int32_t Placement::terminal_column(const Netlist& netlist,
                                        TerminalId term) const {
  const Terminal& t = netlist.terminal(term);
  if (t.kind == TerminalKind::kCellPin) {
    const PlacedCell& pc = placed(t.cell);
    return pc.x + netlist.cell_type(t.cell).pin(t.pin).offset;
  }
  const PadSite& site = pad_site(term);
  return site.assigned() ? site.assigned_x : (site.window.lo + site.window.hi) / 2;
}

bool Placement::column_blocked(RowId row, std::int32_t x) const {
  BGR_CHECK(x >= 0 && x < width_);
  return blocked_[rx(row, x)];
}

std::int32_t Placement::column_flag(RowId row, std::int32_t x) const {
  return flags_[rx(row, x)];
}

void Placement::set_column_flag(RowId row, std::int32_t x, std::int32_t w) {
  flags_[rx(row, x)] = w;
}

void Placement::clear_column_flags() {
  std::fill(flags_.begin(), flags_.end(), 0);
}

const PadSite& Placement::pad_site(TerminalId pad) const {
  const auto it = pads_.find(pad);
  BGR_CHECK_MSG(it != pads_.end(), "pad site missing");
  return it->second;
}

PadSite& Placement::pad_site(TerminalId pad) {
  const auto it = pads_.find(pad);
  BGR_CHECK_MSG(it != pads_.end(), "pad site missing");
  return it->second;
}

std::int32_t Placement::free_column_count(RowId row) const {
  std::int32_t n = 0;
  for (std::int32_t x = 0; x < width_; ++x) {
    if (!blocked_[rx(row, x)]) ++n;
  }
  return n;
}

double Placement::chip_height_um(const TechParams& tech,
                                 const std::vector<std::int32_t>&
                                     channel_tracks) const {
  BGR_CHECK(channel_tracks.size() ==
            static_cast<std::size_t>(channel_count()));
  double h = static_cast<double>(rows_) * tech.row_height_um;
  for (const auto tracks : channel_tracks) {
    h += static_cast<double>(tracks + 1) * tech.track_pitch_um;
  }
  return h;
}

double Placement::chip_width_um(const TechParams& tech) const {
  return static_cast<double>(width_) * tech.grid_pitch_um;
}

void Placement::validate(const Netlist& netlist) const {
  for (const CellId c : netlist.cells()) {
    BGR_CHECK_MSG(is_placed(c), "cell " << netlist.cell(c).name << " unplaced");
    const PlacedCell& pc = cell_place_[c];
    for (std::int32_t x = pc.x; x < pc.x + pc.width; ++x) {
      BGR_CHECK(occupancy_[rx(pc.row, x)] == c);
    }
  }
  for (std::int32_t r = 0; r < rows_; ++r) {
    const auto& cells = row_cells_[static_cast<std::size_t>(r)];
    for (std::size_t i = 1; i < cells.size(); ++i) {
      const PlacedCell& a = cell_place_[cells[i - 1]];
      const PlacedCell& b = cell_place_[cells[i]];
      BGR_CHECK_MSG(a.x + a.width <= b.x, "row " << r << " cells overlap");
    }
  }
  for (const TerminalId t : netlist.terminals()) {
    if (netlist.terminal(t).kind == TerminalKind::kCellPin) continue;
    BGR_CHECK_MSG(pads_.count(t) != 0, "pad " << netlist.terminal(t).pad_name
                                              << " has no site");
  }
}

}  // namespace bgr

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgr/common/ids.hpp"
#include "bgr/common/interval.hpp"
#include "bgr/common/tech.hpp"
#include "bgr/netlist/netlist.hpp"

namespace bgr {

/// Physical position of a placed cell: row index and leftmost grid column.
struct PlacedCell {
  RowId row;
  std::int32_t x = 0;
  std::int32_t width = 0;  // grid pitches
};

/// External terminal site: boundary side plus the window of candidate grid
/// columns; the router's xpin assignment fixes `assigned_x`.
struct PadSite {
  bool top = false;  // true: above the top row (channel R); false: below row 0
  IntInterval window;
  std::int32_t assigned_x = -1;

  [[nodiscard]] bool assigned() const { return assigned_x >= 0; }
};

/// Standard-cell placement on R rows of W grid columns. Channel c (of
/// c = 0..R) lies below row c; channel R is above the top row. A grid
/// column of a row is a *feedthrough column* when it is not covered by a
/// logic cell: free space or a feed cell. Columns may carry a width flag
/// reserving them for w-pitch nets after feed-cell insertion (§4.3).
class Placement {
 public:
  Placement(std::int32_t rows, std::int32_t width);

  /// Registers a cell at (row, x); fails on overlap or out-of-bounds.
  void place(const Netlist& netlist, CellId cell, RowId row, std::int32_t x);

  /// Registers an external terminal's candidate window.
  void place_pad(TerminalId pad, bool top, IntInterval window);

  [[nodiscard]] std::int32_t row_count() const { return rows_; }
  [[nodiscard]] std::int32_t channel_count() const { return rows_ + 1; }
  [[nodiscard]] std::int32_t width() const { return width_; }

  [[nodiscard]] bool is_placed(CellId cell) const;
  [[nodiscard]] const PlacedCell& placed(CellId cell) const;
  /// Cells of a row ordered by x.
  [[nodiscard]] const std::vector<CellId>& row_cells(RowId row) const;

  /// Grid column of a pin instance (cell x + pin offset).
  [[nodiscard]] std::int32_t terminal_column(const Netlist& netlist,
                                             TerminalId term) const;

  /// True when the column is covered by a non-feed cell (no feedthrough).
  [[nodiscard]] bool column_blocked(RowId row, std::int32_t x) const;
  /// Width flag of a feedthrough column: 0 = unreserved, w = reserved for
  /// w-pitch nets.
  [[nodiscard]] std::int32_t column_flag(RowId row, std::int32_t x) const;
  void set_column_flag(RowId row, std::int32_t x, std::int32_t w);
  void clear_column_flags();

  [[nodiscard]] const PadSite& pad_site(TerminalId pad) const;
  [[nodiscard]] PadSite& pad_site(TerminalId pad);
  [[nodiscard]] const std::unordered_map<TerminalId, PadSite>& pad_sites() const {
    return pads_;
  }

  /// Count of feedthrough columns in a row (for reporting).
  [[nodiscard]] std::int32_t free_column_count(RowId row) const;

  /// Chip height in micrometres given per-channel track counts.
  [[nodiscard]] double chip_height_um(const TechParams& tech,
                                      const std::vector<std::int32_t>&
                                          channel_tracks) const;
  [[nodiscard]] double chip_width_um(const TechParams& tech) const;

  /// Verifies occupancy invariants against a netlist.
  void validate(const Netlist& netlist) const;

 private:
  [[nodiscard]] std::size_t rx(RowId row, std::int32_t x) const {
    return static_cast<std::size_t>(row.value()) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  std::int32_t rows_;
  std::int32_t width_;
  std::unordered_map<TerminalId, PadSite> pads_;
  IdVector<CellId, PlacedCell> cell_place_;  // grown on demand
  std::vector<bool> cell_known_;
  std::vector<std::vector<CellId>> row_cells_;
  std::vector<CellId> occupancy_;        // row-major column → cell (or invalid)
  std::vector<bool> blocked_;            // covered by non-feed cell
  std::vector<std::int32_t> flags_;      // feedthrough width reservation
};

}  // namespace bgr

#include "bgr/metrics/experiment.hpp"

#include <memory>

#include "bgr/channel/channel_router.hpp"
#include "bgr/common/stopwatch.hpp"
#include "bgr/timing/lower_bound.hpp"

namespace bgr {

RunResult run_flow(const Dataset& dataset, bool constrained,
                   RouterOptions options,
                   std::int32_t back_annotation_rounds) {
  RunResult result;
  result.dataset = dataset.name;
  result.constrained = constrained;

  // The router inserts feed cells (netlist) and widens rows (placement);
  // work on copies so the dataset stays reusable.
  Netlist netlist = dataset.netlist;
  Placement placement = dataset.placement;
  options.use_constraints = constrained;

  Stopwatch watch;
  GlobalRouter router(netlist, std::move(placement), dataset.tech,
                      dataset.constraints, options);
  RouteOutcome outcome = router.run();
  auto channel = std::make_unique<ChannelStage>(router);
  channel->run();

  // Back-annotation rounds (extension): feed the measured detailed lengths
  // back as per-net estimate corrections and re-run the improvement loops.
  for (std::int32_t round = 0; round < back_annotation_rounds; ++round) {
    IdVector<NetId, double> extra(
        static_cast<std::size_t>(netlist.net_count()), 0.0);
    for (const NetId n : netlist.nets()) {
      extra[n] = channel->net_detailed_length_um(n) -
                 router.net_graph(n).estimated_length_um();
    }
    const RouteOutcome refined = router.refine(extra);
    outcome.violated_constraints = refined.violated_constraints;
    outcome.worst_margin_ps = refined.worst_margin_ps;
    outcome.critical_delay_ps = refined.critical_delay_ps;
    outcome.total_length_um = refined.total_length_um;
    for (const PhaseStats& ph : refined.phases) outcome.phases.push_back(ph);
    channel = std::make_unique<ChannelStage>(router);
    channel->run();
  }

  result.delay_ps = channel->apply_and_critical_delay_ps(router.delay_graph(),
                                                         options.delay_model);
  result.cpu_s = watch.seconds();

  result.area_mm2 = channel->chip_area_mm2();
  result.length_mm = channel->total_detailed_length_um() / 1000.0;
  result.violated_constraints = outcome.violated_constraints;
  result.worst_margin_ps = outcome.worst_margin_ps;
  result.feed_cells_added = outcome.feed_cells_added;
  result.widen_pitches = outcome.widen_pitches;
  result.phases = outcome.phases;

  // Half-perimeter lower bound on the routed placement (Table 3).
  DelayGraph lb_graph(netlist);
  result.lower_bound_ps =
      lower_bound_delay_ps(lb_graph, router.placement(), dataset.tech);
  return result;
}

}  // namespace bgr

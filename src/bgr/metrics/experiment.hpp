#pragma once

#include <string>
#include <vector>

#include "bgr/gen/generator.hpp"
#include "bgr/route/router.hpp"

namespace bgr {

/// One row of Table 2 (plus the Table 3 lower-bound columns): the result
/// of running the full flow (assignment → global routing → channel stage)
/// on a dataset in one mode.
struct RunResult {
  std::string dataset;
  bool constrained = false;
  double delay_ps = 0.0;      // critical path delay after channel routing
  double area_mm2 = 0.0;
  double length_mm = 0.0;     // total detailed wire length
  double cpu_s = 0.0;
  double lower_bound_ps = 0.0;  // half-perimeter critical-path bound
  std::int32_t violated_constraints = 0;
  double worst_margin_ps = 0.0;
  std::int32_t feed_cells_added = 0;
  std::int32_t widen_pitches = 0;
  std::vector<PhaseStats> phases;

  /// Table 3 column: percentage above the lower bound.
  [[nodiscard]] double gap_to_lower_bound_percent() const {
    return lower_bound_ps > 0.0
               ? (delay_ps - lower_bound_ps) / lower_bound_ps * 100.0
               : 0.0;
  }
};

/// Runs the full flow on a copy of the dataset. `constrained` selects the
/// paper's "with constraints" mode versus the unconstrained area-driven
/// baseline. `options` lets ablation benches toggle phases/criteria; its
/// use_constraints field is overridden by `constrained`.
/// `back_annotation_rounds` (extension) re-runs the improvement loops with
/// the channel stage's measured per-net lengths fed back as estimate
/// corrections, then re-runs the channel stage.
[[nodiscard]] RunResult run_flow(const Dataset& dataset, bool constrained,
                                 RouterOptions options = {},
                                 std::int32_t back_annotation_rounds = 0);

}  // namespace bgr

#include "bgr/metrics/report.hpp"

#include <algorithm>
#include <ostream>

#include "bgr/io/table.hpp"

namespace bgr {

RouteStats collect_stats(const GlobalRouter& router,
                         const ChannelStage& channel) {
  const Netlist& nl = router.analyzer().delay_graph().netlist();
  RouteStats stats;

  for (const CellId c : nl.cells()) {
    ++stats.cells;
    if (nl.cell_type(c).is_feed()) ++stats.feed_cells;
  }
  std::int64_t fanout_sum = 0;
  std::vector<double> lengths;
  for (const NetId n : nl.nets()) {
    ++stats.nets;
    const auto fanout = static_cast<std::int32_t>(nl.net(n).sinks.size());
    stats.max_fanout = std::max(stats.max_fanout, fanout);
    fanout_sum += fanout;
    const double um = channel.net_detailed_length_um(n);
    lengths.push_back(um);
    stats.total_um += um;
    stats.max_um = std::max(stats.max_um, um);
  }
  for (const TerminalId t : nl.terminals()) {
    if (nl.terminal(t).kind != TerminalKind::kCellPin) ++stats.pads;
  }
  stats.mean_fanout =
      stats.nets > 0 ? static_cast<double>(fanout_sum) / stats.nets : 0.0;
  stats.mean_um = stats.nets > 0 ? stats.total_um / stats.nets : 0.0;

  stats.length_histogram.assign(10, 0);
  if (stats.max_um > 0.0) {
    for (const double um : lengths) {
      auto bucket = static_cast<std::size_t>(um / stats.max_um * 10.0);
      bucket = std::min<std::size_t>(bucket, 9);
      ++stats.length_histogram[bucket];
    }
  }

  double track_sum = 0.0;
  double util_sum = 0.0;
  std::int32_t channels = 0;
  for (std::int32_t c = 0; c < channel.channel_count(); ++c) {
    const ChannelPlan& plan = channel.plan(c);
    stats.max_tracks = std::max(stats.max_tracks, plan.tracks);
    track_sum += plan.tracks;
    if (plan.tracks > 0) {
      util_sum += static_cast<double>(plan.density) / plan.tracks;
      ++channels;
    }
  }
  stats.mean_tracks =
      channel.channel_count() > 0 ? track_sum / channel.channel_count() : 0.0;
  stats.track_utilisation = channels > 0 ? util_sum / channels : 0.0;

  stats.critical_delay_ps = router.analyzer().delay_graph().critical_delay_ps();
  stats.worst_margin_ps = router.analyzer().constraint_count() > 0
                              ? router.analyzer().worst_margin_ps()
                              : 0.0;
  stats.violated_constraints =
      static_cast<std::int32_t>(router.analyzer().violated().size());
  return stats;
}

void print_stats(std::ostream& os, const RouteStats& stats) {
  os << "design statistics:\n"
     << "  cells           " << stats.cells << " (" << stats.feed_cells
     << " feed)\n"
     << "  nets            " << stats.nets << " (mean fanout "
     << TextTable::fmt(stats.mean_fanout, 2) << ", max " << stats.max_fanout
     << ")\n"
     << "  pads            " << stats.pads << "\n"
     << "  wire length     total " << TextTable::fmt(stats.total_um / 1000.0, 2)
     << " mm, mean " << TextTable::fmt(stats.mean_um, 1) << " um, max "
     << TextTable::fmt(stats.max_um, 1) << " um\n";
  os << "  length deciles ";
  for (const auto count : stats.length_histogram) {
    os << " " << count;
  }
  os << "\n"
     << "  channel tracks  mean " << TextTable::fmt(stats.mean_tracks, 1)
     << ", max " << stats.max_tracks << ", utilisation "
     << TextTable::fmt(stats.track_utilisation * 100.0, 1) << "%\n"
     << "  timing          critical " << TextTable::fmt(stats.critical_delay_ps, 1)
     << " ps, worst margin " << TextTable::fmt(stats.worst_margin_ps, 1)
     << " ps, violations " << stats.violated_constraints << "\n";
}

}  // namespace bgr

#include "bgr/metrics/report.hpp"

#include <algorithm>
#include <ostream>

#include "bgr/io/table.hpp"
#include "bgr/obs/metrics.hpp"

namespace bgr {

RouteStats collect_stats(const GlobalRouter& router,
                         const ChannelStage& channel) {
  const Netlist& nl = router.analyzer().delay_graph().netlist();
  RouteStats stats;

  for (const CellId c : nl.cells()) {
    ++stats.cells;
    if (nl.cell_type(c).is_feed()) ++stats.feed_cells;
  }
  std::int64_t fanout_sum = 0;
  std::vector<double> lengths;
  for (const NetId n : nl.nets()) {
    ++stats.nets;
    const auto fanout = static_cast<std::int32_t>(nl.net(n).sinks.size());
    stats.max_fanout = std::max(stats.max_fanout, fanout);
    fanout_sum += fanout;
    const double um = channel.net_detailed_length_um(n);
    lengths.push_back(um);
    stats.total_um += um;
    stats.max_um = std::max(stats.max_um, um);
  }
  for (const TerminalId t : nl.terminals()) {
    if (nl.terminal(t).kind != TerminalKind::kCellPin) ++stats.pads;
  }
  stats.mean_fanout =
      stats.nets > 0 ? static_cast<double>(fanout_sum) / stats.nets : 0.0;
  stats.mean_um = stats.nets > 0 ? stats.total_um / stats.nets : 0.0;

  stats.length_histogram.assign(10, 0);
  if (stats.max_um > 0.0) {
    for (const double um : lengths) {
      auto bucket = static_cast<std::size_t>(um / stats.max_um * 10.0);
      bucket = std::min<std::size_t>(bucket, 9);
      ++stats.length_histogram[bucket];
    }
  }

  double track_sum = 0.0;
  double util_sum = 0.0;
  std::int32_t channels = 0;
  for (std::int32_t c = 0; c < channel.channel_count(); ++c) {
    const ChannelPlan& plan = channel.plan(c);
    stats.max_tracks = std::max(stats.max_tracks, plan.tracks);
    track_sum += plan.tracks;
    if (plan.tracks > 0) {
      util_sum += static_cast<double>(plan.density) / plan.tracks;
      ++channels;
    }
  }
  stats.mean_tracks =
      channel.channel_count() > 0 ? track_sum / channel.channel_count() : 0.0;
  stats.track_utilisation = channels > 0 ? util_sum / channels : 0.0;

  stats.critical_delay_ps = router.analyzer().delay_graph().critical_delay_ps();
  stats.worst_margin_ps = router.analyzer().constraint_count() > 0
                              ? router.analyzer().worst_margin_ps()
                              : 0.0;
  stats.violated_constraints =
      static_cast<std::int32_t>(router.analyzer().violated().size());
  return stats;
}

void print_stats(std::ostream& os, const RouteStats& stats) {
  os << "design statistics:\n"
     << "  cells           " << stats.cells << " (" << stats.feed_cells
     << " feed)\n"
     << "  nets            " << stats.nets << " (mean fanout "
     << TextTable::fmt(stats.mean_fanout, 2) << ", max " << stats.max_fanout
     << ")\n"
     << "  pads            " << stats.pads << "\n"
     << "  wire length     total " << TextTable::fmt(stats.total_um / 1000.0, 2)
     << " mm, mean " << TextTable::fmt(stats.mean_um, 1) << " um, max "
     << TextTable::fmt(stats.max_um, 1) << " um\n";
  os << "  length deciles ";
  for (const auto count : stats.length_histogram) {
    os << " " << count;
  }
  os << "\n"
     << "  channel tracks  mean " << TextTable::fmt(stats.mean_tracks, 1)
     << ", max " << stats.max_tracks << ", utilisation "
     << TextTable::fmt(stats.track_utilisation * 100.0, 1) << "%\n"
     << "  timing          critical " << TextTable::fmt(stats.critical_delay_ps, 1)
     << " ps, worst margin " << TextTable::fmt(stats.worst_margin_ps, 1)
     << " ps, violations " << stats.violated_constraints << "\n";
}

RunReport make_run_report(const GlobalRouter& router,
                          const ChannelStage& channel,
                          const RouteOutcome& outcome,
                          const RunReportInfo& info) {
  const RouterOptions& opt = router.options();
  const RouteStats stats = collect_stats(router, channel);
  RunReport report("bgr_route");

  JsonValue& design = report.section("design");
  design.set("name", info.design);
  design.set("cells", static_cast<std::int64_t>(stats.cells));
  design.set("feed_cells", static_cast<std::int64_t>(stats.feed_cells));
  design.set("nets", static_cast<std::int64_t>(stats.nets));
  design.set("pads", static_cast<std::int64_t>(stats.pads));
  design.set("constraints",
             static_cast<std::int64_t>(router.analyzer().constraint_count()));

  JsonValue& options = report.section("options");
  options.set("constrained", info.constrained);
  options.set("delay_model",
              opt.delay_model == DelayModel::kElmoreRC ? "elmore_rc"
                                                       : "lumped_c");
  options.set("concurrent_initial", opt.concurrent_initial);
  options.set("incremental_sta", opt.incremental_sta);
  options.set("path_search", path_search_backend_name(opt.path_search));
  options.set("lookahead",
              opt.lookahead == LookaheadMode::kMap ? "map" : "exact");
  options.set("improvement_passes",
              static_cast<std::int64_t>(opt.improvement_passes));

  JsonValue& result = report.section("result");
  result.set("critical_delay_ps", outcome.critical_delay_ps);
  result.set("detailed_delay_ps", info.detailed_delay_ps);
  result.set("area_mm2", channel.chip_area_mm2());
  result.set("length_um", channel.total_detailed_length_um());
  result.set("violated_constraints",
             static_cast<std::int64_t>(outcome.violated_constraints));
  result.set("worst_margin_ps", outcome.worst_margin_ps);
  result.set("feed_cells_added",
             static_cast<std::int64_t>(outcome.feed_cells_added));
  result.set("widen_pitches", static_cast<std::int64_t>(outcome.widen_pitches));

  JsonValue& st = report.section("stats");
  st.set("max_fanout", static_cast<std::int64_t>(stats.max_fanout));
  st.set("mean_fanout", stats.mean_fanout);
  st.set("mean_um", stats.mean_um);
  st.set("max_um", stats.max_um);
  {
    JsonValue deciles;
    for (const auto count : stats.length_histogram) {
      deciles.push_back(JsonValue(static_cast<std::int64_t>(count)));
    }
    st.set("length_deciles", std::move(deciles));
  }
  st.set("max_tracks", static_cast<std::int64_t>(stats.max_tracks));
  st.set("mean_tracks", stats.mean_tracks);
  st.set("track_utilisation", stats.track_utilisation);

  JsonValue& phases = report.section("phases");
  for (const PhaseStats& ph : outcome.phases) {
    JsonValue entry;
    entry.set("name", ph.name);
    entry.set("deletions", ph.deletions);
    entry.set("reroutes", ph.reroutes);
    entry.set("critical_delay_ps", ph.critical_delay_ps);
    entry.set("worst_margin_ps", ph.worst_margin_ps);
    entry.set("sum_max_density", ph.sum_max_density);
    entry.set("sta_updates", ph.sta_updates);
    entry.set("sta_dirty_vertices", ph.sta_dirty_vertices);
    entry.set("sta_relaxations", ph.sta_relaxations);
    entry.set("path_searches", ph.path_searches);
    entry.set("path_pops", ph.path_pops);
    entry.set("path_relaxations", ph.path_relaxations);
    // Wall time and exec activity depend on the thread count and the
    // scheduler; keep them under "wall" so the determinism comparison can
    // strip them (see RunReport).
    JsonValue wall;
    wall.set("seconds", ph.seconds);
    wall.set("exec_regions", ph.exec_regions);
    wall.set("exec_chunks", ph.exec_chunks);
    entry.set("wall", std::move(wall));
    phases.push_back(std::move(entry));
  }

  // The thread count lives here, not under "options": two runs that differ
  // only in --threads must compare semantically equal.
  JsonValue& run = report.section("run");
  run.set("wall_seconds", info.wall_seconds);
  run.set("threads", static_cast<std::int64_t>(opt.threads));
  run.set("threads_resolved",
          static_cast<std::int64_t>(opt.threads == 0
                                        ? ExecContext::hardware_threads()
                                        : opt.threads));

  report.add_metrics(MetricsRegistry::global());
  return report;
}

}  // namespace bgr

#pragma once

#include <iosfwd>
#include <vector>

#include "bgr/channel/channel_router.hpp"
#include "bgr/obs/run_report.hpp"
#include "bgr/route/router.hpp"

namespace bgr {

/// Aggregate statistics of a routed design, for reports and regression
/// tracking.
struct RouteStats {
  // Netlist shape.
  std::int32_t cells = 0;
  std::int32_t feed_cells = 0;
  std::int32_t nets = 0;
  std::int32_t pads = 0;
  std::int32_t max_fanout = 0;
  double mean_fanout = 0.0;
  // Wire length distribution (detailed lengths, um).
  double total_um = 0.0;
  double mean_um = 0.0;
  double max_um = 0.0;
  /// Histogram over length deciles of the longest net.
  std::vector<std::int32_t> length_histogram;
  // Channel utilisation.
  std::int32_t max_tracks = 0;
  double mean_tracks = 0.0;
  double track_utilisation = 0.0;  // mean density / tracks, over channels
  // Timing.
  double critical_delay_ps = 0.0;
  double worst_margin_ps = 0.0;
  std::int32_t violated_constraints = 0;
};

[[nodiscard]] RouteStats collect_stats(const GlobalRouter& router,
                                       const ChannelStage& channel);

/// Pretty-prints the statistics block.
void print_stats(std::ostream& os, const RouteStats& stats);

/// Run-scoped inputs to make_run_report() that only the caller knows:
/// identity of the design, the end-to-end wall time, and the channel-stage
/// (detailed) critical delay.
struct RunReportInfo {
  std::string design;
  bool constrained = true;
  double detailed_delay_ps = 0.0;
  double wall_seconds = 0.0;
};

/// Builds the `--metrics-out` document: design/options/result/stats are
/// deterministic sections; phase entries keep their wall time and exec
/// activity under a "wall" sub-object; the "run" section and
/// "metrics.nondeterministic" hold everything scheduling-dependent (see
/// RunReport for the layout contract that check_run_report.py enforces).
[[nodiscard]] RunReport make_run_report(const GlobalRouter& router,
                                        const ChannelStage& channel,
                                        const RouteOutcome& outcome,
                                        const RunReportInfo& info);

}  // namespace bgr

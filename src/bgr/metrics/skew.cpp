#include "bgr/metrics/skew.hpp"

#include <algorithm>
#include <limits>

namespace bgr {
namespace {

/// Min/max per-sink wire delay of a net's routed tree at a given width.
std::pair<double, double> wire_delay_range(const GlobalRouter& router,
                                           const Netlist& nl, NetId net,
                                           std::int32_t pitch_width) {
  const RoutingGraph& g = router.net_graph(net);
  const auto rc = g.elmore(router.tech(), pitch_width, [&](TerminalId t) {
    return nl.terminal_fanin_cap_pf(t);
  });
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (const auto& [term, ps] : rc.sink_wire_ps) {
    (void)term;
    lo = std::min(lo, ps);
    hi = std::max(hi, ps);
  }
  if (rc.sink_wire_ps.empty()) lo = 0.0;
  return {lo, hi};
}

}  // namespace

std::vector<ClockNetSkew> clock_skew_report(const GlobalRouter& router) {
  const Netlist& nl = router.analyzer().delay_graph().netlist();
  std::vector<ClockNetSkew> report;
  for (const NetId n : nl.nets()) {
    const Net& net = nl.net(n);
    if (net.pitch_width <= 1) continue;
    ClockNetSkew entry;
    entry.net = n;
    entry.name = net.name;
    entry.pitch_width = net.pitch_width;
    entry.fanout = static_cast<std::int32_t>(net.sinks.size());
    const auto [lo, hi] = wire_delay_range(router, nl, n, net.pitch_width);
    entry.min_wire_ps = lo;
    entry.max_wire_ps = hi;
    const auto [lo1, hi1] = wire_delay_range(router, nl, n, 1);
    entry.skew_1pitch_ps = hi1 - lo1;
    report.push_back(std::move(entry));
  }
  return report;
}

}  // namespace bgr

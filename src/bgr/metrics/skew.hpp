#pragma once

#include <string>
#include <vector>

#include "bgr/route/router.hpp"

namespace bgr {

/// Clock distribution quality of one multi-pitch net (§4.2: "multi-pitch
/// wires are required to reduce wire resistance and skews for very large
/// fan-out nets like a clock"). Arrival differences across sinks come from
/// the distributed-RC (Elmore) wire terms; the lumped part of Eq. (1) is
/// common to all sinks.
struct ClockNetSkew {
  NetId net;
  std::string name;
  std::int32_t pitch_width = 1;
  std::int32_t fanout = 0;
  double min_wire_ps = 0.0;
  double max_wire_ps = 0.0;
  /// Skew at the net's actual width.
  [[nodiscard]] double skew_ps() const { return max_wire_ps - min_wire_ps; }
  /// Hypothetical skew had the same tree been wired at 1 pitch.
  double skew_1pitch_ps = 0.0;
};

/// Per-sink Elmore analysis of every multi-pitch net in a routed design.
[[nodiscard]] std::vector<ClockNetSkew> clock_skew_report(
    const GlobalRouter& router);

}  // namespace bgr

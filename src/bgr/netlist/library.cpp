#include "bgr/netlist/library.hpp"

namespace bgr {
namespace {

/// Helper assembling a combinational gate: n inputs, one output, intrinsic
/// delay t0 on every arc.
CellType make_gate(const std::string& name, std::int32_t width, int inputs,
                   double t0_ps, double tf, double td, double fin) {
  CellType type{name, width, /*is_register=*/false, /*is_feed=*/false};
  std::vector<PinId> in_pins;
  for (int i = 0; i < inputs; ++i) {
    PinSpec spec;
    spec.name = "I" + std::to_string(i);
    spec.dir = PinDir::kInput;
    spec.offset = i;
    spec.fanin_cap_pf = fin;
    in_pins.push_back(type.add_pin(spec));
  }
  PinSpec out;
  out.name = "O";
  out.dir = PinDir::kOutput;
  out.offset = width - 1;
  out.tf_ps_per_pf = tf;
  out.td_ps_per_pf = td;
  const PinId out_pin = type.add_pin(out);
  for (const PinId in : in_pins) type.add_arc(in, out_pin, t0_ps);
  return type;
}

}  // namespace

Library Library::make_ecl_default() {
  Library lib;

  // Representative ECL figures: intrinsic delays 60-160 ps, input loads
  // 0.02-0.05 pF, wiring delay factors a few hundred ps/pF.
  lib.add(make_gate("BUF1", 2, 1, 70.0, 120.0, 260.0, 0.025));
  lib.add(make_gate("INV1", 2, 1, 60.0, 130.0, 270.0, 0.025));
  lib.add(make_gate("NOR2", 3, 2, 95.0, 150.0, 300.0, 0.030));
  lib.add(make_gate("NOR3", 4, 3, 120.0, 165.0, 320.0, 0.035));
  lib.add(make_gate("XOR2", 4, 2, 160.0, 180.0, 340.0, 0.045));
  lib.add(make_gate("MUX2", 4, 3, 140.0, 170.0, 330.0, 0.040));

  {
    // D-type master-slave register: CLK->Q launch arc only; D is a timing
    // endpoint.
    CellType ff{"DFF", 6, /*is_register=*/true, /*is_feed=*/false};
    PinSpec d;
    d.name = "D";
    d.dir = PinDir::kInput;
    d.offset = 0;
    d.fanin_cap_pf = 0.035;
    const PinId d_pin = ff.add_pin(d);
    (void)d_pin;
    PinSpec ck;
    ck.name = "CK";
    ck.dir = PinDir::kClock;
    ck.offset = 2;
    ck.fanin_cap_pf = 0.030;
    const PinId ck_pin = ff.add_pin(ck);
    PinSpec q;
    q.name = "Q";
    q.dir = PinDir::kOutput;
    q.offset = 5;
    q.tf_ps_per_pf = 140.0;
    q.td_ps_per_pf = 300.0;
    const PinId q_pin = ff.add_pin(q);
    ff.add_arc(ck_pin, q_pin, 180.0);
    lib.add(std::move(ff));
  }

  {
    // High-drive clock buffer for multi-pitch distribution nets.
    CellType ckbuf{"CKBUF", 5, /*is_register=*/false, /*is_feed=*/false};
    PinSpec in;
    in.name = "I";
    in.dir = PinDir::kInput;
    in.offset = 0;
    in.fanin_cap_pf = 0.050;
    const PinId in_pin = ckbuf.add_pin(in);
    PinSpec out;
    out.name = "O";
    out.dir = PinDir::kOutput;
    out.offset = 4;
    out.tf_ps_per_pf = 60.0;
    out.td_ps_per_pf = 130.0;
    const PinId out_pin = ckbuf.add_pin(out);
    ckbuf.add_arc(in_pin, out_pin, 90.0);
    lib.add(std::move(ckbuf));
  }

  {
    // Differential driver/receiver pair cells: true and complement pins at
    // adjacent columns, used for differential-drive nets (paper §4.1).
    CellType drv{"DDRV", 4, /*is_register=*/false, /*is_feed=*/false};
    PinSpec in;
    in.name = "I";
    in.dir = PinDir::kInput;
    in.offset = 0;
    in.fanin_cap_pf = 0.030;
    const PinId in_pin = drv.add_pin(in);
    PinSpec ot;
    ot.name = "OT";  // true output
    ot.dir = PinDir::kOutput;
    ot.offset = 2;
    ot.tf_ps_per_pf = 90.0;
    ot.td_ps_per_pf = 200.0;
    const PinId ot_pin = drv.add_pin(ot);
    PinSpec oc = ot;
    oc.name = "OC";  // complement output, adjacent column
    oc.offset = 3;
    const PinId oc_pin = drv.add_pin(oc);
    drv.add_arc(in_pin, ot_pin, 80.0);
    drv.add_arc(in_pin, oc_pin, 80.0);
    lib.add(std::move(drv));

    CellType rcv{"DRCV", 4, /*is_register=*/false, /*is_feed=*/false};
    PinSpec it;
    it.name = "IT";
    it.dir = PinDir::kInput;
    it.offset = 0;
    it.fanin_cap_pf = 0.030;
    const PinId it_pin = rcv.add_pin(it);
    PinSpec ic = it;
    ic.name = "IC";
    ic.offset = 1;
    const PinId ic_pin = rcv.add_pin(ic);
    PinSpec out;
    out.name = "O";
    out.dir = PinDir::kOutput;
    out.offset = 3;
    out.tf_ps_per_pf = 150.0;
    out.td_ps_per_pf = 300.0;
    const PinId out_pin = rcv.add_pin(out);
    rcv.add_arc(it_pin, out_pin, 100.0);
    rcv.add_arc(ic_pin, out_pin, 100.0);
    lib.add(std::move(rcv));
  }

  {
    // Feed cell: one pitch of pure feedthrough space (paper §4.3).
    CellType feed{"FEED", 1, /*is_register=*/false, /*is_feed=*/true};
    lib.add(std::move(feed));
  }

  return lib;
}

}  // namespace bgr

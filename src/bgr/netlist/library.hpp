#pragma once

#include <string>
#include <vector>

#include "bgr/common/check.hpp"
#include "bgr/common/ids.hpp"

namespace bgr {

enum class PinDir { kInput, kOutput, kClock };

/// Pin of a cell type. Delay semantics follow Eq. (1) of the paper:
/// * input pins carry the fan-in capacitance factor Fin(t) [pF];
/// * output pins carry the fan-in delay factor Tf(to) [ps/pF applied to the
///   sum of sink Fin] and the unit-capacitance wiring delay Td(to) [ps/pF
///   applied to CL(n)].
struct PinSpec {
  std::string name;
  PinDir dir = PinDir::kInput;
  /// Pin column offset from the cell origin, in grid pitches.
  std::int32_t offset = 0;
  /// Whether the pin's metal column is accessible from both adjacent
  /// channels (the usual case; the pin column is the net's own metal).
  bool both_sides = true;
  double fanin_cap_pf = 0.0;   // Fin, inputs only
  double tf_ps_per_pf = 0.0;   // Tf, outputs only
  double td_ps_per_pf = 0.0;   // Td, outputs only
};

/// Intrinsic propagation arc T0(t_i, t_o) of a cell type.
struct DelayArc {
  PinId from;  // input or clock pin
  PinId to;    // output pin
  double t0_ps = 0.0;
};

/// Standard cell master. Registers have arcs only from the clock pin to
/// outputs (launch); their data inputs are path endpoints. Feed cells carry
/// no pins — they only donate feedthrough columns.
class CellType {
 public:
  CellType(std::string name, std::int32_t width_pitches, bool is_register,
           bool is_feed)
      : name_(std::move(name)),
        width_(width_pitches),
        is_register_(is_register),
        is_feed_(is_feed) {
    BGR_CHECK(width_pitches >= 1);
  }

  PinId add_pin(PinSpec spec) {
    BGR_CHECK_MSG(spec.offset >= 0 && spec.offset < width_,
                  "pin offset outside cell " << name_);
    pins_.push_back(std::move(spec));
    return PinId{static_cast<std::int32_t>(pins_.size()) - 1};
  }

  void add_arc(PinId from, PinId to, double t0_ps) {
    BGR_CHECK(pin(from).dir != PinDir::kOutput);
    BGR_CHECK(pin(to).dir == PinDir::kOutput);
    arcs_.push_back(DelayArc{from, to, t0_ps});
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::int32_t width() const { return width_; }
  [[nodiscard]] bool is_register() const { return is_register_; }
  [[nodiscard]] bool is_feed() const { return is_feed_; }
  [[nodiscard]] std::int32_t pin_count() const {
    return static_cast<std::int32_t>(pins_.size());
  }
  [[nodiscard]] const PinSpec& pin(PinId id) const { return pins_.at(id.index()); }
  [[nodiscard]] const std::vector<PinSpec>& pins() const { return pins_; }
  [[nodiscard]] const std::vector<DelayArc>& arcs() const { return arcs_; }

  [[nodiscard]] PinId find_pin(const std::string& name) const {
    for (std::size_t i = 0; i < pins_.size(); ++i) {
      if (pins_[i].name == name) return PinId{static_cast<std::int32_t>(i)};
    }
    return PinId::invalid();
  }

 private:
  std::string name_;
  std::int32_t width_;
  bool is_register_;
  bool is_feed_;
  std::vector<PinSpec> pins_;
  std::vector<DelayArc> arcs_;
};

/// Collection of cell masters for one design.
class Library {
 public:
  CellTypeId add(CellType type) {
    types_.push_back(std::move(type));
    return CellTypeId{static_cast<std::int32_t>(types_.size()) - 1};
  }

  [[nodiscard]] const CellType& type(CellTypeId id) const {
    return types_.at(id.index());
  }
  [[nodiscard]] CellType& type(CellTypeId id) { return types_.at(id.index()); }
  [[nodiscard]] std::int32_t size() const {
    return static_cast<std::int32_t>(types_.size());
  }

  [[nodiscard]] CellTypeId find(const std::string& name) const {
    for (std::size_t i = 0; i < types_.size(); ++i) {
      if (types_[i].name() == name) return CellTypeId{static_cast<std::int32_t>(i)};
    }
    return CellTypeId::invalid();
  }

  /// Builds the representative ECL-flavoured library used by the synthetic
  /// datasets: inverters/buffers, 2-3 input gates, a D-type register, a
  /// high-drive clock buffer and the feed cell.
  [[nodiscard]] static Library make_ecl_default();

 private:
  std::vector<CellType> types_;
};

}  // namespace bgr

#include "bgr/netlist/netlist.hpp"

#include <algorithm>
#include <string_view>
#include <unordered_set>

namespace bgr {

CellId Netlist::add_cell(std::string name, CellTypeId type) {
  BGR_CHECK(type.valid() && type.value() < library_.size());
  return cells_.push_back(Cell{std::move(name), type});
}

NetId Netlist::add_net(std::string name, std::int32_t pitch_width) {
  BGR_CHECK(pitch_width >= 1);
  Net net;
  net.name = std::move(name);
  net.pitch_width = pitch_width;
  return nets_.push_back(std::move(net));
}

TerminalId Netlist::connect(NetId net_id, CellId cell_id, PinId pin_id) {
  const CellType& type = cell_type(cell_id);
  BGR_CHECK(pin_id.valid() && pin_id.value() < type.pin_count());
  Terminal term;
  term.kind = TerminalKind::kCellPin;
  term.cell = cell_id;
  term.pin = pin_id;
  term.net = net_id;
  const TerminalId tid = terminals_.push_back(term);
  Net& net = nets_.at(net_id);
  if (type.pin(pin_id).dir == PinDir::kOutput) {
    BGR_CHECK_MSG(!net.driver.valid(), "net " << net.name << " has two drivers");
    net.driver = tid;
  } else {
    net.sinks.push_back(tid);
  }
  return tid;
}

TerminalId Netlist::add_pad_input(std::string name, NetId net_id,
                                  double tf_ps_per_pf, double td_ps_per_pf) {
  Terminal term;
  term.kind = TerminalKind::kPadIn;
  term.net = net_id;
  term.pad_name = std::move(name);
  term.pad_tf_ps_per_pf = tf_ps_per_pf;
  term.pad_td_ps_per_pf = td_ps_per_pf;
  const TerminalId tid = terminals_.push_back(term);
  Net& net = nets_.at(net_id);
  BGR_CHECK_MSG(!net.driver.valid(), "net " << net.name << " has two drivers");
  net.driver = tid;
  return tid;
}

TerminalId Netlist::add_pad_output(std::string name, NetId net_id,
                                   double cap_pf) {
  Terminal term;
  term.kind = TerminalKind::kPadOut;
  term.net = net_id;
  term.pad_name = std::move(name);
  term.pad_cap_pf = cap_pf;
  const TerminalId tid = terminals_.push_back(term);
  nets_.at(net_id).sinks.push_back(tid);
  return tid;
}

void Netlist::make_differential(NetId primary, NetId shadow) {
  BGR_CHECK(primary != shadow);
  Net& p = nets_.at(primary);
  Net& s = nets_.at(shadow);
  BGR_CHECK_MSG(!p.diff_partner.valid() && !s.diff_partner.valid(),
                "net already differential");
  BGR_CHECK_MSG(p.terminal_count() == s.terminal_count(),
                "differential pair terminal counts differ");
  BGR_CHECK(p.pitch_width == 1 && s.pitch_width == 1);
  // Homogeneity: corresponding terminals must sit on the same cells so that
  // the two routing graphs can be mirrored (§4.1).
  auto cell_of = [this](TerminalId t) {
    const Terminal& term = terminals_.at(t);
    return term.kind == TerminalKind::kCellPin ? term.cell : CellId::invalid();
  };
  BGR_CHECK(cell_of(p.driver) == cell_of(s.driver));
  for (std::size_t i = 0; i < p.sinks.size(); ++i) {
    BGR_CHECK_MSG(cell_of(p.sinks[i]) == cell_of(s.sinks[i]),
                  "differential pair sink cells differ");
  }
  p.diff_partner = shadow;
  p.diff_primary = true;
  s.diff_partner = primary;
  s.diff_primary = false;
}

void Netlist::validate() const {
  for (const NetId n : nets()) {
    const Net& net = nets_.at(n);
    BGR_CHECK_MSG(net.driver.valid(), "net " << net.name << " has no driver");
    BGR_CHECK_MSG(!net.sinks.empty(), "net " << net.name << " has no sinks");
    BGR_CHECK(terminals_.at(net.driver).net == n);
    for (const TerminalId t : net.sinks) {
      BGR_CHECK(terminals_.at(t).net == n);
    }
    if (net.diff_partner.valid()) {
      const Net& partner = nets_.at(net.diff_partner);
      BGR_CHECK(partner.diff_partner.valid());
      BGR_CHECK(partner.diff_primary != net.diff_primary);
    }
  }
  // Names are the identity the text formats round-trip through, so they
  // must be unique — a duplicate would silently alias two objects.
  std::unordered_set<std::string_view> seen;
  for (const CellId c : cells()) {
    BGR_CHECK_MSG(seen.insert(cells_.at(c).name).second,
                  "duplicate cell name " << cells_.at(c).name);
  }
  seen.clear();
  for (const NetId n : nets()) {
    BGR_CHECK_MSG(seen.insert(nets_.at(n).name).second,
                  "duplicate net name " << nets_.at(n).name);
  }
}

std::vector<TerminalId> Netlist::net_terminals(NetId id) const {
  const Net& net = nets_.at(id);
  std::vector<TerminalId> out;
  out.reserve(net.terminal_count());
  out.push_back(net.driver);
  out.insert(out.end(), net.sinks.begin(), net.sinks.end());
  return out;
}

double Netlist::net_fanin_cap_pf(NetId id) const {
  const Net& net = nets_.at(id);
  double sum = 0.0;
  for (const TerminalId t : net.sinks) sum += terminal_fanin_cap_pf(t);
  return sum;
}

Netlist::DriverFactors Netlist::net_driver_factors(NetId id) const {
  const Terminal& drv = terminals_.at(nets_.at(id).driver);
  if (drv.kind == TerminalKind::kPadIn) {
    return {drv.pad_tf_ps_per_pf, drv.pad_td_ps_per_pf};
  }
  const PinSpec& pin = cell_type(drv.cell).pin(drv.pin);
  return {pin.tf_ps_per_pf, pin.td_ps_per_pf};
}

double Netlist::terminal_fanin_cap_pf(TerminalId id) const {
  const Terminal& term = terminals_.at(id);
  switch (term.kind) {
    case TerminalKind::kCellPin: {
      const PinSpec& pin = cell_type(term.cell).pin(term.pin);
      return pin.dir == PinDir::kOutput ? 0.0 : pin.fanin_cap_pf;
    }
    case TerminalKind::kPadIn:
      return 0.0;
    case TerminalKind::kPadOut:
      return term.pad_cap_pf;
  }
  return 0.0;
}

std::string Netlist::terminal_name(TerminalId id) const {
  const Terminal& term = terminals_.at(id);
  if (term.kind == TerminalKind::kCellPin) {
    return cells_.at(term.cell).name + "." +
           cell_type(term.cell).pin(term.pin).name;
  }
  return term.pad_name;
}

}  // namespace bgr

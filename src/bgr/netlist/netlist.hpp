#pragma once

#include <string>
#include <vector>

#include "bgr/common/check.hpp"
#include "bgr/common/ids.hpp"
#include "bgr/netlist/library.hpp"

namespace bgr {

/// Placed-design cell instance.
struct Cell {
  std::string name;
  CellTypeId type;
};

enum class TerminalKind {
  kCellPin,  // pin instance on a cell
  kPadIn,    // external terminal driving a net (primary input)
  kPadOut,   // external terminal loading a net (primary output)
};

/// Connection point of a net: either a pin instance on a cell or an
/// external (pad) terminal on the chip boundary.
struct Terminal {
  TerminalKind kind = TerminalKind::kCellPin;
  CellId cell;  // kCellPin only
  PinId pin;    // kCellPin only
  NetId net;
  std::string pad_name;         // pads only
  double pad_tf_ps_per_pf = 0;  // kPadIn: driver fan-in delay factor
  double pad_td_ps_per_pf = 0;  // kPadIn: driver unit-capacitance delay
  double pad_cap_pf = 0;        // kPadOut: input load
};

/// Signal net. `pitch_width` is w for w-pitch nets (paper §4.2);
/// differential pairs (§4.1) link two nets, the primary one carrying the
/// pair in assignment and routing decisions.
struct Net {
  std::string name;
  TerminalId driver;  // exactly one: cell output pin or input pad
  std::vector<TerminalId> sinks;
  std::int32_t pitch_width = 1;
  NetId diff_partner;        // invalid when not differential
  bool diff_primary = false; // true on the pair member that leads routing

  [[nodiscard]] bool is_differential() const { return diff_partner.valid(); }
  [[nodiscard]] std::size_t terminal_count() const { return sinks.size() + 1; }
};

/// The logical design: library + cells + nets + terminals.
class Netlist {
 public:
  explicit Netlist(Library library) : library_(std::move(library)) {}

  CellId add_cell(std::string name, CellTypeId type);
  NetId add_net(std::string name, std::int32_t pitch_width = 1);

  /// Connects a cell pin to a net. Output/clock-output pins become the
  /// net's driver (each net accepts exactly one driver).
  TerminalId connect(NetId net, CellId cell, PinId pin);
  TerminalId add_pad_input(std::string name, NetId net, double tf_ps_per_pf,
                           double td_ps_per_pf);
  TerminalId add_pad_output(std::string name, NetId net, double cap_pf);

  /// Marks two nets as a differential pair; `primary` leads all routing
  /// decisions. Both nets must have the same terminal count on the same
  /// cells (homogeneity precondition of §4.1) and become 1-pitch nets that
  /// jointly occupy a 2-pitch feedthrough.
  void make_differential(NetId primary, NetId shadow);

  /// Verifies structural invariants; throws CheckError on violation.
  void validate() const;

  [[nodiscard]] const Library& library() const { return library_; }
  [[nodiscard]] std::int32_t cell_count() const {
    return static_cast<std::int32_t>(cells_.size());
  }
  [[nodiscard]] std::int32_t net_count() const {
    return static_cast<std::int32_t>(nets_.size());
  }
  [[nodiscard]] std::int32_t terminal_count() const {
    return static_cast<std::int32_t>(terminals_.size());
  }
  [[nodiscard]] const Cell& cell(CellId id) const { return cells_.at(id); }
  [[nodiscard]] const Net& net(NetId id) const { return nets_.at(id); }
  [[nodiscard]] const Terminal& terminal(TerminalId id) const {
    return terminals_.at(id);
  }
  [[nodiscard]] const CellType& cell_type(CellId id) const {
    return library_.type(cells_.at(id).type);
  }
  [[nodiscard]] IdRange<CellId> cells() const {
    return IdRange<CellId>(cells_.size());
  }
  [[nodiscard]] IdRange<NetId> nets() const { return IdRange<NetId>(nets_.size()); }
  [[nodiscard]] IdRange<TerminalId> terminals() const {
    return IdRange<TerminalId>(terminals_.size());
  }

  /// All terminals of a net, driver first.
  [[nodiscard]] std::vector<TerminalId> net_terminals(NetId id) const;

  /// Sum of sink fan-in capacitances Σ Fin(t) of a net, pF (pad loads
  /// included). This multiplies Tf(to) in Eq. (1).
  [[nodiscard]] double net_fanin_cap_pf(NetId id) const;

  /// Driver delay factors (Tf, Td) of a net, taken from the driving output
  /// pin or input pad.
  struct DriverFactors {
    double tf_ps_per_pf = 0;
    double td_ps_per_pf = 0;
  };
  [[nodiscard]] DriverFactors net_driver_factors(NetId id) const;

  /// Fan-in capacitance of one terminal (0 for drivers).
  [[nodiscard]] double terminal_fanin_cap_pf(TerminalId id) const;

  /// Number of path constraints-friendly descriptive name for diagnostics.
  [[nodiscard]] std::string terminal_name(TerminalId id) const;

 private:
  Library library_;
  IdVector<CellId, Cell> cells_;
  IdVector<NetId, Net> nets_;
  IdVector<TerminalId, Terminal> terminals_;
};

}  // namespace bgr

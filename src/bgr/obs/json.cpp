#include "bgr/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "bgr/common/parse.hpp"

namespace bgr {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("JsonValue: not a ") + want);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) type_error("bool");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  if (kind_ != Kind::kInt) type_error("integer");
  return int_;
}

double JsonValue::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ != Kind::kDouble) type_error("number");
  return double_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) type_error("string");
  return string_;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) type_error("array");
  array_.push_back(std::move(v));
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  type_error("array or object");
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (kind_ != Kind::kArray) type_error("array");
  return array_.at(i);
}

JsonValue& JsonValue::set(std::string_view key, JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) type_error("object");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  object_.emplace_back(std::string(key), std::move(v));
  return object_.back().second;
}

JsonValue& JsonValue::operator[](std::string_view key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) type_error("object");
  for (auto& [k, existing] : object_) {
    if (k == key) return existing;
  }
  object_.emplace_back(std::string(key), JsonValue());
  return object_.back().second;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("JsonValue: missing key '" + std::string(key) +
                             "'");
  }
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) type_error("object");
  return object_;
}

std::string json_escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonValue::write(std::ostream& os, int indent) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(indent + 2, ' ') : "";
  const std::string close_pad = pretty ? std::string(indent, ' ') : "";
  const char* sep = pretty ? ",\n" : ", ";
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kInt:
      os << int_;
      break;
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        os << "null";  // JSON has no inf/nan
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      os << buf;
      break;
    }
    case Kind::kString:
      os << '"' << json_escaped(string_) << '"';
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << sep;
        else if (pretty) os << '\n';
        os << pad;
        array_[i].write(os, pretty ? indent + 2 : -1);
      }
      if (pretty) os << '\n' << close_pad;
      os << ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) os << sep;
        else if (pretty) os << '\n';
        os << pad << '"' << json_escaped(object_[i].first) << "\": ";
        object_[i].second.write(os, pretty ? indent + 2 : -1);
      }
      if (pretty) os << '\n' << close_pad;
      os << '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

namespace {

/// Recursive-descent parser over the full document.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    // Containers recurse; a hostile "[[[[..." document must hit this
    // limit before it exhausts the call stack.
    if (depth_ >= kMaxDepth) fail("nesting deeper than 512 levels");
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default:
        return parse_number();
    }
  }

  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    int* depth_;
  };

  JsonValue parse_object() {
    const DepthGuard guard(&depth_);
    expect('{');
    JsonValue obj = JsonValue::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      obj.set(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    const DepthGuard guard(&depth_);
    expect('[');
    JsonValue arr = JsonValue::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are beyond
          // what our own documents ever contain).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    // Checked, locale-independent conversion (std::stod honours the global
    // locale and throws on overflow). Integer literals too large for
    // int64 are still valid JSON: they fall back to the double reading.
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!is_double) {
      if (const auto i = parse_i64(token)) return JsonValue(*i);
    }
    if (const auto d = parse_double(token)) return JsonValue(*d);
    fail("bad number '" + std::string(token) + "'");
  }

  static constexpr int kMaxDepth = 512;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace bgr

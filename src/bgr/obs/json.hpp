#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bgr {

/// Minimal JSON document model for the observability layer: the run
/// report, the Chrome trace emitter and the JSON log sink all build
/// documents out of it, and the tests parse their own output back with
/// json_parse() to validate schema and trace shape. Objects preserve
/// insertion order so serialized reports are stable across runs.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() = default;
  JsonValue(bool v) : kind_(Kind::kBool), bool_(v) {}                 // NOLINT
  JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}           // NOLINT
  JsonValue(std::int32_t v) : JsonValue(static_cast<std::int64_t>(v)) {}  // NOLINT
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}           // NOLINT
  JsonValue(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}  // NOLINT
  JsonValue(const char* v) : JsonValue(std::string(v)) {}             // NOLINT

  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;  // ints convert
  [[nodiscard]] const std::string& as_string() const;

  /// Array access. push_back() turns a null value into an array.
  void push_back(JsonValue v);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const JsonValue& at(std::size_t i) const;

  /// Object access. set()/operator[] turn a null value into an object;
  /// set() replaces an existing key in place (order kept).
  JsonValue& set(std::string_view key, JsonValue v);
  JsonValue& operator[](std::string_view key);
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;

  /// Serializes with 2-space indentation (indent < 0: single line).
  void write(std::ostream& os, int indent = 0) const;
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses a complete JSON document; throws std::runtime_error (with an
/// offset in the message) on malformed input or trailing garbage.
[[nodiscard]] JsonValue json_parse(std::string_view text);

/// Escapes a string for embedding inside a JSON string literal (quotes
/// not included).
[[nodiscard]] std::string json_escaped(std::string_view s);

}  // namespace bgr

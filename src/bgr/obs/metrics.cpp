#include "bgr/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace bgr {

void Histogram::record(std::int64_t v) {
  if (v < 0) v = 0;
  const auto u = static_cast<std::uint64_t>(v);
  const std::int32_t b = static_cast<std::int32_t>(std::bit_width(u));
  buckets_[static_cast<std::size_t>(std::min<std::int32_t>(b, kBuckets - 1))]
      .fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // min_/max_ start at the sentinel extremes, so the CAS loops are exact
  // even when the first samples race.
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::int64_t Histogram::min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0;
}

std::int64_t Histogram::max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0;
}

std::int64_t Histogram::bucket_lo(std::int32_t i) {
  if (i <= 0) return 0;
  return std::int64_t{1} << (i - 1);
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::int64_t>::max(),
             std::memory_order_relaxed);
  max_.store(std::numeric_limits<std::int64_t>::min(),
             std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

JsonValue Histogram::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("count", count());
  out.set("sum", sum());
  out.set("min", min());
  out.set("max", max());
  JsonValue buckets = JsonValue::array();
  for (std::int32_t i = 0; i < kBuckets; ++i) {
    const std::int64_t n = bucket(i);
    if (n == 0) continue;
    JsonValue pair = JsonValue::array();
    pair.push_back(bucket_lo(i));
    pair.push_back(n);
    buckets.push_back(std::move(pair));
  }
  out.set("buckets", std::move(buckets));
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* const instance = new MetricsRegistry();
  return *instance;
}

Counter& MetricsRegistry::counter(std::string_view name, MetricScope scope) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : counters_) {
    if (c->name() == name) {
      if (c->scope() != scope) {
        throw std::runtime_error("metric '" + std::string(name) +
                                 "' re-registered with a different scope");
      }
      return *c;
    }
  }
  counters_.emplace_back(new Counter(std::string(name), scope));
  return *counters_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      MetricScope scope) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& h : histograms_) {
    if (h->name() == name) {
      if (h->scope() != scope) {
        throw std::runtime_error("metric '" + std::string(name) +
                                 "' re-registered with a different scope");
      }
      return *h;
    }
  }
  histograms_.emplace_back(new Histogram(std::string(name), scope));
  return *histograms_.back();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : counters_) c->reset();
  for (const auto& h : histograms_) h->reset();
}

JsonValue MetricsRegistry::scope_json(MetricScope scope) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, JsonValue>> rows;
  for (const auto& c : counters_) {
    if (c->scope() == scope) rows.emplace_back(c->name(), JsonValue(c->value()));
  }
  for (const auto& h : histograms_) {
    if (h->scope() == scope) rows.emplace_back(h->name(), h->to_json());
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  JsonValue out = JsonValue::object();
  for (auto& [name, value] : rows) out.set(name, std::move(value));
  return out;
}

JsonValue MetricsRegistry::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("semantic", scope_json(MetricScope::kSemantic));
  out.set("nondeterministic", scope_json(MetricScope::kNonDeterministic));
  return out;
}

std::vector<MetricsRegistry::CounterSample> MetricsRegistry::counter_samples()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& c : counters_) {
    out.push_back({c->name(), c->scope(), c->value()});
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return out;
}

std::vector<MetricsRegistry::HistogramSample>
MetricsRegistry::histogram_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    HistogramSample sample;
    sample.name = h->name();
    sample.scope = h->scope();
    sample.count = h->count();
    sample.sum = h->sum();
    sample.min = h->min();
    sample.max = h->max();
    for (std::int32_t i = 0; i < Histogram::kBuckets; ++i) {
      sample.buckets[static_cast<std::size_t>(i)] = h->bucket(i);
    }
    out.push_back(std::move(sample));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return out;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& c : counters_) out.push_back(c->name());
  for (const auto& h : histograms_) out.push_back(h->name());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bgr

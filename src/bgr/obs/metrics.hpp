#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "bgr/obs/json.hpp"

namespace bgr {

/// Determinism contract of a metric (see DESIGN.md §9).
///
/// kSemantic values are pure functions of the input design and the
/// algorithm options: bit-identical for any `--threads N`, any scheduling
/// interleave, any wall-clock speed. The determinism ctest and
/// tools/check_run_report.py enforce this across thread counts, so a
/// counter may only be registered kSemantic when every increment is
/// value-driven (edges deleted, vertices relaxed, ...), never
/// schedule-driven (cache hits that depend on which thread got there
/// first, queue depths, timings).
enum class MetricScope { kSemantic, kNonDeterministic };

/// Thread-safe monotonically named counter. add() is a single relaxed
/// fetch_add — cheap enough for hot loops; hot inner loops should still
/// accumulate locally and add once per call (see SmallGraph::dijkstra).
class Counter {
 public:
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] MetricScope scope() const { return scope_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, MetricScope scope)
      : name_(std::move(name)), scope_(scope) {}

  std::string name_;
  MetricScope scope_;
  std::atomic<std::int64_t> value_{0};
};

/// Thread-safe power-of-two histogram over non-negative int64 samples:
/// bucket i counts samples whose bit width is i (bucket 0 holds the value
/// 0; negative samples clamp to 0). Tracks count, sum, min and max
/// exactly; the buckets give the shape.
class Histogram {
 public:
  static constexpr std::int32_t kBuckets = 64;

  void record(std::int64_t v);

  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Minimum / maximum recorded sample; 0 when empty.
  [[nodiscard]] std::int64_t min() const;
  [[nodiscard]] std::int64_t max() const;
  [[nodiscard]] std::int64_t bucket(std::int32_t i) const {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Inclusive lower bound of bucket i (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static std::int64_t bucket_lo(std::int32_t i);
  void reset();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] MetricScope scope() const { return scope_; }

  /// {"count":N,"sum":S,"min":m,"max":M,"buckets":[[lo,count],...]} with
  /// only the non-empty buckets listed.
  [[nodiscard]] JsonValue to_json() const;

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, MetricScope scope)
      : name_(std::move(name)), scope_(scope) {}

  std::string name_;
  MetricScope scope_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  // Sentinel extremes; the accessors report 0 while count() == 0.
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
};

/// Registry of named counters and histograms. Registration is
/// mutex-guarded and idempotent (same name → same object; re-registering
/// with a different scope is an error); the returned references stay
/// valid for the registry's lifetime, so hot call sites cache them in a
/// local static. reset() zeroes every value but keeps the registrations.
///
/// global() is the process-wide instance every subsystem instruments;
/// it is intentionally a leaked singleton so worker threads may still
/// touch counters during static destruction.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] static MetricsRegistry& global();

  Counter& counter(std::string_view name, MetricScope scope);
  Histogram& histogram(std::string_view name, MetricScope scope);

  void reset();

  /// Name → value snapshot of one scope, sorted by name. Counters map to
  /// their integer value, histograms to their to_json() object.
  [[nodiscard]] JsonValue scope_json(MetricScope scope) const;
  /// {"semantic": {...}, "nondeterministic": {...}}.
  [[nodiscard]] JsonValue to_json() const;
  /// Sorted names of every registered metric (both scopes).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Point-in-time value snapshots, sorted by name — the exposition
  /// renderer (obs/telemetry) consumes these instead of holding metric
  /// references so a scrape sees one coherent pass over the registry.
  struct CounterSample {
    std::string name;
    MetricScope scope;
    std::int64_t value;
  };
  struct HistogramSample {
    std::string name;
    MetricScope scope;
    std::int64_t count;
    std::int64_t sum;
    std::int64_t min;
    std::int64_t max;
    std::array<std::int64_t, Histogram::kBuckets> buckets;
  };
  [[nodiscard]] std::vector<CounterSample> counter_samples() const;
  [[nodiscard]] std::vector<HistogramSample> histogram_samples() const;

 private:
  mutable std::mutex mutex_;
  // unique_ptr storage: atomics are immovable and addresses must be
  // stable for the cached references at the instrumentation sites.
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace bgr

#include "bgr/obs/run_report.hpp"

#include <fstream>
#include <stdexcept>

namespace bgr {

RunReport::RunReport(std::string kind) {
  root_ = JsonValue::object();
  root_.set("schema_version", kRunReportSchemaVersion);
  root_.set("kind", std::move(kind));
}

void RunReport::write(std::ostream& os) const { root_.write(os, 0); }

void RunReport::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write run report " + path);
  write(os);
  os << "\n";
}

}  // namespace bgr

#pragma once

#include <iosfwd>
#include <string>

#include "bgr/obs/json.hpp"
#include "bgr/obs/metrics.hpp"

namespace bgr {

/// Version stamp of the run-report JSON layout. Bump when a consumer
/// (tools/check_run_report.py, bench trajectory scripts) would
/// misinterpret an older/newer document.
inline constexpr std::int64_t kRunReportSchemaVersion = 1;

/// Machine-readable record of one run: a versioned JSON document with
/// named top-level sections. The layout contract consumed by
/// tools/check_run_report.py:
///
///   - "schema_version" and "kind" are always present;
///   - everything is deterministic (bit-identical across `--threads N`)
///     EXCEPT the "run" section, any section or phase sub-object named
///     "wall", and "metrics.nondeterministic";
///   - add_metrics() fills "metrics" with the registry split by scope.
///
/// Both bgr_route (`--metrics-out`) and the BENCH_*.json emitters build
/// their documents through this class so the perf trajectory shares one
/// schema.
class RunReport {
 public:
  /// `kind` identifies the producer ("bgr_route", "bench.parallel_scaling",
  /// ...).
  explicit RunReport(std::string kind);

  [[nodiscard]] JsonValue& root() { return root_; }
  [[nodiscard]] const JsonValue& root() const { return root_; }

  /// Top-level object section, created on first use (insertion order is
  /// serialization order).
  [[nodiscard]] JsonValue& section(std::string_view name) {
    return root_[name];
  }

  /// Fills the "metrics" section from a registry (semantic and
  /// nondeterministic sub-objects).
  void add_metrics(const MetricsRegistry& registry) {
    root_.set("metrics", registry.to_json());
  }

  void write(std::ostream& os) const;
  void save(const std::string& path) const;

 private:
  JsonValue root_;
};

}  // namespace bgr

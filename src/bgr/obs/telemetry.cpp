#include "bgr/obs/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <thread>

namespace bgr {

namespace {

constexpr std::int64_t kInt64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kInt64Max = std::numeric_limits<std::int64_t>::max();

}  // namespace

void SlidingHistogram::Epoch::clear() {
  count.store(0, std::memory_order_relaxed);
  sum.store(0, std::memory_order_relaxed);
  min.store(kInt64Max, std::memory_order_relaxed);
  max.store(kInt64Min, std::memory_order_relaxed);
  for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
}

SlidingHistogram::SlidingHistogram(std::int32_t epochs) {
  if (epochs < 1) epochs = 1;
  ring_.reserve(static_cast<std::size_t>(epochs));
  for (std::int32_t i = 0; i < epochs; ++i) {
    ring_.push_back(std::make_unique<Epoch>());
  }
}

void SlidingHistogram::record(std::int64_t v) {
  if (v < 0) v = 0;
  for (;;) {
    Epoch& epoch = *ring_[current_.load(std::memory_order_acquire)];
    // Writer gate (seq_cst pairs with clear_epoch_locked): either this
    // increment lands before the drain check — then rotation waits for us
    // and our writes complete before the zeroing — or it lands after the
    // generation went odd, in which case the load below observes that and
    // we back out. Without the gate, a recorder that loaded `current_`
    // and then stalled across a full window wraparound could interleave
    // with clear() and leave a torn epoch (count without its bucket, min
    // above max).
    epoch.writers.fetch_add(1, std::memory_order_seq_cst);
    if ((epoch.generation.load(std::memory_order_seq_cst) & 1) != 0) {
      epoch.writers.fetch_sub(1, std::memory_order_release);
      std::this_thread::yield();
      continue;  // epoch mid-clear; re-read current_ (republish imminent)
    }
    const auto u = static_cast<std::uint64_t>(v);
    const std::int32_t b = static_cast<std::int32_t>(std::bit_width(u));
    epoch
        .buckets[static_cast<std::size_t>(
            std::min<std::int32_t>(b, kBuckets - 1))]
        .fetch_add(1, std::memory_order_relaxed);
    epoch.sum.fetch_add(v, std::memory_order_relaxed);
    std::int64_t cur = epoch.min.load(std::memory_order_relaxed);
    while (v < cur && !epoch.min.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
    cur = epoch.max.load(std::memory_order_relaxed);
    while (v > cur && !epoch.max.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
    // Count last, released: a snapshot that observes this sample's count
    // also observes its bucket/min/max contributions, so a half-recorded
    // sample can never surface as count>0 with an empty min/max.
    epoch.count.fetch_add(1, std::memory_order_release);
    epoch.writers.fetch_sub(1, std::memory_order_release);
    return;
  }
}

void SlidingHistogram::clear_epoch_locked(Epoch& epoch) {
  // Seqlock-style clear: go odd so new recorders bounce off, drain the
  // in-flight ones (record() is a handful of atomic ops, so the wait is
  // bounded), zero, go even. Recorders that slipped in before the odd
  // flip finish before the zeroing; the zeroed state is published to
  // later recorders by the even flip they acquire.
  epoch.generation.fetch_add(1, std::memory_order_seq_cst);
  while (epoch.writers.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  epoch.clear();
  epoch.generation.fetch_add(1, std::memory_order_seq_cst);
}

void SlidingHistogram::advance() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t next =
      (current_.load(std::memory_order_relaxed) + 1) % ring_.size();
  // Clear *before* publishing: a racing record() must never land in a
  // bucket that is about to be zeroed out from under it. A record that
  // still targets the outgoing epoch simply counts toward the oldest
  // window slice — acceptable skew for a rolling estimate.
  clear_epoch_locked(*ring_[next]);
  current_.store(next, std::memory_order_release);
}

void SlidingHistogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& epoch : ring_) clear_epoch_locked(*epoch);
}

double SlidingHistogram::quantile(const std::int64_t* buckets,
                                  std::int64_t count, double q,
                                  std::int64_t min_value,
                                  std::int64_t max_value) {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, ceil — p50 of 2 samples is the 1st).
  const auto rank = static_cast<std::int64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count))));
  std::int64_t seen = 0;
  for (std::int32_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] < rank) {
      seen += buckets[i];
      continue;
    }
    // The rank-th sample lies in bucket i: interpolate linearly between
    // the bucket's value bounds by the rank's position inside the bucket.
    const double lo = static_cast<double>(Histogram::bucket_lo(i));
    const double hi =
        i == 0 ? 0.0 : static_cast<double>(Histogram::bucket_lo(i)) * 2.0 - 1.0;
    const double frac = buckets[i] > 1
                            ? static_cast<double>(rank - seen - 1) /
                                  static_cast<double>(buckets[i] - 1)
                            : 0.5;
    double estimate = lo + (hi - lo) * frac;
    estimate = std::max(estimate, static_cast<double>(min_value));
    estimate = std::min(estimate, static_cast<double>(max_value));
    return estimate;
  }
  return static_cast<double>(max_value);
}

SlidingHistogram::Snapshot SlidingHistogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;
  std::int64_t min_value = kInt64Max;
  std::int64_t max_value = kInt64Min;
  for (const auto& epoch : ring_) {
    // Acquire pairs with record()'s count-last release: a visible count
    // implies that sample's bucket/min/max writes are visible too.
    out.count += epoch->count.load(std::memory_order_acquire);
    out.sum += epoch->sum.load(std::memory_order_relaxed);
    min_value =
        std::min(min_value, epoch->min.load(std::memory_order_relaxed));
    max_value =
        std::max(max_value, epoch->max.load(std::memory_order_relaxed));
    for (std::int32_t i = 0; i < kBuckets; ++i) {
      out.buckets[i] += epoch->buckets[i].load(std::memory_order_relaxed);
    }
  }
  if (out.count > 0) {
    out.min = min_value;
    out.max = max_value;
    out.p50 = quantile(out.buckets, out.count, 0.50, out.min, out.max);
    out.p90 = quantile(out.buckets, out.count, 0.90, out.min, out.max);
    out.p99 = quantile(out.buckets, out.count, 0.99, out.min, out.max);
  }
  return out;
}

std::string prometheus_name(std::string_view name) {
  std::string out = "bgr_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prometheus_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

bool watchdog_should_flag(double elapsed_us, double p99_us, double multiple,
                          std::int64_t window_count,
                          std::int64_t min_samples) {
  if (multiple < 0.0) return false;  // negative multiple disables
  if (window_count < min_samples) return false;
  return elapsed_us > multiple * p99_us;
}

void TelemetryHub::add_gauge(std::string name, std::string help, GaugeFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_.push_back({std::move(name), std::move(help), std::move(fn)});
}

void TelemetryHub::add_window(std::string name, std::string help,
                              const SlidingHistogram* window) {
  std::lock_guard<std::mutex> lock(mutex_);
  windows_.push_back({std::move(name), std::move(help), window});
}

namespace {

const char* scope_label(MetricScope scope) {
  return scope == MetricScope::kSemantic ? "semantic" : "nondeterministic";
}

/// Doubles print shortest-round-trip-ish; integral values drop the ".0"
/// so counter samples stay bit-stable text across runs.
std::string format_value(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void render_histogram(std::ostringstream& os, const std::string& pname,
                      const char* scope, std::int64_t count, std::int64_t sum,
                      const std::int64_t* buckets) {
  os << "# TYPE " << pname << " histogram\n";
  std::int64_t cumulative = 0;
  for (std::int32_t i = 0; i < Histogram::kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    cumulative += buckets[i];
    // Bucket i spans [2^(i-1), 2^i - 1]; le is the inclusive upper bound.
    const std::int64_t le =
        i == 0 ? 0 : (Histogram::bucket_lo(i) * 2 - 1);
    os << pname << "_bucket{scope=\"" << scope << "\",le=\"" << le << "\"} "
       << cumulative << "\n";
  }
  os << pname << "_bucket{scope=\"" << scope << "\",le=\"+Inf\"} " << count
     << "\n";
  os << pname << "_sum{scope=\"" << scope << "\"} " << sum << "\n";
  os << pname << "_count{scope=\"" << scope << "\"} " << count << "\n";
}

}  // namespace

std::string TelemetryHub::render(const MetricsRegistry& registry) const {
  std::ostringstream os;

  for (const MetricsRegistry::CounterSample& c : registry.counter_samples()) {
    const std::string pname = prometheus_name(c.name);
    os << "# TYPE " << pname << " counter\n";
    os << pname << "{scope=\"" << scope_label(c.scope) << "\"} " << c.value
       << "\n";
  }
  for (const MetricsRegistry::HistogramSample& h :
       registry.histogram_samples()) {
    render_histogram(os, prometheus_name(h.name), scope_label(h.scope),
                     h.count, h.sum, h.buckets.data());
  }

  std::lock_guard<std::mutex> lock(mutex_);
  for (const GaugeEntry& gauge : gauges_) {
    const std::string pname = prometheus_name(gauge.name);
    if (!gauge.help.empty()) {
      os << "# HELP " << pname << " " << gauge.help << "\n";
    }
    os << "# TYPE " << pname << " gauge\n";
    for (const GaugeSample& sample : gauge.fn()) {
      os << pname << "{scope=\"nondeterministic\"";
      for (const auto& [key, value] : sample.labels) {
        os << "," << key << "=\"" << prometheus_label_value(value) << "\"";
      }
      os << "} " << format_value(sample.value) << "\n";
    }
  }
  for (const WindowEntry& window : windows_) {
    const std::string pname = prometheus_name(window.name);
    const SlidingHistogram::Snapshot snap = window.window->snapshot();
    if (!window.help.empty()) {
      os << "# HELP " << pname << " " << window.help << "\n";
    }
    os << "# TYPE " << pname << " summary\n";
    for (const auto& [q, value] :
         {std::pair<const char*, double>{"0.5", snap.p50},
          std::pair<const char*, double>{"0.9", snap.p90},
          std::pair<const char*, double>{"0.99", snap.p99}}) {
      os << pname << "{scope=\"nondeterministic\",quantile=\"" << q << "\"} "
         << format_value(value) << "\n";
    }
    os << pname << "_sum{scope=\"nondeterministic\"} " << snap.sum << "\n";
    os << pname << "_count{scope=\"nondeterministic\"} " << snap.count << "\n";
  }
  return os.str();
}

}  // namespace bgr

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bgr/obs/metrics.hpp"

namespace bgr {

/// Live-telemetry companions to the post-run MetricsRegistry (DESIGN.md
/// §14): rolling-window latency histograms with quantile estimates, pull
/// gauges sampled at scrape time, and a Prometheus text-format renderer
/// that exposes all of it (plus the registry) on the bgr_serve admin
/// endpoint. Everything here is operational instrumentation — windows and
/// gauges are wall-clock/schedule shaped and therefore always outside the
/// kSemantic determinism contract; the renderer labels every sample with
/// its scope so scrapers can tell the two namespaces apart.

/// Rolling-window histogram: a ring of `epochs` power-of-two bucket
/// arrays (same bucketing as obs::Histogram — bucket i counts samples of
/// bit width i). record() lands in the current epoch; advance() rotates
/// the ring, dropping the oldest epoch, so at any instant the merged view
/// covers the last `epochs` advance periods. The caller owns the advance
/// cadence (the serve scheduler's housekeeping thread ticks once per
/// second), making the window length = epochs × tick.
///
/// record() takes no lock (atomics on the current epoch, plus a bounded
/// backoff in the rare case its target epoch is mid-clear); advance() and
/// snapshot() take a small mutex that only serializes rotation against
/// snapshotting, never against recording. Rotation is guarded by a
/// per-epoch generation + in-flight-writer gate so a recorder that went
/// stale across a full window wraparound can never interleave with the
/// zeroing of its epoch and leave a torn slice (count without buckets,
/// min above max) visible to a concurrent scrape.
class SlidingHistogram {
 public:
  static constexpr std::int32_t kBuckets = Histogram::kBuckets;

  explicit SlidingHistogram(std::int32_t epochs = 10);

  void record(std::int64_t v);
  /// Rotates the ring: the oldest epoch is zeroed and becomes current.
  void advance();
  /// Drops every epoch (the window restarts empty).
  void reset();

  [[nodiscard]] std::int32_t epochs() const {
    return static_cast<std::int32_t>(ring_.size());
  }

  /// Merged view over the whole window with quantile estimates
  /// interpolated inside the power-of-two buckets. Quantiles are 0 while
  /// the window is empty.
  struct Snapshot {
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    std::int64_t buckets[kBuckets] = {};
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Quantile estimate (q in [0,1]) from power-of-two bucket counts:
  /// linear interpolation across the bucket holding the q-th sample,
  /// clamped to [min_value, max_value]. Exposed for reuse/testing.
  [[nodiscard]] static double quantile(const std::int64_t* buckets,
                                       std::int64_t count, double q,
                                       std::int64_t min_value,
                                       std::int64_t max_value);

 private:
  struct Epoch {
    std::atomic<std::int64_t> count{0};
    std::atomic<std::int64_t> sum{0};
    std::atomic<std::int64_t> min{std::numeric_limits<std::int64_t>::max()};
    std::atomic<std::int64_t> max{std::numeric_limits<std::int64_t>::min()};
    std::atomic<std::int64_t> buckets[kBuckets] = {};
    /// Recorders currently writing this epoch; rotation drains it to zero
    /// before zeroing the fields.
    std::atomic<std::int64_t> writers{0};
    /// Bumped to odd while the epoch is being cleared, even when stable;
    /// a recorder that catches it odd backs out and re-reads `current_`.
    std::atomic<std::uint64_t> generation{0};
    void clear();
  };
  void clear_epoch_locked(Epoch& epoch);

  std::vector<std::unique_ptr<Epoch>> ring_;
  std::atomic<std::size_t> current_{0};
  mutable std::mutex mutex_;  // serializes advance() against snapshot()
};

/// One gauge sample: value plus optional labels ({"client","stdio"}, ...).
struct GaugeSample {
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
};

/// Scrape-time telemetry registry for one exposition endpoint: pull
/// gauges (a callback producing samples, invoked per scrape) and named
/// rolling-latency windows. Registration happens at server wiring time;
/// render() may be called concurrently with record()/advance() on the
/// windows. Gauge callbacks run on the scrape thread and may take their
/// owner's locks (queue depths, cache sizes), so they must not call back
/// into the hub.
class TelemetryHub {
 public:
  using GaugeFn = std::function<std::vector<GaugeSample>()>;

  /// `name` is a raw metric name ("serve.queue_depth"); it is sanitized
  /// into the Prometheus namespace ("bgr_serve_queue_depth") at render
  /// time. `help` becomes the # HELP line.
  void add_gauge(std::string name, std::string help, GaugeFn fn);
  /// `window` must outlive the hub. Rendered as a Prometheus summary
  /// (quantile series + _count/_sum over the rolling window).
  void add_window(std::string name, std::string help,
                  const SlidingHistogram* window);

  /// Prometheus text exposition (format version 0.0.4) of `registry`
  /// (counters and histograms, each labeled scope="semantic" or
  /// scope="nondeterministic") plus every registered gauge and window
  /// (always scope="nondeterministic" — they are wall-clock shaped).
  [[nodiscard]] std::string render(const MetricsRegistry& registry) const;

 private:
  struct GaugeEntry {
    std::string name;
    std::string help;
    GaugeFn fn;
  };
  struct WindowEntry {
    std::string name;
    std::string help;
    const SlidingHistogram* window;
  };

  mutable std::mutex mutex_;
  std::vector<GaugeEntry> gauges_;
  std::vector<WindowEntry> windows_;
};

/// "route.deleted_edges" → "bgr_route_deleted_edges": prefixed and every
/// character outside [a-zA-Z0-9_:] mapped to '_'.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Escapes a Prometheus label value (backslash, quote, newline).
[[nodiscard]] std::string prometheus_label_value(std::string_view value);

/// Slow-job watchdog predicate: flag a job whose elapsed time exceeds
/// `multiple` × the rolling p99, once at least `min_samples` completions
/// back the estimate (an empty window flags nothing unless min_samples is
/// 0, which makes every running job flag — useful in tests).
[[nodiscard]] bool watchdog_should_flag(double elapsed_us, double p99_us,
                                        double multiple,
                                        std::int64_t window_count,
                                        std::int64_t min_samples);

}  // namespace bgr

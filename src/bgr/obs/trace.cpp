#include "bgr/obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace bgr {

Trace& Trace::global() {
  static Trace* const instance = new Trace();
  return *instance;
}

void Trace::enable() {
  t0_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void Trace::disable() { enabled_.store(false, std::memory_order_release); }

std::int64_t Trace::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

Trace::ThreadBuf& Trace::local_buf() {
  thread_local ThreadBuf* cached = nullptr;
  if (cached == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<ThreadBuf>());
    cached = buffers_.back().get();
    cached->tid = static_cast<std::int32_t>(buffers_.size()) - 1;
  }
  return *cached;
}

std::int32_t Trace::current_thread_id() { return local_buf().tid; }

void Trace::record_complete(std::string name, const char* category,
                            std::int64_t ts_us, std::int64_t dur_us,
                            std::int64_t seq) {
  ThreadBuf& buf = local_buf();
  Event ev;
  ev.name = std::move(name);
  ev.category = category;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = buf.tid;
  ev.seq = seq;
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(std::move(ev));
}

std::vector<Trace::Event> Trace::events() const {
  std::vector<Event> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buf->mutex);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;  // parents first
    return a.seq < b.seq;  // start order: total, parents before children
  });
  return out;
}

JsonValue Trace::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("displayTimeUnit", "ms");
  JsonValue arr = JsonValue::array();

  std::int32_t max_tid = -1;
  for (const Event& ev : events()) {
    JsonValue e = JsonValue::object();
    e.set("name", ev.name);
    e.set("cat", ev.category);
    e.set("ph", "X");
    e.set("ts", ev.ts_us);
    e.set("dur", ev.dur_us);
    e.set("pid", std::int64_t{1});
    e.set("tid", ev.tid);
    arr.push_back(std::move(e));
    max_tid = std::max(max_tid, ev.tid);
  }
  for (std::int32_t tid = 0; tid <= max_tid; ++tid) {
    JsonValue meta = JsonValue::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", std::int64_t{1});
    meta.set("tid", tid);
    JsonValue args = JsonValue::object();
    args.set("name", tid == 0 ? std::string("main") :
                                "worker-" + std::to_string(tid));
    meta.set("args", std::move(args));
    arr.push_back(std::move(meta));
  }
  doc.set("traceEvents", std::move(arr));
  return doc;
}

void Trace::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write trace file " + path);
  to_json().write(os, 0);
  os << "\n";
}

void Trace::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  seq_.store(0, std::memory_order_relaxed);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
  }
}

}  // namespace bgr

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "bgr/obs/json.hpp"

namespace bgr {

/// Span-based tracer emitting Chrome trace-event JSON (loadable in
/// Perfetto / chrome://tracing). Disabled by default; when disabled every
/// instrumentation point costs one relaxed atomic load and nothing is
/// recorded. When enabled, spans land in per-thread buffers (one
/// uncontended mutex each) so pool workers never serialize against each
/// other, and each buffer carries a small dense thread id.
///
/// global() is a leaked singleton for the same reason as
/// MetricsRegistry::global(): pool workers may record during teardown.
class Trace {
 public:
  struct Event {
    std::string name;
    const char* category;  // static string
    std::int64_t ts_us;    // since enable()
    std::int64_t dur_us;
    std::int32_t tid;
    std::int64_t seq;  // span start order; unique across threads
  };

  Trace() = default;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  [[nodiscard]] static Trace& global();

  /// Starts recording; the enable() instant is timestamp 0.
  void enable();
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since enable() on the steady clock.
  [[nodiscard]] std::int64_t now_us() const;

  /// Records a complete ('X') event on the calling thread's buffer.
  /// `category` must be a static string; `seq` is the next_seq() ticket
  /// drawn when the span started.
  void record_complete(std::string name, const char* category,
                       std::int64_t ts_us, std::int64_t dur_us,
                       std::int64_t seq);

  /// Start-order ticket for a new span. Microsecond timestamps tie on
  /// fast hardware; the ticket makes the events() order total (an
  /// enclosing span starts first, so it sorts before its children even
  /// when ts and dur tie).
  [[nodiscard]] std::int64_t next_seq() {
    return seq_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Drains nothing: snapshots all recorded events sorted by
  /// (ts, -dur, seq) — the order chrome://tracing expects and the
  /// validity test checks nesting in; seq makes it deterministic.
  [[nodiscard]] std::vector<Event> events() const;

  /// {"displayTimeUnit":"ms","traceEvents":[...]} with one 'X' entry per
  /// span plus thread_name metadata records.
  [[nodiscard]] JsonValue to_json() const;
  void save(const std::string& path) const;

  /// Drops all recorded events (buffers and thread ids survive).
  void clear();

  /// Dense id of the calling thread (0 = first thread seen).
  [[nodiscard]] std::int32_t current_thread_id();

 private:
  struct ThreadBuf {
    std::int32_t tid = 0;
    std::mutex mutex;
    std::vector<Event> events;
  };

  ThreadBuf& local_buf();

  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> seq_{0};
  std::chrono::steady_clock::time_point t0_{};
  mutable std::mutex mutex_;  // guards buffers_
  std::vector<std::unique_ptr<ThreadBuf>> buffers_;
};

/// RAII span against Trace::global(). Construction snapshots the start
/// time only when tracing is enabled; destruction records the complete
/// event. Spans on one thread destruct LIFO, so per-thread events are
/// strictly nested by construction.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, const char* category = "phase") {
    if (!Trace::global().enabled()) return;
    name_.assign(name);
    category_ = category;
    seq_ = Trace::global().next_seq();
    start_us_ = Trace::global().now_us();
  }
  ~ScopedSpan() {
    if (start_us_ < 0) return;
    Trace& trace = Trace::global();
    trace.record_complete(std::move(name_), category_, start_us_,
                          trace.now_us() - start_us_, seq_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::string name_;
  const char* category_ = "";
  std::int64_t start_us_ = -1;  // -1: tracing was off at construction
  std::int64_t seq_ = 0;
};

}  // namespace bgr

#include "bgr/place/force_placer.hpp"

#include <algorithm>
#include <limits>

namespace bgr {

PlacerRows force_directed_rows(const Netlist& netlist, std::int32_t rows,
                               double level_span,
                               const std::vector<double>& level_hint,
                               const std::vector<double>& col_hint, Rng& rng,
                               const PlacerOptions& options) {
  BGR_CHECK(rows >= 1);
  const auto n_cells = static_cast<std::size_t>(netlist.cell_count());
  std::vector<std::vector<CellId>> net_cells(
      static_cast<std::size_t>(netlist.net_count()));
  for (const TerminalId t : netlist.terminals()) {
    const Terminal& term = netlist.terminal(t);
    if (term.kind == TerminalKind::kCellPin) {
      net_cells[term.net.index()].push_back(term.cell);
    }
  }
  // Pad pulls: input pads sit above the top row, output pads below row 0.
  std::vector<double> pad_row_pull(static_cast<std::size_t>(netlist.net_count()),
                                   -1.0);
  for (const TerminalId t : netlist.terminals()) {
    const Terminal& term = netlist.terminal(t);
    if (term.kind == TerminalKind::kPadIn) {
      pad_row_pull[term.net.index()] = static_cast<double>(rows) - 0.5;
    } else if (term.kind == TerminalKind::kPadOut) {
      pad_row_pull[term.net.index()] = -0.5;
    }
  }

  std::vector<double> row_pos(n_cells);
  std::vector<double> x_pos(n_cells);
  const double span = std::max(1.0, level_span);
  for (std::size_t i = 0; i < n_cells; ++i) {
    const double hint = i < level_hint.size() ? level_hint[i] : span / 2;
    row_pos[i] = hint / span * (static_cast<double>(rows) - 1.0) +
                 rng.uniform_real(-0.5, 0.5);
    const double col = i < col_hint.size() ? col_hint[i] : rng.uniform01();
    x_pos[i] = col * 1000.0 + rng.uniform_real(-10.0, 10.0);
  }

  auto respread_x = [&]() {
    std::vector<std::size_t> idx(n_cells);
    for (std::size_t i = 0; i < n_cells; ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return x_pos[a] < x_pos[b];
    });
    for (std::size_t r = 0; r < idx.size(); ++r) {
      x_pos[idx[r]] = 1000.0 * (static_cast<double>(r) + 0.5) /
                      static_cast<double>(std::max<std::size_t>(n_cells, 1));
    }
  };

  for (std::int32_t pass = 0; pass < options.passes; ++pass) {
    std::vector<double> acc_row(n_cells, 0.0);
    std::vector<double> acc_x(n_cells, 0.0);
    std::vector<double> cnt(n_cells, 0.0);
    for (const NetId n : netlist.nets()) {
      const auto& members = net_cells[n.index()];
      if (members.empty() || members.size() > options.fanout_skip) continue;
      double mr = 0.0;
      double mx = 0.0;
      for (const CellId c : members) {
        mr += row_pos[c.index()];
        mx += x_pos[c.index()];
      }
      double weight = static_cast<double>(members.size());
      if (pad_row_pull[n.index()] >= -0.5) {
        mr += pad_row_pull[n.index()];
        mx += mx / weight;  // pads float in x: follow the net centre
        weight += 1.0;
      }
      mr /= weight;
      mx /= weight;
      for (const CellId c : members) {
        acc_row[c.index()] += mr;
        acc_x[c.index()] += mx;
        cnt[c.index()] += 1.0;
      }
    }
    for (std::size_t i = 0; i < n_cells; ++i) {
      if (cnt[i] == 0.0) continue;
      row_pos[i] =
          options.damping * row_pos[i] + (1.0 - options.damping) * acc_row[i] / cnt[i];
      x_pos[i] =
          options.damping * x_pos[i] + (1.0 - options.damping) * acc_x[i] / cnt[i];
    }
    if (options.respread_every > 0 &&
        pass % options.respread_every == options.respread_every - 1) {
      respread_x();
    }
  }
  respread_x();

  // Rank into rows of equal width capacity.
  std::vector<CellId> by_row;
  for (const CellId c : netlist.cells()) by_row.push_back(c);
  std::stable_sort(by_row.begin(), by_row.end(), [&](CellId a, CellId b) {
    return row_pos[a.index()] < row_pos[b.index()];
  });
  double total = 0;
  for (const CellId c : by_row) total += netlist.cell_type(c).width();
  const double share = total / rows;
  PlacerRows result;
  result.row_order.resize(static_cast<std::size_t>(rows));
  std::int32_t row = 0;
  double filled = 0;
  for (const CellId c : by_row) {
    if (filled >= share * (row + 1) && row + 1 < rows) ++row;
    result.row_order[static_cast<std::size_t>(row)].push_back(c);
    filled += netlist.cell_type(c).width();
  }
  for (auto& cells : result.row_order) {
    std::stable_sort(cells.begin(), cells.end(), [&](CellId a, CellId b) {
      return x_pos[a.index()] < x_pos[b.index()];
    });
  }
  return result;
}

double ordering_hpwl(const Netlist& netlist, const PlacerRows& rows) {
  // Abstract coordinates: row index for y, running width for x.
  const auto n_cells = static_cast<std::size_t>(netlist.cell_count());
  std::vector<double> x(n_cells, 0.0);
  std::vector<double> y(n_cells, 0.0);
  for (std::size_t r = 0; r < rows.row_order.size(); ++r) {
    double run = 0.0;
    for (const CellId c : rows.row_order[r]) {
      x[c.index()] = run;
      y[c.index()] = static_cast<double>(r);
      run += netlist.cell_type(c).width();
    }
  }
  double total = 0.0;
  constexpr double kRowWeight = 20.0;  // a row step costs about this many pitches
  for (const NetId n : netlist.nets()) {
    double min_x = std::numeric_limits<double>::infinity();
    double max_x = -min_x;
    double min_y = min_x;
    double max_y = -min_x;
    bool any = false;
    for (const TerminalId t : netlist.net_terminals(n)) {
      const Terminal& term = netlist.terminal(t);
      if (term.kind != TerminalKind::kCellPin) continue;
      any = true;
      min_x = std::min(min_x, x[term.cell.index()]);
      max_x = std::max(max_x, x[term.cell.index()]);
      min_y = std::min(min_y, y[term.cell.index()]);
      max_y = std::max(max_y, y[term.cell.index()]);
    }
    if (any) total += (max_x - min_x) + kRowWeight * (max_y - min_y);
  }
  return total;
}

}  // namespace bgr

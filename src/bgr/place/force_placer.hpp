#pragma once

#include <vector>

#include "bgr/common/ids.hpp"
#include "bgr/common/rng.hpp"
#include "bgr/netlist/netlist.hpp"

namespace bgr {

struct PlacerOptions {
  std::int32_t passes = 24;
  /// Damping of the Gauss-Seidel update: new = damping·old + (1−damping)·pull.
  double damping = 0.4;
  /// Nets with more members are ignored as placement pulls (clock-like
  /// nets would otherwise collapse the solution).
  std::size_t fanout_skip = 12;
  /// Re-spread x to uniform rank positions every N passes (prevents
  /// collapse while preserving the order that matters for packing).
  std::int32_t respread_every = 4;
};

/// Row assignment and in-row ordering produced by the placer; packing
/// cells to concrete coordinates is the caller's job.
struct PlacerRows {
  std::vector<std::vector<CellId>> row_order;  // per row, left to right
};

/// Force-directed standard-cell ordering: a few damped neighbour-mean
/// passes over the net hypergraph (pads pull toward their boundary), then
/// rank-based partitioning into `rows` rows of equal width capacity.
/// `level_hint` (0..levels, per cell) seeds the row dimension — a
/// designer's datapath ordering; `col_hint` (0..1, per cell) seeds x.
/// Either may be empty. Deterministic in `rng`.
[[nodiscard]] PlacerRows force_directed_rows(
    const Netlist& netlist, std::int32_t rows, double level_span,
    const std::vector<double>& level_hint, const std::vector<double>& col_hint,
    Rng& rng, const PlacerOptions& options = {});

/// Total half-perimeter wire length (in abstract placer units) of a row
/// assignment — the quality metric the placer minimizes. Useful for
/// comparing option settings before committing to a packing.
[[nodiscard]] double ordering_hpwl(const Netlist& netlist,
                                   const PlacerRows& rows);

}  // namespace bgr

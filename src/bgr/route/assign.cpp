#include "bgr/route/assign.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "bgr/common/log.hpp"
#include "bgr/common/natural_order.hpp"

namespace bgr {

std::int32_t net_group_width(const Netlist& netlist, NetId net) {
  const Net& n = netlist.net(net);
  if (n.is_differential()) return n.diff_primary ? 2 : 0;
  return n.pitch_width;
}

namespace {

/// Mean terminal column of a net, used as the outward-search centre.
std::int32_t net_center_column(const Netlist& netlist,
                               const Placement& placement, NetId net) {
  std::int64_t sum = 0;
  std::int64_t count = 0;
  for (const TerminalId term : netlist.net_terminals(net)) {
    sum += terminal_geom(netlist, placement, term).column;
    ++count;
  }
  return static_cast<std::int32_t>(sum / std::max<std::int64_t>(count, 1));
}

/// Net processing order: ascending key, wide (multi-pitch) groups first on
/// ties so they still find contiguous columns, then the canonical
/// name-based order (natural_order.hpp). The tie keys — unlike the raw
/// ids — survive a relabeling of the netlist, so the assignment (and
/// everything downstream of it) is invariant under net/cell-id
/// permutation. The name order matters most in the unconstrained
/// baseline, where every key ties and it alone sets the sweep.
std::vector<NetId> ordered_nets(const Netlist& netlist,
                                const IdVector<NetId, double>& order) {
  std::vector<NetId> nets;
  nets.reserve(static_cast<std::size_t>(netlist.net_count()));
  for (const NetId n : netlist.nets()) nets.push_back(n);
  std::stable_sort(nets.begin(), nets.end(), [&](NetId a, NetId b) {
    if (order.at(a) != order.at(b)) return order.at(a) < order.at(b);
    const std::int32_t wa = netlist.net(a).pitch_width;
    const std::int32_t wb = netlist.net(b).pitch_width;
    if (wa != wb) return wa > wb;
    return processing_order_less(netlist.net(a).name, netlist.net(b).name);
  });
  return nets;
}

}  // namespace

namespace {

/// Columns of a pad's window ordered by preference: nearest to the net's
/// cell centroid first, ties toward the left edge.
std::vector<std::int32_t> preferred_columns(const PadSite& site,
                                            std::int32_t center) {
  std::vector<std::int32_t> columns;
  columns.reserve(static_cast<std::size_t>(site.window.hi - site.window.lo) +
                  1);
  for (std::int32_t x = site.window.lo; x <= site.window.hi; ++x) {
    columns.push_back(x);
  }
  std::stable_sort(columns.begin(), columns.end(),
                   [center](std::int32_t a, std::int32_t b) {
                     return std::abs(a - center) < std::abs(b - center);
                   });
  return columns;
}

}  // namespace

void assign_external_pins(const Netlist& netlist, Placement& placement) {
  // Deterministic order: pad terminal id.
  std::vector<TerminalId> pads;
  for (const auto& [pad, site] : placement.pad_sites()) {
    (void)site;
    pads.push_back(pad);
  }
  std::sort(pads.begin(), pads.end());

  // Pads on one side compete for distinct edge columns inside overlapping
  // windows. The nearest-free-column greedy is kept as the primary rule,
  // but it is not complete: a pad pulled toward its net centroid can
  // exhaust a later pad's whole window even when a valid assignment
  // exists. When the greedy strands a pad, Kuhn's augmenting paths with
  // preference-ordered adjacency displace earlier pads just enough to
  // admit it.
  std::vector<std::vector<std::int32_t>> prefs(pads.size());
  // owner_top/bot[x]: index into `pads` currently holding column x.
  const auto npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> owner_top(
      static_cast<std::size_t>(placement.width()), npos);
  std::vector<std::size_t> owner_bot(owner_top);

  for (std::size_t i = 0; i < pads.size(); ++i) {
    const PadSite& site = placement.pad_site(pads[i]);
    // Centre over the net's cell terminals (pads excluded to avoid the
    // chicken-and-egg on unassigned pads).
    const NetId net = netlist.terminal(pads[i]).net;
    std::int64_t sum = 0;
    std::int64_t count = 0;
    for (const TerminalId term : netlist.net_terminals(net)) {
      if (netlist.terminal(term).kind != TerminalKind::kCellPin) continue;
      sum += terminal_geom(netlist, placement, term).column;
      ++count;
    }
    const std::int32_t center =
        count > 0 ? static_cast<std::int32_t>(sum / count)
                  : (site.window.lo + site.window.hi) / 2;
    prefs[i] = preferred_columns(site, center);
  }

  std::vector<char> visited(pads.size(), 0);
  auto augment = [&](auto&& self, std::size_t i,
                     std::vector<std::size_t>& owner) -> bool {
    visited[i] = 1;
    for (const std::int32_t x : prefs[i]) {
      const auto col = static_cast<std::size_t>(x);
      if (owner[col] == npos ||
          (!visited[owner[col]] && self(self, owner[col], owner))) {
        owner[col] = i;
        placement.pad_site(pads[i]).assigned_x = x;
        return true;
      }
    }
    return false;
  };

  for (std::size_t i = 0; i < pads.size(); ++i) {
    auto& owner = placement.pad_site(pads[i]).top ? owner_top : owner_bot;
    bool placed = false;
    for (const std::int32_t x : prefs[i]) {
      if (owner[static_cast<std::size_t>(x)] != npos) continue;
      owner[static_cast<std::size_t>(x)] = i;
      placement.pad_site(pads[i]).assigned_x = x;
      placed = true;
      break;
    }
    if (placed) continue;
    std::fill(visited.begin(), visited.end(), 0);
    BGR_CHECK_MSG(augment(augment, i, owner),
                  "no free pad column in window");
  }
}

AssignmentOutcome assign_feedthroughs(const Netlist& netlist,
                                      const Placement& placement,
                                      const IdVector<NetId, double>& order,
                                      bool respect_flags) {
  AssignmentOutcome outcome{
      FeedthroughAssignment(netlist.net_count()),
      FeedDemand(placement.row_count()),
      0};

  // Per-row column occupancy for this round.
  const auto width = static_cast<std::size_t>(placement.width());
  std::vector<std::vector<bool>> taken(
      static_cast<std::size_t>(placement.row_count()),
      std::vector<bool>(width, false));

  // A group of `w` columns starting at x is usable when every column is in
  // bounds, unblocked, untaken and flag-compatible. Score 0 when every
  // column carries the matching width flag (preferred), 1 otherwise.
  auto group_score = [&](RowId row, std::int32_t x, std::int32_t w) -> int {
    if (x < 0 || x + w > placement.width()) return -1;
    bool all_flagged = true;
    for (std::int32_t c = x; c < x + w; ++c) {
      if (placement.column_blocked(row, c)) return -1;
      if (taken[static_cast<std::size_t>(row.value())][static_cast<std::size_t>(c)])
        return -1;
      const std::int32_t flag = placement.column_flag(row, c);
      if (respect_flags && flag != 0 && flag != w) return -1;
      if (flag != w) all_flagged = false;
    }
    return all_flagged ? 0 : 1;
  };

  // Outward search from `center`: nearest usable group, preferring fully
  // flagged groups at equal-or-smaller distance.
  auto find_group = [&](RowId row, std::int32_t center, std::int32_t w,
                        std::int32_t prefer) -> std::int32_t {
    if (prefer >= 0 && group_score(row, prefer, w) >= 0) return prefer;
    std::int32_t best = -1;
    int best_score = std::numeric_limits<int>::max();
    std::int64_t best_dist = std::numeric_limits<std::int64_t>::max();
    const std::int32_t reach = placement.width();
    for (std::int32_t d = 0; d < reach; ++d) {
      for (const std::int32_t x : {center - d, center + d}) {
        const int score = group_score(row, x, w);
        if (score < 0) continue;
        if (score < best_score || (score == best_score && d < best_dist)) {
          best_score = score;
          best_dist = d;
          best = x;
        }
      }
      // A perfect (fully flagged) hit at distance d cannot be beaten later.
      if (best_score == 0) break;
      // An unflagged hit can still be beaten by a flagged one, but only
      // when flags matter; otherwise stop at the first hit.
      if (best >= 0 && !respect_flags) break;
      if (best >= 0 && d > best_dist + 64) break;  // bounded flag search
    }
    return best;
  };

  // Two sweeps in net order: required crossings first (their failures
  // drive feed-cell insertion), then optional crossings from the leftover
  // columns (failures only cost routing freedom, never completeness).
  const auto nets = ordered_nets(netlist, order);
  for (const bool required_sweep : {true, false}) {
    for (const NetId net : nets) {
      const std::int32_t w = net_group_width(netlist, net);
      if (w == 0) continue;  // differential shadow rides with its primary
      const NetSpan span = net_span(netlist, placement, net);
      if (span.row_hi() < span.row_lo()) continue;  // single-channel net
      const std::int32_t center = net_center_column(netlist, placement, net);
      std::int32_t prev = -1;
      for (std::int32_t r = span.row_lo(); r <= span.row_hi(); ++r) {
        if (span.row_required(r) != required_sweep) continue;
        const RowId row{r};
        const std::int32_t x = find_group(row, center, w, prev);
        if (x < 0) {
          if (required_sweep) {
            outcome.demand.add_failure(row, w);
          } else {
            ++outcome.optional_failures;
          }
          continue;
        }
        for (std::int32_t c = x; c < x + w; ++c) {
          taken[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = true;
        }
        outcome.assignment.set(net, r, x);
        prev = x;
      }
    }
  }
  return outcome;
}

AssignmentPipelineResult run_assignment_pipeline(
    Netlist& netlist, Placement& placement,
    const IdVector<NetId, double>& order) {
  assign_external_pins(netlist, placement);

  AssignmentPipelineResult result{FeedthroughAssignment(netlist.net_count()), 0,
                                  0, 0};
  constexpr std::int32_t kMaxRounds = 10;
  for (std::int32_t round = 0; round < kMaxRounds; ++round) {
    ++result.rounds;
    AssignmentOutcome outcome =
        assign_feedthroughs(netlist, placement, order, /*respect_flags=*/round > 0);
    if (outcome.complete()) {
      result.assignment = std::move(outcome.assignment);
      return result;
    }
    // Flag the positions where multi-pitch nets succeeded so the re-run
    // cannot give them away (§4.3), then cancel and insert feed cells.
    placement.clear_column_flags();
    for (const NetId net : netlist.nets()) {
      const std::int32_t w = net_group_width(netlist, net);
      if (w < 2) continue;
      for (const auto& [row, col] : outcome.assignment.rows(net)) {
        for (std::int32_t c = col; c < col + w; ++c) {
          placement.set_column_flag(RowId{row}, c, w);
        }
      }
    }
    FeedInsertionResult inserted =
        insert_feed_cells(netlist, placement, outcome.demand);
    log_info("feed insertion round " + std::to_string(round) + ": +" +
             std::to_string(inserted.feed_cells_added) + " feed cells, chip +" +
             std::to_string(inserted.widen_pitches) + " pitches");
    result.feed_cells_added += inserted.feed_cells_added;
    result.widen_pitches += inserted.widen_pitches;
    placement = std::move(inserted.placement);
  }
  // Final attempt; by construction reserved capacity now suffices.
  AssignmentOutcome outcome =
      assign_feedthroughs(netlist, placement, order, /*respect_flags=*/true);
  BGR_CHECK_MSG(outcome.complete(),
                "feedthrough assignment incomplete after feed-cell insertion");
  result.assignment = std::move(outcome.assignment);
  return result;
}

}  // namespace bgr

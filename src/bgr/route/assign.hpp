#pragma once

#include <map>
#include <vector>

#include "bgr/common/ids.hpp"
#include "bgr/layout/feed_insertion.hpp"
#include "bgr/layout/placement.hpp"
#include "bgr/netlist/netlist.hpp"
#include "bgr/route/net_span.hpp"

namespace bgr {

/// Result of the feedthrough assignment (§3.1): for every net, the
/// leftmost grid column of its reserved feedthrough group in each row it
/// may cross. A differential pair occupies a 2-pitch group registered on
/// the primary net; a w-pitch net occupies w adjacent columns.
class FeedthroughAssignment {
 public:
  explicit FeedthroughAssignment(std::int32_t nets)
      : by_net_(static_cast<std::size_t>(nets)) {}

  void set(NetId net, std::int32_t row, std::int32_t column) {
    by_net_.at(net)[row] = column;
  }
  /// Leftmost column of the net's group in this row, or -1 if none.
  [[nodiscard]] std::int32_t column(NetId net, std::int32_t row) const {
    const auto& rows = by_net_.at(net);
    const auto it = rows.find(row);
    return it == rows.end() ? -1 : it->second;
  }
  [[nodiscard]] const std::map<std::int32_t, std::int32_t>& rows(NetId net) const {
    return by_net_.at(net);
  }

 private:
  IdVector<NetId, std::map<std::int32_t, std::int32_t>> by_net_;
};

struct AssignmentOutcome {
  FeedthroughAssignment assignment;
  FeedDemand demand;            // required-row failures F(w, r)
  std::int32_t optional_failures = 0;
  [[nodiscard]] bool complete() const { return !demand.any(); }
};

/// Width of the feedthrough group a net reserves: 2 for the primary member
/// of a differential pair (§4.1), w for w-pitch nets, 0 for differential
/// shadows (covered by their primary).
[[nodiscard]] std::int32_t net_group_width(const Netlist& netlist, NetId net);

/// External-terminal (xpin) assignment: fixes each pad's grid column to the
/// free boundary column nearest its net's terminal-centre x, one pad per
/// column per side. Mutates the placement's pad sites.
void assign_external_pins(const Netlist& netlist, Placement& placement);

/// One round of feedthrough assignment. Nets are processed in ascending
/// `order` value (static slack); each net searches outward from the centre
/// of its terminal columns, preferring vertical alignment with the
/// previously assigned row. When `respect_flags` is set, width-flagged
/// columns are only usable by matching-width nets (and are preferred by
/// them) — the second-round rule of §4.3.
[[nodiscard]] AssignmentOutcome assign_feedthroughs(
    const Netlist& netlist, const Placement& placement,
    const IdVector<NetId, double>& order, bool respect_flags);

/// Full §3.1 + §4.3 pipeline: assign pads, run a first feedthrough round;
/// on shortfall, flag the successful multi-pitch positions, insert feed
/// cells (widening the chip), and re-assign with flags until complete.
/// Returns the final assignment; `placement` is replaced when feed cells
/// were inserted and `netlist` gains the FEED cells.
struct AssignmentPipelineResult {
  FeedthroughAssignment assignment;
  std::int32_t feed_cells_added = 0;
  std::int32_t widen_pitches = 0;
  std::int32_t rounds = 0;
};

[[nodiscard]] AssignmentPipelineResult run_assignment_pipeline(
    Netlist& netlist, Placement& placement,
    const IdVector<NetId, double>& order);

}  // namespace bgr

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "bgr/timing/analyzer.hpp"

namespace bgr {

/// Maps a net's worst constraint slack to the cost-distance sink weight w_s
/// used by the steiner backend (DESIGN.md §16). `scale_ps` sets the slack
/// magnitude that counts as "comfortable" — callers pass the largest
/// constraint limit; a non-positive scale falls back to 1 ps.
///
///   slack = +inf / NaN  →  0        (unconstrained: pure wirelength)
///   slack > 0           →  1 / (1 + slack/scale)   (→ 0 as slack grows)
///   slack ≤ 0           →  min(1 − slack/scale, 8) (≥ 1, grows with the
///                                                    violation, capped)
///
/// Strictly monotone decreasing in slack until the cap, continuous at
/// slack = 0 (both branches give 1), and bounded so one hopeless net
/// cannot distort its tree into a pure shortest-path star.
[[nodiscard]] inline double slack_to_weight(double slack_ps, double scale_ps) {
  if (!std::isfinite(slack_ps)) return 0.0;
  const double scale = scale_ps > 0.0 ? scale_ps : 1.0;
  if (slack_ps <= 0.0) {
    return std::min(1.0 - slack_ps / scale, 8.0);
  }
  return 1.0 / (1.0 + slack_ps / scale);
}

/// Ordering of the heuristic tiers (§3.4 / §3.5): the initial routing and
/// the delay phases compare delay criteria first; the area-improvement
/// phase moves the density tiers right after C_d and compares Gl / LD last.
enum class CriteriaOrder {
  kDelayFirst,  // C_d, Gl, LD, density tiers, length
  kAreaFirst,   // C_d, density tiers, Gl, LD, length
};

/// Full per-edge selection key. The edge with the *smallest* key is deleted
/// — deleting it has the least fatal disadvantage. Density tier semantics:
///   branch      trunk edges (0) are preferred over branch edges (1);
///   f_min       C_m(c) − D_m(e): small ⇒ the edge runs over the channel's
///               forced-density maximum, delete before it can become forced;
///   n_min       NC_m(c) − ND_m(e): residual most-congested length;
///   f_max       C_M(c) − D_M(e): small ⇒ deletion attacks the congested
///               region directly;
///   n_max       NC_M(c) − ND_M(e);
///   neg_length  longer edges preferred (more wire removed).
struct SelectionKey {
  std::int32_t critical_count = 0;  // C_d(e)
  double global_delay = 0.0;        // Gl(e)
  double local_delay = 0.0;         // LD(e)
  std::int32_t branch = 0;
  std::int32_t f_min = 0;
  std::int32_t n_min = 0;
  std::int32_t f_max = 0;
  std::int32_t n_max = 0;
  double neg_length = 0.0;
};

/// Cached selection key of one candidate edge. Invalidation is stamp-based
/// and local: the stamp folds the monotone versions of everything the key
/// reads — the member nets' estimate versions, the touched channels'
/// density versions, and the per-constraint timing versions of the net's
/// constraint set (TimingAnalyzer::version). With the incremental analyzer
/// a constraint's version moves only when its arrival times actually
/// changed, so a deletion invalidates exactly the dirty-net set's keys
/// instead of every timing-active key.
struct ScoreCache {
  SelectionKey key;
  std::uint64_t stamp = 0;  // combined input versions at computation time
  bool valid = false;
};

/// Lexicographic comparison under the given tier order. Returns true when
/// `a` should be deleted in preference to `b`.
[[nodiscard]] inline bool key_less(const SelectionKey& a, const SelectionKey& b,
                                   CriteriaOrder order) {
  auto cmp_delay_tail = [](const SelectionKey& x, const SelectionKey& y,
                           bool with_cd) -> int {
    if (with_cd && x.critical_count != y.critical_count)
      return x.critical_count < y.critical_count ? -1 : 1;
    if (x.global_delay != y.global_delay)
      return x.global_delay < y.global_delay ? -1 : 1;
    if (x.local_delay != y.local_delay)
      return x.local_delay < y.local_delay ? -1 : 1;
    return 0;
  };
  auto cmp_density = [](const SelectionKey& x, const SelectionKey& y) -> int {
    if (x.branch != y.branch) return x.branch < y.branch ? -1 : 1;
    if (x.f_min != y.f_min) return x.f_min < y.f_min ? -1 : 1;
    if (x.n_min != y.n_min) return x.n_min < y.n_min ? -1 : 1;
    if (x.f_max != y.f_max) return x.f_max < y.f_max ? -1 : 1;
    if (x.n_max != y.n_max) return x.n_max < y.n_max ? -1 : 1;
    return 0;
  };

  int c = 0;
  if (order == CriteriaOrder::kDelayFirst) {
    c = cmp_delay_tail(a, b, /*with_cd=*/true);
    if (c == 0) c = cmp_density(a, b);
  } else {
    if (a.critical_count != b.critical_count) {
      c = a.critical_count < b.critical_count ? -1 : 1;
    } else {
      c = cmp_density(a, b);
      if (c == 0) c = cmp_delay_tail(a, b, /*with_cd=*/false);
    }
  }
  if (c != 0) return c < 0;
  return a.neg_length < b.neg_length;
}

}  // namespace bgr

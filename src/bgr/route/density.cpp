#include "bgr/route/density.hpp"

#include <algorithm>

namespace bgr {

DensityMap::DensityMap(std::int32_t channels, std::int32_t width)
    : width_(width), channels_(static_cast<std::size_t>(channels)) {
  BGR_CHECK(channels >= 1 && width >= 1);
  for (Channel& ch : channels_) {
    ch.total.assign(static_cast<std::size_t>(width), 0);
    ch.bridge.assign(static_cast<std::size_t>(width), 0);
  }
}

void DensityMap::apply(std::vector<std::int32_t>& chart, Channel& ch,
                       IntInterval span, std::int32_t delta) {
  BGR_CHECK(!span.empty());
  BGR_CHECK(span.lo >= 0 && span.hi < width_);
  for (std::int32_t x = span.lo; x <= span.hi; ++x) {
    chart[static_cast<std::size_t>(x)] += delta;
    BGR_CHECK(chart[static_cast<std::size_t>(x)] >= 0);
  }
  ch.dirty = true;
  ++ch.version;
}

void DensityMap::add_total(std::int32_t channel, IntInterval span,
                           std::int32_t w) {
  Channel& ch = channels_.at(static_cast<std::size_t>(channel));
  apply(ch.total, ch, span, w);
}

void DensityMap::remove_total(std::int32_t channel, IntInterval span,
                              std::int32_t w) {
  Channel& ch = channels_.at(static_cast<std::size_t>(channel));
  apply(ch.total, ch, span, -w);
}

void DensityMap::add_bridge(std::int32_t channel, IntInterval span,
                            std::int32_t w) {
  Channel& ch = channels_.at(static_cast<std::size_t>(channel));
  apply(ch.bridge, ch, span, w);
}

void DensityMap::remove_bridge(std::int32_t channel, IntInterval span,
                               std::int32_t w) {
  Channel& ch = channels_.at(static_cast<std::size_t>(channel));
  apply(ch.bridge, ch, span, -w);
}

const ChannelDensityParams& DensityMap::channel_params(
    std::int32_t channel) const {
  const Channel& ch = channels_.at(static_cast<std::size_t>(channel));
  if (ch.dirty) {
    ChannelDensityParams p;
    for (const auto v : ch.total) {
      if (v > p.c_max) {
        p.c_max = v;
        p.nc_max = 1;
      } else if (v == p.c_max) {
        ++p.nc_max;
      }
    }
    for (const auto v : ch.bridge) {
      if (v > p.c_min) {
        p.c_min = v;
        p.nc_min = 1;
      } else if (v == p.c_min) {
        ++p.nc_min;
      }
    }
    ch.params = p;
    ch.dirty = false;
  }
  return ch.params;
}

void DensityMap::refresh_params() const {
  for (std::int32_t c = 0; c < channel_count(); ++c) {
    (void)channel_params(c);
  }
}

EdgeDensityParams DensityMap::edge_params(std::int32_t channel,
                                          IntInterval span) const {
  const Channel& ch = channels_.at(static_cast<std::size_t>(channel));
  EdgeDensityParams p;
  BGR_CHECK(!span.empty() && span.lo >= 0 && span.hi < width_);
  for (std::int32_t x = span.lo; x <= span.hi; ++x) {
    const auto t = ch.total[static_cast<std::size_t>(x)];
    if (t > p.d_max) {
      p.d_max = t;
      p.nd_max = 1;
    } else if (t == p.d_max) {
      ++p.nd_max;
    }
    const auto b = ch.bridge[static_cast<std::size_t>(x)];
    if (b > p.d_min) {
      p.d_min = b;
      p.nd_min = 1;
    } else if (b == p.d_min) {
      ++p.nd_min;
    }
  }
  return p;
}

std::int64_t DensityMap::sum_max_density() const {
  std::int64_t sum = 0;
  for (std::int32_t c = 0; c < channel_count(); ++c) {
    sum += channel_params(c).c_max;
  }
  return sum;
}

}  // namespace bgr

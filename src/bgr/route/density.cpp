#include "bgr/route/density.hpp"

#include <algorithm>

namespace bgr {

DensityMap::DensityMap(std::int32_t channels, std::int32_t width)
    : width_(width), channel_count_(channels) {
  BGR_CHECK(channels >= 1 && width >= 1);
  const auto cells =
      static_cast<std::size_t>(channels) * static_cast<std::size_t>(width);
  total_.assign(cells, 0);
  bridge_.assign(cells, 0);
  params_.assign(static_cast<std::size_t>(channels), ChannelDensityParams{});
  dirty_.assign(static_cast<std::size_t>(channels), 1);
  version_.assign(static_cast<std::size_t>(channels), 0);
}

void DensityMap::apply(std::vector<std::int32_t>& chart, std::int32_t channel,
                       IntInterval span, std::int32_t delta) {
  BGR_CHECK(!span.empty());
  BGR_CHECK(span.lo >= 0 && span.hi < width_);
  std::int32_t* row = chart.data() + flat(channel, 0);
  for (std::int32_t x = span.lo; x <= span.hi; ++x) {
    row[x] += delta;
    BGR_CHECK(row[x] >= 0);
  }
  dirty_[static_cast<std::size_t>(channel)] = 1;
  ++version_[static_cast<std::size_t>(channel)];
}

void DensityMap::add_total(std::int32_t channel, IntInterval span,
                           std::int32_t w) {
  BGR_CHECK(channel >= 0 && channel < channel_count_);
  apply(total_, channel, span, w);
}

void DensityMap::remove_total(std::int32_t channel, IntInterval span,
                              std::int32_t w) {
  BGR_CHECK(channel >= 0 && channel < channel_count_);
  apply(total_, channel, span, -w);
}

void DensityMap::add_bridge(std::int32_t channel, IntInterval span,
                            std::int32_t w) {
  BGR_CHECK(channel >= 0 && channel < channel_count_);
  apply(bridge_, channel, span, w);
}

void DensityMap::remove_bridge(std::int32_t channel, IntInterval span,
                               std::int32_t w) {
  BGR_CHECK(channel >= 0 && channel < channel_count_);
  apply(bridge_, channel, span, -w);
}

const ChannelDensityParams& DensityMap::channel_params(
    std::int32_t channel) const {
  BGR_CHECK(channel >= 0 && channel < channel_count_);
  if (dirty_[static_cast<std::size_t>(channel)] != 0) {
    ChannelDensityParams p;
    const std::int32_t* total = total_.data() + flat(channel, 0);
    const std::int32_t* bridge = bridge_.data() + flat(channel, 0);
    for (std::int32_t x = 0; x < width_; ++x) {
      const auto v = total[x];
      if (v > p.c_max) {
        p.c_max = v;
        p.nc_max = 1;
      } else if (v == p.c_max) {
        ++p.nc_max;
      }
    }
    for (std::int32_t x = 0; x < width_; ++x) {
      const auto v = bridge[x];
      if (v > p.c_min) {
        p.c_min = v;
        p.nc_min = 1;
      } else if (v == p.c_min) {
        ++p.nc_min;
      }
    }
    params_[static_cast<std::size_t>(channel)] = p;
    dirty_[static_cast<std::size_t>(channel)] = 0;
  }
  return params_[static_cast<std::size_t>(channel)];
}

void DensityMap::refresh_params() const {
  for (std::int32_t c = 0; c < channel_count(); ++c) {
    (void)channel_params(c);
  }
}

EdgeDensityParams DensityMap::edge_params(std::int32_t channel,
                                          IntInterval span) const {
  BGR_CHECK(channel >= 0 && channel < channel_count_);
  EdgeDensityParams p;
  BGR_CHECK(!span.empty() && span.lo >= 0 && span.hi < width_);
  const std::int32_t* total = total_.data() + flat(channel, 0);
  const std::int32_t* bridge = bridge_.data() + flat(channel, 0);
  for (std::int32_t x = span.lo; x <= span.hi; ++x) {
    const auto t = total[x];
    if (t > p.d_max) {
      p.d_max = t;
      p.nd_max = 1;
    } else if (t == p.d_max) {
      ++p.nd_max;
    }
    const auto b = bridge[x];
    if (b > p.d_min) {
      p.d_min = b;
      p.nd_min = 1;
    } else if (b == p.d_min) {
      ++p.nd_min;
    }
  }
  return p;
}

std::int64_t DensityMap::sum_max_density() const {
  std::int64_t sum = 0;
  for (std::int32_t c = 0; c < channel_count(); ++c) {
    sum += channel_params(c).c_max;
  }
  return sum;
}

}  // namespace bgr

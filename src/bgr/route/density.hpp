#pragma once

#include <cstdint>
#include <vector>

#include "bgr/common/check.hpp"
#include "bgr/common/interval.hpp"

namespace bgr {

/// Channel aggregates of §3.3: C_M / C_m are the maxima of the total and
/// bridge-edge density charts, NC_M / NC_m the number of grid columns at
/// those maxima.
struct ChannelDensityParams {
  std::int32_t c_max = 0;    // C_M(c)
  std::int32_t nc_max = 0;   // NC_M(c)
  std::int32_t c_min = 0;    // C_m(c)
  std::int32_t nc_min = 0;   // NC_m(c)
};

/// Per-edge aggregates over the edge's interval (Fig. 4): D_M / D_m are the
/// chart maxima within the interval, ND_M / ND_m the number of interval
/// columns attaining them.
struct EdgeDensityParams {
  std::int32_t d_max = 0;    // D_M(e)
  std::int32_t nd_max = 0;   // ND_M(e)
  std::int32_t d_min = 0;    // D_m(e)
  std::int32_t nd_min = 0;   // ND_m(e)
};

/// Density charts d_M(c, x) (all trunk edges) and d_m(c, x) (bridge trunk
/// edges — the unrecoverable lower bound) for every channel. Channel
/// aggregates are cached and recomputed lazily; a per-channel version
/// counter lets the edge-selection cache detect staleness.
///
/// Storage is two flat channels×width arenas plus parallel per-channel
/// vectors (SoA): the charts are the hottest arrays in the deletion loop,
/// and one contiguous block keeps the span scans prefetch-friendly at the
/// 100k/1M-cell presets. All per-channel state (chart rows, params slot,
/// dirty byte, version) occupies disjoint memory per channel, so callers
/// touching disjoint channel sets may mutate and read concurrently — the
/// contract the sharded deletion loop relies on. The dirty flags are
/// deliberately char, not vector<bool>: distinct bytes are distinct memory
/// locations, packed bits are not.
class DensityMap {
 public:
  DensityMap(std::int32_t channels, std::int32_t width);

  [[nodiscard]] std::int32_t channel_count() const { return channel_count_; }
  [[nodiscard]] std::int32_t width() const { return width_; }

  /// Adds/removes a w-pitch trunk edge's contribution to d_M.
  void add_total(std::int32_t channel, IntInterval span, std::int32_t w);
  void remove_total(std::int32_t channel, IntInterval span, std::int32_t w);
  /// Adds/removes a w-pitch bridge trunk edge's contribution to d_m.
  void add_bridge(std::int32_t channel, IntInterval span, std::int32_t w);
  void remove_bridge(std::int32_t channel, IntInterval span, std::int32_t w);

  [[nodiscard]] const ChannelDensityParams& channel_params(
      std::int32_t channel) const;
  /// Eagerly recomputes every dirty channel's cached params. Call before
  /// reading channel_params() from several threads: afterwards (and until
  /// the next mutation) the accessor is a pure read.
  void refresh_params() const;
  [[nodiscard]] EdgeDensityParams edge_params(std::int32_t channel,
                                              IntInterval span) const;
  [[nodiscard]] std::uint64_t version(std::int32_t channel) const {
    return version_[static_cast<std::size_t>(channel)];
  }

  [[nodiscard]] std::int32_t total_at(std::int32_t channel, std::int32_t x) const {
    return total_[flat(channel, x)];
  }
  [[nodiscard]] std::int32_t bridge_at(std::int32_t channel, std::int32_t x) const {
    return bridge_[flat(channel, x)];
  }

  /// Σ_c C_M(c): the track-count proxy minimized by the area phase.
  [[nodiscard]] std::int64_t sum_max_density() const;

 private:
  [[nodiscard]] std::size_t flat(std::int32_t channel, std::int32_t x) const {
    return static_cast<std::size_t>(channel) *
               static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  void apply(std::vector<std::int32_t>& chart, std::int32_t channel,
             IntInterval span, std::int32_t delta);

  std::int32_t width_;
  std::int32_t channel_count_;
  std::vector<std::int32_t> total_;   // channels × width arena
  std::vector<std::int32_t> bridge_;  // channels × width arena
  mutable std::vector<ChannelDensityParams> params_;
  mutable std::vector<char> dirty_;
  std::vector<std::uint64_t> version_;
};

}  // namespace bgr

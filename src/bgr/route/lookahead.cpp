#include "bgr/route/lookahead.hpp"

#include <algorithm>

#include "bgr/common/check.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/timing/lower_bound.hpp"

namespace bgr {

namespace {

/// Lookahead activity. All semantic: the table is built once per design
/// and each graph derives exactly once per (re)build, both functions of
/// the design alone — never of thread count or timing.
struct LookaheadMetrics {
  Counter& builds = MetricsRegistry::global().counter(
      "lookahead.builds", MetricScope::kSemantic);
  Counter& derivations = MetricsRegistry::global().counter(
      "lookahead.derivations", MetricScope::kSemantic);
  Counter& vertices = MetricsRegistry::global().counter(
      "lookahead.vertices", MetricScope::kSemantic);
};

LookaheadMetrics& lookahead_metrics() {
  static LookaheadMetrics* const m = new LookaheadMetrics();
  return *m;
}

}  // namespace

void register_lookahead_metrics() { (void)lookahead_metrics(); }

ChipLookahead::ChipLookahead(std::int32_t row_count, const TechParams& tech) {
  BGR_CHECK(row_count >= 0);
  lookahead_metrics().builds.add(1);
  step_um_ = tech.horiz_step_um();
  // Channel c sits below row c; crossing row r moves between channels r
  // and r + 1 at the feed-edge weight. The rows are homogeneous today, but
  // the table prices them individually (prefix sums), so a future
  // per-channel geometry only changes this constructor.
  prefix_um_.resize(static_cast<std::size_t>(row_count) + 1);
  const double cross = row_crossing_cost_um(tech);
  double sum = 0.0;
  for (std::int32_t c = 0; c <= row_count; ++c) {
    prefix_um_[static_cast<std::size_t>(c)] = sum;
    sum += cross;
  }
}

GoalHeuristic ChipLookahead::derive(
    const SmallGraph& graph, const std::vector<RouteVertexInfo>& vertices,
    std::int32_t source, const std::vector<std::int32_t>& targets) const {
  lookahead_metrics().derivations.add(1);
  lookahead_metrics().vertices.add(graph.vertex_count());
  GoalHeuristic out;
  const auto n = static_cast<std::size_t>(graph.vertex_count());
  out.h.assign(n, PathSearchScratch::kInf);

  // Portal positions: every alive candidate position of every terminal,
  // clustered by terminal. The terminal links make each terminal's
  // position set a zero-cost wormhole between channels (a path can enter
  // the driver's channel-r position and leave through its channel-r+1
  // position without paying the row crossing), so the raw geometric bound
  // between two points is NOT admissible on its own. The bound instead
  // routes through the portal system: cluster_d[c] is a lower bound on
  // the cost from terminal c's vertex to the nearest target, computed by
  // a tiny Bellman-Ford whose legs between portals are the geometric
  // bound (valid for terminal-free path segments) and whose transits
  // through a terminal pay its link weights. A position dead by
  // derivation time only under-counts the portal set, which raises the
  // bound — still admissible, because the live search can never use a
  // dead link either.
  struct Portal {
    std::int32_t channel;
    std::int32_t x;
    double enter_um;       // link weight paid entering/leaving the terminal
    std::size_t cluster;   // owning terminal
  };
  std::vector<Portal> portals;
  std::vector<double> cluster_d;  // per terminal: bound to nearest target
  bool target_reachable = false;
  for (const std::int32_t tv : targets) {
    const bool is_target = tv != source;
    if (is_target) out.h[static_cast<std::size_t>(tv)] = 0.0;
    const std::size_t cluster = cluster_d.size();
    for (const std::int32_t e : graph.incident_edges(tv)) {
      const std::int32_t p = graph.other_end(e, tv);
      const RouteVertexInfo& info = vertices[static_cast<std::size_t>(p)];
      BGR_CHECK(info.kind == RouteVertexKind::kPoint);
      portals.push_back(
          Portal{info.channel, info.x, graph.edge(e).weight, cluster});
      target_reachable = target_reachable || is_target;
    }
    cluster_d.push_back(is_target ? 0.0 : PathSearchScratch::kInf);
  }
  if (!target_reachable) return out;  // degenerate: everything stays +inf

  const auto geo = [this](const Portal& a, std::int32_t channel,
                          std::int32_t x) {
    const double dx = x >= a.x ? x - a.x : a.x - x;
    return dx * step_um_ + crossing_um(a.channel, channel);
  };

  // Fixpoint over the clusters (at most one relaxation round per
  // terminal, and nets have a handful): enter[q] is the cost of entering
  // at portal q and continuing to a target.
  std::vector<double> enter(portals.size());
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t q = 0; q < portals.size(); ++q) {
      enter[q] = portals[q].enter_um + cluster_d[portals[q].cluster];
    }
    for (const Portal& leave : portals) {
      double best = PathSearchScratch::kInf;
      for (std::size_t q = 0; q < portals.size(); ++q) {
        best = std::min(best,
                        geo(leave, portals[q].channel, portals[q].x) +
                            enter[q]);
      }
      best += leave.enter_um;
      if (best < cluster_d[leave.cluster]) {
        cluster_d[leave.cluster] = best;
        changed = true;
      }
    }
  }
  for (std::size_t q = 0; q < portals.size(); ++q) {
    enter[q] = portals[q].enter_um + cluster_d[portals[q].cluster];
  }

  // Point vertices: any path to a target first enters some terminal, at
  // some portal position, after a terminal-free (hence geometrically
  // bounded) leg.
  for (std::size_t v = 0; v < n; ++v) {
    const RouteVertexInfo& info = vertices[v];
    if (info.kind != RouteVertexKind::kPoint) continue;
    double best = PathSearchScratch::kInf;
    for (std::size_t q = 0; q < portals.size(); ++q) {
      best = std::min(best,
                      geo(portals[q], info.channel, info.x) + enter[q]);
    }
    out.h[v] = best;
  }

  // Terminal vertices (the driver, in practice): a search leaves through
  // one of the alive incident links, so the min of link weight plus the
  // far end's point bound is admissible too.
  for (std::size_t v = 0; v < n; ++v) {
    if (vertices[v].kind != RouteVertexKind::kTerminal) continue;
    if (out.h[v] == 0.0) continue;  // target
    double best = PathSearchScratch::kInf;
    for (const std::int32_t e :
         graph.incident_edges(static_cast<std::int32_t>(v))) {
      const std::int32_t p =
          graph.other_end(e, static_cast<std::int32_t>(v));
      best = std::min(best,
                      graph.edge(e).weight + out.h[static_cast<std::size_t>(p)]);
    }
    out.h[v] = best;
  }

  // The same relative shave as the exact build: the bound must stay below
  // every true path cost bitwise, whatever summation order the forward
  // search uses (the 1e-9 margin dwarfs the ~1e-13 relative error of
  // the table's prefix-sum and single-multiply arithmetic).
  constexpr double kShave = 1.0 - 1e-9;
  for (double& x : out.h) {
    if (x != PathSearchScratch::kInf) x *= kShave;
  }

  out.quantum = heuristic_quantum(graph);
  return out;
}

}  // namespace bgr

#pragma once

#include <cstdint>
#include <vector>

#include "bgr/common/tech.hpp"
#include "bgr/graph/small_graph.hpp"
#include "bgr/route/path_search.hpp"
#include "bgr/route/routing_graph.hpp"

namespace bgr {

/// Registers the lookahead.* counters (at zero) with the global metrics
/// registry. The router calls this unconditionally so every routed run
/// report carries them, exact mode included — tools/check_run_report.py
/// requires the full semantic set whatever the configuration.
void register_lookahead_metrics();

/// Source of the A* lower bounds (DESIGN.md §15).
///
/// kExact runs one multi-source Dijkstra over every freshly built routing
/// graph (`build_goal_heuristic`) — exact distances, but the build is the
/// dominant serial cost of graph construction on large designs. kMap
/// derives the bounds from a chip-level `ChipLookahead` table built once
/// per design: per-graph derivation is O(vertices · goal positions) with
/// no search at all. Both bounds are admissible, and admissible bounds
/// never change what the search returns (the tree is derived from final
/// distances alone), so the RouteOutcome is bit-identical either way.
enum class LookaheadMode { kExact, kMap };

/// Chip-level distance lookahead table: the geometry every per-net routing
/// graph shares. All graphs are built from the same chip — horizontal
/// moves cost `horiz_step_um` per grid column (trunk edges), and crossing
/// cell row r costs exactly `row_crossing_cost_um` (feed edges: row height
/// plus both expected in-channel verticals). The table stores the per-row
/// crossing costs as prefix sums, so the cheapest possible route between a
/// point in channel a and a point in channel b prices in O(1):
///
///   lb((a, x) -> (b, x')) = |x - x'| · step + |prefix[b] - prefix[a]|
///
/// Any TERMINAL-FREE path segment pays at least that: trunk edges sum to
/// at least the horizontal extent, and every row between the two channels
/// must be crossed by at least one feed edge. Whole paths need one more
/// ingredient: a terminal's zero-weight links make its candidate-position
/// set a free wormhole between channels, so `derive` first runs a tiny
/// Bellman-Ford over the net's terminals (geometric legs between portal
/// positions, link weights through terminals) and then bounds every
/// vertex by its cheapest geometric leg into that portal system —
/// admissible for the graph it is derived from, and (like the exact
/// bound) forever after, because edge deletion only lengthens distances.
/// Built once per design; immutable, so one table is shared freely across
/// threads and cached across serve jobs.
class ChipLookahead {
 public:
  /// `row_count` cell rows give `row_count + 1` routing channels.
  ChipLookahead(std::int32_t row_count, const TechParams& tech);

  [[nodiscard]] std::int32_t channel_count() const {
    return static_cast<std::int32_t>(prefix_um_.size());
  }
  [[nodiscard]] double step_um() const { return step_um_; }

  /// Cheapest possible vertical cost between two channels: the sum of the
  /// crossing costs of every row between them.
  [[nodiscard]] double crossing_um(std::int32_t a, std::int32_t b) const {
    const double d = prefix_um_[static_cast<std::size_t>(b)] -
                     prefix_um_[static_cast<std::size_t>(a)];
    return d < 0.0 ? -d : d;
  }

  /// Derives the per-graph goal-oriented lower bound (the drop-in
  /// replacement for `build_goal_heuristic`): h[v] = min over the net's
  /// alive portal positions of the table bound plus that portal's
  /// Bellman-Ford distance to a target, shaved by the same relative
  /// epsilon as the exact build so that g + h can never exceed a true
  /// path cost by an ULP. Terminal vertices take the min over their own
  /// alive links. O(positions² · terminals + vertices · positions).
  [[nodiscard]] GoalHeuristic derive(
      const SmallGraph& graph, const std::vector<RouteVertexInfo>& vertices,
      std::int32_t source, const std::vector<std::int32_t>& targets) const;

  /// Retained-memory estimate for the serve DesignCache byte gauges.
  [[nodiscard]] std::size_t approx_bytes() const {
    return sizeof(ChipLookahead) + prefix_um_.capacity() * sizeof(double);
  }

 private:
  std::vector<double> prefix_um_;  // prefix[c] = cost of crossing rows [0, c)
  double step_um_ = 0.0;
};

}  // namespace bgr

#include "bgr/route/net_span.hpp"

#include <algorithm>
#include <limits>

namespace bgr {

TerminalGeom terminal_geom(const Netlist& netlist, const Placement& placement,
                           TerminalId term) {
  const Terminal& t = netlist.terminal(term);
  TerminalGeom geom;
  if (t.kind == TerminalKind::kCellPin) {
    const PlacedCell& pc = placement.placed(t.cell);
    const PinSpec& pin = netlist.cell_type(t.cell).pin(t.pin);
    geom.column = pc.x + pin.offset;
    geom.chan_hi = pc.row.value() + 1;
    geom.chan_lo = pin.both_sides ? pc.row.value() : pc.row.value() + 1;
  } else {
    const PadSite& site = placement.pad_site(term);
    geom.column = site.assigned() ? site.assigned_x
                                  : (site.window.lo + site.window.hi) / 2;
    geom.chan_lo = geom.chan_hi = site.top ? placement.row_count() : 0;
  }
  return geom;
}

NetSpan net_span(const Netlist& netlist, const Placement& placement, NetId net) {
  NetSpan span;
  std::int32_t c_lo = std::numeric_limits<std::int32_t>::max();
  std::int32_t c_hi = std::numeric_limits<std::int32_t>::min();
  std::int32_t min_hi = std::numeric_limits<std::int32_t>::max();  // min_T chan_hi
  std::int32_t max_lo = std::numeric_limits<std::int32_t>::min();  // max_T chan_lo
  for (const TerminalId term : netlist.net_terminals(net)) {
    const TerminalGeom g = terminal_geom(netlist, placement, term);
    c_lo = std::min(c_lo, g.chan_lo);
    c_hi = std::max(c_hi, g.chan_hi);
    min_hi = std::min(min_hi, g.chan_hi);
    max_lo = std::max(max_lo, g.chan_lo);
    span.column_span = span.column_span.merge(IntInterval::point(g.column));
  }
  span.chan_lo = c_lo;
  span.chan_hi = c_hi;
  // Crossing row r is required iff min_hi <= r and r + 1 <= max_lo.
  span.required_row_lo = min_hi;
  span.required_row_hi = max_lo - 1;
  return span;
}

}  // namespace bgr

#pragma once

#include <vector>

#include "bgr/common/ids.hpp"
#include "bgr/common/interval.hpp"
#include "bgr/layout/placement.hpp"
#include "bgr/netlist/netlist.hpp"

namespace bgr {

/// Physical access geometry of one terminal: its grid column and the range
/// of channels it can connect to. A cell pin whose metal column is open on
/// both cell edges reaches the channel below its row (r) and above it
/// (r+1); a single-sided pin reaches only the upper channel. Pads reach
/// exactly their boundary channel (0 or row_count).
struct TerminalGeom {
  std::int32_t column = 0;
  std::int32_t chan_lo = 0;
  std::int32_t chan_hi = 0;
};

[[nodiscard]] TerminalGeom terminal_geom(const Netlist& netlist,
                                         const Placement& placement,
                                         TerminalId term);

/// Vertical extent of a net and its feedthrough needs. Crossing row r joins
/// channels r and r+1. A crossing is *required* when some terminal lies
/// entirely at-or-below it while another lies entirely above; the remaining
/// rows of the span are optional (they only enrich the routing graph with
/// alternative channels).
struct NetSpan {
  std::int32_t chan_lo = 0;  // lowest candidate channel
  std::int32_t chan_hi = 0;  // highest candidate channel
  std::int32_t required_row_lo = 0;  // required crossings: [lo, hi] (empty if lo > hi)
  std::int32_t required_row_hi = -1;
  IntInterval column_span;  // hull of terminal columns

  /// All rows the assignment will try to reserve: chan_lo .. chan_hi − 1.
  [[nodiscard]] std::int32_t row_lo() const { return chan_lo; }
  [[nodiscard]] std::int32_t row_hi() const { return chan_hi - 1; }
  [[nodiscard]] bool row_required(std::int32_t r) const {
    return required_row_lo <= r && r <= required_row_hi;
  }
};

[[nodiscard]] NetSpan net_span(const Netlist& netlist,
                               const Placement& placement, NetId net);

}  // namespace bgr

#include "bgr/route/path_search.hpp"

#include <algorithm>
#include <cmath>

#include "bgr/common/check.hpp"
#include "bgr/exec/exec_context.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/route/steiner_tree.hpp"

namespace bgr {

const char* path_search_backend_name(PathSearchBackend backend) {
  switch (backend) {
    case PathSearchBackend::kDijkstra:
      return "dijkstra";
    case PathSearchBackend::kAstar:
      return "astar";
    case PathSearchBackend::kSteiner:
      return "steiner";
  }
  return "unknown";
}

namespace {

/// Search-effort counters. Everything value-driven is semantic: the set of
/// searches the router runs is a function of the design alone (the score
/// warm-up computes exactly the keys the serial scan would), and each
/// search's pop/relax/bucket counts are a function of the graph and the
/// backend. Arena reuse/growth, by contrast, depends on which exec slot a
/// chunk happens to land on — schedule-dependent, so nondeterministic.
struct PathMetrics {
  Counter& searches = MetricsRegistry::global().counter(
      "path.searches", MetricScope::kSemantic);
  Counter& pops = MetricsRegistry::global().counter(
      "path.pops", MetricScope::kSemantic);
  Counter& relaxations = MetricsRegistry::global().counter(
      "path.relaxations", MetricScope::kSemantic);
  Counter& queue_pushes = MetricsRegistry::global().counter(
      "path.queue_pushes", MetricScope::kSemantic);
  Counter& buckets_touched = MetricsRegistry::global().counter(
      "path.buckets_touched", MetricScope::kSemantic);
  Histogram& bucket_occupancy = MetricsRegistry::global().histogram(
      "path.bucket_occupancy", MetricScope::kSemantic);
  Counter& heuristic_builds = MetricsRegistry::global().counter(
      "path.heuristic_builds", MetricScope::kSemantic);
  Counter& cache_builds = MetricsRegistry::global().counter(
      "path.cache_builds", MetricScope::kSemantic);
  Counter& cache_hits = MetricsRegistry::global().counter(
      "path.cache_hits", MetricScope::kSemantic);
  Counter& cone_repairs = MetricsRegistry::global().counter(
      "path.cone_repairs", MetricScope::kSemantic);
  Counter& scratch_reuses = MetricsRegistry::global().counter(
      "path.scratch_reuses", MetricScope::kNonDeterministic);
  Counter& scratch_grows = MetricsRegistry::global().counter(
      "path.scratch_grows", MetricScope::kNonDeterministic);
};

PathMetrics& path_metrics() {
  static PathMetrics* const m = new PathMetrics();
  return *m;
}

using HeapEntry = std::pair<double, std::int32_t>;

/// Min-heap push/pop over (cost, vertex) pairs; the lexicographic order is
/// the historical SmallGraph::dijkstra pop order, which derive_tree relies
/// on for canonical ties.
void heap_push(std::vector<HeapEntry>& heap, double d, std::int32_t v) {
  heap.emplace_back(d, v);
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}

HeapEntry heap_pop(std::vector<HeapEntry>& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  const HeapEntry top = heap.back();
  heap.pop_back();
  return top;
}

}  // namespace

// ---------------------------------------------------------------------------
// BucketQueue

void BucketQueue::reset(double quantum) {
  BGR_CHECK(quantum > 0.0);
  for (const std::int64_t slot : dirty_) {
    ring_[static_cast<std::size_t>(slot)].clear();
  }
  dirty_.clear();
  quantum_ = quantum;
  cursor_ = 0;
  started_ = false;
  size_ = 0;
  pushes_ = 0;
  touched_ = 0;
}

std::int64_t BucketQueue::key_for(double cost) const {
  // llround is monotone in its argument, which is all the search needs:
  // quantization may reorder costs *within* a bucket but never across an
  // increasing pair of keys.
  return std::llround(cost / quantum_);
}

void BucketQueue::grow(std::int64_t needed_span) {
  std::size_t new_size = ring_.empty() ? 64 : ring_.size();
  while (static_cast<std::int64_t>(new_size) < needed_span) new_size *= 2;
  std::vector<std::vector<Entry>> fresh(new_size);
  const std::size_t new_mask = new_size - 1;
  for (std::vector<Entry>& old_bucket : ring_) {
    for (const Entry& e : old_bucket) {
      fresh[static_cast<std::size_t>(e.key) & new_mask].push_back(e);
    }
  }
  ring_ = std::move(fresh);
  dirty_.clear();
  for (std::size_t s = 0; s < ring_.size(); ++s) {
    if (!ring_[s].empty()) dirty_.push_back(static_cast<std::int64_t>(s));
  }
}

void BucketQueue::push(std::int64_t key, std::int32_t vertex, double g) {
  if (!started_) {
    started_ = true;
    cursor_ = key;
  }
  // A push below the cursor (possible after quantization of an admissible
  // but bucket-inconsistent bound) lands in the current bucket; the exact
  // g carried by the entry keeps the stale test — and thus the distances —
  // exact regardless.
  key = std::max(key, cursor_);
  if (key - cursor_ >= static_cast<std::int64_t>(ring_.size())) {
    grow(key - cursor_ + 1);
  }
  std::vector<Entry>& b = bucket(key);
  if (b.empty()) {
    dirty_.push_back(key & static_cast<std::int64_t>(ring_.size() - 1));
    ++touched_;
  }
  b.push_back(Entry{vertex, g, key});
  ++size_;
  ++pushes_;
}

std::int64_t BucketQueue::current_key() {
  BGR_CHECK_MSG(size_ > 0, "current_key() on an empty BucketQueue");
  while (bucket(cursor_).empty()) ++cursor_;
  return cursor_;
}

BucketQueue::Entry BucketQueue::pop() {
  const std::int64_t key = current_key();
  std::vector<Entry>& b = bucket(key);
  const Entry e = b.back();
  b.pop_back();
  --size_;
  return e;
}

// ---------------------------------------------------------------------------
// PathSearchScratch

bool PathSearchScratch::begin(std::int32_t vertex_count,
                              std::int32_t edge_count) {
  const auto vc = static_cast<std::size_t>(vertex_count);
  const auto ec = static_cast<std::size_t>(edge_count);
  bool grew = false;
  if (vertex_epoch_.size() < vc) {
    vertex_epoch_.resize(vc, 0);
    dist_.resize(vc, 0.0);
    parent_epoch_.resize(vc, 0);
    parent_.resize(vc, SmallGraph::kNone);
    target_epoch_.resize(vc, 0);
    grew = true;
  }
  if (edge_epoch_.size() < ec) {
    edge_epoch_.resize(ec, 0);
    grew = true;
  }
  ++epoch_;
  if (epoch_ == 0) {  // 2^32 searches: wipe stamps so none alias the reborn epoch
    std::fill(vertex_epoch_.begin(), vertex_epoch_.end(), 0u);
    std::fill(parent_epoch_.begin(), parent_epoch_.end(), 0u);
    std::fill(edge_epoch_.begin(), edge_epoch_.end(), 0u);
    std::fill(target_epoch_.begin(), target_epoch_.end(), 0u);
    epoch_ = 1;
  }
  heap_.clear();
  return !grew;
}

// ---------------------------------------------------------------------------
// Goal heuristic

GoalHeuristic build_goal_heuristic(const SmallGraph& graph,
                                   std::int32_t source,
                                   const std::vector<std::int32_t>& targets) {
  path_metrics().heuristic_builds.add(1);
  GoalHeuristic out;
  const auto n = static_cast<std::size_t>(graph.vertex_count());
  out.h.assign(n, PathSearchScratch::kInf);

  // Multi-source Dijkstra from every non-driver terminal: h[v] becomes the
  // exact distance to the nearest goal on the full (pre-deletion) graph.
  std::vector<HeapEntry> heap;
  for (const std::int32_t tv : targets) {
    if (tv == source) continue;
    if (out.h[static_cast<std::size_t>(tv)] == 0.0) continue;
    out.h[static_cast<std::size_t>(tv)] = 0.0;
    heap_push(heap, 0.0, tv);
  }
  while (!heap.empty()) {
    const auto [d, v] = heap_pop(heap);
    if (d > out.h[static_cast<std::size_t>(v)]) continue;
    for (const std::int32_t e : graph.incident_edges(v)) {
      const std::int32_t w = graph.other_end(e, v);
      const double nd = d + graph.edge(e).weight;
      if (nd < out.h[static_cast<std::size_t>(w)]) {
        out.h[static_cast<std::size_t>(w)] = nd;
        heap_push(heap, nd, w);
      }
    }
  }

  // Shave a relative epsilon so that the forward search's own summation
  // order can never see g + h exceed the true path cost by an ULP: the
  // bound must stay admissible bitwise, not just mathematically.
  constexpr double kShave = 1.0 - 1e-9;
  for (double& x : out.h) {
    if (x != PathSearchScratch::kInf) x *= kShave;
  }

  out.quantum = heuristic_quantum(graph);
  return out;
}

double heuristic_quantum(const SmallGraph& graph) {
  // Bucket width: max(min positive weight, total/4096) bounds the live key
  // span by ~4096 whatever the weight distribution (any path costs at most
  // the total alive weight), while never splitting the smallest step across
  // thousands of buckets.
  double min_pos = PathSearchScratch::kInf;
  double total = 0.0;
  for (std::int32_t e = 0; e < graph.edge_count(); ++e) {
    if (!graph.edge_alive(e)) continue;
    const double w = graph.edge(e).weight;
    total += w;
    if (w > 0.0 && w < min_pos) min_pos = w;
  }
  if (min_pos == PathSearchScratch::kInf || min_pos <= 0.0) {
    return 1.0;
  }
  return std::max(min_pos, total / 4096.0);
}

// ---------------------------------------------------------------------------
// Search backends

namespace {

/// Reference backend: plain binary-heap Dijkstra settling the whole alive
/// component (modulo skip_edge), mirroring SmallGraph::dijkstra but over
/// the epoch-stamped scratch labels. When `record` is non-null the settle
/// sequence is captured into it (seq/settle_order), which is what the
/// cone repair needs: with zero-weight edges a vertex's contributing
/// predecessor can carry a *higher* id at equal distance (the head only
/// enters the heap after the predecessor's relaxation), so (dist, id)
/// order cannot reconstruct who fed whom — the actual pop order can.
void dijkstra_search(const SmallGraph& graph, std::int32_t source,
                     std::int32_t skip_edge, PathSearchScratch& scratch,
                     SearchEffort& effort, SearchCache* record = nullptr) {
  if (record != nullptr) {
    record->seq.assign(static_cast<std::size_t>(graph.vertex_count()), -1);
    record->settle_order.clear();
  }
  std::vector<HeapEntry>& heap = scratch.heap();
  scratch.set_dist(source, 0.0);
  heap_push(heap, 0.0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap_pop(heap);
    ++effort.pops;
    if (d > scratch.dist(v)) continue;  // stale entry
    if (record != nullptr &&
        record->seq[static_cast<std::size_t>(v)] < 0) {
      record->seq[static_cast<std::size_t>(v)] =
          static_cast<std::int32_t>(record->settle_order.size());
      record->settle_order.push_back(v);
    }
    for (const std::int32_t e : graph.incident_edges(v)) {
      if (e == skip_edge) continue;
      const std::int32_t w = graph.other_end(e, v);
      const double nd = d + graph.edge(e).weight;
      if (nd < scratch.dist(w)) {
        scratch.set_dist(w, nd);
        ++effort.relaxations;
        heap_push(heap, nd, w);
        ++effort.queue_pushes;
      }
    }
  }
}

/// Goal-oriented backend: label-correcting A* over the dial queue, keyed on
/// the quantized f = g + h. Stops once every terminal is labeled and the
/// queue has drained past the largest terminal key (plus a two-bucket slack
/// absorbing quantization rounding) — at that point every vertex on any
/// final-tight source→terminal path carries its final distance, which is
/// all derive_tree reads (DESIGN.md §11 has the full argument).
void astar_search(const SmallGraph& graph, const GoalHeuristic* heuristic,
                  std::int32_t source,
                  const std::vector<std::int32_t>& terminals,
                  std::int32_t skip_edge, PathSearchScratch& scratch,
                  SearchEffort& effort) {
  BucketQueue& q = scratch.buckets();
  q.reset(heuristic != nullptr ? heuristic->quantum : 1.0);
  const auto h = [&](std::int32_t v) {
    return heuristic != nullptr ? heuristic->h[static_cast<std::size_t>(v)]
                                : 0.0;
  };

  std::int32_t remaining = 0;
  for (const std::int32_t tv : terminals) {
    if (tv == source || scratch.is_target(tv)) continue;
    scratch.mark_target(tv);
    ++remaining;
  }

  constexpr std::int64_t kDrainSlackBuckets = 2;
  scratch.set_dist(source, 0.0);
  q.push(q.key_for(h(source)), source, 0.0);
  std::int64_t limit = 0;
  bool limit_set = false;
  while (!q.empty()) {
    const std::int64_t key = q.current_key();
    if (remaining == 0) {
      if (!limit_set) {
        // All terminals labeled: their labels only shrink from here, so
        // this limit is a conservative (never too small) drain horizon.
        limit = 0;
        for (const std::int32_t tv : terminals) {
          if (tv == source) continue;
          limit = std::max(limit, q.key_for(scratch.dist(tv)));
        }
        limit += kDrainSlackBuckets;
        limit_set = true;
      }
      if (key > limit) break;
    }
    const BucketQueue::Entry entry = q.pop();
    ++effort.pops;
    const double d = scratch.dist(entry.vertex);
    if (entry.g != d) continue;  // stale entry (label improved since push)
    for (const std::int32_t e : graph.incident_edges(entry.vertex)) {
      if (e == skip_edge) continue;
      const std::int32_t w = graph.other_end(e, entry.vertex);
      const double nd = d + graph.edge(e).weight;
      const double old = scratch.dist(w);
      if (nd < old) {
        scratch.set_dist(w, nd);
        ++effort.relaxations;
        if (old == PathSearchScratch::kInf && scratch.is_target(w)) {
          --remaining;
        }
        q.push(q.key_for(nd + h(w)), w, nd);
      }
    }
  }
  effort.queue_pushes = q.pushes();
  effort.buckets_touched = q.buckets_touched();
}

/// Derives the canonical tentative tree from the distance labels alone.
///
/// Pass 1 resolves a canonical parent per vertex by a tight-edge Dijkstra:
/// starting from the source, vertices are popped in (dist, id) order and
/// expand their incident edges in adjacency (edge-insertion) order; an edge
/// (v, w) is *tight* when dist[v] + weight == dist[w] bitwise, and the
/// first tight expansion to reach an unresolved w fixes its parent. Every
/// input that can influence a parent — the labels on final-tight paths to
/// terminals, the pop order, the adjacency order — is backend-independent
/// (labels off those paths may be stale under A*, but a stale label that
/// passes the tight test against a final one is itself final, and any
/// tight predecessor of a tree vertex lies on a final-tight terminal path,
/// hence was drained), so both backends derive the identical tree.
///
/// Pass 2 walks each terminal's parent chain in terminal order, emitting
/// unmarked edges until it hits the source or an already-marked edge —
/// the same walk (and therefore the same edge output order, on which
/// downstream float summation depends) the router has always done.
void derive_tree(const SmallGraph& graph, std::int32_t source,
                 const std::vector<std::int32_t>& terminals,
                 std::int32_t skip_edge, PathSearchScratch& scratch,
                 std::vector<std::int32_t>* out) {
  std::vector<HeapEntry>& heap = scratch.heap();
  heap.clear();
  scratch.set_parent_edge(source, SmallGraph::kNone);
  heap_push(heap, 0.0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap_pop(heap);
    for (const std::int32_t e : graph.incident_edges(v)) {
      if (e == skip_edge) continue;
      const std::int32_t w = graph.other_end(e, v);
      if (scratch.parent_edge(w) != SmallGraph::kNone || w == source) continue;
      if (d + graph.edge(e).weight == scratch.dist(w)) {
        scratch.set_parent_edge(w, e);
        heap_push(heap, scratch.dist(w), w);
      }
    }
  }

  out->clear();
  for (const std::int32_t tv : terminals) {
    BGR_CHECK_MSG(scratch.dist(tv) != PathSearchScratch::kInf,
                  "terminal unreachable in tentative tree");
    std::int32_t v = tv;
    while (v != source) {
      const std::int32_t pe = scratch.parent_edge(v);
      BGR_CHECK_MSG(pe != SmallGraph::kNone,
                    "reachable terminal has no canonical parent chain");
      if (scratch.edge_marked(pe)) break;
      scratch.mark_edge(pe);
      out->push_back(pe);
      v = graph.other_end(pe, v);
    }
  }
}

}  // namespace

SearchEffort path_search_tree(const SmallGraph& graph,
                              PathSearchBackend backend,
                              const GoalHeuristic* heuristic,
                              std::int32_t source,
                              const std::vector<std::int32_t>& terminals,
                              std::int32_t skip_edge,
                              PathSearchScratch& scratch,
                              std::vector<std::int32_t>* out) {
  PathMetrics& metrics = path_metrics();
  SearchEffort effort;
  const bool reused = scratch.begin(graph.vertex_count(), graph.edge_count());
  if (reused) {
    metrics.scratch_reuses.add(1);
  } else {
    metrics.scratch_grows.add(1);
  }

  if (backend == PathSearchBackend::kAstar) {
    astar_search(graph, heuristic, source, terminals, skip_edge, scratch,
                 effort);
  } else {
    dijkstra_search(graph, source, skip_edge, scratch, effort);
  }
  derive_tree(graph, source, terminals, skip_edge, scratch, out);

  metrics.searches.add(1);
  metrics.pops.add(effort.pops);
  metrics.relaxations.add(effort.relaxations);
  metrics.queue_pushes.add(effort.queue_pushes);
  if (backend == PathSearchBackend::kAstar) {
    metrics.buckets_touched.add(effort.buckets_touched);
    if (effort.buckets_touched > 0) {
      metrics.bucket_occupancy.record(effort.queue_pushes /
                                      effort.buckets_touched);
    }
  }
  return effort;
}

namespace {

/// Dependency-cone repair against a valid SearchCache (DESIGN.md §11).
///
/// The cone of `skip_edge` is the least set C of settled vertices such
/// that every *contributing* in-edge of a member — an edge (x, v) with
/// cache.dist[x] + weight bitwise equal to cache.dist[v] and x settled
/// strictly earlier in the recorded sequence — is either skip_edge itself
/// or leaves from C. The recorded sequence, not (dist, id) order, is what
/// makes the sweep well-founded: zero-weight edges let a higher-id
/// predecessor settle first, and only the actual pop order knows that.
/// Vertices outside C keep their cached labels bitwise (some surviving
/// contributing chain still achieves their min, and deletion can only
/// lengthen distances); vertices inside C are re-labeled by a
/// boundary-seeded mini-Dijkstra whose candidate sums are drawn from the
/// same (label + weight) value set a from-scratch search would form, so
/// the repaired labels — and hence the derived tree — are bit-identical.
///
/// Returns true when the cached tree can be returned verbatim: the cone
/// is empty (no label changed) and skip_edge is not a canonical tree edge
/// (no parent choice involved it). Otherwise the caller must run
/// derive_tree over the repaired labels. Target stamps in `scratch` are
/// reused as cone marks, so this epoch must not also run astar_search.
bool repair_with_cache(const SmallGraph& graph, const SearchCache& cache,
                       std::int32_t skip_edge, PathSearchScratch& scratch,
                       SearchEffort& effort) {
  std::vector<std::int32_t>& cone = scratch.vertex_list();
  cone.clear();
  // Sweep in settle order (source first, never in the cone): when v is
  // classified, every earlier-settled x already is.
  for (std::size_t i = 1; i < cache.settle_order.size(); ++i) {
    const std::int32_t v = cache.settle_order[i];
    const std::int32_t sv = cache.seq[static_cast<std::size_t>(v)];
    const double dv = cache.dist[static_cast<std::size_t>(v)];
    bool safe = false;
    for (const std::int32_t e : graph.incident_edges(v)) {
      if (e == skip_edge) continue;
      const std::int32_t x = graph.other_end(e, v);
      const std::int32_t sx = cache.seq[static_cast<std::size_t>(x)];
      if (sx < 0 || sx >= sv || scratch.is_target(x)) continue;
      if (cache.dist[static_cast<std::size_t>(x)] + graph.edge(e).weight ==
          dv) {
        safe = true;
        break;
      }
    }
    if (!safe) {
      scratch.mark_target(v);
      cone.push_back(v);
    }
  }

  if (cone.empty() && !cache.in_tree[static_cast<std::size_t>(skip_edge)]) {
    return true;
  }

  // Non-cone labels are final: copy them verbatim. Cone labels restart
  // from their best surviving boundary crossing and settle cone-internally
  // (relaxing into a non-cone vertex could never improve it: deletion only
  // lengthens distances, and its cached label is already the no-skip min).
  for (const std::int32_t v : cache.settle_order) {
    if (!scratch.is_target(v)) {
      scratch.set_dist(v, cache.dist[static_cast<std::size_t>(v)]);
    }
  }
  std::vector<HeapEntry>& heap = scratch.heap();
  for (const std::int32_t v : cone) {
    double best = PathSearchScratch::kInf;
    for (const std::int32_t e : graph.incident_edges(v)) {
      if (e == skip_edge) continue;
      const std::int32_t x = graph.other_end(e, v);
      if (cache.seq[static_cast<std::size_t>(x)] < 0 || scratch.is_target(x)) {
        continue;
      }
      const double nd =
          cache.dist[static_cast<std::size_t>(x)] + graph.edge(e).weight;
      if (nd < best) best = nd;
    }
    if (best != PathSearchScratch::kInf) {
      scratch.set_dist(v, best);
      ++effort.relaxations;
      heap_push(heap, best, v);
      ++effort.queue_pushes;
    }
  }
  while (!heap.empty()) {
    const auto [d, v] = heap_pop(heap);
    ++effort.pops;
    if (d > scratch.dist(v)) continue;  // stale entry
    for (const std::int32_t e : graph.incident_edges(v)) {
      if (e == skip_edge) continue;
      const std::int32_t w = graph.other_end(e, v);
      if (!scratch.is_target(w)) continue;  // only cone labels can change
      const double nd = d + graph.edge(e).weight;
      if (nd < scratch.dist(w)) {
        scratch.set_dist(w, nd);
        ++effort.relaxations;
        heap_push(heap, nd, w);
        ++effort.queue_pushes;
      }
    }
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// PathSearchEngine

PathSearchEngine::PathSearchEngine(PathSearchBackend backend,
                                   const ExecContext* exec)
    : backend_(backend), exec_(exec) {
  const std::int32_t slots = exec != nullptr ? exec->thread_count() : 1;
  scratch_.reserve(static_cast<std::size_t>(slots));
  for (std::int32_t i = 0; i < slots; ++i) {
    scratch_.push_back(std::make_unique<PathSearchScratch>());
  }
}

PathSearchEngine::~PathSearchEngine() = default;

void PathSearchEngine::refresh_cache(const SmallGraph& graph,
                                     std::int32_t source,
                                     const std::vector<std::int32_t>& terminals,
                                     SearchCache* cache,
                                     const GoalHeuristic* heuristic,
                                     const std::vector<double>* sink_weights) {
  const std::int32_t slot = exec_ != nullptr ? exec_->current_slot() : 0;
  BGR_CHECK(slot >= 0 &&
            slot < static_cast<std::int32_t>(scratch_.size()));
  PathSearchScratch& scratch = *scratch_[static_cast<std::size_t>(slot)];
  PathMetrics& metrics = path_metrics();
  SearchEffort effort;
  cache->valid = false;

  if (backend_ == PathSearchBackend::kSteiner) {
    // Cone repair is unsound for greedy construction (a deleted edge can
    // reshape every later attachment), so the cache memoizes only the
    // no-skip tree built with the *live* query configuration — the same
    // heuristic and weights tentative_tree would pass. The Dijkstra labels
    // and settle sequence stay empty; skip queries rebuild from scratch.
    if (heuristic != nullptr && heuristic->h.empty()) heuristic = nullptr;
    const SearchEffort steiner_effort = steiner_tree_search(
        graph, heuristic, source, terminals, sink_weights, SmallGraph::kNone,
        &cache->tree);
    cache->dist.clear();
    cache->seq.clear();
    cache->settle_order.clear();
    cache->in_tree.assign(static_cast<std::size_t>(graph.edge_count()), 0);
    for (const std::int32_t e : cache->tree) {
      cache->in_tree[static_cast<std::size_t>(e)] = 1;
    }
    cache->valid = true;
    metrics.cache_builds.add(1);
    metrics.pops.add(steiner_effort.pops);
    metrics.relaxations.add(steiner_effort.relaxations);
    metrics.queue_pushes.add(steiner_effort.queue_pushes);
    pops_.fetch_add(steiner_effort.pops, std::memory_order_relaxed);
    relaxations_.fetch_add(steiner_effort.relaxations,
                           std::memory_order_relaxed);
    return;
  }

  if (scratch.begin(graph.vertex_count(), graph.edge_count())) {
    metrics.scratch_reuses.add(1);
  } else {
    metrics.scratch_grows.add(1);
  }
  dijkstra_search(graph, source, SmallGraph::kNone, scratch, effort, cache);
  cache->dist.assign(static_cast<std::size_t>(graph.vertex_count()),
                     PathSearchScratch::kInf);
  for (const std::int32_t v : cache->settle_order) {
    cache->dist[static_cast<std::size_t>(v)] = scratch.dist(v);
  }
  derive_tree(graph, source, terminals, SmallGraph::kNone, scratch,
              &cache->tree);
  cache->in_tree.assign(static_cast<std::size_t>(graph.edge_count()), 0);
  for (const std::int32_t e : cache->tree) {
    cache->in_tree[static_cast<std::size_t>(e)] = 1;
  }
  cache->valid = true;

  metrics.cache_builds.add(1);
  metrics.pops.add(effort.pops);
  metrics.relaxations.add(effort.relaxations);
  metrics.queue_pushes.add(effort.queue_pushes);
  pops_.fetch_add(effort.pops, std::memory_order_relaxed);
  relaxations_.fetch_add(effort.relaxations, std::memory_order_relaxed);
}

void PathSearchEngine::tentative_tree(const SmallGraph& graph,
                                      const GoalHeuristic* heuristic,
                                      const SearchCache* cache,
                                      std::int32_t source,
                                      const std::vector<std::int32_t>& terminals,
                                      std::int32_t skip_edge,
                                      std::vector<std::int32_t>* out,
                                      const std::vector<double>* sink_weights) {
  const std::int32_t slot = exec_ != nullptr ? exec_->current_slot() : 0;
  BGR_CHECK(slot >= 0 &&
            slot < static_cast<std::int32_t>(scratch_.size()));
  searches_.fetch_add(1, std::memory_order_relaxed);
  PathMetrics& metrics = path_metrics();

  if (backend_ == PathSearchBackend::kSteiner) {
    metrics.searches.add(1);
    if (cache != nullptr && cache->valid && skip_edge == SmallGraph::kNone) {
      *out = cache->tree;
      metrics.cache_hits.add(1);
      note_steiner_cache_hit();
      return;
    }
    const GoalHeuristic* h =
        heuristic != nullptr && !heuristic->h.empty() ? heuristic : nullptr;
    const SearchEffort effort = steiner_tree_search(
        graph, h, source, terminals, sink_weights, skip_edge, out);
    metrics.pops.add(effort.pops);
    metrics.relaxations.add(effort.relaxations);
    metrics.queue_pushes.add(effort.queue_pushes);
    pops_.fetch_add(effort.pops, std::memory_order_relaxed);
    relaxations_.fetch_add(effort.relaxations, std::memory_order_relaxed);
    return;
  }

  if (backend_ == PathSearchBackend::kAstar && cache != nullptr &&
      cache->valid) {
    BGR_CHECK(cache->dist.size() ==
                  static_cast<std::size_t>(graph.vertex_count()) &&
              cache->in_tree.size() ==
                  static_cast<std::size_t>(graph.edge_count()));
    metrics.searches.add(1);
    if (skip_edge == SmallGraph::kNone) {
      // The cache *is* the no-skip answer.
      *out = cache->tree;
      metrics.cache_hits.add(1);
      return;
    }
    PathSearchScratch& scratch = *scratch_[static_cast<std::size_t>(slot)];
    SearchEffort effort;
    if (scratch.begin(graph.vertex_count(), graph.edge_count())) {
      metrics.scratch_reuses.add(1);
    } else {
      metrics.scratch_grows.add(1);
    }
    if (repair_with_cache(graph, *cache, skip_edge, scratch, effort)) {
      *out = cache->tree;
      metrics.cache_hits.add(1);
      return;
    }
    derive_tree(graph, source, terminals, skip_edge, scratch, out);
    metrics.cone_repairs.add(1);
    metrics.pops.add(effort.pops);
    metrics.relaxations.add(effort.relaxations);
    metrics.queue_pushes.add(effort.queue_pushes);
    pops_.fetch_add(effort.pops, std::memory_order_relaxed);
    relaxations_.fetch_add(effort.relaxations, std::memory_order_relaxed);
    return;
  }

  const GoalHeuristic* h =
      backend_ == PathSearchBackend::kAstar ? heuristic : nullptr;
  const SearchEffort effort = path_search_tree(
      graph, backend_, h, source, terminals, skip_edge,
      *scratch_[static_cast<std::size_t>(slot)], out);
  pops_.fetch_add(effort.pops, std::memory_order_relaxed);
  relaxations_.fetch_add(effort.relaxations, std::memory_order_relaxed);
}

PathSearchStats PathSearchEngine::stats() const {
  PathSearchStats s;
  s.searches = searches_.load(std::memory_order_relaxed);
  s.pops = pops_.load(std::memory_order_relaxed);
  s.relaxations = relaxations_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace bgr

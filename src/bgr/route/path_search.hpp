#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "bgr/graph/small_graph.hpp"

namespace bgr {

class ExecContext;

/// Backend of the tentative-tree path search (see DESIGN.md §11).
///
/// kDijkstra is the reference: the same binary-heap label-setting search
/// the router has always run, settling the whole alive component.
/// kAstar is goal-oriented: an admissible future-cost lower bound steers
/// the search toward the net's terminals through a monotone bucket (dial)
/// queue, settling only the corridor around the shortest-path tree. Both
/// backends reach the identical distance fixpoint on every vertex they
/// both settle, and the tree is derived from distances alone (see
/// derive_tree), so the resulting tentative trees — and therefore every
/// score, every deletion and the final RouteOutcome — are bit-identical.
/// kSteiner is the cost-distance tree construction (DESIGN.md §16): it
/// greedily merges sink paths under cost(T) + Σ_s w_s · dist_T(root, s)
/// with per-sink weights derived from constraint slack. It is the one
/// backend *allowed* to produce different trees than the reference — its
/// correctness contract is "deterministic, verifier-clean and
/// margin-dominant", enforced by the test_steiner oracle battery rather
/// than bit-identity with Dijkstra.
enum class PathSearchBackend { kDijkstra, kAstar, kSteiner };

/// Canonical CLI/serve/report spelling of a backend.
[[nodiscard]] const char* path_search_backend_name(PathSearchBackend backend);

/// Per-net goal-oriented lower bound: h[v] = exact shortest distance from
/// v to the nearest non-driver terminal, computed once per routing graph
/// by a multi-source Dijkstra over the freshly built (full) graph, then
/// shaved by a relative epsilon. Edge deletion only lengthens distances,
/// so the build-time bound stays admissible for every later search and
/// every `skip_edge` evaluation; the shave absorbs the ULP-level
/// discrepancy between the backward summation order used here and the
/// forward order of the live search (DESIGN.md §11 quantifies it).
struct GoalHeuristic {
  std::vector<double> h;  // per vertex; 0 at targets, +inf if disconnected
  /// Bucket width of the dial queue for this graph: max(smallest positive
  /// edge weight, total edge weight / 4096) — coarse enough to bound the
  /// bucket count, fine enough that a bucket never spans more than one
  /// "interesting" cost step (see BucketQueue).
  double quantum = 1.0;
};

/// Builds the lower bound for searches from `source` (the net's driver)
/// toward `targets` (all terminal vertices; the source entry is skipped).
[[nodiscard]] GoalHeuristic build_goal_heuristic(
    const SmallGraph& graph, std::int32_t source,
    const std::vector<std::int32_t>& targets);

/// The dial-queue bucket width for a graph: max(smallest positive alive
/// edge weight, total alive weight / 4096). Shared by every heuristic
/// source (the exact per-graph build and the chip-level lookahead
/// derivation), so the backend quantizes identically whichever produced
/// the bound.
[[nodiscard]] double heuristic_quantum(const SmallGraph& graph);

/// Monotone bucket ("dial") queue over quantized non-negative costs.
/// Entries carry their exact float key owner-side; the queue only orders
/// the integer buckets, so within one bucket order is LIFO. Pushes below
/// the cursor clamp to the cursor bucket — together with the caller's
/// stale-entry test this makes the search label-correcting, which is what
/// lets an (admissible, not necessarily consistent-after-quantization)
/// bound stay exact. Storage is a wraparound ring sized to the largest
/// key span seen, grown on demand, so memory is bounded by the quantized
/// maximum edge weight rather than the path length.
class BucketQueue {
 public:
  struct Entry {
    std::int32_t vertex = -1;
    double g = 0.0;        // exact path cost at push time (stale test key)
    std::int64_t key = 0;  // bucket key, kept so grow() can rehash the ring
  };

  /// Clears the queue and sets the bucket width for the coming search.
  void reset(double quantum);

  /// Monotone quantization of an exact cost into a bucket key.
  [[nodiscard]] std::int64_t key_for(double cost) const;

  /// Enqueues (vertex, g) into bucket max(key, cursor).
  void push(std::int64_t key, std::int32_t vertex, double g);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::int64_t size() const { return size_; }

  /// Key of the next non-empty bucket (advances the cursor to it).
  /// Requires !empty().
  [[nodiscard]] std::int64_t current_key();

  /// Pops one entry from the current bucket. Requires !empty().
  [[nodiscard]] Entry pop();

  /// Lifetime totals since reset(), for the effort metrics.
  [[nodiscard]] std::int64_t pushes() const { return pushes_; }
  [[nodiscard]] std::int64_t buckets_touched() const { return touched_; }
  [[nodiscard]] std::int64_t ring_size() const {
    return static_cast<std::int64_t>(ring_.size());
  }

 private:
  void grow(std::int64_t needed_span);
  [[nodiscard]] std::vector<Entry>& bucket(std::int64_t key) {
    return ring_[static_cast<std::size_t>(key) & (ring_.size() - 1)];
  }

  std::vector<std::vector<Entry>> ring_;  // size is a power of two
  std::vector<std::int64_t> dirty_;       // ring slots to clear on reset()
  double quantum_ = 1.0;
  std::int64_t cursor_ = 0;  // all live keys are in [cursor_, cursor_+span)
  bool started_ = false;     // cursor_ is meaningless until the first push
  std::int64_t size_ = 0;
  std::int64_t pushes_ = 0;
  std::int64_t touched_ = 0;
};

/// Arena-reused per-search state: epoch-stamped distance labels, the
/// canonical parent tree, tree-walk edge marks, and the queue storage
/// (bucket ring or binary heap). One instance serves one thread; begin()
/// bumps the epoch instead of reallocating, so steady-state searches do
/// no allocation at all.
class PathSearchScratch {
 public:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// Prepares for one search over a graph of the given size. Returns true
  /// when the arena was reused as-is (no growth).
  bool begin(std::int32_t vertex_count, std::int32_t edge_count);

  [[nodiscard]] double dist(std::int32_t v) const {
    const auto i = static_cast<std::size_t>(v);
    return vertex_epoch_[i] == epoch_ ? dist_[i] : kInf;
  }
  void set_dist(std::int32_t v, double d) {
    const auto i = static_cast<std::size_t>(v);
    vertex_epoch_[i] = epoch_;
    dist_[i] = d;
  }

  [[nodiscard]] std::int32_t parent_edge(std::int32_t v) const {
    const auto i = static_cast<std::size_t>(v);
    return parent_epoch_[i] == epoch_ ? parent_[i] : SmallGraph::kNone;
  }
  void set_parent_edge(std::int32_t v, std::int32_t e) {
    const auto i = static_cast<std::size_t>(v);
    parent_epoch_[i] = epoch_;
    parent_[i] = e;
  }

  [[nodiscard]] bool edge_marked(std::int32_t e) const {
    const auto i = static_cast<std::size_t>(e);
    return edge_epoch_[i] == epoch_;
  }
  void mark_edge(std::int32_t e) {
    edge_epoch_[static_cast<std::size_t>(e)] = epoch_;
  }

  /// Goal flags for the A* termination test (stamped like the labels).
  [[nodiscard]] bool is_target(std::int32_t v) const {
    return target_epoch_[static_cast<std::size_t>(v)] == epoch_;
  }
  void mark_target(std::int32_t v) {
    target_epoch_[static_cast<std::size_t>(v)] = epoch_;
  }

  [[nodiscard]] BucketQueue& buckets() { return buckets_; }
  /// Binary-heap storage for the Dijkstra backend and the tree derivation.
  [[nodiscard]] std::vector<std::pair<double, std::int32_t>>& heap() {
    return heap_;
  }
  /// Reused vertex list (the engine's cone repair); cleared by the user.
  [[nodiscard]] std::vector<std::int32_t>& vertex_list() { return list_; }

 private:
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> vertex_epoch_;
  std::vector<double> dist_;
  std::vector<std::uint32_t> parent_epoch_;
  std::vector<std::int32_t> parent_;
  std::vector<std::uint32_t> edge_epoch_;
  std::vector<std::uint32_t> target_epoch_;
  BucketQueue buckets_;
  std::vector<std::pair<double, std::int32_t>> heap_;
  std::vector<std::int32_t> list_;
};

/// Effort of one search, returned to the caller (the engine folds it into
/// its phase-visible totals and the obs counters).
struct SearchEffort {
  std::int64_t pops = 0;         // queue extractions, stale included
  std::int64_t relaxations = 0;  // successful distance improvements
  std::int64_t buckets_touched = 0;  // A* only
  std::int64_t queue_pushes = 0;
};

/// Runs one search from `source` and emits the tentative-tree edges (the
/// union of canonical shortest source→terminal paths) into `out`, walking
/// `terminals` in order. `skip_edge` >= 0 is treated as deleted. The
/// heuristic may be null (forced for the Dijkstra backend); with a
/// heuristic the A* search stops once every terminal's bucket has
/// provably drained (DESIGN.md §11 gives the argument for why the tree
/// region then carries final distances).
SearchEffort path_search_tree(const SmallGraph& graph,
                              PathSearchBackend backend,
                              const GoalHeuristic* heuristic,
                              std::int32_t source,
                              const std::vector<std::int32_t>& terminals,
                              std::int32_t skip_edge,
                              PathSearchScratch& scratch,
                              std::vector<std::int32_t>* out);

/// Cached no-skip reference search over one routing graph, rebuilt at the
/// serial mutation points (graph build, committed edge deletion) and read
/// concurrently by the score warm-up. The scoring loop asks for the
/// tentative tree under dozens of hypothetical single-edge deletions of
/// the *same* graph; the cache answers most of them without a search:
///
///   - `dist` is canonical: every label is a min over single additions
///     dist[x] + w, and equal doubles are identical bits, so any correct
///     label-setting search produces these exact bits — which is what
///     makes "reuse the unaffected labels" a bitwise statement.
///   - `seq` records the reference settle order. An edge (x -> v) with
///     dist[x] + w == dist[v] and seq[x] < seq[v] is a *contributing*
///     predecessor; a vertex all of whose contributing predecessors pass
///     through the skipped edge (directly or transitively) forms the
///     dependency cone — the only labels a skip can change. Everything
///     else keeps its label bit for bit, so only the cone is re-searched
///     (see PathSearchEngine::tentative_tree and DESIGN.md §11).
///   - `tree`/`in_tree` short-circuit the common case: an empty cone and
///     a skip edge outside the canonical tree cannot change the output.
struct SearchCache {
  bool valid = false;
  std::vector<double> dist;                // per vertex; kInf if unsettled
  std::vector<std::int32_t> seq;           // settle index; -1 if unsettled
  std::vector<std::int32_t> settle_order;  // vertices, source first
  std::vector<std::int32_t> tree;          // canonical no-skip tree edges
  std::vector<char> in_tree;               // per edge id
};

/// Search-effort totals the router snapshots per phase. Value-driven, so
/// deterministic across thread counts (the score warm-up computes exactly
/// the keys the serial scan would, hence the same searches run).
struct PathSearchStats {
  std::int64_t searches = 0;
  std::int64_t pops = 0;
  std::int64_t relaxations = 0;
};

/// Pluggable path-search engine shared by one router: the backend choice,
/// one scratch arena per exec slot (indexed by ExecContext::current_slot,
/// so concurrent score warm-up searches never share state), and the
/// running effort totals. RoutingGraphs get a pointer via
/// set_path_search(); graphs without an engine fall back to a private
/// Dijkstra scratch, preserving the historical standalone behavior.
class PathSearchEngine {
 public:
  /// `exec` may be null (slot 0 only — fine for single-threaded use).
  PathSearchEngine(PathSearchBackend backend, const ExecContext* exec);
  ~PathSearchEngine();

  PathSearchEngine(const PathSearchEngine&) = delete;
  PathSearchEngine& operator=(const PathSearchEngine&) = delete;

  [[nodiscard]] PathSearchBackend backend() const { return backend_; }

  /// Rebuilds a graph's search cache with one full reference search (seq
  /// recording included) plus the canonical tree. Must be called from the
  /// graph's serial mutation points only — the cache is read lock-free by
  /// concurrent scorers. The build's pops/relaxations fold into the effort
  /// totals, but it is not counted as a search: `searches` stays the query
  /// count, identical across backends. The Steiner backend memoizes its
  /// no-skip tree instead (built with exactly the live query
  /// configuration: same heuristic, same sink weights), leaving
  /// dist/seq/settle_order empty — cone repair is unsound for it, so
  /// skip-edge queries always run a full construction.
  void refresh_cache(const SmallGraph& graph, std::int32_t source,
                     const std::vector<std::int32_t>& terminals,
                     SearchCache* cache,
                     const GoalHeuristic* heuristic = nullptr,
                     const std::vector<double>* sink_weights = nullptr);

  /// Runs one tentative-tree search using the calling thread's scratch.
  /// `heuristic` is ignored by the Dijkstra backend and may be null for
  /// A* (which then degrades to h = 0, plain Dijkstra in a dial queue) and
  /// for Steiner (full searches, no pruning). `cache` may be null; a valid
  /// cache lets the goal-oriented backend answer the query from the cached
  /// labels (cone repair) instead of a full search — bit-identically, see
  /// SearchCache — and lets the Steiner backend return its memoized
  /// no-skip tree. The reference backend never consults it.
  /// `sink_weights` (Steiner only) aligns index-for-index with
  /// `terminals`; null or empty means w = 0 everywhere (pure length
  /// minimization).
  void tentative_tree(const SmallGraph& graph, const GoalHeuristic* heuristic,
                      const SearchCache* cache, std::int32_t source,
                      const std::vector<std::int32_t>& terminals,
                      std::int32_t skip_edge,
                      std::vector<std::int32_t>* out,
                      const std::vector<double>* sink_weights = nullptr);

  [[nodiscard]] PathSearchStats stats() const;

 private:
  PathSearchBackend backend_;
  const ExecContext* exec_;
  std::vector<std::unique_ptr<PathSearchScratch>> scratch_;  // one per slot
  std::atomic<std::int64_t> searches_{0};
  std::atomic<std::int64_t> pops_{0};
  std::atomic<std::int64_t> relaxations_{0};
};

}  // namespace bgr

#include "bgr/route/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bgr/common/log.hpp"
#include "bgr/common/natural_order.hpp"
#include "bgr/common/stopwatch.hpp"
#include "bgr/exec/parallel.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/obs/trace.hpp"
#include "bgr/route/steiner_tree.hpp"

namespace bgr {

namespace {

/// Router metrics. Deletions, reroutes, graph builds and score-cache
/// *misses* are semantic: the set of keys computed per selection round is
/// identical whether the warm-up fans out or the serial scan fills them
/// lazily. Cache *hits* are not — the parallel warm-up touches each
/// warmed key a second time from the winner scan — so they sit in the
/// nondeterministic namespace.
struct RouteMetrics {
  Counter& deleted_edges = MetricsRegistry::global().counter(
      "route.deleted_edges", MetricScope::kSemantic);
  Counter& reroutes = MetricsRegistry::global().counter(
      "route.reroutes", MetricScope::kSemantic);
  Counter& graphs_built = MetricsRegistry::global().counter(
      "route.graphs_built", MetricScope::kSemantic);
  Counter& score_miss = MetricsRegistry::global().counter(
      "route.score_cache_miss", MetricScope::kSemantic);
  Counter& score_hit = MetricsRegistry::global().counter(
      "route.score_cache_hit", MetricScope::kNonDeterministic);
  Counter& feed_cells = MetricsRegistry::global().counter(
      "layout.feed_cells_added", MetricScope::kSemantic);
  Counter& widen_pitches = MetricsRegistry::global().counter(
      "layout.widen_pitches", MetricScope::kSemantic);
  Histogram& graph_edges = MetricsRegistry::global().histogram(
      "route.graph_edges", MetricScope::kSemantic);
  /// Sharded-deletion decomposition (DESIGN.md §13). All semantic: the
  /// decomposition is a pure function of the net footprints and each
  /// shard's loop is value-driven, so every count matches at any thread
  /// count (worker adds commute through the atomic counters).
  Counter& shard_components = MetricsRegistry::global().counter(
      "shard.components", MetricScope::kSemantic);
  Counter& shard_commits = MetricsRegistry::global().counter(
      "shard.commits", MetricScope::kSemantic);
  Counter& shard_fallbacks = MetricsRegistry::global().counter(
      "shard.fallbacks", MetricScope::kSemantic);
  Histogram& shard_nets = MetricsRegistry::global().histogram(
      "shard.nets", MetricScope::kSemantic);
};

RouteMetrics& route_metrics() {
  static RouteMetrics* const m = new RouteMetrics();
  return *m;
}

/// Minimum *stale* score count before the warm-up fans out; below this the
/// serial lazy path is cheaper. Purely a performance knob — warmed and
/// lazily computed keys are identical.
constexpr std::int64_t kParallelScoreMin = 32;
/// Candidates per warm-up chunk (scoring one edge walks constraint arcs
/// and density charts, so chunks stay small for load balance).
constexpr std::int64_t kScoreGrain = 16;

}  // namespace

GlobalRouter::GlobalRouter(Netlist& netlist, Placement placement,
                           TechParams tech,
                           std::vector<PathConstraint> constraints,
                           RouterOptions options)
    : netlist_(netlist),
      placement_(std::move(placement)),
      tech_(tech),
      options_(options),
      constraints_(std::move(constraints)),
      exec_(options.shared_pool != nullptr
                ? std::make_unique<ExecContext>(options.shared_pool)
                : std::make_unique<ExecContext>(
                      options.threads == 0 ? ExecContext::hardware_threads()
                                           : options.threads)),
      path_engine_(std::make_unique<PathSearchEngine>(options.path_search,
                                                      exec_.get())) {
  // The chip-level lookahead table is a pure function of the row geometry
  // (columns may widen during routing; rows never change), so one build in
  // the constructor serves every graph of every phase. Serve passes a
  // cached table in; standalone runs build their own here.
  register_lookahead_metrics();
  register_steiner_metrics();
  if (options_.lookahead == LookaheadMode::kMap &&
      (options_.path_search == PathSearchBackend::kAstar ||
       options_.path_search == PathSearchBackend::kSteiner) &&
      options_.lookahead_table == nullptr) {
    options_.lookahead_table =
        std::make_shared<const ChipLookahead>(placement_.row_count(), tech_);
  }
}

GlobalRouter::~GlobalRouter() = default;

const ChipLookahead* GlobalRouter::graph_lookahead() const {
  return options_.lookahead == LookaheadMode::kMap
             ? options_.lookahead_table.get()
             : nullptr;
}

const RoutingGraph& GlobalRouter::net_graph(NetId net) const {
  const auto& g = graphs_.at(net);
  BGR_CHECK(g != nullptr);
  return *g;
}

double GlobalRouter::net_length_um(NetId net) const {
  return net_graph(net).alive_length_um();
}

NetId GlobalRouter::primary_of(NetId net) const {
  const Net& n = netlist_.net(net);
  if (n.is_differential() && !n.diff_primary) return n.diff_partner;
  return net;
}

bool GlobalRouter::timing_active_for(NetId net) const {
  return options_.use_constraints &&
         !analyzer_->constraints_of_net(net).empty();
}

std::vector<double> GlobalRouter::sink_weights_for(NetId net) const {
  std::vector<double> out;
  if (options_.path_search != PathSearchBackend::kSteiner) return out;
  const double w =
      net.index() < net_sink_weight_.size() ? net_sink_weight_.at(net) : 0.0;
  out.assign(graphs_.at(net)->terminal_vertices().size(), w);
  return out;
}

std::int32_t GlobalRouter::net_density_width(NetId net) const {
  // Each member of a differential pair contributes its own 1-pitch track;
  // a w-pitch net occupies w tracks everywhere.
  return netlist_.net(net).pitch_width;
}

void GlobalRouter::build_all_graphs() {
  ScopedSpan span("build_graphs", "route");
  graphs_.clear();
  graphs_.resize(static_cast<std::size_t>(netlist_.net_count()));
  scores_.clear();
  scores_.resize(static_cast<std::size_t>(netlist_.net_count()));
  net_version_.assign(static_cast<std::size_t>(netlist_.net_count()), 0);
  // Each G_r(n) depends only on the (const) netlist, placement and
  // feedthrough assignment, so all nets build concurrently — the shadow of
  // a differential pair reads its primary's *assignment*, not its graph.
  parallel_for(
      *exec_, netlist_.net_count(),
      [&](std::int64_t i) {
        const NetId n{static_cast<std::int32_t>(i)};
        const Net& net = netlist_.net(n);
        if (net.is_differential() && !net.diff_primary) {
          graphs_[n] = std::make_unique<RoutingGraph>(
              netlist_, placement_, tech_, *assignment_, n, net.diff_partner,
              1);
        } else {
          graphs_[n] = std::make_unique<RoutingGraph>(netlist_, placement_,
                                                      tech_, *assignment_, n);
        }
        // Attach inside the region so the A* goal heuristics (one exact
        // multi-source Dijkstra per net, or the O(terminals) lookahead
        // derivation) also build concurrently.
        const std::vector<double> weights = sink_weights_for(n);
        graphs_[n]->set_path_search(path_engine_.get(), graph_lookahead(),
                                    &weights);
      },
      /*grain=*/1);
  // Pre-size the score caches so the parallel warm-up never resizes a
  // vector another thread is reading.
  for (const NetId n : netlist_.nets()) {
    route_metrics().graphs_built.add(1);
    route_metrics().graph_edges.record(graphs_[n]->graph().edge_count());
    scores_[n].assign(
        static_cast<std::size_t>(graphs_[n]->graph().edge_count()),
        ScoreCache{});
  }
  // Differential pairs must be homogeneous so edge ids mirror one-to-one.
  for (const NetId n : netlist_.nets()) {
    const Net& net = netlist_.net(n);
    if (!net.is_differential() || !net.diff_primary) continue;
    const RoutingGraph& a = *graphs_[n];
    const RoutingGraph& b = *graphs_[net.diff_partner];
    BGR_CHECK_MSG(a.graph().edge_count() == b.graph().edge_count(),
                  "differential pair graphs not homogeneous: " + net.name);
    for (std::int32_t e = 0; e < a.graph().edge_count(); ++e) {
      BGR_CHECK(a.edge_info(e).kind == b.edge_info(e).kind);
    }
  }
  for (const NetId n : netlist_.nets()) {
    register_graph_density(n);
    refresh_net_estimate(n);
  }
  analyzer_->update_all();
}

void GlobalRouter::register_graph_density(NetId net) {
  const RoutingGraph& g = *graphs_[net];
  const std::int32_t w = net_density_width(net);
  for (const auto e : g.alive_edges()) {
    const RouteEdgeInfo& info = g.edge_info(e);
    if (!info.is_trunk()) continue;
    density_->add_total(info.channel, info.span, w);
    if (g.is_bridge(e)) density_->add_bridge(info.channel, info.span, w);
  }
}

void GlobalRouter::unregister_graph_density(NetId net) {
  const RoutingGraph& g = *graphs_[net];
  const std::int32_t w = net_density_width(net);
  for (const auto e : g.alive_edges()) {
    const RouteEdgeInfo& info = g.edge_info(e);
    if (!info.is_trunk()) continue;
    density_->remove_total(info.channel, info.span, w);
    if (g.is_bridge(e)) density_->remove_bridge(info.channel, info.span, w);
  }
}

double GlobalRouter::net_extra_um(NetId net) const {
  return extra_um_.empty() ? 0.0 : extra_um_.at(net);
}

void GlobalRouter::refresh_net_estimate(NetId net,
                                        TimingAnalyzer::UpdateSlot* slot) {
  const RoutingGraph& g = *graphs_[net];
  const double cap =
      tech_.wire_cap_pf(g.estimated_length_um() + net_extra_um(net),
                        netlist_.net(net).pitch_width);
  if (options_.delay_model == DelayModel::kElmoreRC) {
    const auto rc = g.elmore(tech_, netlist_.net(net).pitch_width,
                             [&](TerminalId t) {
                               return netlist_.terminal_fanin_cap_pf(t);
                             });
    delay_graph_->set_net_rc(net, cap, rc.sink_wire_ps);
  } else {
    delay_graph_->set_net_cap(net, cap);
  }
  if (timing_active_for(net)) {
    if (slot != nullptr) {
      analyzer_->update_for_net(net, *slot);
    } else {
      analyzer_->update_for_net(net);
    }
  }
  ++net_version_[net];
}

std::uint64_t GlobalRouter::stamp_for(NetId net, std::int32_t edge) const {
  const RoutingGraph& g = *graphs_[net];
  const RouteEdgeInfo& info = g.edge_info(edge);
  std::uint64_t stamp = net_version_[net];
  const Net& n = netlist_.net(net);
  if (n.is_differential()) stamp += net_version_[n.diff_partner];
  // Timing staleness is keyed off the dirty-net set: only the versions of
  // the constraints this net (and its differential partner) belongs to
  // enter the stamp, so an update that left a constraint's arrival times
  // untouched invalidates nothing. Every component is monotone, so a sum
  // can never reproduce an older stamp.
  if (options_.use_constraints) {
    auto add_timing = [&](NetId member) {
      for (const ConstraintId p : analyzer_->constraints_of_net(member)) {
        stamp += analyzer_->version(p) * 0x10000ULL;
      }
    };
    add_timing(net);
    if (n.is_differential()) add_timing(n.diff_partner);
  }
  if (info.kind == RouteEdgeKind::kFeed) {
    stamp += density_->version(info.channel);
    stamp += density_->version(info.channel + 1);
  } else {
    stamp += density_->version(info.channel);
  }
  return stamp;
}

SelectionKey GlobalRouter::compute_key(NetId net, std::int32_t edge) const {
  const RoutingGraph& g = *graphs_[net];
  const RouteEdgeInfo& info = g.edge_info(edge);
  SelectionKey key;
  key.neg_length = -info.length_um;
  key.branch = info.is_trunk() ? 0 : 1;

  if (options_.use_density_criteria) {
    auto fill = [&](std::int32_t channel, SelectionKey& k) {
      const ChannelDensityParams& cp = density_->channel_params(channel);
      const EdgeDensityParams ep = density_->edge_params(channel, info.span);
      k.f_min = cp.c_min - ep.d_min;
      k.n_min = cp.nc_min - ep.nd_min;
      k.f_max = cp.c_max - ep.d_max;
      k.n_max = cp.nc_max - ep.nd_max;
    };
    if (info.kind == RouteEdgeKind::kFeed) {
      // A feedthrough edge touches both adjacent channels at one column;
      // score it against the more critical of the two.
      SelectionKey lo = key;
      SelectionKey hi = key;
      fill(info.channel, lo);
      fill(info.channel + 1, hi);
      const bool lo_worse = lo.f_min != hi.f_min ? lo.f_min < hi.f_min
                                                 : lo.f_max < hi.f_max;
      key = lo_worse ? lo : hi;
    } else {
      fill(info.channel, key);
    }
  }

  if (options_.use_constraints && options_.use_delay_criteria) {
    auto accumulate = [&](NetId member, const RoutingGraph& mg) {
      if (analyzer_->constraints_of_net(member).empty()) return;
      const double len = mg.estimated_length_um(edge) + net_extra_um(member);
      const double cap =
          tech_.wire_cap_pf(len, netlist_.net(member).pitch_width);
      DelayCriteria dc;
      if (options_.use_net_budgets) {
        dc = budget_criteria(
            member, delay_graph_->net_arc_delay_for_cap(member, cap));
      } else if (options_.delay_model == DelayModel::kElmoreRC) {
        // Worst-sink arc delay after the deletion: lumped part plus the
        // largest per-sink Elmore wire term (pessimistic, in the spirit of
        // the LM(e, P) estimate).
        const auto rc = mg.elmore(tech_, netlist_.net(member).pitch_width,
                                  [&](TerminalId t) {
                                    return netlist_.terminal_fanin_cap_pf(t);
                                  },
                                  edge);
        double worst_extra = 0.0;
        for (const auto& [term, ps] : rc.sink_wire_ps) {
          (void)term;
          worst_extra = std::max(worst_extra, ps);
        }
        dc = analyzer_->evaluate_arc_delay(
            member,
            delay_graph_->net_arc_delay_for_cap(member, cap) + worst_extra);
      } else {
        dc = analyzer_->evaluate(member, cap);
      }
      key.critical_count += dc.critical_count;
      key.global_delay += dc.global_delay;
      key.local_delay += dc.local_delay;
    };
    accumulate(net, g);
    const Net& n = netlist_.net(net);
    if (n.is_differential()) {
      accumulate(n.diff_partner, *graphs_[n.diff_partner]);
    }
  }
  return key;
}

const SelectionKey& GlobalRouter::cached_key(NetId net, std::int32_t edge) {
  auto& vec = scores_[net];
  if (vec.size() < static_cast<std::size_t>(graphs_[net]->graph().edge_count())) {
    vec.resize(static_cast<std::size_t>(graphs_[net]->graph().edge_count()));
  }
  ScoreCache& sc = vec[static_cast<std::size_t>(edge)];
  const std::uint64_t stamp = stamp_for(net, edge);
  if (!sc.valid || sc.stamp != stamp) {
    route_metrics().score_miss.add(1);
    sc.key = compute_key(net, edge);
    sc.stamp = stamp;
    sc.valid = true;
  } else {
    route_metrics().score_hit.add(1);
  }
  return sc.key;
}

bool GlobalRouter::score_is_fresh(NetId net, std::int32_t edge) const {
  const auto& vec = scores_[net];
  const ScoreCache& sc = vec[static_cast<std::size_t>(edge)];
  return sc.valid && sc.stamp == stamp_for(net, edge);
}

void GlobalRouter::warm_scores(const std::vector<Candidate>& candidates) {
  if (exec_->serial()) return;
  // After the first few deletions most keys are still fresh (the stamps
  // localize invalidation to the touched nets/channels), so fan out only
  // over the stale ones; the lazy serial path covers stragglers.
  stale_.clear();
  for (const Candidate& c : candidates) {
    const RoutingGraph& g = *graphs_[c.net];
    if (!g.graph().edge_alive(c.edge) || g.is_bridge(c.edge)) continue;
    if (!score_is_fresh(c.net, c.edge)) stale_.push_back(c);
  }
  const auto n = static_cast<std::int64_t>(stale_.size());
  if (n < kParallelScoreMin) return;
  // Everything the scorers read is frozen for the duration: graphs,
  // densities and timing only change in commit_delete (serial). The lazy
  // channel-params cache is the one mutable read path — flush it now so
  // channel_params() is a pure read from the workers.
  density_->refresh_params();
  parallel_for(
      *exec_, n,
      [&](std::int64_t i) {
        const Candidate& c = stale_[static_cast<std::size_t>(i)];
        (void)cached_key(c.net, c.edge);  // unique (net, edge) per slot
      },
      kScoreGrain);
}

void GlobalRouter::delete_in_graph(NetId net, std::int32_t edge) {
  RoutingGraph& g = *graphs_[net];
  const std::int32_t w = net_density_width(net);
  const auto result = g.delete_edge(edge);
  for (const auto& removed : result.removed_edges) {
    const RouteEdgeInfo& info = g.edge_info(removed.edge);
    if (!info.is_trunk()) continue;
    density_->remove_total(info.channel, info.span, w);
    if (removed.was_bridge) {
      density_->remove_bridge(info.channel, info.span, w);
    }
  }
  for (const auto nb : result.new_bridges) {
    const RouteEdgeInfo& info = g.edge_info(nb);
    if (!info.is_trunk()) continue;
    density_->add_bridge(info.channel, info.span, w);
  }
}

void GlobalRouter::apply_delete(NetId net, std::int32_t edge,
                                TimingAnalyzer::UpdateSlot* slot) {
  delete_in_graph(net, edge);
  refresh_net_estimate(net, slot);
  const Net& n = netlist_.net(net);
  if (n.is_differential()) {
    // Mirrored deletion on the homogeneous shadow graph (§4.1).
    delete_in_graph(n.diff_partner, edge);
    refresh_net_estimate(n.diff_partner, slot);
  }
}

void GlobalRouter::commit_delete(NetId net, std::int32_t edge,
                                 PhaseStats& stats) {
  apply_delete(net, edge, /*slot=*/nullptr);
  ++stats.deletions;
  route_metrics().deleted_edges.add(1);
  if (options_.deletion_observer) options_.deletion_observer(net, edge);
}

bool GlobalRouter::run_sharded_deletion(
    const std::vector<Candidate>& candidates, PhaseStats& stats) {
  // Footprints of the nets that still own deletable edges. A net whose
  // graph is already a tree neither reads nor writes anything in the loop,
  // so it joins no shard (and cannot glue otherwise-independent components
  // together).
  std::vector<ShardNetInfo> infos;
  IdVector<NetId, std::int32_t> info_of;
  info_of.assign(static_cast<std::size_t>(netlist_.net_count()), -1);
  for (const Candidate& c : candidates) {
    if (info_of[c.net] >= 0) continue;
    info_of[c.net] = static_cast<std::int32_t>(infos.size());
    ShardNetInfo info;
    info.net = c.net;
    auto add_member = [&](NetId member) {
      // Channels of *all* alive edges, not just the current candidates:
      // pruned tails and freshly re-flagged bridges update density on any
      // of them, and candidate scoring reads the channel-wide aggregates.
      const RoutingGraph& g = *graphs_[member];
      for (const auto e : g.alive_edges()) {
        const RouteEdgeInfo& ei = g.edge_info(e);
        info.channels.push_back(ei.channel);
        if (ei.kind == RouteEdgeKind::kFeed) {
          info.channels.push_back(ei.channel + 1);
        }
      }
      if (options_.use_constraints) {
        for (const ConstraintId p : analyzer_->constraints_of_net(member)) {
          info.constraints.push_back(p.index());
        }
      }
    };
    add_member(c.net);
    const Net& n = netlist_.net(c.net);
    if (n.is_differential()) add_member(n.diff_partner);
    auto uniq = [](std::vector<std::int32_t>& v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    uniq(info.channels);
    uniq(info.constraints);
    infos.push_back(std::move(info));
  }

  shards_ = compute_shards(std::move(infos), density_->channel_count(),
                           analyzer_->constraint_count());
  route_metrics().shard_components.add(shards_.shard_count());
  for (const auto& members : shards_.shards) {
    route_metrics().shard_nets.record(
        static_cast<std::int64_t>(members.size()));
  }
  if (shards_.shard_count() <= 1) {
    // One interaction component: the global scan loop the caller falls
    // back to *is* that single shard's loop, minus the replay detour.
    route_metrics().shard_fallbacks.add(1);
    return false;
  }

  const auto shard_count = static_cast<std::size_t>(shards_.shard_count());
  std::vector<std::vector<Candidate>> per_shard(shard_count);
  for (const Candidate& c : candidates) {
    per_shard[static_cast<std::size_t>(
                  shards_.shard_of[static_cast<std::size_t>(info_of[c.net])])]
        .push_back(c);
  }

  // One timing slot per exec slot: workers run their STA refreshes through
  // private scratch and the caller folds the counters back after the join.
  std::vector<TimingAnalyzer::UpdateSlot> slots;
  slots.reserve(static_cast<std::size_t>(exec_->thread_count()));
  for (std::int32_t i = 0; i < exec_->thread_count(); ++i) {
    slots.emplace_back(*analyzer_);
  }

  // Each worker runs the exact serial greedy over its shard, recording
  // every commit with the key it was selected under. Cross-shard state is
  // disjoint, so that key equals the key the unsharded global loop would
  // see at the step where it commits the same edge — which is what makes
  // the replay below a faithful reconstruction of the serial order.
  struct CommitRec {
    NetId net;
    std::int32_t edge;
    SelectionKey key;  // key at selection == key at global commit time
  };
  std::vector<std::vector<CommitRec>> logs(shard_count);
  parallel_for(
      *exec_, static_cast<std::int64_t>(shard_count),
      [&](std::int64_t s) {
        std::vector<Candidate>& cand = per_shard[static_cast<std::size_t>(s)];
        std::vector<CommitRec>& log = logs[static_cast<std::size_t>(s)];
        TimingAnalyzer::UpdateSlot& slot =
            slots[static_cast<std::size_t>(exec_->current_slot())];
        std::int64_t scanned = 0;
        while (true) {
          // Same compaction scan and (key, net name, edge) tie-break as
          // the global loop in initial_routing(); no parallel warm-up —
          // regions never nest.
          std::size_t write = 0;
          std::size_t best_index = 0;
          bool have_best = false;
          SelectionKey best_key;
          for (std::size_t i = 0; i < cand.size(); ++i) {
            const Candidate& c = cand[i];
            const RoutingGraph& g = *graphs_[c.net];
            if (!g.graph().edge_alive(c.edge) || g.is_bridge(c.edge)) continue;
            const SelectionKey& key = cached_key(c.net, c.edge);
            cand[write] = c;
            bool take = !have_best || key_less(key, best_key, order_);
            if (!take && !key_less(best_key, key, order_)) {
              const Candidate& b = cand[best_index];
              const std::string& cn = netlist_.net(c.net).name;
              const std::string& bn = netlist_.net(b.net).name;
              take = natural_less(cn, bn) || (cn == bn && c.edge < b.edge);
            }
            if (take) {
              best_key = key;
              best_index = write;
              have_best = true;
            }
            ++write;
          }
          cand.resize(write);
          scanned += static_cast<std::int64_t>(write);
          if (!have_best) break;
          const Candidate chosen = cand[best_index];
          log.push_back(CommitRec{chosen.net, chosen.edge, best_key});
          apply_delete(chosen.net, chosen.edge, &slot);
        }
        shards_.scans[static_cast<std::size_t>(s)] = scanned;
        shards_.commits[static_cast<std::size_t>(s)] =
            static_cast<std::int64_t>(log.size());
      },
      /*grain=*/1);
  for (auto& slot : slots) analyzer_->absorb(slot);

  // Canonical replay: k-way merge of the shard logs, always advancing the
  // best *front*. The serial loop's next commit is the minimum over all
  // candidates; within a shard that minimum is the shard's own next local
  // commit (nothing outside the shard can change its keys), so the global
  // minimum is the best front. Comparing fronts — never sorting whole
  // logs, since a shard's key sequence is not monotone — reproduces the
  // serial commit order exactly, and with it the observer call sequence
  // and stats.
  struct HeapEntry {
    SelectionKey key;
    const std::string* name;
    std::int32_t edge;
    std::int32_t shard;
  };
  auto better = [&](const HeapEntry& a, const HeapEntry& b) {
    if (key_less(a.key, b.key, order_)) return true;
    if (key_less(b.key, a.key, order_)) return false;
    return natural_less(*a.name, *b.name) ||
           (*a.name == *b.name && a.edge < b.edge);
  };
  // std::push_heap keeps the comparator's greatest on top; invert.
  auto heap_cmp = [&](const HeapEntry& a, const HeapEntry& b) {
    return better(b, a);
  };
  std::vector<HeapEntry> heap;
  std::vector<std::size_t> pos(shard_count, 0);
  auto push_front = [&](std::int32_t s) {
    const auto& log = logs[static_cast<std::size_t>(s)];
    const std::size_t i = pos[static_cast<std::size_t>(s)];
    if (i >= log.size()) return;
    heap.push_back(HeapEntry{log[i].key, &netlist_.net(log[i].net).name,
                             log[i].edge, s});
    std::push_heap(heap.begin(), heap.end(), heap_cmp);
  };
  for (std::size_t s = 0; s < shard_count; ++s) {
    push_front(static_cast<std::int32_t>(s));
  }
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_cmp);
    const std::int32_t s = heap.back().shard;
    heap.pop_back();
    const CommitRec& rec =
        logs[static_cast<std::size_t>(s)][pos[static_cast<std::size_t>(s)]++];
    ++stats.deletions;
    route_metrics().deleted_edges.add(1);
    route_metrics().shard_commits.add(1);
    if (options_.deletion_observer) options_.deletion_observer(rec.net, rec.edge);
    push_front(s);
  }
  return true;
}

void GlobalRouter::compute_net_budgets() {
  // Huang-style budgeting: every net starts from its current (full
  // candidate graph, i.e. near-minimal) wiring delay and receives an even
  // share of each constraint's margin, divided by the number of nets on
  // that constraint's critical path. Nets under several constraints keep
  // the tightest budget.
  net_budget_ps_.assign(static_cast<std::size_t>(netlist_.net_count()),
                        std::numeric_limits<double>::infinity());
  for (const ConstraintId p : analyzer_->constraints()) {
    const auto path_nets = analyzer_->critical_path_nets(p);
    const double share =
        std::max(0.0, analyzer_->margin_ps(p)) /
        std::max<std::size_t>(path_nets.size(), 1);
    for (const NetId n : analyzer_->nets_of_constraint(p)) {
      const double budget = delay_graph_->net_arc_delay(n) + share;
      net_budget_ps_[n] = std::min(net_budget_ps_[n], budget);
    }
  }
}

DelayCriteria GlobalRouter::budget_criteria(NetId net,
                                            double new_arc_delay_ps) const {
  DelayCriteria out;
  const double budget = net_budget_ps_.at(net);
  if (!std::isfinite(budget)) return out;
  const double d_cur = delay_graph_->net_arc_delay(net);
  const double margin_new = budget - new_arc_delay_ps;
  const double margin_cur = budget - d_cur;
  if (margin_new <= 0.0) ++out.critical_count;
  const double scale = std::max(budget, 1.0);
  out.global_delay = penalty(margin_new, scale) - penalty(margin_cur, scale);
  out.local_delay = new_arc_delay_ps - d_cur;
  return out;
}

void GlobalRouter::initial_routing(PhaseStats& stats) {
  if (!options_.concurrent_initial) {
    // Sequential baseline: slack-ordered net-at-a-time reduction.
    const auto slacks = analyzer_->net_slacks();
    std::vector<NetId> order;
    for (const NetId n : netlist_.nets()) {
      const Net& net = netlist_.net(n);
      if (net.is_differential() && !net.diff_primary) continue;
      order.push_back(n);
    }
    std::stable_sort(order.begin(), order.end(), [&](NetId a, NetId b) {
      if (slacks.at(a) != slacks.at(b)) return slacks.at(a) < slacks.at(b);
      // Names, not ids: relabeling-invariant order (natural_order.hpp).
      return natural_less(netlist_.net(a).name, netlist_.net(b).name);
    });
    for (const NetId n : order) {
      reduce_net_to_tree(n, stats);
    }
    return;
  }

  std::vector<Candidate> candidates;
  for (const NetId n : netlist_.nets()) {
    const Net& net = netlist_.net(n);
    if (net.is_differential() && !net.diff_primary) continue;  // led by primary
    for (const auto e : graphs_[n]->non_bridge_edges()) {
      candidates.push_back(Candidate{n, e});
    }
  }

  if (options_.shard_deletion && run_sharded_deletion(candidates, stats)) {
    return;
  }

  while (true) {
    // Score all surviving candidates in parallel, then pick the winner in
    // the serial scan below — first smallest key wins, which is the same
    // deterministic (score, net, edge) tie-break the pure serial loop
    // applies, so edge-deletion order is independent of the thread count.
    warm_scores(candidates);
    std::size_t write = 0;
    std::size_t best_index = 0;
    bool have_best = false;
    SelectionKey best_key;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Candidate& c = candidates[i];
      const RoutingGraph& g = *graphs_[c.net];
      if (!g.graph().edge_alive(c.edge) || g.is_bridge(c.edge)) continue;
      const SelectionKey& key = cached_key(c.net, c.edge);
      candidates[write] = c;
      bool take = !have_best || key_less(key, best_key, order_);
      if (!take && !key_less(best_key, key, order_)) {
        // Exact key tie: break on (net name, edge) instead of the scan
        // order, which follows raw net ids — names survive a relabeling
        // of the netlist, so the deletion order (and thus the routed
        // result) is invariant under net-id permutation.
        const Candidate& b = candidates[best_index];
        const std::string& cn = netlist_.net(c.net).name;
        const std::string& bn = netlist_.net(b.net).name;
        take = natural_less(cn, bn) || (cn == bn && c.edge < b.edge);
      }
      if (take) {
        best_key = key;
        best_index = write;
        have_best = true;
      }
      ++write;
    }
    candidates.resize(write);
    if (!have_best) break;
    const Candidate chosen = candidates[best_index];
    commit_delete(chosen.net, chosen.edge, stats);
  }
}

void GlobalRouter::reduce_net_to_tree(NetId net, PhaseStats& stats) {
  std::vector<Candidate> warm;
  while (true) {
    const auto candidates = graphs_[net]->non_bridge_edges();
    if (candidates.empty()) break;
    warm.clear();
    for (const auto e : candidates) warm.push_back(Candidate{net, e});
    warm_scores(warm);
    std::int32_t best = -1;
    SelectionKey best_key;
    for (const auto e : candidates) {
      const SelectionKey& key = cached_key(net, e);
      if (best < 0 || key_less(key, best_key, order_)) {
        best_key = key;
        best = e;
      }
    }
    commit_delete(net, best, stats);
  }
}

void GlobalRouter::reroute_net(NetId net, PhaseStats& stats) {
  net = primary_of(net);
  const Net& n = netlist_.net(net);
  std::vector<NetId> members{net};
  if (n.is_differential()) members.push_back(n.diff_partner);
  for (const NetId member : members) {
    unregister_graph_density(member);
    if (member == net) {
      graphs_[member] = std::make_unique<RoutingGraph>(netlist_, placement_,
                                                       tech_, *assignment_,
                                                       member);
    } else {
      graphs_[member] = std::make_unique<RoutingGraph>(
          netlist_, placement_, tech_, *assignment_, member, net, 1);
    }
    const std::vector<double> weights = sink_weights_for(member);
    graphs_[member]->set_path_search(path_engine_.get(), graph_lookahead(),
                                     &weights);
    route_metrics().graphs_built.add(1);
    route_metrics().graph_edges.record(graphs_[member]->graph().edge_count());
    scores_[member].assign(
        static_cast<std::size_t>(graphs_[member]->graph().edge_count()),
        ScoreCache{});
    register_graph_density(member);
    refresh_net_estimate(member);
  }
  reduce_net_to_tree(net, stats);
  ++stats.reroutes;
  route_metrics().reroutes.add(1);
}

void GlobalRouter::recover_violations(PhaseStats& stats) {
  constexpr double kEps = 1e-9;
  if (options_.use_net_budgets) {
    // Budget mode: re-route the nets that exceed their own budget.
    for (std::int32_t pass = 0; pass < options_.improvement_passes; ++pass) {
      std::vector<NetId> over;
      for (const NetId n : netlist_.nets()) {
        if (std::isfinite(net_budget_ps_.at(n)) &&
            delay_graph_->net_arc_delay(n) > net_budget_ps_.at(n)) {
          over.push_back(n);
        }
      }
      if (over.empty()) break;
      for (const NetId n : over) reroute_net(n, stats);
    }
    return;
  }
  for (std::int32_t pass = 0; pass < options_.improvement_passes; ++pass) {
    auto violated = analyzer_->violated();
    if (violated.empty()) break;
    std::sort(violated.begin(), violated.end(),
              [&](ConstraintId a, ConstraintId b) {
                return analyzer_->margin_ps(a) < analyzer_->margin_ps(b);
              });
    const double before = analyzer_->worst_margin_ps();
    for (const ConstraintId p : violated) {
      if (analyzer_->margin_ps(p) >= 0.0) continue;  // fixed along the way
      for (const NetId net : analyzer_->critical_path_nets(p)) {
        reroute_net(net, stats);
      }
    }
    if (analyzer_->worst_margin_ps() <= before + kEps) break;
  }
}

void GlobalRouter::improve_delay(PhaseStats& stats) {
  constexpr double kEps = 1e-9;
  auto total_penalty = [&]() {
    double sum = 0.0;
    for (const ConstraintId p : analyzer_->constraints()) {
      sum += penalty(analyzer_->margin_ps(p),
                     analyzer_->constraint(p).limit_ps);
    }
    return sum;
  };
  for (std::int32_t pass = 0; pass < options_.improvement_passes; ++pass) {
    std::vector<ConstraintId> order;
    for (const ConstraintId p : analyzer_->constraints()) order.push_back(p);
    if (order.empty()) break;
    std::sort(order.begin(), order.end(), [&](ConstraintId a, ConstraintId b) {
      return analyzer_->margin_ps(a) < analyzer_->margin_ps(b);
    });
    const double before = total_penalty();
    for (const ConstraintId p : order) {
      for (const NetId net : analyzer_->critical_path_nets(p)) {
        reroute_net(net, stats);
      }
    }
    if (total_penalty() >= before - kEps) break;
  }
}

void GlobalRouter::improve_area(PhaseStats& stats) {
  const CriteriaOrder saved = order_;
  order_ = CriteriaOrder::kAreaFirst;
  // The tier order changed, so every cached key is stale.
  for (auto& vec : scores_) {
    for (auto& sc : vec) sc.valid = false;
  }
  for (std::int32_t pass = 0; pass < options_.improvement_passes; ++pass) {
    const std::int64_t before = density_->sum_max_density();
    // Nets running through the most congested points, most congested first.
    struct Entry {
      NetId net;
      std::int32_t congestion;
    };
    std::vector<Entry> entries;
    for (const NetId n : netlist_.nets()) {
      const Net& net = netlist_.net(n);
      if (net.is_differential() && !net.diff_primary) continue;
      const RoutingGraph& g = *graphs_[n];
      std::int32_t best = 0;
      bool at_peak = false;
      for (const auto e : g.alive_edges()) {
        const RouteEdgeInfo& info = g.edge_info(e);
        if (!info.is_trunk()) continue;
        const auto ep = density_->edge_params(info.channel, info.span);
        const auto& cp = density_->channel_params(info.channel);
        best = std::max(best, ep.d_max);
        at_peak = at_peak || ep.d_max == cp.c_max;
      }
      if (at_peak) entries.push_back(Entry{n, best});
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [&](const Entry& a, const Entry& b) {
                       if (a.congestion != b.congestion) {
                         return a.congestion > b.congestion;
                       }
                       // Name tie-break: relabeling-invariant order.
                       return netlist_.net(a.net).name <
                              netlist_.net(b.net).name;
                     });
    for (const Entry& entry : entries) {
      reroute_net(entry.net, stats);
    }
    if (density_->sum_max_density() >= before) break;
  }
  order_ = saved;
  for (auto& vec : scores_) {
    for (auto& sc : vec) sc.valid = false;
  }
}

void GlobalRouter::finish_phase(PhaseStats& stats) {
  stats.worst_margin_ps = analyzer_->constraint_count() > 0
                              ? analyzer_->worst_margin_ps()
                              : 0.0;
  stats.critical_delay_ps = delay_graph_->critical_delay_ps();
  stats.sum_max_density = density_->sum_max_density();
}

RouteOutcome GlobalRouter::refine(const IdVector<NetId, double>& extra_um) {
  BGR_CHECK_MSG(run_state_ == RunState::kDone,
                "refine() requires a completed run()");
  BGR_CHECK(extra_um.size() == static_cast<std::size_t>(netlist_.net_count()));
  extra_um_ = extra_um;
  for (const NetId n : netlist_.nets()) {
    refresh_net_estimate(n);
  }
  analyzer_->update_all();

  RouteOutcome outcome;
  auto run_phase = [&](const std::string& name, auto&& body, bool enabled) {
    PhaseStats stats;
    stats.name = name;
    ScopedSpan span(name, "phase");
    const ExecStats exec_before = exec_->stats();
    const StaStats sta_before = analyzer_->sta_stats();
    const PathSearchStats path_before = path_engine_->stats();
    Stopwatch watch;
    if (enabled) body(stats);
    stats.seconds = watch.seconds();
    stats.exec_regions = exec_->stats().regions - exec_before.regions;
    stats.exec_chunks = exec_->stats().chunks - exec_before.chunks;
    const StaStats& sta = analyzer_->sta_stats();
    stats.sta_updates = sta.incremental_updates - sta_before.incremental_updates;
    stats.sta_dirty_vertices = sta.dirty_vertices - sta_before.dirty_vertices;
    stats.sta_relaxations = sta.relaxations() - sta_before.relaxations();
    const PathSearchStats path = path_engine_->stats();
    stats.path_searches = path.searches - path_before.searches;
    stats.path_pops = path.pops - path_before.pops;
    stats.path_relaxations = path.relaxations - path_before.relaxations;
    finish_phase(stats);
    outcome.phases.push_back(stats);
  };
  run_phase("refine_recover", [&](PhaseStats& s) { recover_violations(s); },
            options_.use_constraints && options_.enable_violation_recovery);
  run_phase("refine_delay", [&](PhaseStats& s) { improve_delay(s); },
            options_.use_constraints && options_.enable_delay_improvement);
  run_phase("refine_area", [&](PhaseStats& s) { improve_area(s); },
            options_.enable_area_improvement);

  double total_um = 0.0;
  for (const NetId n : netlist_.nets()) {
    BGR_CHECK(graphs_[n]->is_tree());
    total_um += graphs_[n]->alive_length_um();
    refresh_net_estimate(n);
  }
  analyzer_->update_all();
  outcome.critical_delay_ps = delay_graph_->critical_delay_ps();
  outcome.total_length_um = total_um;
  outcome.worst_margin_ps =
      analyzer_->constraint_count() > 0 ? analyzer_->worst_margin_ps() : 0.0;
  outcome.violated_constraints =
      static_cast<std::int32_t>(analyzer_->violated().size());
  outcome.feed_cells_added = feed_cells_added_;
  outcome.widen_pitches = widen_pitches_;
  return outcome;
}

RouteOutcome GlobalRouter::reroute(const std::vector<NetId>& nets) {
  BGR_CHECK_MSG(run_state_ == RunState::kDone,
                "reroute() requires a completed run()");
  RouteOutcome outcome;
  PhaseStats stats;
  stats.name = "eco_reroute";
  ScopedSpan span(stats.name, "phase");
  const ExecStats exec_before = exec_->stats();
  const StaStats sta_before = analyzer_->sta_stats();
  const PathSearchStats path_before = path_engine_->stats();
  Stopwatch watch;
  for (const NetId n : nets) {
    reroute_net(n, stats);
  }
  stats.seconds = watch.seconds();
  stats.exec_regions = exec_->stats().regions - exec_before.regions;
  stats.exec_chunks = exec_->stats().chunks - exec_before.chunks;
  const StaStats& sta = analyzer_->sta_stats();
  stats.sta_updates = sta.incremental_updates - sta_before.incremental_updates;
  stats.sta_dirty_vertices = sta.dirty_vertices - sta_before.dirty_vertices;
  stats.sta_relaxations = sta.relaxations() - sta_before.relaxations();
  const PathSearchStats path = path_engine_->stats();
  stats.path_searches = path.searches - path_before.searches;
  stats.path_pops = path.pops - path_before.pops;
  stats.path_relaxations = path.relaxations - path_before.relaxations;
  finish_phase(stats);
  outcome.phases.push_back(stats);

  double total_um = 0.0;
  for (const NetId n : netlist_.nets()) {
    BGR_CHECK(graphs_[n]->is_tree());
    total_um += graphs_[n]->alive_length_um();
  }
  outcome.critical_delay_ps = delay_graph_->critical_delay_ps();
  outcome.total_length_um = total_um;
  outcome.worst_margin_ps =
      analyzer_->constraint_count() > 0 ? analyzer_->worst_margin_ps() : 0.0;
  outcome.violated_constraints =
      static_cast<std::int32_t>(analyzer_->violated().size());
  outcome.feed_cells_added = feed_cells_added_;
  outcome.widen_pitches = widen_pitches_;
  return outcome;
}

RouteOutcome GlobalRouter::run() {
  BGR_CHECK_MSG(run_state_ == RunState::kIdle,
                "GlobalRouter::run() is single-shot: this router "
                    << (run_state_ == RunState::kDone
                            ? "already completed a run"
                            : "is mid-run or its run failed/was cancelled")
                    << "; construct a fresh GlobalRouter (or use "
                       "serve::RoutingSession, which is re-runnable)");
  run_state_ = RunState::kRunning;
  // Cooperative cancellation point: throws CancelledError when the owner
  // asked this run to stop. Checked at every phase boundary below.
  auto poll_cancel = [&](const char* where) {
    if (options_.cancel_requested && options_.cancel_requested()) {
      throw CancelledError(std::string("route cancelled before ") + where);
    }
  };
  poll_cancel("netlist validation");
  netlist_.validate();

  delay_graph_ = std::make_unique<DelayGraph>(netlist_);
  analyzer_ = std::make_unique<TimingAnalyzer>(
      *delay_graph_,
      options_.use_constraints ? constraints_ : std::vector<PathConstraint>{},
      exec_.get(), options_.incremental_sta);

  // §3.1: net ordering by static slack (zero interconnection capacitance —
  // caps are zero-initialised), then external pin & feedthrough assignment
  // with feed-cell insertion (§4.3).
  const auto slacks = analyzer_->net_slacks();
  auto pipeline = run_assignment_pipeline(netlist_, placement_, slacks);
  assignment_ =
      std::make_unique<FeedthroughAssignment>(std::move(pipeline.assignment));
  feed_cells_added_ = pipeline.feed_cells_added;
  widen_pitches_ = pipeline.widen_pitches;
  route_metrics().feed_cells.add(feed_cells_added_);
  route_metrics().widen_pitches.add(widen_pitches_);

  // Cost-distance sink weights (steiner backend): derived from the same
  // static zero-capacitance slacks the §3.1 net ordering uses, so they are
  // fixed for the whole run — refine/reroute rebuilds see identical
  // weights, and the inputs are relabeling- and thread-invariant.
  net_sink_weight_.assign(static_cast<std::size_t>(netlist_.net_count()), 0.0);
  if (options_.path_search == PathSearchBackend::kSteiner &&
      options_.use_constraints) {
    double scale_ps = 0.0;
    for (const PathConstraint& pc : constraints_) {
      scale_ps = std::max(scale_ps, pc.limit_ps);
    }
    for (const NetId n : netlist_.nets()) {
      if (n.index() < slacks.size()) {
        net_sink_weight_[n] = slack_to_weight(slacks.at(n), scale_ps);
      }
    }
  }

  poll_cancel("routing-graph construction");
  density_ = std::make_unique<DensityMap>(placement_.channel_count(),
                                          placement_.width());
  build_all_graphs();
  if (options_.use_constraints && options_.use_net_budgets) {
    compute_net_budgets();
  }

  RouteOutcome outcome;
  auto run_phase = [&](const std::string& name, auto&& body, bool enabled) {
    poll_cancel(name.c_str());
    PhaseStats stats;
    stats.name = name;
    ScopedSpan span(name, "phase");
    const ExecStats exec_before = exec_->stats();
    const StaStats sta_before = analyzer_->sta_stats();
    const PathSearchStats path_before = path_engine_->stats();
    Stopwatch watch;
    if (enabled) body(stats);
    stats.seconds = watch.seconds();
    stats.exec_regions = exec_->stats().regions - exec_before.regions;
    stats.exec_chunks = exec_->stats().chunks - exec_before.chunks;
    const StaStats& sta = analyzer_->sta_stats();
    stats.sta_updates = sta.incremental_updates - sta_before.incremental_updates;
    stats.sta_dirty_vertices = sta.dirty_vertices - sta_before.dirty_vertices;
    stats.sta_relaxations = sta.relaxations() - sta_before.relaxations();
    const PathSearchStats path = path_engine_->stats();
    stats.path_searches = path.searches - path_before.searches;
    stats.path_pops = path.pops - path_before.pops;
    stats.path_relaxations = path.relaxations - path_before.relaxations;
    finish_phase(stats);
    outcome.phases.push_back(stats);
  };

  run_phase("initial", [&](PhaseStats& s) { initial_routing(s); }, true);
  run_phase("recover_violate", [&](PhaseStats& s) { recover_violations(s); },
            options_.use_constraints && options_.enable_violation_recovery);
  run_phase("improve_delay", [&](PhaseStats& s) { improve_delay(s); },
            options_.use_constraints && options_.enable_delay_improvement);
  run_phase("improve_area", [&](PhaseStats& s) { improve_area(s); },
            options_.enable_area_improvement);

  // Final state: every routing graph is a tree.
  double total_um = 0.0;
  for (const NetId n : netlist_.nets()) {
    BGR_CHECK_MSG(graphs_[n]->is_tree(), "net not reduced to a tree");
    total_um += graphs_[n]->alive_length_um();
    refresh_net_estimate(n);
  }
  analyzer_->update_all();
  outcome.critical_delay_ps = delay_graph_->critical_delay_ps();
  outcome.total_length_um = total_um;
  outcome.worst_margin_ps =
      analyzer_->constraint_count() > 0 ? analyzer_->worst_margin_ps() : 0.0;
  outcome.violated_constraints =
      static_cast<std::int32_t>(analyzer_->violated().size());
  outcome.feed_cells_added = feed_cells_added_;
  outcome.widen_pitches = widen_pitches_;
  run_state_ = RunState::kDone;
  return outcome;
}

}  // namespace bgr

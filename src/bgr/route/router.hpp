#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bgr/common/ids.hpp"
#include "bgr/common/tech.hpp"
#include "bgr/exec/exec_context.hpp"
#include "bgr/layout/placement.hpp"
#include "bgr/netlist/netlist.hpp"
#include "bgr/route/assign.hpp"
#include "bgr/route/criteria.hpp"
#include "bgr/route/density.hpp"
#include "bgr/route/lookahead.hpp"
#include "bgr/route/routing_graph.hpp"
#include "bgr/route/shard.hpp"
#include "bgr/timing/analyzer.hpp"
#include "bgr/timing/delay_graph.hpp"

namespace bgr {

/// Interconnect delay model (§2.1). The paper uses the capacitance model;
/// the RC (Elmore) extension adds the distributed-wire term per sink.
enum class DelayModel {
  kLumpedC,
  kElmoreRC,
};

struct RouterOptions {
  /// False reproduces the unconstrained (pure area-driven) baseline of
  /// Table 2: the constraint set is dropped and all delay criteria vanish.
  bool use_constraints = true;
  DelayModel delay_model = DelayModel::kLumpedC;
  /// Prior-art mode (Huang et al., DAC'93, which the paper contrasts):
  /// before routing, each constraint's margin is distributed to its nets
  /// as fixed per-net delay budgets, and the delay criteria then compare
  /// each net against its own budget instead of the live path margins.
  /// The paper's argument is that "the timing constraints are indeed
  /// given as the critical path constraints" — budgets over- or
  /// under-constrain individual nets.
  bool use_net_budgets = false;
  /// The paper's initial routing deletes edges *concurrently* across all
  /// nets (§3.1: "the interconnection wiring of all nets is determined
  /// concurrently"). Setting this false reproduces the conventional
  /// sequential baseline the paper contrasts: nets are reduced to trees
  /// one at a time in slack order, each seeing only the earlier nets'
  /// decisions.
  bool concurrent_initial = true;
  /// Sharded concurrent deletion (DESIGN.md §13): partition the nets into
  /// interaction-disjoint shards (connected components of the channel- and
  /// constraint-sharing graph) and run each shard's greedy deletion loop on
  /// its own worker, then replay the commits in the canonical merged order.
  /// Because cross-shard state is disjoint, the merged sequence — and hence
  /// the RouteOutcome — is bit-identical to the unsharded serial greedy at
  /// any thread count. Designs that form a single interaction component
  /// fall back to the unsharded loop automatically. Only the concurrent
  /// initial-routing phase shards; `false` keeps the global scan loop.
  bool shard_deletion = true;
  /// Improvement phases (§3.5).
  bool enable_violation_recovery = true;
  bool enable_delay_improvement = true;
  bool enable_area_improvement = true;
  /// Ablations of the §3.4 selection tiers.
  bool use_delay_criteria = true;
  bool use_density_criteria = true;
  /// Maximum rip-up/re-route sweeps per improvement phase.
  std::int32_t improvement_passes = 2;
  /// Incremental STA: after every net-estimate change, re-relax only the
  /// dirty cone of the net's wiring arcs instead of re-sweeping every
  /// touched constraint graph. Arrival times, margins, slacks — and hence
  /// the RouteOutcome — are bit-identical either way; `false` keeps the
  /// full re-sweeps of the original implementation.
  bool incremental_sta = true;
  /// Tentative-tree path search backend (DESIGN.md §11): the goal-oriented
  /// A* dial-queue search (default) or the reference binary-heap Dijkstra.
  /// Both reach the same distance fixpoint and the tree is derived from
  /// distances alone, so the RouteOutcome is bit-identical either way —
  /// A* just settles far fewer vertices per candidate evaluation. The
  /// third backend, kSteiner, builds cost-distance trees (DESIGN.md §16)
  /// and is *allowed* to produce a different RouteOutcome: its contract is
  /// deterministic, verifier-clean and margin-dominant vs the Dijkstra
  /// baseline, enforced by the test_steiner oracle battery.
  PathSearchBackend path_search = PathSearchBackend::kAstar;
  /// Source of the A* lower bounds (DESIGN.md §15): the exact per-graph
  /// multi-source Dijkstra (default) or derivation from the chip-level
  /// ChipLookahead table, built once per design and shared by every
  /// routing graph. Both bounds are admissible, so the RouteOutcome is
  /// bit-identical either way; kMap removes the per-graph build cost.
  /// Ignored by the Dijkstra backend (no bounds are used at all).
  LookaheadMode lookahead = LookaheadMode::kExact;
  /// Pre-built lookahead table for kMap (serve: cached per design). Null
  /// lets the router build its own from the placement it routes.
  std::shared_ptr<const ChipLookahead> lookahead_table;
  /// Test hook: called for every committed edge deletion (differential
  /// pairs fire once, for the primary), in the canonical serial commit
  /// order. When the sharded loop is active the calls are replayed after
  /// its workers join — the sequence is identical to the serial loop's,
  /// but the router state seen by the callback is the post-phase state.
  /// Used by the differential tests to compare deletion sequences; leave
  /// empty in production use.
  std::function<void(NetId, std::int32_t)> deletion_observer;
  /// Worker threads for the exec/ subsystem: per-net routing-graph
  /// construction, candidate-edge criteria scoring, and the levelized STA
  /// sweeps. 1 (the default) is the strict serial path; any N produces a
  /// bit-identical RouteOutcome (see DESIGN.md, "Execution model &
  /// determinism"). 0 means hardware concurrency.
  std::int32_t threads = 1;
  /// Co-tenancy (DESIGN.md §12): when set, the router's parallel regions
  /// run on this externally owned pool (plus the calling thread) instead
  /// of a private one, and `threads` is ignored. Many routers may share
  /// one pool concurrently; each still produces the RouteOutcome it would
  /// produce alone, because chunk partitioning and reduction order never
  /// depend on which threads execute the chunks. The pool must outlive
  /// the router.
  ThreadPool* shared_pool = nullptr;
  /// Cooperative cancellation: polled at every pipeline phase boundary
  /// inside run(). A true return makes run() throw CancelledError at that
  /// boundary, leaving the router in the kRunning (poisoned) state; the
  /// netlist may already carry inserted feed cells, so a cancelled run's
  /// inputs should be discarded, not reused. Leave empty when not
  /// serving.
  std::function<bool()> cancel_requested;
};

/// Per-phase record for the Fig. 2 pipeline report.
struct PhaseStats {
  std::string name;
  std::int64_t deletions = 0;
  std::int64_t reroutes = 0;
  double worst_margin_ps = 0.0;
  double critical_delay_ps = 0.0;
  std::int64_t sum_max_density = 0;
  double seconds = 0.0;
  /// exec/ activity inside the phase (0 when running serially).
  std::int64_t exec_regions = 0;
  std::int64_t exec_chunks = 0;
  /// Timing-engine activity inside the phase: dirty-cone propagations run,
  /// total dirty-cone size (vertices re-relaxed incrementally), and total
  /// vertex relaxations including full sweeps. All deterministic — they
  /// depend on values, never on thread count or wall time.
  std::int64_t sta_updates = 0;
  std::int64_t sta_dirty_vertices = 0;
  std::int64_t sta_relaxations = 0;
  /// Path-search activity inside the phase: tentative-tree searches run,
  /// queue pops and successful relaxations. Value-driven (the same
  /// searches run at any thread count), hence deterministic.
  std::int64_t path_searches = 0;
  std::int64_t path_pops = 0;
  std::int64_t path_relaxations = 0;
};

struct RouteOutcome {
  double critical_delay_ps = 0.0;  // chip-level, from estimated tree lengths
  double total_length_um = 0.0;
  std::int32_t violated_constraints = 0;
  double worst_margin_ps = 0.0;
  std::int32_t feed_cells_added = 0;
  std::int32_t widen_pitches = 0;
  std::vector<PhaseStats> phases;
};

/// The paper's global router (Fig. 2): external-pin & feedthrough
/// assignment with feed-cell insertion, concurrent edge-deletion initial
/// routing under the §3.4 heuristics, and the three rip-up/re-route
/// improvement phases of §3.5. Differential pairs are deleted in lock-step
/// (§4.1); multi-pitch nets contribute width-scaled density and
/// capacitance (§4.2).
class GlobalRouter {
 public:
  GlobalRouter(Netlist& netlist, Placement placement, TechParams tech,
               std::vector<PathConstraint> constraints, RouterOptions options);
  ~GlobalRouter();

  GlobalRouter(const GlobalRouter&) = delete;
  GlobalRouter& operator=(const GlobalRouter&) = delete;

  /// Lifecycle of the single-shot pipeline. kIdle → kRunning on entry to
  /// run(); kRunning → kDone on success. A run that threw (cancellation
  /// included) stays kRunning — the half-routed state is not reusable.
  enum class RunState { kIdle, kRunning, kDone };

  /// Runs the full pipeline. Single-shot by design (the router consumes
  /// its netlist: feed cells are inserted, estimates annotated); calling
  /// it again — or after a failed/cancelled run — throws CheckError with
  /// a clear diagnostic instead of silently re-routing corrupt state.
  /// Services that need a re-runnable pipeline wrap a fresh router per
  /// attempt; see serve::RoutingSession.
  RouteOutcome run();

  [[nodiscard]] RunState run_state() const { return run_state_; }

  /// Back-annotation refinement (extension): after the channel stage has
  /// measured real per-net lengths, feed the per-net estimate corrections
  /// (detailed − estimated, um) back and re-run the §3.5 improvement
  /// loops under the corrected delays. Callable after run(), repeatably.
  RouteOutcome refine(const IdVector<NetId, double>& extra_um);

  /// ECO-style re-route: rips up and re-routes the given nets in the
  /// current state (same feedthrough assignment, live densities and
  /// timing). Differential shadows follow their primaries automatically.
  /// Callable after run(), repeatably.
  RouteOutcome reroute(const std::vector<NetId>& nets);

  [[nodiscard]] const Placement& placement() const { return placement_; }
  [[nodiscard]] const TechParams& tech() const { return tech_; }
  [[nodiscard]] const RouterOptions& options() const { return options_; }
  [[nodiscard]] const DensityMap& density() const { return *density_; }
  [[nodiscard]] const TimingAnalyzer& analyzer() const { return *analyzer_; }
  [[nodiscard]] DelayGraph& delay_graph() { return *delay_graph_; }
  [[nodiscard]] const RoutingGraph& net_graph(NetId net) const;
  [[nodiscard]] const FeedthroughAssignment& assignment() const {
    return *assignment_;
  }
  /// Routed (tree) length of a net after run(), um.
  [[nodiscard]] double net_length_um(NetId net) const;

  /// Interaction-disjoint shard decomposition the initial-routing phase
  /// used (empty when sharding was disabled or the phase ran sequentially).
  /// Exposed for the shard property tests and the scale bench's
  /// work-balance gates.
  [[nodiscard]] const ShardDecomposition& shard_decomposition() const {
    return shards_;
  }

 private:
  struct Candidate {
    NetId net;
    std::int32_t edge;
  };

  void build_all_graphs();
  /// Uniform per-sink weight vector for one net's steiner constructions
  /// (empty unless the steiner backend is active), sized to the graph's
  /// terminal list from net_sink_weight_.
  [[nodiscard]] std::vector<double> sink_weights_for(NetId net) const;
  /// The table graphs derive their A* bounds from, or null in kExact mode
  /// (each graph then runs its own multi-source Dijkstra build).
  [[nodiscard]] const ChipLookahead* graph_lookahead() const;
  void register_graph_density(NetId net);
  void unregister_graph_density(NetId net);
  void refresh_net_estimate(NetId net,
                            TimingAnalyzer::UpdateSlot* slot = nullptr);
  [[nodiscard]] std::int32_t net_density_width(NetId net) const;
  [[nodiscard]] std::uint64_t stamp_for(NetId net, std::int32_t edge) const;
  [[nodiscard]] bool score_is_fresh(NetId net, std::int32_t edge) const;
  [[nodiscard]] SelectionKey compute_key(NetId net, std::int32_t edge) const;
  [[nodiscard]] const SelectionKey& cached_key(NetId net, std::int32_t edge);
  /// Parallel score warm-up: fills the per-edge key caches for all alive
  /// non-bridge candidates so the (serial) winner scan only reads. A pure
  /// cache fill — values are exactly what the scan would compute lazily —
  /// so thread count cannot change the selected edge.
  void warm_scores(const std::vector<Candidate>& candidates);
  /// State mutation of one committed deletion (graph surgery + density +
  /// estimate/STA refresh). The sharded loop calls it from workers with a
  /// per-worker timing slot; commit_delete wraps it with the bookkeeping
  /// (stats, metrics, observer) that must stay on the caller thread.
  void apply_delete(NetId net, std::int32_t edge,
                    TimingAnalyzer::UpdateSlot* slot);
  void commit_delete(NetId net, std::int32_t edge, PhaseStats& stats);
  /// Sharded §3.4 deletion loop (DESIGN.md §13). Returns false when the
  /// decomposition degenerates to a single shard — the caller then runs
  /// the classic global scan loop instead.
  bool run_sharded_deletion(const std::vector<Candidate>& candidates,
                            PhaseStats& stats);
  void delete_in_graph(NetId net, std::int32_t edge);
  /// Deletes edges of one net until its graph is a tree (local loop used by
  /// rip-up/re-route).
  void reduce_net_to_tree(NetId net, PhaseStats& stats);
  void initial_routing(PhaseStats& stats);
  void reroute_net(NetId net, PhaseStats& stats);
  void recover_violations(PhaseStats& stats);
  void improve_delay(PhaseStats& stats);
  void improve_area(PhaseStats& stats);
  void finish_phase(PhaseStats& stats);
  [[nodiscard]] NetId primary_of(NetId net) const;
  [[nodiscard]] bool timing_active_for(NetId net) const;
  void compute_net_budgets();
  [[nodiscard]] double net_extra_um(NetId net) const;
  [[nodiscard]] DelayCriteria budget_criteria(NetId net,
                                              double new_arc_delay_ps) const;

  Netlist& netlist_;
  Placement placement_;
  TechParams tech_;
  RouterOptions options_;
  std::vector<PathConstraint> constraints_;
  std::unique_ptr<ExecContext> exec_;
  std::unique_ptr<PathSearchEngine> path_engine_;

  std::unique_ptr<DelayGraph> delay_graph_;
  std::unique_ptr<TimingAnalyzer> analyzer_;
  std::unique_ptr<FeedthroughAssignment> assignment_;
  std::unique_ptr<DensityMap> density_;
  IdVector<NetId, std::unique_ptr<RoutingGraph>> graphs_;
  IdVector<NetId, std::vector<ScoreCache>> scores_;
  std::vector<Candidate> stale_;  // warm_scores scratch, reused across calls
  IdVector<NetId, std::uint64_t> net_version_;
  IdVector<NetId, double> net_budget_ps_;  // kNetBudgets mode only
  IdVector<NetId, double> extra_um_;       // back-annotated length corrections
  /// Per-net cost-distance sink weight (steiner backend only): derived once
  /// in run() from the static zero-capacitance slacks, so every later
  /// rebuild (refine, reroute) sees the same weights — a relabeling- and
  /// thread-invariant input.
  IdVector<NetId, double> net_sink_weight_;
  ShardDecomposition shards_;
  CriteriaOrder order_ = CriteriaOrder::kDelayFirst;
  RunState run_state_ = RunState::kIdle;
  std::int32_t feed_cells_added_ = 0;
  std::int32_t widen_pitches_ = 0;
};

}  // namespace bgr

#include "bgr/route/routing_graph.hpp"

#include <algorithm>
#include <map>

#include "bgr/route/lookahead.hpp"
#include "bgr/route/net_span.hpp"

namespace bgr {

RoutingGraph::RoutingGraph(const Netlist& netlist, const Placement& placement,
                           const TechParams& tech,
                           const FeedthroughAssignment& assignment, NetId net,
                           NetId ft_net, std::int32_t ft_offset)
    : net_(net) {
  const NetSpan span = net_span(netlist, placement, net);

  // Collect physical points: (channel, x) → vertex, created lazily.
  std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t> point_vertex;
  auto point = [&](std::int32_t channel, std::int32_t x) {
    const auto key = std::make_pair(channel, x);
    const auto it = point_vertex.find(key);
    if (it != point_vertex.end()) return it->second;
    const auto v = graph_.add_vertex();
    vertices_.push_back(
        RouteVertexInfo{RouteVertexKind::kPoint, TerminalId::invalid(), channel, x});
    point_vertex.emplace(key, v);
    return v;
  };

  // Terminal vertices and their candidate position points.
  const auto terms = netlist.net_terminals(net);
  std::vector<TerminalGeom> geoms;
  geoms.reserve(terms.size());
  for (const TerminalId term : terms) {
    geoms.push_back(terminal_geom(netlist, placement, term));
  }
  struct TermLink {
    std::int32_t term_vertex;
    std::int32_t point_vertex;
    std::int32_t channel;
    std::int32_t x;
  };
  std::vector<TermLink> term_links;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const auto tv = graph_.add_vertex();
    vertices_.push_back(RouteVertexInfo{RouteVertexKind::kTerminal, terms[i],
                                        -1, -1});
    terminal_vertices_.push_back(tv);
    if (terms[i] == netlist.net(net).driver) driver_vertex_ = tv;
    for (std::int32_t c = geoms[i].chan_lo; c <= geoms[i].chan_hi; ++c) {
      term_links.push_back(TermLink{tv, point(c, geoms[i].column), c,
                                    geoms[i].column});
    }
  }
  BGR_CHECK(driver_vertex_ >= 0);

  // Feedthrough crossing points (one column per crossed row, §3.1). The
  // shadow of a differential pair mirrors its primary one column right.
  struct FeedCross {
    std::int32_t row;
    std::int32_t x;
    std::int32_t lo_vertex;
    std::int32_t hi_vertex;
  };
  std::vector<FeedCross> crossings;
  for (const auto& [row, col] : assignment.rows(ft_net)) {
    if (row < span.row_lo() || row > span.row_hi()) continue;
    const std::int32_t x = col + ft_offset;
    crossings.push_back(FeedCross{row, x, point(row, x), point(row + 1, x)});
  }

  // Trunk edges: consecutive points within each channel.
  std::map<std::int32_t, std::vector<std::pair<std::int32_t, std::int32_t>>>
      channel_points;  // channel → (x, vertex)
  for (const auto& [key, v] : point_vertex) {
    channel_points[key.first].emplace_back(key.second, v);
  }
  for (auto& [channel, pts] : channel_points) {
    std::sort(pts.begin(), pts.end());
    for (std::size_t i = 1; i < pts.size(); ++i) {
      const auto [x0, v0] = pts[i - 1];
      const auto [x1, v1] = pts[i];
      if (x0 == x1) continue;  // duplicate column collapses to one vertex
      const double len = static_cast<double>(x1 - x0) * tech.horiz_step_um();
      const auto e = graph_.add_edge(v0, v1, len);
      BGR_CHECK(e == static_cast<std::int32_t>(edges_.size()));
      edges_.push_back(RouteEdgeInfo{RouteEdgeKind::kTrunk, channel,
                                     IntInterval{x0, x1}, len});
    }
  }

  // Terminal-position correspondence edges (zero weight).
  for (const TermLink& link : term_links) {
    const auto e = graph_.add_edge(link.term_vertex, link.point_vertex, 0.0);
    BGR_CHECK(e == static_cast<std::int32_t>(edges_.size()));
    edges_.push_back(RouteEdgeInfo{RouteEdgeKind::kTermLink, link.channel,
                                   IntInterval::point(link.x), 0.0});
  }

  // Feedthrough branch edges. The Dijkstra weight includes the expected
  // in-channel verticals on both sides of the crossing; the physical
  // length (length_um) stays the bare row height.
  channel_depth_est_um_ = tech.channel_depth_est_um;
  for (const FeedCross& fc : crossings) {
    const auto e = graph_.add_edge(
        fc.lo_vertex, fc.hi_vertex,
        tech.row_cross_um() + 2.0 * channel_depth_est_um_);
    BGR_CHECK(e == static_cast<std::int32_t>(edges_.size()));
    edges_.push_back(RouteEdgeInfo{RouteEdgeKind::kFeed, fc.row,
                                   IntInterval::point(fc.x),
                                   tech.row_cross_um()});
  }

  BGR_CHECK_MSG(graph_.connects(terminal_vertices_),
                "routing graph disconnected for net " +
                    netlist.net(net).name);

  required_.assign(static_cast<std::size_t>(graph_.vertex_count()), false);
  for (const auto tv : terminal_vertices_) {
    required_[static_cast<std::size_t>(tv)] = true;
  }

  // Prune any initially dangling non-terminal branches (e.g. a crossing
  // point outside all trunks), then compute bridges.
  std::vector<std::int32_t> queue;
  for (std::int32_t v = 0; v < graph_.vertex_count(); ++v) {
    queue.push_back(v);
  }
  while (!queue.empty()) {
    const auto v = queue.back();
    queue.pop_back();
    if (!graph_.vertex_alive(v) || required_[static_cast<std::size_t>(v)]) continue;
    if (graph_.degree(v) == 0) {
      graph_.remove_vertex(v);
    } else if (graph_.degree(v) == 1) {
      const auto e = graph_.incident_edges(v).front();
      const auto w = graph_.other_end(e, v);
      graph_.remove_edge(e);
      graph_.remove_vertex(v);
      queue.push_back(w);
    }
  }
  recompute_bridges();
}

void RoutingGraph::recompute_bridges() { bridge_ = graph_.bridges(); }

std::vector<std::int32_t> RoutingGraph::non_bridge_edges() const {
  std::vector<std::int32_t> out;
  for (std::int32_t e = 0; e < graph_.edge_count(); ++e) {
    if (graph_.edge_alive(e) && !bridge_[static_cast<std::size_t>(e)]) {
      out.push_back(e);
    }
  }
  return out;
}

bool RoutingGraph::is_tree() const {
  return graph_.alive_edge_count() == graph_.alive_vertex_count() - 1;
}

RoutingGraph::DeletionResult RoutingGraph::delete_edge(std::int32_t e) {
  BGR_CHECK(graph_.edge_alive(e));
  BGR_CHECK_MSG(!bridge_[static_cast<std::size_t>(e)], "cannot delete a bridge");
  DeletionResult result;
  const auto u = graph_.edge(e).u;
  const auto v = graph_.edge(e).v;
  graph_.remove_edge(e);
  result.removed_edges.push_back(RemovedEdge{e, false});

  // Prune dangling non-terminal branches starting from the endpoints.
  std::vector<std::int32_t> queue{u, v};
  while (!queue.empty()) {
    const auto w = queue.back();
    queue.pop_back();
    if (!graph_.vertex_alive(w) || required_[static_cast<std::size_t>(w)]) continue;
    if (graph_.degree(w) == 0) {
      graph_.remove_vertex(w);
    } else if (graph_.degree(w) == 1) {
      const auto de = graph_.incident_edges(w).front();
      const auto next = graph_.other_end(de, w);
      graph_.remove_edge(de);
      graph_.remove_vertex(w);
      result.removed_edges.push_back(
          RemovedEdge{de, bool{bridge_[static_cast<std::size_t>(de)]}});
      queue.push_back(next);
    }
  }

  const auto old_bridge = bridge_;
  recompute_bridges();
  for (std::int32_t id = 0; id < graph_.edge_count(); ++id) {
    if (graph_.edge_alive(id) && bridge_[static_cast<std::size_t>(id)] &&
        !old_bridge[static_cast<std::size_t>(id)]) {
      result.new_bridges.push_back(id);
    }
  }

  // The graph changed: rebuild the no-skip reference search the engine
  // answers skip-edge queries against. delete_edge runs only at serial
  // commit points, so no scorer is reading the cache concurrently.
  if (path_engine_ != nullptr &&
      (path_engine_->backend() == PathSearchBackend::kAstar ||
       path_engine_->backend() == PathSearchBackend::kSteiner)) {
    path_engine_->refresh_cache(graph_, driver_vertex_, terminal_vertices_,
                                &search_cache_, &heuristic_, &sink_weights_);
  }
  return result;
}

double RoutingGraph::tentative_length_um(std::int32_t skip_edge) const {
  double total = 0.0;
  for (const auto e : tentative_tree_edges(skip_edge)) {
    total += edges_[static_cast<std::size_t>(e)].length_um;
  }
  return total;
}

double RoutingGraph::effective_length_um(std::int32_t e) const {
  const RouteEdgeInfo& info = edges_[static_cast<std::size_t>(e)];
  switch (info.kind) {
    case RouteEdgeKind::kTrunk:
      return info.length_um;
    case RouteEdgeKind::kFeed:
      return info.length_um + 2.0 * channel_depth_est_um_;
    case RouteEdgeKind::kTermLink:
      return info.length_um + channel_depth_est_um_;
  }
  return info.length_um;
}

double RoutingGraph::estimated_length_um(std::int32_t skip_edge) const {
  // In a tree each connected terminal uses exactly one terminal link, so
  // summing effective lengths reproduces the per-terminal tap allowance.
  double total = 0.0;
  for (const auto e : tentative_tree_edges(skip_edge)) {
    total += effective_length_um(e);
  }
  return total;
}

void RoutingGraph::set_path_search(PathSearchEngine* engine,
                                   const ChipLookahead* lookahead,
                                   const std::vector<double>* sink_weights) {
  path_engine_ = engine;
  if (engine != nullptr &&
      (engine->backend() == PathSearchBackend::kAstar ||
       engine->backend() == PathSearchBackend::kSteiner)) {
    heuristic_ =
        lookahead != nullptr
            ? lookahead->derive(graph_, vertices_, driver_vertex_,
                                terminal_vertices_)
            : build_goal_heuristic(graph_, driver_vertex_, terminal_vertices_);
    sink_weights_.clear();
    if (sink_weights != nullptr &&
        engine->backend() == PathSearchBackend::kSteiner) {
      sink_weights_ = *sink_weights;
    }
    engine->refresh_cache(graph_, driver_vertex_, terminal_vertices_,
                          &search_cache_, &heuristic_, &sink_weights_);
  }
}

std::vector<std::int32_t> RoutingGraph::tentative_tree_edges(
    std::int32_t skip_edge) const {
  std::vector<std::int32_t> out;
  if (path_engine_ != nullptr) {
    path_engine_->tentative_tree(graph_, &heuristic_, &search_cache_,
                                 driver_vertex_, terminal_vertices_, skip_edge,
                                 &out, &sink_weights_);
    return out;
  }
  // Standalone graphs (unit tests, diagnostics) never see an engine: run
  // the reference backend over a thread-local arena.
  static thread_local PathSearchScratch scratch;
  path_search_tree(graph_, PathSearchBackend::kDijkstra, nullptr,
                   driver_vertex_, terminal_vertices_, skip_edge, scratch,
                   &out);
  return out;
}

double RoutingGraph::alive_length_um() const {
  double total = 0.0;
  for (std::int32_t e = 0; e < graph_.edge_count(); ++e) {
    if (graph_.edge_alive(e)) {
      total += edges_[static_cast<std::size_t>(e)].length_um;
    }
  }
  return total;
}

std::vector<std::int32_t> RoutingGraph::alive_edges() const {
  std::vector<std::int32_t> out;
  for (std::int32_t e = 0; e < graph_.edge_count(); ++e) {
    if (graph_.edge_alive(e)) out.push_back(e);
  }
  return out;
}

}  // namespace bgr

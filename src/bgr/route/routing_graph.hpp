#pragma once

#include <vector>

#include "bgr/common/ids.hpp"
#include "bgr/common/interval.hpp"
#include "bgr/common/tech.hpp"
#include "bgr/graph/small_graph.hpp"
#include "bgr/layout/placement.hpp"
#include "bgr/netlist/netlist.hpp"
#include "bgr/route/assign.hpp"
#include "bgr/route/path_search.hpp"

namespace bgr {

class ChipLookahead;

enum class RouteVertexKind {
  kTerminal,  // circuit terminal (cell pin or pad)
  kPoint,     // physical point: (channel, column)
};

enum class RouteEdgeKind {
  kTermLink,  // terminal ↔ one of its candidate positions, zero weight
  kFeed,      // feedthrough crossing one cell row (vertical branch)
  kTrunk,     // horizontal in-channel segment
};

struct RouteVertexInfo {
  RouteVertexKind kind = RouteVertexKind::kPoint;
  TerminalId terminal;       // kTerminal only
  std::int32_t channel = -1; // kPoint only
  std::int32_t x = -1;       // kPoint only
};

struct RouteEdgeInfo {
  RouteEdgeKind kind = RouteEdgeKind::kTrunk;
  /// Trunk: its channel. TermLink: the channel of the position point.
  /// Feed: the *lower* adjacent channel (the edge crosses row == channel).
  std::int32_t channel = -1;
  IntInterval span;  // trunk: column extent; others: single column
  double length_um = 0.0;

  [[nodiscard]] bool is_trunk() const { return kind == RouteEdgeKind::kTrunk; }
};

/// The per-net candidate routing graph G_r(n) of Fig. 3. Vertices are
/// circuit terminals and physical points; edges are zero-weight
/// terminal-position links, feedthrough branch edges, and channel trunk
/// edges. The edge-deletion scheme removes non-bridge edges until the
/// graph is a Steiner tree over the terminals; dangling non-terminal
/// branches are pruned eagerly, so after pruning an edge is deletable iff
/// it lies on a cycle.
class RoutingGraph {
 public:
  /// Builds G_r(net). For the shadow member of a differential pair, pass
  /// the primary's assignment net via `ft_net` and `ft_offset` = +1: the
  /// shadow mirrors the primary one column to the right (§4.1).
  RoutingGraph(const Netlist& netlist, const Placement& placement,
               const TechParams& tech, const FeedthroughAssignment& assignment,
               NetId net, NetId ft_net, std::int32_t ft_offset);

  RoutingGraph(const Netlist& netlist, const Placement& placement,
               const TechParams& tech, const FeedthroughAssignment& assignment,
               NetId net)
      : RoutingGraph(netlist, placement, tech, assignment, net, net, 0) {}

  [[nodiscard]] NetId net() const { return net_; }
  [[nodiscard]] const SmallGraph& graph() const { return graph_; }
  [[nodiscard]] const RouteVertexInfo& vertex_info(std::int32_t v) const {
    return vertices_.at(static_cast<std::size_t>(v));
  }
  [[nodiscard]] const RouteEdgeInfo& edge_info(std::int32_t e) const {
    return edges_.at(static_cast<std::size_t>(e));
  }
  [[nodiscard]] const std::vector<std::int32_t>& terminal_vertices() const {
    return terminal_vertices_;
  }
  [[nodiscard]] std::int32_t driver_vertex() const { return driver_vertex_; }

  /// Attaches the router's shared path-search engine; all tentative-tree
  /// searches then run through it (arena scratch, backend choice, effort
  /// accounting). With the A* or steiner backend this also builds the
  /// goal-oriented lower bound from the *current* graph, so call it right
  /// after construction, before any deletion — deletions only lengthen
  /// distances, which keeps the build-time bound admissible forever after.
  /// When `lookahead` is non-null the bound is derived from the chip-level
  /// table (O(terminals), no per-graph Dijkstra) instead of the exact
  /// multi-source build; both are admissible, so for A* the searches — and
  /// the RouteOutcome — are bit-identical either way (DESIGN.md §15). The
  /// steiner backend additionally takes `sink_weights` (aligned with
  /// terminal_vertices(); null ⇒ all zero), copied and passed to every
  /// construction. Graphs without an engine (standalone tests, tools) fall
  /// back to the reference Dijkstra backend over a thread-local scratch.
  void set_path_search(PathSearchEngine* engine,
                       const ChipLookahead* lookahead = nullptr,
                       const std::vector<double>* sink_weights = nullptr);

  [[nodiscard]] bool is_bridge(std::int32_t e) const {
    return bridge_[static_cast<std::size_t>(e)];
  }
  /// Alive non-bridge (deletable) edges.
  [[nodiscard]] std::vector<std::int32_t> non_bridge_edges() const;
  [[nodiscard]] bool is_tree() const;

  struct RemovedEdge {
    std::int32_t edge;
    bool was_bridge;  // bridge status before this deletion (for d_m upkeep)
  };
  struct DeletionResult {
    std::vector<RemovedEdge> removed_edges;  // selected edge + pruned tail
    std::vector<std::int32_t> new_bridges;   // survivors that became bridges
  };

  /// Deletes a non-bridge edge, prunes any dangling non-terminal branches,
  /// and refreshes bridge flags.
  DeletionResult delete_edge(std::int32_t e);

  /// Total physical length of the tentative tree (union of shortest
  /// driver→terminal paths), optionally pretending `skip_edge` is deleted.
  [[nodiscard]] double tentative_length_um(std::int32_t skip_edge = -1) const;

  /// Tentative length plus the expected in-channel verticals: one
  /// channel-depth tap per terminal and two per feedthrough crossing in the
  /// tree. This is the capacitance-estimate length the delay criteria use;
  /// the channel stage later replaces the allowance with exact jogs.
  [[nodiscard]] double estimated_length_um(std::int32_t skip_edge = -1) const;

  /// Per-sink distributed-RC (Elmore) wire delays over the tentative tree,
  /// for the RC delay-model extension of §2.1. For each tree edge e with
  /// resistance r(e) and capacitance c(e) (π model: half of c(e) on each
  /// end), the delay of sink t is Σ_{e on driver→t path} r(e) ·
  /// (downstream wire cap + downstream sink loads). Loads are supplied per
  /// terminal via `load_pf`; `res_scale` divides the unit resistance
  /// (w-pitch wires have 1/w the resistance and w times the capacitance).
  struct ElmoreResult {
    double total_cap_pf = 0.0;  // wire + loads
    /// (sink terminal, wire Elmore delay ps); driver excluded.
    std::vector<std::pair<TerminalId, double>> sink_wire_ps;
  };
  template <typename LoadFn>
  [[nodiscard]] ElmoreResult elmore(const TechParams& tech, int pitch_width,
                                    LoadFn&& load_pf,
                                    std::int32_t skip_edge = -1) const;

  /// Edge length including the expected-vertical allowances (trunks:
  /// physical; feeds: + two channel depths; terminal links: one depth).
  [[nodiscard]] double effective_length_um(std::int32_t e) const;

  /// Edges of the tentative tree (for diagnostics and final extraction).
  [[nodiscard]] std::vector<std::int32_t> tentative_tree_edges(
      std::int32_t skip_edge = -1) const;

  /// Total length of all alive edges — equals the routed length once the
  /// graph is a tree.
  [[nodiscard]] double alive_length_um() const;

  /// Alive edge ids (for density registration).
  [[nodiscard]] std::vector<std::int32_t> alive_edges() const;

 private:
  void recompute_bridges();

  NetId net_;
  SmallGraph graph_;
  std::vector<RouteVertexInfo> vertices_;
  std::vector<RouteEdgeInfo> edges_;
  std::vector<std::int32_t> terminal_vertices_;
  std::int32_t driver_vertex_ = -1;
  std::vector<bool> bridge_;
  std::vector<bool> required_;  // vertex must stay (terminal)
  double channel_depth_est_um_ = 0.0;
  PathSearchEngine* path_engine_ = nullptr;  // not owned
  GoalHeuristic heuristic_;       // valid iff engine is A* or steiner
  std::vector<double> sink_weights_;  // steiner only; aligned with terminals
  /// No-skip reference search over the current graph, rebuilt at the serial
  /// mutation points (set_path_search, delete_edge) and read lock-free by
  /// concurrent scorers; lets the A* engine answer most skip-edge queries
  /// by dependency-cone repair instead of a full search (see SearchCache).
  SearchCache search_cache_;
};

template <typename LoadFn>
RoutingGraph::ElmoreResult RoutingGraph::elmore(const TechParams& tech,
                                                int pitch_width,
                                                LoadFn&& load_pf,
                                                std::int32_t skip_edge) const {
  const auto tree = tentative_tree_edges(skip_edge);
  const auto n = static_cast<std::size_t>(graph_.vertex_count());

  // Tree adjacency and per-vertex node capacitance (π model: half of every
  // incident edge's wire capacitance, plus the terminal load).
  std::vector<std::vector<std::pair<std::int32_t, std::int32_t>>> adj(n);
  std::vector<double> node_cap(n, 0.0);
  for (const auto e : tree) {
    const auto& ed = graph_.edge(e);
    adj[static_cast<std::size_t>(ed.u)].emplace_back(e, ed.v);
    adj[static_cast<std::size_t>(ed.v)].emplace_back(e, ed.u);
    const double cap =
        tech.wire_cap_pf(effective_length_um(e), pitch_width) / 2.0;
    node_cap[static_cast<std::size_t>(ed.u)] += cap;
    node_cap[static_cast<std::size_t>(ed.v)] += cap;
  }
  for (const auto tv : terminal_vertices_) {
    node_cap[static_cast<std::size_t>(tv)] +=
        load_pf(vertex_info(tv).terminal);
  }

  // BFS order from the driver; subtree capacitances bottom-up; Elmore
  // delays top-down.
  std::vector<std::int32_t> order;
  std::vector<std::int32_t> parent_edge(n, -1);
  std::vector<std::int32_t> parent(n, -1);
  std::vector<bool> seen(n, false);
  order.push_back(driver_vertex_);
  seen[static_cast<std::size_t>(driver_vertex_)] = true;
  for (std::size_t head = 0; head < order.size(); ++head) {
    const auto v = order[head];
    for (const auto& [e, w] : adj[static_cast<std::size_t>(v)]) {
      if (seen[static_cast<std::size_t>(w)]) continue;
      seen[static_cast<std::size_t>(w)] = true;
      parent[static_cast<std::size_t>(w)] = v;
      parent_edge[static_cast<std::size_t>(w)] = e;
      order.push_back(w);
    }
  }

  std::vector<double> subtree_cap = node_cap;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto v = *it;
    const auto p = parent[static_cast<std::size_t>(v)];
    if (p >= 0) {
      subtree_cap[static_cast<std::size_t>(p)] +=
          subtree_cap[static_cast<std::size_t>(v)];
    }
  }

  std::vector<double> delay(n, 0.0);
  ElmoreResult result;
  result.total_cap_pf = subtree_cap[static_cast<std::size_t>(driver_vertex_)];
  for (const auto v : order) {
    const auto pe = parent_edge[static_cast<std::size_t>(v)];
    if (pe >= 0) {
      const double res =
          tech.wire_res_ohm(effective_length_um(pe), pitch_width);
      // Ω · pF = ps.
      delay[static_cast<std::size_t>(v)] =
          delay[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])] +
          res * subtree_cap[static_cast<std::size_t>(v)];
    }
    const RouteVertexInfo& info = vertex_info(v);
    if (info.kind == RouteVertexKind::kTerminal && v != driver_vertex_) {
      result.sink_wire_ps.emplace_back(info.terminal,
                                       delay[static_cast<std::size_t>(v)]);
    }
  }
  return result;
}

}  // namespace bgr

#include "bgr/route/shard.hpp"

#include <algorithm>

#include "bgr/common/check.hpp"

namespace bgr {

namespace {

/// Plain union-find with path halving; union by attaching the larger root
/// id under the smaller keeps root selection a pure function of the input.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      parent_[i] = static_cast<std::int32_t>(i);
    }
  }

  std::int32_t find(std::int32_t x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  void unite(std::int32_t a, std::int32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent_[static_cast<std::size_t>(b)] = a;
  }

 private:
  std::vector<std::int32_t> parent_;
};

}  // namespace

ShardDecomposition compute_shards(std::vector<ShardNetInfo> nets,
                                  std::int32_t channel_count,
                                  std::int32_t constraint_count) {
  const auto n = static_cast<std::int32_t>(nets.size());
  // Node layout: [0, n) nets, [n, n + channels) channels, then constraints.
  UnionFind uf(static_cast<std::size_t>(n) +
               static_cast<std::size_t>(channel_count) +
               static_cast<std::size_t>(constraint_count));
  for (std::int32_t i = 0; i < n; ++i) {
    for (const auto c : nets[static_cast<std::size_t>(i)].channels) {
      BGR_CHECK(c >= 0 && c < channel_count);
      uf.unite(i, n + c);
    }
    for (const auto p : nets[static_cast<std::size_t>(i)].constraints) {
      BGR_CHECK(p >= 0 && p < constraint_count);
      uf.unite(i, n + channel_count + p);
    }
  }

  ShardDecomposition out;
  out.nets = std::move(nets);
  out.shard_of.assign(static_cast<std::size_t>(n), -1);
  // Shards in order of first appearance over ascending net index; membership
  // depends only on the footprints.
  std::vector<std::int32_t> shard_of_root(
      static_cast<std::size_t>(n) + static_cast<std::size_t>(channel_count) +
          static_cast<std::size_t>(constraint_count),
      -1);
  for (std::int32_t i = 0; i < n; ++i) {
    const auto root = uf.find(i);
    auto& s = shard_of_root[static_cast<std::size_t>(root)];
    if (s < 0) {
      s = static_cast<std::int32_t>(out.shards.size());
      out.shards.emplace_back();
    }
    out.shard_of[static_cast<std::size_t>(i)] = s;
    out.shards[static_cast<std::size_t>(s)].push_back(i);
  }
  out.commits.assign(out.shards.size(), 0);
  out.scans.assign(out.shards.size(), 0);
  return out;
}

}  // namespace bgr

#pragma once

#include <cstdint>
#include <vector>

#include "bgr/common/ids.hpp"

namespace bgr {

/// Interaction footprint of one primary net in the concurrent edge-deletion
/// loop of §3.4: the channels any edge of its routing graph (and its
/// differential shadow's) touches, and the timing constraints the net (or
/// its shadow) belongs to. Channels cover the loop's full read/write set —
/// candidate scoring reads channel-wide density aggregates, and a deletion
/// (with its pruned tail and re-flagged bridges) can update density on any
/// of the net's channels. Constraints cover the STA side: an estimate
/// refresh rewrites lp/margin/version of exactly the member constraints.
struct ShardNetInfo {
  NetId net;                               // primary member of the pair
  std::vector<std::int32_t> channels;      // sorted, unique
  std::vector<std::int32_t> constraints;   // sorted, unique
};

/// Partition of the primary nets into interaction-disjoint shards: the
/// connected components of the bipartite net↔resource graph where the
/// resources are channels and constraints. Two nets in *different* shards
/// share no channel and no constraint, so their deletion loops read and
/// write disjoint state; within a shard nets may interact arbitrarily.
///
/// Components — rather than a finer coloring — are what keeps the sharded
/// loop bit-identical to the serial greedy: a commit can change the keys
/// of every net it shares a resource with, so only resource-disjoint nets
/// have order-independent selections (DESIGN.md §13).
struct ShardDecomposition {
  std::vector<ShardNetInfo> nets;
  /// shards[s] lists indices into `nets`; shard order and membership are a
  /// pure function of the footprints (first-touch over ascending net ids),
  /// hence identical at any thread count.
  std::vector<std::vector<std::int32_t>> shards;
  /// shard_of[i] is the shard of nets[i].
  std::vector<std::int32_t> shard_of;
  /// Filled by the deletion loop: committed deletions and candidate-key
  /// evaluations per shard. Deterministic work measures — the scale bench
  /// gates its parallelism ratio on them, not on wall time.
  std::vector<std::int64_t> commits;
  std::vector<std::int64_t> scans;

  [[nodiscard]] std::int32_t shard_count() const {
    return static_cast<std::int32_t>(shards.size());
  }
};

/// Builds the decomposition by union-find over net + channel + constraint
/// nodes. `channel_count` / `constraint_count` bound the resource ids in
/// the footprints.
[[nodiscard]] ShardDecomposition compute_shards(std::vector<ShardNetInfo> nets,
                                                std::int32_t channel_count,
                                                std::int32_t constraint_count);

}  // namespace bgr

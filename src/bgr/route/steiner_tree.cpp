#include "bgr/route/steiner_tree.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "bgr/common/check.hpp"
#include "bgr/obs/metrics.hpp"

namespace bgr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Construction-effort counters. All value-driven, hence semantic: the
/// set of constructions the router runs and each construction's
/// pop/relax counts are a function of the design and the options alone
/// (the score warm-up computes exactly the keys the serial scan would).
struct SteinerMetrics {
  Counter& trees = MetricsRegistry::global().counter(
      "steiner.trees", MetricScope::kSemantic);
  Counter& sink_paths = MetricsRegistry::global().counter(
      "steiner.sink_paths", MetricScope::kSemantic);
  Counter& pops = MetricsRegistry::global().counter(
      "steiner.pops", MetricScope::kSemantic);
  Counter& relaxations = MetricsRegistry::global().counter(
      "steiner.relaxations", MetricScope::kSemantic);
  Counter& cache_hits = MetricsRegistry::global().counter(
      "steiner.cache_hits", MetricScope::kSemantic);
};

SteinerMetrics& steiner_metrics() {
  static SteinerMetrics* const m = new SteinerMetrics();
  return *m;
}

using HeapEntry = std::pair<double, std::int32_t>;  // (f, vertex)

void heap_push(std::vector<HeapEntry>& heap, double f, std::int32_t v) {
  heap.emplace_back(f, v);
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}

HeapEntry heap_pop(std::vector<HeapEntry>& heap) {
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  const HeapEntry top = heap.back();
  heap.pop_back();
  return top;
}

/// Epoch-stamped arena for one construction: the growing tree (membership
/// + root distance, stamped per construction) and the per-sink search
/// labels (distance + parent edge, stamped per sink search). One instance
/// per thread; steady-state constructions allocate nothing.
class SteinerScratch {
 public:
  void begin(std::int32_t vertex_count) {
    const auto n = static_cast<std::size_t>(vertex_count);
    if (tree_epoch_.size() < n) {
      tree_epoch_.resize(n, 0);
      tree_dist_.resize(n, 0.0);
      label_epoch_.resize(n, 0);
      dist_.resize(n, 0.0);
      parent_.resize(n, SmallGraph::kNone);
    }
    ++call_epoch_;
    tree_vertices_.clear();
    heap_.clear();
  }

  void begin_search() {
    ++search_epoch_;
    heap_.clear();
  }

  [[nodiscard]] bool in_tree(std::int32_t v) const {
    return tree_epoch_[static_cast<std::size_t>(v)] == call_epoch_;
  }
  [[nodiscard]] double tree_dist(std::int32_t v) const {
    return tree_dist_[static_cast<std::size_t>(v)];
  }
  void add_to_tree(std::int32_t v, double root_dist) {
    const auto i = static_cast<std::size_t>(v);
    tree_epoch_[i] = call_epoch_;
    tree_dist_[i] = root_dist;
    tree_vertices_.push_back(v);
  }

  [[nodiscard]] double dist(std::int32_t v) const {
    const auto i = static_cast<std::size_t>(v);
    return label_epoch_[i] == search_epoch_ ? dist_[i] : kInf;
  }
  void set_dist(std::int32_t v, double d) {
    const auto i = static_cast<std::size_t>(v);
    if (label_epoch_[i] != search_epoch_) {
      label_epoch_[i] = search_epoch_;
      parent_[i] = SmallGraph::kNone;
    }
    dist_[i] = d;
  }
  [[nodiscard]] std::int32_t parent_edge(std::int32_t v) const {
    const auto i = static_cast<std::size_t>(v);
    return label_epoch_[i] == search_epoch_ ? parent_[i] : SmallGraph::kNone;
  }
  void set_parent_edge(std::int32_t v, std::int32_t e) {
    parent_[static_cast<std::size_t>(v)] = e;
  }

  [[nodiscard]] const std::vector<std::int32_t>& tree_vertices() const {
    return tree_vertices_;
  }
  [[nodiscard]] std::vector<HeapEntry>& heap() { return heap_; }
  [[nodiscard]] std::vector<std::int32_t>& path() { return path_; }

 private:
  std::uint64_t call_epoch_ = 0;
  std::uint64_t search_epoch_ = 0;
  std::vector<std::uint64_t> tree_epoch_;
  std::vector<double> tree_dist_;
  std::vector<std::uint64_t> label_epoch_;
  std::vector<double> dist_;
  std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> tree_vertices_;
  std::vector<HeapEntry> heap_;
  std::vector<std::int32_t> path_;
};

}  // namespace

void register_steiner_metrics() { (void)steiner_metrics(); }

void note_steiner_cache_hit() { steiner_metrics().cache_hits.add(1); }

SearchEffort steiner_tree_search(const SmallGraph& graph,
                                 const GoalHeuristic* heuristic,
                                 std::int32_t source,
                                 const std::vector<std::int32_t>& terminals,
                                 const std::vector<double>* sink_weights,
                                 std::int32_t skip_edge,
                                 std::vector<std::int32_t>* out) {
  SteinerMetrics& metrics = steiner_metrics();
  SearchEffort effort;
  static thread_local SteinerScratch scratch;
  scratch.begin(graph.vertex_count());
  out->clear();

  const auto h_of = [&](std::int32_t v) {
    return heuristic != nullptr ? heuristic->h[static_cast<std::size_t>(v)]
                                : 0.0;
  };

  // Decreasing-weight sink order, ties broken by terminal position — the
  // terminal list follows net_terminals creation order, which survives a
  // relabeling of the netlist (stable_sort keeps it for equal weights).
  struct Sink {
    std::int32_t vertex;
    double weight;
  };
  std::vector<Sink> sinks;
  sinks.reserve(terminals.size());
  for (std::size_t i = 0; i < terminals.size(); ++i) {
    const std::int32_t tv = terminals[i];
    if (tv == source) continue;
    const double w = sink_weights != nullptr && i < sink_weights->size()
                         ? (*sink_weights)[i]
                         : 0.0;
    sinks.push_back(Sink{tv, w});
  }
  std::stable_sort(sinks.begin(), sinks.end(),
                   [](const Sink& a, const Sink& b) {
                     return a.weight > b.weight;
                   });

  scratch.add_to_tree(source, 0.0);
  std::int64_t sink_paths = 0;

  for (const Sink& s : sinks) {
    // A sink a previous path already passed through (zero-weight terminal
    // links make terminals cheap corridors) is connected for free.
    if (scratch.in_tree(s.vertex)) continue;
    ++sink_paths;
    scratch.begin_search();
    const double scale = 1.0 + s.weight;
    std::vector<HeapEntry>& heap = scratch.heap();

    // Multi-source seed: attaching via tree vertex v starts from the
    // objective delta it already owes, w_s · dist_T(root, v). A vertex
    // with h = inf cannot reach any terminal (admissibility), so it is
    // labeled but never expanded.
    for (const std::int32_t v : scratch.tree_vertices()) {
      scratch.set_dist(v, s.weight * scratch.tree_dist(v));
      const double hv = h_of(v);
      if (hv != kInf) {
        heap_push(heap, scratch.dist(v) + scale * hv, v);
        ++effort.queue_pushes;
      }
    }

    // Label-correcting A* on the delta objective. The popped f is the
    // heap minimum, so once it reaches the sink's label no unexplored
    // path can beat it: a cheaper path would keep a non-stale entry with
    // f below the optimum in the heap (h is admissible).
    while (!heap.empty()) {
      const auto [f, v] = heap_pop(heap);
      ++effort.pops;
      const double ds = scratch.dist(s.vertex);
      if (ds != kInf && f >= ds) break;
      const double d = scratch.dist(v);
      if (f != d + scale * h_of(v)) continue;  // stale (label improved)
      for (const std::int32_t e : graph.incident_edges(v)) {
        if (e == skip_edge) continue;
        const std::int32_t w = graph.other_end(e, v);
        const double nd = d + scale * graph.edge(e).weight;
        if (nd < scratch.dist(w)) {
          scratch.set_dist(w, nd);
          scratch.set_parent_edge(w, e);
          ++effort.relaxations;
          const double hw = h_of(w);
          if (hw != kInf) {
            heap_push(heap, nd + scale * hw, w);
            ++effort.queue_pushes;
          }
        }
      }
    }
    BGR_CHECK_MSG(scratch.dist(s.vertex) != kInf,
                  "sink unreachable in cost-distance tree");

    // Back-walk to the first tree vertex (everything before it is new, so
    // the attachment keeps T a tree), then attach front-to-back so the
    // root distances accumulate.
    std::vector<std::int32_t>& path = scratch.path();
    path.clear();
    std::int32_t v = s.vertex;
    while (!scratch.in_tree(v)) {
      const std::int32_t pe = scratch.parent_edge(v);
      BGR_CHECK_MSG(pe != SmallGraph::kNone,
                    "reachable sink has no parent chain");
      path.push_back(pe);
      v = graph.other_end(pe, v);
    }
    double at = scratch.tree_dist(v);
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      const std::int32_t e = *it;
      at += graph.edge(e).weight;
      v = graph.other_end(e, v);
      scratch.add_to_tree(v, at);
      out->push_back(e);
    }
  }

  metrics.trees.add(1);
  metrics.sink_paths.add(sink_paths);
  metrics.pops.add(effort.pops);
  metrics.relaxations.add(effort.relaxations);
  return effort;
}

}  // namespace bgr

#pragma once

#include <cstdint>
#include <vector>

#include "bgr/graph/small_graph.hpp"
#include "bgr/route/path_search.hpp"

namespace bgr {

/// Registers the steiner.* counters (at zero) with the global metrics
/// registry. The router calls this unconditionally so every routed run
/// report carries them, whatever backend actually ran —
/// tools/check_run_report.py requires the full semantic set.
void register_steiner_metrics();

/// Bumps steiner.cache_hits: the engine returned a memoized no-skip tree
/// without running a construction.
void note_steiner_cache_hit();

/// Cost-distance Steiner tree construction (DESIGN.md §16, after Held &
/// Perner): grows one tree per net by greedy sink-path merging under the
/// weighted objective
///
///   cost(T) + Σ_s w_s · dist_T(root, s)
///
/// Sinks are processed in decreasing-weight order (ties by terminal
/// position, which is relabeling-invariant); each sink runs one
/// multi-source search seeded with g = w_s · dist_T(root, v) at every
/// current tree vertex and relaxing g + (1 + w_s) · weight(e) — the exact
/// delta of the objective for attaching the sink via a path from v. The
/// winning path's back-walk stops at the first tree vertex, so the result
/// stays a tree; newly attached vertices get their root distance
/// incrementally.
///
/// `heuristic` (optional) prunes the per-sink search with
/// f = g + (1 + w_s) · h: h is the distance to the *nearest* terminal,
/// hence a lower bound on the distance to this sink — admissible, so the
/// stop test (popped f >= the sink's settled label) is exact for the
/// objective. `sink_weights` aligns index-for-index with `terminals`
/// (entries for the source are ignored); null or empty means w = 0
/// everywhere, which degrades to nearest-tree attachment — the classic
/// wirelength-greedy Steiner heuristic. `skip_edge` >= 0 is treated as
/// deleted, exactly like the other backends.
///
/// Deterministic for a fixed (graph, heuristic, weights, skip) input:
/// value-driven seeds, a binary heap ordered on (f, vertex), adjacency-
/// order expansion and first-strict-improvement parents — no dependence
/// on thread count or scratch history. The emitted edge order (per sink,
/// attach vertex toward sink) is part of the contract: downstream float
/// summations depend on it.
SearchEffort steiner_tree_search(const SmallGraph& graph,
                                 const GoalHeuristic* heuristic,
                                 std::int32_t source,
                                 const std::vector<std::int32_t>& terminals,
                                 const std::vector<double>* sink_weights,
                                 std::int32_t skip_edge,
                                 std::vector<std::int32_t>* out);

}  // namespace bgr

#include "bgr/serve/admin.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace bgr::serve {

namespace {

void send_all(int fd, const std::string& data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, 0);
    if (n <= 0) return;
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::string http_response(int status, const char* reason,
                          const std::string& body,
                          const char* content_type) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

AdminServer::AdminServer(MetricsProvider metrics, ReadyProvider ready)
    : metrics_(std::move(metrics)), ready_(std::move(ready)) {}

AdminServer::~AdminServer() { stop(); }

bool AdminServer::start(std::int32_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    bound_port_ = static_cast<std::int32_t>(ntohs(bound.sin_port));
  }
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void AdminServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Wake the blocked accept with shutdown, but keep the fd open until the
  // serve thread has joined: closing (and worse, resetting) it here would
  // race the loop's own accept(listen_fd_) — and a recycled descriptor
  // could steal an unrelated socket.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void AdminServer::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      continue;  // EINTR / aborted handshake
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void AdminServer::handle_connection(int fd) {
  // Every read is bounded: connections are served serially on the admin
  // thread, so a client that connects and never sends (or trickles an
  // endless head) must time out instead of wedging /metrics and /readyz
  // for everyone behind it.
  timeval tv{};
  tv.tv_sec = request_timeout_ms_ / 1000;
  tv.tv_usec = (request_timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  // Read until the end of the request head (or a sane cap); only the
  // request line matters — this endpoint ignores headers and bodies.
  constexpr std::size_t kMaxHead = 16384;
  std::string request;
  char chunk[1024];
  bool timed_out = false;
  while (request.size() < kMaxHead &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
      break;
    }
    if (n == 0) break;
    request.append(chunk, static_cast<std::size_t>(n));
  }
  const bool head_complete =
      request.find("\r\n\r\n") != std::string::npos ||
      request.find("\n\n") != std::string::npos;
  if (!head_complete) {
    if (timed_out) {
      send_all(fd, http_response(408, "Request Timeout", "request timeout\n",
                                 "text/plain; charset=utf-8"));
      return;
    }
    if (request.size() >= kMaxHead) {
      send_all(fd, http_response(413, "Payload Too Large",
                                 "request head too large\n",
                                 "text/plain; charset=utf-8"));
      return;
    }
  }
  const std::size_t line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);

  std::string method;
  std::string path;
  {
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos) {
      method = line.substr(0, sp1);
      path = sp2 == std::string::npos ? line.substr(sp1 + 1)
                                      : line.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }

  if (method != "GET") {
    send_all(fd, http_response(405, "Method Not Allowed", "method not allowed\n",
                               "text/plain; charset=utf-8"));
    return;
  }
  if (path == "/metrics") {
    send_all(fd, http_response(200, "OK", metrics_ ? metrics_() : "",
                               "text/plain; version=0.0.4; charset=utf-8"));
  } else if (path == "/healthz") {
    send_all(fd, http_response(200, "OK", "ok\n",
                               "text/plain; charset=utf-8"));
  } else if (path == "/readyz") {
    const bool ready = ready_ ? ready_() : true;
    send_all(fd, ready ? http_response(200, "OK", "ready\n",
                                       "text/plain; charset=utf-8")
                       : http_response(503, "Service Unavailable",
                                       "draining\n",
                                       "text/plain; charset=utf-8"));
  } else {
    send_all(fd, http_response(404, "Not Found", "not found\n",
                               "text/plain; charset=utf-8"));
  }
}

}  // namespace bgr::serve

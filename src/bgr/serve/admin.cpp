#include "bgr/serve/admin.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace bgr::serve {

namespace {

void send_all(int fd, const std::string& data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, 0);
    if (n <= 0) return;
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::string http_response(int status, const char* reason,
                          const std::string& body,
                          const char* content_type) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

AdminServer::AdminServer(MetricsProvider metrics, ReadyProvider ready)
    : metrics_(std::move(metrics)), ready_(std::move(ready)) {}

AdminServer::~AdminServer() { stop(); }

bool AdminServer::start(std::int32_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    bound_port_ = static_cast<std::int32_t>(ntohs(bound.sin_port));
  }
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void AdminServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
}

void AdminServer::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      continue;  // EINTR / aborted handshake
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void AdminServer::handle_connection(int fd) {
  // Read until the end of the request head (or a sane cap); only the
  // request line matters — this endpoint ignores headers and bodies.
  std::string request;
  char chunk[1024];
  while (request.size() < 16384 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    request.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);

  std::string method;
  std::string path;
  {
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos) {
      method = line.substr(0, sp1);
      path = sp2 == std::string::npos ? line.substr(sp1 + 1)
                                      : line.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }

  if (method != "GET") {
    send_all(fd, http_response(405, "Method Not Allowed", "method not allowed\n",
                               "text/plain; charset=utf-8"));
    return;
  }
  if (path == "/metrics") {
    send_all(fd, http_response(200, "OK", metrics_ ? metrics_() : "",
                               "text/plain; version=0.0.4; charset=utf-8"));
  } else if (path == "/healthz") {
    send_all(fd, http_response(200, "OK", "ok\n",
                               "text/plain; charset=utf-8"));
  } else if (path == "/readyz") {
    const bool ready = ready_ ? ready_() : true;
    send_all(fd, ready ? http_response(200, "OK", "ready\n",
                                       "text/plain; charset=utf-8")
                       : http_response(503, "Service Unavailable",
                                       "draining\n",
                                       "text/plain; charset=utf-8"));
  } else {
    send_all(fd, http_response(404, "Not Found", "not found\n",
                               "text/plain; charset=utf-8"));
  }
}

}  // namespace bgr::serve

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace bgr::serve {

/// Loopback HTTP admin endpoint of the bgr_serve daemon (DESIGN.md §14):
///
///   GET /metrics   Prometheus text exposition (the wired provider)
///   GET /healthz   200 "ok" while the process is alive
///   GET /readyz    200 "ready" while accepting jobs, 503 "draining"
///                  once shutdown began (drain-aware: load balancers stop
///                  sending before the queue runs out)
///
/// Deliberately minimal: HTTP/1.0, Connection: close, requests handled
/// serially on one thread — this is an operator/scraper port bound to
/// 127.0.0.1, not a traffic surface. start() binds (0 = ephemeral, port()
/// reports the resolution); stop() is idempotent and joins the thread.
class AdminServer {
 public:
  /// Returns the /metrics body; invoked per scrape on the admin thread.
  using MetricsProvider = std::function<std::string()>;
  /// Returns true while the daemon accepts jobs (readyz 200 vs 503).
  using ReadyProvider = std::function<bool()>;

  AdminServer(MetricsProvider metrics, ReadyProvider ready);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds 127.0.0.1:`port` and starts serving; false on bind failure.
  bool start(std::int32_t port);
  void stop();

  /// Per-read receive timeout for a connection. The admin thread serves
  /// connections serially, so a client that connects and then goes silent
  /// would otherwise park the thread in a blocking recv forever and starve
  /// every later /metrics and /readyz scrape. Must be set before start().
  void set_request_timeout_ms(std::int32_t ms) { request_timeout_ms_ = ms; }

  /// Bound port (ephemeral requests resolve here); -1 before start().
  [[nodiscard]] std::int32_t port() const { return bound_port_; }

 private:
  void serve_loop();
  void handle_connection(int fd);

  MetricsProvider metrics_;
  ReadyProvider ready_;
  std::int32_t request_timeout_ms_ = 2000;
  int listen_fd_ = -1;
  std::int32_t bound_port_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace bgr::serve

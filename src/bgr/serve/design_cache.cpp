#include "bgr/serve/design_cache.hpp"

#include <sstream>
#include <utility>

#include "bgr/common/hash.hpp"
#include "bgr/io/design_io.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/route/lookahead.hpp"
#include "bgr/serve/session.hpp"

namespace bgr::serve {

namespace {

/// serve.cache_* are semantic: for a given request stream the hit/miss
/// pattern is a pure function of the submitted contents (lookups
/// serialize under the cache mutex and a miss inserts before unlocking,
/// so a duplicate always hits regardless of scheduling).
struct CacheMetrics {
  Counter& hits = MetricsRegistry::global().counter("serve.cache_hits",
                                                    MetricScope::kSemantic);
  Counter& misses = MetricsRegistry::global().counter("serve.cache_misses",
                                                      MetricScope::kSemantic);
};

CacheMetrics& cache_metrics() {
  static CacheMetrics* const m = new CacheMetrics();
  return *m;
}

std::int64_t approx_dataset_bytes(const Dataset& dataset) {
  // Per-cell / per-net payload estimate: name + ids + terminal vectors.
  // Deliberately coarse — the gauge tracks growth, not exact residency.
  constexpr std::int64_t kPerCell = 64;
  constexpr std::int64_t kPerNet = 96;
  return static_cast<std::int64_t>(sizeof(Dataset)) +
         static_cast<std::int64_t>(dataset.name.size()) +
         kPerCell * dataset.netlist.cell_count() +
         kPerNet * dataset.netlist.net_count() +
         static_cast<std::int64_t>(dataset.constraints.size() *
                                   sizeof(PathConstraint));
}

std::int64_t approx_result_bytes(const SessionResult& result) {
  return static_cast<std::int64_t>(sizeof(SessionResult)) +
         static_cast<std::int64_t>(result.route_text.size()) +
         static_cast<std::int64_t>(result.digest.size()) +
         static_cast<std::int64_t>(result.error.size());
}

}  // namespace

DesignCache::DesignCache(std::size_t dataset_capacity,
                         std::size_t result_capacity)
    : dataset_capacity_(std::max<std::size_t>(dataset_capacity, 1)),
      result_capacity_(std::max<std::size_t>(result_capacity, 1)) {
  // Register serve.cache_* eagerly so an untouched cache still reports
  // schema-complete (all-zero) counters.
  (void)cache_metrics();
}

DesignCache::~DesignCache() = default;

std::uint64_t DesignCache::text_key(std::string_view text) {
  Fingerprint fp;
  fp.mix(std::string_view("text"));
  fp.mix(static_cast<std::uint64_t>(text.size()));
  fp.mix(text);
  return fp.value();
}

std::uint64_t DesignCache::preset_key(const std::string& name) {
  Fingerprint fp;
  fp.mix(std::string_view("preset"));
  fp.mix(static_cast<std::uint64_t>(name.size()));
  fp.mix(name);
  return fp.value();
}

std::shared_ptr<const Dataset> DesignCache::dataset_locked(
    std::uint64_t key, const std::function<Dataset()>& build, bool* hit) {
  if (hit != nullptr) *hit = false;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = datasets_.begin(); it != datasets_.end(); ++it) {
    if (it->key == key) {
      datasets_.splice(datasets_.begin(), datasets_, it);  // touch LRU
      ++stats_.dataset_hits;
      cache_metrics().hits.add(1);
      if (hit != nullptr) *hit = true;
      return datasets_.front().value;
    }
  }
  ++stats_.dataset_misses;
  cache_metrics().misses.add(1);
  // Build under the lock: parsing serializes, but a concurrent duplicate
  // then deterministically hits instead of racing to a second parse.
  auto value = std::make_shared<const Dataset>(build());
  DatasetEntry entry;
  entry.key = key;
  entry.value = value;
  entry.bytes = approx_dataset_bytes(*value);
  dataset_bytes_ += entry.bytes;
  datasets_.push_front(std::move(entry));
  evict_excess_locked();
  return value;
}

void DesignCache::evict_excess_locked() {
  // Eviction releases exactly the bytes insertion charged (the figure is
  // stored on the entry, never recomputed), so usage() cannot drift.
  while (datasets_.size() > dataset_capacity_) {
    dataset_bytes_ -= datasets_.back().bytes;
    datasets_.pop_back();
    ++stats_.evictions;
  }
  while (results_.size() > result_capacity_) {
    result_bytes_ -= results_.back().bytes;
    results_.pop_back();
    ++stats_.evictions;
  }
}

std::shared_ptr<const Dataset> DesignCache::dataset_for_text(
    const std::string& text, const std::string& source, bool* hit) {
  return dataset_locked(
      text_key(text),
      [&] {
        std::istringstream is(text);
        return read_design(is, source);
      },
      hit);
}

std::shared_ptr<const Dataset> DesignCache::dataset_for_preset(
    const std::string& name, bool* hit) {
  return dataset_locked(preset_key(name), [&] { return make_dataset(name); },
                        hit);
}

std::shared_ptr<const SessionResult> DesignCache::find_result(
    std::uint64_t request_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = results_.begin(); it != results_.end(); ++it) {
    if (it->key == request_key) {
      results_.splice(results_.begin(), results_, it);
      ++stats_.result_hits;
      cache_metrics().hits.add(1);
      return results_.front().value;
    }
  }
  ++stats_.result_misses;
  return nullptr;
}

void DesignCache::store_result(std::uint64_t request_key,
                               std::shared_ptr<const SessionResult> result) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : results_) {
    if (entry.key == request_key) return;  // first result wins
  }
  ResultEntry entry;
  entry.key = request_key;
  entry.value = std::move(result);
  entry.bytes = approx_result_bytes(*entry.value);
  result_bytes_ += entry.bytes;
  results_.push_front(std::move(entry));
  evict_excess_locked();
}

std::shared_ptr<const ChipLookahead> DesignCache::lookahead_for(
    std::uint64_t design_key, const Dataset& dataset) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = datasets_.begin(); it != datasets_.end(); ++it) {
      if (it->key != design_key) continue;
      if (it->lookahead == nullptr) {
        it->lookahead = std::make_shared<const ChipLookahead>(
            it->value->placement.row_count(), it->value->tech);
        const auto bytes =
            static_cast<std::int64_t>(it->lookahead->approx_bytes());
        it->bytes += bytes;
        dataset_bytes_ += bytes;
      }
      return it->lookahead;
    }
  }
  // Design evicted between parse and route: build an unshared table from
  // the caller's copy rather than re-admitting the entry out of LRU order.
  return std::make_shared<const ChipLookahead>(dataset.placement.row_count(),
                                               dataset.tech);
}

void DesignCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.evictions +=
      static_cast<std::int64_t>(datasets_.size() + results_.size());
  datasets_.clear();
  results_.clear();
  dataset_bytes_ = 0;
  result_bytes_ = 0;
}

DesignCache::Stats DesignCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

DesignCache::Usage DesignCache::usage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Usage usage;
  usage.dataset_entries = static_cast<std::int64_t>(datasets_.size());
  usage.dataset_bytes = dataset_bytes_;
  usage.result_entries = static_cast<std::int64_t>(results_.size());
  usage.result_bytes = result_bytes_;
  return usage;
}

}  // namespace bgr::serve

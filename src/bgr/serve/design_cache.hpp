#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "bgr/gen/generator.hpp"

namespace bgr {
class ChipLookahead;
}

namespace bgr::serve {

struct SessionResult;

/// Warm per-design caches for the serve daemon (DESIGN.md §12). The
/// production-common case is repeat/near-repeat submission of the same
/// design, so the cache is keyed by content hash of the design source and
/// has two levels:
///
///   - dataset level: the parsed (or preset-generated) Dataset, shared
///     read-only; a hit skips parsing, and every session copies the
///     dataset before routing because the router mutates its netlist
///     (feed-cell insertion).
///   - result level: the finished SessionResult keyed by design content
///     *and* the full option fingerprint; an exact re-submission skips
///     parse, graph construction and routing entirely, returning the
///     stored — hence trivially bit-identical — outcome.
///
/// Graph reuse happens at whole-run granularity through the result level:
/// a RoutingGraph is built against the post-assignment netlist (with
/// inserted feed cells), so it is only meaningful to reuse when every
/// option matches, which is exactly the result key.
///
/// Both levels are LRU-bounded and mutex-guarded; lookups that miss parse
/// under the lock, so a concurrent duplicate submission is guaranteed to
/// hit (second comer blocks, then finds the entry) — this is what makes
/// `serve.cache_hits` deterministic for a given request stream. Hits and
/// misses feed the serve.cache_* semantic counters.
class DesignCache {
 public:
  explicit DesignCache(std::size_t dataset_capacity = 32,
                       std::size_t result_capacity = 128);
  ~DesignCache();

  DesignCache(const DesignCache&) = delete;
  DesignCache& operator=(const DesignCache&) = delete;

  /// Content key of a design source. Text and presets live in disjoint
  /// key spaces (a preset name is not design text).
  [[nodiscard]] static std::uint64_t text_key(std::string_view text);
  [[nodiscard]] static std::uint64_t preset_key(const std::string& name);

  /// Parsed dataset for inline design text; parses at most once per
  /// content hash. Throws IoError on malformed text (a miss only).
  /// `source` labels parse diagnostics; `hit` (optional) reports whether
  /// the dataset came out of the cache.
  [[nodiscard]] std::shared_ptr<const Dataset> dataset_for_text(
      const std::string& text, const std::string& source,
      bool* hit = nullptr);
  /// Generated dataset for a named preset ("C1P1", ...). Throws on
  /// unknown names.
  [[nodiscard]] std::shared_ptr<const Dataset> dataset_for_preset(
      const std::string& name, bool* hit = nullptr);

  /// Result level; find_result returns nullptr on miss. Only completed
  /// (kDone) results may be stored.
  [[nodiscard]] std::shared_ptr<const SessionResult> find_result(
      std::uint64_t request_key);
  void store_result(std::uint64_t request_key,
                    std::shared_ptr<const SessionResult> result);

  /// Chip-level A* lookahead table for a cached dataset (`--lookahead map`
  /// jobs, DESIGN.md §15): built at most once per resident design entry,
  /// under the cache lock, and shared by every later job of that design —
  /// a warm job skips the table build entirely. The table's bytes are
  /// billed to its entry (and released with it). Falls back to a fresh,
  /// unshared build when the design is no longer resident.
  [[nodiscard]] std::shared_ptr<const ChipLookahead> lookahead_for(
      std::uint64_t design_key, const Dataset& dataset);

  /// Drops every entry of both levels (counted as evictions), returning
  /// usage() to the empty baseline.
  void clear();

  struct Stats {
    std::int64_t dataset_hits = 0;
    std::int64_t dataset_misses = 0;
    std::int64_t result_hits = 0;
    std::int64_t result_misses = 0;
    std::int64_t evictions = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Resident-size snapshot for the telemetry gauges. Byte figures are
  /// approximations (container payload estimates, not allocator truth) —
  /// good enough to watch the cache grow, wrong to bill against an RSS.
  /// Maintained incrementally: every insertion adds the same per-entry
  /// figure its eviction later subtracts, so the gauge returns to the
  /// empty baseline after full eviction instead of drifting.
  struct Usage {
    std::int64_t dataset_entries = 0;
    std::int64_t dataset_bytes = 0;
    std::int64_t result_entries = 0;
    std::int64_t result_bytes = 0;
  };
  [[nodiscard]] Usage usage() const;

 private:
  struct DatasetEntry {
    std::uint64_t key = 0;
    std::shared_ptr<const Dataset> value;
    std::int64_t bytes = 0;  // accounted at insert, released at evict
    /// Lazily built lookahead table; its bytes fold into `bytes` above.
    std::shared_ptr<const ChipLookahead> lookahead;
  };
  struct ResultEntry {
    std::uint64_t key = 0;
    std::shared_ptr<const SessionResult> value;
    std::int64_t bytes = 0;
  };
  using DatasetList = std::list<DatasetEntry>;
  using ResultList = std::list<ResultEntry>;

  std::shared_ptr<const Dataset> dataset_locked(
      std::uint64_t key, const std::function<Dataset()>& build, bool* hit);
  void evict_excess_locked();

  mutable std::mutex mutex_;
  std::size_t dataset_capacity_;
  std::size_t result_capacity_;
  DatasetList datasets_;  // most-recently-used first
  ResultList results_;
  Stats stats_;
  std::int64_t dataset_bytes_ = 0;  // totals mirror the lists exactly
  std::int64_t result_bytes_ = 0;
};

}  // namespace bgr::serve

#include "bgr/serve/protocol.hpp"

#include <stdexcept>

namespace bgr::serve {

namespace {

/// Local parse failure; converted to ParsedRequest::kError at the top.
struct RequestError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void bad(const std::string& message) { throw RequestError(message); }

std::string require_string(const JsonValue& v, const char* key) {
  if (v.kind() != JsonValue::Kind::kString) {
    bad(std::string("'") + key + "' must be a string");
  }
  return v.as_string();
}

bool require_bool(const JsonValue& v, const char* key) {
  if (v.kind() != JsonValue::Kind::kBool) {
    bad(std::string("'") + key + "' must be a boolean");
  }
  return v.as_bool();
}

std::int64_t require_int(const JsonValue& v, const char* key) {
  if (v.kind() != JsonValue::Kind::kInt) {
    bad(std::string("'") + key + "' must be an integer");
  }
  return v.as_int();
}

/// The per-job algorithm knobs a client may set. Unknown keys are
/// rejected, not ignored: a typoed option silently falling back to the
/// default would make "bit-identical on re-submission" claims hollow.
void parse_options(const JsonValue& node, JobRequest* out) {
  if (!node.is_object()) bad("'options' must be an object");
  for (const auto& [key, value] : node.members()) {
    if (key == "unconstrained") {
      out->constrained = !require_bool(value, "unconstrained");
    } else if (key == "rc") {
      out->options.delay_model = require_bool(value, "rc")
                                     ? DelayModel::kElmoreRC
                                     : DelayModel::kLumpedC;
    } else if (key == "sequential") {
      out->options.concurrent_initial = !require_bool(value, "sequential");
    } else if (key == "no_improve") {
      const bool off = require_bool(value, "no_improve");
      out->options.enable_violation_recovery = !off;
      out->options.enable_delay_improvement = !off;
      out->options.enable_area_improvement = !off;
    } else if (key == "incremental_sta") {
      out->options.incremental_sta = require_bool(value, "incremental_sta");
    } else if (key == "path_search") {
      const std::string backend = require_string(value, "path_search");
      if (backend == "astar") {
        out->options.path_search = PathSearchBackend::kAstar;
      } else if (backend == "dijkstra") {
        out->options.path_search = PathSearchBackend::kDijkstra;
      } else if (backend == "steiner") {
        out->options.path_search = PathSearchBackend::kSteiner;
      } else {
        bad("'path_search' must be \"astar\", \"dijkstra\" or \"steiner\", "
            "got \"" +
            backend + "\"");
      }
    } else if (key == "lookahead") {
      const std::string mode = require_string(value, "lookahead");
      if (mode == "exact") {
        out->options.lookahead = LookaheadMode::kExact;
      } else if (mode == "map") {
        out->options.lookahead = LookaheadMode::kMap;
      } else {
        bad("'lookahead' must be \"exact\" or \"map\", got \"" + mode + "\"");
      }
    } else if (key == "improvement_passes") {
      const std::int64_t passes = require_int(value, "improvement_passes");
      if (passes < 0 || passes > 64) {
        bad("'improvement_passes' must be in [0, 64]");
      }
      out->options.improvement_passes = static_cast<std::int32_t>(passes);
    } else {
      bad("unknown option '" + key + "'");
    }
  }
}

ParsedRequest parse_checked(const std::string& line) {
  JsonValue doc;
  try {
    doc = json_parse(line);
  } catch (const std::exception& e) {
    ParsedRequest out;
    out.kind = ParsedRequest::Kind::kError;
    out.error = std::string("parse error: ") + e.what();
    return out;
  }
  if (!doc.is_object()) bad("request must be a JSON object");

  ParsedRequest out;
  // Control requests have exactly one recognized key.
  if (const JsonValue* cancel = doc.find("cancel")) {
    if (doc.members().size() != 1) bad("'cancel' takes no other fields");
    out.kind = ParsedRequest::Kind::kControl;
    out.control.kind = ControlRequest::Kind::kCancel;
    out.control.target = require_string(*cancel, "cancel");
    if (out.control.target.empty()) bad("'cancel' needs a job id");
    return out;
  }
  if (const JsonValue* shutdown = doc.find("shutdown")) {
    if (doc.members().size() != 1) bad("'shutdown' takes no other fields");
    if (!require_bool(*shutdown, "shutdown")) bad("'shutdown' must be true");
    out.kind = ParsedRequest::Kind::kControl;
    out.control.kind = ControlRequest::Kind::kShutdown;
    return out;
  }
  if (const JsonValue* ping = doc.find("ping")) {
    if (doc.members().size() != 1) bad("'ping' takes no other fields");
    if (!require_bool(*ping, "ping")) bad("'ping' must be true");
    out.kind = ParsedRequest::Kind::kControl;
    out.control.kind = ControlRequest::Kind::kPing;
    return out;
  }

  out.kind = ParsedRequest::Kind::kJob;
  for (const auto& [key, value] : doc.members()) {
    if (key == "id") {
      out.job.id = require_string(value, "id");
    } else if (key == "design") {
      out.job.design_text = require_string(value, "design");
    } else if (key == "dataset") {
      out.job.preset = require_string(value, "dataset");
    } else if (key == "design_file") {
      out.job.design_file = require_string(value, "design_file");
    } else if (key == "options") {
      parse_options(value, &out.job);
    } else if (key == "verify") {
      out.job.verify = require_bool(value, "verify");
    } else if (key == "route_text") {
      out.job.want_route_text = require_bool(value, "route_text");
    } else if (key == "report") {
      out.job.want_report = require_bool(value, "report");
    } else {
      bad("unknown request field '" + key + "'");
    }
  }
  if (out.job.id.empty()) bad("job request needs a non-empty 'id'");
  const int sources = (out.job.design_text.empty() ? 0 : 1) +
                      (out.job.preset.empty() ? 0 : 1) +
                      (out.job.design_file.empty() ? 0 : 1);
  if (sources != 1) {
    bad("job request needs exactly one of 'design', 'dataset', "
        "'design_file'");
  }
  return out;
}

}  // namespace

ParsedRequest parse_request_line(const std::string& line) {
  try {
    return parse_checked(line);
  } catch (const RequestError& e) {
    ParsedRequest out;
    out.kind = ParsedRequest::Kind::kError;
    out.error = e.what();
    return out;
  } catch (const std::exception& e) {
    // Defensive: nothing below should throw anything else, but a request
    // line must never escalate past this function.
    ParsedRequest out;
    out.kind = ParsedRequest::Kind::kError;
    out.error = std::string("invalid request: ") + e.what();
    return out;
  }
}

JsonValue make_event(std::string_view event, std::string_view id) {
  JsonValue doc = JsonValue::object();
  if (!id.empty()) doc.set("id", std::string(id));
  doc.set("event", std::string(event));
  return doc;
}

std::string response_line(const JsonValue& doc) {
  return doc.dump(-1);
}

}  // namespace bgr::serve

#pragma once

#include <string>
#include <string_view>

#include "bgr/obs/json.hpp"
#include "bgr/route/router.hpp"

namespace bgr::serve {

/// Wire protocol of `bgr_serve` (DESIGN.md §12): newline-delimited JSON in
/// both directions. Every request is one line; every response is one line
/// with an "event" field. A job request names a design exactly one way:
///
///   {"id":"j1","dataset":"C1P1","options":{"rc":true},"report":true}
///   {"id":"j2","design":"bgr-design 1\n...","verify":true}
///   {"id":"j3","design_file":"/path/to/design.txt","route_text":true}
///
/// Control requests: {"cancel":"j1"}, {"ping":true}, {"shutdown":true}.
///
/// Job responses: accepted → started → one of done/cancelled/failed;
/// rejected replaces accepted when admission control turns the job away.
/// A "done" event carries the result summary (incl. the outcome digest
/// for bit-identity checks and the cache disposition) and, when the
/// request asked for them, the full run report and routed-result text.
struct JobRequest {
  std::string id;
  /// Exactly one of the three sources is non-empty after a successful
  /// parse. `design_file` is read by the server (the daemon's filesystem,
  /// not the client's).
  std::string design_text;
  std::string preset;
  std::string design_file;
  RouterOptions options;
  bool constrained = true;
  bool verify = false;
  bool want_route_text = false;
  bool want_report = false;
};

struct ControlRequest {
  enum class Kind { kPing, kCancel, kShutdown };
  Kind kind = Kind::kPing;
  std::string target;  // kCancel: the job id to cancel
};

/// Outcome of parsing one request line. kError carries a diagnostic meant
/// to be echoed back in a "rejected" event; parse_request_line itself
/// never throws — a malformed line must never take the daemon down (the
/// serve fuzz mode hammers exactly this entry point).
struct ParsedRequest {
  enum class Kind { kJob, kControl, kError };
  Kind kind = Kind::kError;
  JobRequest job;
  ControlRequest control;
  std::string error;
};

[[nodiscard]] ParsedRequest parse_request_line(const std::string& line);

/// Event skeleton: {"id":...,"event":...} (id omitted when empty).
[[nodiscard]] JsonValue make_event(std::string_view event,
                                   std::string_view id = {});

/// Single-line serialization of a response document (the newline is the
/// frame delimiter, so the document itself must not contain one).
[[nodiscard]] std::string response_line(const JsonValue& doc);

}  // namespace bgr::serve

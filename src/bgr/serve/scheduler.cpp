#include "bgr/serve/scheduler.hpp"

#include <utility>

#include "bgr/obs/metrics.hpp"
#include "bgr/serve/design_cache.hpp"

namespace bgr::serve {

namespace {

/// serve.jobs_* / serve.cancellations are semantic: for a given request
/// stream the admission decisions, terminal statuses and cancellation
/// count are functions of the submitted contents and the configured
/// bounds, not of scheduling (admission runs synchronously under the
/// scheduler mutex in request order).
struct ServeMetrics {
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& accepted = reg.counter("serve.jobs_accepted", MetricScope::kSemantic);
  Counter& rejected = reg.counter("serve.jobs_rejected", MetricScope::kSemantic);
  Counter& completed =
      reg.counter("serve.jobs_completed", MetricScope::kSemantic);
  Counter& failed = reg.counter("serve.jobs_failed", MetricScope::kSemantic);
  Counter& cancellations =
      reg.counter("serve.cancellations", MetricScope::kSemantic);
};

ServeMetrics& serve_metrics() {
  static ServeMetrics* const m = new ServeMetrics();
  return *m;
}

}  // namespace

JobScheduler::JobScheduler(const SchedulerConfig& config, DesignCache* cache,
                           Emit emit)
    : config_(config), cache_(cache), emit_(std::move(emit)) {
  // Register the serve.* counters now, not on first use: an idle daemon
  // must still produce a schema-complete run report (all-zero counters).
  (void)serve_metrics();
  if (config_.max_jobs < 1) config_.max_jobs = 1;
  if (config_.queue_capacity < 1) config_.queue_capacity = 1;
  if (config_.pool_workers > 0) {
    pool_ = std::make_unique<ThreadPool>(config_.pool_workers);
  }
  paused_ = config_.start_paused;
  runners_.reserve(static_cast<std::size_t>(config_.max_jobs));
  for (std::int32_t i = 0; i < config_.max_jobs; ++i) {
    runners_.emplace_back([this] { runner_loop(); });
  }
}

JobScheduler::~JobScheduler() { drain_and_stop(); }

Admission JobScheduler::submit(const std::string& client, JobRequest request) {
  std::lock_guard<std::mutex> lock(mutex_);
  Admission admission;
  admission.queue_depth = queued_locked();
  if (stopping_) {
    admission.reason = "shutdown";
  } else if (admission.queue_depth >= config_.queue_capacity) {
    admission.reason = "queue_full";
  } else {
    // One live id per client: a second submission with the id of a
    // queued or running job is ambiguous for cancel/terminal events.
    bool duplicate =
        running_.find({client, request.id}) != running_.end();
    if (!duplicate) {
      auto it = queues_.find(client);
      if (it != queues_.end()) {
        for (const Job& job : it->second) {
          if (!job.cancelled && job.session->request().id == request.id) {
            duplicate = true;
            break;
          }
        }
      }
    }
    if (duplicate) {
      admission.reason = "duplicate_id";
    } else {
      admission.accepted = true;
    }
  }
  if (!admission.accepted) {
    ++totals_.rejected;
    serve_metrics().rejected.add(1);
    return admission;
  }
  ++totals_.accepted;
  serve_metrics().accepted.add(1);
  const std::string id = request.id;
  Job job;
  job.client = client;
  job.session = std::make_shared<RoutingSession>(std::move(request), cache_,
                                                 pool_.get());
  queues_[client].push_back(std::move(job));
  admission.queue_depth = queued_locked();
  // Emit "accepted" before a runner can pop the job (we still hold the
  // mutex), so a client never sees "started" precede it.
  JsonValue event = make_event("accepted", id);
  event.set("queue_depth", static_cast<std::int64_t>(admission.queue_depth));
  emit_(client, event);
  cv_.notify_one();
  return admission;
}

CancelOutcome JobScheduler::cancel(const std::string& client,
                                   const std::string& id) {
  std::shared_ptr<RoutingSession> running;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto run_it = running_.find({client, id});
    if (run_it != running_.end()) {
      running = run_it->second;
    } else {
      auto it = queues_.find(client);
      if (it != queues_.end()) {
        for (Job& job : it->second) {
          if (!job.cancelled && job.session->request().id == id) {
            job.cancelled = true;  // runner discards it on pop
            ++totals_.cancelled;
            serve_metrics().cancellations.add(1);
            JsonValue event = make_event("cancelled", id);
            emit_(client, event);
            return CancelOutcome::kCancelledQueued;
          }
        }
      }
      return CancelOutcome::kUnknown;
    }
  }
  // Outside the lock: flag the running session; its runner emits the
  // terminal "cancelled" event when the pipeline stops.
  running->cancel();
  return CancelOutcome::kCancellingRunning;
}

void JobScheduler::resume() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = false;
  cv_.notify_all();
}

void JobScheduler::drain_and_stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    paused_ = false;  // a paused scheduler still drains its queue
    cv_.notify_all();
  }
  for (std::thread& t : runners_) {
    if (t.joinable()) t.join();
  }
}

JobScheduler::Totals JobScheduler::totals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

std::int32_t JobScheduler::queued_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_locked();
}

std::int32_t JobScheduler::running_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int32_t>(running_.size());
}

std::int32_t JobScheduler::queued_locked() const {
  std::int32_t n = 0;
  for (const auto& [client, queue] : queues_) {
    for (const Job& job : queue) {
      if (!job.cancelled) ++n;
    }
  }
  return n;
}

bool JobScheduler::pop_next(Job* out, std::unique_lock<std::mutex>& lock) {
  while (true) {
    cv_.wait(lock, [&] {
      return (!paused_ && queued_locked() > 0) ||
             (stopping_ && queued_locked() == 0);
    });
    if (queued_locked() == 0) return false;  // stopping and drained
    // Round-robin: serve the first non-empty client strictly after the
    // cursor in client order, wrapping — a flood from one client cannot
    // starve the rest.
    auto start = queues_.upper_bound(rr_cursor_);
    for (std::size_t step = 0; step <= queues_.size(); ++step) {
      if (start == queues_.end()) start = queues_.begin();
      std::deque<Job>& queue = start->second;
      // Drop lazily cancelled jobs from the front without serving them.
      while (!queue.empty() && queue.front().cancelled) queue.pop_front();
      if (!queue.empty()) {
        *out = std::move(queue.front());
        queue.pop_front();
        rr_cursor_ = start->first;
        if (queue.empty()) queues_.erase(start);
        return true;
      }
      if (queue.empty()) start = queues_.erase(start);
    }
    // Every queued job turned out to be a cancelled tombstone; re-wait.
  }
}

void JobScheduler::runner_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!pop_next(&job, lock)) return;
      running_.emplace(std::make_pair(job.client, job.session->request().id),
                       job.session);
    }
    const std::string& id = job.session->request().id;
    JsonValue started = make_event("started", id);
    emit_(job.client, started);

    SessionResult result = job.session->run();

    JsonValue event;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      running_.erase({job.client, id});
      switch (result.status) {
        case SessionStatus::kDone:
          ++totals_.completed;
          serve_metrics().completed.add(1);
          event = make_event("done", id);
          event.set("result", result_to_json(result));
          if (!result.route_text.empty()) {
            event.set("route_text", result.route_text);
          }
          if (!result.report.is_null()) event.set("report", result.report);
          break;
        case SessionStatus::kCancelled:
          ++totals_.cancelled;
          serve_metrics().cancellations.add(1);
          event = make_event("cancelled", id);
          break;
        case SessionStatus::kFailed:
          ++totals_.failed;
          serve_metrics().failed.add(1);
          event = make_event("failed", id);
          event.set("error", result.error);
          break;
      }
    }
    emit_(job.client, event);
  }
}

}  // namespace bgr::serve

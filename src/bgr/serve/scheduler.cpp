#include "bgr/serve/scheduler.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "bgr/common/hash.hpp"
#include "bgr/common/log.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/serve/design_cache.hpp"

namespace bgr::serve {

namespace {

/// serve.jobs_* / serve.cancellations are semantic: for a given request
/// stream the admission decisions, terminal statuses and cancellation
/// count are functions of the submitted contents and the configured
/// bounds, not of scheduling (admission runs synchronously under the
/// scheduler mutex in request order). serve.watchdog_flags is the
/// opposite — whether a job trips the rolling-p99 watchdog depends on
/// wall-clock speed — so it is quarantined as nondeterministic.
struct ServeMetrics {
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& accepted = reg.counter("serve.jobs_accepted", MetricScope::kSemantic);
  Counter& rejected = reg.counter("serve.jobs_rejected", MetricScope::kSemantic);
  Counter& completed =
      reg.counter("serve.jobs_completed", MetricScope::kSemantic);
  Counter& failed = reg.counter("serve.jobs_failed", MetricScope::kSemantic);
  Counter& cancellations =
      reg.counter("serve.cancellations", MetricScope::kSemantic);
  Counter& watchdog_flags =
      reg.counter("serve.watchdog_flags", MetricScope::kNonDeterministic);
};

ServeMetrics& serve_metrics() {
  static ServeMetrics* const m = new ServeMetrics();
  return *m;
}

std::int64_t seconds_to_us(double seconds) {
  return static_cast<std::int64_t>(seconds * 1e6);
}

}  // namespace

JobScheduler::JobScheduler(const SchedulerConfig& config, DesignCache* cache,
                           Emit emit)
    : config_(config), cache_(cache), emit_(std::move(emit)) {
  // Register the serve.* counters now, not on first use: an idle daemon
  // must still produce a schema-complete run report (all-zero counters).
  (void)serve_metrics();
  if (config_.max_jobs < 1) config_.max_jobs = 1;
  if (config_.queue_capacity < 1) config_.queue_capacity = 1;
  if (config_.housekeeping_interval_ms < 1) {
    config_.housekeeping_interval_ms = 1;
  }
  if (config_.window_epoch_ms < 1) config_.window_epoch_ms = 1;
  if (config_.pool_workers > 0) {
    pool_ = std::make_unique<ThreadPool>(config_.pool_workers);
  }
  paused_ = config_.start_paused;
  epoch_ = std::chrono::steady_clock::now();
  runners_.reserve(static_cast<std::size_t>(config_.max_jobs));
  for (std::int32_t i = 0; i < config_.max_jobs; ++i) {
    runners_.emplace_back([this] { runner_loop(); });
  }
  housekeeper_ = std::thread([this] { housekeeping_loop(); });
}

JobScheduler::~JobScheduler() { drain_and_stop(); }

Admission JobScheduler::submit(const std::string& client, JobRequest request) {
  std::lock_guard<std::mutex> lock(mutex_);
  Admission admission;
  admission.queue_depth = queued_locked();
  if (stopping_) {
    admission.reason = "shutdown";
  } else if (admission.queue_depth >= config_.queue_capacity) {
    admission.reason = "queue_full";
  } else {
    // One live id per client: a second submission with the id of a
    // queued or running job is ambiguous for cancel/terminal events.
    bool duplicate =
        running_.find({client, request.id}) != running_.end();
    if (!duplicate) {
      auto it = queues_.find(client);
      if (it != queues_.end()) {
        for (const Job& job : it->second) {
          if (!job.cancelled && job.session->request().id == request.id) {
            duplicate = true;
            break;
          }
        }
      }
    }
    if (duplicate) {
      admission.reason = "duplicate_id";
    } else {
      admission.accepted = true;
    }
  }
  if (!admission.accepted) {
    ++totals_.rejected;
    serve_metrics().rejected.add(1);
    return admission;
  }
  ++totals_.accepted;
  serve_metrics().accepted.add(1);
  const std::string id = request.id;
  Job job;
  job.client = client;
  // Trace id: unique per admitted job, threaded through the session's
  // phase spans and every NDJSON event of this job's lifecycle. The
  // fingerprint folds a per-scheduler token so ids from different daemon
  // runs do not collide in an aggregated trace store.
  {
    Fingerprint fp;
    fp.mix(reinterpret_cast<std::uint64_t>(this));
    fp.mix(static_cast<std::int64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            epoch_.time_since_epoch())
            .count()));
    fp.mix(next_trace_++);
    job.trace_id = "t-" + fp.hex();
  }
  job.admit_us = now_us();
  job.session = std::make_shared<RoutingSession>(std::move(request), cache_,
                                                 pool_.get());
  // Set before the job is published to the queue: once queued, other
  // threads (runner, watchdog) may read it concurrently.
  job.session->set_trace_id(job.trace_id);
  const std::string trace_id = job.trace_id;
  queues_[client].push_back(std::move(job));
  admission.queue_depth = queued_locked();
  // Emit "accepted" before a runner can pop the job (we still hold the
  // mutex), so a client never sees "started" precede it.
  JsonValue event = make_event("accepted", id);
  event.set("trace", trace_id);
  event.set("queue_depth", static_cast<std::int64_t>(admission.queue_depth));
  emit_(client, event);
  cv_.notify_one();
  return admission;
}

CancelOutcome JobScheduler::cancel(const std::string& client,
                                   const std::string& id) {
  std::shared_ptr<RoutingSession> running;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto run_it = running_.find({client, id});
    if (run_it != running_.end()) {
      running = run_it->second.session;
    } else {
      auto it = queues_.find(client);
      if (it != queues_.end()) {
        for (Job& job : it->second) {
          if (!job.cancelled && job.session->request().id == id) {
            job.cancelled = true;  // runner discards it on pop
            ++totals_.cancelled;
            serve_metrics().cancellations.add(1);
            JsonValue event = make_event("cancelled", id);
            event.set("trace", job.trace_id);
            emit_(client, event);
            return CancelOutcome::kCancelledQueued;
          }
        }
      }
      return CancelOutcome::kUnknown;
    }
  }
  // Outside the lock: flag the running session; its runner emits the
  // terminal "cancelled" event when the pipeline stops.
  running->cancel();
  return CancelOutcome::kCancellingRunning;
}

void JobScheduler::resume() {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = false;
  cv_.notify_all();
}

void JobScheduler::drain_and_stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    paused_ = false;  // a paused scheduler still drains its queue
    cv_.notify_all();
    housekeeping_cv_.notify_all();
  }
  for (std::thread& t : runners_) {
    if (t.joinable()) t.join();
  }
  if (housekeeper_.joinable()) housekeeper_.join();
}

std::int64_t JobScheduler::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<std::pair<std::string, std::int32_t>>
JobScheduler::queue_depths() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::int32_t>> out;
  for (const auto& [client, queue] : queues_) {
    std::int32_t n = 0;
    for (const Job& job : queue) {
      if (!job.cancelled) ++n;
    }
    out.emplace_back(client, n);
  }
  return out;
}

std::int64_t JobScheduler::watchdog_flags() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watchdog_flags_;
}

void JobScheduler::record_latency(const Job& job, const SessionResult& result,
                                  std::int64_t started_us,
                                  std::int64_t finished_us) {
  latency_.queue_wait_us.record(started_us - job.admit_us);
  if (result.status != SessionStatus::kDone) return;
  latency_.e2e_us.record(finished_us - job.admit_us);
  for (const auto& [phase, seconds] : result.phase_seconds) {
    SlidingHistogram* window = nullptr;
    if (phase == std::string_view("parse")) window = &latency_.parse_us;
    else if (phase == std::string_view("route")) window = &latency_.route_us;
    else if (phase == std::string_view("channel")) window = &latency_.channel_us;
    else if (phase == std::string_view("verify")) window = &latency_.verify_us;
    else if (phase == std::string_view("report")) window = &latency_.report_us;
    if (window != nullptr) window->record(seconds_to_us(seconds));
  }
}

void JobScheduler::housekeeping_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::int64_t last_rotate = now_us();
  while (!stopping_) {
    housekeeping_cv_.wait_for(
        lock, std::chrono::milliseconds(config_.housekeeping_interval_ms));
    if (stopping_) break;
    const std::int64_t now = now_us();
    if (now - last_rotate >=
        static_cast<std::int64_t>(config_.window_epoch_ms) * 1000) {
      last_rotate = now;
      lock.unlock();
      // Rotation takes each window's own mutex only — never under the
      // scheduler mutex, so a scrape can't stall admission.
      latency_.queue_wait_us.advance();
      latency_.e2e_us.advance();
      latency_.parse_us.advance();
      latency_.route_us.advance();
      latency_.channel_us.advance();
      latency_.verify_us.advance();
      latency_.report_us.advance();
      lock.lock();
      if (stopping_) break;
    }
    watchdog_scan();
  }
}

/// Caller holds mutex_. One warning per job: logs id, client, trace id,
/// the phase the session is in right now, its elapsed time and the
/// rolling p99 it is being judged against.
void JobScheduler::watchdog_scan() {
  if (config_.watchdog_multiple < 0.0) return;
  const SlidingHistogram::Snapshot e2e = latency_.e2e_us.snapshot();
  const std::int64_t now = now_us();
  for (auto& [key, running] : running_) {
    if (running.warned) continue;
    const double elapsed_us = static_cast<double>(now - running.start_us);
    if (!watchdog_should_flag(elapsed_us, e2e.p99, config_.watchdog_multiple,
                              e2e.count, config_.watchdog_min_samples)) {
      continue;
    }
    running.warned = true;
    ++watchdog_flags_;
    serve_metrics().watchdog_flags.add(1);
    char line[256];
    std::snprintf(line, sizeof(line),
                  "watchdog: slow job %s (client %s, trace %s) in phase %s: "
                  "%.1f ms elapsed vs rolling p99 %.1f ms (x%.1f)",
                  key.second.c_str(), key.first.c_str(),
                  running.trace_id.c_str(),
                  session_phase_name(running.session->phase()),
                  elapsed_us / 1000.0, e2e.p99 / 1000.0,
                  config_.watchdog_multiple);
    log_warn(line);
  }
}

JobScheduler::Totals JobScheduler::totals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

std::int32_t JobScheduler::queued_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_locked();
}

std::int32_t JobScheduler::running_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int32_t>(running_.size());
}

std::int32_t JobScheduler::queued_locked() const {
  std::int32_t n = 0;
  for (const auto& [client, queue] : queues_) {
    for (const Job& job : queue) {
      if (!job.cancelled) ++n;
    }
  }
  return n;
}

bool JobScheduler::pop_next(Job* out, std::unique_lock<std::mutex>& lock) {
  while (true) {
    cv_.wait(lock, [&] {
      return (!paused_ && queued_locked() > 0) ||
             (stopping_ && queued_locked() == 0);
    });
    if (queued_locked() == 0) return false;  // stopping and drained
    // Round-robin: serve the first non-empty client strictly after the
    // cursor in client order, wrapping — a flood from one client cannot
    // starve the rest.
    auto start = queues_.upper_bound(rr_cursor_);
    for (std::size_t step = 0; step <= queues_.size(); ++step) {
      if (start == queues_.end()) start = queues_.begin();
      std::deque<Job>& queue = start->second;
      // Drop lazily cancelled jobs from the front without serving them.
      while (!queue.empty() && queue.front().cancelled) queue.pop_front();
      if (!queue.empty()) {
        *out = std::move(queue.front());
        queue.pop_front();
        rr_cursor_ = start->first;
        if (queue.empty()) queues_.erase(start);
        return true;
      }
      if (queue.empty()) start = queues_.erase(start);
    }
    // Every queued job turned out to be a cancelled tombstone; re-wait.
  }
}

void JobScheduler::runner_loop() {
  while (true) {
    Job job;
    std::int64_t started_us = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!pop_next(&job, lock)) return;
      started_us = now_us();
      RunningJob running;
      running.session = job.session;
      running.trace_id = job.trace_id;
      running.start_us = started_us;
      running_.emplace(std::make_pair(job.client, job.session->request().id),
                       std::move(running));
    }
    const std::string& id = job.session->request().id;
    JsonValue started = make_event("started", id);
    started.set("trace", job.trace_id);
    emit_(job.client, started);

    SessionResult result = job.session->run();
    const std::int64_t finished_us = now_us();
    record_latency(job, result, started_us, finished_us);

    JsonValue event;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      running_.erase({job.client, id});
      switch (result.status) {
        case SessionStatus::kDone:
          ++totals_.completed;
          serve_metrics().completed.add(1);
          event = make_event("done", id);
          event.set("result", result_to_json(result));
          if (!result.route_text.empty()) {
            event.set("route_text", result.route_text);
          }
          if (!result.report.is_null()) event.set("report", result.report);
          break;
        case SessionStatus::kCancelled:
          ++totals_.cancelled;
          serve_metrics().cancellations.add(1);
          event = make_event("cancelled", id);
          break;
        case SessionStatus::kFailed:
          ++totals_.failed;
          serve_metrics().failed.add(1);
          event = make_event("failed", id);
          event.set("error", result.error);
          break;
      }
      event.set("trace", job.trace_id);
    }
    emit_(job.client, event);
  }
}

}  // namespace bgr::serve

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bgr/exec/thread_pool.hpp"
#include "bgr/serve/protocol.hpp"
#include "bgr/serve/session.hpp"

namespace bgr::serve {

class DesignCache;

struct SchedulerConfig {
  /// Workers on the one shared compute pool. 0 = run every job serially
  /// (the pool is not created); parallel regions of all co-tenant jobs
  /// share these workers.
  std::int32_t pool_workers = 0;
  /// Jobs in flight at once (dedicated runner threads). Runner threads
  /// are not pool workers: a runner drives its session's pipeline and the
  /// pipeline's parallel regions fan out on the shared pool, so saturating
  /// the pool degrades to caller-runs-chunks, never deadlock.
  std::int32_t max_jobs = 2;
  /// Admission bound on queued (not yet started) jobs; submissions beyond
  /// it are rejected with reason "queue_full".
  std::int32_t queue_capacity = 64;
  /// Tests: accept submissions but do not start running them until
  /// resume() — makes queue-state transitions observable.
  bool start_paused = false;
};

/// Synchronous answer to submit(): the accept/reject decision the server
/// turns into the job's first response line, in request order.
struct Admission {
  bool accepted = false;
  std::string reason;  // rejects: "queue_full", "duplicate_id", "shutdown"
  std::int32_t queue_depth = 0;
};

/// What cancel() found; the server maps these onto response events.
enum class CancelOutcome {
  kCancelledQueued,   // removed before it ever started
  kCancellingRunning, // flag set; job stops at its next phase boundary
  kUnknown,           // no queued or running job with that id
};

/// Multi-client job scheduler: one bounded queue per client, drained
/// round-robin so a client that floods the queue cannot starve the
/// others, executing on max_jobs runner threads with every session's
/// parallel work co-tenant on one shared ThreadPool (DESIGN.md §12).
///
/// Completion events (started/done/cancelled/failed) are delivered
/// through the Emit callback from runner threads — the callback must be
/// thread-safe. Admission answers are synchronous.
class JobScheduler {
 public:
  /// (client, event) — event is a response document ready to serialize.
  using Emit = std::function<void(const std::string& client,
                                  const JsonValue& event)>;

  JobScheduler(const SchedulerConfig& config, DesignCache* cache, Emit emit);
  /// Implies drain_and_stop().
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Admission control. Accepted jobs are queued under `client` and will
  /// emit exactly one terminal event (done/cancelled/failed) later.
  [[nodiscard]] Admission submit(const std::string& client,
                                 JobRequest request);

  /// Cancels `id` for `client`: a queued job is removed immediately (its
  /// terminal "cancelled" event emits from here), a running one is
  /// flagged and stops at the next phase boundary of its pipeline.
  [[nodiscard]] CancelOutcome cancel(const std::string& client,
                                     const std::string& id);

  /// Releases a start_paused scheduler.
  void resume();

  /// Stops admission, runs everything still queued, joins the runners.
  /// Idempotent.
  void drain_and_stop();

  struct Totals {
    std::int64_t accepted = 0;
    std::int64_t rejected = 0;
    std::int64_t completed = 0;
    std::int64_t failed = 0;
    std::int64_t cancelled = 0;
  };
  [[nodiscard]] Totals totals() const;

  [[nodiscard]] std::int32_t queued_jobs() const;
  [[nodiscard]] std::int32_t running_jobs() const;
  [[nodiscard]] ThreadPool* pool() { return pool_.get(); }

 private:
  struct Job {
    std::string client;
    std::shared_ptr<RoutingSession> session;  // created at admission
    bool cancelled = false;                   // lazy queued-cancel mark
  };
  using ClientQueues = std::map<std::string, std::deque<Job>>;

  void runner_loop();
  /// Pops the next runnable job round-robin across clients; returns false
  /// on stop-with-empty-queues. Caller holds mutex_.
  bool pop_next(Job* out, std::unique_lock<std::mutex>& lock);
  [[nodiscard]] std::int32_t queued_locked() const;

  SchedulerConfig config_;
  DesignCache* cache_;
  Emit emit_;
  std::unique_ptr<ThreadPool> pool_;  // shared compute pool (may be null)

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  ClientQueues queues_;
  /// Fairness cursor: name of the client that was served last; the next
  /// pop starts strictly after it in client order (wrapping).
  std::string rr_cursor_;
  /// Running jobs by (client, id) for cancel routing.
  std::map<std::pair<std::string, std::string>,
           std::shared_ptr<RoutingSession>>
      running_;
  bool paused_ = false;
  bool stopping_ = false;
  Totals totals_;

  std::vector<std::thread> runners_;
};

}  // namespace bgr::serve

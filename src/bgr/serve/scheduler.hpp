#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <utility>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bgr/exec/thread_pool.hpp"
#include "bgr/obs/telemetry.hpp"
#include "bgr/serve/protocol.hpp"
#include "bgr/serve/session.hpp"

namespace bgr::serve {

class DesignCache;

struct SchedulerConfig {
  /// Workers on the one shared compute pool. 0 = run every job serially
  /// (the pool is not created); parallel regions of all co-tenant jobs
  /// share these workers.
  std::int32_t pool_workers = 0;
  /// Jobs in flight at once (dedicated runner threads). Runner threads
  /// are not pool workers: a runner drives its session's pipeline and the
  /// pipeline's parallel regions fan out on the shared pool, so saturating
  /// the pool degrades to caller-runs-chunks, never deadlock.
  std::int32_t max_jobs = 2;
  /// Admission bound on queued (not yet started) jobs; submissions beyond
  /// it are rejected with reason "queue_full".
  std::int32_t queue_capacity = 64;
  /// Tests: accept submissions but do not start running them until
  /// resume() — makes queue-state transitions observable.
  bool start_paused = false;

  /// Live-telemetry knobs (DESIGN.md §14). The housekeeping thread ticks
  /// every `housekeeping_interval_ms`: it runs the slow-job watchdog scan
  /// on every tick and rotates the rolling latency windows roughly once
  /// per `window_epoch_ms`. The watchdog logs (once per job) any running
  /// job older than `watchdog_multiple` × the rolling end-to-end p99,
  /// provided the window holds at least `watchdog_min_samples` finished
  /// jobs; a negative multiple disables the watchdog entirely.
  std::int32_t housekeeping_interval_ms = 250;
  std::int32_t window_epoch_ms = 1000;
  double watchdog_multiple = 8.0;
  std::int64_t watchdog_min_samples = 16;
};

/// Synchronous answer to submit(): the accept/reject decision the server
/// turns into the job's first response line, in request order.
struct Admission {
  bool accepted = false;
  std::string reason;  // rejects: "queue_full", "duplicate_id", "shutdown"
  std::int32_t queue_depth = 0;
};

/// What cancel() found; the server maps these onto response events.
enum class CancelOutcome {
  kCancelledQueued,   // removed before it ever started
  kCancellingRunning, // flag set; job stops at its next phase boundary
  kUnknown,           // no queued or running job with that id
};

/// Multi-client job scheduler: one bounded queue per client, drained
/// round-robin so a client that floods the queue cannot starve the
/// others, executing on max_jobs runner threads with every session's
/// parallel work co-tenant on one shared ThreadPool (DESIGN.md §12).
///
/// Completion events (started/done/cancelled/failed) are delivered
/// through the Emit callback from runner threads — the callback must be
/// thread-safe. Admission answers are synchronous.
class JobScheduler {
 public:
  /// (client, event) — event is a response document ready to serialize.
  using Emit = std::function<void(const std::string& client,
                                  const JsonValue& event)>;

  JobScheduler(const SchedulerConfig& config, DesignCache* cache, Emit emit);
  /// Implies drain_and_stop().
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Admission control. Accepted jobs are queued under `client` and will
  /// emit exactly one terminal event (done/cancelled/failed) later.
  [[nodiscard]] Admission submit(const std::string& client,
                                 JobRequest request);

  /// Cancels `id` for `client`: a queued job is removed immediately (its
  /// terminal "cancelled" event emits from here), a running one is
  /// flagged and stops at the next phase boundary of its pipeline.
  [[nodiscard]] CancelOutcome cancel(const std::string& client,
                                     const std::string& id);

  /// Releases a start_paused scheduler.
  void resume();

  /// Stops admission, runs everything still queued, joins the runners.
  /// Idempotent.
  void drain_and_stop();

  struct Totals {
    std::int64_t accepted = 0;
    std::int64_t rejected = 0;
    std::int64_t completed = 0;
    std::int64_t failed = 0;
    std::int64_t cancelled = 0;
  };
  [[nodiscard]] Totals totals() const;

  [[nodiscard]] std::int32_t queued_jobs() const;
  [[nodiscard]] std::int32_t running_jobs() const;
  [[nodiscard]] ThreadPool* pool() { return pool_.get(); }

  /// Queued (non-tombstone) jobs per client, for the queue-depth gauge.
  [[nodiscard]] std::vector<std::pair<std::string, std::int32_t>>
  queue_depths() const;

  /// Rolling latency windows (microsecond samples), advanced by the
  /// housekeeping thread once per configured epoch. Exposed read-only so
  /// the admin endpoint can render quantiles per scrape.
  struct LatencyWindows {
    SlidingHistogram queue_wait_us;  // accepted → started
    SlidingHistogram e2e_us;         // accepted → terminal event
    SlidingHistogram parse_us;
    SlidingHistogram route_us;
    SlidingHistogram channel_us;
    SlidingHistogram verify_us;
    SlidingHistogram report_us;
  };
  [[nodiscard]] const LatencyWindows& latency() const { return latency_; }

  /// Jobs the watchdog has flagged so far (also counted by the
  /// nondeterministic serve.watchdog_flags metric).
  [[nodiscard]] std::int64_t watchdog_flags() const;

 private:
  struct Job {
    std::string client;
    std::shared_ptr<RoutingSession> session;  // created at admission
    std::string trace_id;                     // minted at admission
    std::int64_t admit_us = 0;                // steady-clock admission time
    bool cancelled = false;                   // lazy queued-cancel mark
  };
  using ClientQueues = std::map<std::string, std::deque<Job>>;

  /// Watchdog view of an in-flight job. `warned` keeps the log to one
  /// line per job however long it runs on.
  struct RunningJob {
    std::shared_ptr<RoutingSession> session;
    std::string trace_id;
    std::int64_t start_us = 0;
    bool warned = false;
  };

  void runner_loop();
  void housekeeping_loop();
  void watchdog_scan();
  [[nodiscard]] std::int64_t now_us() const;
  void record_latency(const Job& job, const SessionResult& result,
                      std::int64_t started_us, std::int64_t finished_us);
  /// Pops the next runnable job round-robin across clients; returns false
  /// on stop-with-empty-queues. Caller holds mutex_.
  bool pop_next(Job* out, std::unique_lock<std::mutex>& lock);
  [[nodiscard]] std::int32_t queued_locked() const;

  SchedulerConfig config_;
  DesignCache* cache_;
  Emit emit_;
  std::unique_ptr<ThreadPool> pool_;  // shared compute pool (may be null)

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  ClientQueues queues_;
  /// Fairness cursor: name of the client that was served last; the next
  /// pop starts strictly after it in client order (wrapping).
  std::string rr_cursor_;
  /// Running jobs by (client, id) for cancel routing and watchdog scans.
  std::map<std::pair<std::string, std::string>, RunningJob> running_;
  bool paused_ = false;
  bool stopping_ = false;
  Totals totals_;
  std::int64_t next_trace_ = 0;
  std::int64_t watchdog_flags_ = 0;

  LatencyWindows latency_;
  std::chrono::steady_clock::time_point epoch_{};  // now_us() origin

  std::vector<std::thread> runners_;
  std::thread housekeeper_;
  std::condition_variable housekeeping_cv_;
};

}  // namespace bgr::serve

#include "bgr/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

#include "bgr/common/stopwatch.hpp"
#include "bgr/obs/run_report.hpp"
#include "bgr/obs/trace.hpp"

namespace bgr::serve {

namespace {

constexpr const char* kStdioClient = "stdio";

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.dataset_cache_capacity, config_.result_cache_capacity) {
  event_epoch_ = std::chrono::steady_clock::now();
  scheduler_ = std::make_unique<JobScheduler>(
      config_.scheduler, &cache_,
      [this](const std::string& client, const JsonValue& event) {
        emit(client, event);
      });
  register_telemetry();
}

Server::~Server() {
  admin_.reset();  // stop scrapes before the things the gauges sample
  close_tcp();
  // The scheduler joins its runners before cache_/emit go away.
  scheduler_.reset();
}

void Server::register_telemetry() {
  hub_.add_gauge(
      "serve.queue_depth", "Queued (not yet started) jobs per client.",
      [this] {
        std::vector<GaugeSample> out;
        for (const auto& [client, depth] : scheduler_->queue_depths()) {
          GaugeSample sample;
          sample.labels.emplace_back("client", client);
          sample.value = static_cast<double>(depth);
          out.push_back(std::move(sample));
        }
        return out;
      });
  hub_.add_gauge("serve.inflight_jobs", "Jobs currently running.", [this] {
    return std::vector<GaugeSample>{
        {{}, static_cast<double>(scheduler_->running_jobs())}};
  });
  hub_.add_gauge(
      "serve.cache_entries",
      "DesignCache resident entries by level (dataset/result).", [this] {
        const DesignCache::Usage usage = cache_.usage();
        GaugeSample dataset;
        dataset.labels.emplace_back("level", "dataset");
        dataset.value = static_cast<double>(usage.dataset_entries);
        GaugeSample result;
        result.labels.emplace_back("level", "result");
        result.value = static_cast<double>(usage.result_entries);
        return std::vector<GaugeSample>{std::move(dataset), std::move(result)};
      });
  hub_.add_gauge(
      "serve.cache_bytes",
      "Approximate DesignCache resident bytes by level.", [this] {
        const DesignCache::Usage usage = cache_.usage();
        GaugeSample dataset;
        dataset.labels.emplace_back("level", "dataset");
        dataset.value = static_cast<double>(usage.dataset_bytes);
        GaugeSample result;
        result.labels.emplace_back("level", "result");
        result.value = static_cast<double>(usage.result_bytes);
        return std::vector<GaugeSample>{std::move(dataset), std::move(result)};
      });
  hub_.add_gauge("exec.pool_workers", "Workers on the shared compute pool.",
                 [this] {
                   ThreadPool* pool = scheduler_->pool();
                   return std::vector<GaugeSample>{
                       {{}, pool != nullptr
                                ? static_cast<double>(pool->worker_count())
                                : 0.0}};
                 });
  hub_.add_gauge("exec.pool_busy_workers",
                 "Pool workers executing a task right now.", [this] {
                   ThreadPool* pool = scheduler_->pool();
                   return std::vector<GaugeSample>{
                       {{}, pool != nullptr
                                ? static_cast<double>(pool->active_workers())
                                : 0.0}};
                 });

  const JobScheduler::LatencyWindows& lat = scheduler_->latency();
  hub_.add_window("serve.queue_wait_us",
                  "Rolling accepted-to-started wait (microseconds).",
                  &lat.queue_wait_us);
  hub_.add_window("serve.e2e_us",
                  "Rolling accepted-to-done end-to-end latency "
                  "(microseconds, completed jobs).",
                  &lat.e2e_us);
  hub_.add_window("serve.phase_parse_us",
                  "Rolling parse-phase latency (microseconds).",
                  &lat.parse_us);
  hub_.add_window("serve.phase_route_us",
                  "Rolling route-phase latency (microseconds).",
                  &lat.route_us);
  hub_.add_window("serve.phase_channel_us",
                  "Rolling channel-phase latency (microseconds).",
                  &lat.channel_us);
  hub_.add_window("serve.phase_verify_us",
                  "Rolling verify-phase latency (microseconds).",
                  &lat.verify_us);
  hub_.add_window("serve.phase_report_us",
                  "Rolling report-phase latency (microseconds).",
                  &lat.report_us);
}

void Server::emit(const std::string& client, const JsonValue& event) {
  std::string line;
  std::lock_guard<std::mutex> out_lock(out_mutex_);
  {
    // Stamp under out_mutex_: the stream order, the sequence numbers and
    // the timestamps all agree (seq strictly increasing, ts_us
    // non-decreasing on the steady clock).
    JsonValue stamped = event;
    stamped.set("ts_us",
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - event_epoch_)
                    .count());
    stamped.set("seq", event_seq_++);
    line = response_line(stamped) + "\n";
  }
  if (client == kStdioClient) {
    if (stdio_out_ != nullptr) {
      (*stdio_out_) << line;
      stdio_out_->flush();
    }
    return;
  }
  int fd = -1;
  {
    std::lock_guard<std::mutex> conn_lock(conn_mutex_);
    auto it = client_fds_.find(client);
    if (it != client_fds_.end()) fd = it->second;
  }
  if (fd < 0) return;  // client disconnected; drop the event
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, data, left, 0);
    if (n <= 0) return;  // connection broke mid-write; drop the rest
    data += n;
    left -= static_cast<std::size_t>(n);
  }
}

bool Server::handle_line(const std::string& client, const std::string& line,
                         bool allow_shutdown) {
  const ParsedRequest parsed = parse_request_line(line);
  switch (parsed.kind) {
    case ParsedRequest::Kind::kError: {
      JsonValue event = make_event("rejected", parsed.job.id);
      event.set("reason", parsed.error);
      emit(client, event);
      return true;
    }
    case ParsedRequest::Kind::kControl: {
      switch (parsed.control.kind) {
        case ControlRequest::Kind::kPing:
          emit(client, make_event("pong"));
          return true;
        case ControlRequest::Kind::kCancel: {
          switch (scheduler_->cancel(client, parsed.control.target)) {
            case CancelOutcome::kCancelledQueued:
              // The scheduler already emitted the terminal "cancelled"
              // event for the dequeued job.
              break;
            case CancelOutcome::kCancellingRunning:
              emit(client,
                   make_event("cancelling", parsed.control.target));
              break;
            case CancelOutcome::kUnknown:
              emit(client,
                   make_event("unknown_job", parsed.control.target));
              break;
          }
          return true;
        }
        case ControlRequest::Kind::kShutdown: {
          if (allow_shutdown) return false;
          JsonValue event = make_event("rejected");
          event.set("reason",
                    "shutdown is honored from the stdio client only");
          emit(client, event);
          return true;
        }
      }
      return true;
    }
    case ParsedRequest::Kind::kJob: {
      const std::string id = parsed.job.id;
      // The scheduler emits "accepted" itself, under its own mutex,
      // before a runner can pop the job — so "started" never precedes it.
      const Admission admission = scheduler_->submit(client, parsed.job);
      if (!admission.accepted) {
        JsonValue event = make_event("rejected", id);
        event.set("reason", admission.reason);
        emit(client, event);
      }
      return true;
    }
  }
  return true;
}

int Server::run(std::istream& in, std::ostream& out) {
  Stopwatch watch;
  {
    std::lock_guard<std::mutex> lock(out_mutex_);
    stdio_out_ = &out;
  }
  if (!config_.trace_out.empty()) Trace::global().enable();
  if (config_.tcp_port >= 0 && !open_listener()) {
    JsonValue event = make_event("fatal");
    event.set("reason", "cannot bind loopback port " +
                            std::to_string(config_.tcp_port));
    emit(kStdioClient, event);
    return 1;
  }
  if (config_.admin_port >= 0) {
    admin_ = std::make_unique<AdminServer>(
        [this] { return hub_.render(MetricsRegistry::global()); },
        [this] { return !draining_.load(std::memory_order_relaxed); });
    if (!admin_->start(config_.admin_port)) {
      JsonValue event = make_event("fatal");
      event.set("reason", "cannot bind admin port " +
                              std::to_string(config_.admin_port));
      emit(kStdioClient, event);
      return 1;
    }
  }
  {
    JsonValue ready = make_event("ready");
    ready.set("pool_workers",
              static_cast<std::int64_t>(config_.scheduler.pool_workers));
    ready.set("max_jobs",
              static_cast<std::int64_t>(config_.scheduler.max_jobs));
    if (bound_port_ >= 0) {
      ready.set("port", static_cast<std::int64_t>(bound_port_));
    }
    if (admin_ != nullptr) {
      ready.set("admin_port", static_cast<std::int64_t>(admin_->port()));
    }
    emit(kStdioClient, ready);
  }

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!handle_line(kStdioClient, line, /*allow_shutdown=*/true)) break;
  }

  // Orderly shutdown: /readyz flips to draining first, then no new
  // clients, run out the queue, report. The admin endpoint stays up
  // through the drain so probes see the 503 instead of a dead port.
  draining_.store(true, std::memory_order_relaxed);
  close_tcp();
  scheduler_->drain_and_stop();
  if (!config_.trace_out.empty()) {
    Trace::global().save(config_.trace_out);
  }

  const JsonValue report = final_report(watch.seconds());
  if (!config_.metrics_out.empty()) {
    RunReport out_report("bgr_serve");
    out_report.root() = report;
    out_report.save(config_.metrics_out);
  }
  JsonValue bye = make_event("shutdown");
  bye.set("report", report);
  emit(kStdioClient, bye);
  return 0;
}

JsonValue Server::final_report(double wall_seconds) const {
  RunReport report("bgr_serve");
  const JobScheduler::Totals totals = scheduler_->totals();
  const DesignCache::Stats cache = cache_.stats();

  JsonValue& serve = report.section("serve");
  serve.set("pool_workers",
            static_cast<std::int64_t>(config_.scheduler.pool_workers));
  serve.set("max_jobs", static_cast<std::int64_t>(config_.scheduler.max_jobs));
  serve.set("queue_capacity",
            static_cast<std::int64_t>(config_.scheduler.queue_capacity));
  serve.set("tcp", bound_port_ >= 0);

  // Deterministic for a given request stream: every job either first-sees
  // its design (one dataset miss) or repeats it (exactly one hit, through
  // the result or the dataset level depending on timing — the *sum* is
  // schedule-independent even though the split is not).
  JsonValue& tot = report.section("totals");
  tot.set("jobs_accepted", totals.accepted);
  tot.set("jobs_rejected", totals.rejected);
  tot.set("jobs_completed", totals.completed);
  tot.set("jobs_failed", totals.failed);
  tot.set("jobs_cancelled", totals.cancelled);
  tot.set("cache_hits", cache.dataset_hits + cache.result_hits);
  tot.set("cache_misses", cache.dataset_misses);

  // Scheduling-dependent diagnostics live in "run" (stripped by the
  // semantic comparison in check_run_report.py).
  JsonValue& run = report.section("run");
  run.set("wall_seconds", wall_seconds);
  run.set("cache_result_hits", cache.result_hits);
  run.set("cache_result_misses", cache.result_misses);
  run.set("cache_dataset_hits", cache.dataset_hits);
  run.set("cache_evictions", cache.evictions);
  run.set("watchdog_flags", scheduler_->watchdog_flags());

  report.add_metrics(MetricsRegistry::global());
  return report.root();
}

bool Server::open_listener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    bound_port_ = static_cast<std::int32_t>(ntohs(bound.sin_port));
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::accept_loop() {
  std::int64_t next_client = 0;
  while (!tcp_stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (tcp_stopping_.load(std::memory_order_relaxed)) break;
      continue;  // transient accept failure (EINTR, aborted handshake)
    }
    std::string client = "tcp:" + std::to_string(next_client++);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      client_fds_[client] = fd;
    }
    conn->thread = std::thread(
        [this, fd, client] { connection_loop(fd, client); });
    std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.push_back(std::move(conn));
  }
}

void Server::connection_loop(int fd, std::string client) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) {
        handle_line(client, line, /*allow_shutdown=*/false);
      }
    }
    buffer.erase(0, start);
  }
  // Unroute events first so in-flight jobs drop instead of writing to a
  // dead fd; the job itself keeps running to completion.
  std::lock_guard<std::mutex> lock(conn_mutex_);
  client_fds_[client] = -1;
}

void Server::close_tcp() {
  if (listen_fd_ < 0 && connections_.empty()) return;
  tcp_stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(connections_);
    for (auto& [client, fd] : client_fds_) fd = -1;
  }
  for (auto& conn : conns) {
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

}  // namespace bgr::serve

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bgr/obs/telemetry.hpp"
#include "bgr/serve/admin.hpp"
#include "bgr/serve/design_cache.hpp"
#include "bgr/serve/scheduler.hpp"

namespace bgr::serve {

struct ServerConfig {
  SchedulerConfig scheduler;
  /// Loopback TCP listener; < 0 disables the socket (stdio only), 0 binds
  /// an ephemeral port (printed in the startup banner event).
  std::int32_t tcp_port = -1;
  /// Loopback admin/telemetry endpoint (GET /metrics, /healthz, /readyz);
  /// < 0 disables it, 0 binds an ephemeral port (reported in the ready
  /// banner as "admin_port").
  std::int32_t admin_port = -1;
  /// Path for the final "bgr_serve" run report ("" = stdout only when
  /// report_to_stdout is set; never written otherwise).
  std::string metrics_out;
  /// Chrome trace-event JSON of every job's phase spans ("" = tracing
  /// off). Enabling costs one atomic load per span when idle.
  std::string trace_out;
  std::size_t dataset_cache_capacity = 32;
  std::size_t result_cache_capacity = 128;
};

/// The bgr_serve daemon core: reads NDJSON requests from a stdio stream
/// (and optionally a loopback TCP socket), feeds jobs through one
/// JobScheduler + DesignCache, and writes one NDJSON response per event
/// back to the stream the request came from (DESIGN.md §12).
///
/// Lifecycle: run() blocks until the stdio client sends
/// {"shutdown":true} or closes the stream, then drains the queue, joins
/// everything and writes the final run report. Shutdown is honored from
/// the stdio client only — a portable daemon cannot interrupt a blocking
/// stdin read from a socket thread, so TCP shutdown requests are rejected
/// with that reason.
class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves `in`/`out` as the stdio client; returns the process exit code
  /// (0 on orderly shutdown). Call once.
  int run(std::istream& in, std::ostream& out);

  [[nodiscard]] const DesignCache& cache() const { return cache_; }
  [[nodiscard]] JobScheduler::Totals totals() const {
    return scheduler_->totals();
  }
  /// Port the TCP listener actually bound (ephemeral ports resolve here);
  /// -1 when the socket is disabled or failed to open.
  [[nodiscard]] std::int32_t tcp_port() const { return bound_port_; }
  /// Port the admin endpoint actually bound; -1 when disabled/failed.
  [[nodiscard]] std::int32_t admin_port() const {
    return admin_ != nullptr ? admin_->port() : -1;
  }

 private:
  /// One request line from `client`; responses route back through emit().
  /// Returns false when the line asks for (an honored) shutdown.
  bool handle_line(const std::string& client, const std::string& line,
                   bool allow_shutdown);
  void emit(const std::string& client, const JsonValue& event);

  bool open_listener();
  void accept_loop();
  void connection_loop(int fd, std::string client);
  void close_tcp();
  /// Registers the live gauges and latency windows on hub_ (called once,
  /// after the scheduler exists).
  void register_telemetry();

  [[nodiscard]] JsonValue final_report(double wall_seconds) const;

  ServerConfig config_;
  DesignCache cache_;  // must outlive scheduler_ (sessions hold it)
  std::unique_ptr<JobScheduler> scheduler_;

  TelemetryHub hub_;
  std::unique_ptr<AdminServer> admin_;
  /// Flipped at shutdown before the drain: /readyz turns 503 while the
  /// queue runs out, so a load balancer stops sending work first.
  std::atomic<bool> draining_{false};

  std::mutex out_mutex_;        // serializes every response line
  std::ostream* stdio_out_ = nullptr;
  /// Every NDJSON event is stamped under out_mutex_ with a monotonic
  /// microsecond timestamp and a strictly increasing sequence number, so
  /// a consumer can totally order the stream even across clients.
  std::int64_t event_seq_ = 0;
  std::chrono::steady_clock::time_point event_epoch_{};
  /// Live TCP connections by client name; fd < 0 after disconnect.
  struct Connection {
    int fd = -1;
    std::thread thread;
  };
  std::mutex conn_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::map<std::string, int> client_fds_;

  int listen_fd_ = -1;
  std::int32_t bound_port_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> tcp_stopping_{false};
};

}  // namespace bgr::serve

#include "bgr/serve/session.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "bgr/channel/channel_router.hpp"
#include "bgr/common/check.hpp"
#include "bgr/common/hash.hpp"
#include "bgr/common/stopwatch.hpp"
#include "bgr/io/design_io.hpp"
#include "bgr/io/io_error.hpp"
#include "bgr/io/route_io.hpp"
#include "bgr/metrics/report.hpp"
#include "bgr/obs/trace.hpp"
#include "bgr/serve/design_cache.hpp"
#include "bgr/verify/verifier.hpp"

namespace bgr::serve {

namespace {

/// Per-phase bookkeeping: publishes the phase, opens a Chrome-trace span
/// named "<phase>@<trace-id>" (category "job") so the job's spans
/// correlate with its NDJSON lifecycle events, and appends the phase's
/// wall time to result.phase_seconds for the rolling latency windows.
class PhaseScope {
 public:
  PhaseScope(std::atomic<SessionPhase>* slot, SessionPhase phase,
             const std::string& trace_id, SessionResult* result)
      : name_(session_phase_name(phase)),
        result_(result),
        span_(trace_id.empty() ? std::string(name_)
                               : std::string(name_) + "@" + trace_id,
              "job") {
    slot->store(phase, std::memory_order_relaxed);
  }
  ~PhaseScope() {
    result_->phase_seconds.emplace_back(name_, watch_.seconds());
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  const char* name_;
  SessionResult* result_;
  Stopwatch watch_;
  ScopedSpan span_;
};

std::string slurp_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError(path + ": cannot open design file");
  std::ostringstream os;
  os << is.rdbuf();
  if (is.bad()) throw IoError(path + ": read failed");
  return os.str();
}

/// Folds every value-driven field of the finished pipeline. Wall times
/// and exec activity are deliberately excluded: the digest must be equal
/// across thread counts, pool sharing and co-tenant load, which is
/// exactly what the N-jobs-on-one-pool tests assert.
std::string outcome_digest(const RouteOutcome& outcome,
                           double detailed_delay_ps, double area_mm2,
                           double total_length_um,
                           const std::string& route_text) {
  Fingerprint fp;
  fp.mix(outcome.critical_delay_ps);
  fp.mix(outcome.total_length_um);
  fp.mix(outcome.violated_constraints);
  fp.mix(outcome.worst_margin_ps);
  fp.mix(outcome.feed_cells_added);
  fp.mix(outcome.widen_pitches);
  for (const PhaseStats& ph : outcome.phases) {
    fp.mix(std::string_view(ph.name));
    fp.mix(ph.deletions);
    fp.mix(ph.reroutes);
    fp.mix(ph.worst_margin_ps);
    fp.mix(ph.critical_delay_ps);
    fp.mix(ph.sum_max_density);
    fp.mix(ph.sta_updates);
    fp.mix(ph.sta_dirty_vertices);
    fp.mix(ph.sta_relaxations);
    fp.mix(ph.path_searches);
    fp.mix(ph.path_pops);
    fp.mix(ph.path_relaxations);
  }
  fp.mix(detailed_delay_ps);
  fp.mix(area_mm2);
  fp.mix(total_length_um);
  fp.mix(static_cast<std::uint64_t>(route_text.size()));
  fp.mix(std::string_view(route_text));
  return fp.hex();
}

}  // namespace

const char* session_phase_name(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kIdle: return "idle";
    case SessionPhase::kParse: return "parse";
    case SessionPhase::kRoute: return "route";
    case SessionPhase::kChannel: return "channel";
    case SessionPhase::kVerify: return "verify";
    case SessionPhase::kReport: return "report";
    case SessionPhase::kFinished: return "finished";
  }
  return "?";
}

const char* session_status_name(SessionStatus status) {
  switch (status) {
    case SessionStatus::kDone: return "done";
    case SessionStatus::kCancelled: return "cancelled";
    case SessionStatus::kFailed: return "failed";
  }
  return "?";
}

std::uint64_t request_result_key(const JobRequest& request,
                                 std::uint64_t design_key) {
  const RouterOptions& opt = request.options;
  Fingerprint fp;
  fp.mix(design_key);
  fp.mix(static_cast<std::int32_t>(request.constrained));
  fp.mix(static_cast<std::int32_t>(opt.delay_model));
  fp.mix(static_cast<std::int32_t>(opt.use_net_budgets));
  fp.mix(static_cast<std::int32_t>(opt.concurrent_initial));
  fp.mix(static_cast<std::int32_t>(opt.enable_violation_recovery));
  fp.mix(static_cast<std::int32_t>(opt.enable_delay_improvement));
  fp.mix(static_cast<std::int32_t>(opt.enable_area_improvement));
  fp.mix(static_cast<std::int32_t>(opt.use_delay_criteria));
  fp.mix(static_cast<std::int32_t>(opt.use_density_criteria));
  fp.mix(opt.improvement_passes);
  fp.mix(static_cast<std::int32_t>(opt.incremental_sta));
  fp.mix(static_cast<std::int32_t>(opt.path_search));
  fp.mix(static_cast<std::int32_t>(opt.lookahead));
  fp.mix(static_cast<std::int32_t>(request.verify));
  fp.mix(static_cast<std::int32_t>(request.want_route_text));
  fp.mix(static_cast<std::int32_t>(request.want_report));
  return fp.value();
}

RoutingSession::RoutingSession(JobRequest request, DesignCache* cache,
                               ThreadPool* shared_pool)
    : request_(std::move(request)), cache_(cache), pool_(shared_pool) {}

RoutingSession::~RoutingSession() = default;

void RoutingSession::check_cancel(const char* where) const {
  if (cancel_requested()) {
    throw CancelledError(std::string("session cancelled before ") + where);
  }
}

SessionResult RoutingSession::run() {
  phase_.store(SessionPhase::kIdle, std::memory_order_relaxed);
  SessionResult result;
  try {
    result = run_pipeline();
  } catch (const CancelledError&) {
    result = SessionResult{};
    result.status = SessionStatus::kCancelled;
  } catch (const std::exception& e) {
    result = SessionResult{};
    result.status = SessionStatus::kFailed;
    result.error = e.what();
  }
  phase_.store(SessionPhase::kFinished, std::memory_order_relaxed);
  return result;
}

SessionResult RoutingSession::run_pipeline() {
  Stopwatch watch;
  SessionResult result;
  // One enclosing span per job; the per-phase spans nest inside it on the
  // runner thread, so the whole lifecycle reads as one block in the trace.
  ScopedSpan job_span(
      trace_id_.empty() ? std::string("job") : "job@" + trace_id_, "job");

  // -- Parse / fetch the design ------------------------------------------
  std::uint64_t design_key = 0;
  std::shared_ptr<const Dataset> base;
  std::unique_ptr<Dataset> local;
  bool dataset_hit = false;
  bool result_hit = false;
  {
    PhaseScope phase(&phase_, SessionPhase::kParse, trace_id_, &result);
    check_cancel("parse");
    if (!request_.preset.empty()) {
      design_key = DesignCache::preset_key(request_.preset);
      const std::uint64_t result_key =
          request_result_key(request_, design_key);
      if (cache_ != nullptr) {
        if (auto cached = cache_->find_result(result_key)) {
          result = *cached;
          result.cache = "result-hit";
          result_hit = true;
        } else {
          base = cache_->dataset_for_preset(request_.preset, &dataset_hit);
        }
      } else {
        base = std::make_shared<const Dataset>(make_dataset(request_.preset));
      }
    } else {
      std::string text = request_.design_text;
      std::string source = "request:" + request_.id;
      if (!request_.design_file.empty()) {
        text = slurp_file(request_.design_file);
        source = request_.design_file;
      }
      design_key = DesignCache::text_key(text);
      const std::uint64_t result_key =
          request_result_key(request_, design_key);
      if (cache_ != nullptr) {
        if (auto cached = cache_->find_result(result_key)) {
          result = *cached;
          result.cache = "result-hit";
          result_hit = true;
        } else {
          base = cache_->dataset_for_text(text, source, &dataset_hit);
        }
      } else {
        std::istringstream is(text);
        base = std::make_shared<const Dataset>(read_design(is, source));
      }
    }
    if (result_hit) {
      // The cached run's phase timings are not this job's; the PhaseScope
      // destructor appends this run's (cheap) parse lookup afterwards.
      result.phase_seconds.clear();
    } else {
      result.cache = dataset_hit ? "design-hit" : "miss";
      // The router consumes its inputs (feed cells are inserted into the
      // netlist), so every run works on a private copy of the shared
      // parsed dataset — this is what makes the session re-entrant and
      // the cache entry immutable.
      local = std::make_unique<Dataset>(*base);
    }
  }
  if (result_hit) return result;

  // -- Global routing ----------------------------------------------------
  std::unique_ptr<GlobalRouter> router;
  {
    PhaseScope phase(&phase_, SessionPhase::kRoute, trace_id_, &result);
    check_cancel("route");
    RouterOptions options = request_.options;
    options.use_constraints = request_.constrained;
    options.shared_pool = pool_;
    options.cancel_requested = [this] { return cancel_requested(); };
    if (options.lookahead == LookaheadMode::kMap &&
        (options.path_search == PathSearchBackend::kAstar ||
         options.path_search == PathSearchBackend::kSteiner) &&
        cache_ != nullptr) {
      // Chip geometry never changes mid-pipeline, so the lookahead table
      // is cached at the parsed-dataset level: a warm job skips the build
      // and shares the resident design's table.
      options.lookahead_table = cache_->lookahead_for(design_key, *base);
    }

    router = std::make_unique<GlobalRouter>(local->netlist,
                                            std::move(local->placement),
                                            local->tech, local->constraints,
                                            options);
    result.outcome = router->run();  // throws CancelledError on cancellation
  }

  // -- Channel stage (detailed lengths, area, final delay) ---------------
  std::unique_ptr<ChannelStage> channel;
  {
    PhaseScope phase(&phase_, SessionPhase::kChannel, trace_id_, &result);
    check_cancel("channel");
    channel = std::make_unique<ChannelStage>(*router);
    channel->run();
    result.detailed_delay_ps = channel->apply_and_critical_delay_ps(
        router->delay_graph(), request_.options.delay_model);
    result.area_mm2 = channel->chip_area_mm2();
    result.total_length_um = channel->total_detailed_length_um();
  }

  // -- Optional signoff --------------------------------------------------
  if (request_.verify) {
    PhaseScope phase(&phase_, SessionPhase::kVerify, trace_id_, &result);
    check_cancel("verify");
    const RouteVerifier verifier(*router, channel.get());
    result.verify_errors = 0;
    result.verify_warnings = 0;
    for (const VerifyIssue& issue : verifier.run()) {
      if (issue.severity == VerifyIssue::Severity::kError) {
        ++result.verify_errors;
      } else {
        ++result.verify_warnings;
      }
    }
  }

  // -- Result assembly ---------------------------------------------------
  {
    PhaseScope phase(&phase_, SessionPhase::kReport, trace_id_, &result);
    // The routed-result text always feeds the digest (it is the strongest
    // bit-identity witness: every tree edge and track assignment), whether
    // or not the client asked for the text itself.
    std::string route_text;
    {
      std::ostringstream os;
      write_route(os, *router, *channel);
      route_text = os.str();
    }
    result.digest =
        outcome_digest(result.outcome, result.detailed_delay_ps,
                       result.area_mm2, result.total_length_um, route_text);
    if (request_.want_route_text) result.route_text = std::move(route_text);

    if (request_.want_report) {
      RunReportInfo info;
      info.design = local->name;
      info.constrained = request_.constrained;
      info.detailed_delay_ps = result.detailed_delay_ps;
      info.wall_seconds = watch.seconds();
      result.report =
          make_run_report(*router, *channel, result.outcome, info).root();
    }
  }

  result.status = SessionStatus::kDone;
  if (cache_ != nullptr) {
    cache_->store_result(request_result_key(request_, design_key),
                         std::make_shared<const SessionResult>(result));
  }
  return result;
}

JsonValue result_to_json(const SessionResult& result) {
  JsonValue doc = JsonValue::object();
  doc.set("status", session_status_name(result.status));
  if (!result.error.empty()) doc.set("error", result.error);
  if (result.status != SessionStatus::kDone) return doc;
  doc.set("critical_delay_ps", result.outcome.critical_delay_ps);
  doc.set("detailed_delay_ps", result.detailed_delay_ps);
  doc.set("area_mm2", result.area_mm2);
  doc.set("length_um", result.total_length_um);
  doc.set("violated_constraints",
          static_cast<std::int64_t>(result.outcome.violated_constraints));
  doc.set("worst_margin_ps", result.outcome.worst_margin_ps);
  doc.set("feed_cells_added",
          static_cast<std::int64_t>(result.outcome.feed_cells_added));
  doc.set("digest", result.digest);
  doc.set("cache", result.cache);
  if (result.verify_errors >= 0) {
    doc.set("verify_errors", static_cast<std::int64_t>(result.verify_errors));
    doc.set("verify_warnings",
            static_cast<std::int64_t>(result.verify_warnings));
  }
  return doc;
}

}  // namespace bgr::serve

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bgr/obs/json.hpp"
#include "bgr/route/router.hpp"
#include "bgr/serve/protocol.hpp"

namespace bgr::serve {

class DesignCache;

/// Where a session currently is. Observable from other threads (the serve
/// status path); transitions happen only on the thread running run().
enum class SessionPhase {
  kIdle,
  kParse,
  kRoute,
  kChannel,
  kVerify,
  kReport,
  kFinished,
};

[[nodiscard]] const char* session_phase_name(SessionPhase phase);

enum class SessionStatus { kDone, kCancelled, kFailed };

[[nodiscard]] const char* session_status_name(SessionStatus status);

/// Self-contained result of one pipeline run. Everything a response needs
/// is copied in — the router, channel stage and parsed design are torn
/// down before run() returns, so memory per finished job is bounded by
/// the result text, not the design.
struct SessionResult {
  SessionStatus status = SessionStatus::kFailed;
  std::string error;  // kFailed: what went wrong
  RouteOutcome outcome;
  double detailed_delay_ps = 0.0;
  double area_mm2 = 0.0;
  double total_length_um = 0.0;
  /// -1 when the request did not ask for verification.
  std::int32_t verify_errors = -1;
  std::int32_t verify_warnings = -1;
  /// Routed result (`bgr-route 1` text); filled only when requested.
  std::string route_text;
  /// Bit-identity fingerprint of the semantic outcome: RouteOutcome
  /// fields, per-phase value-driven stats, detailed delay/area/length and
  /// the routed-result text, FNV-folded by bit pattern (common/hash.hpp).
  /// Equal digests ⇔ bit-identical outcomes; the co-tenancy tests and the
  /// serve smoke test compare jobs through it.
  std::string digest;
  /// Cache disposition: "miss", "design-hit" (parsed dataset reused,
  /// pipeline re-run) or "result-hit" (whole outcome reused).
  std::string cache = "miss";
  /// Full run report document (kind "bgr_route"); filled when requested.
  JsonValue report;
  /// Wall seconds spent in each pipeline phase of *this* run, in pipeline
  /// order ({"parse",s}, {"route",s}, ...). Operational telemetry only:
  /// excluded from the digest and from result_to_json, cleared on a
  /// result-cache hit (the cached run's timings are not this job's).
  std::vector<std::pair<std::string, double>> phase_seconds;
};

/// Re-entrant, cancellable pipeline: parse/fetch design → global routing
/// (graph build, deletion loop, improvement) → channel stage → optional
/// verification → report. This is the object form of what bgr_route's
/// main() used to do inline; it holds zero global state, so any number of
/// sessions may run concurrently — on private pools or on one shared
/// ThreadPool — and each produces the RouteOutcome it would produce alone
/// (DESIGN.md §12).
///
/// Unlike GlobalRouter::run() (single-shot), run() may be called again:
/// every call builds the whole pipeline afresh from the immutable request
/// and returns an independent SessionResult. cancel() may be called from
/// any thread at any time; the running pipeline stops at its next phase
/// boundary and run() returns a kCancelled result. A cancelled session
/// stays usable — clearing nothing but the flag would make re-running it
/// racy against a late cancel, so cancellation is sticky until reset().
class RoutingSession {
 public:
  /// `cache` (optional) serves parsed designs and whole results keyed by
  /// content hash; `shared_pool` (optional) makes the router's parallel
  /// regions run co-tenant on an externally owned pool. Both must outlive
  /// the session.
  RoutingSession(JobRequest request, DesignCache* cache,
                 ThreadPool* shared_pool);
  ~RoutingSession();

  RoutingSession(const RoutingSession&) = delete;
  RoutingSession& operator=(const RoutingSession&) = delete;

  /// Runs the pipeline; never throws (failures and cancellations come
  /// back as the result's status).
  [[nodiscard]] SessionResult run();

  /// Requests cancellation; thread-safe, idempotent. Takes effect at the
  /// next phase boundary of a running pipeline, or immediately at the
  /// start of the next run().
  void cancel() { cancel_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }
  /// Clears a sticky cancellation so the session can run again.
  void reset() { cancel_.store(false, std::memory_order_relaxed); }

  [[nodiscard]] SessionPhase phase() const {
    return phase_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const JobRequest& request() const { return request_; }

  /// Trace id minted at admission (scheduler) and threaded through every
  /// phase span and NDJSON event of this job. Set once before the session
  /// becomes visible to any other thread (it is read concurrently by the
  /// watchdog); empty for sessions driven outside a scheduler.
  void set_trace_id(std::string trace_id) { trace_id_ = std::move(trace_id); }
  [[nodiscard]] const std::string& trace_id() const { return trace_id_; }

 private:
  [[nodiscard]] SessionResult run_pipeline();
  void check_cancel(const char* where) const;

  JobRequest request_;
  DesignCache* cache_;
  ThreadPool* pool_;
  std::string trace_id_;
  std::atomic<bool> cancel_{false};
  std::atomic<SessionPhase> phase_{SessionPhase::kIdle};
};

/// Canonical fingerprint key of a job request: design content key plus
/// every outcome-affecting option. Two requests with equal keys must
/// produce bit-identical results, which is what lets DesignCache reuse a
/// finished SessionResult for an exact re-submission.
[[nodiscard]] std::uint64_t request_result_key(const JobRequest& request,
                                               std::uint64_t design_key);

/// Response payload for a finished job (the "result" object of a done
/// event): headline numbers, digest, cache disposition, verify counts.
[[nodiscard]] JsonValue result_to_json(const SessionResult& result);

}  // namespace bgr::serve

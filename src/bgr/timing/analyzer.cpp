#include "bgr/timing/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bgr/common/natural_order.hpp"
#include "bgr/exec/parallel.hpp"
#include "bgr/obs/metrics.hpp"
#include "bgr/obs/trace.hpp"

namespace bgr {

namespace {

/// STA work totals. Like StaStats, every add happens outside parallel
/// regions (update_all accounts for the whole sweep up front; propagate
/// results are consumed on the calling thread), so the totals are a pure
/// function of the design and options — semantic.
struct StaMetrics {
  Counter& full_sweeps = MetricsRegistry::global().counter(
      "sta.full_sweeps", MetricScope::kSemantic);
  Counter& full_vertices = MetricsRegistry::global().counter(
      "sta.full_vertices", MetricScope::kSemantic);
  Counter& incremental_updates = MetricsRegistry::global().counter(
      "sta.incremental_updates", MetricScope::kSemantic);
  Counter& dirty_seeds = MetricsRegistry::global().counter(
      "sta.dirty_seeds", MetricScope::kSemantic);
  Counter& dirty_vertices = MetricsRegistry::global().counter(
      "sta.dirty_vertices", MetricScope::kSemantic);
  Histogram& dirty_cone = MetricsRegistry::global().histogram(
      "sta.dirty_cone_size", MetricScope::kSemantic);
};

StaMetrics& sta_metrics() {
  static StaMetrics* const m = new StaMetrics();
  return *m;
}

}  // namespace

double penalty(double margin_ps, double limit_ps) {
  BGR_CHECK(limit_ps > 0.0);
  if (margin_ps >= 0.0) return 1.0 - margin_ps / limit_ps;
  return std::exp(-margin_ps / limit_ps);
}

TimingAnalyzer::TimingAnalyzer(DelayGraph& delay_graph,
                               std::vector<PathConstraint> constraints,
                               ExecContext* exec, bool incremental)
    : delay_graph_(&delay_graph),
      exec_(exec),
      incremental_(incremental),
      constraints_(std::move(constraints)) {
  const Netlist& netlist = delay_graph_->netlist();
  const Dag& dag = delay_graph_->dag();
  states_.resize(constraints_.size());
  margins_.assign(constraints_.size(), 0.0);
  versions_.assign(constraints_.size(), 0);
  constraints_of_net_.assign(static_cast<std::size_t>(netlist.net_count()), {});
  nets_of_constraint_.resize(constraints_.size());

  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    const PathConstraint& pc = constraints_[i];
    BGR_CHECK_MSG(pc.limit_ps > 0.0, "constraint " << pc.name << " limit <= 0");
    BGR_CHECK(!pc.sources.empty() && !pc.sinks.empty());
    ConstraintState& st = states_[i];
    for (const TerminalId t : pc.sources) {
      st.source_vertices.push_back(delay_graph_->vertex_of(t));
    }
    for (const TerminalId t : pc.sinks) {
      st.sink_vertices.push_back(delay_graph_->vertex_of(t));
    }
    st.mask = dag.between(st.source_vertices, st.sink_vertices);

    const ConstraintId cid{static_cast<std::int32_t>(i)};
    for (const NetId n : netlist.nets()) {
      bool member = false;
      for (const auto arc : delay_graph_->net_arcs(n)) {
        const Dag::Edge& e = dag.edge(arc);
        if (st.mask[static_cast<std::size_t>(e.from)] &&
            st.mask[static_cast<std::size_t>(e.to)]) {
          member = true;
          st.net_arc_ids.push_back(arc);
        }
      }
      if (member) {
        constraints_of_net_[n].push_back(cid);
        nets_of_constraint_[i].push_back(n);
      }
    }
    st.is_source.assign(static_cast<std::size_t>(dag.vertex_count()), 0);
    for (const auto v : st.source_vertices) {
      if (st.mask[static_cast<std::size_t>(v)]) {
        st.is_source[static_cast<std::size_t>(v)] = 1;
      }
    }
    st.mask_size = static_cast<std::int64_t>(
        std::count(st.mask.begin(), st.mask.end(), true));
  }
  if (incremental_ && !constraints_.empty()) {
    propagator_ = std::make_unique<DirtyPropagator>(dag);
  }
  update_all();
}

void TimingAnalyzer::refresh_margin(ConstraintId p) {
  const ConstraintState& st = states_[p.index()];
  double critical = 0.0;
  for (const auto v : st.sink_vertices) {
    const double d = st.lp[static_cast<std::size_t>(v)];
    if (d != Dag::kMinusInf) critical = std::max(critical, d);
  }
  margins_[p.index()] = constraints_[p.index()].limit_ps - critical;
}

void TimingAnalyzer::recompute(ConstraintId p, ExecContext* inner_exec) {
  ConstraintState& st = states_[p.index()];
  st.lp =
      delay_graph_->dag().longest_from(st.source_vertices, st.mask, inner_exec);
  refresh_margin(p);
  ++versions_[p.index()];
}

void TimingAnalyzer::update_for_net(NetId net) {
  const auto& members = constraints_of_net_[net];
  if (members.empty()) return;
  if (!incremental_) {
    // Usually one or two constraints: levelize within the sweep rather
    // than fanning out across constraints.
    for (const ConstraintId p : members) {
      recompute(p, exec_);
      ++stats_.full_sweeps;
      stats_.full_vertices += states_[p.index()].mask_size;
      sta_metrics().full_sweeps.add(1);
      sta_metrics().full_vertices.add(states_[p.index()].mask_size);
    }
    return;
  }
  // Dirty-cone propagation: only the heads of the net's wiring arcs (the
  // vertices whose pull reads the changed weights) seed the re-relaxation.
  const Dag& dag = delay_graph_->dag();
  seed_scratch_.clear();
  for (const auto arc : delay_graph_->net_arcs(net)) {
    seed_scratch_.push_back(dag.edge(arc).to);
  }
  for (const ConstraintId p : members) {
    ConstraintState& st = states_[p.index()];
    const DirtyPropagator::Result res = propagator_->propagate(
        seed_scratch_, st.mask, st.is_source, st.lp, exec_);
    ++stats_.incremental_updates;
    stats_.dirty_seeds += res.seeds;
    stats_.dirty_vertices += res.relaxed;
    sta_metrics().incremental_updates.add(1);
    sta_metrics().dirty_seeds.add(res.seeds);
    sta_metrics().dirty_vertices.add(res.relaxed);
    sta_metrics().dirty_cone.record(res.relaxed);
    if (res.any_change) {
      // Margin and downstream scores depend only on lp — untouched values
      // mean the constraint (and its score-cache version) stays put.
      refresh_margin(p);
      ++versions_[p.index()];
    }
  }
}

TimingAnalyzer::UpdateSlot::UpdateSlot(const TimingAnalyzer& analyzer) {
  if (analyzer.incremental_ && !analyzer.constraints_.empty()) {
    propagator_ = std::make_unique<DirtyPropagator>(analyzer.delay_graph_->dag());
  }
}

void TimingAnalyzer::update_for_net(NetId net, UpdateSlot& slot) {
  const auto& members = constraints_of_net_[net];
  if (members.empty()) return;
  if (!incremental_) {
    for (const ConstraintId p : members) {
      recompute(p, /*inner_exec=*/nullptr);
      ++slot.stats_.full_sweeps;
      slot.stats_.full_vertices += states_[p.index()].mask_size;
      sta_metrics().full_sweeps.add(1);
      sta_metrics().full_vertices.add(states_[p.index()].mask_size);
    }
    return;
  }
  const Dag& dag = delay_graph_->dag();
  slot.seeds_.clear();
  for (const auto arc : delay_graph_->net_arcs(net)) {
    slot.seeds_.push_back(dag.edge(arc).to);
  }
  for (const ConstraintId p : members) {
    ConstraintState& st = states_[p.index()];
    const DirtyPropagator::Result res = slot.propagator_->propagate(
        slot.seeds_, st.mask, st.is_source, st.lp, /*exec=*/nullptr);
    ++slot.stats_.incremental_updates;
    slot.stats_.dirty_seeds += res.seeds;
    slot.stats_.dirty_vertices += res.relaxed;
    sta_metrics().incremental_updates.add(1);
    sta_metrics().dirty_seeds.add(res.seeds);
    sta_metrics().dirty_vertices.add(res.relaxed);
    sta_metrics().dirty_cone.record(res.relaxed);
    if (res.any_change) {
      refresh_margin(p);
      ++versions_[p.index()];
    }
  }
}

void TimingAnalyzer::absorb(UpdateSlot& slot) {
  stats_.incremental_updates += slot.stats_.incremental_updates;
  stats_.full_sweeps += slot.stats_.full_sweeps;
  stats_.dirty_seeds += slot.stats_.dirty_seeds;
  stats_.dirty_vertices += slot.stats_.dirty_vertices;
  stats_.full_vertices += slot.stats_.full_vertices;
  slot.stats_ = StaStats{};
}

void TimingAnalyzer::update_all() {
  ScopedSpan span("sta_update_all", "sta");
  const auto n = static_cast<std::int64_t>(constraints_.size());
  stats_.full_sweeps += n;
  sta_metrics().full_sweeps.add(n);
  for (const ConstraintState& st : states_) {
    stats_.full_vertices += st.mask_size;
    sta_metrics().full_vertices.add(st.mask_size);
  }
  if (exec_ != nullptr && !exec_->serial() && n > 1) {
    // One chunk per constraint; each recompute writes only its own state
    // and margin slot. Sweeps stay serial inside to avoid nested regions.
    parallel_for(
        *exec_, n,
        [&](std::int64_t i) {
          recompute(ConstraintId{static_cast<std::int32_t>(i)}, nullptr);
        },
        /*grain=*/1);
    return;
  }
  for (const ConstraintId p : constraints()) recompute(p, exec_);
}

double TimingAnalyzer::worst_margin_ps() const {
  double worst = std::numeric_limits<double>::infinity();
  for (const double m : margins_) worst = std::min(worst, m);
  return worst;
}

std::vector<ConstraintId> TimingAnalyzer::violated() const {
  std::vector<ConstraintId> out;
  for (const ConstraintId p : constraints()) {
    if (margins_[p.index()] < 0.0) out.push_back(p);
  }
  return out;
}

double TimingAnalyzer::local_margin_ps(ConstraintId p, NetId net,
                                       double new_arc_delay_ps) const {
  const ConstraintState& st = states_[p.index()];
  const Dag& dag = delay_graph_->dag();
  double worst_increase = 0.0;
  for (const auto arc : delay_graph_->net_arcs(net)) {
    const Dag::Edge& e = dag.edge(arc);
    if (!st.mask[static_cast<std::size_t>(e.from)] ||
        !st.mask[static_cast<std::size_t>(e.to)]) {
      continue;
    }
    const double lp_v = st.lp[static_cast<std::size_t>(e.from)];
    const double lp_w = st.lp[static_cast<std::size_t>(e.to)];
    if (lp_v == Dag::kMinusInf || lp_w == Dag::kMinusInf) continue;
    worst_increase =
        std::max(worst_increase, std::max(0.0, lp_v + new_arc_delay_ps - lp_w));
  }
  return margins_[p.index()] - worst_increase;
}

DelayCriteria TimingAnalyzer::evaluate(NetId net, double new_cap_pf) const {
  return evaluate_arc_delay(
      net, delay_graph_->net_arc_delay_for_cap(net, new_cap_pf));
}

DelayCriteria TimingAnalyzer::evaluate_arc_delay(NetId net,
                                                 double new_arc_delay_ps) const {
  DelayCriteria out;
  const auto& members = constraints_of_net_[net];
  if (members.empty()) return out;
  const double d_new = new_arc_delay_ps;
  const double d_cur = delay_graph_->net_arc_delay(net);
  const Dag& dag = delay_graph_->dag();
  for (const ConstraintId p : members) {
    const double limit = constraints_[p.index()].limit_ps;
    const double lm = local_margin_ps(p, net, d_new);
    if (lm <= 0.0) ++out.critical_count;
    out.global_delay += penalty(lm, limit) - penalty(margins_[p.index()], limit);
    // LD(e): total arc-delay change inside G_d(P).
    const ConstraintState& st = states_[p.index()];
    for (const auto arc : delay_graph_->net_arcs(net)) {
      const Dag::Edge& e = dag.edge(arc);
      if (st.mask[static_cast<std::size_t>(e.from)] &&
          st.mask[static_cast<std::size_t>(e.to)]) {
        out.local_delay += d_new - d_cur;
      }
    }
  }
  return out;
}

std::vector<NetId> TimingAnalyzer::critical_path_nets(ConstraintId p) const {
  constexpr double kEps = 1e-6;
  const ConstraintState& st = states_[p.index()];
  const Dag& dag = delay_graph_->dag();
  const double critical = critical_delay_ps(p);
  // ls(v): longest distance to any sink inside the mask.
  const auto ls = dag.longest_to(st.sink_vertices, st.mask, exec_);
  std::vector<NetId> out;
  for (const auto arc : st.net_arc_ids) {
    const Dag::Edge& e = dag.edge(arc);
    const double lp_v = st.lp[static_cast<std::size_t>(e.from)];
    const double ls_w = ls[static_cast<std::size_t>(e.to)];
    if (lp_v == Dag::kMinusInf || ls_w == Dag::kMinusInf) continue;
    if (lp_v + e.weight + ls_w >= critical - kEps) {
      const NetId net{e.label};
      if (std::find(out.begin(), out.end(), net) == out.end()) {
        out.push_back(net);
      }
    }
  }
  // The arc scan above walks nets in id order; reroute passes consume this
  // list in sequence, so sort it by the same relabeling-invariant key the
  // assignment sweep uses (natural_order.hpp) to keep routed results
  // independent of net numbering.
  std::stable_sort(out.begin(), out.end(), [&](NetId a, NetId b) {
    return processing_order_less(delay_graph_->netlist().net(a).name,
                                 delay_graph_->netlist().net(b).name);
  });
  return out;
}

IdVector<NetId, double> TimingAnalyzer::net_slacks() const {
  const Netlist& netlist = delay_graph_->netlist();
  const Dag& dag = delay_graph_->dag();
  IdVector<NetId, double> slacks(static_cast<std::size_t>(netlist.net_count()),
                                 std::numeric_limits<double>::infinity());
  for (const ConstraintId p : constraints()) {
    const ConstraintState& st = states_[p.index()];
    const double limit = constraints_[p.index()].limit_ps;
    const auto ls = dag.longest_to(st.sink_vertices, st.mask, exec_);
    for (const auto arc : st.net_arc_ids) {
      const Dag::Edge& e = dag.edge(arc);
      const double lp_v = st.lp[static_cast<std::size_t>(e.from)];
      const double ls_w = ls[static_cast<std::size_t>(e.to)];
      if (lp_v == Dag::kMinusInf || ls_w == Dag::kMinusInf) continue;
      const NetId net{e.label};
      slacks[net] = std::min(slacks[net], limit - (lp_v + e.weight + ls_w));
    }
  }
  return slacks;
}

}  // namespace bgr

#pragma once

#include <string>
#include <vector>

#include <memory>

#include "bgr/common/ids.hpp"
#include "bgr/exec/exec_context.hpp"
#include "bgr/timing/delay_graph.hpp"
#include "bgr/timing/incremental.hpp"

namespace bgr {

/// Critical path constraint P = (S_P, T_P, δ_P) of §2.2.
struct PathConstraint {
  std::string name;
  std::vector<TerminalId> sources;  // S_P
  std::vector<TerminalId> sinks;    // T_P
  double limit_ps = 0.0;            // δ_P
};

/// Penalty function of Eq. (4): pen(x, P) = 1 − x/δ for x ≥ 0,
/// exp(−x/δ) for x < 0.
[[nodiscard]] double penalty(double margin_ps, double limit_ps);

/// Delay-criteria triple of §3.2 for one candidate edge deletion.
struct DelayCriteria {
  std::int32_t critical_count = 0;  // C_d(e)
  double global_delay = 0.0;        // Gl(e)
  double local_delay = 0.0;         // LD(e)
};

/// Static timing over the delay constraint graphs G_d(P). Keeps, per
/// constraint, the subset mask of G_D, the longest-path prefix values
/// lp(v), the critical delay and the margin M(P); exposes the evaluations
/// the router's edge-selection heuristics need.
class TimingAnalyzer {
 public:
  /// `exec` (optional, not owned) parallelizes update_all across
  /// constraints and the longest-path sweeps within topological levels;
  /// results are bit-identical to the serial analyzer for any thread
  /// count. Must outlive the analyzer when given.
  ///
  /// `incremental` switches update_for_net from full per-constraint
  /// re-sweeps to dirty-cone propagation (DirtyPropagator): only the
  /// fanout of the changed net's wiring arcs is re-relaxed, and margins
  /// are refreshed from the cached lp values. Arrival times, margins and
  /// slacks are bit-identical to the full sweeps in either mode.
  TimingAnalyzer(DelayGraph& delay_graph,
                 std::vector<PathConstraint> constraints,
                 ExecContext* exec = nullptr, bool incremental = false);

  [[nodiscard]] DelayGraph& delay_graph() { return *delay_graph_; }
  [[nodiscard]] const DelayGraph& delay_graph() const { return *delay_graph_; }
  [[nodiscard]] std::int32_t constraint_count() const {
    return static_cast<std::int32_t>(constraints_.size());
  }
  [[nodiscard]] const PathConstraint& constraint(ConstraintId p) const {
    return constraints_.at(p.index());
  }
  [[nodiscard]] IdRange<ConstraintId> constraints() const {
    return IdRange<ConstraintId>(constraints_.size());
  }

  /// Constraints whose G_d(P) contains wiring arcs of this net — the set
  /// P(e) for every edge e of the net's routing graph.
  [[nodiscard]] const std::vector<ConstraintId>& constraints_of_net(
      NetId net) const {
    return constraints_of_net_.at(net);
  }
  /// Nets with at least one wiring arc inside G_d(P).
  [[nodiscard]] const std::vector<NetId>& nets_of_constraint(
      ConstraintId p) const {
    return nets_of_constraint_.at(p.index());
  }

  /// Recomputes lp / critical delay / margin for every constraint touched
  /// by this net (to be called after DelayGraph::set_net_cap).
  void update_for_net(NetId net);

  /// Scratch for one concurrent caller of the slot variant of
  /// update_for_net: a private dirty-cone propagator, seed buffer and
  /// StaStats accumulator. The sharded deletion loop gives every worker
  /// its own slot; the workers' nets touch disjoint constraint sets by
  /// construction, so the shared per-constraint arrays (lp, margins,
  /// versions) are written without overlap.
  class UpdateSlot {
   public:
    explicit UpdateSlot(const TimingAnalyzer& analyzer);

   private:
    friend class TimingAnalyzer;
    std::unique_ptr<DirtyPropagator> propagator_;  // incremental mode only
    std::vector<std::int32_t> seeds_;
    StaStats stats_;
  };

  /// Concurrent-caller variant of update_for_net: identical values and
  /// version bumps, but every piece of mutable scratch lives in `slot` and
  /// the sweeps stay strictly serial (no nested parallel regions).
  /// Concurrent callers must touch disjoint constraint sets; fold the
  /// slot's counters into sta_stats() with absorb() after joining.
  void update_for_net(NetId net, UpdateSlot& slot);

  /// Adds a slot's accumulated counters into sta_stats() and zeroes them.
  void absorb(UpdateSlot& slot);

  /// Full recompute of all constraints.
  void update_all();

  [[nodiscard]] double margin_ps(ConstraintId p) const {
    return margins_.at(p.index());
  }
  /// Cached arrival times lp(v) of the constraint subgraph G_d(P)
  /// (kMinusInf outside the mask / unreachable). Exposed for the
  /// differential cross-checks of the incremental engine.
  [[nodiscard]] const std::vector<double>& longest_prefix(ConstraintId p) const {
    return states_.at(p.index()).lp;
  }
  [[nodiscard]] bool incremental() const { return incremental_; }
  [[nodiscard]] const StaStats& sta_stats() const { return stats_; }
  /// Monotone per-constraint change counter: bumped whenever the
  /// constraint's lp values or margin may have changed. Score caches key
  /// their timing staleness off the versions of the constraints their net
  /// belongs to — the dirty-net set — instead of one global stamp.
  [[nodiscard]] std::uint64_t version(ConstraintId p) const {
    return versions_.at(p.index());
  }
  [[nodiscard]] double critical_delay_ps(ConstraintId p) const {
    return constraints_.at(p.index()).limit_ps - margins_.at(p.index());
  }
  /// Worst (most negative) margin over all constraints; +inf if none.
  [[nodiscard]] double worst_margin_ps() const;
  [[nodiscard]] std::vector<ConstraintId> violated() const;

  /// Local margin LM(e, P) of Eq. (2) given the wiring-arc delay d′ the
  /// net would have after the deletion.
  [[nodiscard]] double local_margin_ps(ConstraintId p, NetId net,
                                       double new_arc_delay_ps) const;

  /// Aggregates C_d, Gl and LD of §3.2 for deleting an edge of `net`,
  /// given the net capacitance CL′ the tentative tree would have after the
  /// deletion (lumped model).
  [[nodiscard]] DelayCriteria evaluate(NetId net, double new_cap_pf) const;

  /// Same aggregation given the worst wiring-arc delay d′ directly (used
  /// by the RC delay-model extension, where d′ includes the per-sink
  /// Elmore term).
  [[nodiscard]] DelayCriteria evaluate_arc_delay(NetId net,
                                                 double new_arc_delay_ps) const;

  /// Nets whose wiring arcs lie on the critical (longest) path of P.
  [[nodiscard]] std::vector<NetId> critical_path_nets(ConstraintId p) const;

  /// Per-net static slack with the *current* capacitances: the minimum
  /// over constraints and arcs of δ_P − (lp(v) + d + ls(w)). Nets outside
  /// every constraint get +inf. Used for the slack-ascending net ordering
  /// of the feedthrough assignment (§3.1).
  [[nodiscard]] IdVector<NetId, double> net_slacks() const;

 private:
  struct ConstraintState {
    std::vector<std::int32_t> source_vertices;
    std::vector<std::int32_t> sink_vertices;
    std::vector<bool> mask;       // G_d(P) support in G_D
    std::vector<double> lp;       // longest from sources within mask
    std::vector<std::int32_t> net_arc_ids;  // dag edges of member nets in mask
    std::vector<char> is_source;  // in-mask source flags (propagator input)
    std::int64_t mask_size = 0;   // vertices of G_d(P), for sweep accounting
  };

  /// `inner_exec` levelizes the longest-path sweep; pass nullptr when the
  /// caller already parallelizes across constraints (no nested regions).
  void recompute(ConstraintId p, ExecContext* inner_exec);

  /// Refreshes margins_[p] from the cached lp values of the constraint.
  void refresh_margin(ConstraintId p);

  DelayGraph* delay_graph_;
  ExecContext* exec_ = nullptr;  // not owned; nullptr → serial
  bool incremental_ = false;
  std::vector<PathConstraint> constraints_;
  std::vector<ConstraintState> states_;
  std::vector<double> margins_;
  std::vector<std::uint64_t> versions_;
  std::unique_ptr<DirtyPropagator> propagator_;  // incremental mode only
  std::vector<std::int32_t> seed_scratch_;
  StaStats stats_;
  IdVector<NetId, std::vector<ConstraintId>> constraints_of_net_;
  std::vector<std::vector<NetId>> nets_of_constraint_;
};

}  // namespace bgr

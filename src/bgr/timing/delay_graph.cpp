#include "bgr/timing/delay_graph.hpp"

#include <algorithm>

namespace bgr {

DelayGraph::DelayGraph(const Netlist& netlist) : netlist_(netlist) {
  const auto n_terms = static_cast<std::size_t>(netlist.terminal_count());
  vertex_of_terminal_.assign(n_terms, -1);
  terminal_of_vertex_.reserve(n_terms);
  for (const TerminalId t : netlist.terminals()) {
    const auto v = dag_.add_vertex();
    vertex_of_terminal_[t] = v;
    terminal_of_vertex_.push_back(t);
  }

  // Intrinsic arcs T0(ti, to) inside every cell.
  // Terminal lookup per (cell, pin): nets reference terminals, so collect
  // the inverse map first.
  std::vector<std::vector<TerminalId>> cell_terms(
      static_cast<std::size_t>(netlist.cell_count()));
  for (const TerminalId t : netlist.terminals()) {
    const Terminal& term = netlist.terminal(t);
    if (term.kind == TerminalKind::kCellPin) {
      cell_terms[term.cell.index()].push_back(t);
    }
  }
  for (const CellId c : netlist.cells()) {
    const CellType& type = netlist.cell_type(c);
    auto term_of_pin = [&](PinId pin) {
      for (const TerminalId t : cell_terms[c.index()]) {
        if (netlist.terminal(t).pin == pin) return t;
      }
      return TerminalId::invalid();
    };
    for (const DelayArc& arc : type.arcs()) {
      const TerminalId from = term_of_pin(arc.from);
      const TerminalId to = term_of_pin(arc.to);
      if (!from.valid() || !to.valid()) continue;  // unconnected pin
      (void)dag_.add_edge(vertex_of(from), vertex_of(to), arc.t0_ps);
    }
  }

  // Wiring arcs per net: driver → each sink, except clock pins (the clock
  // network is not part of data paths).
  net_arcs_.assign(static_cast<std::size_t>(netlist.net_count()), {});
  net_base_delay_ps_.assign(static_cast<std::size_t>(netlist.net_count()), 0.0);
  net_td_ps_per_pf_.assign(static_cast<std::size_t>(netlist.net_count()), 0.0);
  net_cap_pf_.assign(static_cast<std::size_t>(netlist.net_count()), 0.0);
  net_worst_extra_ps_.assign(static_cast<std::size_t>(netlist.net_count()), 0.0);
  for (const NetId n : netlist.nets()) {
    const Net& net = netlist.net(n);
    const auto factors = netlist.net_driver_factors(n);
    net_base_delay_ps_[n] = netlist.net_fanin_cap_pf(n) * factors.tf_ps_per_pf;
    net_td_ps_per_pf_[n] = factors.td_ps_per_pf;
    const auto driver_v = vertex_of(net.driver);
    for (const TerminalId sink : net.sinks) {
      const Terminal& term = netlist.terminal(sink);
      if (term.kind == TerminalKind::kCellPin &&
          netlist.cell_type(term.cell).pin(term.pin).dir == PinDir::kClock) {
        continue;
      }
      const auto e = dag_.add_edge(driver_v, vertex_of(sink),
                                   net_base_delay_ps_[n], n.value());
      net_arcs_[n].push_back(e);
    }
  }

  dag_.freeze();

  // Start/end points.
  for (const TerminalId t : netlist.terminals()) {
    const Terminal& term = netlist.terminal(t);
    switch (term.kind) {
      case TerminalKind::kPadIn:
        sources_.push_back(vertex_of(t));
        break;
      case TerminalKind::kPadOut:
        sinks_.push_back(vertex_of(t));
        break;
      case TerminalKind::kCellPin: {
        const CellType& type = netlist.cell_type(term.cell);
        if (!type.is_register()) break;
        const PinSpec& pin = type.pin(term.pin);
        if (pin.dir == PinDir::kClock) {
          sources_.push_back(vertex_of(t));
        } else if (pin.dir == PinDir::kInput) {
          sinks_.push_back(vertex_of(t));
        }
        break;
      }
    }
  }
}

void DelayGraph::set_net_cap(NetId net, double cap_pf) {
  net_cap_pf_[net] = cap_pf;
  net_worst_extra_ps_[net] = 0.0;
  const double d = net_arc_delay_for_cap(net, cap_pf);
  for (const auto e : net_arcs_[net]) {
    dag_.set_edge_weight(e, d);
  }
}

void DelayGraph::set_net_rc(NetId net, double cap_pf,
                            const std::vector<std::pair<TerminalId, double>>&
                                sink_wire_ps) {
  net_cap_pf_[net] = cap_pf;
  const double base = net_arc_delay_for_cap(net, cap_pf);
  double worst = 0.0;
  for (const auto e : net_arcs_[net]) {
    const TerminalId sink = terminal_of(dag_.edge(e).to);
    double extra = 0.0;
    for (const auto& [term, ps] : sink_wire_ps) {
      if (term == sink) {
        extra = ps;
        break;
      }
    }
    worst = std::max(worst, extra);
    dag_.set_edge_weight(e, base + extra);
  }
  net_worst_extra_ps_[net] = worst;
}

double DelayGraph::net_arc_delay(NetId net) const {
  return net_arc_delay_for_cap(net, net_cap_pf_[net]) +
         net_worst_extra_ps_[net];
}

double DelayGraph::net_arc_delay_for_cap(NetId net, double cap_pf) const {
  return net_base_delay_ps_[net] + cap_pf * net_td_ps_per_pf_[net];
}

double DelayGraph::critical_delay_ps() const {
  const auto lp = dag_.longest_from(sources_);
  double worst = 0.0;
  for (const auto v : sinks_) {
    const double d = lp[static_cast<std::size_t>(v)];
    if (d != Dag::kMinusInf) worst = std::max(worst, d);
  }
  return worst;
}

}  // namespace bgr

#pragma once

#include <vector>

#include "bgr/common/ids.hpp"
#include "bgr/graph/dag.hpp"
#include "bgr/netlist/netlist.hpp"

namespace bgr {

/// The simplified global delay graph G_D of the paper (Fig. 1, thick
/// lines): one vertex per circuit terminal, intrinsic-delay arcs inside
/// cells and wiring arcs along nets.
///
/// Per Eq. (1), every wiring arc of net n (driver terminal → sink terminal)
/// carries the same lumped weight
///   d(n) = (Σ_t∈F Fin(t)) · Tf(to) + CL(n) · Td(to),
/// where CL(n) is the current wiring-capacitance estimate, updated by the
/// router as tentative trees change.
///
/// Registers launch at their clock pin (arc CK→Q with weight T0) and
/// terminate at their data pins; wiring arcs into clock pins are omitted so
/// data paths do not traverse the clock distribution network (clock skew is
/// outside this delay model).
class DelayGraph {
 public:
  DelayGraph(const Netlist& netlist);

  [[nodiscard]] const Netlist& netlist() const { return netlist_; }
  [[nodiscard]] const Dag& dag() const { return dag_; }

  [[nodiscard]] std::int32_t vertex_of(TerminalId t) const {
    return vertex_of_terminal_.at(t);
  }
  [[nodiscard]] TerminalId terminal_of(std::int32_t v) const {
    return terminal_of_vertex_.at(static_cast<std::size_t>(v));
  }

  /// Updates CL(n) [pF] and the weights of all wiring arcs of net n
  /// (lumped-capacitance model of Eq. (1): all sinks share one weight).
  void set_net_cap(NetId net, double cap_pf);

  /// RC (Elmore) extension of §2.1: the lumped Eq. (1) weight plus a
  /// per-sink distributed-wire term. Sinks absent from `sink_wire_ps`
  /// (e.g. clock pins) keep the lumped weight.
  void set_net_rc(NetId net, double cap_pf,
                  const std::vector<std::pair<TerminalId, double>>&
                      sink_wire_ps);

  [[nodiscard]] double net_cap(NetId net) const { return net_cap_pf_.at(net); }
  /// Current worst wiring-arc weight of the net [ps] (in the lumped model
  /// every arc carries this weight).
  [[nodiscard]] double net_arc_delay(NetId net) const;
  /// Lumped wiring-arc weight for an arbitrary capacitance (used for
  /// LM(e, P) candidate evaluation).
  [[nodiscard]] double net_arc_delay_for_cap(NetId net, double cap_pf) const;

  /// Dag edge ids of net n's wiring arcs (driver → each non-clock sink).
  [[nodiscard]] const std::vector<std::int32_t>& net_arcs(NetId net) const {
    return net_arcs_.at(net);
  }

  /// Timing start points: input pads and register clock pins.
  [[nodiscard]] const std::vector<std::int32_t>& sources() const {
    return sources_;
  }
  /// Timing end points: output pads and register data pins.
  [[nodiscard]] const std::vector<std::int32_t>& sinks() const { return sinks_; }

  /// Longest source→sink delay under current net capacitances — the
  /// chip-level critical path delay reported in Table 2.
  [[nodiscard]] double critical_delay_ps() const;

 private:
  const Netlist& netlist_;
  Dag dag_;
  IdVector<TerminalId, std::int32_t> vertex_of_terminal_;
  std::vector<TerminalId> terminal_of_vertex_;
  IdVector<NetId, std::vector<std::int32_t>> net_arcs_;
  IdVector<NetId, double> net_base_delay_ps_;  // (Σ Fin) · Tf
  IdVector<NetId, double> net_td_ps_per_pf_;   // Td of the driver
  IdVector<NetId, double> net_cap_pf_;
  IdVector<NetId, double> net_worst_extra_ps_;  // max per-sink RC term
  std::vector<std::int32_t> sources_;
  std::vector<std::int32_t> sinks_;
};

}  // namespace bgr

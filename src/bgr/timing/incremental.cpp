#include "bgr/timing/incremental.hpp"

#include <algorithm>

#include "bgr/exec/parallel.hpp"

namespace bgr {

namespace {

/// Dirty vertices per level below which the re-pull stays inline — same
/// rationale (and roughly the same value) as the levelized full sweep.
constexpr std::int64_t kParallelDirtyMin = 256;

}  // namespace

DirtyPropagator::DirtyPropagator(const Dag& dag) : dag_(&dag) {
  BGR_CHECK(dag.frozen());
  dirty_.assign(static_cast<std::size_t>(dag.vertex_count()), 0);
  pending_.resize(static_cast<std::size_t>(dag.level_count()));
}

DirtyPropagator::Result DirtyPropagator::propagate(
    const std::vector<std::int32_t>& seed_vertices,
    const std::vector<bool>& mask, const std::vector<char>& is_source,
    std::vector<double>& lp, ExecContext* exec) {
  Result result;
  const Dag& dag = *dag_;
  std::int32_t min_level = dag.level_count();
  std::int32_t max_level = -1;
  auto mark = [&](std::int32_t v) {
    if (dirty_[static_cast<std::size_t>(v)]) return;
    dirty_[static_cast<std::size_t>(v)] = 1;
    const std::int32_t l = dag.level_of(v);
    pending_[static_cast<std::size_t>(l)].push_back(v);
    min_level = std::min(min_level, l);
    max_level = std::max(max_level, l);
  };
  for (const std::int32_t v : seed_vertices) {
    if (!mask[static_cast<std::size_t>(v)] ||
        dirty_[static_cast<std::size_t>(v)]) {
      continue;
    }
    mark(v);
    ++result.seeds;
  }

  for (std::int32_t l = min_level; l <= max_level; ++l) {
    auto& bucket = pending_[static_cast<std::size_t>(l)];
    if (bucket.empty()) continue;
    const auto count = static_cast<std::int64_t>(bucket.size());
    changed_.assign(bucket.size(), 0);
    auto pull = [&](std::int64_t i) {
      const std::int32_t v = bucket[static_cast<std::size_t>(i)];
      double best = is_source[static_cast<std::size_t>(v)] ? 0.0
                                                           : Dag::kMinusInf;
      for (const auto e : dag.in_edges(v)) {
        const Dag::Edge& ed = dag.edge(e);
        if (!mask[static_cast<std::size_t>(ed.from)]) continue;
        best = std::max(best, lp[static_cast<std::size_t>(ed.from)] + ed.weight);
      }
      if (best != lp[static_cast<std::size_t>(v)]) {
        lp[static_cast<std::size_t>(v)] = best;
        changed_[static_cast<std::size_t>(i)] = 1;
      }
    };
    if (exec != nullptr && !exec->serial() && count >= kParallelDirtyMin) {
      parallel_for(*exec, count, pull);
    } else {
      for (std::int64_t i = 0; i < count; ++i) pull(i);
    }
    result.relaxed += count;
    // Serial fan-out in bucket order: successors land in strictly higher
    // levels, so nothing already processed is ever re-marked.
    for (std::int64_t i = 0; i < count; ++i) {
      if (!changed_[static_cast<std::size_t>(i)]) continue;
      result.any_change = true;
      const std::int32_t v = bucket[static_cast<std::size_t>(i)];
      for (const auto e : dag.out_edges(v)) {
        const Dag::Edge& ed = dag.edge(e);
        if (!mask[static_cast<std::size_t>(ed.to)]) continue;
        mark(ed.to);
      }
    }
    // max_level may have grown through mark(); the loop bound re-reads it.
  }

  for (std::int32_t l = min_level; l <= max_level; ++l) {
    auto& bucket = pending_[static_cast<std::size_t>(l)];
    for (const std::int32_t v : bucket) {
      dirty_[static_cast<std::size_t>(v)] = 0;
    }
    bucket.clear();
  }
  return result;
}

}  // namespace bgr

#pragma once

#include <cstdint>
#include <vector>

#include "bgr/exec/exec_context.hpp"
#include "bgr/graph/dag.hpp"

namespace bgr {

/// Counters of the timing engine, split by update style. Bookkeeping only —
/// no algorithm reads them — so they cannot perturb results. Snapshot and
/// subtract to attribute activity to a router phase.
struct StaStats {
  std::int64_t incremental_updates = 0;  // dirty-cone propagations run
  std::int64_t full_sweeps = 0;          // from-scratch constraint recomputes
  std::int64_t dirty_seeds = 0;          // vertices seeded by weight changes
  std::int64_t dirty_vertices = 0;       // vertices re-relaxed incrementally
  std::int64_t full_vertices = 0;        // vertices relaxed by full sweeps
  /// Total vertex relaxations, whichever path performed them.
  [[nodiscard]] std::int64_t relaxations() const {
    return dirty_vertices + full_vertices;
  }
};

/// Incremental longest-path maintenance over one masked DAG (a constraint
/// subgraph G_d(P)): after some arc weights changed, re-establishes the
/// arrival-time fixed point
///   lp(v) = max(is_source(v) ? 0 : -inf,  max over in-arcs (u,v) in the
///               mask of lp(u) + w(u,v))
/// touching only the *dirty cone* — the fanout of the changed arcs, cut
/// short wherever a recomputed value comes out unchanged.
///
/// Exactness: a vertex is recomputed with the full pull over its in-arcs,
/// so its value is bit-identical to what a from-scratch sweep would
/// produce, by induction over topological levels (max over the same
/// doubles in the same in-edge order). Early termination is sound because
/// an unchanged value cannot change any successor's pull.
///
/// Determinism: levels are processed in ascending order; within a level
/// each dirty vertex writes only its own lp slot, and the pull reads only
/// strictly lower (already final) levels. Large levels fan out through
/// `parallel_for`, whose chunking is thread-count independent, so results
/// and counters are identical for any thread count.
///
/// The propagator is constraint-agnostic scratch: one instance serves every
/// constraint of an analyzer, as long as calls do not overlap.
class DirtyPropagator {
 public:
  explicit DirtyPropagator(const Dag& dag);

  struct Result {
    std::int64_t seeds = 0;    // distinct in-mask seed vertices
    std::int64_t relaxed = 0;  // vertices re-pulled (dirty-cone size)
    bool any_change = false;   // some lp value actually moved
  };

  /// Re-propagates `lp` after the weights of arcs ending at
  /// `seed_vertices` changed. `mask` selects the constraint subgraph;
  /// `is_source` flags the constraint's source vertices (lp floor 0).
  /// `lp` must hold the fixed point of the pre-change weights.
  Result propagate(const std::vector<std::int32_t>& seed_vertices,
                   const std::vector<bool>& mask,
                   const std::vector<char>& is_source, std::vector<double>& lp,
                   ExecContext* exec);

 private:
  const Dag* dag_;
  std::vector<char> dirty_;  // cleared back to 0 after every propagate
  std::vector<std::vector<std::int32_t>> pending_;  // per-level dirty lists
  std::vector<char> changed_;                       // per-bucket scratch
};

}  // namespace bgr

#include "bgr/timing/lower_bound.hpp"

#include <algorithm>
#include <limits>

namespace bgr {
namespace {

/// Vertical coordinate (um) used for bounding-box estimates: mid-row for
/// cell pins, chip edge for pads.
double terminal_y_um(const Netlist& netlist, const Placement& placement,
                     const TechParams& tech, TerminalId term) {
  const Terminal& t = netlist.terminal(term);
  if (t.kind == TerminalKind::kCellPin) {
    const auto row = placement.placed(t.cell).row;
    return (static_cast<double>(row.value()) + 0.5) * tech.row_height_um;
  }
  const PadSite& site = placement.pad_site(term);
  return site.top ? static_cast<double>(placement.row_count()) * tech.row_height_um
                  : 0.0;
}

}  // namespace

double net_half_perimeter_um(const Netlist& netlist, const Placement& placement,
                             const TechParams& tech, NetId net) {
  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -min_x;
  double min_y = min_x;
  double max_y = -min_x;
  for (const TerminalId term : netlist.net_terminals(net)) {
    const double x =
        static_cast<double>(placement.terminal_column(netlist, term)) *
        tech.grid_pitch_um;
    const double y = terminal_y_um(netlist, placement, tech, term);
    min_x = std::min(min_x, x);
    max_x = std::max(max_x, x);
    min_y = std::min(min_y, y);
    max_y = std::max(max_y, y);
  }
  return (max_x - min_x) + (max_y - min_y);
}

double lower_bound_delay_ps(DelayGraph& delay_graph, const Placement& placement,
                            const TechParams& tech) {
  const Netlist& netlist = delay_graph.netlist();
  for (const NetId n : netlist.nets()) {
    const double um = net_half_perimeter_um(netlist, placement, tech, n);
    delay_graph.set_net_cap(n, tech.wire_cap_pf(um, netlist.net(n).pitch_width));
  }
  return delay_graph.critical_delay_ps();
}

}  // namespace bgr

#include "bgr/timing/lower_bound.hpp"

#include <algorithm>
#include <limits>

namespace bgr {
namespace {

/// Vertical coordinate (um) used for bounding-box estimates: mid-row for
/// cell pins, chip edge for pads.
double terminal_y_um(const Netlist& netlist, const Placement& placement,
                     const TechParams& tech, TerminalId term) {
  const Terminal& t = netlist.terminal(term);
  if (t.kind == TerminalKind::kCellPin) {
    const auto row = placement.placed(t.cell).row;
    return (static_cast<double>(row.value()) + 0.5) * tech.row_height_um;
  }
  const PadSite& site = placement.pad_site(term);
  return site.top ? static_cast<double>(placement.row_count()) * tech.row_height_um
                  : 0.0;
}

}  // namespace

double net_half_perimeter_um(const Netlist& netlist, const Placement& placement,
                             const TechParams& tech, NetId net) {
  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -min_x;
  double min_y = min_x;
  double max_y = -min_x;
  for (const TerminalId term : netlist.net_terminals(net)) {
    const double x =
        static_cast<double>(placement.terminal_column(netlist, term)) *
        tech.grid_pitch_um;
    const double y = terminal_y_um(netlist, placement, tech, term);
    min_x = std::min(min_x, x);
    max_x = std::max(max_x, x);
    min_y = std::min(min_y, y);
    max_y = std::max(max_y, y);
  }
  return (max_x - min_x) + (max_y - min_y);
}

double row_crossing_cost_um(const TechParams& tech) {
  return tech.row_cross_um() + 2.0 * tech.channel_depth_est_um;
}

double net_length_lower_bound_um(const Netlist& netlist,
                                 const Placement& placement,
                                 const TechParams& tech, NetId net) {
  // Per terminal: the channels it can enter directly. A pin at row r taps
  // channel r (below) or r + 1 (above); a pad only its chip-edge channel.
  // Any tree must reach a common channel range, crossing every row between
  // the lowest reachable upper channel and the highest reachable lower one.
  std::int32_t min_col = std::numeric_limits<std::int32_t>::max();
  std::int32_t max_col = std::numeric_limits<std::int32_t>::min();
  std::int32_t min_hi = std::numeric_limits<std::int32_t>::max();
  std::int32_t max_lo = std::numeric_limits<std::int32_t>::min();
  for (const TerminalId term : netlist.net_terminals(net)) {
    const std::int32_t col = placement.terminal_column(netlist, term);
    min_col = std::min(min_col, col);
    max_col = std::max(max_col, col);
    const Terminal& t = netlist.terminal(term);
    std::int32_t lo = 0;
    std::int32_t hi = 0;
    if (t.kind == TerminalKind::kCellPin) {
      lo = placement.placed(t.cell).row.value();
      hi = lo + 1;
    } else {
      lo = hi = placement.pad_site(term).top ? placement.row_count() : 0;
    }
    min_hi = std::min(min_hi, hi);
    max_lo = std::max(max_lo, lo);
  }
  if (min_col > max_col) return 0.0;  // empty net
  const double horiz =
      static_cast<double>(max_col - min_col) * tech.horiz_step_um();
  const std::int32_t crossings = std::max(0, max_lo - min_hi);
  return horiz + static_cast<double>(crossings) * row_crossing_cost_um(tech);
}

double lower_bound_delay_ps(DelayGraph& delay_graph, const Placement& placement,
                            const TechParams& tech) {
  const Netlist& netlist = delay_graph.netlist();
  for (const NetId n : netlist.nets()) {
    const double um = net_half_perimeter_um(netlist, placement, tech, n);
    delay_graph.set_net_cap(n, tech.wire_cap_pf(um, netlist.net(n).pitch_width));
  }
  return delay_graph.critical_delay_ps();
}

}  // namespace bgr

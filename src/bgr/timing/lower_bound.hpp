#pragma once

#include "bgr/common/ids.hpp"
#include "bgr/common/tech.hpp"
#include "bgr/layout/placement.hpp"
#include "bgr/timing/delay_graph.hpp"

namespace bgr {

/// Half-perimeter wire-length bound of a net (paper §5, Table 3): the wire
/// length is assumed to be half the perimeter of the bounding rectangle of
/// the net's terminals, in micrometres.
[[nodiscard]] double net_half_perimeter_um(const Netlist& netlist,
                                           const Placement& placement,
                                           const TechParams& tech, NetId net);

/// Weight (um) the routing graph charges for one feedthrough crossing of a
/// cell row: the row height plus the expected in-channel vertical runs on
/// both sides of the crossing. This is exactly the feed-edge weight of
/// RoutingGraph, so bounds built from it (the chip-level lookahead table,
/// `net_length_lower_bound_um`) are admissible against live routing-graph
/// distances by construction.
[[nodiscard]] double row_crossing_cost_um(const TechParams& tech);

/// Feed-aware net-length lower bound (um): the horizontal extent of the
/// net's terminal columns plus one full `row_crossing_cost_um` charge per
/// cell row that every connecting tree must cross (each terminal can reach
/// the channel above or below its row; a pad only its edge channel).
/// Tighter than `net_half_perimeter_um` as a routing-graph length bound,
/// because the graph prices a row crossing at more than the row height.
[[nodiscard]] double net_length_lower_bound_um(const Netlist& netlist,
                                               const Placement& placement,
                                               const TechParams& tech,
                                               NetId net);

/// Loads every net's capacitance with its half-perimeter bound and returns
/// the resulting chip critical delay — the critical-path-delay lower bound
/// of Table 3. Net capacitances in `delay_graph` are left at the bound
/// values; callers wanting to preserve state must restore caps themselves.
[[nodiscard]] double lower_bound_delay_ps(DelayGraph& delay_graph,
                                          const Placement& placement,
                                          const TechParams& tech);

}  // namespace bgr

#pragma once

#include "bgr/common/ids.hpp"
#include "bgr/common/tech.hpp"
#include "bgr/layout/placement.hpp"
#include "bgr/timing/delay_graph.hpp"

namespace bgr {

/// Half-perimeter wire-length bound of a net (paper §5, Table 3): the wire
/// length is assumed to be half the perimeter of the bounding rectangle of
/// the net's terminals, in micrometres.
[[nodiscard]] double net_half_perimeter_um(const Netlist& netlist,
                                           const Placement& placement,
                                           const TechParams& tech, NetId net);

/// Loads every net's capacitance with its half-perimeter bound and returns
/// the resulting chip critical delay — the critical-path-delay lower bound
/// of Table 3. Net capacitances in `delay_graph` are left at the bound
/// values; callers wanting to preserve state must restore caps themselves.
[[nodiscard]] double lower_bound_delay_ps(DelayGraph& delay_graph,
                                          const Placement& placement,
                                          const TechParams& tech);

}  // namespace bgr

#include "bgr/verify/capacity_search.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "bgr/obs/metrics.hpp"
#include "bgr/verify/verifier.hpp"

namespace bgr {

namespace {

/// Routes the design from scratch and checks it against a per-channel
/// track capacity `cap`, rip-up/re-routing the nets of over-capacity
/// channels for up to `max_passes` passes. The channel stage is
/// single-shot, so every pass measures through a fresh stage.
CapacityProbe run_probe(const Netlist& base, const Placement& placement,
                        const TechParams& tech,
                        const std::vector<PathConstraint>& constraints,
                        const RouterOptions& router_options, std::int32_t cap,
                        std::int32_t max_passes) {
  CapacityProbe probe;
  probe.tracks = cap;
  Netlist netlist = base;  // the router inserts feed cells
  GlobalRouter router(netlist, placement, tech, constraints, router_options);
  router.run();
  std::unique_ptr<ChannelStage> channel;
  for (std::int32_t pass = 0;; ++pass) {
    channel = std::make_unique<ChannelStage>(router);
    channel->run();
    probe.max_tracks = 0;
    for (const std::int32_t t : channel->track_counts()) {
      probe.max_tracks = std::max(probe.max_tracks, t);
    }
    if (probe.max_tracks <= cap || pass >= max_passes) break;
    // Rip up every net with a segment in an over-capacity channel; the
    // re-route sees the live densities, so the §3.4 density criteria pull
    // the new trees away from the saturated channels.
    std::vector<char> seen(static_cast<std::size_t>(netlist.net_count()), 0);
    std::vector<NetId> victims;
    for (std::int32_t c = 0; c < channel->channel_count(); ++c) {
      const ChannelPlan& plan = channel->plan(c);
      if (plan.tracks <= cap) continue;
      for (const ChannelSegment& seg : plan.segments) {
        char& mark = seen[static_cast<std::size_t>(seg.net.value())];
        if (mark == 0) {
          mark = 1;
          victims.push_back(seg.net);
        }
      }
    }
    if (victims.empty()) break;
    std::sort(victims.begin(), victims.end(),
              [](NetId a, NetId b) { return a.value() < b.value(); });
    router.reroute(victims);
    ++probe.reroute_passes;
  }
  const RouteVerifier verifier(router, channel.get());
  for (const VerifyIssue& issue : verifier.run()) {
    if (issue.severity == VerifyIssue::Severity::kError) {
      ++probe.verify_errors;
    }
  }
  probe.feasible = probe.max_tracks <= cap && probe.verify_errors == 0;
  return probe;
}

}  // namespace

CapacitySearchResult min_capacity_search(
    const Netlist& netlist, const Placement& placement, const TechParams& tech,
    const std::vector<PathConstraint>& constraints,
    const RouterOptions& router_options, const CapacitySearchOptions& options) {
  CapacitySearchResult result;

  // Unconstrained reference run: its densest channel is both the upper
  // bound of the bisection and a capacity known to be feasible (a probe at
  // exactly that cap re-routes nothing, so it reproduces this very run).
  CapacityProbe reference =
      run_probe(netlist, placement, tech, constraints, router_options,
                std::numeric_limits<std::int32_t>::max(),
                options.max_reroute_passes);
  result.unconstrained_tracks = reference.max_tracks;
  const bool reference_clean = reference.verify_errors == 0;
  reference.feasible = reference_clean;
  // Report the probe at the capacity it established, not the +inf cap it
  // ran under (a probe at exactly max_tracks re-routes nothing, so it is
  // this very run).
  reference.tracks = reference.max_tracks;
  result.probes.push_back(reference);
  if (reference.max_tracks <= 0 || !reference_clean) {
    result.min_tracks = reference.max_tracks;
    return result;
  }

  std::int32_t lo = 1;
  std::int32_t hi = reference.max_tracks;
  while (lo < hi) {
    const std::int32_t mid = lo + (hi - lo) / 2;
    const CapacityProbe probe =
        run_probe(netlist, placement, tech, constraints, router_options, mid,
                  options.max_reroute_passes);
    result.probes.push_back(probe);
    if (probe.feasible) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.min_tracks = lo;
  return result;
}

RunReport make_capacity_report(const std::string& design_name, bool constrained,
                               const CapacitySearchResult& result,
                               double wall_seconds) {
  RunReport report("bench.capacity");
  report.section("design").set("name", design_name);
  report.section("options").set("constrained", constrained);

  JsonValue& capacity = report.section("capacity");
  capacity.set("min_tracks", static_cast<std::int64_t>(result.min_tracks));
  capacity.set("unconstrained_tracks",
               static_cast<std::int64_t>(result.unconstrained_tracks));
  JsonValue probes;
  for (const CapacityProbe& probe : result.probes) {
    JsonValue entry;
    entry.set("tracks", static_cast<std::int64_t>(probe.tracks));
    entry.set("feasible", probe.feasible);
    entry.set("max_tracks", static_cast<std::int64_t>(probe.max_tracks));
    entry.set("reroute_passes",
              static_cast<std::int64_t>(probe.reroute_passes));
    entry.set("verify_errors",
              static_cast<std::int64_t>(probe.verify_errors));
    probes.push_back(std::move(entry));
  }
  capacity.set("probes", std::move(probes));

  report.section("run").set("wall_seconds", wall_seconds);
  report.add_metrics(MetricsRegistry::global());
  return report;
}

}  // namespace bgr

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bgr/channel/channel_router.hpp"
#include "bgr/obs/run_report.hpp"
#include "bgr/route/router.hpp"

namespace bgr {

/// One feasibility probe of `min_capacity_search`: route the design from
/// scratch, then check whether every channel fits within `tracks` tracks,
/// re-routing the nets of over-capacity channels for a bounded number of
/// passes before giving up.
struct CapacityProbe {
  std::int32_t tracks = 0;         // the capacity W probed
  bool feasible = false;           // fits W and verifies clean
  std::int32_t max_tracks = 0;     // densest channel after the final pass
  std::int32_t reroute_passes = 0; // rip-up/re-route passes consumed
  std::int32_t verify_errors = 0;  // signoff errors on the final result
};

struct CapacitySearchResult {
  /// Smallest W for which the probe succeeded. Always well-defined: the
  /// unconstrained probe's own track count is feasible by construction.
  std::int32_t min_tracks = 0;
  /// Densest channel of the unconstrained route (the binary search's upper
  /// bound).
  std::int32_t unconstrained_tracks = 0;
  /// Every probe run, in execution order (unconstrained first, then the
  /// bisection probes) — the full deterministic transcript.
  std::vector<CapacityProbe> probes;
};

struct CapacitySearchOptions {
  /// Rip-up/re-route passes a probe may spend squeezing over-capacity
  /// channels before declaring W infeasible.
  std::int32_t max_reroute_passes = 3;
};

/// Minimum-capacity binary search (DESIGN.md §15): the smallest per-channel
/// track capacity W for which the design still routes and verifies clean.
/// Each probe is a fresh, fully deterministic pipeline run (the router
/// consumes its netlist, so the probe copies it), and the bisection over
/// [1, unconstrained] asks a deterministic predicate — the result is
/// bit-identical across repeats and thread counts even though feasibility
/// need not be monotone in W (the search then still converges, to the
/// canonical fixpoint of the probe sequence). `router_options.threads` et
/// al. are honored per probe.
[[nodiscard]] CapacitySearchResult min_capacity_search(
    const Netlist& netlist, const Placement& placement, const TechParams& tech,
    const std::vector<PathConstraint>& constraints,
    const RouterOptions& router_options,
    const CapacitySearchOptions& options = {});

/// Builds the `bench.capacity` run report (tools/check_run_report.py owns
/// the schema): the search result plus the full probe transcript, with
/// wall time quarantined under "run" and the global metrics registry
/// appended. Shared by `bgr_route --min-capacity-search` and
/// `bench_capacity`.
[[nodiscard]] RunReport make_capacity_report(const std::string& design_name,
                                             bool constrained,
                                             const CapacitySearchResult& result,
                                             double wall_seconds);

}  // namespace bgr

#include "bgr/verify/verifier.hpp"

#include <map>
#include <set>
#include <sstream>

namespace bgr {
namespace {

void add(std::vector<VerifyIssue>& out, VerifyIssue::Severity severity,
         const std::string& check, const std::string& message) {
  out.push_back(VerifyIssue{severity, check, message});
}

}  // namespace

std::vector<VerifyIssue> RouteVerifier::run() const {
  std::vector<VerifyIssue> out;
  check_trees(out);
  check_geometry(out);
  check_feedthroughs(out);
  check_density(out);
  check_differential(out);
  if (channel_ != nullptr) check_tracks(out);
  return out;
}

void RouteVerifier::check_trees(std::vector<VerifyIssue>& out) const {
  const Netlist& nl = router_.analyzer().delay_graph().netlist();
  for (const NetId n : nl.nets()) {
    const RoutingGraph& g = router_.net_graph(n);
    if (!g.graph().connects(g.terminal_vertices())) {
      add(out, VerifyIssue::Severity::kError, "tree",
          "net " + nl.net(n).name + " terminals disconnected");
      continue;
    }
    if (g.graph().alive_edge_count() != g.graph().alive_vertex_count() - 1) {
      add(out, VerifyIssue::Severity::kError, "tree",
          "net " + nl.net(n).name + " is not a tree (edges " +
              std::to_string(g.graph().alive_edge_count()) + ", vertices " +
              std::to_string(g.graph().alive_vertex_count()) + ")");
    }
    // Every leaf must be a terminal (no dangling wire).
    for (std::int32_t v = 0; v < g.graph().vertex_count(); ++v) {
      if (!g.graph().vertex_alive(v)) continue;
      if (g.graph().degree(v) <= 1 &&
          g.vertex_info(v).kind != RouteVertexKind::kTerminal) {
        add(out, VerifyIssue::Severity::kWarning, "tree",
            "net " + nl.net(n).name + " has a dangling branch at vertex " +
                std::to_string(v));
      }
    }
  }
}

void RouteVerifier::check_geometry(std::vector<VerifyIssue>& out) const {
  const Netlist& nl = router_.analyzer().delay_graph().netlist();
  const Placement& pl = router_.placement();
  for (const NetId n : nl.nets()) {
    const RoutingGraph& g = router_.net_graph(n);
    for (const auto e : g.alive_edges()) {
      const RouteEdgeInfo& info = g.edge_info(e);
      const bool channel_ok =
          info.channel >= 0 && info.channel < pl.channel_count();
      const bool span_ok = !info.span.empty() && info.span.lo >= 0 &&
                           info.span.hi < pl.width();
      if (!channel_ok || !span_ok) {
        std::ostringstream oss;
        oss << "net " << nl.net(n).name << " edge " << e << " at channel "
            << info.channel << " span [" << info.span.lo << ","
            << info.span.hi << "] outside the chip";
        add(out, VerifyIssue::Severity::kError, "geometry", oss.str());
      }
    }
  }
}

void RouteVerifier::check_feedthroughs(std::vector<VerifyIssue>& out) const {
  const Netlist& nl = router_.analyzer().delay_graph().netlist();
  const Placement& pl = router_.placement();
  // (row, column) → owning net; differential shadows share their primary's
  // group, and a w-pitch crossing owns w adjacent columns.
  std::map<std::pair<std::int32_t, std::int32_t>, NetId> owner;
  for (const NetId n : nl.nets()) {
    const Net& net = nl.net(n);
    const RoutingGraph& g = router_.net_graph(n);
    for (const auto e : g.alive_edges()) {
      const RouteEdgeInfo& info = g.edge_info(e);
      if (info.kind != RouteEdgeKind::kFeed) continue;
      const std::int32_t row = info.channel;  // crossing row == lower channel
      for (std::int32_t k = 0; k < net.pitch_width; ++k) {
        const std::int32_t col = info.span.lo + k;
        if (pl.column_blocked(RowId{row}, col)) {
          add(out, VerifyIssue::Severity::kError, "feedthrough",
              "net " + net.name + " crosses row " + std::to_string(row) +
                  " at blocked column " + std::to_string(col));
        }
        const auto key = std::make_pair(row, col);
        const auto it = owner.find(key);
        const NetId primary =
            net.is_differential() && !net.diff_primary ? net.diff_partner : n;
        if (it != owner.end() && it->second != primary &&
            it->second != n) {
          // A differential shadow one column right of its primary is legal.
          const Net& other = nl.net(it->second);
          const bool paired = other.is_differential() &&
                              (other.diff_partner == n ||
                               other.diff_partner == primary);
          if (!paired) {
            add(out, VerifyIssue::Severity::kError, "feedthrough",
                "nets " + other.name + " and " + net.name +
                    " share feedthrough column " + std::to_string(col) +
                    " in row " + std::to_string(row));
          }
        } else {
          owner[key] = primary;
        }
      }
    }
  }
}

void RouteVerifier::check_density(std::vector<VerifyIssue>& out) const {
  const Netlist& nl = router_.analyzer().delay_graph().netlist();
  const DensityMap& incremental = router_.density();
  DensityMap fresh(router_.placement().channel_count(),
                   router_.placement().width());
  for (const NetId n : nl.nets()) {
    const RoutingGraph& g = router_.net_graph(n);
    for (const auto e : g.alive_edges()) {
      const RouteEdgeInfo& info = g.edge_info(e);
      if (!info.is_trunk()) continue;
      fresh.add_total(info.channel, info.span, nl.net(n).pitch_width);
    }
  }
  for (std::int32_t c = 0; c < fresh.channel_count(); ++c) {
    for (std::int32_t x = 0; x < fresh.width(); ++x) {
      if (incremental.total_at(c, x) != fresh.total_at(c, x)) {
        add(out, VerifyIssue::Severity::kError, "density",
            "density mismatch at channel " + std::to_string(c) + " column " +
                std::to_string(x) + ": incremental " +
                std::to_string(incremental.total_at(c, x)) + " vs recount " +
                std::to_string(fresh.total_at(c, x)));
        return;  // one detailed finding is enough
      }
    }
  }
}

void RouteVerifier::check_differential(std::vector<VerifyIssue>& out) const {
  const Netlist& nl = router_.analyzer().delay_graph().netlist();
  for (const NetId n : nl.nets()) {
    const Net& net = nl.net(n);
    if (!net.is_differential() || !net.diff_primary) continue;
    const RoutingGraph& a = router_.net_graph(n);
    const RoutingGraph& b = router_.net_graph(net.diff_partner);
    if (a.graph().edge_count() != b.graph().edge_count()) {
      add(out, VerifyIssue::Severity::kError, "differential",
          "pair " + net.name + " graphs not homogeneous");
      continue;
    }
    for (std::int32_t e = 0; e < a.graph().edge_count(); ++e) {
      if (a.graph().edge_alive(e) != b.graph().edge_alive(e)) {
        add(out, VerifyIssue::Severity::kError, "differential",
            "pair " + net.name + " diverged at edge " + std::to_string(e));
        break;
      }
      if (a.graph().edge_alive(e) &&
          (a.edge_info(e).span.lo + 1 != b.edge_info(e).span.lo ||
           a.edge_info(e).channel != b.edge_info(e).channel)) {
        add(out, VerifyIssue::Severity::kError, "differential",
            "pair " + net.name + " not mirrored at edge " + std::to_string(e));
        break;
      }
    }
  }
}

void RouteVerifier::check_tracks(std::vector<VerifyIssue>& out) const {
  const Netlist& nl = router_.analyzer().delay_graph().netlist();
  for (std::int32_t c = 0; c < channel_->channel_count(); ++c) {
    const ChannelPlan& plan = channel_->plan(c);
    // No overlaps.
    for (std::size_t i = 0; i < plan.segments.size(); ++i) {
      const ChannelSegment& a = plan.segments[i];
      if (a.track < 1 || a.track + a.width - 1 > plan.tracks) {
        add(out, VerifyIssue::Severity::kError, "tracks",
            "segment of net " + nl.net(a.net).name + " outside channel " +
                std::to_string(c));
      }
      for (std::size_t j = i + 1; j < plan.segments.size(); ++j) {
        const ChannelSegment& b = plan.segments[j];
        const bool tracks_overlap =
            a.track < b.track + b.width && b.track < a.track + a.width;
        if (tracks_overlap && a.span.overlaps(b.span)) {
          add(out, VerifyIssue::Severity::kError, "tracks",
              "nets " + nl.net(a.net).name + " and " + nl.net(b.net).name +
                  " overlap in channel " + std::to_string(c));
        }
      }
    }
    // Coverage of every trunk edge.
    for (const NetId n : nl.nets()) {
      const RoutingGraph& g = router_.net_graph(n);
      for (const auto e : g.alive_edges()) {
        const RouteEdgeInfo& info = g.edge_info(e);
        if (!info.is_trunk() || info.channel != c) continue;
        bool covered = false;
        for (const ChannelSegment& seg : plan.segments) {
          covered = covered || (seg.net == n && seg.span.contains(info.span));
        }
        if (!covered) {
          add(out, VerifyIssue::Severity::kError, "tracks",
              "trunk of net " + nl.net(n).name + " in channel " +
                  std::to_string(c) + " not covered by any segment");
        }
      }
    }
  }
}

}  // namespace bgr

#pragma once

#include <string>
#include <vector>

#include "bgr/channel/channel_router.hpp"
#include "bgr/route/router.hpp"

namespace bgr {

/// One verification finding. `kError` findings mean the result is not a
/// legal global routing; `kWarning` findings are quality or consistency
/// observations.
struct VerifyIssue {
  enum class Severity { kError, kWarning };
  Severity severity = Severity::kError;
  std::string check;    // short check identifier
  std::string message;  // human-readable details
};

/// Independent signoff checks over a routed design. The verifier rebuilds
/// every invariant from primary data (netlist, placement, final routing
/// graphs, channel plans) rather than trusting the router's bookkeeping:
///
///   tree            every net is a connected spanning tree of its terminals
///   geometry        every edge lies inside the chip and uses valid channels
///   feedthrough     vertical crossings sit on unblocked assigned columns,
///                   and no two nets share a feedthrough column in a row
///   density         the incremental density map equals a fresh recount
///   differential    pair members are exact mirrors one column apart
///   tracks          channel segments do not overlap on their tracks and
///                   cover every trunk edge
///   pitch           w-pitch nets have w adjacent usable columns reserved
class RouteVerifier {
 public:
  RouteVerifier(const GlobalRouter& router, const ChannelStage* channel)
      : router_(router), channel_(channel) {}

  /// Runs every check; returns all findings (empty = clean).
  [[nodiscard]] std::vector<VerifyIssue> run() const;

  [[nodiscard]] static bool has_errors(const std::vector<VerifyIssue>& issues) {
    for (const VerifyIssue& issue : issues) {
      if (issue.severity == VerifyIssue::Severity::kError) return true;
    }
    return false;
  }

 private:
  void check_trees(std::vector<VerifyIssue>& out) const;
  void check_geometry(std::vector<VerifyIssue>& out) const;
  void check_feedthroughs(std::vector<VerifyIssue>& out) const;
  void check_density(std::vector<VerifyIssue>& out) const;
  void check_differential(std::vector<VerifyIssue>& out) const;
  void check_tracks(std::vector<VerifyIssue>& out) const;

  const GlobalRouter& router_;
  const ChannelStage* channel_;  // track checks skipped when null
};

}  // namespace bgr

#!/usr/bin/env bash
# Regression for the checked-choice CLI parses: a typo'd --path-search
# engine must exit with the usage code (2) and the diagnostic must name
# every registered engine, so the error doubles as documentation and a
# newly added backend cannot be forgotten in the message.
set -u

cli="$1"
fail() {
  echo "FAIL: $1" >&2
  echo "--- output ---" >&2
  echo "$out" >&2
  exit 1
}

out=$("$cli" @C1P1 --path-search bogus 2>&1)
status=$?
[ "$status" -eq 2 ] || fail "expected exit 2 for unknown engine, got $status"
case "$out" in
  *"--path-search"*) ;;
  *) fail "diagnostic does not name the flag" ;;
esac
for engine in astar dijkstra steiner; do
  case "$out" in
    *"$engine"*) ;;
    *) fail "diagnostic does not list engine '$engine'" ;;
  esac
done
case "$out" in
  *"bogus"*) ;;
  *) fail "diagnostic does not echo the rejected value" ;;
esac

# A missing value is rejected the same way, not read past argv.
out=$("$cli" @C1P1 --path-search 2>&1)
status=$?
[ "$status" -eq 2 ] || fail "expected exit 2 for missing value, got $status"

echo "cli_errors: ok"

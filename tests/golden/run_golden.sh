#!/usr/bin/env bash
# Golden-file regression for the bgr_route CLI: routes the committed
# tests/golden/golden_design.txt in three configurations and diffs the
# full report against expected_report.txt. Wall-clock dependent lines (the
# per-phase time table and the "cpu" figure) are filtered out; everything
# else — phase statistics, dirty/relax counters, delay/area/length, the
# verifier verdict — is bit-exact by the router's determinism guarantee.
#
# usage: run_golden.sh <path-to-bgr_route> <path-to-tests/golden>
#
# To regenerate after an intentional behavior change:
#   run_golden.sh <bgr_route> <tests/golden> --regen
set -eu

bgr_route="$1"
golden_dir="$2"
expected="$golden_dir/expected_report.txt"

filter() {
  sed -e 's/, cpu [0-9.]* s$//' \
      -e '/^phase times/d' \
      -e '/^  .*s  *[0-9.]*%  regions/d'
}

actual="$(mktemp)"
trap 'rm -f "$actual"' EXIT
{
  echo "== lumped, incremental sta, 2 threads =="
  "$bgr_route" "$golden_dir/golden_design.txt" --threads 2 --verify | filter
  echo "== rc, full sta, serial =="
  "$bgr_route" "$golden_dir/golden_design.txt" --rc --incremental-sta off \
      --threads 1 | filter
  echo "== lumped, dijkstra path search, serial =="
  # Must match the A* runs above on every semantic line except the
  # search-effort columns (pops/relax) — the backends are bit-identical
  # in what they decide, not in how hard they work for it.
  "$bgr_route" "$golden_dir/golden_design.txt" --path-search dijkstra \
      --threads 1 | filter
} > "$actual"

if [ "${3:-}" = "--regen" ]; then
  cp "$actual" "$expected"
  echo "regenerated $expected"
  exit 0
fi

diff -u "$expected" "$actual"

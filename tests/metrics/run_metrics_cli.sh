#!/usr/bin/env bash
# End-to-end check of the observability CLI surface: routes the committed
# golden design with --metrics-out/--trace-out at 1 and 8 threads and runs
# tools/check_run_report.py over the artifacts. Validates
#   - both run reports against the schema contract,
#   - the trace file (valid JSON, ordered timestamps, strict per-thread
#     span nesting),
#   - bit-identical semantic sections across the two thread counts,
#   - that --log-format json is accepted.
#
# usage: run_metrics_cli.sh <path-to-bgr_route> <path-to-check_run_report.py>
#        <path-to-golden-design> [python3]
set -eu

bgr_route="$1"
checker="$2"
design="$3"
python="${4:-python3}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

"$bgr_route" "$design" --threads 1 --log-format json \
    --metrics-out "$workdir/run1.json" > "$workdir/out1.txt"
"$bgr_route" "$design" --threads 8 \
    --metrics-out "$workdir/run8.json" --trace-out "$workdir/trace8.json" \
    > "$workdir/out8.txt"

"$python" "$checker" "$workdir/run1.json"
"$python" "$checker" "$workdir/run8.json" --trace "$workdir/trace8.json" \
    --compare-semantic "$workdir/run1.json"

echo "run_metrics_cli: OK"

#!/usr/bin/env bash
# End-to-end check of tools/bgr_report_diff.py, the run-report differ:
#   - two routes of the same design at different thread counts diff clean
#     (wall values vary, semantic content is bit-identical),
#   - a seeded semantic regression (one counter bumped in a copy) makes
#     the differ exit nonzero,
#   - a seeded wall slowdown passes by default (warn-only) but fails
#     under --wall-threshold.
#
# usage: run_report_diff.sh <path-to-bgr_route> <path-to-bgr_report_diff.py>
#        <path-to-golden-design> [python3]
set -eu

bgr_route="$1"
differ="$2"
design="$3"
python="${4:-python3}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

"$bgr_route" "$design" --threads 1 \
    --metrics-out "$workdir/base.json" > /dev/null
"$bgr_route" "$design" --threads 4 \
    --metrics-out "$workdir/cand.json" > /dev/null

# Clean diff: semantic identical across thread counts.
"$python" "$differ" "$workdir/base.json" "$workdir/cand.json"

# Seeded semantic regression: bump one semantic counter; must exit 1.
"$python" - "$workdir/cand.json" "$workdir/bad.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
report["metrics"]["semantic"]["route.deleted_edges"] += 1
with open(sys.argv[2], "w") as f:
    json.dump(report, f)
EOF
if "$python" "$differ" "$workdir/base.json" "$workdir/bad.json" \
    > /dev/null 2>&1; then
  echo "run_report_diff: FAIL: seeded semantic regression not detected" >&2
  exit 1
fi

# Seeded wall slowdown: 10x wall_seconds. Warn-only by default...
"$python" - "$workdir/cand.json" "$workdir/slow.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
report["run"]["wall_seconds"] = report["run"].get("wall_seconds", 1.0)
with open(sys.argv[2], "w") as f:
    json.dump(report, f)
EOF
"$python" - "$workdir/base.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
# Put a comparable wall value outside "run" so the threshold path has a
# key-pattern wall metric to chew on in both documents.
report.setdefault("result", {})["smoke_seconds"] = 1.0
with open(sys.argv[1], "w") as f:
    json.dump(report, f)
EOF
"$python" - "$workdir/slow.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
report.setdefault("result", {})["smoke_seconds"] = 10.0
with open(sys.argv[1], "w") as f:
    json.dump(report, f)
EOF
"$python" "$differ" "$workdir/base.json" "$workdir/slow.json"
if "$python" "$differ" "$workdir/base.json" "$workdir/slow.json" \
    --wall-threshold 0.5 > /dev/null 2>&1; then
  echo "run_report_diff: FAIL: wall threshold not enforced" >&2
  exit 1
fi

echo "run_report_diff: OK"

#!/usr/bin/env python3
"""Determinism gate on the live /metrics exposition (DESIGN.md §14).

Runs the same request stream through two bgr_serve daemons — --threads 1
and --threads 8 — scrapes /metrics from each while it is live, and
requires every scope="semantic" sample line to be bit-identical text
across the two scrapes. Gauges and rolling-latency windows are labeled
scope="nondeterministic" and are quarantined (excluded from comparison),
exactly like the run-report contract in check_run_report.py.

usage: metrics_scrape_determinism.py <bgr_serve-binary>
"""

import json
import subprocess
import sys
import urllib.request


def fail(msg):
    print(f"metrics_scrape_determinism: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


REQUESTS = [
    {"id": "j0", "dataset": "C1P1"},
    {"id": "j1", "dataset": "C1P1", "verify": True},
    {"id": "j2", "dataset": "C1P1", "options": {"improvement_passes": 4}},
    {"id": "j3", "dataset": "C1P1"},  # exact duplicate -> result hit
]


def run_and_scrape(serve_bin, threads):
    proc = subprocess.Popen(
        [serve_bin, "--threads", str(threads), "--jobs", "2",
         "--admin-port", "0"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True)
    proc.stdin.write("\n".join(json.dumps(r) for r in REQUESTS) + "\n")
    proc.stdin.flush()

    admin_port = None
    terminals = 0
    while terminals < len(REQUESTS):
        line = proc.stdout.readline()
        if not line:
            fail(f"--threads {threads}: daemon closed stdout early")
        event = json.loads(line)
        if event.get("event") == "ready":
            admin_port = event.get("admin_port")
        if event.get("event") in ("done", "cancelled", "failed"):
            terminals += 1
    if not admin_port:
        fail(f"--threads {threads}: no admin_port in the ready event")

    with urllib.request.urlopen(
            f"http://127.0.0.1:{admin_port}/metrics", timeout=30) as resp:
        text = resp.read().decode("utf-8")

    proc.stdin.write(json.dumps({"shutdown": True}) + "\n")
    proc.stdin.close()
    proc.stdout.read()
    if proc.wait(timeout=120) != 0:
        fail(f"--threads {threads}: daemon exited {proc.returncode}")
    return text


def semantic_lines(text):
    return [line for line in text.splitlines()
            if not line.startswith("#") and 'scope="semantic"' in line]


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <bgr_serve>")
    serve_bin = sys.argv[1]

    a = semantic_lines(run_and_scrape(serve_bin, 1))
    b = semantic_lines(run_and_scrape(serve_bin, 8))
    if not a:
        fail("no scope=\"semantic\" samples in the exposition")
    if a != b:
        only_a = sorted(set(a) - set(b))
        only_b = sorted(set(b) - set(a))
        for line in only_a[:10]:
            print(f"  only in --threads 1: {line}", file=sys.stderr)
        for line in only_b[:10]:
            print(f"  only in --threads 8: {line}", file=sys.stderr)
        fail(f"semantic exposition differs across thread counts "
             f"({len(only_a) + len(only_b)} differing lines)")

    print(f"metrics_scrape_determinism: OK ({len(a)} semantic sample "
          f"lines bit-identical across --threads 1 and 8)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""End-to-end smoke test of the bgr_serve daemon over stdio (DESIGN.md §12).

Drives one daemon process through its full protocol surface:

  - 8 jobs across design_file / inline design text / dataset presets,
    including exact duplicates (must hit the warm caches bit-identically)
    and an options variant (must re-run on the cached parsed design);
  - a cancel of a queued job (terminal event "cancelled", never "done");
  - a duplicate job id, an unknown cancel target and a malformed line
    (each rejected with a diagnostic, daemon stays up);
  - ping/pong and an orderly shutdown (exit status 0).

The per-job embedded run report and the daemon's final --metrics-out
report are both validated with tools/check_run_report.py.

usage: serve_smoke.py <bgr_serve-binary> <check_run_report.py> <design.txt>
"""

import json
import os
import subprocess
import sys
import tempfile


def fail(msg):
    print(f"serve_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 4:
        fail(f"usage: {sys.argv[0]} <bgr_serve> <check_run_report.py> "
             f"<design.txt>")
    serve_bin, checker, design_path = sys.argv[1:4]
    with open(design_path, encoding="utf-8") as f:
        design_text = f.read()

    # j0/j2/j4/j6 share one design (file, file-dup, inline text, options
    # variant); j1/j3/j5/j7 share the C1P1 preset. j7 is cancelled while
    # queued; j3/j6 change the result key, so they re-route on the cached
    # parsed design instead of reusing a finished result.
    requests = [
        {"ping": True},
        {"id": "j0", "design_file": design_path},
        {"id": "j1", "dataset": "C1P1", "verify": True, "report": True},
        {"id": "j2", "design_file": design_path},
        {"id": "j3", "dataset": "C1P1", "options": {"improvement_passes": 4}},
        {"id": "j4", "design": design_text},
        {"id": "j5", "dataset": "C1P1", "verify": True, "report": True},
        {"id": "j6", "design_file": design_path, "route_text": True},
        {"id": "j7", "dataset": "C1P1"},
        {"cancel": "j7"},
        {"cancel": "no-such-job"},
        {"id": "j0", "dataset": "C1P1"},  # duplicate id -> rejected
    ]
    stdin_lines = [json.dumps(r) for r in requests]
    stdin_lines.append("{this is not json")  # malformed -> rejected
    stdin_lines.append(json.dumps({"shutdown": True}))

    with tempfile.TemporaryDirectory() as tmp:
        metrics_path = os.path.join(tmp, "serve_report.json")
        proc = subprocess.run(
            [serve_bin, "--jobs", "2", "--metrics-out", metrics_path],
            input="\n".join(stdin_lines) + "\n",
            capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            fail(f"daemon exited with status {proc.returncode}")

        events = []
        for line in proc.stdout.splitlines():
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(f"unparseable response line {line!r}: {e}")

        def of(name):
            return [e for e in events if e.get("event") == name]

        def terminal(job_id):
            found = [e for e in events
                     if e.get("id") == job_id and
                     e.get("event") in ("done", "cancelled", "failed")]
            if len(found) != 1:
                fail(f"{job_id}: expected exactly one terminal event, "
                     f"got {[e.get('event') for e in found]}")
            return found[0]

        if not of("ready"):
            fail("no 'ready' banner")
        if not of("pong"):
            fail("no 'pong' for ping")
        if len(of("accepted")) != 8:
            fail(f"expected 8 accepted jobs, got {len(of('accepted'))}")

        # Terminal statuses: j0..j6 done, j7 cancelled before running.
        for job_id in [f"j{i}" for i in range(7)]:
            if terminal(job_id)["event"] != "done":
                fail(f"{job_id}: expected 'done', got "
                     f"{terminal(job_id)['event']}")
        if terminal("j7")["event"] != "cancelled":
            fail(f"j7: expected 'cancelled', got {terminal('j7')['event']}")
        if [e for e in events
                if e.get("id") == "j7" and e.get("event") == "started"]:
            fail("j7 was started despite being cancelled while queued")

        # Bit-identity: duplicates must reproduce the original digest, the
        # options variant must differ (it routes with more passes).
        digest = {j: terminal(j)["result"]["digest"] for j in
                  ["j0", "j1", "j2", "j3", "j4", "j5", "j6"]}
        cache = {j: terminal(j)["result"]["cache"] for j in digest}
        for dup, orig in [("j2", "j0"), ("j4", "j0"), ("j5", "j1")]:
            if digest[dup] != digest[orig]:
                fail(f"{dup} digest {digest[dup]} != {orig} "
                     f"digest {digest[orig]} ({cache[dup]} vs {cache[orig]})")
            if cache[dup] == "miss":
                fail(f"{dup}: exact duplicate of {orig} missed the cache")
        if cache["j3"] != "design-hit":
            fail(f"j3: expected design-hit, got {cache['j3']}")
        if cache["j6"] != "design-hit":
            fail(f"j6: expected design-hit, got {cache['j6']}")

        # Requested artifacts and rejections.
        if not terminal("j6").get("route_text"):
            fail("j6: route_text requested but absent")
        rejected = of("rejected")
        if len(rejected) != 2 or any(not e.get("reason") for e in rejected):
            fail(f"expected 2 rejections with reasons, got {rejected}")
        if not any(e.get("reason") == "duplicate_id" for e in rejected):
            fail("duplicate job id was not rejected as duplicate_id")
        if not [e for e in of("unknown_job")
                if e.get("id") == "no-such-job"]:
            fail("cancel of unknown job did not answer unknown_job")

        # Embedded per-job report (kind bgr_route) validates standalone.
        job_report = terminal("j1").get("report")
        if not job_report:
            fail("j1: report requested but absent")
        job_report_path = os.path.join(tmp, "job_report.json")
        with open(job_report_path, "w", encoding="utf-8") as f:
            json.dump(job_report, f)
        subprocess.run([sys.executable, checker, job_report_path], check=True)

        # Final daemon report: schema-valid, with the totals this session
        # deterministically produced.
        if not of("shutdown"):
            fail("no 'shutdown' event")
        subprocess.run([sys.executable, checker, metrics_path], check=True)
        with open(metrics_path, encoding="utf-8") as f:
            report = json.load(f)
        totals = report["totals"]
        # jobs_rejected counts admission rejections (the duplicate id);
        # the malformed line never reached admission — it was rejected by
        # the protocol parser and shows up only as a "rejected" event.
        expect = {"jobs_accepted": 8, "jobs_rejected": 1,
                  "jobs_completed": 7, "jobs_failed": 0, "jobs_cancelled": 1}
        for key, value in expect.items():
            if totals.get(key) != value:
                fail(f"totals.{key} = {totals.get(key)}, expected {value}")
        # 2 first-of-kind parses; every other job hits exactly one level.
        if totals["cache_misses"] != 2:
            fail(f"totals.cache_misses = {totals['cache_misses']}, "
                 f"expected 2")
        if totals["cache_hits"] != 5:
            fail(f"totals.cache_hits = {totals['cache_hits']}, expected 5")

    print("serve_smoke: OK (8 jobs, duplicate bit-identity, queued cancel, "
          "3 rejections, schema-valid reports)")


if __name__ == "__main__":
    main()

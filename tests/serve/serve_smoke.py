#!/usr/bin/env python3
"""End-to-end smoke test of the bgr_serve daemon over stdio (DESIGN.md §12).

Drives one daemon process through its full protocol surface:

  - 8 jobs across design_file / inline design text / dataset presets,
    including exact duplicates (must hit the warm caches bit-identically)
    and an options variant (must re-run on the cached parsed design);
  - a cancel of a queued job (terminal event "cancelled", never "done");
  - a duplicate job id, an unknown cancel target and a malformed line
    (each rejected with a diagnostic, daemon stays up);
  - ping/pong and an orderly shutdown (exit status 0);
  - the live admin endpoint (DESIGN.md §14): /metrics is scraped while
    the daemon is up and must be well-formed Prometheus text with the
    session's semantic counters, /healthz answers 200, /readyz answers
    "ready" while accepting;
  - per-job tracing: every lifecycle event carries a trace id, and each
    started job's id reappears in the Chrome trace's phase span names.

The per-job embedded run report and the daemon's final --metrics-out
report are both validated with tools/check_run_report.py, the captured
NDJSON stream with its --serve-events mode.

usage: serve_smoke.py <bgr_serve-binary> <check_run_report.py> <design.txt>
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import urllib.request


def fail(msg):
    print(f"serve_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


EXPOSITION_NAME_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})?$")


def scrape(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=30) as resp:
        return resp.status, resp.read().decode("utf-8")


def check_exposition(text):
    """Prometheus text-format sanity: every sample line parses (name,
    optional labels, float value), every sample's family was declared
    with # TYPE first."""
    declared = set()
    samples = 0
    for i, line in enumerate(text.splitlines()):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 3 and parts[1] == "TYPE":
                declared.add(parts[2])
            continue
        series, _, value = line.rpartition(" ")
        if not EXPOSITION_NAME_RE.match(series):
            fail(f"/metrics line {i} malformed: {line!r}")
        try:
            float(value)
        except ValueError:
            fail(f"/metrics line {i} has a non-numeric value: {line!r}")
        name = re.split(r"[{ ]", line, 1)[0]
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in declared and family not in declared:
            fail(f"/metrics line {i}: sample {name!r} has no # TYPE")
        samples += 1
    if samples == 0:
        fail("/metrics exposition has no samples")
    return samples


def sample_value(text, name, labels=""):
    needle = f"{name}{labels}" if labels else name
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        if line.startswith(needle + " ") or \
                (not labels and line.startswith(name + "{")):
            return float(line.rsplit(" ", 1)[1])
    fail(f"/metrics lacks sample {needle!r}")


def main():
    if len(sys.argv) != 4:
        fail(f"usage: {sys.argv[0]} <bgr_serve> <check_run_report.py> "
             f"<design.txt>")
    serve_bin, checker, design_path = sys.argv[1:4]
    with open(design_path, encoding="utf-8") as f:
        design_text = f.read()

    # j0/j2/j4/j6 share one design (file, file-dup, inline text, options
    # variant); j1/j3/j5/j7 share the C1P1 preset. j7 is cancelled while
    # queued; j3/j6 change the result key, so they re-route on the cached
    # parsed design instead of reusing a finished result.
    requests = [
        {"ping": True},
        {"id": "j0", "design_file": design_path},
        {"id": "j1", "dataset": "C1P1", "verify": True, "report": True},
        {"id": "j2", "design_file": design_path},
        {"id": "j3", "dataset": "C1P1", "options": {"improvement_passes": 4}},
        {"id": "j4", "design": design_text},
        {"id": "j5", "dataset": "C1P1", "verify": True, "report": True},
        {"id": "j6", "design_file": design_path, "route_text": True},
        {"id": "j7", "dataset": "C1P1"},
        {"cancel": "j7"},
        {"cancel": "no-such-job"},
        {"id": "j0", "dataset": "C1P1"},  # duplicate id -> rejected
    ]
    stdin_lines = [json.dumps(r) for r in requests]
    stdin_lines.append("{this is not json")  # malformed -> rejected

    with tempfile.TemporaryDirectory() as tmp:
        metrics_path = os.path.join(tmp, "serve_report.json")
        trace_path = os.path.join(tmp, "serve_trace.json")
        stderr_path = os.path.join(tmp, "serve_stderr.txt")
        stderr_file = open(stderr_path, "w", encoding="utf-8")
        proc = subprocess.Popen(
            [serve_bin, "--jobs", "2", "--metrics-out", metrics_path,
             "--admin-port", "0", "--trace-out", trace_path],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=stderr_file, text=True)

        events = []

        def read_event():
            line = proc.stdout.readline()
            if not line:
                fail("daemon closed stdout early")
            try:
                event = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"unparseable response line {line!r}: {e}")
            events.append(event)
            return event

        def of(name):
            return [e for e in events if e.get("event") == name]

        # The request block is tiny, so writing it before draining stdout
        # cannot fill the pipe.
        proc.stdin.write("\n".join(stdin_lines) + "\n")
        proc.stdin.flush()

        ready = read_event()
        if ready.get("event") != "ready":
            fail(f"first event is {ready.get('event')!r}, expected 'ready'")
        admin_port = ready.get("admin_port")
        if not isinstance(admin_port, int) or admin_port <= 0:
            fail(f"ready event lacks a usable admin_port: {admin_port!r}")

        # Drain until every job reached its terminal event (7 done + 1
        # queued-cancel) and the two rejections arrived.
        def terminals():
            return [e for e in events
                    if e.get("event") in ("done", "cancelled", "failed")]

        while len(terminals()) < 8 or len(of("rejected")) < 2:
            read_event()

        # ---- Live admin endpoint, scraped while the daemon is up -------
        status, health = scrape(admin_port, "/healthz")
        if status != 200 or "ok" not in health:
            fail(f"/healthz answered {status} {health!r}")
        status, readyz = scrape(admin_port, "/readyz")
        if status != 200 or "ready" not in readyz:
            fail(f"/readyz answered {status} {readyz!r} while accepting")
        status, metrics_text = scrape(admin_port, "/metrics")
        if status != 200:
            fail(f"/metrics answered {status}")
        n_samples = check_exposition(metrics_text)
        # The session's semantic counters, live, with their scope label.
        for name, want in [("bgr_serve_jobs_accepted", 8),
                           ("bgr_serve_jobs_rejected", 1),
                           ("bgr_serve_jobs_completed", 7),
                           ("bgr_serve_cache_misses", 2),
                           ("bgr_serve_cache_hits", 5)]:
            got = sample_value(metrics_text, name, '{scope="semantic"}')
            if got != want:
                fail(f"/metrics {name} = {got}, expected {want}")
        # Gauges and rolling windows are present and nondeterministic.
        for name in ("bgr_serve_inflight_jobs", "bgr_serve_cache_entries",
                     "bgr_serve_cache_bytes", "bgr_exec_pool_workers"):
            if name not in metrics_text:
                fail(f"/metrics lacks gauge family {name}")
        for q in ('quantile="0.5"', 'quantile="0.9"', 'quantile="0.99"'):
            if f"bgr_serve_e2e_us{{{q}" not in metrics_text.replace(
                    'scope="nondeterministic",', ""):
                fail(f"/metrics lacks bgr_serve_e2e_us {q}")
        if sample_value(metrics_text, "bgr_serve_e2e_us_count") != 7:
            fail("rolling e2e window did not record the 7 completed jobs")

        # ---- Orderly shutdown ------------------------------------------
        proc.stdin.write(json.dumps({"shutdown": True}) + "\n")
        proc.stdin.close()
        while not of("shutdown"):
            read_event()
        code = proc.wait(timeout=120)
        stderr_file.close()
        if code != 0:
            with open(stderr_path, encoding="utf-8") as f:
                sys.stderr.write(f.read())
            fail(f"daemon exited with status {code}")

        def terminal(job_id):
            found = [e for e in events
                     if e.get("id") == job_id and
                     e.get("event") in ("done", "cancelled", "failed")]
            if len(found) != 1:
                fail(f"{job_id}: expected exactly one terminal event, "
                     f"got {[e.get('event') for e in found]}")
            return found[0]

        if not of("pong"):
            fail("no 'pong' for ping")
        if len(of("accepted")) != 8:
            fail(f"expected 8 accepted jobs, got {len(of('accepted'))}")

        # Terminal statuses: j0..j6 done, j7 cancelled before running.
        for job_id in [f"j{i}" for i in range(7)]:
            if terminal(job_id)["event"] != "done":
                fail(f"{job_id}: expected 'done', got "
                     f"{terminal(job_id)['event']}")
        if terminal("j7")["event"] != "cancelled":
            fail(f"j7: expected 'cancelled', got {terminal('j7')['event']}")
        if [e for e in events
                if e.get("id") == "j7" and e.get("event") == "started"]:
            fail("j7 was started despite being cancelled while queued")

        # Bit-identity: duplicates must reproduce the original digest, the
        # options variant must differ (it routes with more passes).
        digest = {j: terminal(j)["result"]["digest"] for j in
                  ["j0", "j1", "j2", "j3", "j4", "j5", "j6"]}
        cache = {j: terminal(j)["result"]["cache"] for j in digest}
        for dup, orig in [("j2", "j0"), ("j4", "j0"), ("j5", "j1")]:
            if digest[dup] != digest[orig]:
                fail(f"{dup} digest {digest[dup]} != {orig} "
                     f"digest {digest[orig]} ({cache[dup]} vs {cache[orig]})")
            if cache[dup] == "miss":
                fail(f"{dup}: exact duplicate of {orig} missed the cache")
        if cache["j3"] != "design-hit":
            fail(f"j3: expected design-hit, got {cache['j3']}")
        if cache["j6"] != "design-hit":
            fail(f"j6: expected design-hit, got {cache['j6']}")

        # Requested artifacts and rejections.
        if not terminal("j6").get("route_text"):
            fail("j6: route_text requested but absent")
        rejected = of("rejected")
        if len(rejected) != 2 or any(not e.get("reason") for e in rejected):
            fail(f"expected 2 rejections with reasons, got {rejected}")
        if not any(e.get("reason") == "duplicate_id" for e in rejected):
            fail("duplicate job id was not rejected as duplicate_id")
        if not [e for e in of("unknown_job")
                if e.get("id") == "no-such-job"]:
            fail("cancel of unknown job did not answer unknown_job")

        # Embedded per-job report (kind bgr_route) validates standalone.
        job_report = terminal("j1").get("report")
        if not job_report:
            fail("j1: report requested but absent")
        job_report_path = os.path.join(tmp, "job_report.json")
        with open(job_report_path, "w", encoding="utf-8") as f:
            json.dump(job_report, f)
        subprocess.run([sys.executable, checker, job_report_path], check=True)

        # Final daemon report: schema-valid, with the totals this session
        # deterministically produced; the captured NDJSON stream passes
        # the --serve-events checks (trace ids, ts_us/seq ordering).
        events_path = os.path.join(tmp, "serve_events.ndjson")
        with open(events_path, "w", encoding="utf-8") as f:
            f.write("\n".join(json.dumps(e) for e in events) + "\n")
        subprocess.run([sys.executable, checker, metrics_path,
                        "--serve-events", events_path,
                        "--trace", trace_path], check=True)
        with open(metrics_path, encoding="utf-8") as f:
            report = json.load(f)
        totals = report["totals"]
        # jobs_rejected counts admission rejections (the duplicate id);
        # the malformed line never reached admission — it was rejected by
        # the protocol parser and shows up only as a "rejected" event.
        expect = {"jobs_accepted": 8, "jobs_rejected": 1,
                  "jobs_completed": 7, "jobs_failed": 0, "jobs_cancelled": 1}
        for key, value in expect.items():
            if totals.get(key) != value:
                fail(f"totals.{key} = {totals.get(key)}, expected {value}")
        # 2 first-of-kind parses; every other job hits exactly one level.
        if totals["cache_misses"] != 2:
            fail(f"totals.cache_misses = {totals['cache_misses']}, "
                 f"expected 2")
        if totals["cache_hits"] != 5:
            fail(f"totals.cache_hits = {totals['cache_hits']}, expected 5")

        # ---- Trace correlation -----------------------------------------
        # Every started job's trace id must appear in the Chrome trace's
        # span names ("job@t-...", "route@t-..."); j7 never started, so
        # its id must not.
        with open(trace_path, encoding="utf-8") as f:
            span_names = [e.get("name", "")
                          for e in json.load(f)["traceEvents"]]
        started_traces = {e["trace"] for e in of("started")}
        if not started_traces:
            fail("no started events carried trace ids")
        for trace_id in started_traces:
            if not any(name.endswith("@" + trace_id) for name in span_names):
                fail(f"trace id {trace_id} has no span in {trace_path}")
        j7_trace = terminal("j7")["trace"]
        if any(name.endswith("@" + j7_trace) for name in span_names):
            fail("queued-cancelled j7 has phase spans in the trace")
        # Phase spans carry the same correlator as the job span.
        some_trace = sorted(started_traces)[0]
        for phase in ("job", "parse"):
            if f"{phase}@{some_trace}" not in span_names:
                fail(f"no '{phase}@{some_trace}' span in the trace")

    print("serve_smoke: OK (8 jobs, duplicate bit-identity, queued cancel, "
          "3 rejections, schema-valid reports, live /metrics scrape "
          f"({n_samples} samples), trace ids correlated)")


if __name__ == "__main__":
    main()

#include "bgr/timing/analyzer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace bgr {
namespace {

using testutil::ChainCircuit;

PathConstraint constraint_a_to_d(const ChainCircuit& c, double limit) {
  PathConstraint pc;
  pc.name = "A2D";
  pc.sources = {c.pad_a};
  pc.sinks = {c.d_term};
  pc.limit_ps = limit;
  return pc;
}

TEST(Penalty, MatchesEquation4) {
  // x >= 0: 1 - x/δ. x < 0: exp(-x/δ).
  EXPECT_DOUBLE_EQ(penalty(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(penalty(50.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(penalty(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(penalty(-100.0, 100.0), std::exp(1.0));
  // Monotone decreasing in margin across the boundary.
  EXPECT_GT(penalty(-1.0, 100.0), penalty(0.0, 100.0));
  EXPECT_GT(penalty(0.0, 100.0), penalty(1.0, 100.0));
}

TEST(Analyzer, MarginMatchesHandComputation) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  TimingAnalyzer an(dg, {constraint_a_to_d(c, 200.0)});
  EXPECT_NEAR(an.margin_ps(ConstraintId{0}),
              200.0 - ChainCircuit::kPathADelayPs, 1e-9);
  EXPECT_NEAR(an.critical_delay_ps(ConstraintId{0}),
              ChainCircuit::kPathADelayPs, 1e-9);
}

TEST(Analyzer, ConstraintMembership) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  TimingAnalyzer an(dg, {constraint_a_to_d(c, 200.0)});
  const ConstraintId p{0};
  // Nets on A→D paths: a, n0, n1 (b joins at g1 but cannot reach from A...
  // b's arcs do not lie between A and D).
  const auto& nets = an.nets_of_constraint(p);
  auto has = [&](NetId n) {
    return std::find(nets.begin(), nets.end(), n) != nets.end();
  };
  EXPECT_TRUE(has(c.a));
  EXPECT_TRUE(has(c.n0));
  EXPECT_TRUE(has(c.n1));
  EXPECT_FALSE(has(c.b));
  EXPECT_FALSE(has(c.q));
  EXPECT_FALSE(has(c.ck));
  EXPECT_EQ(an.constraints_of_net(c.n0), (std::vector<ConstraintId>{p}));
  EXPECT_TRUE(an.constraints_of_net(c.q).empty());
}

TEST(Analyzer, UpdateForNetTracksCapChange) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  TimingAnalyzer an(dg, {constraint_a_to_d(c, 200.0)});
  const double m0 = an.margin_ps(ConstraintId{0});
  dg.set_net_cap(c.n0, 0.01);  // +2.6 ps on the path
  an.update_for_net(c.n0);
  EXPECT_NEAR(an.margin_ps(ConstraintId{0}), m0 - 2.6, 1e-9);
}

TEST(Analyzer, LocalMarginEquation2) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  TimingAnalyzer an(dg, {constraint_a_to_d(c, 200.0)});
  const ConstraintId p{0};
  const double m = an.margin_ps(p);
  // n1 lies on the critical path of the constraint: raising its arc delay
  // by Δ lowers LM by exactly Δ.
  const double d_now = dg.net_arc_delay(c.n1);
  EXPECT_NEAR(an.local_margin_ps(p, c.n1, d_now), m, 1e-9);
  EXPECT_NEAR(an.local_margin_ps(p, c.n1, d_now + 7.0), m - 7.0, 1e-9);
  // Lowering the delay cannot raise LM above M (max(0, ·) clamp).
  EXPECT_NEAR(an.local_margin_ps(p, c.n1, d_now - 5.0), m, 1e-9);
}

TEST(Analyzer, EvaluateCountsViolations) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  // Tight limit: margin is small.
  TimingAnalyzer an(dg, {constraint_a_to_d(c, 180.0)});
  const double margin = an.margin_ps(ConstraintId{0});
  ASSERT_GT(margin, 0.0);
  ASSERT_LT(margin, 5.0);
  // A cap increase on n1 beyond the margin flips C_d to 1 and Gl > 0.
  const double td = 300.0;  // NOR2 output Td
  const double cap_big = (margin + 10.0) / td;
  const DelayCriteria dc = an.evaluate(c.n1, cap_big);
  EXPECT_EQ(dc.critical_count, 1);
  EXPECT_GT(dc.global_delay, 0.0);
  EXPECT_GT(dc.local_delay, 0.0);
  // A tiny increase keeps C_d at 0 but still penalises Gl.
  const DelayCriteria small = an.evaluate(c.n1, margin / (10.0 * td));
  EXPECT_EQ(small.critical_count, 0);
  EXPECT_GT(small.global_delay, 0.0);
  EXPECT_LT(small.global_delay, dc.global_delay);
}

TEST(Analyzer, EvaluateOutsideConstraintsIsZero) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  TimingAnalyzer an(dg, {constraint_a_to_d(c, 200.0)});
  const DelayCriteria dc = an.evaluate(c.q, 5.0);
  EXPECT_EQ(dc.critical_count, 0);
  EXPECT_DOUBLE_EQ(dc.global_delay, 0.0);
  EXPECT_DOUBLE_EQ(dc.local_delay, 0.0);
}

TEST(Analyzer, CriticalPathNets) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  TimingAnalyzer an(dg, {constraint_a_to_d(c, 200.0)});
  const auto nets = an.critical_path_nets(ConstraintId{0});
  // The single A→D path: nets a, n0, n1.
  EXPECT_EQ(nets.size(), 3u);
}

TEST(Analyzer, ViolatedAndWorstMargin) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  TimingAnalyzer an(dg, {constraint_a_to_d(c, 150.0),
                         constraint_a_to_d(c, 400.0)});
  EXPECT_EQ(an.violated().size(), 1u);
  EXPECT_NEAR(an.worst_margin_ps(), 150.0 - ChainCircuit::kPathADelayPs, 1e-9);
}

TEST(Analyzer, NetSlacksAscendingWithCriticality) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  TimingAnalyzer an(dg, {constraint_a_to_d(c, 200.0)});
  const auto slacks = an.net_slacks();
  // Constraint nets share the single path: identical slack = margin.
  EXPECT_NEAR(slacks[c.n0], an.margin_ps(ConstraintId{0}), 1e-9);
  EXPECT_NEAR(slacks[c.n1], an.margin_ps(ConstraintId{0}), 1e-9);
  // Unconstrained nets have infinite slack.
  EXPECT_TRUE(std::isinf(slacks[c.q]));
}

}  // namespace
}  // namespace bgr

#include "bgr/io/ascii_art.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "bgr/metrics/experiment.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

TEST(AsciiArt, PlacementMapShape) {
  const Dataset ds = generate_circuit(testutil::small_spec(91));
  std::ostringstream oss;
  render_placement(oss, ds.netlist, ds.placement, 80);
  const std::string out = oss.str();
  // One line per row plus the two pad lines.
  std::size_t lines = 0;
  for (const char ch : out) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(ds.placement.row_count()) + 2);
  EXPECT_NE(out.find('#'), std::string::npos);  // logic cells
  EXPECT_NE(out.find('.'), std::string::npos);  // feed cells
}

TEST(AsciiArt, PadMarksOnlyWhenAssigned) {
  const Dataset ds = generate_circuit(testutil::small_spec(92));
  std::ostringstream before;
  render_placement(before, ds.netlist, ds.placement, 80);
  EXPECT_EQ(before.str().find('O'), std::string::npos);

  Placement assigned = ds.placement;
  assign_external_pins(ds.netlist, assigned);
  std::ostringstream after;
  render_placement(after, ds.netlist, assigned, 80);
  EXPECT_NE(after.str().find('O'), std::string::npos);
}

TEST(AsciiArt, CongestionChartCoversAllChannels) {
  const Dataset ds = generate_circuit(testutil::small_spec(93));
  Netlist nl = ds.netlist;
  GlobalRouter router(nl, ds.placement, ds.tech, ds.constraints,
                      RouterOptions{});
  (void)router.run();
  std::ostringstream oss;
  render_congestion(oss, router, 60);
  const std::string out = oss.str();
  for (std::int32_t c = 0; c < router.placement().channel_count(); ++c) {
    EXPECT_NE(out.find("chan"), std::string::npos);
    EXPECT_NE(out.find("C_M="), std::string::npos);
  }
  std::size_t lines = 0;
  for (const char ch : out) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(router.placement().channel_count()));
}

}  // namespace
}  // namespace bgr

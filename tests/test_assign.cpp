#include "bgr/route/assign.hpp"

#include <gtest/gtest.h>

#include <set>

#include "bgr/timing/analyzer.hpp"
#include "bgr/timing/delay_graph.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

using testutil::ChainCircuit;

IdVector<NetId, double> flat_order(const Netlist& nl) {
  return IdVector<NetId, double>(static_cast<std::size_t>(nl.net_count()), 0.0);
}

TEST(Assign, ExternalPinsLandInWindowsUniquely) {
  ChainCircuit c;
  Placement pl = c.make_placement();
  assign_external_pins(c.nl, pl);
  std::set<std::pair<bool, std::int32_t>> used;
  for (const auto& [pad, site] : pl.pad_sites()) {
    (void)pad;
    ASSERT_TRUE(site.assigned());
    EXPECT_TRUE(site.window.contains(site.assigned_x));
    EXPECT_TRUE(used.emplace(site.top, site.assigned_x).second)
        << "pad column reused";
  }
}

TEST(Assign, FeedthroughColumnsAreFreeAndUnique) {
  ChainCircuit c;
  Placement pl = c.make_placement();
  assign_external_pins(c.nl, pl);
  const auto outcome =
      assign_feedthroughs(c.nl, pl, flat_order(c.nl), /*respect_flags=*/false);
  EXPECT_TRUE(outcome.complete());
  std::set<std::pair<std::int32_t, std::int32_t>> used;  // (row, col)
  for (const NetId n : c.nl.nets()) {
    const std::int32_t w = net_group_width(c.nl, n);
    for (const auto& [row, col] : outcome.assignment.rows(n)) {
      for (std::int32_t k = 0; k < w; ++k) {
        EXPECT_FALSE(pl.column_blocked(RowId{row}, col + k));
        EXPECT_TRUE(used.emplace(row, col + k).second)
            << "feedthrough column reused at row " << row << " col "
            << col + k;
      }
    }
  }
}

TEST(Assign, RequiredRowsAlwaysCoveredWhenComplete) {
  ChainCircuit c;
  Placement pl = c.make_placement();
  assign_external_pins(c.nl, pl);
  const auto outcome =
      assign_feedthroughs(c.nl, pl, flat_order(c.nl), false);
  ASSERT_TRUE(outcome.complete());
  for (const NetId n : c.nl.nets()) {
    if (net_group_width(c.nl, n) == 0) continue;
    const NetSpan span = net_span(c.nl, pl, n);
    for (std::int32_t r = span.row_lo(); r <= span.row_hi(); ++r) {
      if (span.row_required(r)) {
        EXPECT_GE(outcome.assignment.column(n, r), 0)
            << "net " << c.nl.net(n).name << " missing required row " << r;
      }
    }
  }
}

TEST(Assign, FlagsRestrictWidthClasses) {
  Netlist nl{Library::make_ecl_default()};
  // Two cells on separate rows joined by a 2-pitch net: crossing required.
  const CellTypeId buf = nl.library().find("BUF1");
  const CellId a = nl.add_cell("a", buf);
  const CellId b = nl.add_cell("b", buf);
  const NetId n = nl.add_net("n", 2);
  (void)nl.connect(n, a, nl.cell_type(a).find_pin("O"));
  (void)nl.connect(n, b, nl.cell_type(b).find_pin("I0"));
  Placement pl(3, 8);
  pl.place(nl, a, RowId{0}, 0);
  pl.place(nl, b, RowId{2}, 0);
  // Flag column 6 of row 1 as width-1: the 2-pitch group must avoid it.
  pl.set_column_flag(RowId{1}, 6, 1);
  const auto outcome = assign_feedthroughs(
      nl, pl, IdVector<NetId, double>(1, 0.0), /*respect_flags=*/true);
  ASSERT_TRUE(outcome.complete());
  const std::int32_t col = outcome.assignment.column(n, 1);
  ASSERT_GE(col, 0);
  EXPECT_TRUE(col + 1 < 6 || col > 6);
}

TEST(Assign, DifferentialPairGetsTwoPitchGroup) {
  Netlist nl{Library::make_ecl_default()};
  const CellTypeId ddrv = nl.library().find("DDRV");
  const CellTypeId drcv = nl.library().find("DRCV");
  const CellId drv = nl.add_cell("drv", ddrv);
  const CellId rcv = nl.add_cell("rcv", drcv);
  const NetId nt = nl.add_net("nt");
  const NetId nc = nl.add_net("nc");
  auto pin = [&](CellId c, const char* p) { return nl.cell_type(c).find_pin(p); };
  (void)nl.connect(nt, drv, pin(drv, "OT"));
  (void)nl.connect(nc, drv, pin(drv, "OC"));
  (void)nl.connect(nt, rcv, pin(rcv, "IT"));
  (void)nl.connect(nc, rcv, pin(rcv, "IC"));
  nl.make_differential(nt, nc);
  EXPECT_EQ(net_group_width(nl, nt), 2);
  EXPECT_EQ(net_group_width(nl, nc), 0);
  Placement pl(3, 12);
  pl.place(nl, drv, RowId{0}, 0);
  pl.place(nl, rcv, RowId{2}, 0);
  const auto outcome = assign_feedthroughs(
      nl, pl, IdVector<NetId, double>(2, 0.0), false);
  ASSERT_TRUE(outcome.complete());
  // Primary holds the group; the shadow rides one column to the right.
  EXPECT_GE(outcome.assignment.column(nt, 1), 0);
  EXPECT_TRUE(outcome.assignment.rows(nc).empty());
}

TEST(Assign, PipelineInsertsFeedsWhenStarved) {
  // A fully blocked row between two connected cells forces feed insertion.
  Netlist nl{Library::make_ecl_default()};
  const CellTypeId buf = nl.library().find("BUF1");
  const CellTypeId nor3 = nl.library().find("NOR3");
  const CellId a = nl.add_cell("a", buf);
  const CellId b = nl.add_cell("b", buf);
  const NetId n = nl.add_net("n");
  (void)nl.connect(n, a, nl.cell_type(a).find_pin("O"));
  (void)nl.connect(n, b, nl.cell_type(b).find_pin("I0"));
  Placement pl(3, 8);
  pl.place(nl, a, RowId{0}, 0);
  pl.place(nl, b, RowId{2}, 0);
  // Block row 1 completely with NOR3 cells (width 4).
  pl.place(nl, nl.add_cell("x0", nor3), RowId{1}, 0);
  pl.place(nl, nl.add_cell("x1", nor3), RowId{1}, 4);
  const auto slacks = IdVector<NetId, double>(1, 0.0);
  const auto result = run_assignment_pipeline(nl, pl, slacks);
  EXPECT_GT(result.feed_cells_added, 0);
  EXPECT_GT(result.widen_pitches, 0);
  EXPECT_GE(result.assignment.column(n, 1), 0);
  pl.validate(nl);
}

TEST(Assign, OrderPrioritisesCriticalNets) {
  // Two nets compete for a single free column in the shared row; the one
  // with the smaller order value must win it.
  Netlist nl{Library::make_ecl_default()};
  const CellTypeId buf = nl.library().find("BUF1");
  const CellId a0 = nl.add_cell("a0", buf);
  const CellId b0 = nl.add_cell("b0", buf);
  const CellId a1 = nl.add_cell("a1", buf);
  const CellId b1 = nl.add_cell("b1", buf);
  const NetId n0 = nl.add_net("n0");
  const NetId n1 = nl.add_net("n1");
  auto pin = [&](CellId c, const char* p) { return nl.cell_type(c).find_pin(p); };
  (void)nl.connect(n0, a0, pin(a0, "O"));
  (void)nl.connect(n0, b0, pin(b0, "I0"));
  (void)nl.connect(n1, a1, pin(a1, "O"));
  (void)nl.connect(n1, b1, pin(b1, "I0"));
  Placement pl(3, 9);
  pl.place(nl, a0, RowId{0}, 0);
  pl.place(nl, a1, RowId{0}, 4);
  pl.place(nl, b0, RowId{2}, 0);
  pl.place(nl, b1, RowId{2}, 4);
  // Row 1: one free column at 8 (two NOR3-wide blockers at 0..7).
  const CellTypeId nor3 = nl.library().find("NOR3");
  pl.place(nl, nl.add_cell("x0", nor3), RowId{1}, 0);
  pl.place(nl, nl.add_cell("x1", nor3), RowId{1}, 4);
  IdVector<NetId, double> order(2, 0.0);
  order[n0] = 5.0;  // less critical
  order[n1] = 1.0;  // more critical → assigned first
  const auto outcome = assign_feedthroughs(nl, pl, order, false);
  EXPECT_EQ(outcome.assignment.column(n1, 1), 8);
  EXPECT_LT(outcome.assignment.column(n0, 1), 0);
  EXPECT_FALSE(outcome.complete());
}

}  // namespace
}  // namespace bgr

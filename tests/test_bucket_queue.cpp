// Unit and property tests for the dial (bucket) queue behind the A* path
// search, plus the admissibility/consistency contract of the goal
// heuristic against exact Dijkstra distances on real routing graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bgr/common/rng.hpp"
#include "bgr/fuzz/spec_sampler.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/route/path_search.hpp"
#include "bgr/route/router.hpp"

namespace bgr {
namespace {

TEST(BucketQueue, PopsInNondecreasingKeyOrder) {
  Rng rng(7);
  BucketQueue q;
  q.reset(1.0);
  // A monotone producer: keys never fall below the current cursor by more
  // than the clamp can absorb. Mirrors the search's push pattern.
  std::int64_t floor = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t key = floor + rng.uniform(0, 300);
    q.push(key, static_cast<std::int32_t>(i), static_cast<double>(key));
    if (rng.bernoulli(0.6) && !q.empty()) {
      const std::int64_t seen = q.current_key();
      EXPECT_GE(seen, floor);
      floor = seen;
      (void)q.pop();
    }
  }
  std::int64_t last = std::numeric_limits<std::int64_t>::min();
  while (!q.empty()) {
    const std::int64_t key = q.current_key();
    EXPECT_GE(key, last);
    last = key;
    (void)q.pop();
  }
  EXPECT_EQ(q.size(), 0);
}

TEST(BucketQueue, BelowCursorPushClampsToCurrentBucket) {
  BucketQueue q;
  q.reset(1.0);
  q.push(10, 1, 10.0);
  EXPECT_EQ(q.current_key(), 10);
  (void)q.pop();
  // Quantization disorder: a key below the cursor must land in the
  // current bucket, not behind it (where it would never be popped).
  q.push(5, 2, 5.0);
  EXPECT_EQ(q.current_key(), 10);
  const BucketQueue::Entry e = q.pop();
  EXPECT_EQ(e.vertex, 2);
  EXPECT_EQ(e.g, 5.0);
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, LifoWithinOneBucket) {
  BucketQueue q;
  q.reset(2.0);
  q.push(q.key_for(8.0), 1, 8.0);
  q.push(q.key_for(8.4), 2, 8.4);  // same bucket at quantum 2.0
  EXPECT_EQ(q.pop().vertex, 2);
  EXPECT_EQ(q.pop().vertex, 1);
}

TEST(BucketQueue, WraparoundGrowPreservesEntriesAndOrder) {
  BucketQueue q;
  q.reset(1.0);
  // Spread far beyond the initial ring so grow() must rehash live
  // entries, some of which sit "behind" the wrap point. The first push
  // anchors the cursor (like the source's f in A*), so it must carry the
  // minimum key or later smaller keys would clamp up to it.
  std::vector<std::int64_t> keys{0};
  q.push(0, 500, 0.0);
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t key = rng.uniform(0, 5000);
    keys.push_back(key);
    q.push(key, static_cast<std::int32_t>(i), static_cast<double>(key));
  }
  EXPECT_EQ(q.size(), 501);
  EXPECT_EQ(q.pushes(), 501);
  // Power-of-two ring, large enough for the key span.
  EXPECT_GE(q.ring_size(), 5001 - *std::min_element(keys.begin(), keys.end()));
  EXPECT_EQ(q.ring_size() & (q.ring_size() - 1), 0);

  std::sort(keys.begin(), keys.end());
  std::size_t i = 0;
  while (!q.empty()) {
    const BucketQueue::Entry e = q.pop();
    ASSERT_LT(i, keys.size());
    // Entries clamp to the cursor only when pushed late; here all pushes
    // preceded all pops, so the drain order is exactly the sorted keys.
    EXPECT_EQ(static_cast<std::int64_t>(e.g), keys[i]) << i;
    ++i;
  }
  EXPECT_EQ(i, keys.size());
}

TEST(BucketQueue, ResetDiscardsLeftoverEntries) {
  BucketQueue q;
  q.reset(1.0);
  q.push(3, 1, 3.0);
  q.push(900, 2, 900.0);  // forces a grow; both entries live
  (void)q.pop();
  // One entry (vertex 2) still queued: an A* search that terminates early
  // leaves the far buckets populated. reset() must clear them.
  q.reset(1.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pushes(), 0);
  EXPECT_EQ(q.buckets_touched(), 0);
  q.push(1, 3, 1.0);
  EXPECT_EQ(q.pop().vertex, 3);
  EXPECT_TRUE(q.empty());
}

TEST(PathSearchScratch, ReusedArenasForgetOldLabels) {
  PathSearchScratch scratch;
  EXPECT_FALSE(scratch.begin(8, 8));  // first use allocates
  scratch.set_dist(3, 1.5);
  scratch.set_parent_edge(3, 2);
  scratch.mark_edge(5);
  scratch.mark_target(4);
  EXPECT_TRUE(scratch.begin(8, 8));  // same size: pure epoch bump
  EXPECT_EQ(scratch.dist(3), PathSearchScratch::kInf);
  EXPECT_EQ(scratch.parent_edge(3), SmallGraph::kNone);
  EXPECT_FALSE(scratch.edge_marked(5));
  EXPECT_FALSE(scratch.is_target(4));
  EXPECT_FALSE(scratch.begin(16, 8));  // growth reported
}

/// The heuristic contract that makes A* exact (DESIGN.md §11): for every
/// vertex, h[v] must lower-bound — bitwise `<=` — the exact shortest
/// distance to the nearest non-driver terminal, and respect the triangle
/// inequality along every alive edge up to the deliberate 1e-9 shave.
void check_heuristic_contract(const RoutingGraph& g) {
  const SmallGraph& sg = g.graph();
  const GoalHeuristic heuristic = build_goal_heuristic(
      sg, g.driver_vertex(), g.terminal_vertices());
  EXPECT_GT(heuristic.quantum, 0.0);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> exact(static_cast<std::size_t>(sg.vertex_count()), kInf);
  for (const std::int32_t tv : g.terminal_vertices()) {
    if (tv == g.driver_vertex()) continue;
    const auto sp = sg.dijkstra(tv);
    for (std::size_t v = 0; v < exact.size(); ++v) {
      exact[v] = std::min(exact[v], sp.dist[v]);
    }
  }

  for (std::int32_t v = 0; v < sg.vertex_count(); ++v) {
    if (!sg.vertex_alive(v)) continue;
    const double h = heuristic.h[static_cast<std::size_t>(v)];
    if (exact[static_cast<std::size_t>(v)] == kInf) continue;
    ASSERT_LE(h, exact[static_cast<std::size_t>(v)]) << "vertex " << v;
    // Non-driver terminals are goals: exactly zero, shave included.
    // (0 * (1 - 1e-9) == 0.)
  }
  for (const std::int32_t tv : g.terminal_vertices()) {
    if (tv == g.driver_vertex()) continue;
    EXPECT_EQ(heuristic.h[static_cast<std::size_t>(tv)], 0.0);
  }

  // Consistency modulo the shave: h[u] <= h[v] + w within one part in 1e9.
  for (std::int32_t e = 0; e < sg.edge_count(); ++e) {
    if (!sg.edge_alive(e)) continue;
    const SmallGraph::Edge& ed = sg.edge(e);
    const double hu = heuristic.h[static_cast<std::size_t>(ed.u)];
    const double hv = heuristic.h[static_cast<std::size_t>(ed.v)];
    if (hu == kInf || hv == kInf) {
      EXPECT_EQ(hu, hv);  // goal reachability is a component property
      continue;
    }
    const double slack = 1e-9 * std::max(1.0, std::max(hu, hv));
    EXPECT_LE(hu, hv + ed.weight + slack) << "edge " << e;
    EXPECT_LE(hv, hu + ed.weight + slack) << "edge " << e;
  }
}

TEST(GoalHeuristic, AdmissibleAndConsistentOnSampledDesigns) {
  for (const std::uint64_t seed : {2, 4, 6, 9, 12, 17, 23, 31, 41, 47}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Dataset design = generate_circuit(sample_spec(seed));

    // Capture each net's graph in live mid-routing states: the observer
    // fires after real deletions, so the contract is checked on the
    // degenerate shapes (pruned branches, near-tree graphs) that a
    // freshly built G_r(n) never shows.
    std::unique_ptr<GlobalRouter> router;
    std::int64_t checked = 0;
    RouterOptions options;
    options.deletion_observer = [&](NetId net, std::int32_t) {
      if (::testing::Test::HasFatalFailure()) return;
      if (++checked > 12) return;
      check_heuristic_contract(router->net_graph(net));
    };
    router = std::make_unique<GlobalRouter>(design.netlist,
                                            std::move(design.placement),
                                            design.tech, design.constraints,
                                            options);
    (void)router->run();
    EXPECT_GT(checked, 0) << "observer never fired (seed " << seed << ")";
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace bgr

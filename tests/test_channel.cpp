#include "bgr/channel/channel_router.hpp"

#include <gtest/gtest.h>

#include "bgr/common/rng.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

ChannelSegment seg(std::int32_t lo, std::int32_t hi, std::int32_t width = 1) {
  ChannelSegment s;
  s.net = NetId{0};
  s.width = width;
  s.span = IntInterval{lo, hi};
  return s;
}

bool assignment_feasible(const std::vector<ChannelSegment>& segments,
                         std::int32_t tracks) {
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const ChannelSegment& a = segments[i];
    if (a.track < 1 || a.track + a.width - 1 > tracks) return false;
    for (std::size_t j = i + 1; j < segments.size(); ++j) {
      const ChannelSegment& b = segments[j];
      const bool tracks_overlap = a.track < b.track + b.width &&
                                  b.track < a.track + a.width;
      if (tracks_overlap && a.span.overlaps(b.span)) return false;
    }
  }
  return true;
}

TEST(LeftEdge, DisjointIntervalsShareTrack) {
  std::vector<ChannelSegment> segs{seg(0, 3), seg(5, 9), seg(11, 12)};
  EXPECT_EQ(left_edge_assign(segs), 1);
  for (const auto& s : segs) EXPECT_EQ(s.track, 1);
}

TEST(LeftEdge, OverlapForcesSecondTrack) {
  std::vector<ChannelSegment> segs{seg(0, 5), seg(3, 9)};
  EXPECT_EQ(left_edge_assign(segs), 2);
  EXPECT_TRUE(assignment_feasible(segs, 2));
}

TEST(LeftEdge, TouchingColumnsConflict) {
  // Sharing column 5 requires separate tracks.
  std::vector<ChannelSegment> segs{seg(0, 5), seg(5, 9)};
  EXPECT_EQ(left_edge_assign(segs), 2);
}

TEST(LeftEdge, AchievesDensityForUnitWidths) {
  Rng rng(77);
  for (int round = 0; round < 30; ++round) {
    std::vector<ChannelSegment> segs;
    const int n = rng.uniform_i32(1, 40);
    for (int i = 0; i < n; ++i) {
      const auto a = rng.uniform_i32(0, 60);
      segs.push_back(seg(a, a + rng.uniform_i32(0, 20)));
    }
    // Density by sweep.
    std::map<std::int32_t, std::int32_t> delta;
    for (const auto& s : segs) {
      delta[s.span.lo] += 1;
      delta[s.span.hi + 1] -= 1;
    }
    std::int32_t density = 0;
    std::int32_t run = 0;
    for (const auto& [x, d] : delta) {
      run += d;
      density = std::max(density, run);
    }
    const auto tracks = left_edge_assign(segs);
    EXPECT_EQ(tracks, density);
    EXPECT_TRUE(assignment_feasible(segs, tracks));
  }
}

TEST(LeftEdge, MultiPitchOccupiesAdjacentTracks) {
  std::vector<ChannelSegment> segs{seg(0, 9, 2), seg(2, 5, 1)};
  const auto tracks = left_edge_assign(segs);
  EXPECT_EQ(tracks, 3);
  EXPECT_TRUE(assignment_feasible(segs, tracks));
}

TEST(ImproveTracks, MovesSegmentTowardTaps) {
  std::vector<ChannelSegment> segs{seg(0, 5), seg(10, 15)};
  const auto tracks = left_edge_assign(segs);
  ASSERT_EQ(tracks, 1);
  // Force a 4-track channel and a top-entering tap on the first segment.
  segs[0].taps.push_back(ChannelTap{2, /*from_top=*/true});
  segs[1].taps.push_back(ChannelTap{12, /*from_top=*/false});
  const auto moves = improve_track_assignment(segs, 4);
  EXPECT_GT(moves, 0);
  EXPECT_EQ(segs[0].track, 4);  // hugs the top edge
  EXPECT_EQ(segs[1].track, 1);  // stays at the bottom
  EXPECT_TRUE(assignment_feasible(segs, 4));
}

TEST(ImproveTracks, KeepsFeasibilityOnRandomInput) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    std::vector<ChannelSegment> segs;
    const int n = rng.uniform_i32(2, 30);
    for (int i = 0; i < n; ++i) {
      const auto a = rng.uniform_i32(0, 50);
      auto s = seg(a, a + rng.uniform_i32(0, 15), rng.uniform_i32(1, 2));
      const int taps = rng.uniform_i32(0, 3);
      for (int t = 0; t < taps; ++t) {
        s.taps.push_back(ChannelTap{rng.uniform_i32(s.span.lo, s.span.hi),
                                    rng.bernoulli(0.5)});
      }
      segs.push_back(s);
    }
    const auto tracks = left_edge_assign(segs);
    ASSERT_TRUE(assignment_feasible(segs, tracks));
    auto cost = [&](const std::vector<ChannelSegment>& v) {
      std::int64_t total = 0;
      for (const auto& s : v) {
        for (const auto& tap : s.taps) {
          total += tap.from_top ? (tracks + 1 - s.track) : s.track;
        }
      }
      return total;
    };
    const auto before = cost(segs);
    (void)improve_track_assignment(segs, tracks);
    EXPECT_TRUE(assignment_feasible(segs, tracks));
    EXPECT_LE(cost(segs), before);
  }
}

/// Full channel stage on a routed design.
TEST(ChannelStage, LengthsAndAreaConsistent) {
  const Dataset ds = generate_circuit(testutil::small_spec(5));
  Netlist nl = ds.netlist;
  GlobalRouter router(nl, ds.placement, ds.tech, ds.constraints,
                      RouterOptions{});
  (void)router.run();
  ChannelStage stage(router);
  stage.run();
  double base_total = 0.0;
  for (const NetId n : nl.nets()) {
    const double detailed = stage.net_detailed_length_um(n);
    const double base = router.net_length_um(n);
    EXPECT_GE(detailed + 1e-9, base) << "verticals cannot be negative";
    base_total += base;
  }
  EXPECT_GE(stage.total_detailed_length_um(), base_total);
  EXPECT_GT(stage.chip_area_mm2(), 0.0);
  // Track counts at least the density lower bound.
  for (std::int32_t c = 0; c < stage.channel_count(); ++c) {
    EXPECT_GE(stage.plan(c).tracks, stage.plan(c).density);
  }
  // Applying detailed lengths gives a delay at least the router estimate
  // cannot be asserted in general, but it must be positive and finite.
  const double delay = stage.apply_and_critical_delay_ps(router.delay_graph());
  EXPECT_GT(delay, 0.0);
}

TEST(ChannelStage, SegmentsCoverEveryTrunkEdge) {
  const Dataset ds = generate_circuit(testutil::small_spec(6));
  Netlist nl = ds.netlist;
  GlobalRouter router(nl, ds.placement, ds.tech, ds.constraints,
                      RouterOptions{});
  (void)router.run();
  ChannelStage stage(router);
  stage.run();
  // Total segment length per channel ≥ longest trunk of any net there.
  for (const NetId n : nl.nets()) {
    const RoutingGraph& g = router.net_graph(n);
    for (const auto e : g.alive_edges()) {
      const RouteEdgeInfo& info = g.edge_info(e);
      if (!info.is_trunk()) continue;
      bool covered = false;
      for (const ChannelSegment& seg : stage.plan(info.channel).segments) {
        covered = covered ||
                  (seg.net == n && seg.span.contains(info.span));
      }
      EXPECT_TRUE(covered) << "trunk edge not covered by a segment";
    }
  }
}

}  // namespace
}  // namespace bgr

#include <gtest/gtest.h>

#include "bgr/channel/channel_router.hpp"
#include "bgr/common/rng.hpp"
#include "test_util.hpp"

namespace bgr {
namespace {

ChannelSegment seg(NetId net, std::int32_t lo, std::int32_t hi,
                   std::int32_t width = 1) {
  ChannelSegment s;
  s.net = net;
  s.width = width;
  s.span = IntInterval{lo, hi};
  return s;
}

bool no_overlaps(const std::vector<ChannelSegment>& segments,
                 std::int32_t tracks) {
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const ChannelSegment& a = segments[i];
    if (a.track < 1 || a.track + a.width - 1 > tracks) return false;
    for (std::size_t j = i + 1; j < segments.size(); ++j) {
      const ChannelSegment& b = segments[j];
      const bool tracks_overlap =
          a.track < b.track + b.width && b.track < a.track + a.width;
      if (tracks_overlap && a.span.overlaps(b.span)) return false;
    }
  }
  return true;
}

TEST(ConstrainedLeftEdge, RespectsVerticalConstraint) {
  // Segment A has a top tap at column 3; segment B a bottom tap at 3.
  // They overlap horizontally, and A must end up above B.
  std::vector<ChannelSegment> segs{seg(NetId{0}, 0, 5), seg(NetId{1}, 2, 8)};
  segs[0].taps.push_back(ChannelTap{3, /*from_top=*/true});
  segs[1].taps.push_back(ChannelTap{3, /*from_top=*/false});
  std::int32_t violations = 0;
  const auto tracks = constrained_left_edge_assign(segs, &violations);
  EXPECT_EQ(violations, 0);
  EXPECT_TRUE(no_overlaps(segs, tracks));
  EXPECT_GT(segs[0].track, segs[1].track);
}

TEST(ConstrainedLeftEdge, ConstraintForcesExtraTrackOnDisjointSpans) {
  // Horizontally disjoint segments would share a track under plain left
  // edge; a vertical constraint between them must still order them.
  std::vector<ChannelSegment> segs{seg(NetId{0}, 0, 3), seg(NetId{1}, 10, 14)};
  segs[0].taps.push_back(ChannelTap{2, true});    // A top tap at 2
  segs[1].taps.push_back(ChannelTap{2, false});   // B bottom tap at 2
  std::int32_t violations = 0;
  const auto tracks = constrained_left_edge_assign(segs, &violations);
  EXPECT_EQ(violations, 0);
  EXPECT_EQ(tracks, 2);
  EXPECT_GT(segs[0].track, segs[1].track);
}

TEST(ConstrainedLeftEdge, ChainOrdersThreeDeep) {
  std::vector<ChannelSegment> segs{seg(NetId{0}, 0, 9), seg(NetId{1}, 0, 9),
                                   seg(NetId{2}, 0, 9)};
  segs[0].taps.push_back(ChannelTap{1, true});
  segs[1].taps.push_back(ChannelTap{1, false});
  segs[1].taps.push_back(ChannelTap{5, true});
  segs[2].taps.push_back(ChannelTap{5, false});
  std::int32_t violations = 0;
  const auto tracks = constrained_left_edge_assign(segs, &violations);
  EXPECT_EQ(violations, 0);
  EXPECT_EQ(tracks, 3);
  EXPECT_GT(segs[0].track, segs[1].track);
  EXPECT_GT(segs[1].track, segs[2].track);
}

TEST(ConstrainedLeftEdge, CycleBrokenAndCounted) {
  // A above B at column 2, B above A at column 6: a classic VCG cycle that
  // needs a dogleg.
  std::vector<ChannelSegment> segs{seg(NetId{0}, 0, 9), seg(NetId{1}, 0, 9)};
  segs[0].taps.push_back(ChannelTap{2, true});
  segs[1].taps.push_back(ChannelTap{2, false});
  segs[1].taps.push_back(ChannelTap{6, true});
  segs[0].taps.push_back(ChannelTap{6, false});
  std::int32_t violations = 0;
  const auto tracks = constrained_left_edge_assign(segs, &violations);
  EXPECT_EQ(violations, 1);
  EXPECT_TRUE(no_overlaps(segs, tracks));
}

TEST(ConstrainedLeftEdge, SameNetTapsDoNotConstrain) {
  std::vector<ChannelSegment> segs{seg(NetId{0}, 0, 5), seg(NetId{0}, 7, 9)};
  segs[0].taps.push_back(ChannelTap{2, true});
  segs[0].taps.push_back(ChannelTap{2, false});  // the net crosses fully
  std::int32_t violations = 0;
  const auto tracks = constrained_left_edge_assign(segs, &violations);
  EXPECT_EQ(violations, 0);
  EXPECT_EQ(tracks, 1);
}

TEST(ConstrainedLeftEdge, WideSegmentsBlockMultipleLevels) {
  std::vector<ChannelSegment> segs{seg(NetId{0}, 0, 9, 2),
                                   seg(NetId{1}, 3, 6, 1)};
  std::int32_t violations = 0;
  const auto tracks = constrained_left_edge_assign(segs, &violations);
  EXPECT_EQ(tracks, 3);
  EXPECT_TRUE(no_overlaps(segs, tracks));
}

TEST(DoglegSplit, SplitsAtInteriorTapsOnly) {
  std::vector<ChannelSegment> segs{seg(NetId{0}, 0, 10)};
  segs[0].taps.push_back(ChannelTap{0, false});   // boundary: no cut
  segs[0].taps.push_back(ChannelTap{4, true});    // interior: cut
  segs[0].taps.push_back(ChannelTap{7, false});   // interior: cut
  segs[0].taps.push_back(ChannelTap{10, true});   // boundary: no cut
  std::vector<std::vector<std::size_t>> chains;
  split_segments_at_taps(segs, chains);
  ASSERT_EQ(segs.size(), 3u);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(segs[0].span, (IntInterval{0, 4}));
  EXPECT_EQ(segs[1].span, (IntInterval{4, 7}));
  EXPECT_EQ(segs[2].span, (IntInterval{7, 10}));
  // Taps at cut columns stay with the left piece; every tap exactly once.
  EXPECT_EQ(segs[0].taps.size(), 2u);
  EXPECT_EQ(segs[1].taps.size(), 1u);
  EXPECT_EQ(segs[2].taps.size(), 1u);
}

TEST(DoglegSplit, NoInteriorTapsNoSplit) {
  std::vector<ChannelSegment> segs{seg(NetId{0}, 3, 9)};
  segs[0].taps.push_back(ChannelTap{3, true});
  std::vector<std::vector<std::size_t>> chains;
  split_segments_at_taps(segs, chains);
  EXPECT_EQ(segs.size(), 1u);
  EXPECT_TRUE(chains.empty());
}

TEST(DoglegSplit, BreaksClassicVcgCycle) {
  // The cycle from CycleBrokenAndCounted: with dogleg splitting the
  // constraints land on different pieces and no violation remains.
  std::vector<ChannelSegment> segs{seg(NetId{0}, 0, 9), seg(NetId{1}, 0, 9)};
  segs[0].taps.push_back(ChannelTap{2, true});
  segs[1].taps.push_back(ChannelTap{2, false});
  segs[1].taps.push_back(ChannelTap{6, true});
  segs[0].taps.push_back(ChannelTap{6, false});
  std::vector<std::vector<std::size_t>> chains;
  split_segments_at_taps(segs, chains);
  std::int32_t violations = 0;
  const auto tracks = constrained_left_edge_assign(segs, &violations);
  EXPECT_EQ(violations, 0);
  EXPECT_TRUE(no_overlaps(segs, tracks));
}

TEST(ChannelStageDogleg, FullFlowWorksAndChargesJogs) {
  const Dataset ds = generate_circuit(testutil::small_spec(82));
  Netlist nl = ds.netlist;
  GlobalRouter router(nl, ds.placement, ds.tech, ds.constraints,
                      RouterOptions{});
  (void)router.run();
  ChannelOptions constrained;
  constrained.algorithm = TrackAlgorithm::kConstrainedLeftEdge;
  ChannelStage hard(router, constrained);
  hard.run();
  ChannelOptions dogleg;
  dogleg.algorithm = TrackAlgorithm::kDoglegLeftEdge;
  ChannelStage soft(router, dogleg);
  soft.run();
  std::int64_t hard_viol = 0;
  std::int64_t soft_viol = 0;
  std::int64_t hard_tracks = 0;
  std::int64_t soft_tracks = 0;
  for (std::int32_t c = 0; c < hard.channel_count(); ++c) {
    hard_viol += hard.plan(c).vcg_violations;
    soft_viol += soft.plan(c).vcg_violations;
    hard_tracks += hard.plan(c).tracks;
    soft_tracks += soft.plan(c).tracks;
  }
  EXPECT_LE(soft_viol, hard_viol);
  // Splitting resolves cycles but the abutting same-net pieces can cost a
  // few extra tracks in individual channels; allow a small excess.
  EXPECT_LE(soft_tracks, hard_tracks + hard_tracks / 8 + 2);
  EXPECT_GT(soft.total_detailed_length_um(), 0.0);
}

class ConstrainedRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConstrainedRandom, FeasibleAndHonoursAcyclicConstraints) {
  Rng rng(GetParam());
  for (int round = 0; round < 25; ++round) {
    std::vector<ChannelSegment> segs;
    const int n = rng.uniform_i32(2, 24);
    for (int i = 0; i < n; ++i) {
      const auto lo = rng.uniform_i32(0, 40);
      auto s = seg(NetId{i}, lo, lo + rng.uniform_i32(0, 12),
                   rng.uniform_i32(1, 2));
      const int taps = rng.uniform_i32(0, 2);
      for (int t = 0; t < taps; ++t) {
        s.taps.push_back(ChannelTap{rng.uniform_i32(s.span.lo, s.span.hi),
                                    rng.bernoulli(0.5)});
      }
      segs.push_back(s);
    }
    std::int32_t violations = 0;
    const auto tracks = constrained_left_edge_assign(segs, &violations);
    ASSERT_TRUE(no_overlaps(segs, tracks));
    // Every vertical constraint is either honoured or accounted for.
    std::int32_t broken = 0;
    for (std::size_t i = 0; i < segs.size(); ++i) {
      for (const ChannelTap& ti : segs[i].taps) {
        if (!ti.from_top) continue;
        for (std::size_t j = 0; j < segs.size(); ++j) {
          if (i == j || segs[i].net == segs[j].net) continue;
          for (const ChannelTap& tj : segs[j].taps) {
            if (!tj.from_top && tj.column == ti.column &&
                segs[i].track <= segs[j].track) {
              ++broken;
            }
          }
        }
      }
    }
    EXPECT_LE(broken, violations + 2)  // forced picks may cascade slightly
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstrainedRandom,
                         ::testing::Values(5u, 6u, 7u));

TEST(ChannelStageConstrained, FullFlowWorks) {
  const Dataset ds = generate_circuit(testutil::small_spec(81));
  Netlist nl = ds.netlist;
  GlobalRouter router(nl, ds.placement, ds.tech, ds.constraints,
                      RouterOptions{});
  (void)router.run();
  ChannelOptions options;
  options.algorithm = TrackAlgorithm::kConstrainedLeftEdge;
  ChannelStage stage(router, options);
  stage.run();
  std::int64_t total_violations = 0;
  for (std::int32_t c = 0; c < stage.channel_count(); ++c) {
    EXPECT_GE(stage.plan(c).tracks, stage.plan(c).density);
    total_violations += stage.plan(c).vcg_violations;
  }
  EXPECT_GT(stage.chip_area_mm2(), 0.0);
  // Constrained assignment can only need as many or more tracks.
  ChannelStage plain(router);
  plain.run();
  EXPECT_GE(stage.chip_height_um(), plain.chip_height_um() - 1e-9);
  (void)total_violations;
}

}  // namespace
}  // namespace bgr

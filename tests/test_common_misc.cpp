#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "bgr/common/check.hpp"
#include "bgr/common/log.hpp"
#include "bgr/common/stopwatch.hpp"
#include "bgr/common/tech.hpp"

namespace bgr {
namespace {

TEST(Check, ThrowsWithContext) {
  try {
    BGR_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
    EXPECT_NE(what.find("test_common_misc.cpp"), std::string::npos);
  }
}

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(BGR_CHECK(2 + 2 == 4));
}

TEST(Log, LevelFiltering) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Dropped messages must not crash; emitted ones neither.
  log_debug("dropped");
  log_error("emitted");
  set_log_level(LogLevel::kOff);
  log_error("dropped too");
  set_log_level(saved);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  const double t1 = watch.seconds();
  EXPECT_GE(t1, 0.010);
  watch.reset();
  EXPECT_LT(watch.seconds(), t1);
}

TEST(Tech, WireCapScalesWithLengthAndWidth) {
  TechParams tech;
  EXPECT_DOUBLE_EQ(tech.wire_cap_pf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(tech.wire_cap_pf(1000.0), tech.wire_cap_pf_per_um * 1000.0);
  EXPECT_DOUBLE_EQ(tech.wire_cap_pf(500.0, 4), 4.0 * tech.wire_cap_pf(500.0));
}

TEST(Tech, WireResInverseInWidth) {
  TechParams tech;
  EXPECT_DOUBLE_EQ(tech.wire_res_ohm(1000.0, 2),
                   tech.wire_res_ohm(1000.0) / 2.0);
}

TEST(Tech, GeometryHelpers) {
  TechParams tech;
  EXPECT_DOUBLE_EQ(tech.horiz_step_um(), tech.grid_pitch_um);
  EXPECT_DOUBLE_EQ(tech.row_cross_um(), tech.row_height_um);
}

}  // namespace
}  // namespace bgr

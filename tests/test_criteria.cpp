#include "bgr/route/criteria.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace bgr {
namespace {

SelectionKey base_key() {
  SelectionKey k;
  k.critical_count = 0;
  k.global_delay = 0.0;
  k.local_delay = 0.0;
  k.branch = 0;
  k.f_min = 5;
  k.n_min = 5;
  k.f_max = 5;
  k.n_max = 5;
  k.neg_length = -10.0;
  return k;
}

TEST(Criteria, CriticalCountDominatesDelayFirst) {
  SelectionKey a = base_key();
  SelectionKey b = base_key();
  a.critical_count = 0;
  b.critical_count = 1;
  a.global_delay = 100.0;  // otherwise much worse
  EXPECT_TRUE(key_less(a, b, CriteriaOrder::kDelayFirst));
  EXPECT_FALSE(key_less(b, a, CriteriaOrder::kDelayFirst));
}

TEST(Criteria, GlobalDelayBeforeLocalDelay) {
  SelectionKey a = base_key();
  SelectionKey b = base_key();
  a.global_delay = 0.1;
  b.global_delay = 0.2;
  a.local_delay = 99.0;
  EXPECT_TRUE(key_less(a, b, CriteriaOrder::kDelayFirst));
}

TEST(Criteria, TrunkPreferredOverBranch) {
  SelectionKey trunk = base_key();
  SelectionKey branch = base_key();
  branch.branch = 1;
  branch.f_min = 0;  // otherwise more attractive
  EXPECT_TRUE(key_less(trunk, branch, CriteriaOrder::kDelayFirst));
}

TEST(Criteria, DensityTierOrder) {
  // f_min before n_min before f_max before n_max.
  SelectionKey a = base_key();
  SelectionKey b = base_key();
  a.f_min = 1;
  b.f_min = 2;
  a.n_min = 9;
  EXPECT_TRUE(key_less(a, b, CriteriaOrder::kDelayFirst));
  a = base_key();
  b = base_key();
  a.n_min = 1;
  b.n_min = 2;
  a.f_max = 9;
  EXPECT_TRUE(key_less(a, b, CriteriaOrder::kDelayFirst));
  a = base_key();
  b = base_key();
  a.f_max = 1;
  b.f_max = 2;
  a.n_max = 9;
  EXPECT_TRUE(key_less(a, b, CriteriaOrder::kDelayFirst));
}

TEST(Criteria, LongerEdgeBreaksFinalTie) {
  SelectionKey a = base_key();
  SelectionKey b = base_key();
  a.neg_length = -20.0;  // longer edge
  b.neg_length = -10.0;
  EXPECT_TRUE(key_less(a, b, CriteriaOrder::kDelayFirst));
  EXPECT_TRUE(key_less(a, b, CriteriaOrder::kAreaFirst));
}

TEST(Criteria, AreaOrderPutsDensityBeforeGl) {
  SelectionKey a = base_key();
  SelectionKey b = base_key();
  a.f_min = 1;         // better density
  a.global_delay = 5;  // worse Gl
  b.f_min = 2;
  b.global_delay = 0;
  EXPECT_TRUE(key_less(a, b, CriteriaOrder::kAreaFirst));
  EXPECT_FALSE(key_less(a, b, CriteriaOrder::kDelayFirst));
}

TEST(Criteria, AreaOrderStillChecksCdFirst) {
  SelectionKey a = base_key();
  SelectionKey b = base_key();
  a.critical_count = 1;  // fatal
  a.f_min = 0;           // best density
  b.critical_count = 0;
  EXPECT_TRUE(key_less(b, a, CriteriaOrder::kAreaFirst));
}

TEST(Criteria, AreaOrderComparesGlLdLast) {
  SelectionKey a = base_key();
  SelectionKey b = base_key();
  a.global_delay = 0.5;
  b.global_delay = 1.0;
  EXPECT_TRUE(key_less(a, b, CriteriaOrder::kAreaFirst));
  b.global_delay = 0.5;
  a.local_delay = 1.0;
  b.local_delay = 2.0;
  EXPECT_TRUE(key_less(a, b, CriteriaOrder::kAreaFirst));
}

TEST(Criteria, EqualKeysNotLess) {
  const SelectionKey a = base_key();
  const SelectionKey b = base_key();
  EXPECT_FALSE(key_less(a, b, CriteriaOrder::kDelayFirst));
  EXPECT_FALSE(key_less(b, a, CriteriaOrder::kDelayFirst));
  EXPECT_FALSE(key_less(a, b, CriteriaOrder::kAreaFirst));
}

TEST(Criteria, StrictWeakOrderingOnSamples) {
  // Exhaustive antisymmetry check over a small lattice of keys.
  std::vector<SelectionKey> keys;
  for (int cd : {0, 1}) {
    for (double gl : {0.0, 1.0}) {
      for (int branch : {0, 1}) {
        for (int fm : {0, 2}) {
          for (double len : {-5.0, -1.0}) {
            SelectionKey k = base_key();
            k.critical_count = cd;
            k.global_delay = gl;
            k.branch = branch;
            k.f_min = fm;
            k.neg_length = len;
            keys.push_back(k);
          }
        }
      }
    }
  }
  for (const auto order : {CriteriaOrder::kDelayFirst, CriteriaOrder::kAreaFirst}) {
    for (const auto& a : keys) {
      EXPECT_FALSE(key_less(a, a, order));
      for (const auto& b : keys) {
        if (key_less(a, b, order)) {
          EXPECT_FALSE(key_less(b, a, order));
        }
        for (const auto& c : keys) {
          if (key_less(a, b, order) && key_less(b, c, order)) {
            EXPECT_TRUE(key_less(a, c, order));
          }
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// slack_to_weight (cost-distance sink weights, DESIGN.md §16)

TEST(SlackToWeight, MonotoneTighterSlackLargerWeight) {
  const double scale = 1000.0;
  // Strictly decreasing in slack across the whole finite range (until the
  // violation cap): a tighter path always pulls its sinks harder.
  const double slacks[] = {-5000.0, -1000.0, -1.0, 0.0,
                           1.0,     100.0,   1000.0, 10000.0};
  for (std::size_t i = 1; i < std::size(slacks); ++i) {
    EXPECT_GT(slack_to_weight(slacks[i - 1], scale),
              slack_to_weight(slacks[i], scale))
        << "slack " << slacks[i - 1] << " vs " << slacks[i];
  }
}

TEST(SlackToWeight, ZeroSlackEdgeCases) {
  const double scale = 500.0;
  // Exactly critical: both formula branches meet at weight 1.
  EXPECT_EQ(slack_to_weight(0.0, scale), 1.0);
  // Positive slack stays strictly inside (0, 1).
  EXPECT_LT(slack_to_weight(1e-9, scale), 1.0);
  EXPECT_GT(slack_to_weight(1e6, scale), 0.0);
  EXPECT_LT(slack_to_weight(1e6, scale), 0.01);
}

TEST(SlackToWeight, NegativeSlackGrowsAndCaps) {
  const double scale = 1000.0;
  // Violations weigh at least as much as a critical path...
  EXPECT_GE(slack_to_weight(-1.0, scale), 1.0);
  EXPECT_EQ(slack_to_weight(-1000.0, scale), 2.0);
  // ...and the cap keeps one hopeless net from degenerating to a pure
  // shortest-path star.
  EXPECT_EQ(slack_to_weight(-1e9, scale), 8.0);
  EXPECT_EQ(slack_to_weight(-7000.0, scale), 8.0);
}

TEST(SlackToWeight, UnconstrainedAndDegenerateInputs) {
  // +inf slack (no constraint covers the net) and NaN both mean "pure
  // wirelength".
  EXPECT_EQ(slack_to_weight(std::numeric_limits<double>::infinity(), 100.0),
            0.0);
  EXPECT_EQ(slack_to_weight(std::nan(""), 100.0), 0.0);
  // A non-positive scale falls back to 1 ps instead of dividing by zero.
  EXPECT_EQ(slack_to_weight(0.0, 0.0), 1.0);
  EXPECT_EQ(slack_to_weight(-1.0, 0.0), 2.0);
  EXPECT_TRUE(std::isfinite(slack_to_weight(123.0, -5.0)));
}

}  // namespace
}  // namespace bgr

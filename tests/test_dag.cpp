#include "bgr/graph/dag.hpp"

#include <gtest/gtest.h>

namespace bgr {
namespace {

/// a → b → d, a → c → d with distinct weights.
struct Diamond {
  Dag dag;
  std::int32_t a, b, c, d;
  std::int32_t ab, bd, ac, cd;

  Diamond() {
    a = dag.add_vertex();
    b = dag.add_vertex();
    c = dag.add_vertex();
    d = dag.add_vertex();
    ab = dag.add_edge(a, b, 1.0, 10);
    bd = dag.add_edge(b, d, 2.0, 11);
    ac = dag.add_edge(a, c, 4.0, 12);
    cd = dag.add_edge(c, d, 1.0, 13);
    dag.freeze();
  }
};

TEST(Dag, TopoOrderRespectsEdges) {
  Diamond g;
  const auto& topo = g.dag.topo_order();
  std::vector<std::int32_t> pos(4);
  for (std::size_t i = 0; i < topo.size(); ++i) {
    pos[static_cast<std::size_t>(topo[i])] = static_cast<std::int32_t>(i);
  }
  for (std::int32_t e = 0; e < g.dag.edge_count(); ++e) {
    const auto& ed = g.dag.edge(e);
    EXPECT_LT(pos[static_cast<std::size_t>(ed.from)],
              pos[static_cast<std::size_t>(ed.to)]);
  }
}

TEST(Dag, CycleDetected) {
  Dag dag;
  const auto a = dag.add_vertex();
  const auto b = dag.add_vertex();
  (void)dag.add_edge(a, b, 1.0);
  (void)dag.add_edge(b, a, 1.0);
  EXPECT_THROW(dag.freeze(), CheckError);
}

TEST(Dag, LongestFromPicksHeavierPath) {
  Diamond g;
  const auto lp = g.dag.longest_from({g.a});
  EXPECT_DOUBLE_EQ(lp[static_cast<std::size_t>(g.d)], 5.0);  // a→c→d
  EXPECT_DOUBLE_EQ(lp[static_cast<std::size_t>(g.b)], 1.0);
}

TEST(Dag, LongestToIsReverse) {
  Diamond g;
  const auto ls = g.dag.longest_to({g.d});
  EXPECT_DOUBLE_EQ(ls[static_cast<std::size_t>(g.a)], 5.0);
  EXPECT_DOUBLE_EQ(ls[static_cast<std::size_t>(g.b)], 2.0);
}

TEST(Dag, WeightUpdatePropagates) {
  Diamond g;
  g.dag.set_edge_weight(g.bd, 10.0);
  const auto lp = g.dag.longest_from({g.a});
  EXPECT_DOUBLE_EQ(lp[static_cast<std::size_t>(g.d)], 11.0);  // a→b→d now
}

TEST(Dag, SubsetMaskRestrictsPaths) {
  Diamond g;
  std::vector<bool> mask(4, true);
  mask[static_cast<std::size_t>(g.c)] = false;
  const auto lp = g.dag.longest_from({g.a}, mask);
  EXPECT_DOUBLE_EQ(lp[static_cast<std::size_t>(g.d)], 3.0);  // forced via b
}

TEST(Dag, UnreachableIsMinusInf) {
  Diamond g;
  const auto lp = g.dag.longest_from({g.b});
  EXPECT_EQ(lp[static_cast<std::size_t>(g.a)], Dag::kMinusInf);
  EXPECT_EQ(lp[static_cast<std::size_t>(g.c)], Dag::kMinusInf);
  EXPECT_DOUBLE_EQ(lp[static_cast<std::size_t>(g.d)], 2.0);
}

TEST(Dag, BetweenComputesPathSupport) {
  Diamond g;
  const auto mask = g.dag.between({g.b}, {g.d});
  EXPECT_FALSE(mask[static_cast<std::size_t>(g.a)]);
  EXPECT_TRUE(mask[static_cast<std::size_t>(g.b)]);
  EXPECT_FALSE(mask[static_cast<std::size_t>(g.c)]);
  EXPECT_TRUE(mask[static_cast<std::size_t>(g.d)]);
}

TEST(Dag, EdgeLabelsStored) {
  Diamond g;
  EXPECT_EQ(g.dag.edge(g.ab).label, 10);
  EXPECT_EQ(g.dag.edge(g.cd).label, 13);
}

}  // namespace
}  // namespace bgr

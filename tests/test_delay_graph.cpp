#include "bgr/timing/delay_graph.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace bgr {
namespace {

using testutil::ChainCircuit;

TEST(DelayGraph, ZeroWireCriticalDelay) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  // CK→PO (187) beats A→ff.D (176.35).
  EXPECT_NEAR(dg.critical_delay_ps(), ChainCircuit::kPathCkDelayPs, 1e-9);
}

TEST(DelayGraph, Equation1NetArcDelay) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  // Net n0 drives one NOR2 input: (ΣFin)·Tf = 0.030 · 120 = 3.6 ps.
  EXPECT_NEAR(dg.net_arc_delay(c.n0), 3.6, 1e-9);
  // Adding CL = 0.01 pF at Td = 260 ps/pF adds 2.6 ps.
  dg.set_net_cap(c.n0, 0.01);
  EXPECT_NEAR(dg.net_arc_delay(c.n0), 6.2, 1e-9);
  EXPECT_NEAR(dg.critical_delay_ps(), ChainCircuit::kPathCkDelayPs, 1e-9);
  // Make the A-path dominate: +15 ps on n0 puts A→D at 191.35.
  dg.set_net_cap(c.n0, 15.0 / 260.0);
  EXPECT_NEAR(dg.critical_delay_ps(), 191.35, 1e-6);
}

TEST(DelayGraph, NetArcDelayForCapDoesNotMutate) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  const double before = dg.net_arc_delay(c.n1);
  const double hypothetical = dg.net_arc_delay_for_cap(c.n1, 1.0);
  EXPECT_GT(hypothetical, before);
  EXPECT_DOUBLE_EQ(dg.net_arc_delay(c.n1), before);
}

TEST(DelayGraph, SourcesAndSinksClassified) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  // Sources: pads A, B, CK plus register clock pin = 4.
  EXPECT_EQ(dg.sources().size(), 4u);
  // Sinks: register D pin plus output pad = 2.
  EXPECT_EQ(dg.sinks().size(), 2u);
}

TEST(DelayGraph, ClockPinsHaveNoIncomingWiringArc) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  // Net ck drives only the register clock pin → no wiring arcs at all.
  EXPECT_TRUE(dg.net_arcs(c.ck).empty());
  // Net n1 drives ff.D → one arc.
  EXPECT_EQ(dg.net_arcs(c.n1).size(), 1u);
}

TEST(DelayGraph, RegisterCutsCombinationalPath) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  // Loading net q enormously must not change the A→ff.D path value, only
  // the CK→PO one: the D pin terminates its path.
  dg.set_net_cap(c.q, 10.0);
  const auto lp = dg.dag().longest_from({dg.vertex_of(c.pad_a)});
  EXPECT_NEAR(lp[static_cast<std::size_t>(dg.vertex_of(c.d_term))],
              ChainCircuit::kPathADelayPs, 1e-9);
}

TEST(DelayGraph, VertexTerminalRoundTrip) {
  ChainCircuit c;
  DelayGraph dg(c.nl);
  for (const TerminalId t : c.nl.terminals()) {
    EXPECT_EQ(dg.terminal_of(dg.vertex_of(t)), t);
  }
}

}  // namespace
}  // namespace bgr

#include "bgr/route/density.hpp"

#include <gtest/gtest.h>

#include "bgr/common/rng.hpp"

namespace bgr {
namespace {

TEST(Density, EmptyChannelParams) {
  DensityMap map(2, 10);
  const auto& p = map.channel_params(0);
  EXPECT_EQ(p.c_max, 0);
  EXPECT_EQ(p.nc_max, 10);  // every column attains the zero maximum
  EXPECT_EQ(p.c_min, 0);
  EXPECT_EQ(p.nc_min, 10);
}

TEST(Density, AddAndRemoveTotal) {
  DensityMap map(1, 10);
  map.add_total(0, {2, 6}, 1);
  map.add_total(0, {4, 8}, 1);
  EXPECT_EQ(map.total_at(0, 3), 1);
  EXPECT_EQ(map.total_at(0, 5), 2);
  const auto& p = map.channel_params(0);
  EXPECT_EQ(p.c_max, 2);
  EXPECT_EQ(p.nc_max, 3);  // columns 4,5,6
  map.remove_total(0, {2, 6}, 1);
  EXPECT_EQ(map.channel_params(0).c_max, 1);
}

TEST(Density, MultiPitchContributesWidth) {
  DensityMap map(1, 10);
  map.add_total(0, {0, 4}, 3);
  EXPECT_EQ(map.total_at(0, 2), 3);
  EXPECT_EQ(map.channel_params(0).c_max, 3);
}

TEST(Density, BridgeChartIsSeparate) {
  DensityMap map(1, 10);
  map.add_total(0, {0, 9}, 1);
  map.add_bridge(0, {3, 5}, 1);
  const auto& p = map.channel_params(0);
  EXPECT_EQ(p.c_max, 1);
  EXPECT_EQ(p.c_min, 1);
  EXPECT_EQ(p.nc_min, 3);
  EXPECT_EQ(map.bridge_at(0, 4), 1);
  EXPECT_EQ(map.bridge_at(0, 6), 0);
}

TEST(Density, NegativeChartRejected) {
  DensityMap map(1, 10);
  EXPECT_THROW(map.remove_total(0, {0, 0}, 1), CheckError);
}

TEST(Density, OutOfRangeRejected) {
  DensityMap map(1, 10);
  EXPECT_THROW(map.add_total(0, {8, 12}, 1), CheckError);
  EXPECT_THROW(map.add_total(0, IntInterval{}, 1), CheckError);
}

TEST(Density, EdgeParamsFigure4Semantics) {
  // Reconstruct the Fig. 4 situation: an edge interval that covers part of
  // the channel; D_M / ND_M are the chart maxima *within the interval*.
  DensityMap map(1, 12);
  map.add_total(0, {0, 3}, 1);
  map.add_total(0, {2, 9}, 1);
  map.add_total(0, {2, 5}, 1);  // peak 3 on columns 2..3
  const auto& cp = map.channel_params(0);
  EXPECT_EQ(cp.c_max, 3);
  EXPECT_EQ(cp.nc_max, 2);
  // Edge covering columns 4..9 sees maximum 2 (columns 4,5) → ND_M = 2.
  const auto ep = map.edge_params(0, {4, 9});
  EXPECT_EQ(ep.d_max, 2);
  EXPECT_EQ(ep.nd_max, 2);
  // Edge covering the peak directly.
  const auto ep2 = map.edge_params(0, {2, 3});
  EXPECT_EQ(ep2.d_max, 3);
  EXPECT_EQ(ep2.nd_max, 2);
}

TEST(Density, VersionBumpsOnEveryChange) {
  DensityMap map(2, 10);
  const auto v0 = map.version(0);
  map.add_total(0, {0, 1}, 1);
  EXPECT_GT(map.version(0), v0);
  EXPECT_EQ(map.version(1), 0u);
  const auto v1 = map.version(0);
  map.add_bridge(0, {0, 0}, 1);
  EXPECT_GT(map.version(0), v1);
}

TEST(Density, SumMaxDensity) {
  DensityMap map(3, 10);
  map.add_total(0, {0, 5}, 2);
  map.add_total(2, {0, 5}, 1);
  EXPECT_EQ(map.sum_max_density(), 3);
}

/// Property sweep: incremental params equal a brute-force recomputation.
class DensityRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DensityRandom, ParamsMatchBruteForce) {
  Rng rng(GetParam());
  constexpr std::int32_t kWidth = 24;
  DensityMap map(1, kWidth);
  std::vector<std::int32_t> total(kWidth, 0);
  std::vector<std::int32_t> bridge(kWidth, 0);
  struct Op {
    IntInterval span;
    std::int32_t w;
    bool is_bridge;
  };
  std::vector<Op> live;
  for (int step = 0; step < 300; ++step) {
    if (live.empty() || rng.bernoulli(0.6)) {
      Op op{IntInterval::spanning(rng.uniform_i32(0, kWidth - 1),
                                  rng.uniform_i32(0, kWidth - 1)),
            rng.uniform_i32(1, 3), rng.bernoulli(0.3)};
      live.push_back(op);
      if (op.is_bridge) {
        map.add_bridge(0, op.span, op.w);
        for (std::int32_t x = op.span.lo; x <= op.span.hi; ++x)
          bridge[static_cast<std::size_t>(x)] += op.w;
      } else {
        map.add_total(0, op.span, op.w);
        for (std::int32_t x = op.span.lo; x <= op.span.hi; ++x)
          total[static_cast<std::size_t>(x)] += op.w;
      }
    } else {
      const auto i = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(live.size()) - 1));
      const Op op = live[i];
      live[i] = live.back();
      live.pop_back();
      if (op.is_bridge) {
        map.remove_bridge(0, op.span, op.w);
        for (std::int32_t x = op.span.lo; x <= op.span.hi; ++x)
          bridge[static_cast<std::size_t>(x)] -= op.w;
      } else {
        map.remove_total(0, op.span, op.w);
        for (std::int32_t x = op.span.lo; x <= op.span.hi; ++x)
          total[static_cast<std::size_t>(x)] -= op.w;
      }
    }
    // Verify the charts and aggregates.
    std::int32_t c_max = 0, c_min = 0;
    for (std::int32_t x = 0; x < kWidth; ++x) {
      EXPECT_EQ(map.total_at(0, x), total[static_cast<std::size_t>(x)]);
      EXPECT_EQ(map.bridge_at(0, x), bridge[static_cast<std::size_t>(x)]);
      c_max = std::max(c_max, total[static_cast<std::size_t>(x)]);
      c_min = std::max(c_min, bridge[static_cast<std::size_t>(x)]);
    }
    const auto& p = map.channel_params(0);
    EXPECT_EQ(p.c_max, c_max);
    EXPECT_EQ(p.c_min, c_min);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DensityRandom, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace bgr

// DesignCache tests: content-hash keying, LRU bounds on both levels,
// result-level reuse, and the parse-under-lock guarantee that makes
// concurrent duplicate submissions hit deterministically.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bgr/fuzz/spec_sampler.hpp"
#include "bgr/gen/generator.hpp"
#include "bgr/io/design_io.hpp"
#include "bgr/io/io_error.hpp"
#include "bgr/serve/design_cache.hpp"
#include "bgr/serve/session.hpp"

namespace bgr {
namespace {

using serve::DesignCache;
using serve::SessionResult;
using serve::SessionStatus;

std::string design_text(std::uint64_t seed) {
  CircuitSpec spec = sample_spec(0);
  spec.seed = seed;
  spec.name = "cache_t" + std::to_string(seed);
  spec.rows = 3;
  spec.target_cells = 24;
  spec.levels = 3;
  spec.path_constraints = 2;
  const Dataset ds = generate_circuit(spec);
  std::ostringstream os;
  write_design(os, ds);
  return os.str();
}

TEST(DesignCache, KeysAreContentHashes) {
  const std::string a = design_text(1);
  const std::string b = design_text(2);
  EXPECT_EQ(DesignCache::text_key(a), DesignCache::text_key(a));
  EXPECT_NE(DesignCache::text_key(a), DesignCache::text_key(b));
  // Preset names and design text live in disjoint key spaces: a design
  // whose full text is "C1P1" must not collide with the preset C1P1.
  EXPECT_NE(DesignCache::text_key("C1P1"), DesignCache::preset_key("C1P1"));
}

TEST(DesignCache, ParsesOncePerContent) {
  DesignCache cache;
  const std::string text = design_text(3);
  bool hit = true;
  const auto first = cache.dataset_for_text(text, "t", &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.dataset_for_text(text, "t", &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // the same shared parse
  const DesignCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.dataset_misses, 1);
  EXPECT_EQ(stats.dataset_hits, 1);
}

TEST(DesignCache, MalformedTextThrowsAndIsNotCached) {
  DesignCache cache;
  EXPECT_THROW((void)cache.dataset_for_text("garbage", "t"), IoError);
  EXPECT_THROW((void)cache.dataset_for_text("garbage", "t"), IoError);
  EXPECT_EQ(cache.stats().dataset_hits, 0);
}

TEST(DesignCache, EvictsLeastRecentlyUsedDataset) {
  DesignCache cache(/*dataset_capacity=*/2, /*result_capacity=*/2);
  const std::string a = design_text(4);
  const std::string b = design_text(5);
  const std::string c = design_text(6);
  (void)cache.dataset_for_text(a, "a");
  (void)cache.dataset_for_text(b, "b");
  (void)cache.dataset_for_text(a, "a");  // touch a: b is now LRU
  (void)cache.dataset_for_text(c, "c");  // evicts b
  bool hit = false;
  (void)cache.dataset_for_text(a, "a", &hit);
  EXPECT_TRUE(hit);
  (void)cache.dataset_for_text(b, "b", &hit);
  EXPECT_FALSE(hit) << "b should have been evicted";
  EXPECT_GE(cache.stats().evictions, 1);
}

TEST(DesignCache, ResultLevelStoresAndFirstWins) {
  DesignCache cache;
  EXPECT_EQ(cache.find_result(42), nullptr);

  auto result = std::make_shared<const SessionResult>([] {
    SessionResult r;
    r.status = SessionStatus::kDone;
    r.digest = "first";
    return r;
  }());
  cache.store_result(42, result);
  auto found = cache.find_result(42);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->digest, "first");

  // A concurrent duplicate may finish second with the same (bit-identical)
  // result; the first stored entry is kept.
  auto other = std::make_shared<const SessionResult>([] {
    SessionResult r;
    r.status = SessionStatus::kDone;
    r.digest = "second";
    return r;
  }());
  cache.store_result(42, other);
  EXPECT_EQ(cache.find_result(42)->digest, "first");
}

TEST(DesignCache, ConcurrentDuplicatesHitDeterministically) {
  DesignCache cache;
  const std::string text = design_text(7);
  const int kThreads = 8;
  std::vector<std::shared_ptr<const Dataset>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      seen[static_cast<std::size_t>(i)] =
          cache.dataset_for_text(text, "t", nullptr);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[0].get(), seen[static_cast<std::size_t>(i)].get());
  }
  // Parse-under-lock: whoever takes the mutex first parses; everyone
  // else blocks and then hits. 1 miss + 7 hits for any interleaving.
  const DesignCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.dataset_misses, 1);
  EXPECT_EQ(stats.dataset_hits, kThreads - 1);
}

}  // namespace
}  // namespace bgr
